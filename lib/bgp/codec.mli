(** The BGP-4 wire codec: RFC 4271 messages, RFC 6793 four-byte ASNs, RFC
    7911 ADD-PATH NLRI, RFC 4760 MP-BGP attributes, RFC 2918 ROUTE-REFRESH.

    Every byte exchanged between experiments, vBGP routers and simulated
    neighbors passes through this codec, so experiments exercise the same
    protocol surface they would against a hardware router (the paper's
    compatibility requirement, §2.2). *)

type error = { code : int; subcode : int; message : string }
(** A protocol error, carrying the NOTIFICATION (code, subcode) that should
    be sent in response. *)

exception Decode_error of error

type params = { add_path : bool; as4 : bool }
(** Per-session encoding parameters fixed by capability negotiation:
    whether NLRI carry path identifiers, and whether AS numbers are 4-byte
    on the wire. *)

val default_params : params
(** No ADD-PATH, 4-byte ASNs. *)

val header_size : int
val max_message_size : int

val classic_max_message_size : int
(** 4096 — the RFC 4271 message-size ceiling packed UPDATEs split at, so
    a packed message is valid toward any non-RFC-8654 speaker. *)

val split_update :
  ?params:params -> ?max_size:int -> ?attrs_size:int -> Msg.update ->
  Msg.update list
(** Split a (possibly many-NLRI) UPDATE into messages that each encode
    within [max_size] (default {!classic_max_message_size}) bytes:
    withdrawals packed into leading attribute-less messages, then
    announcements, each carrying the shared attribute block. An UPDATE
    already within bounds is returned unchanged (singleton); an UPDATE
    with no IPv4 NLRI (End-of-RIB, MP-only) is never split. Pass
    [attrs_size] (the byte length of the encoded attribute block) when
    the caller already holds the pre-encoded block, skipping a
    re-encode. *)

val encode : ?params:params -> Msg.t -> string
(** Serialize one message, including marker and length header. *)

val encode_attrs_block : ?params:params -> Attr.set -> string
(** The UPDATE path-attribute block alone (sorted, wire-encoded, no
    length prefix) — the unit the export lane's wire cache stores once
    per facing attribute set and splices into every packed message. *)

val encode_update_spliced :
  ?params:params -> attrs_block:string -> Msg.update -> string
(** Serialize one UPDATE around a pre-encoded attribute block.
    [attrs_block] must be [encode_attrs_block ~params u.attrs]; the
    update's own [attrs] field is ignored. Byte-identical to
    [encode ~params (Msg.Update u)]. *)

val decode_exn : ?params:params -> string -> Msg.t
(** Decode exactly one message. Raises {!Decode_error} (or
    {!Netcore.Wire.Truncated}) on malformed input. *)

val decode : ?params:params -> string -> (Msg.t, error) result

(** BGP runs over a byte stream; the stream decoder reassembles message
    boundaries from the length field of each header, tolerating arbitrary
    chunking. *)
module Stream : sig
  type t

  val create : ?params:params -> unit -> t

  val set_params : t -> params -> unit
  (** Install post-negotiation parameters (ADD-PATH direction, AS4). *)

  val input : t -> string -> (Msg.t list, error) result
  (** Feed bytes; returns every complete message now available. *)
end
