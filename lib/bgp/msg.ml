(* The four BGP-4 message types (RFC 4271 §4). NLRI entries carry an
   optional path identifier so a single session can announce multiple routes
   for one prefix (ADD-PATH, RFC 7911) — the mechanism vBGP uses to give
   experiments full visibility. *)

open Netcore

type nlri = { prefix : Prefix.t; path_id : int option }

let nlri ?path_id prefix = { prefix; path_id }

let pp_nlri ppf n =
  match n.path_id with
  | None -> Prefix.pp ppf n.prefix
  | Some id -> Fmt.pf ppf "%a[%d]" Prefix.pp n.prefix id

type open_msg = {
  version : int;
  asn : Asn.t;
  hold_time : int;
  bgp_id : Ipv4.t;
  capabilities : Capability.t list;
}

type update = {
  withdrawn : nlri list;
  attrs : Attr.set;
  announced : nlri list;
}

let update ?(withdrawn = []) ?(attrs = []) ?(announced = []) () =
  { withdrawn; attrs; announced }

(* RFC 4724 §2: an UPDATE with no withdrawn routes, no attributes and no
   NLRI marks the end of the initial routing update after a restart. *)
let is_end_of_rib u = u.withdrawn = [] && u.attrs = [] && u.announced = []

type notification = { code : int; subcode : int; data : string }

(* Notification error codes (RFC 4271 §6.1). *)
let err_message_header = 1
let err_open_message = 2
let err_update_message = 3
let err_hold_timer_expired = 4
let err_fsm = 5
let err_cease = 6

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }
      (** RFC 2918: ask the peer to re-advertise its Adj-RIB-Out. *)

let pp ppf = function
  | Open o ->
      Fmt.pf ppf "OPEN as=%a hold=%d id=%a caps=[%a]" Asn.pp o.asn o.hold_time
        Ipv4.pp o.bgp_id
        Fmt.(list ~sep:sp Capability.pp)
        o.capabilities
  | Update u ->
      Fmt.pf ppf "UPDATE withdraw=[%a] attrs=[%a] announce=[%a]"
        Fmt.(list ~sep:sp pp_nlri)
        u.withdrawn Attr.pp_set u.attrs
        Fmt.(list ~sep:sp pp_nlri)
        u.announced
  | Notification n ->
      Fmt.pf ppf "NOTIFICATION %d/%d" n.code n.subcode
  | Keepalive -> Fmt.string ppf "KEEPALIVE"
  | Route_refresh { afi; safi } -> Fmt.pf ppf "ROUTE-REFRESH %d/%d" afi safi
