(* A BGP session: the FSM wired to a byte transport and a timer service.

   The session is transport-agnostic — the simulator passes closures for
   connecting, sending, and scheduling — so the same code drives sessions
   between vBGP routers and neighbors, between vBGP and experiments (over
   simulated VPN tunnels), and across the PEERING backbone mesh. *)

open Netcore

type transport = {
  connect : unit -> unit;
      (** Initiate the connection; the owner later signals
          {!connection_up} or {!connection_failed}. *)
  send : string -> unit;
  close : unit -> unit;
}

type timers = {
  schedule : float -> (unit -> unit) -> unit -> unit;
      (** [schedule delay f] runs [f] after [delay] seconds and returns a
          cancel function. *)
}

(* Automatic re-Start after non-administrative session loss: capped
   exponential backoff, with jitter drawn from a caller-seeded RNG so
   simulated runs stay reproducible. *)
type reconnect_policy = {
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_max : float;  (** backoff cap, seconds *)
  jitter : Random.State.t option;
      (** multiply each delay by a factor in [0.75, 1.25) *)
}

let reconnect_policy ?(backoff_base = 0.5) ?(backoff_max = 30.) ?jitter () =
  { backoff_base; backoff_max; jitter }

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;  (** proposed hold time, seconds *)
  capabilities : Capability.t list;
  connect_retry : float;
  passive : bool;  (** never initiate the transport; wait for the peer *)
  mrai : float;
      (** minimum route advertisement interval, seconds; 0 = send
          immediately *)
  reconnect : reconnect_policy option;
      (** re-Start automatically after non-administrative downs *)
}

let config ?(hold_time = 90) ?(capabilities = []) ?(connect_retry = 5.0)
    ?(passive = false) ?(mrai = 0.) ?reconnect ~local_asn ~local_id () =
  {
    local_asn;
    local_id;
    hold_time;
    capabilities;
    connect_retry;
    passive;
    mrai;
    reconnect;
  }

type handlers = {
  on_update : Msg.update -> unit;
  on_established : unit -> unit;
  on_down : Fsm.down_reason -> unit;
  on_route_refresh : afi:int -> safi:int -> unit;
}

let null_handlers =
  {
    on_update = ignore;
    on_established = ignore;
    on_down = ignore;
    on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
  }

type t = {
  config : config;
  transport : transport;
  timers : timers;
  mutable handlers : handlers;
  mutable state : Fsm.state;
  stream : Codec.Stream.t;
  mutable peer_open : Msg.open_msg option;
  mutable send_params : Codec.params;  (** params for messages we emit *)
  mutable negotiated_hold : int;
  mutable cancel_hold : unit -> unit;
  mutable cancel_keepalive : unit -> unit;
  mutable cancel_connect_retry : unit -> unit;
  mutable cancel_mrai : unit -> unit;
  mutable cancel_reconnect : unit -> unit;
  mutable out_queue : Msg.update list;  (** newest first, MRAI buffering *)
  mutable mrai_armed : bool;
  mutable admin_down : bool;  (** a deliberate [stop]; no auto-reconnect *)
  mutable backoff_level : int;  (** consecutive failed cycles; 0 when up *)
  (* Counters surfaced by the platform's status tooling. *)
  mutable updates_in : int;
  mutable updates_out : int;
  mutable flap_count : int;  (** non-administrative Session_downs *)
  mutable dropped_updates : int;  (** MRAI-queued updates lost to teardown *)
  mutable last_error : string option;
  mutable pending_error : string option;
      (** a codec error recorded before the Stop injection, so the
          resulting Session_down reports it instead of "stopped" *)
}

let create ~config ~transport ~timers ?(handlers = null_handlers) () =
  {
    config;
    transport;
    timers;
    handlers;
    state = Fsm.Idle;
    stream = Codec.Stream.create ();
    peer_open = None;
    send_params = { Codec.default_params with add_path = false };
    negotiated_hold = config.hold_time;
    cancel_hold = ignore;
    cancel_keepalive = ignore;
    cancel_connect_retry = ignore;
    cancel_mrai = ignore;
    cancel_reconnect = ignore;
    out_queue = [];
    mrai_armed = false;
    admin_down = false;
    backoff_level = 0;
    updates_in = 0;
    updates_out = 0;
    flap_count = 0;
    dropped_updates = 0;
    last_error = None;
    pending_error = None;
  }

let set_handlers t handlers = t.handlers <- handlers

let state t = t.state
let established t = t.state = Fsm.Established
let peer_open t = t.peer_open
let send_params t = t.send_params
let stats t = (t.updates_in, t.updates_out)
let last_error t = t.last_error
let flap_count t = t.flap_count
let dropped_updates t = t.dropped_updates
let backoff_level t = t.backoff_level

(* The next reconnect delay before jitter: capped exponential in the
   number of consecutive failed cycles. *)
let next_backoff t =
  match t.config.reconnect with
  | None -> None
  | Some p ->
      Some
        (Float.min p.backoff_max
           (p.backoff_base *. (2. ** float_of_int t.backoff_level)))

(* The graceful-restart window negotiated with the peer (RFC 4724): both
   sides must have advertised the capability. The peer's OPEN survives a
   session drop (it is only replaced by the next OPEN), so consumers can
   consult this from their [on_down] handler. *)
let gr_restart_time t =
  match Capability.graceful_restart t.config.capabilities with
  | None -> None
  | Some _local -> (
      match t.peer_open with
      | Some o ->
          Option.map float_of_int
            (Capability.graceful_restart o.Msg.capabilities)
      | None -> None)

let local_open t : Msg.open_msg =
  {
    version = 4;
    asn = t.config.local_asn;
    hold_time = t.config.hold_time;
    bgp_id = t.config.local_id;
    capabilities = t.config.capabilities;
  }

let negotiate t (peer : Msg.open_msg) =
  t.peer_open <- Some peer;
  t.negotiated_hold <- min t.config.hold_time peer.hold_time;
  let as4 =
    Capability.as4 t.config.capabilities <> None
    && Capability.as4 peer.capabilities <> None
  in
  let ap_send, ap_receive =
    Capability.negotiate_add_path ~local:t.config.capabilities
      ~peer:peer.capabilities ~afi:Capability.afi_ipv4
      ~safi:Capability.safi_unicast
  in
  t.send_params <- { Codec.add_path = ap_send; as4 };
  Codec.Stream.set_params t.stream { Codec.add_path = ap_receive; as4 }

let send_msg t msg =
  (* OPEN is always encoded with default (pre-negotiation) parameters. *)
  let params =
    match msg with
    | Msg.Open _ -> Codec.default_params
    | _ -> t.send_params
  in
  t.transport.send (Codec.encode ~params msg)

let rec run_actions t actions = List.iter (run_action t) actions

and run_action t = function
  | Fsm.Connect_transport -> if not t.config.passive then t.transport.connect ()
  | Fsm.Close_transport ->
      t.cancel_hold ();
      t.cancel_keepalive ();
      t.cancel_connect_retry ();
      (* A torn-down session deliberately discards its MRAI queue: the
         post-restart resync (full re-announce + End-of-RIB) supersedes
         anything that was still buffered. *)
      t.cancel_mrai ();
      t.cancel_mrai <- ignore;
      t.mrai_armed <- false;
      t.dropped_updates <- t.dropped_updates + List.length t.out_queue;
      t.out_queue <- [];
      t.transport.close ()
  | Fsm.Send_open -> send_msg t (Msg.Open (local_open t))
  | Fsm.Send_keepalive -> send_msg t Msg.Keepalive
  | Fsm.Send_notification (code, subcode) ->
      send_msg t (Msg.Notification { code; subcode; data = "" })
  | Fsm.Process_open o -> negotiate t o
  | Fsm.Deliver_update u ->
      t.updates_in <- t.updates_in + 1;
      t.handlers.on_update u
  | Fsm.Deliver_route_refresh (afi, safi) ->
      t.handlers.on_route_refresh ~afi ~safi
  | Fsm.Session_established ->
      t.backoff_level <- 0;
      t.handlers.on_established ()
  | Fsm.Session_down reason ->
      (* Record the failure before the handler runs so it observes the
         true cause (a codec error pins [pending_error] first). *)
      (t.last_error <-
         Some
           (match t.pending_error with
           | Some msg ->
               t.pending_error <- None;
               msg
           | None -> Fsm.down_reason_to_string reason));
      if reason <> Fsm.Admin_stop then begin
        t.flap_count <- t.flap_count + 1;
        schedule_reconnect t
      end;
      t.handlers.on_down reason
  | Fsm.Arm_hold_timer ->
      t.cancel_hold ();
      if t.negotiated_hold > 0 then
        t.cancel_hold <-
          t.timers.schedule
            (float_of_int t.negotiated_hold)
            (fun () -> inject t Fsm.Hold_timer_expired)
  | Fsm.Arm_keepalive_timer ->
      t.cancel_keepalive ();
      if t.negotiated_hold > 0 then
        t.cancel_keepalive <-
          t.timers.schedule
            (float_of_int (max 1 (t.negotiated_hold / 3)))
            (fun () -> inject t Fsm.Keepalive_timer_expired)
  | Fsm.Arm_connect_retry ->
      t.cancel_connect_retry ();
      if not t.config.passive then
        t.cancel_connect_retry <-
          t.timers.schedule t.config.connect_retry (fun () ->
              inject t Fsm.Connect_retry_expired)

(* Schedule the automatic re-Start after a non-administrative down. The
   passive side merely has to be listening again, so it restarts almost
   immediately (and before any active peer's first backoff delay); the
   active side backs off exponentially with optional jitter. *)
and schedule_reconnect t =
  match t.config.reconnect with
  | None -> ()
  | Some p ->
      let delay =
        if t.config.passive then 0.01
        else
          let d =
            Float.min p.backoff_max
              (p.backoff_base *. (2. ** float_of_int t.backoff_level))
          in
          match p.jitter with
          | Some rng -> d *. (0.75 +. Random.State.float rng 0.5)
          | None -> d
      in
      t.backoff_level <- min (t.backoff_level + 1) 24;
      t.cancel_reconnect ();
      t.cancel_reconnect <-
        t.timers.schedule delay (fun () ->
            t.cancel_reconnect <- ignore;
            if (not t.admin_down) && t.state = Fsm.Idle then inject t Fsm.Start)

and inject t event =
  let state, actions = Fsm.step t.state event in
  t.state <- state;
  run_actions t actions

let start t =
  t.admin_down <- false;
  t.cancel_reconnect ();
  t.cancel_reconnect <- ignore;
  inject t Fsm.Start

let stop t =
  t.admin_down <- true;
  t.cancel_reconnect ();
  t.cancel_reconnect <- ignore;
  inject t Fsm.Stop

let connection_up t = inject t Fsm.Connection_up
let connection_failed t = inject t Fsm.Connection_failed

(* Feed raw transport bytes into the session. *)
let receive_bytes t data =
  match Codec.Stream.input t.stream data with
  | Ok msgs -> List.iter (fun m -> inject t (Fsm.Received m)) msgs
  | Error e ->
      (* Record the codec failure *before* injecting Stop, so the
         [on_down] handler and [last_error] observe it rather than a
         stale value. *)
      t.last_error <- Some e.Codec.message;
      t.pending_error <- Some e.Codec.message;
      send_msg t
        (Msg.Notification { code = e.code; subcode = e.subcode; data = "" });
      inject t Fsm.Stop;
      t.pending_error <- None

(* Send an UPDATE; only legal when established. With a non-zero MRAI
   (minimum route advertisement interval, RFC 4271 §9.2.1.1) configured,
   updates are queued and flushed in order once per interval. *)
let rec send_update t (u : Msg.update) =
  if not (established t) then invalid_arg "Session.send_update: not established";
  if t.config.mrai <= 0. then begin
    t.updates_out <- t.updates_out + 1;
    send_msg t (Msg.Update u)
  end
  else begin
    t.out_queue <- u :: t.out_queue;
    if not t.mrai_armed then begin
      t.mrai_armed <- true;
      t.cancel_mrai <-
        t.timers.schedule t.config.mrai (fun () -> flush_mrai t)
    end
  end

and send_encoded t (u : Msg.update) bytes =
  if not (established t) then
    invalid_arg "Session.send_encoded: not established";
  if t.config.mrai <= 0. then begin
    t.updates_out <- t.updates_out + 1;
    t.transport.send bytes
  end
  else
    (* MRAI buffering re-encodes at flush time; the pre-encoded bytes are
       dropped so the queue-drain path stays identical to [send_update]. *)
    send_update t u

and flush_mrai t =
  t.mrai_armed <- false;
  t.cancel_mrai <- ignore;
  let queued = List.rev t.out_queue in
  t.out_queue <- [];
  if established t then
    List.iter
      (fun u ->
        t.updates_out <- t.updates_out + 1;
        send_msg t (Msg.Update u))
      queued

(* Ask the peer to resend its Adj-RIB-Out (RFC 2918). *)
let send_route_refresh ?(afi = Capability.afi_ipv4)
    ?(safi = Capability.safi_unicast) t =
  if not (established t) then
    invalid_arg "Session.send_route_refresh: not established";
  send_msg t (Msg.Route_refresh { afi; safi })
