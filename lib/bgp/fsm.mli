(** The BGP finite state machine (RFC 4271 §8) as a pure transition
    function, testable without any network plumbing — the same
    decoupled-for-testability property the paper's enforcement design
    exploits (§3.3). *)

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type event =
  | Start  (** administrative start *)
  | Stop  (** administrative stop *)
  | Connection_up  (** the transport connected *)
  | Connection_failed
  | Received of Msg.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

(** Why a session went down. Transport losses and hold-timer expiries are
    the transient failures graceful restart (RFC 4724) may paper over;
    administrative stops and protocol errors tear state down hard. *)
type down_reason =
  | Admin_stop
  | Transport_failed
  | Hold_expired
  | Peer_notification of { code : int; subcode : int }
  | Protocol_error of string

val down_reason_to_string : down_reason -> string

val graceful : down_reason -> bool
(** May the consumer retain routes as stale (graceful restart) for this
    kind of failure? *)

(** What the session layer must do after a transition. *)
type action =
  | Connect_transport
  | Close_transport
  | Send_open
  | Send_keepalive
  | Send_notification of int * int  (** (code, subcode) *)
  | Process_open of Msg.open_msg
      (** negotiate capabilities and hold time from the peer's OPEN *)
  | Deliver_update of Msg.update
  | Deliver_route_refresh of int * int
      (** (afi, safi): the peer asked for re-advertisement (RFC 2918) *)
  | Session_established
  | Session_down of down_reason
  | Arm_hold_timer
  | Arm_keepalive_timer
  | Arm_connect_retry

val step : state -> event -> state * action list
(** The transition function. Total: every (state, event) pair is defined. *)
