(* The BGP finite state machine (RFC 4271 §8), as a pure transition
   function: [step state event] returns the successor state and the actions
   the session layer must carry out. Keeping it pure makes the FSM testable
   without any network plumbing — the same property the paper exploits by
   decoupling policy enforcement from the routing engine (§3.3). *)

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

let state_to_string = function
  | Idle -> "idle"
  | Connect -> "connect"
  | Active -> "active"
  | Open_sent -> "open-sent"
  | Open_confirm -> "open-confirm"
  | Established -> "established"

let pp_state ppf s = Fmt.string ppf (state_to_string s)

type event =
  | Start
  | Stop
  | Connection_up
  | Connection_failed
  | Received of Msg.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

(* Why a session went down. The distinction matters to the consumers:
   transport losses and hold-timer expiries are the transient failures
   graceful restart (RFC 4724) is allowed to paper over, while
   administrative stops and protocol errors must tear state down hard. *)
type down_reason =
  | Admin_stop
  | Transport_failed
  | Hold_expired
  | Peer_notification of { code : int; subcode : int }
  | Protocol_error of string

let down_reason_to_string = function
  | Admin_stop -> "stopped"
  | Transport_failed -> "connection failed"
  | Hold_expired -> "hold timer expired"
  | Peer_notification { code; subcode } ->
      Printf.sprintf "notification %d/%d" code subcode
  | Protocol_error msg -> msg

let graceful = function
  | Transport_failed | Hold_expired -> true
  | Admin_stop | Peer_notification _ | Protocol_error _ -> false

type action =
  | Connect_transport
  | Close_transport
  | Send_open
  | Send_keepalive
  | Send_notification of int * int
  | Process_open of Msg.open_msg
      (** Negotiate capabilities/hold time from the peer's OPEN. *)
  | Deliver_update of Msg.update
  | Deliver_route_refresh of int * int
      (** (afi, safi): the peer asked for re-advertisement (RFC 2918). *)
  | Session_established
  | Session_down of down_reason
  | Arm_hold_timer
  | Arm_keepalive_timer
  | Arm_connect_retry

(* Tear down from any state: close, cancel everything, report why. *)
let down reason = (Idle, [ Close_transport; Session_down reason ])

let step state event =
  match (state, event) with
  (* -- administrative events -- *)
  | Idle, Start -> (Connect, [ Connect_transport; Arm_connect_retry ])
  | Idle, _ -> (Idle, [])
  | _, Start -> (state, [])
  | Established, Stop ->
      ( Idle,
        [
          Send_notification (Msg.err_cease, 0);
          Close_transport;
          Session_down Admin_stop;
        ] )
  | _, Stop -> down Admin_stop
  (* -- transport events -- *)
  | (Connect | Active), Connection_up ->
      (Open_sent, [ Send_open; Arm_hold_timer ])
  | Connect, Connection_failed -> (Active, [ Arm_connect_retry ])
  | (Connect | Active), Connect_retry_expired ->
      (Connect, [ Connect_transport; Arm_connect_retry ])
  | (Open_sent | Open_confirm | Established), Connection_failed ->
      down Transport_failed
  | _, Connection_failed -> down Transport_failed
  | _, Connection_up ->
      (* A connection while already negotiating: RFC handles collision;
         we treat it as an error and reset. *)
      down (Protocol_error "unexpected connection")
  (* -- message events -- *)
  | Open_sent, Received (Msg.Open o) ->
      ( Open_confirm,
        [ Process_open o; Send_keepalive; Arm_hold_timer; Arm_keepalive_timer ]
      )
  | Open_confirm, Received Msg.Keepalive ->
      (Established, [ Session_established; Arm_hold_timer ])
  | Established, Received (Msg.Update u) ->
      (Established, [ Deliver_update u; Arm_hold_timer ])
  | Established, Received Msg.Keepalive -> (Established, [ Arm_hold_timer ])
  | Established, Received (Msg.Route_refresh { afi; safi }) ->
      (Established, [ Deliver_route_refresh (afi, safi); Arm_hold_timer ])
  | _, Received (Msg.Notification n) ->
      down (Peer_notification { code = n.code; subcode = n.subcode })
  | _, Received m ->
      ( Idle,
        [
          Send_notification (Msg.err_fsm, 0);
          Close_transport;
          Session_down
            (Protocol_error
               (Fmt.str "unexpected message in %s: %a" (state_to_string state)
                  Msg.pp m));
        ] )
  (* -- timer events -- *)
  | _, Hold_timer_expired ->
      ( Idle,
        [
          Send_notification (Msg.err_hold_timer_expired, 0);
          Close_transport;
          Session_down Hold_expired;
        ] )
  | (Open_confirm | Established), Keepalive_timer_expired ->
      (state, [ Send_keepalive; Arm_keepalive_timer ])
  | _, Keepalive_timer_expired -> (state, [])
  | _, Connect_retry_expired -> (state, [])
