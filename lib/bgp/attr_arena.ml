(* Hash-consing arena for attribute sets (see the .mli). A weak hash set
   keyed on the canonically-sorted attribute list maps every
   observationally-equal set onto one physically-unique, id-stamped
   handle. The weak table holds handles weakly: when the last RIB row or
   Adj-RIB-Out entry referencing a handle goes away, the GC reclaims the
   entry — no refcounting in the router planes. *)

type handle = { id : int; set : Attr.set }

(* The weak set keys on the canonical set; [id] is ignored so a fresh
   candidate matches an existing handle for the same attributes. *)
module Key = struct
  type t = handle

  let equal a b = a.set == b.set || Attr.equal_set a.set b.set
  let hash h = Attr.hash_set h.set
end

module W = Weak.Make (Key)

(* [lock] serializes interning (and stats maintenance): [W.merge] probes
   and may resize the weak table, and the id/hit/miss counters are plain
   mutable fields, so concurrent interns from several domains would race.
   Taking the mutex only on the intern slow path keeps the fast property
   intact: a handle, once returned, is an immutable value — reading,
   hashing, or comparing handles never takes the lock. *)
type t = {
  tbl : W.t;
  lock : Mutex.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 1024) () =
  { tbl = W.create size; lock = Mutex.create (); next_id = 0; hits = 0;
    misses = 0 }

(* One arena for the whole platform: sharing across routers, tables and
   planes is the point. *)
let global = create ~size:4096 ()

let intern ?(arena = global) set =
  (* Canonicalization is pure; only the table merge needs the lock. *)
  let sorted = Attr.sort set in
  Mutex.lock arena.lock;
  let candidate = { id = arena.next_id; set = sorted } in
  let found = W.merge arena.tbl candidate in
  if found == candidate then begin
    arena.misses <- arena.misses + 1;
    arena.next_id <- arena.next_id + 1
  end
  else arena.hits <- arena.hits + 1;
  Mutex.unlock arena.lock;
  found

let intern_set ?arena s = (intern ?arena s).set
let set h = h.set
let id h = h.id
let equal (a : handle) (b : handle) = a == b
let hash h = h.id
let pp ppf h = Fmt.pf ppf "#%d{%a}" h.id Attr.pp_set h.set

type stats = { hits : int; misses : int; live : int }

let stats ?(arena = global) () =
  Mutex.lock arena.lock;
  let s = { hits = arena.hits; misses = arena.misses; live = W.count arena.tbl } in
  Mutex.unlock arena.lock;
  s

let reset_stats ?(arena = global) () =
  Mutex.lock arena.lock;
  arena.hits <- 0;
  arena.misses <- 0;
  Mutex.unlock arena.lock
