(* Hash-consing arena for attribute sets (see the .mli). A weak hash set
   keyed on the canonically-sorted attribute list maps every
   observationally-equal set onto one physically-unique, id-stamped
   handle. The weak table holds handles weakly: when the last RIB row or
   Adj-RIB-Out entry referencing a handle goes away, the GC reclaims the
   entry — no refcounting in the router planes.

   The table is striped: [stripes] independent weak sets, each behind its
   own mutex, selected by the canonical set's hash. Interns for different
   attribute sets land on different stripes with high probability, so
   concurrent ingest workers rarely serialize on one lock (the PR 7
   arena used a single mutex, which was the known contention point once
   several domains interned at once). Ids come from one [Atomic] counter,
   taken only on a miss, so handles stay globally unique and dense. *)

type handle = { id : int; set : Attr.set }

(* The weak set keys on the canonical set; [id] is ignored so a fresh
   candidate matches an existing handle for the same attributes. *)
module Key = struct
  type t = handle

  let equal a b = a.set == b.set || Attr.equal_set a.set b.set
  let hash h = Attr.hash_set h.set
end

module W = Weak.Make (Key)

(* One stripe: a weak table, the mutex serializing its probe/resize, and
   plain counters (mutated only under the stripe's lock). [locks] counts
   every acquisition on the intern path; [contended] the subset where a
   [try_lock] failed first — i.e. another domain held this stripe at
   that moment. *)
type stripe = {
  tbl : W.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable locks : int;
  mutable contended : int;
}

type t = { stripes : stripe array; mask : int; next_id : int Atomic.t }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(size = 1024) ?(stripes = 8) () =
  let stripes = pow2_at_least (max 1 stripes) 1 in
  {
    stripes =
      Array.init stripes (fun _ ->
          {
            tbl = W.create (max 8 (size / stripes));
            lock = Mutex.create ();
            hits = 0;
            misses = 0;
            locks = 0;
            contended = 0;
          });
    mask = stripes - 1;
    next_id = Atomic.make 0;
  }

(* One arena for the whole platform: sharing across routers, tables and
   planes is the point. *)
let global = create ~size:4096 ~stripes:16 ()

(* Lock a stripe, counting the acquisition and whether it contended. *)
let stripe_lock s =
  if Mutex.try_lock s.lock then s.locks <- s.locks + 1
  else begin
    Mutex.lock s.lock;
    s.locks <- s.locks + 1;
    s.contended <- s.contended + 1
  end

(* Intern an already-canonicalized (sorted) set. *)
let intern_sorted arena sorted =
  let s = arena.stripes.(Attr.hash_set sorted land arena.mask) in
  stripe_lock s;
  let found =
    match W.find_opt s.tbl { id = -1; set = sorted } with
    | Some h ->
        s.hits <- s.hits + 1;
        h
    | None ->
        let h = { id = Atomic.fetch_and_add arena.next_id 1; set = sorted } in
        W.add s.tbl h;
        s.misses <- s.misses + 1;
        h
  in
  Mutex.unlock s.lock;
  found

let intern ?(arena = global) set =
  (* Canonicalization is pure; only the stripe probe needs the lock. *)
  intern_sorted arena (Attr.sort set)

let intern_set ?arena s = (intern ?arena s).set
let set h = h.set
let id h = h.id
let equal (a : handle) (b : handle) = a == b
let hash h = h.id
let pp ppf h = Fmt.pf ppf "#%d{%a}" h.id Attr.pp_set h.set

type stats = {
  hits : int;
  misses : int;
  live : int;
  locks : int;
  contended : int;
}

let stats ?(arena = global) () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let acc =
        {
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          live = acc.live + W.count s.tbl;
          locks = acc.locks + s.locks;
          contended = acc.contended + s.contended;
        }
      in
      Mutex.unlock s.lock;
      acc)
    { hits = 0; misses = 0; live = 0; locks = 0; contended = 0 }
    arena.stripes

let reset_stats ?(arena = global) () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      s.hits <- 0;
      s.misses <- 0;
      s.locks <- 0;
      s.contended <- 0;
      Mutex.unlock s.lock)
    arena.stripes

(* -- per-domain intern front cache ------------------------------------------ *)

(* A small direct-mapped memo in front of the arena, owned by exactly one
   domain (no locks): a hit resolves a set to its canonical handle
   without touching any stripe at all. The ingest workers keep one each —
   full-table feeds repeat a modest number of distinct attribute sets, so
   most interns never reach the shared arena. *)
module Front = struct
  type cache = {
    fc_arena : t;
    fc_slots : handle option array;
    fc_mask : int;
    mutable fc_hits : int;
    mutable fc_misses : int;
  }

  let create ?(arena = global) ?(slots = 4096) () =
    let slots = pow2_at_least (max 2 slots) 2 in
    {
      fc_arena = arena;
      fc_slots = Array.make slots None;
      fc_mask = slots - 1;
      fc_hits = 0;
      fc_misses = 0;
    }

  let intern c set =
    let sorted = Attr.sort set in
    let i = Attr.hash_set sorted land c.fc_mask in
    match c.fc_slots.(i) with
    | Some h when h.set == sorted || Attr.equal_set h.set sorted ->
        c.fc_hits <- c.fc_hits + 1;
        h
    | _ ->
        c.fc_misses <- c.fc_misses + 1;
        let h = intern_sorted c.fc_arena sorted in
        c.fc_slots.(i) <- Some h;
        h

  let hits c = c.fc_hits
  let misses c = c.fc_misses
end
