(** BGP-4 messages (RFC 4271 §4, plus RFC 2918 ROUTE-REFRESH).

    NLRI entries carry an optional path identifier so one session can
    announce multiple routes per prefix (ADD-PATH, RFC 7911) — the
    mechanism vBGP uses to give experiments full visibility. *)

type nlri = { prefix : Netcore.Prefix.t; path_id : int option }

val nlri : ?path_id:int -> Netcore.Prefix.t -> nlri
val pp_nlri : Format.formatter -> nlri -> unit

type open_msg = {
  version : int;
  asn : Asn.t;
  hold_time : int;
  bgp_id : Netcore.Ipv4.t;
  capabilities : Capability.t list;
}

type update = {
  withdrawn : nlri list;
  attrs : Attr.set;
  announced : nlri list;
}

val update :
  ?withdrawn:nlri list -> ?attrs:Attr.set -> ?announced:nlri list -> unit -> update

val is_end_of_rib : update -> bool
(** RFC 4724 §2: an empty UPDATE marks the end of the initial routing
    update after a restart (mark-and-sweep resync boundary). *)

type notification = { code : int; subcode : int; data : string }

(** Notification error codes (RFC 4271 §6.1). *)

val err_message_header : int
val err_open_message : int
val err_update_message : int
val err_hold_timer_expired : int
val err_fsm : int
val err_cease : int

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }
      (** RFC 2918: ask the peer to re-advertise its Adj-RIB-Out. *)

val pp : Format.formatter -> t -> unit
