(** Hash-consing arena for attribute sets.

    The mux exports every route from every neighbor to every experiment
    (paper §4.2), so the same attribute set is stored in many RIB rows,
    Adj-RIB-Outs, and experiment variants at once. Interning collapses
    all of them onto one canonical, physically-unique copy — the same
    trick as BIRD's [ea_list] cache — and stamps it with an id so
    equality and hashing are O(1).

    Handles are weak-table backed: an attribute set whose last route is
    withdrawn is reclaimed by the GC; nothing needs explicit release.

    {b Concurrency:} arenas are domain-safe. The table is striped: each
    stripe (selected by the canonical set's hash) is an independent weak
    set behind its own mutex, so interns for different attribute sets
    from different domains rarely serialize on the same lock; handle ids
    come from one [Atomic] counter, so handles stay unique platform-wide.
    Handles themselves are immutable values, so every read-side
    operation — {!equal}, {!hash}, {!id}, {!set}, pattern matching on a
    handle — is lock-free and safe from any domain. For a single domain
    doing bulk interning (an ingest worker), {!Front} removes even the
    uncontended lock from the common case. *)

type handle = private { id : int; set : Attr.set }
(** A canonical interned attribute set. Two handles for observationally
    equal sets are physically equal; [set] is sorted by type code. *)

type t
(** An arena. Most callers use {!global} (sharing is platform-wide). *)

val create : ?size:int -> ?stripes:int -> unit -> t
(** [stripes] is rounded up to a power of two (default 8; {!global} uses
    16). [size] is the initial weak capacity spread across stripes. *)

val global : t

val intern : ?arena:t -> Attr.set -> handle
(** Canonicalize (sort by type code) and return the unique handle for
    the set, allocating one on first sight. O(size of the set).
    Domain-safe: the table probe is serialized per stripe. *)

val intern_set : ?arena:t -> Attr.set -> Attr.set
(** [(intern s).set]: the canonical physically-shared representation. *)

val set : handle -> Attr.set
val id : handle -> int

val equal : handle -> handle -> bool
(** O(1): physical equality of canonical handles. *)

val hash : handle -> int
(** O(1): the stamp id. *)

val pp : Format.formatter -> handle -> unit

(** {1 Observability} *)

type stats = {
  hits : int;  (** interns that found an existing handle *)
  misses : int;  (** interns that allocated a new handle *)
  live : int;  (** handles currently alive (weak count) *)
  locks : int;  (** stripe-lock acquisitions on the intern path *)
  contended : int;
      (** acquisitions where a [try_lock] failed first, i.e. another
          domain held the stripe at that moment *)
}

val stats : ?arena:t -> unit -> stats
(** Summed across stripes. *)

val reset_stats : ?arena:t -> unit -> unit
(** Zero the hit/miss/lock counters (benchmark harness); live is
    untouched. *)

(** {1 Per-domain intern front cache}

    A small direct-mapped memo in front of an arena. A cache must be
    owned by exactly one domain at a time (it is unsynchronized); on a
    hit it resolves a set to its canonical handle without touching any
    stripe lock. The parallel ingest workers keep one each — full-table
    feeds repeat a modest number of distinct attribute sets, so most
    interns never reach the shared arena at all. *)
module Front : sig
  type cache

  val create : ?arena:t -> ?slots:int -> unit -> cache
  (** [slots] is rounded up to a power of two (default 4096). *)

  val intern : cache -> Attr.set -> handle
  (** Same contract as {!val:intern} (same arena, same handles — a front
      cache never affects which handle a set resolves to). *)

  val hits : cache -> int
  val misses : cache -> int
end
