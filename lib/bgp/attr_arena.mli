(** Hash-consing arena for attribute sets.

    The mux exports every route from every neighbor to every experiment
    (paper §4.2), so the same attribute set is stored in many RIB rows,
    Adj-RIB-Outs, and experiment variants at once. Interning collapses
    all of them onto one canonical, physically-unique copy — the same
    trick as BIRD's [ea_list] cache — and stamps it with an id so
    equality and hashing are O(1).

    Handles are weak-table backed: an attribute set whose last route is
    withdrawn is reclaimed by the GC; nothing needs explicit release.

    {b Concurrency:} arenas are domain-safe. {!intern} (and the stats
    accessors) take a per-arena mutex — the weak table probe/resize and
    the id counter are the only shared mutable state. Handles themselves
    are immutable values, so every read-side operation — {!equal},
    {!hash}, {!id}, {!set}, pattern matching on a handle — is lock-free
    and safe from any domain; interned handles remain physically unique
    platform-wide, so O(1) handle comparison works across domains. *)

type handle = private { id : int; set : Attr.set }
(** A canonical interned attribute set. Two handles for observationally
    equal sets are physically equal; [set] is sorted by type code. *)

type t
(** An arena. Most callers use {!global} (sharing is platform-wide). *)

val create : ?size:int -> unit -> t
val global : t

val intern : ?arena:t -> Attr.set -> handle
(** Canonicalize (sort by type code) and return the unique handle for
    the set, allocating one on first sight. O(size of the set).
    Domain-safe: the table merge is serialized on the arena's mutex. *)

val intern_set : ?arena:t -> Attr.set -> Attr.set
(** [(intern s).set]: the canonical physically-shared representation. *)

val set : handle -> Attr.set
val id : handle -> int

val equal : handle -> handle -> bool
(** O(1): physical equality of canonical handles. *)

val hash : handle -> int
(** O(1): the stamp id. *)

val pp : Format.formatter -> handle -> unit

(** {1 Observability} *)

type stats = {
  hits : int;  (** interns that found an existing handle *)
  misses : int;  (** interns that allocated a new handle *)
  live : int;  (** handles currently alive (weak count) *)
}

val stats : ?arena:t -> unit -> stats
val reset_stats : ?arena:t -> unit -> unit
(** Zero the hit/miss counters (benchmark harness); live is untouched. *)
