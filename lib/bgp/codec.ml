(* The BGP-4 wire codec: RFC 4271 messages, RFC 6793 four-byte ASNs, RFC
   7911 ADD-PATH NLRI encoding, and RFC 4760 MP-BGP attributes.

   Every byte exchanged between experiments, vBGP routers, and simulated
   neighbors in this repository passes through this codec, so experiments
   exercise the same protocol surface they would against a hardware router
   (the paper's compatibility requirement, §2.2). *)

open Netcore

type error = { code : int; subcode : int; message : string }

exception Decode_error of error

let fail code subcode message = raise (Decode_error { code; subcode; message })

(* Per-session codec parameters fixed by capability negotiation. *)
type params = { add_path : bool; as4 : bool }

let default_params = { add_path = false; as4 = true }

let marker = String.make 16 '\xff'
let header_size = 19
let max_message_size = 65535 (* RFC 8654 extended messages; see also
                                [classic_max_message_size] below *)

let type_open = 1
let type_update = 2
let type_notification = 3
let type_keepalive = 4
let type_route_refresh = 5

(* -- IPv4 NLRI ----------------------------------------------------------- *)

let encode_nlri ~add_path w (n : Msg.nlri) =
  (match (add_path, n.path_id) with
  | true, Some id -> Wire.Writer.u32 w (Int32.of_int id)
  | true, None -> Wire.Writer.u32 w 0l
  | false, _ -> ());
  let len = Prefix.length n.prefix in
  Wire.Writer.u8 w len;
  let nbytes = (len + 7) / 8 in
  let v = Ipv4.to_int32 (Prefix.network n.prefix) in
  for i = 0 to nbytes - 1 do
    Wire.Writer.u8 w
      (Int32.to_int (Int32.shift_right_logical v (24 - (8 * i))) land 0xff)
  done

let decode_nlri ~add_path r : Msg.nlri =
  let path_id =
    if add_path then Some (Int32.to_int (Wire.Reader.u32 r) land 0xffffffff)
    else None
  in
  let len = Wire.Reader.u8 r in
  if len > 32 then fail Msg.err_update_message 10 "nlri length > 32";
  let nbytes = (len + 7) / 8 in
  let v = ref 0l in
  for i = 0 to nbytes - 1 do
    v :=
      Int32.logor !v
        (Int32.shift_left (Int32.of_int (Wire.Reader.u8 r)) (24 - (8 * i)))
  done;
  { prefix = Prefix.make (Ipv4.of_int32 !v) len; path_id }

let rec decode_nlris ~add_path r acc =
  if Wire.Reader.eof r then List.rev acc
  else decode_nlris ~add_path r (decode_nlri ~add_path r :: acc)

(* -- IPv6 NLRI (for MP attributes) --------------------------------------- *)

let encode_nlri_v6 ~add_path w (prefix, path_id) =
  (match (add_path, path_id) with
  | true, Some id -> Wire.Writer.u32 w (Int32.of_int id)
  | true, None -> Wire.Writer.u32 w 0l
  | false, _ -> ());
  let len = Prefix_v6.length prefix in
  Wire.Writer.u8 w len;
  let nbytes = (len + 7) / 8 in
  let network = Prefix_v6.network prefix in
  for i = 0 to nbytes - 1 do
    let byte = ref 0 in
    for b = 0 to 7 do
      let bitpos = (i * 8) + b in
      if bitpos < 128 && Ipv6.bit network bitpos then
        byte := !byte lor (1 lsl (7 - b))
    done;
    Wire.Writer.u8 w !byte
  done

let decode_nlri_v6 ~add_path r =
  let path_id =
    if add_path then Some (Int32.to_int (Wire.Reader.u32 r) land 0xffffffff)
    else None
  in
  let len = Wire.Reader.u8 r in
  if len > 128 then fail Msg.err_update_message 10 "v6 nlri length > 128";
  let nbytes = (len + 7) / 8 in
  let addr = ref Ipv6.any in
  for i = 0 to nbytes - 1 do
    let byte = Wire.Reader.u8 r in
    for b = 0 to 7 do
      let bitpos = (i * 8) + b in
      if bitpos < 128 && byte land (1 lsl (7 - b)) <> 0 then
        addr := Ipv6.set_bit !addr bitpos true
    done
  done;
  (Prefix_v6.make !addr len, path_id)

let rec decode_nlris_v6 ~add_path r acc =
  if Wire.Reader.eof r then List.rev acc
  else decode_nlris_v6 ~add_path r (decode_nlri_v6 ~add_path r :: acc)

(* -- AS paths ------------------------------------------------------------ *)

let encode_as_path ~as4 w path =
  let write_asn asn =
    if as4 then Wire.Writer.u32 w (Int32.of_int (Asn.to_int asn))
    else
      Wire.Writer.u16 w
        (if Asn.is_4byte asn then Asn.as_trans else Asn.to_int asn)
  in
  List.iter
    (fun seg ->
      let typ, asns =
        match seg with Aspath.Set l -> (1, l) | Aspath.Seq l -> (2, l)
      in
      if List.length asns > 255 then
        invalid_arg "Codec: AS path segment too long";
      Wire.Writer.u8 w typ;
      Wire.Writer.u8 w (List.length asns);
      List.iter write_asn asns)
    path

let decode_as_path ~as4 r =
  let read_asn () =
    if as4 then
      Asn.of_int (Int32.to_int (Wire.Reader.u32 r) land 0xffffffff)
    else Asn.of_int (Wire.Reader.u16 r)
  in
  let rec segments acc =
    if Wire.Reader.eof r then List.rev acc
    else begin
      let typ = Wire.Reader.u8 r in
      let count = Wire.Reader.u8 r in
      let asns = List.init count (fun _ -> read_asn ()) in
      let seg =
        match typ with
        | 1 -> Aspath.Set asns
        | 2 -> Aspath.Seq asns
        | t ->
            fail Msg.err_update_message 11
              (Printf.sprintf "bad AS path segment type %d" t)
      in
      segments (seg :: acc)
    end
  in
  segments []

(* -- Path attributes ------------------------------------------------------ *)

let encode_attr ~params w attr =
  let body = Wire.Writer.create () in
  (match attr with
  | Attr.Origin o -> Wire.Writer.u8 body (Attr.origin_to_int o)
  | Attr.As_path p -> encode_as_path ~as4:params.as4 body p
  | Attr.Next_hop nh -> Wire.Writer.u32 body (Ipv4.to_int32 nh)
  | Attr.Med m -> Wire.Writer.u32 body (Int32.of_int m)
  | Attr.Local_pref l -> Wire.Writer.u32 body (Int32.of_int l)
  | Attr.Atomic_aggregate -> ()
  | Attr.Aggregator { asn; addr } ->
      if params.as4 then Wire.Writer.u32 body (Int32.of_int (Asn.to_int asn))
      else
        Wire.Writer.u16 body
          (if Asn.is_4byte asn then Asn.as_trans else Asn.to_int asn);
      Wire.Writer.u32 body (Ipv4.to_int32 addr)
  | Attr.Communities cs ->
      List.iter (fun c -> Wire.Writer.u32 body (Community.to_int32 c)) cs
  | Attr.Originator_id id -> Wire.Writer.u32 body (Ipv4.to_int32 id)
  | Attr.Cluster_list l ->
      List.iter (fun ip -> Wire.Writer.u32 body (Ipv4.to_int32 ip)) l
  | Attr.Mp_reach { next_hop; nlri } ->
      Wire.Writer.u16 body Capability.afi_ipv6;
      Wire.Writer.u8 body Capability.safi_unicast;
      Wire.Writer.u8 body 16;
      Wire.Writer.u64 body next_hop.Ipv6.hi;
      Wire.Writer.u64 body next_hop.Ipv6.lo;
      Wire.Writer.u8 body 0 (* reserved *);
      List.iter (encode_nlri_v6 ~add_path:params.add_path body) nlri
  | Attr.Mp_unreach nlri ->
      Wire.Writer.u16 body Capability.afi_ipv6;
      Wire.Writer.u8 body Capability.safi_unicast;
      List.iter (encode_nlri_v6 ~add_path:params.add_path body) nlri
  | Attr.Large_communities cs ->
      List.iter
        (fun (c : Large_community.t) ->
          Wire.Writer.u32 body (Int32.of_int c.global);
          Wire.Writer.u32 body (Int32.of_int c.data1);
          Wire.Writer.u32 body (Int32.of_int c.data2))
        cs
  | Attr.Unknown { data; _ } -> Wire.Writer.string body data);
  let value = Wire.Writer.contents body in
  let len = String.length value in
  let flags = Attr.flags attr in
  let flags = if len > 255 then flags lor Attr.flag_ext_len else flags in
  Wire.Writer.u8 w flags;
  Wire.Writer.u8 w (Attr.type_code attr);
  if len > 255 then Wire.Writer.u16 w len else Wire.Writer.u8 w len;
  Wire.Writer.string w value

let decode_attr ~params r =
  let flags = Wire.Reader.u8 r in
  let code = Wire.Reader.u8 r in
  let len =
    if flags land Attr.flag_ext_len <> 0 then Wire.Reader.u16 r
    else Wire.Reader.u8 r
  in
  let body = Wire.Reader.sub r len in
  match code with
  | 1 -> (
      match Attr.origin_of_int (Wire.Reader.u8 body) with
      | Some o -> Attr.Origin o
      | None -> fail Msg.err_update_message 6 "invalid ORIGIN")
  | 2 -> Attr.As_path (decode_as_path ~as4:params.as4 body)
  | 3 -> Attr.Next_hop (Ipv4.of_int32 (Wire.Reader.u32 body))
  | 4 -> Attr.Med (Int32.to_int (Wire.Reader.u32 body) land 0xffffffff)
  | 5 -> Attr.Local_pref (Int32.to_int (Wire.Reader.u32 body) land 0xffffffff)
  | 6 -> Attr.Atomic_aggregate
  | 7 ->
      let asn =
        if params.as4 then
          Asn.of_int (Int32.to_int (Wire.Reader.u32 body) land 0xffffffff)
        else Asn.of_int (Wire.Reader.u16 body)
      in
      Attr.Aggregator { asn; addr = Ipv4.of_int32 (Wire.Reader.u32 body) }
  | 8 ->
      let rec cs acc =
        if Wire.Reader.eof body then List.rev acc
        else cs (Community.of_int32 (Wire.Reader.u32 body) :: acc)
      in
      Attr.Communities (cs [])
  | 9 -> Attr.Originator_id (Ipv4.of_int32 (Wire.Reader.u32 body))
  | 10 ->
      let rec ids acc =
        if Wire.Reader.eof body then List.rev acc
        else ids (Ipv4.of_int32 (Wire.Reader.u32 body) :: acc)
      in
      Attr.Cluster_list (ids [])
  | 14 ->
      let afi = Wire.Reader.u16 body in
      let safi = Wire.Reader.u8 body in
      if afi <> Capability.afi_ipv6 || safi <> Capability.safi_unicast then
        Attr.Unknown { flags; code; data = Wire.Reader.take_rest body }
      else begin
        let nh_len = Wire.Reader.u8 body in
        if nh_len <> 16 then fail Msg.err_update_message 8 "bad MP next hop";
        let hi = Wire.Reader.u64 body in
        let lo = Wire.Reader.u64 body in
        let _reserved = Wire.Reader.u8 body in
        let nlri = decode_nlris_v6 ~add_path:params.add_path body [] in
        Attr.Mp_reach { next_hop = Ipv6.make hi lo; nlri }
      end
  | 15 ->
      let afi = Wire.Reader.u16 body in
      let safi = Wire.Reader.u8 body in
      if afi <> Capability.afi_ipv6 || safi <> Capability.safi_unicast then
        Attr.Unknown { flags; code; data = Wire.Reader.take_rest body }
      else Attr.Mp_unreach (decode_nlris_v6 ~add_path:params.add_path body [])
  | 32 ->
      let rec cs acc =
        if Wire.Reader.eof body then List.rev acc
        else
          let global = Int32.to_int (Wire.Reader.u32 body) land 0xffffffff in
          let data1 = Int32.to_int (Wire.Reader.u32 body) land 0xffffffff in
          let data2 = Int32.to_int (Wire.Reader.u32 body) land 0xffffffff in
          cs (Large_community.make global data1 data2 :: acc)
      in
      Attr.Large_communities (cs [])
  | code -> Attr.Unknown { flags; code; data = Wire.Reader.take_rest body }

(* -- UPDATE packing (RFC 4271 §4.1) ---------------------------------------- *)

(* Classic BGP message-size ceiling. The codec itself accepts RFC 8654
   extended messages; packed re-export splits at the classic boundary so
   a packed UPDATE is valid toward any RFC 4271 speaker. *)
let classic_max_message_size = 4096

let nlri_encoded_size ~add_path (n : Msg.nlri) =
  (if add_path then 4 else 0) + 1 + ((Prefix.length n.prefix + 7) / 8)

(* The path-attribute block of an UPDATE (sorted, wire-encoded, without
   the two-byte length prefix), ready to be spliced by
   [encode_update_spliced]. The block is a pure function of (attrs,
   params), so encoding it once per update-group and reusing it across
   every packed message — the export lane's wire cache — is byte-exact
   by construction. *)
let encode_attrs_block ?(params = default_params) attrs =
  let w = Wire.Writer.create () in
  List.iter (encode_attr ~params w) (Attr.sort attrs);
  Wire.Writer.contents w

let encoded_attrs_size ~params attrs =
  String.length (encode_attrs_block ~params attrs)

(* Greedily chunk [nlris] so each chunk's NLRI bytes fit in [capacity]
   (at least one NLRI per chunk, so a pathological capacity degrades to
   one-per-message rather than looping). *)
let chunk_nlris ~add_path ~capacity nlris =
  let rec go current current_size chunks = function
    | [] ->
        List.rev
          (match current with [] -> chunks | c -> List.rev c :: chunks)
    | n :: rest ->
        let s = nlri_encoded_size ~add_path n in
        if current = [] || current_size + s <= capacity then
          go (n :: current) (current_size + s) chunks rest
        else go [ n ] s (List.rev current :: chunks) rest
  in
  go [] 0 [] nlris

(* Split one (possibly many-NLRI) UPDATE into messages that each encode
   within [max_size] bytes. Withdrawals are packed into leading
   attribute-less messages; announcements follow, each message carrying
   the shared attribute block. An UPDATE already within bounds (the
   common case) is returned unchanged; an UPDATE with no v4 NLRI
   (End-of-RIB, MP-only) is never split. *)
let split_update ?(params = default_params) ?(max_size = classic_max_message_size)
    ?attrs_size (u : Msg.update) =
  let add_path = params.add_path in
  (* header + withdrawn-routes-len + total-attrs-len *)
  let base = header_size + 2 + 2 in
  let attrs_size =
    match attrs_size with
    | Some s -> s
    | None ->
        if u.Msg.attrs = [] then 0 else encoded_attrs_size ~params u.Msg.attrs
  in
  let nlri_bytes = List.fold_left (fun a n -> a + nlri_encoded_size ~add_path n) 0 in
  let total =
    base + attrs_size + nlri_bytes u.Msg.withdrawn + nlri_bytes u.Msg.announced
  in
  if total <= max_size || (u.Msg.withdrawn = [] && u.Msg.announced = []) then
    [ u ]
  else
    let withdraws =
      chunk_nlris ~add_path ~capacity:(max_size - base) u.Msg.withdrawn
      |> List.map (fun withdrawn -> Msg.update ~withdrawn ())
    in
    let announces =
      match (u.Msg.announced, u.Msg.attrs) with
      | [], [] -> []
      | [], attrs ->
          (* No v4 NLRI but a non-empty attribute block (e.g. MP
             attributes): keep it rather than silently dropping it. *)
          [ Msg.update ~attrs () ]
      | announced, attrs ->
          chunk_nlris ~add_path ~capacity:(max_size - base - attrs_size)
            announced
          |> List.map (fun announced -> Msg.update ~attrs ~announced ())
    in
    withdraws @ announces

(* -- Messages ------------------------------------------------------------- *)

let encode_open (o : Msg.open_msg) w =
  Wire.Writer.u8 w o.version;
  Wire.Writer.u16 w
    (if Asn.is_4byte o.asn then Asn.as_trans else Asn.to_int o.asn);
  Wire.Writer.u16 w o.hold_time;
  Wire.Writer.u32 w (Ipv4.to_int32 o.bgp_id);
  let caps = Wire.Writer.create () in
  List.iter
    (fun cap ->
      let value = Capability.encode_value cap in
      Wire.Writer.u8 caps (Capability.code cap);
      Wire.Writer.u8 caps (String.length value);
      Wire.Writer.string caps value)
    o.capabilities;
  let caps = Wire.Writer.contents caps in
  if caps = "" then Wire.Writer.u8 w 0
  else begin
    (* One optional parameter of type 2 (capabilities). *)
    Wire.Writer.u8 w (String.length caps + 2);
    Wire.Writer.u8 w 2;
    Wire.Writer.u8 w (String.length caps);
    Wire.Writer.string w caps
  end

let decode_open r : Msg.open_msg =
  let version = Wire.Reader.u8 r in
  if version <> 4 then fail Msg.err_open_message 1 "unsupported version";
  let asn2 = Wire.Reader.u16 r in
  let hold_time = Wire.Reader.u16 r in
  if hold_time = 1 || hold_time = 2 then
    fail Msg.err_open_message 6 "unacceptable hold time";
  let bgp_id = Ipv4.of_int32 (Wire.Reader.u32 r) in
  let opt_len = Wire.Reader.u8 r in
  let opts = Wire.Reader.sub r opt_len in
  let capabilities = ref [] in
  while not (Wire.Reader.eof opts) do
    let ptype = Wire.Reader.u8 opts in
    let plen = Wire.Reader.u8 opts in
    let pbody = Wire.Reader.sub opts plen in
    if ptype = 2 then
      while not (Wire.Reader.eof pbody) do
        let code = Wire.Reader.u8 pbody in
        let clen = Wire.Reader.u8 pbody in
        let data = Wire.Reader.take pbody clen in
        capabilities := Capability.decode_value ~code ~data :: !capabilities
      done
  done;
  let capabilities = List.rev !capabilities in
  (* A 4-byte speaker sends AS_TRANS in the 2-byte field and its real ASN in
     the AS4 capability. *)
  let asn =
    match Capability.as4 capabilities with
    | Some asn -> asn
    | None -> Asn.of_int asn2
  in
  { version; asn; hold_time; bgp_id; capabilities }

let encode_update ~params (u : Msg.update) w =
  let withdrawn = Wire.Writer.create () in
  List.iter (encode_nlri ~add_path:params.add_path withdrawn) u.withdrawn;
  let withdrawn = Wire.Writer.contents withdrawn in
  Wire.Writer.u16 w (String.length withdrawn);
  Wire.Writer.string w withdrawn;
  let attrs = Wire.Writer.create () in
  List.iter (encode_attr ~params attrs) (Attr.sort u.attrs);
  let attrs = Wire.Writer.contents attrs in
  Wire.Writer.u16 w (String.length attrs);
  Wire.Writer.string w attrs;
  List.iter (encode_nlri ~add_path:params.add_path w) u.announced

let decode_update ~params r : Msg.update =
  let wlen = Wire.Reader.u16 r in
  let wr = Wire.Reader.sub r wlen in
  let withdrawn = decode_nlris ~add_path:params.add_path wr [] in
  let alen = Wire.Reader.u16 r in
  let ar = Wire.Reader.sub r alen in
  let rec attrs acc =
    if Wire.Reader.eof ar then List.rev acc
    else attrs (decode_attr ~params ar :: acc)
  in
  let attrs = attrs [] in
  let announced = decode_nlris ~add_path:params.add_path r [] in
  { withdrawn; attrs; announced }

let encode ?(params = default_params) msg =
  let w = Wire.Writer.create ~capacity:64 () in
  Wire.Writer.string w marker;
  let len_off = Wire.Writer.reserve w 2 in
  (match msg with
  | Msg.Open o ->
      Wire.Writer.u8 w type_open;
      encode_open o w
  | Msg.Update u ->
      Wire.Writer.u8 w type_update;
      encode_update ~params u w
  | Msg.Notification n ->
      Wire.Writer.u8 w type_notification;
      Wire.Writer.u8 w n.code;
      Wire.Writer.u8 w n.subcode;
      Wire.Writer.string w n.data
  | Msg.Keepalive -> Wire.Writer.u8 w type_keepalive
  | Msg.Route_refresh { afi; safi } ->
      Wire.Writer.u8 w type_route_refresh;
      Wire.Writer.u16 w afi;
      Wire.Writer.u8 w 0;
      Wire.Writer.u8 w safi);
  let len = Wire.Writer.length w in
  if len > max_message_size then invalid_arg "Codec.encode: message too long";
  Wire.Writer.patch_u16 w len_off len;
  Wire.Writer.contents w

(* Serialize one UPDATE around a pre-encoded attribute block.
   [attrs_block] must be [encode_attrs_block ~params u.attrs] (the
   caller caches it across messages); [u.attrs] itself is ignored here.
   The result is byte-identical to [encode ~params (Msg.Update u)] —
   the splice-roundtrip QCheck property pins this. *)
let encode_update_spliced ?(params = default_params) ~attrs_block
    (u : Msg.update) =
  let w = Wire.Writer.create ~capacity:64 () in
  Wire.Writer.string w marker;
  let len_off = Wire.Writer.reserve w 2 in
  Wire.Writer.u8 w type_update;
  let withdrawn = Wire.Writer.create () in
  List.iter (encode_nlri ~add_path:params.add_path withdrawn) u.withdrawn;
  let withdrawn = Wire.Writer.contents withdrawn in
  Wire.Writer.u16 w (String.length withdrawn);
  Wire.Writer.string w withdrawn;
  Wire.Writer.u16 w (String.length attrs_block);
  Wire.Writer.string w attrs_block;
  List.iter (encode_nlri ~add_path:params.add_path w) u.announced;
  let len = Wire.Writer.length w in
  if len > max_message_size then invalid_arg "Codec.encode: message too long";
  Wire.Writer.patch_u16 w len_off len;
  Wire.Writer.contents w

(* Decode one complete message from [data]; [data] must be exactly one
   message (as delimited by the stream decoder). *)
let decode_exn ?(params = default_params) data =
  let r = Wire.Reader.of_string data in
  let m = Wire.Reader.take r 16 in
  if m <> marker then fail Msg.err_message_header 1 "connection not synchronized";
  let len = Wire.Reader.u16 r in
  if len < header_size || len > max_message_size then
    fail Msg.err_message_header 2 "bad message length";
  if len <> String.length data then
    fail Msg.err_message_header 2 "message length mismatch";
  let typ = Wire.Reader.u8 r in
  match typ with
  | t when t = type_open -> Msg.Open (decode_open r)
  | t when t = type_update -> Msg.Update (decode_update ~params r)
  | t when t = type_notification ->
      let code = Wire.Reader.u8 r in
      let subcode = Wire.Reader.u8 r in
      Msg.Notification { code; subcode; data = Wire.Reader.take_rest r }
  | t when t = type_keepalive -> Msg.Keepalive
  | t when t = type_route_refresh ->
      let afi = Wire.Reader.u16 r in
      let _reserved = Wire.Reader.u8 r in
      let safi = Wire.Reader.u8 r in
      Msg.Route_refresh { afi; safi }
  | t -> fail Msg.err_message_header 3 (Printf.sprintf "bad message type %d" t)

let decode ?params data =
  match decode_exn ?params data with
  | msg -> Ok msg
  | exception Decode_error e -> Error e
  | exception Wire.Truncated what ->
      Error
        {
          code = Msg.err_message_header;
          subcode = 2;
          message = "truncated " ^ what;
        }

(* -- Stream decoding ------------------------------------------------------ *)

(* BGP runs over a byte stream; the stream decoder reassembles message
   boundaries from the length field in each header. *)
module Stream = struct
  type t = { mutable pending : string; mutable params : params }

  let create ?(params = default_params) () = { pending = ""; params }

  let set_params t params = t.params <- params

  (* Feed bytes; return all complete messages now available. *)
  let input t data =
    t.pending <- t.pending ^ data;
    let rec extract acc =
      let len = String.length t.pending in
      if len < header_size then Ok (List.rev acc)
      else
        let mlen = String.get_uint16_be t.pending 16 in
        if mlen < header_size || mlen > max_message_size then
          Error
            {
              code = Msg.err_message_header;
              subcode = 2;
              message = "bad message length in stream";
            }
        else if len < mlen then Ok (List.rev acc)
        else begin
          let msg = String.sub t.pending 0 mlen in
          t.pending <- String.sub t.pending mlen (len - mlen);
          match decode ~params:t.params msg with
          | Ok m -> extract (m :: acc)
          | Error e -> Error e
        end
    in
    extract []
end
