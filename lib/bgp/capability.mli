(** BGP capabilities advertised in OPEN (RFC 5492).

    ADD-PATH (RFC 7911) is the capability vBGP's control-plane delegation
    stands on: it lets the router export {e every} learned route to each
    experiment within a single session (paper §3.2.1). *)

type add_path_mode = Receive | Send | Send_receive

val add_path_mode_to_int : add_path_mode -> int
val add_path_mode_of_int : int -> add_path_mode option

val afi_ipv4 : int
val afi_ipv6 : int
val safi_unicast : int

type t =
  | Multiprotocol of { afi : int; safi : int }  (** RFC 4760 *)
  | Route_refresh  (** RFC 2918 *)
  | Graceful_restart of { restart_time : int; afis : (int * int) list }
      (** RFC 4724: restart time (seconds, 12 bits on the wire) and the
          (afi, safi) pairs whose forwarding state is preserved *)
  | As4 of Asn.t  (** RFC 6793: the speaker's real (4-byte) ASN *)
  | Add_path of (int * int * add_path_mode) list
      (** RFC 7911, one entry per (afi, safi) *)
  | Unknown of { code : int; data : string }

val code : t -> int
(** The capability code used on the wire. *)

val encode_value : t -> string
val decode_value : code:int -> data:string -> t

val add_path_send : t list -> afi:int -> safi:int -> bool
(** Did this capability set advertise willingness to send ADD-PATH NLRI? *)

val add_path_receive : t list -> afi:int -> safi:int -> bool

val as4 : t list -> Asn.t option

val graceful_restart : t list -> int option
(** The advertised graceful-restart window in seconds, if any. *)

val negotiate_add_path :
  local:t list -> peer:t list -> afi:int -> safi:int -> bool * bool
(** [(may_send, may_receive)] per RFC 7911 direction rules. *)

val pp : Format.formatter -> t -> unit
