(* BGP capabilities advertised in OPEN (RFC 5492). ADD-PATH (RFC 7911) is
   the one vBGP's control-plane delegation stands on: it lets the router
   export *every* learned route to each experiment in one session. *)

open Netcore

type add_path_mode = Receive | Send | Send_receive

let add_path_mode_to_int = function
  | Receive -> 1
  | Send -> 2
  | Send_receive -> 3

let add_path_mode_of_int = function
  | 1 -> Some Receive
  | 2 -> Some Send
  | 3 -> Some Send_receive
  | _ -> None

(* (afi, safi) pairs; we use AFI 1 = IPv4, 2 = IPv6; SAFI 1 = unicast. *)
let afi_ipv4 = 1
let afi_ipv6 = 2
let safi_unicast = 1

type t =
  | Multiprotocol of { afi : int; safi : int }
  | Route_refresh
  | Graceful_restart of { restart_time : int; afis : (int * int) list }
      (** RFC 4724: restart time in seconds (12 bits on the wire) and the
          (afi, safi) pairs whose forwarding state is preserved. *)
  | As4 of Asn.t
  | Add_path of (int * int * add_path_mode) list
      (** (afi, safi, mode) tuples. *)
  | Unknown of { code : int; data : string }

let code = function
  | Multiprotocol _ -> 1
  | Route_refresh -> 2
  | Graceful_restart _ -> 64
  | As4 _ -> 65
  | Add_path _ -> 69
  | Unknown { code; _ } -> code

let encode_value cap =
  let w = Wire.Writer.create () in
  (match cap with
  | Multiprotocol { afi; safi } ->
      Wire.Writer.u16 w afi;
      Wire.Writer.u8 w 0;
      Wire.Writer.u8 w safi
  | Route_refresh -> ()
  | Graceful_restart { restart_time; afis } ->
      (* Flags nibble zero, restart time in the low 12 bits; each tuple's
         flags octet carries 0x80 (forwarding state preserved). *)
      Wire.Writer.u16 w (restart_time land 0xfff);
      List.iter
        (fun (afi, safi) ->
          Wire.Writer.u16 w afi;
          Wire.Writer.u8 w safi;
          Wire.Writer.u8 w 0x80)
        afis
  | As4 asn -> Wire.Writer.u32 w (Int32.of_int (Asn.to_int asn))
  | Add_path entries ->
      List.iter
        (fun (afi, safi, mode) ->
          Wire.Writer.u16 w afi;
          Wire.Writer.u8 w safi;
          Wire.Writer.u8 w (add_path_mode_to_int mode))
        entries
  | Unknown { data; _ } -> Wire.Writer.string w data);
  Wire.Writer.contents w

let decode_value ~code ~data =
  let r = Wire.Reader.of_string data in
  match code with
  | 1 ->
      let afi = Wire.Reader.u16 r in
      let _reserved = Wire.Reader.u8 r in
      let safi = Wire.Reader.u8 r in
      Multiprotocol { afi; safi }
  | 2 -> Route_refresh
  | 64 ->
      let restart_time = Wire.Reader.u16 r land 0xfff in
      let rec afis acc =
        if Wire.Reader.eof r then List.rev acc
        else
          let afi = Wire.Reader.u16 r in
          let safi = Wire.Reader.u8 r in
          let _flags = Wire.Reader.u8 r in
          afis ((afi, safi) :: acc)
      in
      Graceful_restart { restart_time; afis = afis [] }
  | 65 -> As4 (Asn.of_int (Int32.to_int (Wire.Reader.u32 r) land 0xffffffff))
  | 69 ->
      let rec entries acc =
        if Wire.Reader.eof r then List.rev acc
        else
          let afi = Wire.Reader.u16 r in
          let safi = Wire.Reader.u8 r in
          match add_path_mode_of_int (Wire.Reader.u8 r) with
          | Some mode -> entries ((afi, safi, mode) :: acc)
          | None -> entries acc
      in
      Add_path (entries [])
  | code -> Unknown { code; data }

(* Does [caps] let us send ADD-PATH NLRI for (afi, safi)? *)
let add_path_send caps ~afi ~safi =
  List.exists
    (function
      | Add_path entries ->
          List.exists
            (fun (a, s, m) ->
              a = afi && s = safi && (m = Send || m = Send_receive))
            entries
      | _ -> false)
    caps

let add_path_receive caps ~afi ~safi =
  List.exists
    (function
      | Add_path entries ->
          List.exists
            (fun (a, s, m) ->
              a = afi && s = safi && (m = Receive || m = Send_receive))
            entries
      | _ -> false)
    caps

let as4 caps =
  List.find_map (function As4 asn -> Some asn | _ -> None) caps

(* The advertised graceful-restart window, if any. *)
let graceful_restart caps =
  List.find_map
    (function
      | Graceful_restart { restart_time; _ } -> Some restart_time | _ -> None)
    caps

(* The ADD-PATH directions both sides agreed on: we may send with path IDs
   iff we advertised Send(+receive) and the peer advertised Receive(+send). *)
let negotiate_add_path ~local ~peer ~afi ~safi =
  let send = add_path_send local ~afi ~safi && add_path_receive peer ~afi ~safi in
  let receive =
    add_path_receive local ~afi ~safi && add_path_send peer ~afi ~safi
  in
  (send, receive)

let pp ppf = function
  | Multiprotocol { afi; safi } -> Fmt.pf ppf "mp(%d,%d)" afi safi
  | Route_refresh -> Fmt.string ppf "route-refresh"
  | Graceful_restart { restart_time; afis } ->
      Fmt.pf ppf "graceful-restart(%ds, %d afis)" restart_time
        (List.length afis)
  | As4 asn -> Fmt.pf ppf "as4(%a)" Asn.pp asn
  | Add_path entries ->
      Fmt.pf ppf "add-path(%d entries)" (List.length entries)
  | Unknown { code; _ } -> Fmt.pf ppf "cap-%d" code
