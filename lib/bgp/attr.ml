(* BGP path attributes (RFC 4271 §4.3 plus communities, large communities,
   route-reflection, and MP-BGP attributes). A route's attributes are kept as
   a list ordered by type code; the helpers below give record-like access.

   PEERING's control-plane enforcement polices exactly these values: which
   communities an experiment may attach, whether optional transitive
   attributes are allowed, and so on (paper §4.7). *)

open Netcore

type origin = Igp | Egp | Incomplete

let origin_to_int = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_int = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let pp_origin ppf o =
  Fmt.string ppf
    (match o with Igp -> "igp" | Egp -> "egp" | Incomplete -> "incomplete")

type t =
  | Origin of origin
  | As_path of Aspath.t
  | Next_hop of Ipv4.t
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of { asn : Asn.t; addr : Ipv4.t }
  | Communities of Community.t list
  | Originator_id of Ipv4.t
  | Cluster_list of Ipv4.t list
  | Mp_reach of { next_hop : Ipv6.t; nlri : (Prefix_v6.t * int option) list }
  | Mp_unreach of (Prefix_v6.t * int option) list
  | Large_communities of Large_community.t list
  | Unknown of { flags : int; code : int; data : string }

let type_code = function
  | Origin _ -> 1
  | As_path _ -> 2
  | Next_hop _ -> 3
  | Med _ -> 4
  | Local_pref _ -> 5
  | Atomic_aggregate -> 6
  | Aggregator _ -> 7
  | Communities _ -> 8
  | Originator_id _ -> 9
  | Cluster_list _ -> 10
  | Mp_reach _ -> 14
  | Mp_unreach _ -> 15
  | Large_communities _ -> 32
  | Unknown { code; _ } -> code

(* Attribute flags: optional / transitive / partial / extended length. *)
let flag_optional = 0x80
let flag_transitive = 0x40
let flag_partial = 0x20
let flag_ext_len = 0x10

(* Canonical flags for each known attribute. *)
let flags = function
  | Origin _ | As_path _ | Next_hop _ | Local_pref _ | Atomic_aggregate ->
      flag_transitive
  | Med _ | Originator_id _ | Cluster_list _ | Mp_reach _ | Mp_unreach _ ->
      flag_optional
  | Aggregator _ | Communities _ | Large_communities _ ->
      flag_optional lor flag_transitive
  | Unknown { flags; _ } -> flags

let is_optional_transitive = function
  | Unknown { flags; _ } ->
      flags land flag_optional <> 0 && flags land flag_transitive <> 0
  | a ->
      let f = flags a in
      f land flag_optional <> 0 && f land flag_transitive <> 0

(* Attribute collections, ordered by type code. *)

type set = t list

let sort set =
  List.sort (fun a b -> Int.compare (type_code a) (type_code b)) set

let find_map f set = List.find_map f set

let origin set = find_map (function Origin o -> Some o | _ -> None) set
let as_path set = find_map (function As_path p -> Some p | _ -> None) set

let next_hop set =
  find_map (function Next_hop nh -> Some nh | _ -> None) set

let med set = find_map (function Med m -> Some m | _ -> None) set

let local_pref set =
  find_map (function Local_pref l -> Some l | _ -> None) set

let communities set =
  match find_map (function Communities c -> Some c | _ -> None) set with
  | Some c -> c
  | None -> []

let large_communities set =
  match
    find_map (function Large_communities c -> Some c | _ -> None) set
  with
  | Some c -> c
  | None -> []

let has_community c set = List.exists (Community.equal c) (communities set)

(* Replace (or insert) the attribute with [attr]'s type code. *)
let set_attr attr set =
  let code = type_code attr in
  sort (attr :: List.filter (fun a -> type_code a <> code) set)

let remove_code code set = List.filter (fun a -> type_code a <> code) set

let with_next_hop nh set = set_attr (Next_hop nh) set
let with_as_path p set = set_attr (As_path p) set
let with_local_pref l set = set_attr (Local_pref l) set
let with_med m set = set_attr (Med m) set

let with_communities cs set =
  match cs with
  | [] -> remove_code 8 set
  | _ -> set_attr (Communities (List.sort_uniq Community.compare cs)) set

let add_community c set = with_communities (c :: communities set) set

let remove_communities ~keep set =
  with_communities (List.filter keep (communities set)) set

(* Standard attributes for a locally-originated route. *)
let origin_attrs ?(origin = Igp) ~as_path ~next_hop () =
  sort [ Origin origin; As_path as_path; Next_hop next_hop ]

(* Optional transitive attributes not understood by this implementation;
   PEERING strips these unless the experiment holds the matching
   capability. *)
let unknown_transitive set =
  List.filter
    (function Unknown _ as a -> is_optional_transitive a | _ -> false)
    set

(* Physical equality first: interned sets (Attr_arena) are physically
   unique, so the common case is a pointer comparison. *)
let equal_set (a : set) (b : set) = a == b || sort a = sort b

(* Structural hash, consistent with [equal_set] on canonically-sorted
   sets (the arena keys on the sorted form). The deep limits cover any
   realistic attribute set; colliding beyond them only costs an extra
   [equal_set] in the arena. *)
let hash_set (set : set) = Hashtbl.hash_param 128 256 set

let pp ppf = function
  | Origin o -> Fmt.pf ppf "origin=%a" pp_origin o
  | As_path p -> Fmt.pf ppf "as-path=[%a]" Aspath.pp p
  | Next_hop nh -> Fmt.pf ppf "next-hop=%a" Ipv4.pp nh
  | Med m -> Fmt.pf ppf "med=%d" m
  | Local_pref l -> Fmt.pf ppf "local-pref=%d" l
  | Atomic_aggregate -> Fmt.string ppf "atomic-aggregate"
  | Aggregator { asn; addr } ->
      Fmt.pf ppf "aggregator=%a@%a" Asn.pp asn Ipv4.pp addr
  | Communities cs ->
      Fmt.pf ppf "communities=[%a]" Fmt.(list ~sep:sp Community.pp) cs
  | Originator_id id -> Fmt.pf ppf "originator=%a" Ipv4.pp id
  | Cluster_list l ->
      Fmt.pf ppf "cluster-list=[%a]" Fmt.(list ~sep:sp Ipv4.pp) l
  | Mp_reach { next_hop; nlri } ->
      Fmt.pf ppf "mp-reach(nh=%a, %d nlri)" Ipv6.pp next_hop
        (List.length nlri)
  | Mp_unreach nlri -> Fmt.pf ppf "mp-unreach(%d nlri)" (List.length nlri)
  | Large_communities cs ->
      Fmt.pf ppf "large-communities=[%a]"
        Fmt.(list ~sep:sp Large_community.pp)
        cs
  | Unknown { code; data; _ } ->
      Fmt.pf ppf "attr-%d(%d bytes)" code (String.length data)

let pp_set ppf set = Fmt.(list ~sep:comma pp) ppf set
