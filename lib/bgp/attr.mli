(** BGP path attributes (RFC 4271 §4.3, communities, large communities,
    route reflection, and MP-BGP).

    PEERING's control-plane enforcement polices exactly these values —
    which communities an experiment may attach, whether optional transitive
    attributes pass, and so on (paper §4.7). *)

open Netcore

type origin = Igp | Egp | Incomplete

val origin_to_int : origin -> int
val origin_of_int : int -> origin option
val pp_origin : Format.formatter -> origin -> unit

type t =
  | Origin of origin
  | As_path of Aspath.t
  | Next_hop of Ipv4.t
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of { asn : Asn.t; addr : Ipv4.t }
  | Communities of Community.t list
  | Originator_id of Ipv4.t
  | Cluster_list of Ipv4.t list
  | Mp_reach of { next_hop : Ipv6.t; nlri : (Prefix_v6.t * int option) list }
      (** RFC 4760 IPv6 reachability; NLRI carry optional path ids. *)
  | Mp_unreach of (Prefix_v6.t * int option) list
  | Large_communities of Large_community.t list
  | Unknown of { flags : int; code : int; data : string }
      (** Preserved verbatim; policed by the enforcement engine. *)

val type_code : t -> int

(** Attribute flag bits. *)

val flag_optional : int
val flag_transitive : int
val flag_partial : int
val flag_ext_len : int

val flags : t -> int
(** Canonical flags for a known attribute (as encoded on the wire). *)

val is_optional_transitive : t -> bool

type set = t list
(** An attribute collection, kept ordered by type code. *)

val sort : set -> set

(** {1 Record-like accessors} *)

val find_map : (t -> 'a option) -> set -> 'a option
val origin : set -> origin option
val as_path : set -> Aspath.t option
val next_hop : set -> Ipv4.t option
val med : set -> int option
val local_pref : set -> int option

val communities : set -> Community.t list
(** [[]] when absent. *)

val large_communities : set -> Large_community.t list
val has_community : Community.t -> set -> bool

(** {1 Functional updates} *)

val set_attr : t -> set -> set
(** Replace (or insert) the attribute with the same type code. *)

val remove_code : int -> set -> set
val with_next_hop : Ipv4.t -> set -> set
val with_as_path : Aspath.t -> set -> set
val with_local_pref : int -> set -> set
val with_med : int -> set -> set

val with_communities : Community.t list -> set -> set
(** Deduplicates; removes the attribute entirely when the list is empty. *)

val add_community : Community.t -> set -> set
val remove_communities : keep:(Community.t -> bool) -> set -> set

val origin_attrs :
  ?origin:origin -> as_path:Aspath.t -> next_hop:Ipv4.t -> unit -> set
(** The standard attributes of a locally-originated route. *)

val unknown_transitive : set -> t list
(** Optional transitive attributes this implementation does not understand
    — stripped by PEERING unless the experiment holds the matching
    capability. *)

val equal_set : set -> set -> bool
(** Structural equality up to ordering, with a physical-equality fast
    path (interned sets compare in O(1)). *)

val hash_set : set -> int
(** Structural hash consistent with {!equal_set} on sorted sets. *)

val pp : Format.formatter -> t -> unit
val pp_set : Format.formatter -> set -> unit
