(** A BGP session: the {!Fsm} wired to a byte transport and a timer
    service.

    Transport-agnostic: the simulator passes closures for connecting,
    sending and scheduling, so the same code drives vBGP-neighbor sessions,
    vBGP-experiment sessions over VPN tunnels, and the backbone mesh. *)

open Netcore

type transport = {
  connect : unit -> unit;
      (** initiate; the owner later signals {!connection_up} or
          {!connection_failed} *)
  send : string -> unit;
  close : unit -> unit;
}

type timers = {
  schedule : float -> (unit -> unit) -> unit -> unit;
      (** [schedule delay f] runs [f] after [delay] simulated seconds and
          returns a cancel function *)
}

(** Automatic re-Start after non-administrative session loss: capped
    exponential backoff with optional deterministic jitter. *)
type reconnect_policy = {
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_max : float;  (** backoff cap, seconds *)
  jitter : Random.State.t option;
      (** multiply each delay by a factor in [0.75, 1.25) *)
}

val reconnect_policy :
  ?backoff_base:float ->
  ?backoff_max:float ->
  ?jitter:Random.State.t ->
  unit ->
  reconnect_policy

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;  (** proposed hold time, seconds *)
  capabilities : Capability.t list;
  connect_retry : float;
  passive : bool;  (** never initiate the transport; wait for the peer *)
  mrai : float;
      (** minimum route advertisement interval, seconds; 0 sends
          immediately *)
  reconnect : reconnect_policy option;
      (** re-Start automatically after non-administrative downs *)
}

val config :
  ?hold_time:int ->
  ?capabilities:Capability.t list ->
  ?connect_retry:float ->
  ?passive:bool ->
  ?mrai:float ->
  ?reconnect:reconnect_policy ->
  local_asn:Asn.t ->
  local_id:Ipv4.t ->
  unit ->
  config

type handlers = {
  on_update : Msg.update -> unit;
  on_established : unit -> unit;
  on_down : Fsm.down_reason -> unit;
  on_route_refresh : afi:int -> safi:int -> unit;
}

val null_handlers : handlers

type t
(** A session endpoint. *)

val create :
  config:config ->
  transport:transport ->
  timers:timers ->
  ?handlers:handlers ->
  unit ->
  t

val set_handlers : t -> handlers -> unit
(** Install handlers after creation (callers usually need the session value
    inside their closures). *)

val state : t -> Fsm.state
val established : t -> bool

val peer_open : t -> Msg.open_msg option
(** The peer's OPEN, once received; survives a session drop until the next
    OPEN replaces it. *)

val send_params : t -> Codec.params
(** Negotiated encoding parameters for messages we emit. *)

val stats : t -> int * int
(** [(updates_in, updates_out)]. *)

val last_error : t -> string option

val flap_count : t -> int
(** Non-administrative session downs since creation (damping metric). *)

val dropped_updates : t -> int
(** MRAI-queued updates deliberately discarded by session teardown. *)

val backoff_level : t -> int
(** Consecutive failed connection cycles; reset on establishment. *)

val next_backoff : t -> float option
(** The next reconnect delay before jitter, when a reconnect policy is
    configured. *)

val gr_restart_time : t -> float option
(** The graceful-restart window negotiated with the peer (RFC 4724): both
    sides must have advertised the capability. Consult from [on_down] to
    decide between stale retention and a hard drop. *)

(** {1 Driving the session} *)

val start : t -> unit
val stop : t -> unit

val connection_up : t -> unit
(** The transport connected (both active and passive side). *)

val connection_failed : t -> unit

val receive_bytes : t -> string -> unit
(** Feed raw transport bytes (any chunking). *)

val send_update : t -> Msg.update -> unit
(** Raises [Invalid_argument] unless established. Buffered when an MRAI is
    configured. *)

val send_encoded : t -> Msg.update -> string -> unit
(** [send_encoded t u bytes] sends an UPDATE whose wire bytes the caller
    already encoded — the export lane's encode-once path. [bytes] must
    be [Codec.encode ~params:(send_params t) (Msg.Update u)]; [u] rides
    along so MRAI buffering (which re-encodes at flush time) stays
    identical to {!send_update}. Raises [Invalid_argument] unless
    established. *)

val send_route_refresh : ?afi:int -> ?safi:int -> t -> unit
(** Ask the peer to resend its Adj-RIB-Out (RFC 2918). *)
