(** The network controller with transactional semantics (paper §5).

    Reconciles a Netlink-like kernel (add/remove/query primitives only)
    with an intended state by computing a minimal plan — remove
    incompatible configuration, keep what is compatible (so BGP sessions
    and VPNs survive), add what is missing — and applying it atomically:
    on any failure the applied prefix rolls back.

    One Linux quirk is modelled faithfully: an interface's primary address
    is simply the first one added and cannot be swapped in place, yet
    PEERING must control it because it sources ICMP (traceroute) replies.
    When the primary is wrong, the plan removes and re-adds addresses in
    the intended order. *)

open Netcore

(** {1 State model} *)

type iface = {
  ifname : string;
  addresses : Ipv4.t list;  (** primary first *)
  up : bool;
}

type route = { table : int; prefix : Prefix.t; via : Ipv4.t }
type rule = { priority : int; selector : string; table : int }
type state = { ifaces : iface list; routes : route list; rules : rule list }

val empty_state : state
val route_equal : route -> route -> bool
val rule_equal : rule -> rule -> bool

(** {1 Kernel primitives} *)

type op =
  | Create_iface of string
  | Delete_iface of string
  | Set_link of string * bool
  | Add_address of string * Ipv4.t
  | Del_address of string * Ipv4.t
  | Add_route of route
  | Del_route of route
  | Add_rule of rule
  | Del_rule of rule

val pp_op : Format.formatter -> op -> unit

(** A Netlink-like kernel: request/response only, primary address = first
    added, with failure injection for rollback tests. *)
module Kernel : sig
  type t

  val create : unit -> t

  val inject_failure : t -> after:int -> unit
  (** Fail the operation [after] successful ones from now. *)

  val set_offline : t -> bool -> unit
  (** A crashed/unreachable PoP: every request fails until restored. *)

  val offline : t -> bool

  val reset : t -> unit
  (** A PoP crash: the kernel reboots with empty runtime configuration
      (the controller must replay intent to rebuild it). *)

  val observe : t -> state
  val apply : t -> op -> (unit, string) result
end

(** {1 Planning and transactions} *)

val invert : before:state -> op -> op list
(** The inverse operations for rollback, given the pre-state. *)

val plan : current:state -> desired:state -> op list
(** Minimal plan transforming [current] into [desired]; empty when
    converged. Compatible configuration is never touched. *)

type apply_result =
  | Applied of op list
  | Rolled_back of { failed : op; error : string; undone : int }

val apply_transaction : Kernel.t -> op list -> apply_result
(** All-or-nothing application. *)

val reconcile : Kernel.t -> desired:state -> op list * apply_result
(** Observe, plan, apply. *)

val converged : Kernel.t -> desired:state -> bool

(** {1 Two-phase apply across PoPs}

    Platform-wide configuration pushes (paper §5): prepare a plan per PoP
    (pure read), commit only if every PoP's prepare succeeded, and on any
    failure reconcile every already-committed PoP back to its pre-apply
    snapshot — the platform is never left split-brained. Each phase
    retries per PoP with capped exponential backoff, and every step lands
    in a journal so a controller crash mid-apply is resumable. *)
module Multi : sig
  type participant = {
    part_name : string;
    kernel : Kernel.t;
    desired : state;
  }

  type phase = Prepare | Commit | Rollback

  val phase_to_string : phase -> string

  type entry_status =
    | Pending
    | Prepared
    | Committed
    | Rolled_back
    | Apply_failed of string

  val entry_status_to_string : entry_status -> string

  type entry = {
    e_name : string;
    mutable snapshot : state;  (** pre-apply kernel state, rollback target *)
    mutable plan_ops : op list;
    mutable status : entry_status;
    mutable attempts : int;  (** kernel round-trips across all phases *)
  }

  type journal

  val journal_entries : journal -> entry list
  val journal_log : journal -> string list
  (** Chronological narration of the apply, for operators and tests. *)

  val journal_backoffs : journal -> float list
  (** Every retry delay issued, chronological — the capped-exponential
      schedule is asserted on directly. *)

  val entry : journal -> string -> entry option
  val pp_journal : Format.formatter -> journal -> unit

  type retry = {
    max_attempts : int;  (** per PoP per phase *)
    backoff_base : float;
    backoff_max : float;
  }

  val default_retry : retry

  type outcome =
    | Committed_all of journal
    | Aborted of {
        failed_pop : string;
        phase : phase;
        error : string;
        journal : journal;
      }
    | Crashed of journal  (** stopped by [crash_after]; resumable *)

  val apply :
    ?retry:retry ->
    ?on_backoff:(float -> unit) ->
    ?crash_after:int ->
    participant list ->
    outcome
  (** Two-phase apply over all participants. [on_backoff] receives each
      retry delay (callers on a simulator log rather than sleep);
      [crash_after] stops the run after that many successful commits,
      simulating a controller crash — {!resume} picks the journal up. *)

  val resume :
    ?retry:retry ->
    ?on_backoff:(float -> unit) ->
    ?crash_after:int ->
    journal ->
    participant list ->
    outcome
  (** Continue a crashed apply: committed PoPs are skipped, the rest
      re-planned from live kernel state. Idempotent. *)

  val converged_all : participant list -> bool
end

val vbgp_desired_state :
  experiments:(string * Ipv4.t) list ->
  neighbors:(int * Ipv4.t * Ipv4.t) list ->
  state
(** The intent for a vBGP deployment: one tap interface per experiment,
    one routing table + rule per neighbor (paper §3.2.2); neighbors are
    (table id, virtual IP, real IP). *)
