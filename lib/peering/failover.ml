(* PoP-level failure orchestration: crash, restart, and degradation of a
   whole site, plus the two-phase controller re-apply that reconverges a
   restarted PoP to the platform's intent.

   A crash is modelled as what really dies at a site: every transport the
   PoP terminates fails at once (neighbor interconnects, backbone mesh
   sessions, experiment VPN tunnels), their links go down so reconnect
   attempts stall until restart, and the kernel reboots empty and
   unreachable. BGP state on the far ends is soft state — graceful
   restart retains it across a short outage (PR 3 machinery), and the
   post-restart full-table resync plus End-of-RIB sweeps whatever a long
   outage invalidated. What is NOT soft state is the kernel
   configuration, which only the controller can rebuild: [reapply] pushes
   the intent document back through the two-phase protocol.

   Scheduling and the replayable fault log stay in [Sim.Fault]; these
   functions are the closures handed to [Fault.kill_pop] and friends. *)

open Bgp
open Sim

(* Drive a session endpoint to Idle regardless of FSM position. Two
   injections suffice: [Connection_failed] from [Connect] parks in
   [Active] (RFC 4271 keeps retrying), and from anywhere else lands in
   [Idle] directly. *)
let fail_to_idle s =
  if Session.state s <> Fsm.Idle then Session.connection_failed s;
  if Session.state s <> Fsm.Idle then Session.connection_failed s

(* Kill a session pair the way a site loss looks from both ends: the link
   goes down and both endpoints observe a transport failure at the same
   instant — the gracefully-restartable shape. *)
let down_pair (pair : Bgp_wire.pair) =
  Link.set_up pair.Bgp_wire.link false;
  fail_to_idle pair.Bgp_wire.active;
  fail_to_idle pair.Bgp_wire.passive

(* Bring a pair back after restart. Endpoints may be parked mid-handshake
   (a reconnect that fired during the outage reaches Open_sent and waits
   on its hold timer); forcing both to Idle and restarting converges in
   one round trip instead of a hold-timer expiry later. *)
let up_pair (pair : Bgp_wire.pair) =
  Link.set_up pair.Bgp_wire.link true;
  fail_to_idle pair.Bgp_wire.active;
  fail_to_idle pair.Bgp_wire.passive;
  Bgp_wire.start pair

(* Every session pair terminating at [name]: neighbor interconnects, the
   backbone mesh, and (when the experiment kits are handed in) VPN
   tunnels. *)
let pop_pairs platform ?(kits = []) ~name () =
  let pop = Platform.pop_exn platform name in
  List.map (fun h -> h.Neighbor_host.pair) (Pop.neighbors pop)
  @ List.map snd (Platform.mesh_pairs_of platform ~pop:name)
  @ List.filter_map (fun kit -> Toolkit.tunnel_pair kit ~pop:name) kits

let kill_pop platform ?kits ~name () =
  let pop = Platform.pop_exn platform name in
  Pop.set_alive pop false;
  (* The kernel reboots empty and stays unreachable until restart — a
     controller apply hitting the dead PoP must fail its prepare. *)
  Controller.Kernel.reset (Pop.kernel pop);
  Controller.Kernel.set_offline (Pop.kernel pop) true;
  List.iter down_pair (pop_pairs platform ?kits ~name ())

let restart_pop platform ?kits ~name () =
  let pop = Platform.pop_exn platform name in
  Pop.set_alive pop true;
  Controller.Kernel.set_offline (Pop.kernel pop) false;
  List.iter up_pair (pop_pairs platform ?kits ~name ())

(* Degraded mode: transport-fail a [fraction] of the PoP's neighbor
   sessions — they recover on their own through reconnect backoff — and
   optionally stretch latency on the survivors' links. Victim selection
   draws from the caller's RNG (share [Fault.rng] to keep the scenario
   replayable). Returns the number of sessions dropped. *)
let degrade_pop platform ~name ~fraction ?(latency_factor = 1.) ~rng () =
  let pop = Platform.pop_exn platform name in
  List.fold_left
    (fun dropped h ->
      let pair = h.Neighbor_host.pair in
      if Random.State.float rng 1.0 < fraction then begin
        Session.connection_failed pair.Bgp_wire.active;
        Session.connection_failed pair.Bgp_wire.passive;
        dropped + 1
      end
      else begin
        if latency_factor <> 1. then
          Link.set_latency pair.Bgp_wire.link
            (Link.latency pair.Bgp_wire.link *. latency_factor);
        dropped
      end)
    0 (Pop.neighbors pop)

(* -- controller re-apply ----------------------------------------------------- *)

(* The two-phase participants for an intent document: every intent PoP
   present on the platform, each bound to its live kernel. *)
let participants platform (cfg : Config_model.t) =
  List.filter_map
    (fun (intent : Config_model.pop_intent) ->
      match Platform.find_pop platform intent.Config_model.pop_name with
      | Some pop ->
          Some
            {
              Controller.Multi.part_name = intent.Config_model.pop_name;
              kernel = Pop.kernel pop;
              desired = Config_model.desired_of_intent intent;
            }
      | None -> None)
    cfg.Config_model.pops

(* Push [cfg] to every PoP through the two-phase protocol: all PoPs
   converge or none change. This is the restart path — a rebooted PoP's
   empty kernel is rebuilt from intent — and the routine config-push
   path. *)
let reapply ?retry ?on_backoff ?crash_after platform cfg =
  Controller.Multi.apply ?retry ?on_backoff ?crash_after
    (participants platform cfg)
