(* The PEERING platform (paper §4): a set of PoPs built on vBGP, numbered
   resources (ASNs and prefixes, §4.2), a backbone interconnecting PoPs
   (§4.3-4.4), a synthetic Internet of neighbor networks, and the
   experiment lifecycle. *)

open Netcore
open Bgp
open Sim

type t = {
  engine : Engine.t;
  trace : Trace.t;
  mux_asn : Asn.t;  (** the main platform ASN (AS47065 in deployment) *)
  experiment_asns : Asn.t list;  (** ASNs assignable to experiments *)
  global_pool : Vbgp.Addr_pool.t;  (** §4.4 pool shared by all PoPs *)
  backbone : Lan.t;
  mutable pops : Pop.t list;
  mutable free_prefixes : Prefix.t list;
  mutable free_v6 : Prefix_v6.t list;
  mutable free_asns : Asn.t list;
  mutable records : Approval.record list;
  mutable next_experiment_id : int;
  mutable next_router_id : int;
  mutable mesh_pairs : (string * string * Bgp_wire.pair) list;
      (** backbone mesh sessions, as (PoP a, PoP b, session pair) *)
}

(* PEERING's numbered resources (§4.2): 8 ASNs (three 4-byte) and 40 /24s,
   modelled with documentation/benchmark address space. *)
let default_asns =
  List.map Asn.of_int [ 47065; 61574; 61575; 61576; 263842; 263843; 263844; 917 ]

let default_prefixes =
  (* 40 /24s drawn from 184.164.224.0/19 plus 184.164.0.0/21. *)
  Prefix.subnets (Prefix.of_string_exn "184.164.224.0/19") 24
  @ Prefix.subnets (Prefix.of_string_exn "184.164.0.0/21") 24

let default_v6 =
  (* /48s carved from the platform /32, one per IPv6-using experiment. *)
  List.init 16 (fun i ->
      Prefix_v6.subnet (Prefix_v6.of_string_exn "2804:269c::/32") 48 (i + 1))

let experiment_asns t = t.experiment_asns

let create ?(trace = Trace.create ~capacity:100_000 ()) () =
  let engine = Engine.create () in
  match default_asns with
  | [] -> assert false
  | mux_asn :: experiment_asns ->
      {
        engine;
        trace;
        mux_asn;
        experiment_asns;
        global_pool =
          Vbgp.Addr_pool.create
            ~base:(Prefix.of_string_exn "127.127.0.0/16")
            ~mac_pool:0x7f;
        backbone = Lan.create ~latency:0.01 engine;
        pops = [];
        free_prefixes = default_prefixes;
        free_v6 = default_v6;
        free_asns = experiment_asns;
        records = [];
        next_experiment_id = 1;
        next_router_id = 1;
        mesh_pairs = [];
      }

let engine t = t.engine
let trace t = t.trace
let mux_asn t = t.mux_asn
let pops t = List.rev t.pops
let global_pool t = t.global_pool
let records t = List.rev t.records

let find_pop t name =
  List.find_opt (fun p -> String.equal (Pop.name p) name) t.pops

let pop_exn t name =
  match find_pop t name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Platform.pop_exn: no PoP %S" name)

(* Bring up a new PoP. *)
let add_pop t ~name ~site ?bandwidth_limit_mbps () =
  if find_pop t name <> None then invalid_arg "Platform.add_pop: duplicate";
  let router_id = Ipv4.of_octets 10 255 0 t.next_router_id in
  t.next_router_id <- t.next_router_id + 1;
  let pop =
    Pop.create ~engine:t.engine ~trace:t.trace ~name ~site ~asn:t.mux_asn
      ~router_id ~global_pool:t.global_pool ?bandwidth_limit_mbps ()
  in
  t.pops <- pop :: t.pops;
  pop

(* Attach every PoP to the backbone segment and bring up the full BGP mesh
   (§4.3). Call after PoPs and their neighbors are in place. *)
let connect_backbone t =
  let pops = pops t in
  List.iter (fun p -> Vbgp.Router.attach_backbone (Pop.router p) t.backbone) pops;
  let rec mesh = function
    | [] -> ()
    | p :: rest ->
        List.iter
          (fun q ->
            let pair =
              Vbgp.Router.connect_mesh (Pop.router p) (Pop.router q) ()
            in
            t.mesh_pairs <-
              (Pop.name p, Pop.name q, pair) :: t.mesh_pairs)
          rest;
        mesh rest
  in
  mesh pops;
  Engine.run_until t.engine (Engine.now t.engine +. 5.)

(* The backbone mesh sessions touching [pop], with the far end's name. *)
let mesh_pairs_of t ~pop =
  List.filter_map
    (fun (a, b, pair) ->
      if String.equal a pop then Some (b, pair)
      else if String.equal b pop then Some (a, pair)
      else None)
    t.mesh_pairs

(* Run the simulation forward (convenience). *)
let run t ~seconds = Engine.run_until t.engine (Engine.now t.engine +. seconds)

(* -- experiment lifecycle -------------------------------------------------- *)

type submission =
  | Granted of Approval.record
  | Denied of string

(* Submit a proposal through review; approval allocates resources. *)
let submit t (proposal : Approval.proposal) =
  match Approval.review proposal with
  | Approval.Reject { reason } -> Denied reason
  | Approval.Approve _ -> (
      match (t.free_prefixes, t.free_asns) with
      | [], _ -> Denied "no IPv4 prefixes available"
      | _, [] -> Denied "no experiment ASNs available"
      | _, asn :: rest_asns ->
          (* One /48 per IPv6-wanting experiment, carved from the /32. *)
          let v6_offer =
            match t.free_v6 with p :: _ -> [ p ] | [] -> []
          in
          let record =
            Approval.allocate ~id:t.next_experiment_id
              ~now:(Engine.now t.engine) ~prefixes:t.free_prefixes
              ~prefixes_v6:v6_offer ~asn proposal
          in
          let used = record.Approval.grant.Vbgp.Control_enforcer.prefixes in
          let used_v6 = record.Approval.grant.Vbgp.Control_enforcer.prefixes_v6 in
          t.free_prefixes <-
            List.filter
              (fun p -> not (List.exists (Prefix.equal p) used))
              t.free_prefixes;
          t.free_v6 <-
            List.filter
              (fun p -> not (List.exists (Prefix_v6.equal p) used_v6))
              t.free_v6;
          t.free_asns <- rest_asns;
          t.next_experiment_id <- t.next_experiment_id + 1;
          t.records <- record :: t.records;
          Trace.record t.trace ~time:(Engine.now t.engine)
            ~category:"platform" "approved experiment %s"
            record.Approval.grant.Vbgp.Control_enforcer.name;
          Granted record)

(* Release an experiment's resources when it concludes. *)
let conclude t (record : Approval.record) =
  let g = record.Approval.grant in
  t.free_prefixes <- t.free_prefixes @ g.Vbgp.Control_enforcer.prefixes;
  t.free_v6 <- t.free_v6 @ g.Vbgp.Control_enforcer.prefixes_v6;
  t.free_asns <- t.free_asns @ g.Vbgp.Control_enforcer.asns;
  t.records <-
    List.filter (fun r -> r.Approval.id <> record.Approval.id) t.records

(* -- synthetic Internet wiring ---------------------------------------------- *)

(* Populate a PoP's neighbors from a synthetic Internet: pick [transits]
   transit ASes and [peers] lateral ASes from the graph, connect them, and
   have each announce the routes its AS holds. *)
let populate_pop _t ~pop ~(internet : Topo.Internet.t) ~transits ~peers () =
  let graph = Topo.Internet.graph internet in
  let tier1 =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier <= 2
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let hosts = ref [] in
  List.iter
    (fun asn ->
      let host = Pop.add_transit pop ~asn in
      Neighbor_host.announce host (Topo.Internet.routes_at internet asn);
      hosts := host :: !hosts)
    (take transits tier1);
  List.iter
    (fun asn ->
      let host = Pop.add_peer pop ~asn in
      Neighbor_host.announce host (Topo.Internet.routes_at internet asn);
      hosts := host :: !hosts)
    (take peers stubs);
  List.rev !hosts
