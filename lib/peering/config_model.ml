(* The intent-based configuration model (paper §5): a declarative snapshot
   of what every PoP should look like — interconnections, experiments and
   their capabilities, bandwidth limits — stored centrally and rendered
   into per-service configuration by the templating engine. *)

open Netcore
open Bgp

type session_intent = {
  peer_name : string;
  peer_ip : Ipv4.t;
  peer_asn : Asn.t;
  kind : string;  (** "transit" | "peer" | "route-server" | "mesh" *)
  add_path : bool;
}

type experiment_intent = {
  exp_name : string;
  exp_asn : Asn.t;
  exp_prefixes : Prefix.t list;
  caps : Vbgp.Experiment_caps.t;
  vpn_port : int;
}

type pop_intent = {
  pop_name : string;
  router_id : Ipv4.t;
  mux_asn : Asn.t;
  sessions : session_intent list;
  experiments : experiment_intent list;
  bandwidth_limit_mbps : int option;
      (** §4.7: only bandwidth-constrained sites shape traffic *)
}

type t = { pops : pop_intent list; version : int }

let make ?(version = 1) pops = { pops; version }

let pop t name = List.find_opt (fun p -> String.equal p.pop_name name) t.pops

(* Compile one PoP's intent into the kernel state the controller must
   realize (paper §5): a tap interface per experiment carrying the first
   address of its first granted prefix, and a routing table + rule per
   interconnection (mesh sessions ride the backbone, not the kernel).
   Deterministic: the same intent always renders the same state, which is
   what makes two-phase re-apply after a crash idempotent. *)
let desired_of_intent (p : pop_intent) =
  let experiments =
    List.filter_map
      (fun e ->
        match e.exp_prefixes with
        | prefix :: _ -> Some (e.exp_name, Prefix.host prefix 1)
        | [] -> None)
      p.experiments
  in
  let neighbors =
    List.filter (fun s -> not (String.equal s.kind "mesh")) p.sessions
    |> List.mapi (fun i s ->
           (* Table id and virtual next-hop are positional in the intent,
              mirroring the 127.65/16 per-neighbor allocator (§3.2.1). *)
           (i + 1, Ipv4.of_octets 127 65 0 (i + 1), s.peer_ip))
  in
  Controller.vbgp_desired_state ~experiments ~neighbors

(* Snapshot the intent of a live platform: this is the "desired
   configuration database" the paper stores centrally. *)
let of_platform (platform : Platform.t) =
  let records = Platform.records platform in
  let experiments =
    List.mapi
      (fun i (r : Approval.record) ->
        let g = r.Approval.grant in
        {
          exp_name = g.Vbgp.Control_enforcer.name;
          exp_asn =
            (match g.Vbgp.Control_enforcer.asns with
            | a :: _ -> a
            | [] -> Asn.of_int 0);
          exp_prefixes = g.Vbgp.Control_enforcer.prefixes;
          caps = g.Vbgp.Control_enforcer.caps;
          vpn_port = 10000 + i;
        })
      records
  in
  let pops =
    List.map
      (fun pop ->
        let router = Pop.router pop in
        let sessions =
          List.map
            (fun h ->
              {
                peer_name = h.Neighbor_host.name;
                peer_ip = h.Neighbor_host.ip;
                peer_asn = h.Neighbor_host.asn;
                kind =
                  (match Vbgp.Router.neighbor router (Neighbor_host.neighbor_id h) with
                  | Some ns ->
                      Vbgp.Neighbor.kind_to_string ns.Vbgp.Router.info.Vbgp.Neighbor.kind
                  | None -> "peer");
                add_path = false;
              })
            (Pop.neighbors pop)
        in
        {
          pop_name = Pop.name pop;
          router_id = Ipv4.of_octets 10 255 0 1;
          mux_asn = Platform.mux_asn platform;
          sessions;
          experiments;
          bandwidth_limit_mbps =
            (* Two university sites have contractual shaping (§4.7). *)
            (match Pop.site pop with
            | Pop.University -> Some 1000
            | Pop.Ixp -> None);
        })
      (Platform.pops platform)
  in
  make pops
