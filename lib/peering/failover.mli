(** PoP-level failure orchestration: crash, restart, and degradation of a
    whole site, plus the two-phase controller re-apply that reconverges a
    restarted PoP to the platform's intent.

    These are the closures handed to {!Sim.Fault.kill_pop} /
    {!Sim.Fault.restart_pop} / {!Sim.Fault.degrade_pop} — scheduling and
    the replayable fault log stay in [Sim.Fault]. *)

open Sim

val kill_pop : Platform.t -> ?kits:Toolkit.t list -> name:string -> unit -> unit
(** Crash the PoP: every session it terminates (neighbor interconnects,
    backbone mesh, and the VPN tunnels of any [kits] handed in) observes
    a simultaneous transport failure, their links go down so reconnects
    stall, and the kernel reboots empty and unreachable. Far-end BGP
    state rides graceful restart (PR 3); kernel state must be rebuilt by
    {!reapply} after restart. *)

val restart_pop :
  Platform.t -> ?kits:Toolkit.t list -> name:string -> unit -> unit
(** Bring the PoP back: links heal, every session restarts (full-table
    resync plus End-of-RIB sweeps anything a long outage invalidated),
    and the kernel answers again — still empty until {!reapply}. *)

val degrade_pop :
  Platform.t ->
  name:string ->
  fraction:float ->
  ?latency_factor:float ->
  rng:Random.State.t ->
  unit ->
  int
(** Degraded mode: transport-fail [fraction] of the PoP's neighbor
    sessions (they recover through reconnect backoff) and stretch the
    survivors' link latency by [latency_factor]. Returns the number of
    sessions dropped. Share {!Sim.Fault.rng} to keep the scenario
    replayable. *)

val pop_pairs :
  Platform.t ->
  ?kits:Toolkit.t list ->
  name:string ->
  unit ->
  Bgp_wire.pair list
(** Every session pair terminating at the PoP. *)

val participants :
  Platform.t -> Config_model.t -> Controller.Multi.participant list
(** The two-phase participants for an intent document: every intent PoP
    present on the platform, bound to its live kernel. *)

val reapply :
  ?retry:Controller.Multi.retry ->
  ?on_backoff:(float -> unit) ->
  ?crash_after:int ->
  Platform.t ->
  Config_model.t ->
  Controller.Multi.outcome
(** Push the intent to every PoP through the two-phase protocol: all PoPs
    converge or none change (see {!Controller.Multi.apply}). *)
