(** The PEERING platform (paper §4): PoPs built on vBGP, numbered resources
    (§4.2), a backbone interconnecting PoPs (§§4.3-4.4), and the experiment
    lifecycle. *)

open Netcore
open Bgp
open Sim

type t

val default_asns : Asn.t list
(** The platform's eight ASNs (three 4-byte), as in §4.2. *)

val default_prefixes : Prefix.t list
(** The 40 /24s of §4.2 (documentation/benchmark space here). *)

val create : ?trace:Trace.t -> unit -> t

val engine : t -> Engine.t
val trace : t -> Trace.t
val mux_asn : t -> Asn.t

val experiment_asns : t -> Asn.t list
(** The full assignable-ASN roster (§4.2), whether or not currently
    leased. *)

val pops : t -> Pop.t list
val global_pool : t -> Vbgp.Addr_pool.t
val records : t -> Approval.record list

val find_pop : t -> string -> Pop.t option
val pop_exn : t -> string -> Pop.t

val add_pop :
  t -> name:string -> site:Pop.site -> ?bandwidth_limit_mbps:int -> unit -> Pop.t
(** [bandwidth_limit_mbps] installs §4.7 traffic shaping at constrained
    sites. *)

val connect_backbone : t -> unit
(** Attach every PoP to the backbone segment and bring up the full BGP
    mesh (§4.3). Call after PoPs and their neighbors are in place. *)

val mesh_pairs_of : t -> pop:string -> (string * Bgp_wire.pair) list
(** The backbone mesh sessions touching [pop], as (far-end PoP name,
    session pair) — the failover drills tear these down with the PoP. *)

val run : t -> seconds:float -> unit
(** Advance the simulation. *)

type submission = Granted of Approval.record | Denied of string

val submit : t -> Approval.proposal -> submission
(** Review, then allocate prefixes and an ASN on approval. *)

val conclude : t -> Approval.record -> unit
(** Return a finished experiment's resources to the pools. *)

val populate_pop :
  t ->
  pop:Pop.t ->
  internet:Topo.Internet.t ->
  transits:int ->
  peers:int ->
  unit ->
  Neighbor_host.t list
(** Connect neighbors drawn from a synthetic Internet and have each
    announce its AS's routes. *)
