(* A simulated external network adjacent to a PEERING PoP: one BGP speaker
   plus a data-plane endpoint. It announces the routes the synthetic
   Internet computed for its AS, records the experiment announcements it
   hears, and can originate traffic toward experiment prefixes (entering the
   platform at this neighbor). *)

open Netcore
open Bgp
open Sim

type t = {
  name : string;
  asn : Asn.t;
  ip : Ipv4.t;
  engine : Engine.t;
  router : Vbgp.Router.t;
  neighbor_id : int;
  pair : Bgp_wire.pair;
  mutable pending : (Prefix.t * Aspath.t) list;
      (** routes queued until the session establishes *)
  mutable table : (Prefix.t * Aspath.t) list;
      (** everything this AS currently originates toward the platform;
          re-announced in full whenever the session (re)establishes *)
  heard : (Prefix.t, Attr.set) Hashtbl.t;
      (** announcements received from the platform *)
  heard_v6 : (Prefix_v6.t, Attr.set) Hashtbl.t;
  mutable received_packets : Ipv4_packet.t list;
  mutable established : bool;
  mutable gr_stale : (Prefix.t, unit) Hashtbl.t option;
      (** heard routes held across a graceful platform restart *)
  mutable gr_stale_v6 : (Prefix_v6.t, unit) Hashtbl.t option;
  mutable gr_cancel : unit -> unit;
  mutable withdrawals_seen : int;
      (** withdrawals received on the wire (chaos tests assert a quiet
          graceful restart leaves this untouched) *)
}

let session t = t.pair.Bgp_wire.active
let neighbor_id t = t.neighbor_id
let is_established t = t.established
let received_packets t = List.rev t.received_packets
let withdrawals_seen t = t.withdrawals_seen
let flap_count t = Session.flap_count (session t)

let heard_route t prefix = Hashtbl.find_opt t.heard prefix
let heard_route_v6 t prefix = Hashtbl.find_opt t.heard_v6 prefix
let heard_count t = Hashtbl.length t.heard

let announce_now t routes =
  let s = session t in
  List.iter
    (fun (prefix, as_path) ->
      Session.send_update s
        (Msg.update
           ~attrs:(Attr.origin_attrs ~as_path ~next_hop:t.ip ())
           ~announced:[ Msg.nlri prefix ]
           ()))
    routes

(* Announce routes (immediately if established, else on session-up). The
   routes join this AS's table and survive session flaps: a fresh session
   always receives the full table, as in real BGP. *)
let announce t routes =
  t.table <-
    routes
    @ List.filter
        (fun (p, _) -> not (List.exists (fun (q, _) -> Prefix.equal p q) routes))
        t.table;
  if t.established then announce_now t routes
  else t.pending <- t.pending @ routes

let withdraw t prefixes =
  t.table <-
    List.filter
      (fun (p, _) -> not (List.exists (Prefix.equal p) prefixes))
      t.table;
  let s = session t in
  if t.established then
    List.iter
      (fun prefix ->
        Session.send_update s (Msg.update ~withdrawn:[ Msg.nlri prefix ] ()))
      prefixes

(* Originate a packet toward [dst] (typically an experiment address),
   entering the platform at this neighbor. *)
let send_packet t ?(ttl = 64) ?(protocol = Ipv4_packet.Udp) ~src ~dst payload =
  let packet = Ipv4_packet.make ~ttl ~src ~dst ~protocol payload in
  Vbgp.Router.inject_from_neighbor t.router ~neighbor_id:t.neighbor_id packet

let create ~engine ~router ~name ~asn ~ip ~kind ?(latency = 0.002) () =
  let neighbor_id, pair =
    Vbgp.Router.add_neighbor router ~asn ~ip ~kind ~remote_id:ip ~latency ()
  in
  let t =
    {
      name;
      asn;
      ip;
      engine;
      router;
      neighbor_id;
      pair;
      pending = [];
      table = [];
      heard = Hashtbl.create 16;
      heard_v6 = Hashtbl.create 4;
      received_packets = [];
      established = false;
      gr_stale = None;
      gr_stale_v6 = None;
      gr_cancel = ignore;
      withdrawals_seen = 0;
    }
  in
  Vbgp.Router.set_neighbor_deliver router ~neighbor_id (fun packet ->
      t.received_packets <- packet :: t.received_packets);
  (* The platform's End-of-RIB after a restart: heard routes its resync
     did not refresh are genuinely gone (RFC 4724 mark-and-sweep). *)
  let sweep_stale () =
    t.gr_cancel ();
    t.gr_cancel <- ignore;
    (match t.gr_stale with
    | Some stale ->
        t.gr_stale <- None;
        Hashtbl.iter (fun p () -> Hashtbl.remove t.heard p) stale
    | None -> ());
    match t.gr_stale_v6 with
    | Some stale ->
        t.gr_stale_v6 <- None;
        Hashtbl.iter (fun p () -> Hashtbl.remove t.heard_v6 p) stale
    | None -> ()
  in
  let unmark tbl key = match tbl with Some s -> Hashtbl.remove s key | None -> () in
  Session.set_handlers (session t)
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update =
        (fun u ->
          if Msg.is_end_of_rib u then sweep_stale ()
          else begin
            t.withdrawals_seen <- t.withdrawals_seen + List.length u.withdrawn;
            List.iter
              (fun (n : Msg.nlri) ->
                unmark t.gr_stale n.prefix;
                Hashtbl.remove t.heard n.prefix)
              u.withdrawn;
            List.iter
              (fun (n : Msg.nlri) ->
                unmark t.gr_stale n.prefix;
                Hashtbl.replace t.heard n.prefix u.attrs)
              u.announced;
            List.iter
              (fun attr ->
                match attr with
                | Attr.Mp_reach { nlri; _ } ->
                    List.iter
                      (fun (p, _) ->
                        unmark t.gr_stale_v6 p;
                        Hashtbl.replace t.heard_v6 p u.attrs)
                      nlri
                | Attr.Mp_unreach nlri ->
                    t.withdrawals_seen <-
                      t.withdrawals_seen + List.length nlri;
                    List.iter
                      (fun (p, _) ->
                        unmark t.gr_stale_v6 p;
                        Hashtbl.remove t.heard_v6 p)
                      nlri
                | _ -> ())
              u.attrs
          end);
      on_established =
        (fun () ->
          t.established <- true;
          t.pending <- [];
          (* Full table exchange on every (re)establishment, closed with
             End-of-RIB so the platform can sweep stale state. *)
          announce_now t t.table;
          Session.send_update (session t) (Msg.update ()));
      on_down =
        (fun reason ->
          t.established <- false;
          let window =
            if Fsm.graceful reason then Session.gr_restart_time (session t)
            else None
          in
          match window with
          | Some _ when t.gr_stale <> None ->
              (* Repeat loss while the window is already running: re-mark
                 what is currently heard, but keep the first deadline
                 (RFC 4724 counts the restart time from the first loss). *)
              (match t.gr_stale with
              | Some stale ->
                  Hashtbl.iter (fun p _ -> Hashtbl.replace stale p ()) t.heard
              | None -> ());
              (match t.gr_stale_v6 with
              | Some stale_v6 ->
                  Hashtbl.iter
                    (fun p _ -> Hashtbl.replace stale_v6 p ())
                    t.heard_v6
              | None -> ())
          | Some w when w > 0. ->
              (* Keep heard routes, marked stale, for the restart window. *)
              t.gr_cancel ();
              let stale = Hashtbl.create (Hashtbl.length t.heard) in
              Hashtbl.iter (fun p _ -> Hashtbl.replace stale p ()) t.heard;
              let stale_v6 = Hashtbl.create 4 in
              Hashtbl.iter
                (fun p _ -> Hashtbl.replace stale_v6 p ())
                t.heard_v6;
              t.gr_stale <- Some stale;
              t.gr_stale_v6 <- Some stale_v6;
              t.gr_cancel <-
                Engine.schedule t.engine w (fun () ->
                    (match t.gr_stale with
                    | Some s when s == stale ->
                        t.gr_stale <- None;
                        Hashtbl.iter (fun p () -> Hashtbl.remove t.heard p) s
                    | _ -> ());
                    match t.gr_stale_v6 with
                    | Some s when s == stale_v6 ->
                        t.gr_stale_v6 <- None;
                        Hashtbl.iter
                          (fun p () -> Hashtbl.remove t.heard_v6 p)
                          s
                    | _ -> ())
          | _ -> ());
    };
  Bgp_wire.start pair;
  t
