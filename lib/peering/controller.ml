(* The network controller with transactional semantics (paper §5).

   vBGP's network configuration — virtual interfaces, one routing table and
   rule per neighbor, filters — is dynamic, but the kernel interface
   (Netlink in the paper, the [Kernel] module here) only offers
   add/remove/query primitives. The controller reconciles the kernel's
   current state with the intended state by computing a minimal plan:
   (i) remove configuration incompatible with the intent, (ii) keep what is
   compatible, (iii) add what is missing. Plans apply transactionally —
   either every operation lands or the applied prefix is rolled back — so a
   PoP is never left half-configured.

   One Linux quirk the paper calls out is modelled faithfully: an
   interface's *primary* address is simply the first one added and cannot
   be changed in place, yet PEERING must control it because it sources
   ICMP (traceroute) replies. When the primary is wrong but present, the
   plan removes and re-adds addresses in the proper order. *)

open Netcore

(* -- state model ------------------------------------------------------------ *)

type iface = {
  ifname : string;
  addresses : Ipv4.t list;  (** primary first *)
  up : bool;
}

type route = { table : int; prefix : Prefix.t; via : Ipv4.t }

type rule = { priority : int; selector : string; table : int }

type state = { ifaces : iface list; routes : route list; rules : rule list }

let empty_state = { ifaces = []; routes = []; rules = [] }

let route_equal (a : route) (b : route) =
  a.table = b.table && Prefix.equal a.prefix b.prefix && Ipv4.equal a.via b.via

let rule_equal (a : rule) (b : rule) =
  a.priority = b.priority
  && String.equal a.selector b.selector
  && a.table = b.table

(* -- kernel primitives -------------------------------------------------------- *)

type op =
  | Create_iface of string
  | Delete_iface of string
  | Set_link of string * bool
  | Add_address of string * Ipv4.t
  | Del_address of string * Ipv4.t
  | Add_route of route
  | Del_route of route
  | Add_rule of rule
  | Del_rule of rule

let pp_op ppf = function
  | Create_iface n -> Fmt.pf ppf "link add %s" n
  | Delete_iface n -> Fmt.pf ppf "link del %s" n
  | Set_link (n, up) -> Fmt.pf ppf "link set %s %s" n (if up then "up" else "down")
  | Add_address (n, ip) -> Fmt.pf ppf "addr add %a dev %s" Ipv4.pp ip n
  | Del_address (n, ip) -> Fmt.pf ppf "addr del %a dev %s" Ipv4.pp ip n
  | Add_route r ->
      Fmt.pf ppf "route add %a via %a table %d" Prefix.pp r.prefix Ipv4.pp
        r.via r.table
  | Del_route r ->
      Fmt.pf ppf "route del %a via %a table %d" Prefix.pp r.prefix Ipv4.pp
        r.via r.table
  | Add_rule r ->
      Fmt.pf ppf "rule add pref %d from %s lookup %d" r.priority r.selector
        r.table
  | Del_rule r ->
      Fmt.pf ppf "rule del pref %d from %s lookup %d" r.priority r.selector
        r.table

(* A Netlink-like kernel: request/response only, no intent, primary address
   = first added. Failure injection lets tests exercise rollback. *)
module Kernel = struct
  type k_iface = {
    mutable k_addresses : Ipv4.t list;  (** insertion order = primary first *)
    mutable k_up : bool;
  }

  type t = {
    ifaces : (string, k_iface) Hashtbl.t;
    mutable routes : route list;
    mutable rules : rule list;
    mutable fail_after : int option;
        (** fail the Nth next operation (0 = the next one) *)
    mutable offline : bool;
        (** a crashed/unreachable PoP: every request fails until restored *)
    mutable ops_applied : op list;  (** newest first, for inspection *)
  }

  let create () =
    {
      ifaces = Hashtbl.create 8;
      routes = [];
      rules = [];
      fail_after = None;
      offline = false;
      ops_applied = [];
    }

  let inject_failure t ~after = t.fail_after <- Some after
  let set_offline t offline = t.offline <- offline
  let offline t = t.offline

  (* A PoP crash loses the kernel's runtime network configuration (it
     reboots empty); the controller must replay intent to rebuild it. *)
  let reset t =
    Hashtbl.reset t.ifaces;
    t.routes <- [];
    t.rules <- [];
    t.fail_after <- None;
    t.ops_applied <- []

  let observe t : state =
    let ifaces =
      Hashtbl.fold
        (fun ifname k acc ->
          { ifname; addresses = k.k_addresses; up = k.k_up } :: acc)
        t.ifaces []
      |> List.sort (fun a b -> String.compare a.ifname b.ifname)
    in
    { ifaces; routes = t.routes; rules = t.rules }

  let apply t op =
    if t.offline then Error (Fmt.str "EHOSTUNREACH applying: %a" pp_op op)
    else
    match t.fail_after with
    | Some 0 ->
        t.fail_after <- None;
        Error (Fmt.str "EINVAL applying: %a" pp_op op)
    | _ ->
        (match t.fail_after with
        | Some n -> t.fail_after <- Some (n - 1)
        | None -> ());
        let result =
          match op with
          | Create_iface n ->
              if Hashtbl.mem t.ifaces n then Error "iface exists"
              else begin
                Hashtbl.replace t.ifaces n { k_addresses = []; k_up = false };
                Ok ()
              end
          | Delete_iface n ->
              if Hashtbl.mem t.ifaces n then begin
                Hashtbl.remove t.ifaces n;
                Ok ()
              end
              else Error "no such iface"
          | Set_link (n, up) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  k.k_up <- up;
                  Ok ()
              | None -> Error "no such iface")
          | Add_address (n, ip) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  if List.exists (Ipv4.equal ip) k.k_addresses then
                    Error "address exists"
                  else begin
                    (* Primary = first added: append. *)
                    k.k_addresses <- k.k_addresses @ [ ip ];
                    Ok ()
                  end
              | None -> Error "no such iface")
          | Del_address (n, ip) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  if List.exists (Ipv4.equal ip) k.k_addresses then begin
                    k.k_addresses <-
                      List.filter
                        (fun a -> not (Ipv4.equal a ip))
                        k.k_addresses;
                    Ok ()
                  end
                  else Error "no such address"
              | None -> Error "no such iface")
          | Add_route r ->
              if List.exists (route_equal r) t.routes then Error "route exists"
              else begin
                t.routes <- t.routes @ [ r ];
                Ok ()
              end
          | Del_route r ->
              if List.exists (route_equal r) t.routes then begin
                t.routes <- List.filter (fun x -> not (route_equal x r)) t.routes;
                Ok ()
              end
              else Error "no such route"
          | Add_rule r ->
              if List.exists (rule_equal r) t.rules then Error "rule exists"
              else begin
                t.rules <- t.rules @ [ r ];
                Ok ()
              end
          | Del_rule r ->
              if List.exists (rule_equal r) t.rules then begin
                t.rules <- List.filter (fun x -> not (rule_equal x r)) t.rules;
                Ok ()
              end
              else Error "no such rule"
        in
        (match result with Ok () -> t.ops_applied <- op :: t.ops_applied | Error _ -> ());
        result
end

(* -- planning ------------------------------------------------------------------ *)

(* The inverse of an operation, for rollback. [before] is the kernel state
   the operation executed against. *)
let invert ~(before : state) = function
  | Create_iface n -> [ Delete_iface n ]
  | Delete_iface n -> (
      match List.find_opt (fun i -> String.equal i.ifname n) before.ifaces with
      | Some i ->
          Create_iface n
          :: List.map (fun a -> Add_address (n, a)) i.addresses
          @ (if i.up then [ Set_link (n, true) ] else [])
      | None -> [])
  | Set_link (n, _) -> (
      match List.find_opt (fun i -> String.equal i.ifname n) before.ifaces with
      | Some i -> [ Set_link (n, i.up) ]
      | None -> [])
  | Add_address (n, ip) -> [ Del_address (n, ip) ]
  | Del_address (n, ip) -> (
      (* Because the kernel's primary address is positional (first added),
         a bare re-add cannot restore ordering: every address that
         followed [ip] before the delete must come off and back on again
         behind it. Rollback applies inverses newest-first, so at the
         time this inverse runs those trailing addresses are present
         exactly as they were in [before]. *)
      match List.find_opt (fun i -> String.equal i.ifname n) before.ifaces with
      | Some i ->
          let rec after = function
            | [] -> []
            | a :: rest -> if Ipv4.equal a ip then rest else after rest
          in
          let trailing = after i.addresses in
          List.map (fun a -> Del_address (n, a)) trailing
          @ Add_address (n, ip)
            :: List.map (fun a -> Add_address (n, a)) trailing
      | None -> [ Add_address (n, ip) ])
  | Add_route r -> [ Del_route r ]
  | Del_route r -> [ Add_route r ]
  | Add_rule r -> [ Del_rule r ]
  | Del_rule r -> [ Add_rule r ]

(* Compute the minimal plan transforming [current] into [desired]:
   configuration compatible with the intent is untouched (so BGP sessions
   and VPN connections over those interfaces survive, §5). *)
let plan ~(current : state) ~(desired : state) =
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let find_iface st n =
    List.find_opt (fun i -> String.equal i.ifname n) st.ifaces
  in
  (* Interfaces to delete. *)
  List.iter
    (fun (i : iface) ->
      if find_iface desired i.ifname = None then emit (Delete_iface i.ifname))
    current.ifaces;
  (* Interfaces to create or fix. *)
  List.iter
    (fun (want : iface) ->
      match find_iface current want.ifname with
      | None ->
          emit (Create_iface want.ifname);
          List.iter (fun a -> emit (Add_address (want.ifname, a))) want.addresses;
          if want.up then emit (Set_link (want.ifname, true))
      | Some have ->
          let primary_wrong =
            match (have.addresses, want.addresses) with
            | h :: _, w :: _ -> not (Ipv4.equal h w)
            | [], _ :: _ -> false
            | _, [] -> false
          in
          if primary_wrong then begin
            (* The kernel cannot change the primary in place: remove every
               address and re-add in the intended order (§5). *)
            List.iter
              (fun a -> emit (Del_address (want.ifname, a)))
              have.addresses;
            List.iter
              (fun a -> emit (Add_address (want.ifname, a)))
              want.addresses
          end
          else begin
            (* Keep compatible addresses; drop extras; add missing. *)
            List.iter
              (fun a ->
                if not (List.exists (Ipv4.equal a) want.addresses) then
                  emit (Del_address (want.ifname, a)))
              have.addresses;
            List.iter
              (fun a ->
                if not (List.exists (Ipv4.equal a) have.addresses) then
                  emit (Add_address (want.ifname, a)))
              want.addresses
          end;
          if have.up <> want.up then emit (Set_link (want.ifname, want.up)))
    desired.ifaces;
  (* Routes. *)
  List.iter
    (fun r ->
      if not (List.exists (route_equal r) desired.routes) then
        emit (Del_route r))
    current.routes;
  List.iter
    (fun r ->
      if not (List.exists (route_equal r) current.routes) then
        emit (Add_route r))
    desired.routes;
  (* Rules. *)
  List.iter
    (fun r ->
      if not (List.exists (rule_equal r) desired.rules) then emit (Del_rule r))
    current.rules;
  List.iter
    (fun r ->
      if not (List.exists (rule_equal r) current.rules) then emit (Add_rule r))
    desired.rules;
  List.rev !ops

type apply_result =
  | Applied of op list
  | Rolled_back of { failed : op; error : string; undone : int }

(* Apply [ops] transactionally: on any failure, roll back the applied
   prefix (in reverse) and report. *)
let apply_transaction kernel ops =
  let rec go applied = function
    | [] -> Applied (List.rev_map fst applied)
    | op :: rest -> (
        let before = Kernel.observe kernel in
        match Kernel.apply kernel op with
        | Ok () -> go ((op, before) :: applied) rest
        | Error error ->
            (* Roll back everything applied so far. *)
            let undone = ref 0 in
            List.iter
              (fun (op, before) ->
                List.iter
                  (fun inverse ->
                    match Kernel.apply kernel inverse with
                    | Ok () -> incr undone
                    | Error _ -> ())
                  (invert ~before op))
              applied;
            Rolled_back { failed = op; error; undone = !undone })
  in
  go [] ops

(* One-shot reconciliation: observe, plan, apply. *)
let reconcile kernel ~desired =
  let current = Kernel.observe kernel in
  let ops = plan ~current ~desired in
  (ops, apply_transaction kernel ops)

(* Does the kernel now match the intent (ignoring ordering beyond the
   primary address)? *)
let converged kernel ~(desired : state) =
  let current = Kernel.observe kernel in
  plan ~current ~desired = []

(* -- two-phase apply across PoPs --------------------------------------------- *)

(* Platform-wide configuration pushes (paper §5): one intent document
   covers every PoP, and a push must never leave the platform split-brained
   — either every PoP converges to the new intent or every PoP is returned
   to its pre-apply state. The protocol is a classic two-phase commit over
   the per-kernel transactional layer above:

     prepare  observe each PoP, compute its plan, verify the kernel is
              reachable — no mutation;
     commit   apply each plan transactionally, in order;
     abort    on any failure, reconcile every already-committed PoP back
              to its pre-apply snapshot (the per-kernel rollback handles
              the failing PoP itself).

   Each phase retries per-PoP with capped exponential backoff (transient
   EINVAL/EHOSTUNREACH answers are a fact of life against Netlink), and
   every step lands in a journal so a controller that crashes mid-apply
   can resume: committed PoPs are recognized and skipped, the rest are
   re-planned from their live kernel state. *)
module Multi = struct
  type participant = {
    part_name : string;
    kernel : Kernel.t;
    desired : state;
  }

  type phase = Prepare | Commit | Rollback

  let phase_to_string = function
    | Prepare -> "prepare"
    | Commit -> "commit"
    | Rollback -> "rollback"

  type entry_status =
    | Pending
    | Prepared
    | Committed
    | Rolled_back
    | Apply_failed of string

  let entry_status_to_string = function
    | Pending -> "pending"
    | Prepared -> "prepared"
    | Committed -> "committed"
    | Rolled_back -> "rolled-back"
    | Apply_failed e -> Printf.sprintf "failed (%s)" e

  type entry = {
    e_name : string;
    mutable snapshot : state;  (** pre-apply kernel state, rollback target *)
    mutable plan_ops : op list;
    mutable status : entry_status;
    mutable attempts : int;  (** kernel round-trips across all phases *)
  }

  type journal = {
    entries : entry list;  (** in participant order *)
    mutable log : string list;  (** newest first *)
    mutable backoffs : float list;  (** retry delays issued, newest first *)
  }

  type retry = {
    max_attempts : int;  (** per PoP per phase *)
    backoff_base : float;
    backoff_max : float;
  }

  let default_retry = { max_attempts = 3; backoff_base = 0.2; backoff_max = 5. }

  type outcome =
    | Committed_all of journal
    | Aborted of {
        failed_pop : string;
        phase : phase;
        error : string;
        journal : journal;
      }
    | Crashed of journal  (** stopped by [crash_after]; resumable *)

  let journal_entries j = j.entries
  let journal_log j = List.rev j.log
  let journal_backoffs j = List.rev j.backoffs

  let entry j name =
    List.find_opt (fun e -> String.equal e.e_name name) j.entries

  let pp_journal ppf j =
    List.iter
      (fun e ->
        Fmt.pf ppf "%s: %s, %d ops, %d attempts@." e.e_name
          (entry_status_to_string e.status)
          (List.length e.plan_ops) e.attempts)
      j.entries;
    List.iter (fun l -> Fmt.pf ppf "  %s@." l) (List.rev j.log)

  let log j fmt = Format.kasprintf (fun m -> j.log <- m :: j.log) fmt

  (* Run [f] with up to [retry.max_attempts] attempts; between attempts a
     capped-exponential backoff delay is computed, journalled, and handed
     to [on_backoff] (the caller decides whether to actually sleep — the
     simulator never does, it only checks the schedule). *)
  let with_retry j retry ~on_backoff ~what (e : entry) f =
    let rec go attempt =
      e.attempts <- e.attempts + 1;
      match f () with
      | Ok v -> Ok v
      | Error err ->
          if attempt + 1 >= retry.max_attempts then Error err
          else begin
            let delay =
              Float.min retry.backoff_max
                (retry.backoff_base *. (2. ** float_of_int attempt))
            in
            j.backoffs <- delay :: j.backoffs;
            log j "%s %s attempt %d failed (%s); retry in %.2fs" e.e_name
              what (attempt + 1) err delay;
            on_backoff delay;
            go (attempt + 1)
          end
    in
    go 0

  (* Prepare one PoP: snapshot, plan, verify reachability. Pure read. *)
  let prepare j retry ~on_backoff (p : participant) (e : entry) =
    with_retry j retry ~on_backoff ~what:"prepare" e (fun () ->
        if Kernel.offline p.kernel then Error "EHOSTUNREACH kernel offline"
        else begin
          let current = Kernel.observe p.kernel in
          e.snapshot <- current;
          e.plan_ops <- plan ~current ~desired:p.desired;
          Ok ()
        end)

  (* Commit one PoP: transactional apply of the prepared plan. A failed
     attempt has already rolled this kernel back to its snapshot, so a
     retry can safely re-plan from live state (the plan may legitimately
     differ if the failure consumed an injected fault). *)
  let commit j retry ~on_backoff (p : participant) (e : entry) =
    with_retry j retry ~on_backoff ~what:"commit" e (fun () ->
        let ops =
          plan ~current:(Kernel.observe p.kernel) ~desired:p.desired
        in
        match apply_transaction p.kernel ops with
        | Applied applied ->
            e.plan_ops <- ops;
            log j "%s committed (%d ops)" e.e_name (List.length applied);
            Ok ()
        | Rolled_back { failed; error; undone } ->
            Error
              (Fmt.str "%a: %s (%d ops undone)" pp_op failed error undone))

  (* Return one committed PoP to its pre-apply snapshot by reconciling
     against it — the same minimal-plan machinery, pointed backwards. *)
  let roll_back j retry ~on_backoff (p : participant) (e : entry) =
    with_retry j retry ~on_backoff ~what:"rollback" e (fun () ->
        let ops =
          plan ~current:(Kernel.observe p.kernel) ~desired:e.snapshot
        in
        match apply_transaction p.kernel ops with
        | Applied _ ->
            log j "%s rolled back to pre-apply state" e.e_name;
            Ok ()
        | Rolled_back { failed; error; _ } ->
            Error (Fmt.str "%a: %s" pp_op failed error))

  let fresh_journal participants =
    {
      entries =
        List.map
          (fun p ->
            {
              e_name = p.part_name;
              snapshot = empty_state;
              plan_ops = [];
              status = Pending;
              attempts = 0;
            })
          participants;
      log = [];
      backoffs = [];
    }

  (* Abort: reconcile every committed PoP back to its snapshot, newest
     commit first. Rollback failures are journalled but do not stop the
     sweep — leaving one PoP dirty must not strand the others. *)
  let abort j retry ~on_backoff participants ~failed_pop ~phase ~error =
    log j "aborting after %s %s failure: %s" failed_pop
      (phase_to_string phase) error;
    List.iter
      (fun (p, e) ->
        if e.status = Committed then
          match roll_back j retry ~on_backoff p e with
          | Ok () -> e.status <- Rolled_back
          | Error err ->
              e.status <- Apply_failed err;
              log j "%s rollback FAILED: %s" p.part_name err)
      (List.rev
         (List.map2 (fun p e -> (p, e)) participants j.entries));
    Aborted { failed_pop; phase; error; journal = j }

  (* Drive a journal to completion: prepare everything still pending,
     then commit in order; abort with platform-wide rollback on any
     failure. [crash_after] stops the run after that many successful
     commits (simulating a controller crash); [resume] below picks the
     journal back up. *)
  let run ?(retry = default_retry) ?(on_backoff = ignore) ?crash_after
      participants j =
    (* Phase 1: prepare (committed entries from a prior run are final;
       everything else re-prepares from live state). *)
    let rec prepare_all = function
      | [] -> None
      | (p, e) :: rest ->
          if e.status = Committed then prepare_all rest
          else begin
            match prepare j retry ~on_backoff p e with
            | Ok () ->
                e.status <- Prepared;
                prepare_all rest
            | Error error -> Some (p.part_name, error)
          end
    in
    let pairs = List.map2 (fun p e -> (p, e)) participants j.entries in
    match prepare_all pairs with
    | Some (failed_pop, error) ->
        abort j retry ~on_backoff participants ~failed_pop ~phase:Prepare
          ~error
    | None -> (
        log j "prepare complete: %d PoPs planned"
          (List.length
             (List.filter (fun e -> e.status = Prepared) j.entries));
        (* Phase 2: commit in order, with an optional crash point. *)
        let committed = ref 0 in
        let rec commit_all = function
          | [] -> `Done
          | (p, e) :: rest ->
              if e.status = Committed then commit_all rest
              else if
                match crash_after with
                | Some n -> !committed >= n
                | None -> false
              then `Crashed
              else begin
                match commit j retry ~on_backoff p e with
                | Ok () ->
                    e.status <- Committed;
                    incr committed;
                    commit_all rest
                | Error error -> `Failed (p.part_name, error)
              end
        in
        match commit_all pairs with
        | `Done -> Committed_all j
        | `Crashed ->
            log j "controller crashed after %d commits" !committed;
            Crashed j
        | `Failed (failed_pop, error) ->
            abort j retry ~on_backoff participants ~failed_pop ~phase:Commit
              ~error)

  let apply ?retry ?on_backoff ?crash_after participants =
    if participants = [] then invalid_arg "Controller.Multi.apply: no PoPs";
    run ?retry ?on_backoff ?crash_after participants
      (fresh_journal participants)

  (* Resume a crashed apply: committed PoPs are skipped, the rest are
     re-planned from their live kernels. Idempotent — resuming a
     completed journal re-verifies convergence and commits nothing. *)
  let resume ?retry ?on_backoff ?crash_after j participants =
    if List.length participants <> List.length j.entries then
      invalid_arg "Controller.Multi.resume: participant set changed";
    List.iter2
      (fun p e ->
        if not (String.equal p.part_name e.e_name) then
          invalid_arg "Controller.Multi.resume: participant set changed")
      participants j.entries;
    log j "resuming apply";
    run ?retry ?on_backoff ?crash_after participants j

  let converged_all participants =
    List.for_all (fun p -> converged p.kernel ~desired:p.desired) participants
end

(* The desired state for a vBGP deployment: one tap interface per
   experiment, one routing table + rule per neighbor (paper §3.2.2). *)
let vbgp_desired_state ~experiments ~neighbors =
  let ifaces =
    List.map
      (fun (name, addr) ->
        { ifname = Printf.sprintf "tap_%s" name; addresses = [ addr ]; up = true })
      experiments
  in
  let routes, rules =
    List.split
      (List.map
         (fun (id, virtual_ip, real_ip) ->
           ( { table = id; prefix = Prefix.default; via = real_ip },
             {
               priority = 100 + id;
               selector = Ipv4.to_string virtual_ip;
               table = id;
             } ))
         neighbors)
  in
  { ifaces; routes; rules }
