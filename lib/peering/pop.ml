(* A PEERING Point of Presence: a vBGP router at an IXP or university, plus
   its set of interconnections (paper §4.2). IXP PoPs carry many bilateral
   peers and route servers; university PoPs typically have a single transit
   interconnection with the campus AS. *)

open Netcore
open Bgp
open Sim

type site = Ixp | University

let site_to_string = function Ixp -> "IXP" | University -> "university"

type t = {
  name : string;
  site : site;
  engine : Engine.t;
  router : Vbgp.Router.t;
  kernel : Controller.Kernel.t;
      (** the site's Netlink-like kernel, reconciled by the controller *)
  mutable alive : bool;  (** false between a crash and its restart *)
  mutable neighbors : Neighbor_host.t list;
  mutable next_neighbor_ip : int;
      (** allocator for neighbor interface addresses *)
  neighbor_net : Prefix.t;  (** addresses for neighbor interfaces *)
}

let name t = t.name
let site t = t.site
let router t = t.router
let kernel t = t.kernel
let alive t = t.alive
let set_alive t alive = t.alive <- alive
let neighbors t = List.rev t.neighbors
let neighbor_count t = List.length t.neighbors

let create ~engine ~trace ~name ~site ~asn ~router_id ~global_pool
    ?(neighbor_net = Prefix.of_string_exn "100.64.0.0/16")
    ?bandwidth_limit_mbps () =
  let router =
    Vbgp.Router.create ~engine ~trace ~name ~asn ~router_id
      ~primary_ip:router_id
      ~local_pool:(Prefix.of_string_exn "127.65.0.0/16")
      ~global_pool ()
  in
  Vbgp.Router.activate router;
  (* PEERING's default data-plane policy (§4.7): experiments may only
     source traffic from their own allocation. *)
  Vbgp.Data_enforcer.add_filter
    (Vbgp.Router.data_enforcer router)
    (Vbgp.Data_enforcer.source_validation
       ~owner_of:(Vbgp.Router.allocation_owner_of router)
       ());
  (* §4.7: sites with bandwidth constraints shape experiment traffic to the
     rate agreed with the site's operators. *)
  (match bandwidth_limit_mbps with
  | Some mbps ->
      let rate = float_of_int mbps *. 1e6 /. 8. in
      Vbgp.Data_enforcer.add_filter
        (Vbgp.Router.data_enforcer router)
        (Vbgp.Data_enforcer.shaper
           ~name:(Printf.sprintf "%s-shaper" name)
           ~rate ~burst:(rate /. 10.)
           ~key_of:(fun _ -> name)
           ())
  | None -> ());
  {
    name;
    site;
    engine;
    router;
    kernel = Controller.Kernel.create ();
    alive = true;
    neighbors = [];
    next_neighbor_ip = 10;
    neighbor_net;
  }

let fresh_neighbor_ip t =
  let ip = Prefix.host t.neighbor_net t.next_neighbor_ip in
  t.next_neighbor_ip <- t.next_neighbor_ip + 1;
  ip

(* Interconnect with network [asn]. Returns the simulated neighbor. *)
let add_neighbor t ~kind ~asn ?name () =
  let ip = fresh_neighbor_ip t in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "as%s@%s" (Asn.to_string asn) t.name
  in
  let host =
    Neighbor_host.create ~engine:t.engine ~router:t.router ~name ~asn ~ip
      ~kind ()
  in
  t.neighbors <- host :: t.neighbors;
  host

let add_transit t ~asn = add_neighbor t ~kind:Vbgp.Neighbor.Transit ~asn ()
let add_peer t ~asn = add_neighbor t ~kind:Vbgp.Neighbor.Peer ~asn ()

let add_route_server t ~asn =
  add_neighbor t ~kind:Vbgp.Neighbor.Route_server ~asn ()

let find_neighbor t ~asn =
  List.find_opt (fun n -> Asn.equal n.Neighbor_host.asn asn) t.neighbors
