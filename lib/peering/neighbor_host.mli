(** A simulated external network adjacent to a PEERING PoP: one BGP speaker
    plus a data-plane endpoint. It announces the routes the synthetic
    Internet computed for its AS, records the experiment announcements it
    hears, and can originate traffic toward experiment prefixes. *)

open Netcore
open Bgp
open Sim

type t = {
  name : string;
  asn : Asn.t;
  ip : Ipv4.t;  (** interface address on the interconnection *)
  engine : Engine.t;
  router : Vbgp.Router.t;
  neighbor_id : int;
  pair : Bgp_wire.pair;
  mutable pending : (Prefix.t * Aspath.t) list;
  mutable table : (Prefix.t * Aspath.t) list;
  heard : (Prefix.t, Attr.set) Hashtbl.t;
  heard_v6 : (Prefix_v6.t, Attr.set) Hashtbl.t;
  mutable received_packets : Ipv4_packet.t list;
  mutable established : bool;
  mutable gr_stale : (Prefix.t, unit) Hashtbl.t option;
      (** heard routes held across a graceful platform restart *)
  mutable gr_stale_v6 : (Prefix_v6.t, unit) Hashtbl.t option;
  mutable gr_cancel : unit -> unit;
  mutable withdrawals_seen : int;
}

val create :
  engine:Engine.t ->
  router:Vbgp.Router.t ->
  name:string ->
  asn:Asn.t ->
  ip:Ipv4.t ->
  kind:Vbgp.Neighbor.kind ->
  ?latency:float ->
  unit ->
  t
(** Registers with the router, starts the BGP session. *)

val session : t -> Session.t
(** The neighbor-side (active) session. *)

val neighbor_id : t -> int
val is_established : t -> bool

val withdrawals_seen : t -> int
(** Withdrawals received on the wire since creation. A graceful restart
    that changed nothing must leave this untouched — the chaos suite's
    core assertion. *)

val flap_count : t -> int
(** Non-administrative session losses observed by this host's speaker. *)

val announce : t -> (Prefix.t * Aspath.t) list -> unit
(** Announce routes (queued until the session establishes; the full table
    is re-sent on every re-establishment, as in real BGP). *)

val withdraw : t -> Prefix.t list -> unit

val heard_route : t -> Prefix.t -> Attr.set option
(** The platform's last announcement of [prefix] to this neighbor, if
    any. *)

val heard_route_v6 : t -> Prefix_v6.t -> Attr.set option

val heard_count : t -> int

val send_packet :
  t ->
  ?ttl:int ->
  ?protocol:Ipv4_packet.protocol ->
  src:Ipv4.t ->
  dst:Ipv4.t ->
  string ->
  unit
(** Originate a packet toward [dst], entering the platform here. *)

val received_packets : t -> Ipv4_packet.t list
(** Packets the platform forwarded out through this neighbor, oldest
    first. *)
