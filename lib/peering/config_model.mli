(** The intent-based configuration model (paper §5): a declarative
    snapshot of what every PoP should look like — interconnections,
    experiments and their capabilities, bandwidth limits — stored centrally
    and rendered into per-service configuration by {!Template}. *)

open Netcore
open Bgp

type session_intent = {
  peer_name : string;
  peer_ip : Ipv4.t;
  peer_asn : Asn.t;
  kind : string;  (** "transit" | "peer" | "route-server" | "mesh" *)
  add_path : bool;
}

type experiment_intent = {
  exp_name : string;
  exp_asn : Asn.t;
  exp_prefixes : Prefix.t list;
  caps : Vbgp.Experiment_caps.t;
  vpn_port : int;
}

type pop_intent = {
  pop_name : string;
  router_id : Ipv4.t;
  mux_asn : Asn.t;
  sessions : session_intent list;
  experiments : experiment_intent list;
  bandwidth_limit_mbps : int option;
      (** §4.7: only bandwidth-constrained sites shape traffic *)
}

type t = { pops : pop_intent list; version : int }

val make : ?version:int -> pop_intent list -> t
val pop : t -> string -> pop_intent option

val of_platform : Platform.t -> t
(** Snapshot the live platform's intent (the "desired configuration
    database" of §5). *)

val desired_of_intent : pop_intent -> Controller.state
(** Compile one PoP's intent into the kernel state the controller must
    realize: a tap interface per experiment, a routing table + rule per
    interconnection (mesh sessions are excluded — they ride the
    backbone). Deterministic, so two-phase re-apply is idempotent. *)
