(** A PEERING Point of Presence: a vBGP router at an IXP or university
    plus its interconnections (paper §4.2). *)

open Netcore
open Bgp
open Sim

type site = Ixp | University

val site_to_string : site -> string

type t

val create :
  engine:Engine.t ->
  trace:Trace.t ->
  name:string ->
  site:site ->
  asn:Asn.t ->
  router_id:Ipv4.t ->
  global_pool:Vbgp.Addr_pool.t ->
  ?neighbor_net:Prefix.t ->
  ?bandwidth_limit_mbps:int ->
  unit ->
  t
(** Builds the vBGP router with the platform's default data-plane policy
    (source validation) installed, plus traffic shaping when the site has
    a bandwidth constraint (§4.7). *)

val name : t -> string
val site : t -> site
val router : t -> Vbgp.Router.t

val kernel : t -> Controller.Kernel.t
(** The site's Netlink-like kernel, reconciled by the controller (§5). *)

val alive : t -> bool
(** False between a {!Failover.kill_pop} and its restart. *)

val set_alive : t -> bool -> unit

val neighbors : t -> Neighbor_host.t list
val neighbor_count : t -> int

val add_neighbor :
  t -> kind:Vbgp.Neighbor.kind -> asn:Asn.t -> ?name:string -> unit -> Neighbor_host.t

val add_transit : t -> asn:Asn.t -> Neighbor_host.t
val add_peer : t -> asn:Asn.t -> Neighbor_host.t
val add_route_server : t -> asn:Asn.t -> Neighbor_host.t
val find_neighbor : t -> asn:Asn.t -> Neighbor_host.t option
