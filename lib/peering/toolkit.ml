(* The experiment toolkit (paper §4.5, Table 1): the client-side software an
   experimenter runs. It wraps tunnel management, BGP session control, and
   prefix announcement/manipulation behind a turn-key interface, exposes a
   BIRD-style CLI for inspection, and gives the experiment a real data-plane
   stack (ARP + IP over the PoP's experiment LAN) with per-packet egress
   selection by virtual next hop. *)

open Netcore
open Bgp
open Sim

type received = {
  pop : string;
  src_mac : Mac.t;  (** the delivering neighbor's virtual MAC *)
  packet : Ipv4_packet.t;
  at : float;
}

type tunnel = {
  tpop : Pop.t;
  pair : Bgp_wire.pair;
  arp : Vbgp.Arp_client.t;
  rib : Rib.Table.t;
  mutable session_open : bool;
  announced : (Prefix.t * int, Attr.set) Hashtbl.t;
      (** live announcements keyed (prefix, path id); replayed in full on
          every re-establishment, as in real BGP *)
  announced_v6 : (Prefix_v6.t * int, Attr.set) Hashtbl.t;
  mutable rib_stale : (Prefix.t * int option, unit) Hashtbl.t option;
      (** RIB entries held across a graceful platform restart *)
  mutable rib_gr_cancel : unit -> unit;
}

type t = {
  engine : Engine.t;
  grant : Vbgp.Control_enforcer.grant;
  asn : Asn.t;
  src_ip : Ipv4.t;  (** default source: first host of the allocation *)
  mac : Mac.t;
  mutable tunnels : tunnel list;
  mutable received : received list;
  mutable echo_replies : (Ipv4.t * int) list;  (** (replier, seq) *)
  mutable udp_services : (int * (Ipv4_packet.t -> Udp.t -> string option)) list;
}

let grant t = t.grant
let received t = List.rev t.received
let echo_replies t = List.rev t.echo_replies

let create ~engine ~grant =
  let asn =
    match grant.Vbgp.Control_enforcer.asns with
    | a :: _ -> a
    | [] -> invalid_arg "Toolkit.create: grant has no ASN"
  in
  let src_ip =
    match grant.Vbgp.Control_enforcer.prefixes with
    | p :: _ -> Prefix.host p 1
    | [] -> invalid_arg "Toolkit.create: grant has no prefixes"
  in
  {
    engine;
    grant;
    asn;
    src_ip;
    mac = Mac.local ~pool:0xe0 (Hashtbl.hash grant.Vbgp.Control_enforcer.name land 0xffffff);
    tunnels = [];
    received = [];
    echo_replies = [];
    udp_services = [];
  }

let tunnel t pop_name =
  List.find_opt (fun tn -> String.equal (Pop.name tn.tpop) pop_name) t.tunnels

let tunnel_exn t pop_name =
  match tunnel t pop_name with
  | Some tn -> tn
  | None -> invalid_arg (Printf.sprintf "Toolkit: no tunnel to %S" pop_name)

let tunnels t = t.tunnels

(* The VPN session pair under a tunnel — the failover drills kill and
   restore it with the PoP it lands on. *)
let tunnel_pair t ~pop = Option.map (fun tn -> tn.pair) (tunnel t pop)

(* Addresses this experiment answers for (ARP/ICMP/UDP). *)
let owns_address t ip =
  List.exists (Prefix.mem ip) t.grant.Vbgp.Control_enforcer.prefixes

(* Reply to traffic via the neighbor that delivered it: frame the response
   straight back to the incoming source MAC (per-packet ingress visibility
   in action). *)
let reply_via t tn ~via (packet : Ipv4_packet.t) =
  Lan.send (Vbgp.Router.experiment_lan (Pop.router tn.tpop))
    {
      Eth.dst = via;
      src = t.mac;
      ethertype = Eth.Ipv4;
      payload = Ipv4_packet.encode packet;
    }

let handle_ip t tn ~src_mac (packet : Ipv4_packet.t) =
  t.received <-
    {
      pop = Pop.name tn.tpop;
      src_mac;
      packet;
      at = Engine.now t.engine;
    }
    :: t.received;
  if owns_address t packet.Ipv4_packet.dst then
    match packet.Ipv4_packet.protocol with
    | Ipv4_packet.Icmp -> (
        match Icmp.decode packet.Ipv4_packet.payload with
        | Ok (Icmp.Echo_request { id; seq; payload }) ->
            let reply =
              Ipv4_packet.make ~src:packet.Ipv4_packet.dst
                ~dst:packet.Ipv4_packet.src ~protocol:Ipv4_packet.Icmp
                (Icmp.encode (Icmp.Echo_reply { id; seq; payload }))
            in
            reply_via t tn ~via:src_mac reply
        | Ok (Icmp.Echo_reply { seq; _ }) ->
            t.echo_replies <- (packet.Ipv4_packet.src, seq) :: t.echo_replies
        | Ok _ | Error _ -> ())
    | Ipv4_packet.Udp -> (
        match Udp.decode packet.Ipv4_packet.payload with
        | Ok datagram -> (
            match List.assoc_opt datagram.Udp.dst_port t.udp_services with
            | Some service -> (
                match service packet datagram with
                | Some response ->
                    let reply =
                      Ipv4_packet.make ~src:packet.Ipv4_packet.dst
                        ~dst:packet.Ipv4_packet.src ~protocol:Ipv4_packet.Udp
                        (Udp.encode
                           {
                             Udp.src_port = datagram.Udp.dst_port;
                             dst_port = datagram.Udp.src_port;
                             payload = response;
                           })
                    in
                    reply_via t tn ~via:src_mac reply
                | None -> ())
            | None -> ())
        | Error _ -> ())
    | Ipv4_packet.Tcp | Ipv4_packet.Other _ -> ()

(* Host a UDP service reachable from the Internet (paper §2.1 goal). The
   handler returns an optional response payload. *)
let serve_udp t ~port handler =
  t.udp_services <- (port, handler) :: t.udp_services

(* -- Table 1: OpenVPN tunnels ------------------------------------------------ *)

(* Open the tunnel (VPN + data-plane attach) to [pop] and start BGP. *)
let open_tunnel t (pop : Pop.t) =
  if tunnel t (Pop.name pop) <> None then
    invalid_arg "Toolkit.open_tunnel: already open";
  let router = Pop.router pop in
  let pair = Vbgp.Router.connect_experiment router ~grant:t.grant ~mac:t.mac () in
  let lan = Vbgp.Router.experiment_lan router in
  let arp =
    Vbgp.Arp_client.attach lan ~mac:t.mac
      ~ips:
        (List.map
           (fun p -> Prefix.host p 1)
           t.grant.Vbgp.Control_enforcer.prefixes)
  in
  let rib = Rib.Table.create () in
  let tn =
    {
      tpop = pop;
      pair;
      arp;
      rib;
      session_open = false;
      announced = Hashtbl.create 8;
      announced_v6 = Hashtbl.create 4;
      rib_stale = None;
      rib_gr_cancel = ignore;
    }
  in
  Vbgp.Arp_client.set_ip_handler arp (fun ~src_mac packet ->
      handle_ip t tn ~src_mac packet);
  (* Client-side session handlers: maintain the local multi-path RIB. *)
  let client = pair.Bgp_wire.active in
  let router_id = Ipv4.of_string_exn "10.255.255.254" in
  let unmark key =
    match tn.rib_stale with Some s -> Hashtbl.remove s key | None -> ()
  in
  (* The PoP's End-of-RIB after a restart: withdraw exactly the RIB
     entries its resync did not refresh (RFC 4724 mark-and-sweep). *)
  let sweep_stale () =
    tn.rib_gr_cancel ();
    tn.rib_gr_cancel <- ignore;
    match tn.rib_stale with
    | None -> ()
    | Some stale ->
        tn.rib_stale <- None;
        Hashtbl.iter
          (fun (prefix, path_id) () ->
            ignore (Rib.Table.withdraw rib ~prefix ~peer_ip:router_id ~path_id))
          stale
  in
  Session.set_handlers client
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update =
        (fun u ->
          if Msg.is_end_of_rib u then sweep_stale ()
          else begin
            List.iter
              (fun (n : Msg.nlri) ->
                unmark (n.prefix, n.path_id);
                ignore
                  (Rib.Table.withdraw rib ~prefix:n.prefix ~peer_ip:router_id
                     ~path_id:n.path_id))
              u.withdrawn;
            List.iter
              (fun (n : Msg.nlri) ->
                unmark (n.prefix, n.path_id);
                let route =
                  Rib.Route.make ~path_id:n.path_id
                    ~learned_at:(Engine.now t.engine) ~prefix:n.prefix
                    ~attrs:u.attrs
                    ~source:
                      (Rib.Route.source ~peer_ip:router_id
                         ~peer_asn:(Vbgp.Router.asn router) ())
                    ()
                in
                ignore (Rib.Table.update rib route))
              u.announced
          end);
      on_established =
        (fun () ->
          tn.session_open <- true;
          (* Replay every live announcement (the client's intent survived
             the outage), then End-of-RIB so the PoP sweeps whatever was
             withdrawn while the session was down. *)
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tn.announced []
          |> List.sort compare
          |> List.iter (fun ((prefix, path_id), attrs) ->
                 Session.send_update client
                   (Msg.update ~attrs ~announced:[ Msg.nlri ~path_id prefix ] ()));
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tn.announced_v6 []
          |> List.sort compare
          |> List.iter (fun (_, attrs) ->
                 Session.send_update client (Msg.update ~attrs ()));
          Session.send_update client (Msg.update ()));
      on_down =
        (fun reason ->
          tn.session_open <- false;
          let window =
            if Fsm.graceful reason then Session.gr_restart_time client
            else None
          in
          match window with
          | Some w when w > 0. ->
              (* Keep the RIB, marked stale, for the restart window:
                 forwarding state is preserved (RFC 4724). *)
              tn.rib_gr_cancel ();
              let stale = Hashtbl.create 16 in
              List.iter
                (fun (r : Rib.Route.t) ->
                  Hashtbl.replace stale (r.prefix, r.path_id) ())
                (Rib.Table.to_list rib);
              tn.rib_stale <- Some stale;
              tn.rib_gr_cancel <-
                Engine.schedule t.engine w (fun () ->
                    match tn.rib_stale with
                    | Some s when s == stale ->
                        tn.rib_stale <- None;
                        Hashtbl.iter
                          (fun (prefix, path_id) () ->
                            ignore
                              (Rib.Table.withdraw rib ~prefix
                                 ~peer_ip:router_id ~path_id))
                          s
                    | _ -> ())
          | _ ->
              tn.rib_gr_cancel ();
              tn.rib_gr_cancel <- ignore;
              tn.rib_stale <- None;
              ignore (Rib.Table.drop_peer rib ~peer_ip:router_id));
    };
  t.tunnels <- t.tunnels @ [ tn ];
  tn

(* Ask the PoP to resend the full table (RFC 2918 route refresh). Resent
   routes carry the same (peer, path-id) keys and replace the local entries
   by implicit withdraw. *)
let refresh_routes t ~pop =
  let tn = tunnel_exn t pop in
  Session.send_route_refresh tn.pair.Bgp_wire.active

(* Start (or restart) the BGP session over an open tunnel. *)
let start_session t ~pop =
  let tn = tunnel_exn t pop in
  Bgp_wire.start tn.pair

let stop_session t ~pop =
  let tn = tunnel_exn t pop in
  Session.stop tn.pair.Bgp_wire.active

(* Table 1 "status of BGP connections". *)
let session_status t =
  List.map
    (fun tn ->
      ( Pop.name tn.tpop,
        Session.state tn.pair.Bgp_wire.active,
        tn.session_open ))
    t.tunnels

let established t ~pop =
  match tunnel t pop with Some tn -> tn.session_open | None -> false

(* -- Table 1: prefix management ---------------------------------------------- *)

(* Build announcement attributes with the requested manipulations. *)
let build_attrs t ~router ?(prepend = 0) ?(poison = []) ?(communities = [])
    ?(announce_to = []) ?(block = []) () =
  let ctl_asn = Vbgp.Router.control_asn router in
  let base = Aspath.of_asns [ t.asn ] in
  let path =
    if poison <> [] then Aspath.poison ~self:t.asn poison Aspath.empty
    else base
  in
  let path = Aspath.prepend_n t.asn prepend path in
  let control =
    List.map (Vbgp.Export_control.announce_to ~ctl_asn) announce_to
    @ List.map (Vbgp.Export_control.block ~ctl_asn) block
  in
  Attr.origin_attrs ~as_path:path ~next_hop:t.src_ip ()
  |> Attr.with_communities (communities @ control)

(* Announce [prefix] from the toolkit's ASN. [pops] defaults to every open
   tunnel; [path_id] distinguishes parallel variants of the same prefix
   (e.g. different export policies per neighbor, §2.2.2). *)
let announce t ?pops ?(path_id = 0) ?prepend ?poison ?communities
    ?announce_to ?block prefix =
  let targets =
    match pops with
    | None -> t.tunnels
    | Some names -> List.map (tunnel_exn t) names
  in
  List.iter
    (fun tn ->
      let attrs =
        build_attrs t ~router:(Pop.router tn.tpop) ?prepend ?poison
          ?communities ?announce_to ?block ()
      in
      Hashtbl.replace tn.announced (prefix, path_id) attrs;
      Session.send_update tn.pair.Bgp_wire.active
        (Msg.update ~attrs ~announced:[ Msg.nlri ~path_id prefix ] ()))
    targets

(* Announce an IPv6 prefix via MP-BGP (control plane only; PEERING's v6
   footprint, §4.2/§4.6). *)
let announce_v6 t ?pops ?(path_id = 0) ?(communities = []) ?announce_to
    ?block prefix =
  let targets =
    match pops with
    | None -> t.tunnels
    | Some names -> List.map (tunnel_exn t) names
  in
  List.iter
    (fun tn ->
      let router = Pop.router tn.tpop in
      let ctl_asn = Vbgp.Router.control_asn router in
      let control =
        List.map
          (Vbgp.Export_control.announce_to ~ctl_asn)
          (Option.value ~default:[] announce_to)
        @ List.map
            (Vbgp.Export_control.block ~ctl_asn)
            (Option.value ~default:[] block)
      in
      let attrs =
        [
          Attr.Origin Attr.Igp;
          Attr.As_path (Aspath.of_asns [ t.asn ]);
          Attr.Mp_reach
            {
              next_hop = Ipv6.of_string_exn "2804:269c::2";
              nlri = [ (prefix, Some path_id) ];
            };
        ]
        |> Attr.with_communities (communities @ control)
      in
      Hashtbl.replace tn.announced_v6 (prefix, path_id) attrs;
      Session.send_update tn.pair.Bgp_wire.active (Msg.update ~attrs ()))
    targets

let withdraw_v6 t ?pops ?(path_id = 0) prefix =
  let targets =
    match pops with
    | None -> t.tunnels
    | Some names -> List.map (tunnel_exn t) names
  in
  List.iter
    (fun tn ->
      Hashtbl.remove tn.announced_v6 (prefix, path_id);
      Session.send_update tn.pair.Bgp_wire.active
        (Msg.update ~attrs:[ Attr.Mp_unreach [ (prefix, Some path_id) ] ] ()))
    targets

let withdraw t ?pops ?(path_id = 0) prefix =
  let targets =
    match pops with
    | None -> t.tunnels
    | Some names -> List.map (tunnel_exn t) names
  in
  List.iter
    (fun tn ->
      Hashtbl.remove tn.announced (prefix, path_id);
      Session.send_update tn.pair.Bgp_wire.active
        (Msg.update ~withdrawn:[ Msg.nlri ~path_id prefix ] ()))
    targets

(* -- route visibility --------------------------------------------------------- *)

(* All routes received at [pop] (every neighbor's path, via ADD-PATH). *)
let routes t ~pop =
  let tn = tunnel_exn t pop in
  Rib.Table.to_list tn.rib

(* Candidate routes toward [dst] at [pop], best first. *)
let routes_for t ~pop dst =
  let tn = tunnel_exn t pop in
  Rib.Table.lookup_all tn.rib dst

let route_count t ~pop =
  let tn = tunnel_exn t pop in
  Rib.Table.route_count tn.rib

(* -- data plane ---------------------------------------------------------------- *)

(* Send [packet] out of [pop] via the route whose next hop is
   [via] (a neighbor's virtual IP): ARP for the next hop, then frame the
   packet to the resolved MAC — exactly the paper's §3.2.2 sequence. *)
let send_packet_via t ~pop ~via packet =
  let tn = tunnel_exn t pop in
  Vbgp.Arp_client.send_ip tn.arp ~next_hop:via packet

(* Send choosing the best route (shortest AS path) for the destination. *)
let send_packet t ~pop ?(ttl = 64) ?(protocol = Ipv4_packet.Udp) ~dst payload =
  match routes_for t ~pop dst with
  | [] -> Error "no route to destination"
  | best :: _ -> (
      match Rib.Route.next_hop best with
      | None -> Error "best route has no next hop"
      | Some via ->
          let packet =
            Ipv4_packet.make ~ttl ~src:t.src_ip ~dst ~protocol payload
          in
          send_packet_via t ~pop ~via packet;
          Ok via)

(* ICMP echo toward [dst]; replies land in [echo_replies]. *)
let ping t ~pop ?via ?(seq = 1) dst =
  let payload = Icmp.encode (Icmp.Echo_request { id = 1; seq; payload = "peering" }) in
  let packet =
    Ipv4_packet.make ~src:t.src_ip ~dst ~protocol:Ipv4_packet.Icmp payload
  in
  match via with
  | Some via ->
      send_packet_via t ~pop ~via packet;
      Ok via
  | None -> (
      match routes_for t ~pop dst with
      | [] -> Error "no route to destination"
      | best :: _ -> (
          match Rib.Route.next_hop best with
          | None -> Error "best route has no next hop"
          | Some via ->
              send_packet_via t ~pop ~via packet;
              Ok via))

(* -- Table 1: BIRD-style CLI ---------------------------------------------------- *)

let cli t command =
  let buf = Buffer.create 256 in
  let out fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  (match String.split_on_char ' ' (String.trim command) with
  | [ "show"; "protocols" ] ->
      out "Name       State        Info\n";
      List.iter
        (fun tn ->
          out "%-10s %-12s updates_in=%d\n" (Pop.name tn.tpop)
            (Fsm.state_to_string (Session.state tn.pair.Bgp_wire.active))
            (fst (Session.stats tn.pair.Bgp_wire.active)))
        t.tunnels
  | [ "show"; "route" ] ->
      List.iter
        (fun tn ->
          Rib.Table.iter_best
            (fun prefix r ->
              out "%s via %s [%s] %s\n" (Prefix.to_string prefix)
                (match Rib.Route.next_hop r with
                | Some nh -> Ipv4.to_string nh
                | None -> "?")
                (Pop.name tn.tpop)
                (Aspath.to_string (Rib.Route.as_path r)))
            tn.rib)
        t.tunnels
  | [ "show"; "route"; "all" ] ->
      List.iter
        (fun tn ->
          List.iter
            (fun (r : Rib.Route.t) ->
              out "%s via %s [%s] path-id=%s %s\n"
                (Prefix.to_string r.prefix)
                (match Rib.Route.next_hop r with
                | Some nh -> Ipv4.to_string nh
                | None -> "?")
                (Pop.name tn.tpop)
                (match r.path_id with Some i -> string_of_int i | None -> "-")
                (Aspath.to_string (Rib.Route.as_path r)))
            (Rib.Table.to_list tn.rib))
        t.tunnels
  | [ "show"; "route"; "for"; addr ] -> (
      match Ipv4.of_string addr with
      | None -> out "syntax error: bad address %s\n" addr
      | Some ip ->
          List.iter
            (fun tn ->
              List.iter
                (fun (r : Rib.Route.t) ->
                  out "%s via %s [%s] %s\n"
                    (Prefix.to_string r.prefix)
                    (match Rib.Route.next_hop r with
                    | Some nh -> Ipv4.to_string nh
                    | None -> "?")
                    (Pop.name tn.tpop)
                    (Aspath.to_string (Rib.Route.as_path r)))
                (Rib.Table.lookup_all tn.rib ip))
            t.tunnels)
  | [ "show"; "status" ] ->
      out "PEERING toolkit, experiment %s (as%s)\n"
        t.grant.Vbgp.Control_enforcer.name (Asn.to_string t.asn);
      out "tunnels: %d, routes: %d\n" (List.length t.tunnels)
        (List.fold_left
           (fun acc tn -> acc + Rib.Table.route_count tn.rib)
           0 t.tunnels)
  | _ -> out "syntax error: unknown command %S\n" command);
  Buffer.contents buf
