(** Per-PoP health monitoring with graceful degradation: a probe loop on
    the engine drives a [Healthy / Degraded / Failed] state machine per
    PoP from reachability, session establishment, and flap counters.

    The Failed transition is an actuator: every surviving PoP flushes the
    dead PoP from its mesh state ({!Vbgp.Router.flush_mesh_peer}),
    withdrawing its experiments' announcements from their neighbors so
    traffic re-homes onto the PoPs still carrying the prefix. Recovery
    needs none — the restarted mesh session resyncs. *)

type status = Healthy | Degraded | Failed

val status_to_string : status -> string

type policy = {
  probe_interval : float;
  fail_after : int;  (** consecutive down probes before Failed *)
  recover_after : int;  (** consecutive ok probes before Healthy *)
  flap_burst : int;
      (** session flaps within one probe interval that mark a PoP
          impaired *)
}

val default_policy : policy
(** 1 s probes; Failed after 3 consecutive misses; Healthy after 2
    consecutive clean probes; 3 flaps in an interval = impaired. *)

type t

val create : ?policy:policy -> Platform.t -> t

val start : t -> unit
(** Begin probing on the platform's engine. Idempotent. *)

val stop : t -> unit

val status : t -> pop:string -> status

val transitions : t -> (float * string * status) list
(** Chronological (time, PoP, new status) log — drills read failover
    detection and recovery times off this. *)
