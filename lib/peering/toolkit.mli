(** The experiment toolkit (paper §4.5, Table 1): the client-side software
    an experimenter runs. Tunnel management, BGP session control, prefix
    announcement and manipulation, a BIRD-style CLI, and a real data-plane
    stack with per-packet egress selection by virtual next hop. *)

open Netcore
open Bgp
open Sim

type received = {
  pop : string;
  src_mac : Mac.t;  (** the delivering neighbor's virtual MAC (§3.2.2) *)
  packet : Ipv4_packet.t;
  at : float;
}
(** An inbound packet as the experiment saw it. *)

type tunnel
(** The per-PoP attachment (VPN + LAN station + local RIB). *)

type t

val create : engine:Engine.t -> grant:Vbgp.Control_enforcer.grant -> t
(** The toolkit instance for one approved experiment. *)

val grant : t -> Vbgp.Control_enforcer.grant
val received : t -> received list
val echo_replies : t -> (Ipv4.t * int) list

val tunnel : t -> string -> tunnel option
val tunnels : t -> tunnel list

val tunnel_pair : t -> pop:string -> Bgp_wire.pair option
(** The VPN session pair under the tunnel at [pop] — the failover drills
    kill and restore it with the PoP it lands on. *)

(** {1 Table 1: tunnels and sessions} *)

val open_tunnel : t -> Pop.t -> tunnel
(** Provision the VPN + data-plane attachment at [pop] (once per PoP). *)

val start_session : t -> pop:string -> unit
(** Start (or restart) BGP over the tunnel. *)

val stop_session : t -> pop:string -> unit

val session_status : t -> (string * Fsm.state * bool) list
(** (PoP, FSM state, established) per tunnel. *)

val established : t -> pop:string -> bool

val refresh_routes : t -> pop:string -> unit
(** RFC 2918 route refresh: ask the PoP to resend the full table. *)

(** {1 Table 1: prefix management} *)

val announce :
  t ->
  ?pops:string list ->
  ?path_id:int ->
  ?prepend:int ->
  ?poison:Asn.t list ->
  ?communities:Community.t list ->
  ?announce_to:int list ->
  ?block:int list ->
  Prefix.t ->
  unit
(** Announce with optional AS-path prepending/poisoning, communities, and
    export control ([announce_to]/[block] take neighbor export ids).
    [path_id] distinguishes parallel variants of one prefix (§2.2.2). *)

val withdraw : t -> ?pops:string list -> ?path_id:int -> Prefix.t -> unit

val announce_v6 :
  t ->
  ?pops:string list ->
  ?path_id:int ->
  ?communities:Community.t list ->
  ?announce_to:int list ->
  ?block:int list ->
  Prefix_v6.t ->
  unit
(** Announce an IPv6 prefix via MP-BGP (RFC 4760). Control plane only: it
    propagates to neighbors at the connected PoPs with the same export
    control and capability enforcement as IPv4. *)

val withdraw_v6 : t -> ?pops:string list -> ?path_id:int -> Prefix_v6.t -> unit

(** {1 Route visibility} *)

val routes : t -> pop:string -> Rib.Route.t list
(** Every neighbor's path, via ADD-PATH. *)

val routes_for : t -> pop:string -> Ipv4.t -> Rib.Route.t list
(** Candidates toward an address, best first. *)

val route_count : t -> pop:string -> int

val cli : t -> string -> string
(** The BIRD-style CLI: [show protocols], [show route], [show route all],
    [show route for <ip>], [show status]. *)

(** {1 Data plane} *)

val send_packet_via : t -> pop:string -> via:Ipv4.t -> Ipv4_packet.t -> unit
(** Emit via the route whose next hop is [via] (a neighbor's virtual IP):
    ARP, then frame to the resolved MAC — the §3.2.2 sequence. *)

val send_packet :
  t ->
  pop:string ->
  ?ttl:int ->
  ?protocol:Ipv4_packet.protocol ->
  dst:Ipv4.t ->
  string ->
  (Ipv4.t, string) result
(** Send via the best route; returns the chosen next hop. *)

val ping :
  t -> pop:string -> ?via:Ipv4.t -> ?seq:int -> Ipv4.t -> (Ipv4.t, string) result
(** ICMP echo; replies land in {!echo_replies}. *)

val serve_udp : t -> port:int -> (Ipv4_packet.t -> Udp.t -> string option) -> unit
(** Host a UDP service reachable from the Internet (paper §2.1); replies
    route back through the delivering neighbor. *)
