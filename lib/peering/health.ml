(* Per-PoP health monitoring with graceful degradation (paper §5's
   monitoring/alerting, hardened into an actuator).

   A probe fires every [probe_interval] simulated seconds against every
   PoP and classifies it:

     down      the site doesn't answer (crashed) or every neighbor
               session is gone;
     impaired  some sessions are down, or the sessions flapped more than
               [flap_burst] times since the last probe;
     ok        alive with every session established and quiet.

   The per-PoP state machine is deliberately sticky in both directions:
   [fail_after] consecutive down probes before Healthy/Degraded -> Failed
   (one lost probe must not trigger a platform-wide withdrawal), and
   [recover_after] consecutive ok probes before anything -> Healthy (a
   site bouncing in and out of reachability stays Degraded).

   The Failed transition is the actuator: every surviving PoP flushes the
   dead PoP from its mesh state ({!Vbgp.Router.flush_mesh_peer}), which
   withdraws the dead site's remote experiment announcements from their
   neighbors — traffic re-homes onto the PoPs still carrying the prefix
   instead of waiting out the graceful-restart window. Recovery needs no
   actuator: the restarted mesh session resyncs and re-imports. *)

open Bgp
open Sim

type status = Healthy | Degraded | Failed

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Failed -> "failed"

type policy = {
  probe_interval : float;
  fail_after : int;  (** consecutive down probes before Failed *)
  recover_after : int;  (** consecutive ok probes before Healthy *)
  flap_burst : int;
      (** session flaps within one probe interval that mark a PoP
          impaired *)
}

let default_policy =
  { probe_interval = 1.0; fail_after = 3; recover_after = 2; flap_burst = 3 }

type pop_health = {
  hp_name : string;
  mutable hp_status : status;
  mutable down_streak : int;
  mutable ok_streak : int;
  mutable last_flaps : int;  (** flap-counter sum at the previous probe *)
}

type t = {
  platform : Platform.t;
  policy : policy;
  mutable monitors : pop_health list;
  mutable transitions : (float * string * status) list;  (** newest first *)
  mutable cancel : unit -> unit;
  mutable running : bool;
}

let create ?(policy = default_policy) platform =
  {
    platform;
    policy;
    monitors = [];
    transitions = [];
    cancel = ignore;
    running = false;
  }

let monitor_for t name =
  match
    List.find_opt (fun m -> String.equal m.hp_name name) t.monitors
  with
  | Some m -> m
  | None ->
      let m =
        {
          hp_name = name;
          hp_status = Healthy;
          down_streak = 0;
          ok_streak = 0;
          last_flaps = 0;
        }
      in
      t.monitors <- m :: t.monitors;
      m

let status t ~pop = (monitor_for t pop).hp_status
let transitions t = List.rev t.transitions

(* The actuator on Failed: survivors forget everything imported from the
   dead PoP, withdrawing its experiments' announcements from their
   neighbors so traffic re-homes onto the PoPs still announcing. *)
let withdraw_failed t name =
  List.iter
    (fun p ->
      if not (String.equal (Pop.name p) name) then
        Vbgp.Router.flush_mesh_peer (Pop.router p) ~pop:name)
    (Platform.pops t.platform)

let set_status t m status =
  if m.hp_status <> status then begin
    m.hp_status <- status;
    t.transitions <-
      (Engine.now (Platform.engine t.platform), m.hp_name, status)
      :: t.transitions;
    if status = Failed then withdraw_failed t m.hp_name
  end

type verdict = Down | Impaired | Ok

let probe_pop t m pop =
  let flaps =
    List.fold_left
      (fun acc h -> acc + Session.flap_count (Neighbor_host.session h))
      0 (Pop.neighbors pop)
  in
  let flap_delta = flaps - m.last_flaps in
  m.last_flaps <- flaps;
  let established, total =
    List.fold_left
      (fun (est, tot) h ->
        ((if Neighbor_host.is_established h then est + 1 else est), tot + 1))
      (0, 0) (Pop.neighbors pop)
  in
  let verdict =
    if (not (Pop.alive pop)) || (total > 0 && established = 0) then Down
    else if established < total || flap_delta >= t.policy.flap_burst then
      Impaired
    else Ok
  in
  match verdict with
  | Down ->
      m.ok_streak <- 0;
      m.down_streak <- m.down_streak + 1;
      if m.down_streak >= t.policy.fail_after then set_status t m Failed
      else if m.hp_status = Healthy then set_status t m Degraded
  | Impaired ->
      m.ok_streak <- 0;
      m.down_streak <- 0;
      if m.hp_status = Healthy then set_status t m Degraded
  | Ok ->
      m.down_streak <- 0;
      m.ok_streak <- m.ok_streak + 1;
      if m.hp_status <> Healthy && m.ok_streak >= t.policy.recover_after then
        set_status t m Healthy

let rec tick t () =
  if t.running then begin
    List.iter
      (fun pop -> probe_pop t (monitor_for t (Pop.name pop)) pop)
      (Platform.pops t.platform);
    t.cancel <-
      Engine.schedule (Platform.engine t.platform) t.policy.probe_interval
        (tick t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    (* Baseline the flap counters so pre-existing churn is not billed to
       the first interval. *)
    List.iter
      (fun pop ->
        let m = monitor_for t (Pop.name pop) in
        m.last_flaps <-
          List.fold_left
            (fun acc h -> acc + Session.flap_count (Neighbor_host.session h))
            0 (Pop.neighbors pop))
      (Platform.pops t.platform);
    t.cancel <-
      Engine.schedule (Platform.engine t.platform) t.policy.probe_interval
        (tick t)
  end

let stop t =
  t.running <- false;
  t.cancel ();
  t.cancel <- ignore
