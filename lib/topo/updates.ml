(* BGP churn workload generation. Figure 6b and the AMS-IX operational
   numbers (§6) are driven by sustained streams of announce/withdraw events;
   this module synthesizes such streams with Poisson inter-arrivals and
   occasional bursts (path exploration after a failure looks like a burst of
   updates for many prefixes at once). *)

open Netcore
open Bgp

type kind = Announce | Withdraw

type event = {
  time : float;
  peer_index : int;  (** which neighbor emits the update *)
  prefix : Prefix.t;
  kind : kind;
  as_path : Aspath.t;
}

type params = {
  rate : float;  (** average updates per second *)
  duration : float;  (** seconds of workload *)
  burst_fraction : float;  (** fraction of events arriving in bursts *)
  burst_size : int;
  withdraw_fraction : float;
  peers : int;
  seed : int;
}

let default_params =
  {
    rate = 100.;
    duration = 10.;
    burst_fraction = 0.2;
    burst_size = 50;
    withdraw_fraction = 0.2;
    peers = 4;
    seed = 11;
  }

(* Exponential inter-arrival sample. *)
let exponential rng rate = -.log (1. -. Random.State.float rng 1.) /. rate

(* Generate a churn trace over [prefixes]; each event re-announces a prefix
   with a jittered AS path (new path exploration) or withdraws it. *)
let generate ?(params = default_params) ~prefixes ~origin_asn () =
  if prefixes = [] then invalid_arg "Updates.generate: no prefixes";
  let prefixes = Array.of_list prefixes in
  let rng = Random.State.make [| params.seed |] in
  let events = ref [] in
  let count = ref 0 in
  let emit time =
    let prefix = prefixes.(Random.State.int rng (Array.length prefixes)) in
    let peer_index = Random.State.int rng (max 1 params.peers) in
    let kind =
      if Random.State.float rng 1.0 < params.withdraw_fraction then Withdraw
      else Announce
    in
    let as_path =
      (* 2-5 hops ending at the origin, with random intermediate ASes. *)
      let hops = 1 + Random.State.int rng 4 in
      let intermediates =
        List.init hops (fun _ -> Asn.of_int (1000 + Random.State.int rng 9000))
      in
      Aspath.of_asns (intermediates @ [ origin_asn ])
    in
    events := { time; peer_index; prefix; kind; as_path } :: !events;
    incr count
  in
  let time = ref 0. in
  while !time < params.duration do
    if Random.State.float rng 1.0 < params.burst_fraction then begin
      (* A burst: [burst_size] events at (nearly) the same instant. *)
      for i = 0 to params.burst_size - 1 do
        emit (!time +. (float_of_int i *. 1e-6))
      done;
      (* Spacing so the long-run average still matches [rate]. *)
      time := !time +. exponential rng (params.rate /. float_of_int params.burst_size)
    end
    else begin
      emit !time;
      time := !time +. exponential rng params.rate
    end
  done;
  List.rev !events

(* -- staged streaming churn (full-table scale) ----------------------------- *)

(* The [generate] trace above materializes an event list — fine at Figure-6b
   scale, hopeless at 500k+ routes. The staged generator below streams
   events through a callback instead, so the fullscale bench never holds
   the workload in memory, and it shapes churn the way operators see it:
   announce ramps (table transfer), withdraw storms (path hunting after a
   failure), and whole-peer flaps (session resets). *)

type stage =
  | Announce_wave of { count : int; rate : float }
      (** announce [count] fresh prefixes, spread across peers,
          rate-limited to [rate] events/second *)
  | Withdraw_storm of { fraction : float; rate : float }
      (** withdraw a random [fraction] of everything currently announced *)
  | Peer_flap of { peers : int; rate : float }
      (** [peers] random peers withdraw their whole table, then
          re-announce it *)
  | Pause of float  (** quiet seconds between waves *)

type plan = {
  stages : stage list;
  peer_count : int;
  path_pool : int;
      (** distinct AS paths drawn from; real tables share attribute sets
          heavily, which is what the arena's hash-consing exploits *)
  prefix_of : int -> Prefix.t;  (** the i-th fresh prefix *)
  origin_asn : Asn.t;
  plan_seed : int;
}

(* The i-th /24 inside 16.0.0.0/4 — 2^20 distinct slots. *)
let default_prefix_of i =
  Prefix.make
    (Ipv4.of_int32 (Int32.logor 0x10000000l (Int32.of_int (i lsl 8))))
    24

let default_plan =
  {
    stages =
      [
        Announce_wave { count = 10_000; rate = 50_000. };
        Withdraw_storm { fraction = 0.1; rate = 25_000. };
        Peer_flap { peers = 2; rate = 50_000. };
        Pause 1.0;
      ];
    peer_count = 16;
    path_pool = 512;
    prefix_of = default_prefix_of;
    origin_asn = Asn.of_int 65000;
    plan_seed = 17;
  }

type stats = {
  events : int;
  announce_events : int;
  withdraw_events : int;
  end_time : float;
}

(* Per-peer announced set as a growable array with swap-remove, so storms
   can pick uniform random victims in O(1). *)
type peer_live = { mutable slots : Prefix.t array; mutable used : int }

let live_push p prefix =
  if p.used = Array.length p.slots then begin
    let slots = Array.make (max 16 (2 * Array.length p.slots)) prefix in
    Array.blit p.slots 0 slots 0 p.used;
    p.slots <- slots
  end;
  p.slots.(p.used) <- prefix;
  p.used <- p.used + 1

let live_swap_remove p i =
  let v = p.slots.(i) in
  p.used <- p.used - 1;
  p.slots.(i) <- p.slots.(p.used);
  v

let run ?(plan = default_plan) ~emit () =
  let rng = Random.State.make [| plan.plan_seed |] in
  let paths =
    Array.init (max 1 plan.path_pool) (fun _ ->
        let hops = 1 + Random.State.int rng 4 in
        let intermediates =
          List.init hops (fun _ -> Asn.of_int (1000 + Random.State.int rng 9000))
        in
        Aspath.of_asns (intermediates @ [ plan.origin_asn ]))
  in
  let live =
    Array.init (max 1 plan.peer_count) (fun _ -> { slots = [||]; used = 0 })
  in
  let time = ref 0. and next_prefix = ref 0 in
  let total = ref 0 and announced = ref 0 and withdrawn = ref 0 in
  let tick rate = time := !time +. (1. /. Float.max 1e-9 rate) in
  let announce rate peer_index prefix =
    tick rate;
    incr total;
    incr announced;
    emit
      {
        time = !time;
        peer_index;
        prefix;
        kind = Announce;
        as_path = paths.(Random.State.int rng (Array.length paths));
      }
  in
  let withdraw rate peer_index prefix =
    tick rate;
    incr total;
    incr withdrawn;
    emit
      { time = !time; peer_index; prefix; kind = Withdraw; as_path = Aspath.empty }
  in
  List.iter
    (function
      | Pause s -> time := !time +. s
      | Announce_wave { count; rate } ->
          for _ = 1 to count do
            let pi = Random.State.int rng (Array.length live) in
            let prefix = plan.prefix_of !next_prefix in
            incr next_prefix;
            live_push live.(pi) prefix;
            announce rate pi prefix
          done
      | Withdraw_storm { fraction; rate } ->
          let pool = Array.fold_left (fun acc p -> acc + p.used) 0 live in
          let n = int_of_float (fraction *. float_of_int pool) in
          for _ = 1 to n do
            let pool = Array.fold_left (fun acc p -> acc + p.used) 0 live in
            if pool > 0 then begin
              (* uniform victim across peers, weighted by table size *)
              let k = ref (Random.State.int rng pool) and pi = ref 0 in
              while !k >= live.(!pi).used do
                k := !k - live.(!pi).used;
                incr pi
              done;
              withdraw rate !pi (live_swap_remove live.(!pi) !k)
            end
          done
      | Peer_flap { peers; rate } ->
          for _ = 1 to max 0 peers do
            let pi = Random.State.int rng (Array.length live) in
            let p = live.(pi) in
            for i = 0 to p.used - 1 do
              withdraw rate pi p.slots.(i)
            done;
            for i = 0 to p.used - 1 do
              announce rate pi p.slots.(i)
            done
          done)
    plan.stages;
  {
    events = !total;
    announce_events = !announced;
    withdraw_events = !withdrawn;
    end_time = !time;
  }

(* Convert a workload event into the UPDATE message a neighbor would send. *)
let to_update ~next_hop (e : event) : Msg.update =
  match e.kind with
  | Withdraw ->
      Msg.update ~withdrawn:[ Msg.nlri e.prefix ] ()
  | Announce ->
      Msg.update
        ~attrs:(Bgp.Attr.origin_attrs ~as_path:e.as_path ~next_hop ())
        ~announced:[ Msg.nlri e.prefix ] ()

(* Observed rate statistics of a trace: (average, p99) updates/second over
   one-second windows — the form §6 reports for AMS-IX. *)
let rate_stats events =
  match events with
  | [] -> (0., 0.)
  | _ ->
      let duration =
        List.fold_left (fun acc e -> Float.max acc e.time) 0. events +. 1.
      in
      let buckets = Array.make (int_of_float duration + 1) 0 in
      List.iter
        (fun e ->
          let i = int_of_float e.time in
          if i >= 0 && i < Array.length buckets then
            buckets.(i) <- buckets.(i) + 1)
        events;
      let total = List.length events in
      let avg = float_of_int total /. duration in
      let sorted = Array.copy buckets in
      Array.sort Int.compare sorted;
      let p99 = sorted.(min (Array.length sorted - 1)
                         (int_of_float (0.99 *. float_of_int (Array.length sorted))))
      in
      (avg, float_of_int p99)
