(** Valley-free route propagation over an AS graph: for an origin (or an
    origin announcing to chosen neighbors), every AS's best
    Gao-Rexford-compliant path.

    The workload generator for the whole testbed: it produces the routing
    tables PEERING's simulated neighbors announce to vBGP PoPs, and ground
    truth for propagation questions — §4.2 customer-cone reach, §7.1 hidden
    routes, Appendix A filter debugging. *)

open Netcore
open Bgp

type route = {
  cls : Policy.route_class;
  hops : int;
  parent : Asn.t option;  (** next AS toward the origin; [None] at it *)
}

type propagation
(** The per-origin result. *)

val origin : propagation -> Asn.t
(** The AS whose announcement this result propagated. *)

val has_route : propagation -> Asn.t -> bool
val route : propagation -> Asn.t -> route option

val path : propagation -> Asn.t -> Asn.t list option
(** The AS path [asn] uses toward the origin: [[asn; ...; origin]]. *)

val reached : propagation -> Asn.t list
val reach_count : propagation -> int

(** Which of the origin's neighbors hear the announcement. *)
type announce_scope = All_neighbors | Only of Asn.t list

val propagate :
  ?scope:announce_scope ->
  ?blocked:Asn.t list ->
  ?filters:(Asn.t * Asn.t) list ->
  As_graph.t ->
  origin:Asn.t ->
  propagation
(** Compute best valley-free routes at every AS. [blocked] ASes reject the
    route entirely (AS-path poisoning: their loop detection fires);
    [filters] are directed edges [(from, to)] across which the route is
    silently dropped — the misconfigured remote filters of Appendix A. *)

type t
(** A simulated Internet: topology plus originated prefixes, with
    propagation shared per origin. *)

val create : As_graph.t -> origins:(Prefix.t * Asn.t) list -> t
val graph : t -> As_graph.t
val origins : t -> (Prefix.t * Asn.t) list

val routes_at : t -> Asn.t -> (Prefix.t * Aspath.t) list
(** The routes AS [asn] holds — what a PEERING neighbor announces to a
    PoP. *)

val assign_prefixes :
  ?plen:int -> base:Prefix.t -> Asn.t list -> (Prefix.t * Asn.t) list
(** One prefix per AS, carved out of [base]. *)
