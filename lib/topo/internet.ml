(* Valley-free route propagation over an AS graph: for an origin AS (or an
   origin announcing to a chosen subset of its neighbors), compute every
   AS's best Gao-Rexford-compliant path.

   This is the workload generator for the whole testbed: it produces the
   routing tables PEERING's simulated neighbors announce to vBGP PoPs, and
   the ground truth for reachability/propagation questions ("which ASes hear
   an announcement made only to peer X?" — the paper's §4.2 customer-cone
   reach, and §7.1 hidden-routes experiments). *)

open Netcore
open Bgp

type route = {
  cls : Policy.route_class;
  hops : int;
  parent : Asn.t option;  (** next AS toward the origin; None at the origin *)
}

(* Per-origin propagation result. *)
type propagation = {
  origin : Asn.t;
  routes : (Asn.t, route) Hashtbl.t;
}

let origin p = p.origin
let has_route p asn = Hashtbl.mem p.routes asn
let route p asn = Hashtbl.find_opt p.routes asn

(* The AS path [asn] uses to reach the origin: [asn; ...; origin]. *)
let rec path p asn =
  match route p asn with
  | None -> None
  | Some { parent = None; _ } -> Some [ asn ]
  | Some { parent = Some up; _ } -> (
      match path p up with Some rest -> Some (asn :: rest) | None -> None)

let reached p = Hashtbl.fold (fun asn _ acc -> asn :: acc) p.routes []
let reach_count p = Hashtbl.length p.routes

(* Which neighbors an announcement is initially sent to. *)
type announce_scope =
  | All_neighbors
  | Only of Asn.t list

(* [propagate graph ~origin] computes best valley-free routes at every AS.

   [scope] restricts which of the origin's neighbors hear the announcement
   (vBGP community-based export control); [blocked] ASes discard the route
   and do not propagate it (AS-path poisoning: their loop detection fires);
   [filters] are directed edges (from, to) across which the route is
   dropped — misconfigured or stale route filters in other networks, the
   debugging headache of the paper's Appendix A. *)
let propagate ?(scope = All_neighbors) ?(blocked = []) ?(filters = []) graph
    ~origin =
  let blocked = Hashtbl.create 8 |> fun h ->
    List.iter (fun a -> Hashtbl.replace h a ()) blocked;
    h
  in
  let is_blocked asn = Hashtbl.mem blocked asn in
  let is_filtered ~from ~to_ =
    List.exists (fun (a, b) -> Asn.equal a from && Asn.equal b to_) filters
  in
  let in_scope asn =
    match scope with
    | All_neighbors -> true
    | Only l -> List.exists (Asn.equal asn) l
  in
  let routes : (Asn.t, route) Hashtbl.t = Hashtbl.create 256 in
  let better (cls, hops) existing =
    match existing with
    | None -> true
    | Some e -> Policy.prefer (cls, hops) (e.cls, e.hops) < 0
  in
  let offer ~from asn cls hops parent =
    if
      (not (is_blocked asn))
      && (not (is_filtered ~from ~to_:asn))
      && better (cls, hops) (Hashtbl.find_opt routes asn)
    then begin
      Hashtbl.replace routes asn { cls; hops; parent };
      true
    end
    else false
  in
  if not (is_blocked origin) then begin
    Hashtbl.replace routes origin
      { cls = Policy.From_customer; hops = 0; parent = None };
    (* Phase 1: customer routes climb provider chains. Seed with the
       origin's providers that are in scope, then BFS upward. *)
    let queue = Queue.create () in
    List.iter
      (fun p ->
        if in_scope p && offer ~from:origin p Policy.From_customer 1 (Some origin)
        then Queue.add p queue)
      (As_graph.providers graph origin);
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      match Hashtbl.find_opt routes x with
      | Some { cls = Policy.From_customer; hops; _ } ->
          List.iter
            (fun p ->
              if offer ~from:x p Policy.From_customer (hops + 1) (Some x) then
                Queue.add p queue)
            (As_graph.providers graph x)
      | _ -> ()
    done;
    (* Phase 2: peers hear customer routes (and the origin's own
       announcement) across a single lateral edge. *)
    let peer_offers = ref [] in
    List.iter
      (fun y ->
        if in_scope y then
          peer_offers := (y, 1, origin) :: !peer_offers)
      (As_graph.peers graph origin);
    Hashtbl.iter
      (fun x r ->
        if r.cls = Policy.From_customer && not (Asn.equal x origin) then
          List.iter
            (fun y -> peer_offers := (y, r.hops + 1, x) :: !peer_offers)
            (As_graph.peers graph x))
      routes;
    List.iter
      (fun (y, hops, from) ->
        ignore (offer ~from y Policy.From_peer hops (Some from)))
      !peer_offers;
    (* Phase 3: everything flows down to customers (Dijkstra by hops, since
       sources start at different depths). *)
    let module Pq = Set.Make (struct
      type t = int * Asn.t

      let compare (h1, a1) (h2, a2) =
        match Int.compare h1 h2 with 0 -> Asn.compare a1 a2 | c -> c
    end) in
    let pq = ref Pq.empty in
    let seed asn r = pq := Pq.add (r.hops, asn) !pq in
    Hashtbl.iter seed routes;
    (* The origin's customers hear the announcement directly. *)
    List.iter
      (fun c ->
        if in_scope c && offer ~from:origin c Policy.From_provider 1 (Some origin)
        then pq := Pq.add (1, c) !pq)
      (As_graph.customers graph origin);
    while not (Pq.is_empty !pq) do
      let ((hops, x) as elt) = Pq.min_elt !pq in
      pq := Pq.remove elt !pq;
      match Hashtbl.find_opt routes x with
      | Some r when r.hops = hops ->
          (* Export downward regardless of class (customers get all). *)
          List.iter
            (fun c ->
              if offer ~from:x c Policy.From_provider (hops + 1) (Some x) then
                pq := Pq.add (hops + 1, c) !pq)
            (As_graph.customers graph x)
      | _ -> ()
    done
  end;
  { origin; routes }

(* -- Internet-scale state -------------------------------------------------- *)

(* A simulated Internet: a topology plus originated prefixes, with
   propagation computed per origin and shared across that origin's
   prefixes. *)
type t = {
  graph : As_graph.t;
  origins : (Prefix.t * Asn.t) list;
  by_origin : (Asn.t, propagation) Hashtbl.t;
}

let create graph ~origins =
  let by_origin = Hashtbl.create 64 in
  List.iter
    (fun (_, origin) ->
      if not (Hashtbl.mem by_origin origin) then
        Hashtbl.replace by_origin origin (propagate graph ~origin))
    origins;
  { graph; origins; by_origin }

let graph t = t.graph
let origins t = t.origins

(* The routes AS [asn] holds: one per prefix it can reach, with the full AS
   path. This is what a PEERING neighbor announces to a PoP. *)
let routes_at t asn =
  List.filter_map
    (fun (prefix, origin) ->
      match Hashtbl.find_opt t.by_origin origin with
      | None -> None
      | Some p -> (
          match path p asn with
          | Some aspath -> Some (prefix, Aspath.of_asns aspath)
          | None -> None))
    t.origins

(* Allocate one prefix per stub AS out of [base], for workload generation. *)
let assign_prefixes ?(plen = 24) ~base asns =
  let subnets = Prefix.subnets base plen in
  let rec zip acc asns subnets =
    match (asns, subnets) with
    | [], _ -> List.rev acc
    | _, [] -> invalid_arg "Internet.assign_prefixes: base prefix too small"
    | a :: asns, s :: subnets -> zip ((s, a) :: acc) asns subnets
  in
  zip [] asns subnets
