(** BGP churn workload generation. Figure 6b and the AMS-IX operational
    numbers (§6) are driven by sustained announce/withdraw streams; this
    module synthesizes them with Poisson inter-arrivals and
    path-exploration-style bursts. *)

open Netcore
open Bgp

type kind = Announce | Withdraw

type event = {
  time : float;
  peer_index : int;  (** which neighbor emits the update *)
  prefix : Prefix.t;
  kind : kind;
  as_path : Aspath.t;
}

type params = {
  rate : float;  (** average updates per second *)
  duration : float;  (** seconds of workload *)
  burst_fraction : float;  (** fraction of events arriving in bursts *)
  burst_size : int;
  withdraw_fraction : float;
  peers : int;
  seed : int;
}

val default_params : params

val generate :
  ?params:params -> prefixes:Prefix.t list -> origin_asn:Asn.t -> unit -> event list
(** A time-ordered trace, deterministic per seed. *)

(** {1 Staged streaming churn}

    Full-table-scale workloads: events stream through a callback instead
    of materializing a list, shaped as the waves operators see — announce
    ramps (table transfer), withdraw storms (path hunting), whole-peer
    flaps (session resets). Deterministic per [plan_seed]. *)

type stage =
  | Announce_wave of { count : int; rate : float }
      (** announce [count] fresh prefixes, spread across peers,
          rate-limited to [rate] events/second *)
  | Withdraw_storm of { fraction : float; rate : float }
      (** withdraw a random [fraction] of everything currently announced *)
  | Peer_flap of { peers : int; rate : float }
      (** [peers] random peers withdraw their whole table, then
          re-announce it *)
  | Pause of float  (** quiet seconds between waves *)

type plan = {
  stages : stage list;
  peer_count : int;
  path_pool : int;
      (** distinct AS paths drawn from (real tables share attribute sets
          heavily) *)
  prefix_of : int -> Prefix.t;  (** the i-th fresh prefix *)
  origin_asn : Asn.t;
  plan_seed : int;
}

val default_prefix_of : int -> Prefix.t
(** The i-th /24 inside 16.0.0.0/4 (2^20 distinct slots). *)

val default_plan : plan

type stats = {
  events : int;
  announce_events : int;
  withdraw_events : int;
  end_time : float;  (** virtual seconds the rate-limited stream spans *)
}

val run : ?plan:plan -> emit:(event -> unit) -> unit -> stats
(** Stream the plan's events through [emit] in time order. Identical
    seeds produce identical streams. *)

val to_update : next_hop:Ipv4.t -> event -> Msg.update
(** The UPDATE message a neighbor would send for this event. *)

val rate_stats : event list -> float * float
(** [(average, p99)] updates/second over one-second windows — the form §6
    reports for AMS-IX. *)
