(* Forwarding tables. vBGP keeps one FIB per BGP neighbor — the key design
   point of the data-plane delegation (paper §3.2.2): the destination MAC of
   an incoming frame selects the neighbor's table, and the lookup then
   proceeds exactly as in a conventional router.

   Figure 6a measures the memory cost of this design, so these structures
   expose an accurate [memory_bytes].

   Lookups go through a generation-stamped destination cache (Dcache):
   repeated flows to one destination skip the trie entirely, and every
   mutation — [insert], a binding-removing [remove], [clear] — bumps the
   generation so no stale result is ever served. *)

open Netcore

type entry = {
  next_hop : Ipv4.t;
  neighbor : int;  (** opaque neighbor/interface identifier *)
}

type t = {
  mutable trie : entry Ptrie.V4.t;
  mutable count : int;
  cache : entry Dcache.t;
}

let create () =
  { trie = Ptrie.V4.empty; count = 0; cache = Dcache.create () }

let entry_count t = t.count

let insert t prefix entry =
  let trie, was_bound = Ptrie.V4.add' prefix entry t.trie in
  if not was_bound then t.count <- t.count + 1;
  t.trie <- trie;
  Dcache.invalidate t.cache

let remove t prefix =
  (* [Ptrie.remove] returns a physically equal trie on a no-op, so one
     walk both removes and tells us whether anything changed. *)
  let trie = Ptrie.V4.remove prefix t.trie in
  if trie != t.trie then begin
    t.count <- t.count - 1;
    t.trie <- trie;
    Dcache.invalidate t.cache
  end

let lookup t addr =
  match Dcache.find t.cache addr with
  | Some cached -> cached
  | None ->
      let result =
        match Ptrie.lookup_v4 addr t.trie with
        | Some (_, e) -> Some e
        | None -> None
      in
      Dcache.store t.cache addr result;
      result

(* The destination cache's generation doubles as the table's mutation
   stamp: every insert/remove/clear bumps it, so external caches (the
   data plane's flow cache) can stamp entries with it and self-invalidate
   on the next lookup instead of being flushed explicitly. *)
let generation t = Dcache.generation t.cache

(* The trie value itself is an immutable persistent structure; mutation
   replaces [t.trie] wholesale. Handing the current root out therefore
   yields a consistent point-in-time snapshot that is safe to read from
   other domains — the sharded data plane captures it per control-plane
   generation and pairs it with [generation] for staleness detection. *)
let trie t = t.trie

let find t prefix = Ptrie.V4.find prefix t.trie

let fold f t acc = Ptrie.V4.fold f t.trie acc

let clear t =
  t.trie <- Ptrie.V4.empty;
  t.count <- 0;
  Dcache.invalidate t.cache

(* Heap footprint in bytes (word-accurate via the runtime). *)
let memory_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)

(* The set of per-neighbor tables of one vBGP router. Table 0 is reserved
   for the router's own (default) table when it also routes production
   traffic — the "w/ default" configuration of Figure 6a. *)
module Set = struct
  type fib = t

  let create_fib = create

  type t = { tables : (int, fib) Hashtbl.t }

  let create () = { tables = Hashtbl.create 16 }

  let table t id =
    match Hashtbl.find_opt t.tables id with
    | Some fib -> fib
    | None ->
        let fib = create_fib () in
        Hashtbl.replace t.tables id fib;
        fib

  let find t id = Hashtbl.find_opt t.tables id
  let remove_table t id = Hashtbl.remove t.tables id
  let table_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.tables []
  let table_count t = Hashtbl.length t.tables

  let total_entries t =
    Hashtbl.fold (fun _ fib acc -> acc + entry_count fib) t.tables 0

  let memory_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)
end
