(* A routing table: prefix -> candidate routes, with the per-prefix best
   maintained incrementally. Used as Adj-RIB-In (one per peer), Loc-RIB
   (candidates from everywhere), and — with at most one candidate — as
   Adj-RIB-Out. *)

open Netcore

type entry = { candidates : Route.t list; best : Route.t option }

(* Stored representation. A per-peer Adj-RIB-In holds one candidate for
   nearly every prefix, so the common case skips the entry record, the
   cons cell and the option — at full-table scale that is ~6 words per
   route. [Many] keeps the memoized best for multi-candidate prefixes;
   its record is inlined into the variant so that case costs the same as
   the plain entry record did. *)
type node =
  | One of Route.t
  | Many of { candidates : Route.t list; best : Route.t option }

let view = function
  | One r -> { candidates = [ r ]; best = Some r }
  | Many { candidates; best } -> { candidates; best }

let node_candidates = function One r -> [ r ] | Many m -> m.candidates
let node_best = function One r -> Some r | Many m -> m.best

(* [Decision.best] of a non-empty list is always one of its elements, so a
   singleton's best is that route and [One] loses nothing. *)
let make_node candidates best =
  match candidates with [ r ] -> One r | _ -> Many { candidates; best }

type change =
  | Best_changed of Prefix.t * Route.t option
      (** The best route for the prefix changed (None = now unreachable). *)
  | Unchanged

type t = {
  mutable trie : node Ptrie.V4.t;
  mutable route_count : int;
  decision : Decision.config;
}

let create ?(decision = Decision.default_config) () =
  { trie = Ptrie.V4.empty; route_count = 0; decision }

let route_count t = t.route_count
let prefix_count t = Ptrie.V4.cardinal t.trie

let entry t prefix = Option.map view (Ptrie.V4.find prefix t.trie)

let candidates t prefix =
  match Ptrie.V4.find prefix t.trie with
  | Some n -> node_candidates n
  | None -> []

let best t prefix =
  match Ptrie.V4.find prefix t.trie with Some n -> node_best n | None -> None

let best_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      Route.same_key a b && Route.same_attrs a b
  | _ -> false

(* Insert or replace (implicit withdraw) a route. One trie walk fetches
   both the candidate list and the previous best. *)
let update t (route : Route.t) =
  let prefix = route.prefix in
  let old_node = Ptrie.V4.find prefix t.trie in
  let old = match old_node with Some n -> node_candidates n | None -> [] in
  let previous_best =
    match old_node with Some n -> node_best n | None -> None
  in
  let kept = List.filter (fun r -> not (Route.same_key r route)) old in
  let candidates = route :: kept in
  let best = Decision.best ~config:t.decision candidates in
  t.trie <- Ptrie.V4.add prefix (make_node candidates best) t.trie;
  t.route_count <- t.route_count + List.length candidates - List.length old;
  if best_equal previous_best best then Unchanged
  else Best_changed (prefix, best)

(* Withdraw the route identified by (peer, path_id). *)
let withdraw t ~prefix ~peer_ip ~path_id =
  match Ptrie.V4.find prefix t.trie with
  | None -> Unchanged
  | Some n ->
      let old = node_candidates n in
      let kept =
        List.filter (fun r -> not (Route.key_matches ~peer_ip ~path_id r)) old
      in
      if List.length kept = List.length old then Unchanged
      else begin
        let previous_best = node_best n in
        t.route_count <- t.route_count - (List.length old - List.length kept);
        let best = Decision.best ~config:t.decision kept in
        (if kept = [] then t.trie <- Ptrie.V4.remove prefix t.trie
         else t.trie <- Ptrie.V4.add prefix (make_node kept best) t.trie);
        if best_equal previous_best best then Unchanged
        else Best_changed (prefix, best)
      end

(* Drop every route learned from [peer_ip] (session teardown); returns the
   changes produced. *)
let drop_peer t ~peer_ip =
  let changes = ref [] in
  let prefixes =
    Ptrie.V4.fold
      (fun p n acc ->
        if
          List.exists
            (fun r -> Ipv4.equal r.Route.source.peer_ip peer_ip)
            (node_candidates n)
        then p :: acc
        else acc)
      t.trie []
  in
  List.iter
    (fun prefix ->
      match Ptrie.V4.find prefix t.trie with
      | None -> ()
      | Some n ->
          let old = node_candidates n in
          let kept =
            List.filter
              (fun r -> not (Ipv4.equal r.Route.source.peer_ip peer_ip))
              old
          in
          let previous_best = node_best n in
          t.route_count <-
            t.route_count - (List.length old - List.length kept);
          let best = Decision.best ~config:t.decision kept in
          (if kept = [] then t.trie <- Ptrie.V4.remove prefix t.trie
           else t.trie <- Ptrie.V4.add prefix (make_node kept best) t.trie);
          if not (best_equal previous_best best) then
            changes := Best_changed (prefix, best) :: !changes)
    prefixes;
  List.rev !changes

(* Longest-prefix match over best routes. *)
let lookup t addr =
  match Ptrie.lookup_v4 addr t.trie with
  | Some (_, One r) -> Some r
  | Some (_, Many { best; _ }) -> best
  | None -> None

(* All candidate routes matching [addr], best-first (control-plane query). *)
let lookup_all t addr =
  Ptrie.V4.matches (Prefix.make addr 32) t.trie
  |> List.concat_map (fun (_, n) ->
         Decision.rank ~config:t.decision (node_candidates n))

let fold f t acc = Ptrie.V4.fold (fun p n acc -> f p (view n) acc) t.trie acc

let iter_best f t =
  Ptrie.V4.iter
    (fun prefix n ->
      match node_best n with Some r -> f prefix r | None -> ())
    t.trie

let iter_routes f t =
  Ptrie.V4.iter (fun _ n -> List.iter f (node_candidates n)) t.trie

let to_list t =
  List.rev (fold (fun _ e acc -> List.rev_append e.candidates acc) t [])
