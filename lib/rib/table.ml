(* A routing table: prefix -> candidate routes, with the per-prefix best
   maintained incrementally. Used as Adj-RIB-In (one per peer), Loc-RIB
   (candidates from everywhere), and — with at most one candidate — as
   Adj-RIB-Out. *)

open Netcore

type entry = { candidates : Route.t list; best : Route.t option }

type change =
  | Best_changed of Prefix.t * Route.t option
      (** The best route for the prefix changed (None = now unreachable). *)
  | Unchanged

type t = {
  mutable trie : entry Ptrie.V4.t;
  mutable route_count : int;
  decision : Decision.config;
}

let create ?(decision = Decision.default_config) () =
  { trie = Ptrie.V4.empty; route_count = 0; decision }

let route_count t = t.route_count
let prefix_count t = Ptrie.V4.cardinal t.trie

let entry t prefix = Ptrie.V4.find prefix t.trie

let candidates t prefix =
  match entry t prefix with Some e -> e.candidates | None -> []

let best t prefix =
  match entry t prefix with Some e -> e.best | None -> None

let best_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      Route.same_key a b && Route.same_attrs a b
  | _ -> false

(* Insert or replace (implicit withdraw) a route. One trie walk fetches
   both the candidate list and the previous best. *)
let update t (route : Route.t) =
  let prefix = route.prefix in
  let old_entry = Ptrie.V4.find prefix t.trie in
  let old = match old_entry with Some e -> e.candidates | None -> [] in
  let previous_best = match old_entry with Some e -> e.best | None -> None in
  let kept = List.filter (fun r -> not (Route.same_key r route)) old in
  let candidates = route :: kept in
  let best = Decision.best ~config:t.decision candidates in
  t.trie <- Ptrie.V4.add prefix { candidates; best } t.trie;
  t.route_count <- t.route_count + List.length candidates - List.length old;
  if best_equal previous_best best then Unchanged
  else Best_changed (prefix, best)

(* Withdraw the route identified by (peer, path_id). *)
let withdraw t ~prefix ~peer_ip ~path_id =
  match Ptrie.V4.find prefix t.trie with
  | None -> Unchanged
  | Some e ->
      let old = e.candidates in
      let kept =
        List.filter (fun r -> not (Route.key_matches ~peer_ip ~path_id r)) old
      in
      if List.length kept = List.length old then Unchanged
      else begin
        let previous_best = e.best in
        t.route_count <- t.route_count - (List.length old - List.length kept);
        let best = Decision.best ~config:t.decision kept in
        (if kept = [] then t.trie <- Ptrie.V4.remove prefix t.trie
         else t.trie <- Ptrie.V4.add prefix { candidates = kept; best } t.trie);
        if best_equal previous_best best then Unchanged
        else Best_changed (prefix, best)
      end

(* Drop every route learned from [peer_ip] (session teardown); returns the
   changes produced. *)
let drop_peer t ~peer_ip =
  let changes = ref [] in
  let prefixes =
    Ptrie.V4.fold
      (fun p e acc ->
        if
          List.exists
            (fun r -> Ipv4.equal r.Route.source.peer_ip peer_ip)
            e.candidates
        then p :: acc
        else acc)
      t.trie []
  in
  List.iter
    (fun prefix ->
      match Ptrie.V4.find prefix t.trie with
      | None -> ()
      | Some e ->
          let old = e.candidates in
          let kept =
            List.filter
              (fun r -> not (Ipv4.equal r.Route.source.peer_ip peer_ip))
              old
          in
          let previous_best = e.best in
          t.route_count <-
            t.route_count - (List.length old - List.length kept);
          let best = Decision.best ~config:t.decision kept in
          (if kept = [] then t.trie <- Ptrie.V4.remove prefix t.trie
           else
             t.trie <- Ptrie.V4.add prefix { candidates = kept; best } t.trie);
          if not (best_equal previous_best best) then
            changes := Best_changed (prefix, best) :: !changes)
    prefixes;
  List.rev !changes

(* Longest-prefix match over best routes. *)
let lookup t addr =
  match Ptrie.lookup_v4 addr t.trie with
  | Some (_, { best = Some r; _ }) -> Some r
  | _ -> None

(* All candidate routes matching [addr], best-first (control-plane query). *)
let lookup_all t addr =
  Ptrie.V4.matches (Prefix.make addr 32) t.trie
  |> List.concat_map (fun (_, e) -> Decision.rank ~config:t.decision e.candidates)

let fold f t acc = Ptrie.V4.fold f t.trie acc

let iter_best f t =
  Ptrie.V4.iter
    (fun prefix e -> match e.best with Some r -> f prefix r | None -> ())
    t.trie

let iter_routes f t =
  Ptrie.V4.iter (fun _ e -> List.iter f e.candidates) t.trie

let to_list t =
  List.rev (fold (fun _ e acc -> List.rev_append e.candidates acc) t [])
