(** Forwarding tables. vBGP keeps one FIB per BGP neighbor — the key
    design point of the data-plane delegation (paper §3.2.2): the
    destination MAC of an incoming frame selects the neighbor's table, and
    the lookup proceeds exactly as in a conventional router. Figure 6a
    measures the memory cost of this choice, so the structures expose an
    accurate byte count. *)

open Netcore

type entry = {
  next_hop : Ipv4.t;
  neighbor : int;  (** opaque neighbor/interface identifier *)
}

type t

val create : unit -> t
val entry_count : t -> int

val insert : t -> Prefix.t -> entry -> unit
(** Replaces any entry for the same prefix. *)

val remove : t -> Prefix.t -> unit

val lookup : t -> Ipv4.t -> entry option
(** Longest-prefix match, through a generation-stamped destination cache:
    repeated lookups of one address skip the trie, and any [insert],
    [remove], or [clear] invalidates the cache before the next lookup. *)

val generation : t -> int
(** The table's mutation stamp (the destination cache's generation):
    bumped by every [insert], binding-removing [remove], and [clear].
    External caches stamp derived entries with it and treat a mismatch
    as invalidation. *)

val trie : t -> entry Ptrie.V4.t
(** The current trie root. The trie is persistent (mutation replaces the
    root), so the returned value is an immutable point-in-time snapshot,
    safe to walk from any domain; pair it with {!generation} to detect
    staleness. *)

val find : t -> Prefix.t -> entry option
val fold : (Prefix.t -> entry -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val clear : t -> unit

val memory_bytes : t -> int
(** Heap footprint, word-accurate via the runtime (Figure 6a). *)

(** The per-neighbor table set of one vBGP router. *)
module Set : sig
  type fib = t
  type t

  val create : unit -> t

  val table : t -> int -> fib
  (** The table for neighbor [id], created on first use. *)

  val find : t -> int -> fib option
  val remove_table : t -> int -> unit
  val table_ids : t -> int list
  val table_count : t -> int
  val total_entries : t -> int
  val memory_bytes : t -> int
end
