(** A route: a prefix plus path attributes, tagged with the peer it came
    from. The (peer, path id) pair is the route's identity within a table —
    the granularity ADD-PATH preserves on the wire.

    Attributes are stored as an interned {!Bgp.Attr_arena.handle}: routes
    carrying equal attribute sets share one canonical copy platform-wide,
    and attribute comparison ({!same_attrs}) is O(1). *)

open Netcore
open Bgp

type source = {
  peer_ip : Ipv4.t;
  peer_asn : Asn.t;
  peer_id : Ipv4.t;  (** the peer's BGP identifier (decision tiebreak) *)
  ebgp : bool;
}

val source :
  ?ebgp:bool -> ?peer_id:Ipv4.t -> peer_ip:Ipv4.t -> peer_asn:Asn.t -> unit -> source
(** [peer_id] defaults to [peer_ip]; [ebgp] to [true]. *)

val local_source : asn:Asn.t -> id:Ipv4.t -> source
(** A locally-originated route (e.g. an experiment prefix). *)

type t = {
  prefix : Prefix.t;
  path_id : int option;
  attrs_h : Attr_arena.handle;
  source : source;
  learned_at : float;
}

val make :
  ?path_id:int option ->
  ?learned_at:float ->
  prefix:Prefix.t ->
  attrs:Attr.set ->
  source:source ->
  unit ->
  t
(** Interns [attrs] into the global arena. *)

val make_h :
  ?path_id:int option ->
  ?learned_at:float ->
  prefix:Prefix.t ->
  attrs_h:Attr_arena.handle ->
  source:source ->
  unit ->
  t
(** Like {!make} for callers that already hold an interned handle
    (hot paths skip the re-intern). *)

val attrs : t -> Attr.set
(** The canonical (type-code sorted) attribute set. *)

val attrs_handle : t -> Attr_arena.handle

val same_attrs : t -> t -> bool
(** O(1): physical equality of interned handles. *)

val with_attrs : t -> Attr.set -> t
(** Functional update; re-interns. *)

val same_key : t -> t -> bool
(** Same (peer, path id): the newer route replaces the older (implicit
    withdraw, RFC 4271 §3.2). *)

val key_matches : peer_ip:Ipv4.t -> path_id:int option -> t -> bool

(** {1 Attribute shortcuts with protocol defaults} *)

val as_path : t -> Aspath.t
val next_hop : t -> Ipv4.t option

val local_pref : t -> int
(** Defaults to 100 when absent. *)

val med : t -> int
(** Defaults to 0 when absent. *)

val origin : t -> Attr.origin
(** Defaults to [Incomplete] when absent. *)

val communities : t -> Community.t list

val neighbor_asn : t -> Asn.t
(** The AS the route points into: first AS of the path, else the peer. *)

val origin_asn : t -> Asn.t option

val pp : Format.formatter -> t -> unit
