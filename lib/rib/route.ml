(* A route: a prefix plus path attributes, tagged with the peer it was
   learned from. The (peer, path_id) pair is the route's identity within a
   table — exactly the granularity ADD-PATH preserves on the wire.

   Attributes are held as an interned arena handle: every route carrying
   the same attribute set shares one canonical copy, and attribute
   comparison is O(1) physical equality on handles. *)

open Netcore
open Bgp

type source = {
  peer_ip : Ipv4.t;
  peer_asn : Asn.t;
  peer_id : Ipv4.t;  (** peer's BGP identifier, decision-process tiebreak *)
  ebgp : bool;
}

let source ?(ebgp = true) ?peer_id ~peer_ip ~peer_asn () =
  {
    peer_ip;
    peer_asn;
    peer_id = (match peer_id with Some id -> id | None -> peer_ip);
    ebgp;
  }

(* A locally-originated route (e.g. an experiment prefix). *)
let local_source ~asn ~id =
  { peer_ip = id; peer_asn = asn; peer_id = id; ebgp = false }

type t = {
  prefix : Prefix.t;
  path_id : int option;
  attrs_h : Attr_arena.handle;
  source : source;
  learned_at : float;
}

let make ?(path_id = None) ?(learned_at = 0.) ~prefix ~attrs ~source () =
  { prefix; path_id; attrs_h = Attr_arena.intern attrs; source; learned_at }

let make_h ?(path_id = None) ?(learned_at = 0.) ~prefix ~attrs_h ~source () =
  { prefix; path_id; attrs_h; source; learned_at }

let attrs r = Attr_arena.set r.attrs_h
let attrs_handle r = r.attrs_h
let same_attrs a b = Attr_arena.equal a.attrs_h b.attrs_h
let with_attrs r attrs = { r with attrs_h = Attr_arena.intern attrs }

(* Identity of a route within a table: same peer and same path id replace
   each other (implicit withdraw, RFC 4271 §3.2). *)
let same_key a b =
  Ipv4.equal a.source.peer_ip b.source.peer_ip && a.path_id = b.path_id

let key_matches ~peer_ip ~path_id r =
  Ipv4.equal r.source.peer_ip peer_ip && r.path_id = path_id

let as_path r =
  match Attr.as_path (attrs r) with Some p -> p | None -> Aspath.empty

let next_hop r = Attr.next_hop (attrs r)

let local_pref r =
  match Attr.local_pref (attrs r) with Some l -> l | None -> 100

let med r = match Attr.med (attrs r) with Some m -> m | None -> 0

let origin r =
  match Attr.origin (attrs r) with Some o -> o | None -> Attr.Incomplete

let communities r = Attr.communities (attrs r)

(* The AS the route points into: first AS of the path, else the peer. *)
let neighbor_asn r =
  match Aspath.first (as_path r) with
  | Some a -> a
  | None -> r.source.peer_asn

let origin_asn r = Aspath.origin (as_path r)

let pp ppf r =
  Fmt.pf ppf "%a%s via %a (%a)" Prefix.pp r.prefix
    (match r.path_id with None -> "" | Some id -> Printf.sprintf "[%d]" id)
    Fmt.(option ~none:(any "?") Ipv4.pp)
    (next_hop r) Aspath.pp (as_path r)
