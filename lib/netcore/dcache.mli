(** A direct-mapped destination cache for longest-prefix-match results.

    Sits in front of a {!Ptrie} (a FIB or the owner trie) so repeated
    flows to the same destination address skip the trie walk. Stale
    entries are never served: the owning structure bumps the generation
    counter with {!invalidate} on every mutation, which invalidates all
    slots in O(1). *)

type 'a t

val create : ?slots:int -> unit -> 'a t
(** [slots] (default 256) is rounded up to a power of two. *)

val find : 'a t -> Ipv4.t -> 'a option option
(** [Some result] when the cache holds a current-generation entry for the
    address — [result] is the cached lookup outcome, possibly [None]
    (negative results are cached). [None] means miss: consult the trie and
    {!store} the outcome. *)

val store : 'a t -> Ipv4.t -> 'a option -> unit
(** Record a lookup outcome under the current generation. *)

val invalidate : 'a t -> unit
(** Bump the generation, making every cached entry stale. Call on any
    mutation of the backing structure. *)

val generation : 'a t -> int
(** The current generation (exposed for tests and diagnostics). *)
