(** Path-compressed (Patricia) bit-prefix tries with longest-prefix match.

    Backs every routing and forwarding table in the repository: per-neighbor
    FIBs (vBGP's data-plane delegation, paper §3.2.2), RIBs, and the
    experiment-ownership map the enforcement engines consult. Each node
    stores the bit-index where its subtree diverges, so lookups touch
    O(distinct branch points) heap nodes instead of one per prefix bit.
    Functorized over the key, with IPv4 and IPv6 instances provided. *)

module type KEY = sig
  type t

  val length : t -> int
  (** Number of significant bits. *)

  val bit : t -> int -> bool
  (** [bit k i] is bit [i] (0 = most significant); requires
      [i < length k]. *)

  val equal : t -> t -> bool

  val diverge : t -> t -> int -> int -> int
  (** [diverge a b lo hi] is the smallest [i] in [lo, hi) where bit [i] of
      [a] and [b] differ, or [hi] when they agree on the whole range.
      Requires [hi <= min (length a) (length b)]. Implementations should
      compare words, not bits — this is the hot comparison of every trie
      walk. *)
end

module Make (K : KEY) : sig
  type 'a t
  (** An immutable trie mapping keys to ['a]. *)

  val empty : 'a t
  val is_empty : 'a t -> bool

  val add : K.t -> 'a -> 'a t -> 'a t
  (** Insert or replace the binding for the key. *)

  val add' : K.t -> 'a -> 'a t -> 'a t * bool
  (** Like {!add}, also reporting whether the key was already bound — a
      single walk where [mem] followed by [add] would take two. *)

  val remove : K.t -> 'a t -> 'a t
  (** Remove the binding; dead branches are collapsed. Returns a
      physically equal trie when the key is unbound, so callers can detect
      a no-op without a separate [mem] walk. *)

  val find : K.t -> 'a t -> 'a option
  (** Exact-key lookup. *)

  val mem : K.t -> 'a t -> bool

  val longest_match : K.t -> 'a t -> (K.t * 'a) option
  (** The binding of the longest stored key that is a prefix of the
      argument. *)

  val matches : K.t -> 'a t -> (K.t * 'a) list
  (** All bindings whose key is a prefix of the argument, shortest first. *)

  val fold : (K.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val iter : (K.t -> 'a -> unit) -> 'a t -> unit
  val cardinal : 'a t -> int
  val to_list : 'a t -> (K.t * 'a) list

  val of_list : (K.t * 'a) list -> 'a t
  (** Later bindings replace earlier ones for equal keys. *)

  val map : (K.t -> 'a -> 'b) -> 'a t -> 'b t
  val filter : (K.t -> 'a -> bool) -> 'a t -> 'a t
end

module V4 : sig
  type 'a t

  val empty : 'a t
  val is_empty : 'a t -> bool
  val add : Prefix.t -> 'a -> 'a t -> 'a t
  val add' : Prefix.t -> 'a -> 'a t -> 'a t * bool
  val remove : Prefix.t -> 'a t -> 'a t
  val find : Prefix.t -> 'a t -> 'a option
  val mem : Prefix.t -> 'a t -> bool
  val longest_match : Prefix.t -> 'a t -> (Prefix.t * 'a) option
  val matches : Prefix.t -> 'a t -> (Prefix.t * 'a) list
  val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
  val cardinal : 'a t -> int
  val to_list : 'a t -> (Prefix.t * 'a) list
  val of_list : (Prefix.t * 'a) list -> 'a t
  val map : (Prefix.t -> 'a -> 'b) -> 'a t -> 'b t
  val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t
end
(** IPv4 routing tables. *)

module V6 : sig
  type 'a t

  val empty : 'a t
  val is_empty : 'a t -> bool
  val add : Prefix_v6.t -> 'a -> 'a t -> 'a t
  val add' : Prefix_v6.t -> 'a -> 'a t -> 'a t * bool
  val remove : Prefix_v6.t -> 'a t -> 'a t
  val find : Prefix_v6.t -> 'a t -> 'a option
  val mem : Prefix_v6.t -> 'a t -> bool
  val longest_match : Prefix_v6.t -> 'a t -> (Prefix_v6.t * 'a) option
  val matches : Prefix_v6.t -> 'a t -> (Prefix_v6.t * 'a) list
  val fold : (Prefix_v6.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val iter : (Prefix_v6.t -> 'a -> unit) -> 'a t -> unit
  val cardinal : 'a t -> int
  val to_list : 'a t -> (Prefix_v6.t * 'a) list
  val of_list : (Prefix_v6.t * 'a) list -> 'a t
  val map : (Prefix_v6.t -> 'a -> 'b) -> 'a t -> 'b t
  val filter : (Prefix_v6.t -> 'a -> bool) -> 'a t -> 'a t
end
(** IPv6 routing tables. *)

val lookup_v4 : Ipv4.t -> 'a V4.t -> (Prefix.t * 'a) option
(** Longest-prefix match of a host address (the data-plane operation). *)

val lookup_v6 : Ipv6.t -> 'a V6.t -> (Prefix_v6.t * 'a) option
