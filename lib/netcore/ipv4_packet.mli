(** IPv4 packets (RFC 791; no options, no fragmentation).

    Header checksums are computed on encode and verified on decode so
    corruption in the simulated network is detectable. *)

type protocol = Icmp | Tcp | Udp | Other of int

val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  protocol : protocol;
  ident : int;
  dscp : int;
  payload : string;
}

val header_size : int

val make :
  ?ttl:int ->
  ?ident:int ->
  ?dscp:int ->
  src:Ipv4.t ->
  dst:Ipv4.t ->
  protocol:protocol ->
  string ->
  t
(** [make ~src ~dst ~protocol payload] with TTL defaulting to 64. *)

val decrement_ttl : t -> t
(** A copy with TTL decremented; forwarding engines re-encode it. *)

val encode : t -> string

val decode : string -> (t, string) result
(** Verifies version, IHL, total length, and the header checksum. *)

val pp : Format.formatter -> t -> unit

type packet = t
(** Alias for the record, for use under {!View} where [t] is shadowed. *)

(** Zero-copy packet views: the wire buffer itself, read by field offset.

    The data-plane fast path uses views to avoid materializing a record
    per packet or re-encoding on delivery; the record stays the slow-path
    currency (filters, ICMP generation, tests). A view validated by
    {!View.of_string}/{!View.of_bytes} satisfies exactly {!decode}'s
    checks (version, IHL 5, total length, header checksum). Unlike the
    record round trip, a view preserves the ECN bits and any trailing
    bytes the buffer carries beyond the total length. *)
module View : sig
  type t

  val of_string : string -> (t, string) result
  (** Copies the string into a private mutable buffer and validates it
      (one copy — the only one on the fast path). *)

  val of_bytes : Bytes.t -> (t, string) result
  (** Zero-copy adoption of [b]; the caller must not mutate it behind
      the view's back. *)

  val src : t -> Ipv4.t
  val dst : t -> Ipv4.t
  val ttl : t -> int
  val protocol : t -> protocol
  val ident : t -> int
  val dscp : t -> int

  val total_length : t -> int
  (** Header plus payload bytes, as carried on the wire. *)

  val payload_length : t -> int

  val decrement_ttl : t -> unit
  (** In-place TTL decrement with an RFC 1624 incremental checksum
      update. Raises [Invalid_argument] when the TTL is already 0. *)

  val to_wire : t -> string
  (** The wire form, without re-encoding. Ownership contract: the view
      must not be mutated after [to_wire] (the buffer may be shared with
      the returned string). *)

  val to_packet : t -> packet
  val of_packet : packet -> t
  val pp : Format.formatter -> t -> unit
end
