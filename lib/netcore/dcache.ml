(* A small direct-mapped cache in front of a longest-prefix-match
   structure, keyed by destination host address. Repeated flows to the
   same destination skip the trie walk entirely.

   Coherence is by generation stamp: every slot records the generation it
   was filled under, and [invalidate] bumps the cache's generation, making
   all slots stale in O(1). The owner of the backing trie must call
   [invalidate] on every mutation (insert, remove, clear); lookups then
   never observe pre-mutation results. *)

type 'a slot = {
  mutable gen : int;
  mutable addr : Ipv4.t;
  mutable value : 'a option;  (** negative results are cached too *)
}

type 'a t = { slots : 'a slot array; mask : int; mutable generation : int }

let default_slots = 256

let create ?(slots = default_slots) () =
  let n =
    let rec up p = if p >= slots || p >= 1 lsl 20 then p else up (p * 2) in
    up 1
  in
  {
    (* Array.init, not Array.make: each slot must be a distinct record. *)
    slots = Array.init n (fun _ -> { gen = 0; addr = Ipv4.any; value = None });
    mask = n - 1;
    (* Slots start at generation 0, the cache at 1: everything stale. *)
    generation = 1;
  }

let generation t = t.generation
let invalidate t = t.generation <- t.generation + 1

(* [Some result] on a hit ([result] itself is the cached lookup outcome,
   possibly [None]); [None] on a miss. *)
let find t addr =
  let s = t.slots.(Ipv4.hash addr land t.mask) in
  if s.gen = t.generation && Ipv4.equal s.addr addr then Some s.value
  else None

let store t addr value =
  let s = t.slots.(Ipv4.hash addr land t.mask) in
  s.gen <- t.generation;
  s.addr <- addr;
  s.value <- value
