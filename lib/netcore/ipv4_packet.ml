(* IPv4 packets (RFC 791), without options or fragmentation — the testbed
   never fragments. Header checksums are computed on encode and verified on
   decode so that corruption in the simulated network is detectable. *)

type protocol = Icmp | Tcp | Udp | Other of int

let protocol_to_int = function
  | Icmp -> 1
  | Tcp -> 6
  | Udp -> 17
  | Other v -> v

let protocol_of_int = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | v -> Other v

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  protocol : protocol;
  ident : int;
  dscp : int;
  payload : string;
}

let header_size = 20

let make ?(ttl = 64) ?(ident = 0) ?(dscp = 0) ~src ~dst ~protocol payload =
  { src; dst; ttl; protocol; ident; dscp; payload }

(* A copy with the TTL decremented; forwarding engines must re-encode. *)
let decrement_ttl t = { t with ttl = t.ttl - 1 }

let encode t =
  let total = header_size + String.length t.payload in
  let w = Wire.Writer.create ~capacity:total () in
  Wire.Writer.u8 w 0x45 (* version 4, IHL 5 *);
  Wire.Writer.u8 w (t.dscp lsl 2);
  Wire.Writer.u16 w total;
  Wire.Writer.u16 w t.ident;
  Wire.Writer.u16 w 0 (* flags/fragment *);
  Wire.Writer.u8 w t.ttl;
  Wire.Writer.u8 w (protocol_to_int t.protocol);
  let cksum_off = Wire.Writer.reserve w 2 in
  Wire.Writer.u32 w (Ipv4.to_int32 t.src);
  Wire.Writer.u32 w (Ipv4.to_int32 t.dst);
  let header = Wire.Writer.contents w in
  Wire.Writer.patch_u16 w cksum_off (Checksum.of_string header);
  Wire.Writer.string w t.payload;
  Wire.Writer.contents w

let decode data =
  try
    let r = Wire.Reader.of_string data in
    let vihl = Wire.Reader.u8 r in
    if vihl lsr 4 <> 4 then Error "ipv4: bad version"
    else if vihl land 0xf <> 5 then Error "ipv4: options unsupported"
    else begin
      let dscp_ecn = Wire.Reader.u8 r in
      let total = Wire.Reader.u16 r in
      let ident = Wire.Reader.u16 r in
      let _flags = Wire.Reader.u16 r in
      let ttl = Wire.Reader.u8 r in
      let protocol = protocol_of_int (Wire.Reader.u8 r) in
      let _cksum = Wire.Reader.u16 r in
      let src = Ipv4.of_int32 (Wire.Reader.u32 r) in
      let dst = Ipv4.of_int32 (Wire.Reader.u32 r) in
      if total < header_size || total > String.length data then
        Error "ipv4: bad total length"
      else if not (Checksum.verify (String.sub data 0 header_size)) then
        Error "ipv4: bad header checksum"
      else
        let payload = String.sub data header_size (total - header_size) in
        Ok
          {
            src;
            dst;
            ttl;
            protocol;
            ident;
            dscp = dscp_ecn lsr 2;
            payload;
          }
    end
  with Wire.Truncated what -> Error (Printf.sprintf "ipv4: truncated %s" what)

let pp ppf t =
  Fmt.pf ppf "ip %a -> %a ttl=%d proto=%d len=%d" Ipv4.pp t.src Ipv4.pp t.dst
    t.ttl
    (protocol_to_int t.protocol)
    (String.length t.payload)

type packet = t

(* Zero-copy packet views: the wire buffer itself, read (and minimally
   mutated) by field offset, so the data-plane fast path never
   materializes a record or re-encodes on delivery. The record above
   remains the slow-path currency (filters, ICMP generation, tests).

   Wire layout (RFC 791, IHL fixed at 5): 0 version/IHL, 1 DSCP/ECN,
   2-3 total length, 4-5 ident, 6-7 flags/fragment, 8 TTL, 9 protocol,
   10-11 header checksum, 12-15 source, 16-19 destination. *)
module View = struct
  type t = Bytes.t

  let validate b =
    if Bytes.length b < header_size then Error "ipv4: truncated header"
    else
      let vihl = Bytes.get_uint8 b 0 in
      if vihl lsr 4 <> 4 then Error "ipv4: bad version"
      else if vihl land 0xf <> 5 then Error "ipv4: options unsupported"
      else
        let total = Bytes.get_uint16_be b 2 in
        if total < header_size || total > Bytes.length b then
          Error "ipv4: bad total length"
        else if not (Checksum.verify_bytes b ~pos:0 ~len:header_size) then
          Error "ipv4: bad header checksum"
        else Ok b

  let of_bytes = validate
  let of_string s = validate (Bytes.of_string s)
  let src b = Ipv4.of_int32 (Bytes.get_int32_be b 12)
  let dst b = Ipv4.of_int32 (Bytes.get_int32_be b 16)
  let ttl b = Bytes.get_uint8 b 8
  let protocol b = protocol_of_int (Bytes.get_uint8 b 9)
  let ident b = Bytes.get_uint16_be b 4
  let dscp b = Bytes.get_uint8 b 1 lsr 2
  let total_length b = Bytes.get_uint16_be b 2
  let payload_length b = total_length b - header_size

  (* In-place TTL decrement. The TTL shares the 16-bit word at offset 8
     with the protocol byte; that word drops by exactly [1 lsl 8], and
     the checksum at offset 10 is patched incrementally (RFC 1624)
     instead of resummed over the whole header. *)
  let decrement_ttl b =
    let old_ttl = Bytes.get_uint8 b 8 in
    if old_ttl = 0 then invalid_arg "Ipv4_packet.View.decrement_ttl: ttl 0";
    let proto = Bytes.get_uint8 b 9 in
    let old_word = (old_ttl lsl 8) lor proto in
    let new_word = (old_ttl - 1) lsl 8 lor proto in
    Bytes.set_uint8 b 8 (old_ttl - 1);
    Bytes.set_uint16_be b 10
      (Checksum.incremental_fix
         ~cksum:(Bytes.get_uint16_be b 10)
         ~old_word ~new_word)

  (* The wire form without re-encoding. [Bytes.unsafe_to_string] is safe
     under the stated ownership contract: after [to_wire] the view must
     not be mutated again. *)
  let to_wire b =
    let total = total_length b in
    if total = Bytes.length b then Bytes.unsafe_to_string b
    else Bytes.sub_string b 0 total

  let to_packet b =
    {
      src = src b;
      dst = dst b;
      ttl = ttl b;
      protocol = protocol b;
      ident = ident b;
      dscp = dscp b;
      payload = Bytes.sub_string b header_size (payload_length b);
    }

  (* [encode] returns a fresh unshared string, so claiming it is safe. *)
  let of_packet p = Bytes.unsafe_of_string (encode p)

  let pp ppf b =
    Fmt.pf ppf "ip %a -> %a ttl=%d proto=%d len=%d" Ipv4.pp (src b) Ipv4.pp
      (dst b) (ttl b)
      (Bytes.get_uint8 b 9)
      (payload_length b)
end
