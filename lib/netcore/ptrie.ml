(* A path-compressed (Patricia/radix) trie keyed by bit-prefixes, used for
   every routing and forwarding table in the repository (longest-prefix
   match is the data plane's core operation, and per-neighbor FIBs are what
   Figure 6a sizes).

   Each node records the bit-index [len] at which its subtree's keys stop
   agreeing, so a lookup touches O(distinct branch points) heap nodes
   instead of one node per prefix bit: a full-table IPv4 walk visits a
   handful of nodes rather than 32, and the chains of empty interior nodes
   that a one-node-per-bit trie allocates (and that Figure 6a's
   memory_bytes pays for) do not exist at all. The skipped span of each
   node is verified with one word-level [diverge] comparison instead of a
   per-bit loop.

   The structure is functorized over the key so the same code backs IPv4
   and IPv6 tables. *)

module type KEY = sig
  type t

  val length : t -> int
  (** Number of significant bits. *)

  val bit : t -> int -> bool
  (** [bit k i] is bit [i] (0 = most significant); [i < length k]. *)

  val equal : t -> t -> bool

  val diverge : t -> t -> int -> int -> int
  (** [diverge a b lo hi] is the smallest [i] in [lo, hi) where bit [i] of
      [a] and [b] differ, or [hi] when they agree on the whole range.
      Requires [hi <= min (length a) (length b)]; word-level, not
      per-bit. *)
end

(* Index of the most significant set bit of a 32-bit value, counted from
   the top: 0 names bit 31. Shared by both key instantiations. *)
let msb32 v =
  let v = ref v and r = ref 0 in
  if !v land 0xffff0000 <> 0 then begin
    r := !r + 16;
    v := !v lsr 16
  end;
  if !v land 0xff00 <> 0 then begin
    r := !r + 8;
    v := !v lsr 8
  end;
  if !v land 0xf0 <> 0 then begin
    r := !r + 4;
    v := !v lsr 4
  end;
  if !v land 0xc <> 0 then begin
    r := !r + 2;
    v := !v lsr 2
  end;
  if !v land 0x2 <> 0 then incr r;
  31 - !r

module Make (K : KEY) = struct
  (* A node sits at the bit-index where its subtree's keys stop agreeing.
     For [Leaf]/[Bind] that index is the bound key's own length (the key
     and its length double as the representative and span end); [Branch]
     carries them explicitly, with [rep] a shared pointer to any key
     stored below (never a fresh allocation). Invariants: a [Branch] has
     two non-empty children (it is a genuine branch point), a [Bind] at
     least one; all keys under a node agree with its representative on
     bits [0, len). The three layouts keep binding nodes free of option
     and tuple boxes — what Figure 6a's memory_bytes pays for. *)
  type 'a t =
    | Empty
    | Leaf of { key : K.t; value : 'a }
    | Bind of { key : K.t; value : 'a; zero : 'a t; one : 'a t }
    | Branch of { rep : K.t; len : int; zero : 'a t; one : 'a t }

  let empty = Empty
  let is_empty = function Empty -> true | Leaf _ | Bind _ | Branch _ -> false

  (* Smart constructor: picks the smallest layout and collapses
     binding-less nodes with fewer than two children, so removal and
     filtering restore full path compression. When [binding] is present,
     [len] is the bound key's length. *)
  let node rep len binding zero one =
    match (binding, zero, one) with
    | None, Empty, Empty -> Empty
    | None, c, Empty | None, Empty, c -> c
    | None, _, _ -> Branch { rep; len; zero; one }
    | Some (key, value), Empty, Empty -> Leaf { key; value }
    | Some (key, value), _, _ -> Bind { key; value; zero; one }

  let add' key value t =
    let klen = K.length key in
    let replaced = ref false in
    (* Bits [0, lo) of [key] are already known to match the subtree;
       [rep]/[len] are the representative and span end of node [t]. *)
    let rec descend lo t rep len =
      let stop = if klen < len then klen else len in
      let d = K.diverge key rep lo stop in
      if d < stop then
        (* The key diverges inside this node's compressed span: split
           into a branch point at the first differing bit. *)
        if K.bit key d then
          Branch { rep = key; len = d; zero = t; one = Leaf { key; value } }
        else Branch { rep = key; len = d; zero = Leaf { key; value }; one = t }
      else if klen < len then
        (* The key ends inside the span: bind it on a node above. *)
        if K.bit rep klen then Bind { key; value; zero = Empty; one = t }
        else Bind { key; value; zero = t; one = Empty }
      else if klen = len then (
        match t with
        | Leaf _ ->
            replaced := true;
            Leaf { key; value }
        | Bind { zero; one; _ } ->
            replaced := true;
            Bind { key; value; zero; one }
        | Branch { zero; one; _ } -> Bind { key; value; zero; one }
        | Empty -> assert false)
      else if K.bit key len then (
        match t with
        | Leaf { key = k; value = v } ->
            Bind { key = k; value = v; zero = Empty; one = go (len + 1) Empty }
        | Bind { key = k; value = v; zero; one } ->
            Bind { key = k; value = v; zero; one = go (len + 1) one }
        | Branch { rep; len; zero; one } ->
            Branch { rep; len; zero; one = go (len + 1) one }
        | Empty -> assert false)
      else
        match t with
        | Leaf { key = k; value = v } ->
            Bind { key = k; value = v; zero = go (len + 1) Empty; one = Empty }
        | Bind { key = k; value = v; zero; one } ->
            Bind { key = k; value = v; zero = go (len + 1) zero; one }
        | Branch { rep; len; zero; one } ->
            Branch { rep; len; zero = go (len + 1) zero; one }
        | Empty -> assert false
    and go lo t =
      match t with
      | Empty -> Leaf { key; value }
      | Leaf { key = k; _ } | Bind { key = k; _ } ->
          descend lo t k (K.length k)
      | Branch { rep; len; _ } -> descend lo t rep len
    in
    let t = go 0 t in
    (t, !replaced)

  let add key value t = fst (add' key value t)

  (* Physically equal result when the key is unbound, so callers can
     detect a no-op without a separate [mem] walk. *)
  let remove key t =
    let klen = K.length key in
    let rec go lo t =
      match t with
      | Empty -> t
      | Leaf { key = k; _ } ->
          let len = K.length k in
          if klen <> len then t
          else if K.diverge key k lo len < len then t
          else Empty
      | Bind { key = k; value = v; zero; one } ->
          let len = K.length k in
          if klen < len then t
          else if K.diverge key k lo len < len then t
          else if klen = len then node k len None zero one
          else if K.bit key len then
            let one' = go (len + 1) one in
            if one' == one then t
            else Bind { key = k; value = v; zero; one = one' }
          else
            let zero' = go (len + 1) zero in
            if zero' == zero then t
            else Bind { key = k; value = v; zero = zero'; one }
      | Branch { rep; len; zero; one } ->
          (* Bound keys below a branch point are strictly longer. *)
          if klen <= len then t
          else if K.diverge key rep lo len < len then t
          else if K.bit key len then
            let one' = go (len + 1) one in
            if one' == one then t else node rep len None zero one'
          else
            let zero' = go (len + 1) zero in
            if zero' == zero then t else node rep len None zero' one
    in
    go 0 t

  let find key t =
    let klen = K.length key in
    let rec go lo t =
      match t with
      | Empty -> None
      | Leaf { key = k; value } ->
          let len = K.length k in
          if klen = len && K.diverge key k lo len = len then Some value
          else None
      | Bind { key = k; value; zero; one } ->
          let len = K.length k in
          if klen < len then None
          else if K.diverge key k lo len < len then None
          else if klen = len then Some value
          else go (len + 1) (if K.bit key len then one else zero)
      | Branch { rep; len; zero; one } ->
          if klen <= len then None
          else if K.diverge key rep lo len < len then None
          else go (len + 1) (if K.bit key len then one else zero)
    in
    go 0 t

  let mem key t = match find key t with Some _ -> true | None -> false

  (* The binding of the longest stored key that is a prefix of [key]. *)
  let longest_match key t =
    let klen = K.length key in
    let rec go lo best t =
      match t with
      | Empty -> best
      | Leaf { key = k; value } ->
          let len = K.length k in
          if klen < len then best
          else if K.diverge key k lo len < len then best
          else Some (k, value)
      | Bind { key = k; value; zero; one } ->
          let len = K.length k in
          if klen < len then best
          else if K.diverge key k lo len < len then best
          else if klen = len then Some (k, value)
          else
            go (len + 1) (Some (k, value)) (if K.bit key len then one else zero)
      | Branch { rep; len; zero; one } ->
          if klen <= len then best
          else if K.diverge key rep lo len < len then best
          else go (len + 1) best (if K.bit key len then one else zero)
    in
    go 0 None t

  (* All stored bindings whose key is a prefix of [key], shortest first. *)
  let matches key t =
    let klen = K.length key in
    let rec go lo acc t =
      match t with
      | Empty -> List.rev acc
      | Leaf { key = k; value } ->
          let len = K.length k in
          if klen < len then List.rev acc
          else if K.diverge key k lo len < len then List.rev acc
          else List.rev ((k, value) :: acc)
      | Bind { key = k; value; zero; one } ->
          let len = K.length k in
          if klen < len then List.rev acc
          else if K.diverge key k lo len < len then List.rev acc
          else
            let acc = (k, value) :: acc in
            if klen = len then List.rev acc
            else go (len + 1) acc (if K.bit key len then one else zero)
      | Branch { rep; len; zero; one } ->
          if klen <= len then List.rev acc
          else if K.diverge key rep lo len < len then List.rev acc
          else go (len + 1) acc (if K.bit key len then one else zero)
    in
    go 0 [] t

  let rec fold f t acc =
    match t with
    | Empty -> acc
    | Leaf { key; value } -> f key value acc
    | Bind { key; value; zero; one } -> fold f one (fold f zero (f key value acc))
    | Branch { zero; one; _ } -> fold f one (fold f zero acc)

  let iter f t = fold (fun k v () -> f k v) t ()

  let cardinal t = fold (fun _ _ n -> n + 1) t 0

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let of_list bindings =
    List.fold_left (fun t (k, v) -> add k v t) empty bindings

  let rec map f t =
    match t with
    | Empty -> Empty
    | Leaf { key; value } -> Leaf { key; value = f key value }
    | Bind { key; value; zero; one } ->
        Bind { key; value = f key value; zero = map f zero; one = map f one }
    | Branch { rep; len; zero; one } ->
        Branch { rep; len; zero = map f zero; one = map f one }

  let rec filter f t =
    match t with
    | Empty -> Empty
    | Leaf { key; value } -> if f key value then t else Empty
    | Bind { key; value; zero; one } ->
        let binding = if f key value then Some (key, value) else None in
        node key (K.length key) binding (filter f zero) (filter f one)
    | Branch { rep; len; zero; one } ->
        node rep len None (filter f zero) (filter f one)
end

(* IPv4 routing tables. *)
module V4 = Make (struct
  type t = Prefix.t

  let length = Prefix.length
  let bit = Prefix.bit
  let equal = Prefix.equal

  (* High [len] bits of a 32-bit word. *)
  let mask len = (0xffffffff lsl (32 - len)) land 0xffffffff

  let diverge a b lo hi =
    if lo >= hi then hi
    else
      let x =
        Int32.to_int
          (Int32.logxor
             (Ipv4.to_int32 (Prefix.network a))
             (Ipv4.to_int32 (Prefix.network b)))
        land 0xffffffff
      in
      let x = x land mask hi land lnot (mask lo) in
      if x = 0 then hi else msb32 x
end)

(* IPv6 routing tables. *)
module V6 = Make (struct
  type t = Prefix_v6.t

  let length = Prefix_v6.length
  let bit = Prefix_v6.bit
  let equal = Prefix_v6.equal

  (* High [len] bits of a 64-bit half. *)
  let mask64 len =
    if len <= 0 then 0L
    else if len >= 64 then -1L
    else Int64.shift_left (-1L) (64 - len)

  let msb64 x =
    let hi32 = Int64.to_int (Int64.shift_right_logical x 32) land 0xffffffff in
    if hi32 <> 0 then msb32 hi32
    else 32 + msb32 (Int64.to_int x land 0xffffffff)

  let diverge a b lo hi =
    if lo >= hi then hi
    else begin
      let na = Prefix_v6.network a and nb = Prefix_v6.network b in
      let d = ref hi in
      (if lo < 64 then
         let h = min hi 64 in
         let x =
           Int64.logand
             (Int64.logxor na.Ipv6.hi nb.Ipv6.hi)
             (Int64.logand (mask64 h) (Int64.lognot (mask64 lo)))
         in
         if x <> 0L then d := msb64 x);
      (if !d = hi && hi > 64 then
         let l = max lo 64 - 64 and h = hi - 64 in
         let x =
           Int64.logand
             (Int64.logxor na.Ipv6.lo nb.Ipv6.lo)
             (Int64.logand (mask64 h) (Int64.lognot (mask64 l)))
         in
         if x <> 0L then d := 64 + msb64 x);
      !d
    end
end)

(* Longest-prefix match against a host address. *)
let lookup_v4 addr table = V4.longest_match (Prefix.make addr 32) table
let lookup_v6 addr table = V6.longest_match (Prefix_v6.make addr 128) table
