(** The Internet (ones-complement) checksum of RFC 1071, used by the IPv4
    header and ICMP codecs. *)

val sum_into : int -> string -> int
(** Accumulate the 16-bit ones-complement sum of [data] into a partial
    sum (for pseudo-header style computations). *)

val finish : int -> int
(** Fold carries and complement a partial sum into the final checksum. *)

val of_string : string -> int
(** Checksum of a whole string (checksum field zeroed by the caller). *)

val verify : string -> bool
(** Valid data, with its checksum field in place, sums to zero. *)

val sum_bytes_into : int -> Bytes.t -> pos:int -> len:int -> int
(** {!sum_into} over a [Bytes.t] slice (no copy). *)

val of_bytes : Bytes.t -> pos:int -> len:int -> int
val verify_bytes : Bytes.t -> pos:int -> len:int -> bool

val incremental_fix : cksum:int -> old_word:int -> new_word:int -> int
(** RFC 1624 incremental update: the checksum after one 16-bit word of
    the summed data changed from [old_word] to [new_word],
    [HC' = ~(~HC + ~m + m')]. *)
