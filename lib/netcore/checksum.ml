(* The Internet (ones-complement) checksum of RFC 1071, used by the IPv4
   header and ICMP codecs. *)

let sum_into acc data =
  let len = String.length data in
  let acc = ref acc in
  let i = ref 0 in
  while !i + 1 < len do
    acc := !acc + String.get_uint16_be data !i;
    i := !i + 2
  done;
  if len land 1 = 1 then acc := !acc + (Char.code data.[len - 1] lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

(* Checksum of a whole string. *)
let of_string data = finish (sum_into 0 data)

(* Valid data (with its checksum field in place) sums to zero. *)
let verify data = of_string data = 0

(* Same accumulation over a [Bytes.t] slice, so packet views can verify a
   header in place without copying it out to a string first. *)
let sum_bytes_into acc data ~pos ~len =
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    acc := !acc + Bytes.get_uint16_be data !i;
    i := !i + 2
  done;
  if len land 1 = 1 then
    acc := !acc + (Char.code (Bytes.get data (stop - 1)) lsl 8);
  !acc

let of_bytes data ~pos ~len = finish (sum_bytes_into 0 data ~pos ~len)
let verify_bytes data ~pos ~len = of_bytes data ~pos ~len = 0

(* RFC 1624 (eqn. 3): patch a checksum after one 16-bit word of the
   summed data changed, HC' = ~(~HC + ~m + m'). Used by the data plane's
   in-place TTL decrement, where recomputing the whole header sum per
   packet would defeat the zero-copy path. Two folds suffice: the sum of
   three 16-bit quantities carries at most twice. *)
let incremental_fix ~cksum ~old_word ~new_word =
  let s =
    (lnot cksum land 0xffff) + (lnot old_word land 0xffff)
    + (new_word land 0xffff)
  in
  let s = (s land 0xffff) + (s lsr 16) in
  let s = (s land 0xffff) + (s lsr 16) in
  lnot s land 0xffff
