(** The parallel Control_in ingest lane: N OCaml 5 worker domains, each
    owning the wire decode, attribute intern, and Adj-RIB-In maintenance
    for a fixed subset of neighbors, reconciled into the single-writer
    FIB/dirty-queue/export pipeline at the tick boundary.

    Protocol: {!dispatch} queues updates on the owning neighbor's home
    domain ({!domain_of_neighbor} — deterministic, so per-neighbor state
    is single-writer by construction); {!drain} captures a fresh
    {!target} per queued neighbor from live router state, wakes the
    persistent parked workers, and blocks until all are done (the
    done-handshake is the happens-before edge publishing every worker
    write); {!consume} replays the staged (neighbor, prefix, delta)
    records on the coordinator — FIB writes, dirty marks, counter folds —
    in per-neighbor processing order. The control plane must be quiesced
    during a drain; workers only ever run concurrently with each other.

    The worker pipeline replicates
    {!Control_in.process_neighbor_update}'s batched ingest exactly
    (decode, one intern per update through a per-domain
    {!Attr_arena.Front} cache, GR unmark on every NLRI, unchanged-route
    dedup, RIB write), which the parallel-vs-sequential differential
    suite pins: identical RIB/FIB/heard/export fingerprints and exact
    counter equality, whatever the domain interleaving. *)

open Netcore
open Bgp

val domain_of_neighbor : workers:int -> int -> int
(** The home domain of a neighbor id — deterministic. *)

(** An input item: raw wire bytes (the worker owns the decode — the
    dominant ingest cost) or an already-decoded update. Non-UPDATE
    messages are ignored; undecodable bytes count as decode errors. *)
type payload = Wire of string | Update of Msg.update

(** Per-drain view of one neighbor, captured from live router state by
    the coordinator immediately before the workers run (so session
    kills and GR retentions between batches are always reflected).
    [tg_gr] is the live stale table; only the owning worker touches it
    during the drain. *)
type target = {
  tg_id : int;
  tg_peer_ip : Ipv4.t;
  tg_peer_asn : Asn.t;
  tg_rib : Rib.Table.t;
  tg_gr : (Prefix.t, unit) Hashtbl.t option;
}

(** A staged route delta, replayed against shared state by {!consume}.
    [D_withdraw best_changed]: unconditional FIB remove; dirty mark only
    when the best route changed. [D_install entry]: FIB insert + dirty
    mark. Mirrors the sequential batched path exactly. *)
type delta = D_withdraw of bool | D_install of Rib.Fib.entry

type t

val create : workers:int -> unit -> t
(** A pool of [workers] ingest lanes (>= 1). No domain is spawned until
    a multi-worker {!drain}; a 1-worker pool runs everything inline. *)

val worker_count : t -> int

val dispatch : t -> nid:int -> payload -> unit
(** Queue one update on its neighbor's home domain (coordinator only,
    between drains). *)

val queued : t -> int
(** Items currently queued across all domains. *)

val drain : t -> now:float -> resolve:(int -> target option) -> unit
(** Process everything queued: resolve a target for every queued
    neighbor (raising [Invalid_argument] if [resolve] returns [None] —
    same contract as the sequential path's unknown-neighbor error), wake
    the workers, run domain 0 on the coordinator, wait for completion.
    [now] stamps installed routes' [learned_at]. The caller must not
    mutate router state during the call. *)

val consume :
  t -> apply:(nid:int -> prefix:Prefix.t -> delta -> unit) -> updates:(int -> unit) -> unit
(** Replay the drain's staging records into the caller's sinks and clear
    them: [apply] per record in per-neighbor processing order, then one
    [updates] call with the number of UPDATEs processed (the
    [updates_from_neighbors] fold). Call after {!drain} returns. *)

val shutdown : t -> unit
(** Join the pool's worker domains. Idempotent; the next multi-worker
    {!drain} respawns workers transparently. *)

(** {1 Observability} *)

type stats = {
  front_hits : int;  (** per-domain intern front-cache hits, summed *)
  front_misses : int;
  decode_errors : int;  (** cumulative undecodable wire items *)
  staging_residual : int;
      (** staged records not yet consumed — 0 after every
          drain+consume cycle (gated in the ingest-par bench) *)
  queue_depth_max : int array;
      (** per-domain input-queue high-water mark over the pool's
          lifetime (index 0 = coordinator domain) *)
}

val stats : t -> stats
val zero_stats : stats
