(** The domain-sharded data plane: N OCaml 5 worker domains, each owning
    a domain-local per-neighbor flow cache and FIB destination cache,
    forwarding against an immutable generation-stamped control snapshot
    published through an [Atomic].

    Protocol: the (single-domain) control plane {!publish}es a snapshot
    whenever its state changes; frames are {!dispatch}ed to per-domain
    ingress queues by hashing the flow key (source MAC, IPv4 source and
    destination) so every packet of a flow lands on the same domain —
    keeping memoized verdicts and per-flow shaper buckets single-writer;
    {!drain} wakes the persistent parked workers (each detects a stale
    generation with one integer compare and refreshes its caches
    lock-free); {!consume} folds buffered effects and per-domain
    counters into the caller's sinks after the drain's done-handshake
    (which provides the happens-before edge). The control plane must be
    quiesced during a drain; workers only ever run concurrently with
    each other.

    The worker fast path mirrors {!Data_plane.forward_experiment_frame}
    exactly (verdicts, per-filter accounting, delivery multisets, shaper
    debits); the parallel-vs-sequential differential suite pins the
    equivalence. Flow entries carry one snapshot generation instead of
    the sequential path's three stamps, so invalidation is coarser and
    hit/miss counts may differ across equivalent runs — never verdicts. *)

open Netcore

val domain_of_flow :
  domains:int -> src_mac:Mac.t -> src:Ipv4.t -> dst:Ipv4.t -> int
(** The home domain of a flow key — deterministic, so per-flow state is
    single-writer by construction. *)

(** Per-neighbor slice of a snapshot: the FIB's persistent trie root
    (immutable — safe to walk from any domain) plus egress identity. *)
type nsnap = {
  sn_id : int;
  sn_alias : bool;  (** remote neighbor: egress goes over the backbone *)
  sn_trie : Rib.Fib.entry Ptrie.V4.t;
}

(** Buffered externally-visible effects a worker may not perform itself;
    applied by the coordinator via {!consume}. *)
type outcome =
  | O_icmp of Ipv4_packet.t  (** TTL expired: answer with ICMP inbound *)
  | O_backbone of Ipv4.t * Ipv4_packet.t
      (** forward over the backbone toward the global IP *)

type t

val create : domains:int -> unit -> t
(** A worker pool of [domains] domains (>= 1). No domain is spawned until
    a multi-domain {!drain}; a 1-domain pool runs everything inline. *)

val domain_count : t -> int

val generation : t -> int
(** The current snapshot's generation (0 before the first publish). *)

val queue_depth_max : t -> int array
(** Per-domain ingress queue high-water mark over the pool's lifetime
    (index 0 = coordinator domain). A skewed flow hash shows up as one
    domain's max far above the others' — recorded in the fwd-par bench
    so speedup-floor failures are diagnosable from the JSON alone. *)

val publish :
  t ->
  vmac:(Mac.t, nsnap) Hashtbl.t ->
  exp_mac:(Mac.t, string) Hashtbl.t ->
  head:Data_enforcer.filter list ->
  tail:Data_enforcer.filter list ->
  unit
(** Publish a new control snapshot (generation = previous + 1). The
    tables must be freshly built for this call and never mutated after;
    the single [Atomic.set] is the linearization point. [head] filters
    are shared read-only across domains (workers account them in
    per-domain arrays); [tail] filters are replicated per domain on first
    sight ({!Data_enforcer.replicate}) and the replicas persist across
    generations, so stateful filters keep their state through control
    churn. *)

val dispatch : t -> Eth.t -> unit
(** Queue one frame on its flow's home domain (runs on the coordinator,
    between drains). *)

val drain : t -> now:float -> unit
(** Forward everything queued: one worker per domain (the coordinator
    runs domain 0; the rest are persistent domains parked on a condition
    between drains, spawned lazily at the first multi-domain drain). The
    control plane must not mutate router state during the call. *)

val shutdown : t -> unit
(** Join the pool's worker domains (each live domain counts against the
    runtime's domain limit, so callers churning many sharded routers
    should release them). Idempotent; sharding state survives, and the
    next multi-domain {!drain} respawns workers transparently. *)

val consume :
  t ->
  deliver:(int -> Ipv4_packet.View.t -> unit) ->
  outcome:(outcome -> unit) ->
  attribute:(string -> packets:int -> bytes:int -> unit) ->
  counters:
    (hits:int -> misses:int -> to_neighbors:int -> dropped:int -> unit) ->
  unit
(** Fold the drain's buffered effects and counters into the caller's
    sinks and clear them: deliveries ([deliver neighbor_id view]) and
    outcomes in per-domain forwarding order, per-experiment attribution
    totals, then one [counters] call with the drain's flow-cache and
    forwarding tallies. Call after {!drain} returns. *)

(** {1 Enforcer aggregation}

    Sharded analogs of {!Data_enforcer.stats}/[filter_stats], summed
    across domains (shared-head counter arrays + tail replica counters).
    Call between drains. *)

val enforcer_stats : t -> int * int
(** Aggregate [(allowed, blocked)] chain totals. *)

val filter_stats : t -> (string * int * int) list
(** Aggregate per-filter [(name, allowed, blocked)] in chain order. *)
