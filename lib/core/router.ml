(* The vBGP router facade (paper §3).

   The implementation lives in the plane modules — [Router_state] (the
   shared state record and inspection), [Control_in] (neighbor RIB-in,
   next-hop rewriting, ADD-PATH export), [Control_out] (experiment/mesh
   update processing, variant selection, batched per-neighbor
   re-export), [Data_plane] (experiment-LAN frames, MAC-keyed FIB
   selection, ICMP), [Backbone] (mesh sessions and global-pool
   aliasing, §4.4). This module re-exports the public surface so
   callers keep a single [Router] entry point. *)

open Netcore
open Bgp

(* Re-exported as transparent records so callers can keep pattern
   matching and field access through [Router]. *)
type neighbor_state = Router_state.neighbor_state = {
  info : Neighbor.t;
  rib_in : Rib.Table.t;
  mutable session : Session.t option;
  mutable deliver : Ipv4_packet.t -> unit;
  export_id : int;
  mutable gr : Prefix.t Router_state.gr_hold option;
  flows : (Mac.t * Ipv4.t * Ipv4.t, Router_state.flow_entry) Hashtbl.t;
}

type counters = Router_state.counters = {
  mutable updates_from_neighbors : int;
  mutable updates_from_experiments : int;
  mutable updates_from_mesh : int;
  mutable packets_to_neighbors : int;
  mutable packets_to_experiments : int;
  mutable packets_over_backbone : int;
  mutable packets_dropped : int;
  mutable icmp_sent : int;
  mutable reexport_computations : int;
  mutable gr_retentions : int;
  mutable gr_expiries : int;
  mutable updates_to_neighbors : int;
  mutable nlri_to_neighbors : int;
  mutable updates_to_experiments : int;
  mutable nlri_to_experiments : int;
  mutable updates_to_mesh : int;
  mutable nlri_to_mesh : int;
  mutable flow_hits : int;
  mutable flow_misses : int;
}

type t = Router_state.t

let create = Router_state.create
let activate = Data_plane.activate

(* -- inspection ------------------------------------------------------------- *)

let name = Router_state.name
let asn = Router_state.asn
let experiment_lan = Router_state.experiment_lan
let router_mac = Router_state.router_mac
let counters = Router_state.counters
let trace = Router_state.trace
let control_enforcer = Router_state.control_enforcer
let data_enforcer = Router_state.data_enforcer
let fib_set = Router_state.fib_set
let v6_next_hop = Router_state.v6_next_hop
let control_asn = Router_state.control_asn
let neighbor = Router_state.neighbor
let neighbor_states = Router_state.neighbor_states
let real_neighbors = Router_state.real_neighbors
let export_id = Router_state.export_id
let neighbor_routes = Router_state.neighbor_routes
let adj_out_routes = Router_state.adj_out_routes
let stale_count = Router_state.stale_count
let route_count = Router_state.route_count
let fib_entry_count = Router_state.fib_entry_count
let control_plane_bytes = Router_state.control_plane_bytes
let data_plane_bytes = Router_state.data_plane_bytes
let attribution = Router_state.attribution
let owner_of = Router_state.owner_of
let allocation_owner_of = Router_state.allocation_owner_of

(* -- control plane ---------------------------------------------------------- *)

let process_neighbor_update = Control_in.process_neighbor_update
let process_experiment_update = Control_out.process_experiment_update
let process_mesh_update = Control_out.process_mesh_update
let flush_reexports = Control_out.flush_reexports

(* -- parallel ingest lane ---------------------------------------------------- *)

type ingest_payload = Ingest_pool.payload =
  | Wire of string
  | Update of Msg.update

let ingest_updates = Control_in.ingest_updates
let parallel_ingest t = t.Router_state.parallel_ingest

type ingest_stats = Ingest_pool.stats = {
  front_hits : int;
  front_misses : int;
  decode_errors : int;
  staging_residual : int;
  queue_depth_max : int array;
}

let ingest_stats t =
  match t.Router_state.ingest_pool with
  | Some pool -> Ingest_pool.stats pool
  | None -> Ingest_pool.zero_stats

(* -- parallel export lane ----------------------------------------------------- *)

let parallel_export t = t.Router_state.parallel_export

type export_stats = Export_pool.stats = {
  wire_cache_hits : int;
  wire_cache_misses : int;
  wire_bytes_out : int;
  staged_residual : int;
  lane_depth_max : int array;
}

(* Meaningful on every router: the single-lane pool is the sequential
   flush path itself, so the encode-once wire cache is always live. *)
let export_stats t = Export_pool.stats t.Router_state.export_pool

(* -- data plane ------------------------------------------------------------- *)

let inject_from_neighbor = Data_plane.inject_from_neighbor
let forward_experiment_frame = Data_plane.forward_experiment_frame
let forward_frames = Data_plane.forward_frames
let domains t = t.Router_state.domains

let shard_queue_depth_max t =
  match t.Router_state.pool with
  | Some pool -> Shard.queue_depth_max pool
  | None -> [||]

let shutdown_domains t =
  (match t.Router_state.pool with
  | Some pool -> Shard.shutdown pool
  | None -> ());
  (match t.Router_state.ingest_pool with
  | Some pool -> Ingest_pool.shutdown pool
  | None -> ());
  Export_pool.shutdown t.Router_state.export_pool

(* -- wiring ----------------------------------------------------------------- *)

let add_neighbor = Control_in.add_neighbor
let set_neighbor_deliver = Control_in.set_neighbor_deliver
let attach_backbone = Backbone.attach_backbone

let connect_mesh t other ?latency () =
  Backbone.connect_mesh t other ~on_update:Control_out.process_mesh_update
    ~on_eor:Control_out.process_mesh_eor
    ~on_peer_down:Control_out.process_mesh_down ?latency ()

let connect_experiment = Control_out.connect_experiment
let flush_mesh_peer = Control_out.flush_mesh_peer
