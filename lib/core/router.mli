(** The vBGP router (paper §3): virtualization of one BGP edge router's
    data and control planes across parallel experiments.

    This is a facade over the plane modules, kept as the single entry
    point for callers:

    - {!Router_state} — the shared state record, constructor, inspection
    - {!Control_in} — neighbor RIB-in, next-hop rewriting, ADD-PATH
      export to experiments and the mesh (§3.2.1, Figure 2a)
    - {!Control_out} — experiment/mesh update processing, enforcement
      (§3.3), variant selection, and the batched dirty-prefix re-export
      queue toward neighbors
    - {!Data_plane} — experiment-LAN frames, MAC-keyed FIB selection
      (§3.2.2), inbound source-MAC rewriting, ICMP
    - {!Backbone} — mesh sessions and global-pool aliasing (§4.4) *)

open Netcore
open Bgp
open Sim

(** Per-neighbor state (the [info] and [rib_in] fields are the public
    surface; the rest is wiring). *)
type neighbor_state = Router_state.neighbor_state = {
  info : Neighbor.t;
  rib_in : Rib.Table.t;
  mutable session : Session.t option;  (** [None] for backbone aliases *)
  mutable deliver : Ipv4_packet.t -> unit;
  export_id : int;  (** platform-global id used in export-control tags *)
  mutable gr : Prefix.t Router_state.gr_hold option;
      (** stale retention across a graceful session drop (RFC 4724) *)
  flows : (Mac.t * Ipv4.t * Ipv4.t, Router_state.flow_entry) Hashtbl.t;
      (** the data-plane flow cache over this neighbor's table,
          generation-stamped (see {!Router_state.flow_entry}) *)
}

type counters = Router_state.counters = {
  mutable updates_from_neighbors : int;
  mutable updates_from_experiments : int;
  mutable updates_from_mesh : int;
  mutable packets_to_neighbors : int;
  mutable packets_to_experiments : int;
  mutable packets_over_backbone : int;
  mutable packets_dropped : int;
  mutable icmp_sent : int;
  mutable reexport_computations : int;
      (** neighbor-facing attribute-set computations: one per distinct
          variant per flush (update-groups), however many prefixes,
          neighbors or updates the burst touched *)
  mutable gr_retentions : int;
      (** session drops answered with stale retention instead of a drop *)
  mutable gr_expiries : int;
      (** restart windows that expired into the hard-drop path *)
  mutable updates_to_neighbors : int;
      (** UPDATE messages sent to neighbors (after NLRI packing) *)
  mutable nlri_to_neighbors : int;
      (** NLRI carried by those messages; nlri/updates = packing ratio *)
  mutable updates_to_experiments : int;
      (** UPDATE messages sent to experiments (after NLRI packing) *)
  mutable nlri_to_experiments : int;
  mutable updates_to_mesh : int;
      (** UPDATE messages sent over the backbone mesh (after packing) *)
  mutable nlri_to_mesh : int;
  mutable flow_hits : int;
      (** forwarded frames served by a memoized flow-cache decision *)
  mutable flow_misses : int;
      (** forwarded frames resolved through the slow path *)
}

type t = Router_state.t

val create :
  engine:Engine.t ->
  ?trace:Trace.t ->
  name:string ->
  asn:Asn.t ->
  router_id:Ipv4.t ->
  primary_ip:Ipv4.t ->
  ?v6_next_hop:Ipv6.t ->
  local_pool:Prefix.t ->
  global_pool:Addr_pool.t ->
  ?control:Control_enforcer.t ->
  ?data:Data_enforcer.t ->
  ?flow_cache:bool ->
  ?ingest_batching:bool ->
  ?domains:int ->
  ?parallel_ingest:int ->
  ?parallel_export:int ->
  ?seed:int ->
  ?gr_restart_time:int ->
  unit ->
  t
(** [local_pool] is this router's virtual next-hop space (127.65/16 in the
    paper); [global_pool] must be the single pool shared by every PoP
    (§4.4). [v6_next_hop] is the next hop placed in MP_REACH_NLRI on
    IPv6 re-export (defaults to PEERING's 2804:269c::1). [flow_cache]
    (default [true]) enables the data plane's per-neighbor flow caches;
    disabling it forces every frame through the slow path (the
    differential tests compare the two). [ingest_batching] (default
    [true]) defers neighbor/mesh-ingest export fan-out to a per-tick
    dirty-queue flush that emits packed multi-NLRI UPDATEs; disabling it
    restores the eager per-prefix export path (again, the reference the
    differential tests compare against). [domains] (default 1) shards
    the data plane's batch entry point ({!forward_frames}) across that
    many OCaml worker domains, each owning domain-local flow and
    destination caches and forwarding against an immutable
    generation-stamped control snapshot ({!Shard}); 1 keeps the
    sequential path, bit-identical to pre-sharding behavior, and more
    than 1 requires the flow cache. [parallel_ingest] (default 1) fans
    the control plane's batch ingest entry point ({!ingest_updates})
    across that many worker domains — each owning its neighbors' wire
    decode, attribute intern and Adj-RIB-In writes, reconciled into the
    single-writer FIB/export pipeline at the tick boundary
    ({!Ingest_pool}); 1 keeps the sequential batched path, bit-identical,
    and more than 1 requires [ingest_batching]. [parallel_export]
    (default 1) hash-partitions the dirty-prefix flush toward neighbors
    ({!flush_reexports}) across that many export lanes — each owning its
    neighbors' export-control filtering, Adj-RIB-Out delta, multi-NLRI
    packing, and wire encoding against a read-only per-flush snapshot,
    with the staged messages replayed by the single writer
    ({!Export_pool}); 1 keeps the sequential flush, byte-identical on
    the wire. [seed] drives the
    router's deterministic RNG (reconnect jitter); [gr_restart_time] is
    the graceful-restart window it advertises (RFC 4724) — 0 disables
    graceful restart. *)

val activate : t -> unit
(** Attach the router's own station to the experiment LAN (answers ARP for
    the primary address). Call once after [create]. *)

(** {1 Inspection} *)

val name : t -> string
val asn : t -> Asn.t

val experiment_lan : t -> Lan.t
(** The layer-2 segment experiments share with the router. *)

val router_mac : t -> Mac.t
val counters : t -> counters
val trace : t -> Trace.t
val control_enforcer : t -> Control_enforcer.t
val data_enforcer : t -> Data_enforcer.t
val fib_set : t -> Rib.Fib.Set.t

val v6_next_hop : t -> Ipv6.t
(** The router's IPv6 next hop as announced to neighbors. *)

val control_asn : t -> int
(** The community namespace for export control. *)

val neighbor : t -> int -> neighbor_state option
val neighbor_states : t -> neighbor_state list
val real_neighbors : t -> neighbor_state list

val export_id : t -> neighbor_id:int -> int
(** The neighbor's platform-global export id (for
    {!Export_control.announce_to} tags). *)

val neighbor_routes : t -> neighbor_id:int -> Rib.Route.t list

val adj_out_routes : t -> neighbor_id:int -> (Prefix.t * Attr.set) list
(** The Adj-RIB-Out toward a neighbor as a sorted association list (the
    chaos convergence checker compares these across runs). *)

val stale_count : t -> neighbor_id:int -> int
(** Prefixes currently held stale for a neighbor (graceful-restart
    retention). *)

val route_count : t -> int
(** Total routes across all per-neighbor RIBs. *)

val fib_entry_count : t -> int

val control_plane_bytes : t -> int
(** Heap bytes of control-plane state (Figure 6a). *)

val data_plane_bytes : t -> int

val attribution : t -> (string * int * int * int) list
(** PlanetFlow-style accountability (paper §3.1): per-experiment
    (name, packets out, bytes out, packets in). *)

val owner_of : t -> Ipv4.t -> string option
(** The local experiment that has {e announced} space covering the
    address. *)

val allocation_owner_of : t -> Ipv4.t -> string option
(** The local experiment whose {e allocation} covers the address (the
    basis for source validation). *)

(** {1 Control-plane entry points}

    Sessions call these; benchmarks drive them directly. *)

val process_neighbor_update : t -> neighbor_id:int -> Msg.update -> unit
(** The full vBGP ingress pipeline: per-neighbor RIB and FIB maintenance,
    next-hop rewriting, ADD-PATH export to experiments, backbone export. *)

val process_experiment_update :
  t -> experiment:string -> Msg.update -> (unit, string list) result
(** An experiment announcement through the enforcement engine; affected
    prefixes are marked dirty and re-exported to the selected neighbors
    at the next flush (scheduled automatically at the current engine
    tick). *)

val process_mesh_update : t -> pop:string -> Msg.update -> unit

(** An item for {!ingest_updates}: raw wire bytes (decoded on the ingest
    workers — the dominant ingest cost) or an already-decoded update.
    Non-UPDATE messages are ignored; undecodable bytes count as decode
    errors in {!ingest_stats}. *)
type ingest_payload = Ingest_pool.payload =
  | Wire of string
  | Update of Msg.update

val ingest_updates : t -> (int * ingest_payload) array -> unit
(** Ingest a batch of (neighbor id, update) items through the full
    pipeline. On a [?parallel_ingest:n] router with [n > 1] the batch is
    hash-partitioned by neighbor id across the ingest worker domains
    (each owning decode, intern, and the neighbor's Adj-RIB-In) and the
    staged route deltas are reconciled into the FIB and the per-tick
    dirty queue on the single writer before the call returns; otherwise
    items are processed inline in batch order. Both paths produce
    bit-identical state and counters — the par-ingest differential suite
    pins this. Raises [Invalid_argument] on an unknown neighbor id. *)

val parallel_ingest : t -> int
(** The router's ingest-lane count (1 = sequential batched ingest). *)

type ingest_stats = Ingest_pool.stats = {
  front_hits : int;  (** per-domain intern front-cache hits, summed *)
  front_misses : int;
  decode_errors : int;  (** cumulative undecodable wire items *)
  staging_residual : int;
      (** staged deltas not yet reconciled — always 0 after
          {!ingest_updates} returns (gated in the ingest-par bench) *)
  queue_depth_max : int array;
      (** per-lane input-queue high-water mark (index 0 = coordinator) *)
}

val ingest_stats : t -> ingest_stats
(** All-zero (empty array) on a sequential-ingest router. *)

val parallel_export : t -> int
(** The router's export-lane count (1 = sequential flush). *)

type export_stats = Export_pool.stats = {
  wire_cache_hits : int;
      (** announce messages spliced from an already-encoded attribute
          block (the encode-once wire cache; cross-lane deduplicated) *)
  wire_cache_misses : int;
      (** distinct (facing set, params) attribute blocks encoded *)
  wire_bytes_out : int;
      (** UPDATE wire bytes handed to established neighbor sessions *)
  staged_residual : int;
      (** staged messages not yet replayed — always 0 after
          {!flush_reexports} returns (gated in the export-par bench) *)
  lane_depth_max : int array;
      (** per-lane target-queue high-water mark (index 0 = coordinator) *)
}

val export_stats : t -> export_stats
(** Live on every router: the single-lane pool {e is} the sequential
    flush path, so the wire cache accumulates regardless of
    [?parallel_export]. *)

val flush_reexports : t -> unit
(** Drain the batched-ingest queue (neighbor/mesh routes toward
    experiments and the mesh) and the dirty-prefix re-export queue
    (experiment routes toward neighbors) now. Both run automatically
    once per engine tick after updates; call directly only when driving
    the router without running the engine. *)

(** {1 Data-plane entry points} *)

val inject_from_neighbor : t -> neighbor_id:int -> Ipv4_packet.t -> unit
(** A packet arriving from the Internet via this neighbor, destined to
    experiment space (delivered with the neighbor's virtual MAC as frame
    source). *)

val forward_experiment_frame : t -> neighbor_id:int -> Eth.t -> unit
(** A frame an experiment addressed to a neighbor's virtual MAC (normally
    invoked via the LAN station). Always sequential, even on a router
    with worker domains. *)

val forward_frames : t -> Eth.t array -> unit
(** Forward a batch of experiment frames, each selecting its neighbor by
    destination MAC (unknown destinations drop and count). On a
    [?domains:n] router with [n > 1] the batch is hash-partitioned by
    flow across the worker domains and forwarded in parallel against the
    published control snapshot; effects and counters are folded back
    before the call returns. With one domain this is the sequential fast
    path in a loop. *)

val domains : t -> int
(** The router's worker-domain count (1 = sequential data plane). *)

val shard_queue_depth_max : t -> int array
(** Per-domain ingress queue high-water mark of the sharded data plane
    (empty on sequential routers) — recorded in the fwd-par bench so
    speedup-floor failures are diagnosable from the JSON alone. *)

val shutdown_domains : t -> unit
(** Join the router's parked worker domains — the sharded data plane's,
    the parallel ingest lane's, and the parallel export lane's (each
    live domain counts against the OCaml runtime's domain limit, so
    tests and benchmarks churning many
    [?domains]/[?parallel_ingest]/[?parallel_export] routers should
    release them). Idempotent, a no-op on sequential routers, and
    transparent: the next parallel batch respawns workers with all
    state (caches, counters, shaper replicas) intact. *)

(** {1 Wiring} *)

val add_neighbor :
  t ->
  asn:Asn.t ->
  ip:Ipv4.t ->
  kind:Neighbor.kind ->
  remote_id:Ipv4.t ->
  ?latency:float ->
  ?deliver:(Ipv4_packet.t -> unit) ->
  unit ->
  int * Bgp_wire.pair
(** Register a real BGP neighbor; returns its table id and the session
    pair (the caller drives the remote, active side). *)

val set_neighbor_deliver : t -> neighbor_id:int -> (Ipv4_packet.t -> unit) -> unit

val attach_backbone : t -> Lan.t -> unit
(** Join the backbone segment shared by all PoPs: answer ARP for local
    neighbors' (and experiments') global IPs and accept cross-PoP
    traffic. *)

val connect_mesh : t -> t -> ?latency:float -> unit -> Bgp_wire.pair
(** Bring up the backbone BGP mesh session between two PoP routers (both
    directions installed; started internally). *)

val flush_mesh_peer : t -> pop:string -> unit
(** An out-of-band verdict that [pop] is dead (e.g. the health monitor's
    Failed transition): drop everything imported from it now instead of
    waiting out the graceful-restart window, withdrawing its remote
    experiment announcements from our neighbors so traffic re-homes onto
    surviving PoPs. Idempotent; a later mesh resync re-imports. *)

val connect_experiment :
  t ->
  grant:Control_enforcer.grant ->
  mac:Mac.t ->
  ?latency:float ->
  unit ->
  Bgp_wire.pair
(** Provision an experiment: an ADD-PATH session over a VPN-like link plus
    a data-plane identity ([mac] is the experiment's LAN station). The
    caller installs handlers on the active (client) side and starts the
    pair. The full table syncs on Established and on ROUTE-REFRESH. *)
