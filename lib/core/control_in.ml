(* Control plane, inbound (paper §3.2.1, Figure 2a): routes learned from
   each neighbor are stored per neighbor, their BGP next-hop rewritten to
   the neighbor's virtual IP, and exported to every experiment over
   ADD-PATH sessions (path id = the neighbor's table id). The same routes
   go to the backbone mesh with the neighbor's *global* IP as next hop so
   remote PoPs can alias it (§4.4). *)

open Bgp
open Sim
open Router_state

(* -- eager per-prefix export (legacy / reference path) ---------------------- *)

(* These fan one prefix out to every receiver as its own UPDATE. They
   remain the behavior of routers created with [~ingest_batching:false] —
   the reference the differential tests compare the batched flush
   against — and the building blocks the batched path falls back on. *)

(* Export a route learned from neighbor [ns] to all experiments: next hop
   becomes the neighbor's virtual IP, the path id its table id. *)
let export_route_to_experiments t (ns : neighbor_state) prefix attrs =
  let attrs = Attr.with_next_hop ns.info.Neighbor.virtual_ip attrs in
  let update =
    Msg.update ~attrs
      ~announced:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ]
      ()
  in
  Hashtbl.iter (fun _ e -> send_update_to_experiment t e update) t.experiments

let export_withdraw_to_experiments t (ns : neighbor_state) prefix =
  let update =
    Msg.update ~withdrawn:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ] ()
  in
  Hashtbl.iter (fun _ e -> send_update_to_experiment t e update) t.experiments

(* Neighbor-learned routes go to the mesh with the neighbor's *global* IP
   as next hop, so remote PoPs can alias it (§4.4). *)
let export_route_to_mesh t (ns : neighbor_state) prefix attrs =
  match ns.info.Neighbor.global_ip with
  | None -> ()
  | Some g ->
      let attrs = Attr.with_next_hop g attrs in
      send_update_to_mesh t
        (Msg.update ~attrs
           ~announced:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ]
           ())

let export_withdraw_to_mesh t (ns : neighbor_state) prefix =
  if ns.info.Neighbor.global_ip <> None then
    send_update_to_mesh t
      (Msg.update ~withdrawn:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ] ())

(* -- batched ingest: the dirty-(neighbor, prefix) queue --------------------- *)

(* Ingest applies RIB-in and FIB writes in-band (the decision process runs
   per touched prefix, so local state is always current), but defers the
   experiment/mesh fan-out: touched (neighbor, prefix) pairs go into
   [t.dirty_in] and one flush per engine tick resolves each pair against
   the RIB — route present means announce, absent means withdraw — so a
   burst coalesces to its net effect and each neighbor's batch leaves as
   packed multi-NLRI UPDATEs grouped by shared attribute set. *)

(* Flush one neighbor's dirty prefixes (sorted). *)
let flush_ingest_neighbor t (ns : neighbor_state) prefixes =
  let info = ns.info in
  (* Alias rows are keyed by the alias's virtual IP (§4.4); real
     neighbors by the peer address. *)
  let peer_ip =
    if Neighbor.is_alias info then info.Neighbor.virtual_ip
    else info.Neighbor.ip
  in
  let nid = info.Neighbor.id in
  let withdrawn = ref [] in
  let groups = nlri_groups_create () in
  List.iter
    (fun prefix ->
      match
        List.find_opt
          (Rib.Route.key_matches ~peer_ip ~path_id:None)
          (Rib.Table.candidates ns.rib_in prefix)
      with
      | None -> withdrawn := Msg.nlri ~path_id:nid prefix :: !withdrawn
      | Some r ->
          nlri_groups_add groups
            (Rib.Route.attrs_handle r)
            (Msg.nlri ~path_id:nid prefix))
    prefixes;
  let withdrawn = List.rev !withdrawn in
  (if withdrawn <> [] then
     let u = Msg.update ~withdrawn () in
     Hashtbl.iter (fun _ e -> send_update_to_experiment t e u) t.experiments);
  nlri_groups_iter groups (fun h nlris ->
      let attrs =
        Attr.with_next_hop info.Neighbor.virtual_ip (Attr_arena.set h)
      in
      let u = Msg.update ~attrs ~announced:nlris () in
      Hashtbl.iter (fun _ e -> send_update_to_experiment t e u) t.experiments);
  (* Mesh export: real neighbors with a global identity only. Alias
     routes came *from* the mesh and must not echo back into it. *)
  if not (Neighbor.is_alias info) then
    match info.Neighbor.global_ip with
    | None -> ()
    | Some g ->
        if withdrawn <> [] then
          send_update_to_mesh t (Msg.update ~withdrawn ());
        nlri_groups_iter groups (fun h nlris ->
            send_update_to_mesh t
              (Msg.update
                 ~attrs:(Attr.with_next_hop g (Attr_arena.set h))
                 ~announced:nlris ()))

(* Drain the ingest queue: per neighbor (deterministic id order), resolve
   each dirty prefix against the RIB and send the packed batch. The queue
   is snapshotted and reset first, like the re-export flush. *)
let flush_ingest t =
  t.ingest_scheduled <- false;
  if Hashtbl.length t.dirty_in > 0 then begin
    let entries = Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_in [] in
    Hashtbl.reset t.dirty_in;
    let by_neighbor = Hashtbl.create 16 in
    List.iter
      (fun (nid, prefix) ->
        match Hashtbl.find_opt by_neighbor nid with
        | Some ps -> ps := prefix :: !ps
        | None -> Hashtbl.replace by_neighbor nid (ref [ prefix ]))
      entries;
    Hashtbl.fold (fun nid ps acc -> (nid, ps) :: acc) by_neighbor []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.iter (fun (nid, ps) ->
           match neighbor t nid with
           | None -> ()
           | Some ns ->
               flush_ingest_neighbor t ns
                 (List.sort Netcore.Prefix.compare !ps))
  end

(* Mark one (neighbor, prefix) dirty and arrange a flush at the current
   engine tick (equal-time events run FIFO, so every update processed at
   this timestamp lands before the flush). *)
let mark_ingest_dirty t (ns : neighbor_state) prefix =
  Hashtbl.replace t.dirty_in (ns.info.Neighbor.id, prefix) ();
  if not t.ingest_scheduled then begin
    t.ingest_scheduled <- true;
    Engine.run_after t.engine 0. (fun () -> flush_ingest t)
  end

(* -- experiment full-table sync --------------------------------------------- *)

(* Full-table sync when an experiment session reaches Established: every
   route from every (real and alias) neighbor, with rewritten next hops,
   packed per shared attribute set rather than one UPDATE per route. *)
let sync_experiment t (e : experiment_state) =
  if not e.exp_synced then begin
    e.exp_synced <- true;
    List.iter
      (fun ns ->
        let nid = ns.info.Neighbor.id in
        let groups = nlri_groups_create () in
        Rib.Table.iter_routes
          (fun (r : Rib.Route.t) ->
            nlri_groups_add groups
              (Rib.Route.attrs_handle r)
              (Msg.nlri ~path_id:nid r.prefix))
          ns.rib_in;
        nlri_groups_iter groups (fun h nlris ->
            let attrs =
              Attr.with_next_hop ns.info.Neighbor.virtual_ip (Attr_arena.set h)
            in
            send_update_to_experiment t e
              (Msg.update ~attrs ~announced:nlris ())))
      (neighbor_states t);
    (* End-of-RIB (RFC 4724): an experiment that held our routes as stale
       across a restart sweeps whatever the sync did not refresh. *)
    send_update_to_experiment t e (Msg.update ());
    log t "synced full table to experiment %s" e.grant.Control_enforcer.name
  end

(* -- neighbor route learning ----------------------------------------------- *)

(* Process one UPDATE from neighbor [id]; public so benchmarks can drive the
   pipeline without sessions.

   Re-announcements identical to the installed route (same key, same
   attributes) are absorbed silently: after a graceful restart the
   neighbor replays its full table, and the dedup keeps that resync off
   the experiment and mesh wires entirely. *)
let process_neighbor_update t ~neighbor_id (u : Msg.update) =
  match neighbor t neighbor_id with
  | None -> invalid_arg "Router.process_neighbor_update: unknown neighbor"
  | Some ns ->
      t.counters.updates_from_neighbors <-
        t.counters.updates_from_neighbors + 1;
      let now = Engine.now t.engine in
      let batched = t.ingest_batching in
      let peer_ip = ns.info.Neighbor.ip in
      let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
      List.iter
        (fun (n : Msg.nlri) ->
          gr_unmark ns.gr n.prefix;
          let change =
            Rib.Table.withdraw ns.rib_in ~prefix:n.prefix ~peer_ip
              ~path_id:None
          in
          Rib.Fib.remove fib n.prefix;
          if batched then begin
            match change with
            | Rib.Table.Best_changed _ -> mark_ingest_dirty t ns n.prefix
            | Rib.Table.Unchanged -> ()
          end
          else begin
            export_withdraw_to_experiments t ns n.prefix;
            export_withdraw_to_mesh t ns n.prefix
          end)
        u.withdrawn;
      if u.announced <> [] then begin
        let source =
          Rib.Route.source ~peer_ip ~peer_asn:ns.info.Neighbor.asn ()
        in
        (* Per-NLRI constants hoisted out of the loop: one intern for the
           whole list (the unchanged check becomes O(1) and installed
           routes share the canonical set) and one FIB entry record. *)
        let attrs_h = Attr_arena.intern u.attrs in
        let fib_entry =
          { Rib.Fib.next_hop = peer_ip; neighbor = ns.info.Neighbor.id }
        in
        List.iter
          (fun (n : Msg.nlri) ->
            gr_unmark ns.gr n.prefix;
            let unchanged =
              List.exists
                (fun (r : Rib.Route.t) ->
                  Rib.Route.key_matches ~peer_ip ~path_id:None r
                  && Attr_arena.equal (Rib.Route.attrs_handle r) attrs_h)
                (Rib.Table.candidates ns.rib_in n.prefix)
            in
            if not unchanged then begin
              let route =
                Rib.Route.make_h ~learned_at:now ~prefix:n.prefix ~attrs_h
                  ~source ()
              in
              ignore (Rib.Table.update ns.rib_in route);
              Rib.Fib.insert fib n.prefix fib_entry;
              if batched then mark_ingest_dirty t ns n.prefix
              else begin
                export_route_to_experiments t ns n.prefix u.attrs;
                export_route_to_mesh t ns n.prefix u.attrs
              end
            end)
          u.announced
      end

(* -- the parallel ingest lane ------------------------------------------------ *)

(* The per-drain view of a neighbor handed to the ingest workers: built
   from live state at drain time, so session kills, GR retentions and
   resyncs that happened since the previous batch are always seen. *)
let ingest_target (ns : neighbor_state) =
  {
    Ingest_pool.tg_id = ns.info.Neighbor.id;
    tg_peer_ip = ns.info.Neighbor.ip;
    tg_peer_asn = ns.info.Neighbor.asn;
    tg_rib = ns.rib_in;
    tg_gr = Option.map (fun (h : _ gr_hold) -> h.stale) ns.gr;
  }

(* Replay one staged route delta against shared state — the FIB write and
   the dirty-queue mark that [process_neighbor_update] performs in-band.
   Runs on the coordinator only. *)
let apply_staged t ~nid ~prefix delta =
  match neighbor t nid with
  | None -> ()
  | Some ns -> (
      let fib = Rib.Fib.Set.table t.fibs nid in
      match delta with
      | Ingest_pool.D_withdraw best_changed ->
          Rib.Fib.remove fib prefix;
          if best_changed then mark_ingest_dirty t ns prefix
      | Ingest_pool.D_install entry ->
          Rib.Fib.insert fib prefix entry;
          mark_ingest_dirty t ns prefix)

(* Ingest a batch of updates, fanned across the worker domains when the
   router was created with [?parallel_ingest:n > 1] and processed inline
   (in batch order) otherwise. The two paths produce bit-identical
   RIB/FIB/heard/export state and counters — the differential suite pins
   this. Raw [Wire] payloads are decoded on the workers (the dominant
   ingest cost); non-UPDATE messages are ignored, undecodable bytes
   counted as decode errors. *)
let ingest_updates t batch =
  match t.ingest_pool with
  | None ->
      Array.iter
        (fun (nid, payload) ->
          match payload with
          | Ingest_pool.Update u -> process_neighbor_update t ~neighbor_id:nid u
          | Ingest_pool.Wire bytes -> (
              if neighbor t nid = None then
                invalid_arg "Router.ingest_updates: unknown neighbor";
              match Codec.decode bytes with
              | Ok (Msg.Update u) -> process_neighbor_update t ~neighbor_id:nid u
              | Ok _ | Error _ -> ()))
        batch
  | Some pool ->
      Array.iter
        (fun (nid, payload) -> Ingest_pool.dispatch pool ~nid payload)
        batch;
      Ingest_pool.drain pool ~now:(Engine.now t.engine) ~resolve:(fun nid ->
          Option.map ingest_target (neighbor t nid));
      Ingest_pool.consume pool ~apply:(apply_staged t) ~updates:(fun n ->
          t.counters.updates_from_neighbors <-
            t.counters.updates_from_neighbors + n)

(* -- session loss: hard drop, stale retention, resync ----------------------- *)

(* The pre-GR teardown: drop the whole Adj-RIB-In, clear the FIB, and
   storm withdrawals — now reserved for non-graceful downs and expired
   restart windows. *)
let hard_drop_neighbor t (ns : neighbor_state) =
  (match ns.gr with
  | Some h ->
      h.cancel_expiry ();
      ns.gr <- None
  | None -> ());
  let changes = Rib.Table.drop_peer ns.rib_in ~peer_ip:ns.info.Neighbor.ip in
  Rib.Fib.clear (Rib.Fib.Set.table t.fibs ns.info.Neighbor.id);
  List.iter
    (function
      | Rib.Table.Best_changed (prefix, None) ->
          if t.ingest_batching then mark_ingest_dirty t ns prefix
          else begin
            export_withdraw_to_experiments t ns prefix;
            export_withdraw_to_mesh t ns prefix
          end
      | _ -> ())
    changes

(* Withdraw one stale route (sweep or window expiry). *)
let drop_stale_route t (ns : neighbor_state) prefix =
  ignore
    (Rib.Table.withdraw ns.rib_in ~prefix ~peer_ip:ns.info.Neighbor.ip
       ~path_id:None);
  Rib.Fib.remove (Rib.Fib.Set.table t.fibs ns.info.Neighbor.id) prefix;
  if t.ingest_batching then mark_ingest_dirty t ns prefix
  else begin
    export_withdraw_to_experiments t ns prefix;
    export_withdraw_to_mesh t ns prefix
  end

(* Graceful down: keep the Adj-RIB-In and FIB (forwarding state is
   preserved, RFC 4724), mark every prefix stale, and fall back to the
   hard drop if the restart window expires before the peer returns. *)
let gr_retain_neighbor t (ns : neighbor_state) ~window =
  let prefixes =
    Rib.Table.fold (fun prefix _ acc -> prefix :: acc) ns.rib_in []
  in
  match ns.gr with
  | Some h ->
      (* A repeat loss while the window is already running (e.g. half-open
         reconnects hold-expiring during a long outage) re-marks what is
         installed but must not extend the deadline: RFC 4724 counts the
         restart time from the first loss. *)
      List.iter (fun p -> Hashtbl.replace h.stale p ()) prefixes
  | None ->
      let hold = gr_hold_of_keys prefixes in
      ns.gr <- Some hold;
      t.counters.gr_retentions <- t.counters.gr_retentions + 1;
      hold.cancel_expiry <-
        Engine.schedule t.engine window (fun () ->
            match ns.gr with
            | Some h when h == hold ->
                t.counters.gr_expiries <- t.counters.gr_expiries + 1;
                log t "neighbor %d restart window expired" ns.info.Neighbor.id;
                hard_drop_neighbor t ns
            | _ -> ());
      log t "neighbor %d retaining %d routes as stale (window %.0fs)"
        ns.info.Neighbor.id (List.length prefixes) window

(* End-of-RIB after a restart: everything the peer did not re-announce is
   genuinely gone — withdraw exactly that. *)
let gr_sweep_neighbor t (ns : neighbor_state) =
  match ns.gr with
  | None -> ()
  | Some h ->
      h.cancel_expiry ();
      ns.gr <- None;
      let stale = Hashtbl.fold (fun p () acc -> p :: acc) h.stale [] in
      List.iter
        (drop_stale_route t ns)
        (List.sort Netcore.Prefix.compare stale);
      if stale <> [] then
        log t "neighbor %d sweep: %d stale routes withdrawn"
          ns.info.Neighbor.id (List.length stale)

(* Re-establishment: replay our Adj-RIB-Out (which kept accumulating
   intent while the session was down) and close with End-of-RIB so the
   peer can run its own mark-and-sweep. *)
let resync_neighbor t (ns : neighbor_state) =
  match ns.session with
  | Some s when Session.established s ->
      (match Hashtbl.find_opt t.adj_out ns.info.Neighbor.id with
      | None -> ()
      | Some tbl ->
          (* Group the replay by interned outbound set so it leaves as
             one packed multi-NLRI UPDATE per shared attribute set. *)
          let groups = Hashtbl.create 8 in
          let order = ref [] in
          Hashtbl.fold (fun p h acc -> (p, h) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> Netcore.Prefix.compare a b)
          |> List.iter (fun (p, h) ->
                 let fid = Attr_arena.id h in
                 match Hashtbl.find_opt groups fid with
                 | Some (_, nlris) -> nlris := Msg.nlri p :: !nlris
                 | None ->
                     Hashtbl.replace groups fid (h, ref [ Msg.nlri p ]);
                     order := fid :: !order);
          List.iter
            (fun fid ->
              match Hashtbl.find_opt groups fid with
              | None -> ()
              | Some (h, nlris) ->
                  send_update_to_neighbor t ns
                    (Msg.update ~attrs:(Attr_arena.set h)
                       ~announced:(List.rev !nlris) ()))
            (List.rev !order));
      Session.send_update s (Msg.update ())
  | _ -> ()

(* -- neighbor wiring -------------------------------------------------------- *)

(* Register a real BGP neighbor. Returns (neighbor id, session pair); the
   caller drives the remote (active) side of the pair. *)
let add_neighbor t ~asn ~ip ~kind ~remote_id ?(latency = 0.002)
    ?(deliver = fun _ -> ()) () =
  let id = t.next_neighbor_id in
  t.next_neighbor_id <- t.next_neighbor_id + 1;
  let local =
    Addr_pool.allocate t.local_pool (Printf.sprintf "neighbor:%d" id)
  in
  let global =
    Addr_pool.allocate t.global_pool
      (Printf.sprintf "%s/neighbor:%d" t.name id)
  in
  let info =
    {
      Neighbor.id;
      asn;
      ip;
      kind;
      virtual_ip = local.Addr_pool.ip;
      virtual_mac = local.Addr_pool.mac;
      global_ip = Some global.Addr_pool.ip;
    }
  in
  let config_router =
    Session.config ~local_asn:t.asn ~local_id:t.router_id
      ~capabilities:(session_capabilities t) ~reconnect:(reconnect_policy t) ()
  in
  let config_remote =
    Session.config ~local_asn:asn ~local_id:remote_id
      ~capabilities:
        [
          Capability.Multiprotocol
            { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
          Capability.As4 asn;
          Capability.Graceful_restart
            {
              restart_time = t.gr_restart_time;
              afis = [ (Capability.afi_ipv4, Capability.safi_unicast) ];
            };
        ]
      ~reconnect:(reconnect_policy t) ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:config_remote
      ~config_passive:config_router ()
  in
  let ns =
    {
      info;
      rib_in = Rib.Table.create ();
      session = Some pair.Sim.Bgp_wire.passive;
      deliver;
      export_id = global.Addr_pool.index;
      gr = None;
      flows = Hashtbl.create 64;
    }
  in
  Hashtbl.replace t.neighbors id ns;
  Hashtbl.replace t.by_vmac info.Neighbor.virtual_mac id;
  Hashtbl.replace t.by_vip info.Neighbor.virtual_ip id;
  Hashtbl.replace t.by_global_ip global.Addr_pool.ip id;
  (* If the backbone is already attached, expose the new neighbor there. *)
  (match t.bb with
  | Some bb ->
      Backbone.register_global_station t bb.Arp_client.lan
        ~g:global.Addr_pool.ip
        ~receive:(Backbone.backbone_station_for_neighbor t id)
  | None -> ());
  (* The neighbor's virtual MAC is a station on the experiment LAN; frames
     sent to it are routed through the neighbor's table. *)
  Lan.attach t.exp_lan info.Neighbor.virtual_mac
    (Data_plane.handle_exp_lan_frame t ~station_neighbor:(Some id));
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update =
        (fun u ->
          if Msg.is_end_of_rib u then gr_sweep_neighbor t ns
          else process_neighbor_update t ~neighbor_id:id u);
      on_established =
        (fun () ->
          log t "neighbor %d (as%a) established" id Asn.pp asn;
          resync_neighbor t ns);
      on_down =
        (fun reason ->
          log t "neighbor %d down: %s" id (Fsm.down_reason_to_string reason);
          let window =
            if Fsm.graceful reason then
              Option.bind ns.session Session.gr_restart_time
            else None
          in
          match window with
          | Some w when w > 0. -> gr_retain_neighbor t ns ~window:w
          | _ -> hard_drop_neighbor t ns);
    };
  (id, pair)

let set_neighbor_deliver t ~neighbor_id deliver =
  match neighbor t neighbor_id with
  | Some ns -> ns.deliver <- deliver
  | None -> invalid_arg "Router.set_neighbor_deliver"
