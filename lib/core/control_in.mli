(** Control plane, inbound (§3.2.1, Figure 2a): per-neighbor RIB-in
    maintenance, next-hop rewriting to the neighbor's virtual IP, and
    ADD-PATH export to experiments and the backbone mesh.

    Operates on the shared {!Router_state.t}. *)

open Netcore
open Bgp
open Sim

val export_route_to_experiments :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> Attr.set -> unit
(** Eagerly announce a neighbor-learned route to all experiments: next
    hop becomes the neighbor's virtual IP, path id its table id. The
    per-prefix reference path; batched ingest defers to
    {!mark_ingest_dirty} instead. *)

val export_withdraw_to_experiments :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> unit

val sync_experiment : Router_state.t -> Router_state.experiment_state -> unit
(** Full-table sync when an experiment session reaches Established (or on
    ROUTE-REFRESH): one packed multi-NLRI UPDATE per neighbor per shared
    attribute set, closed with End-of-RIB. *)

val export_route_to_mesh :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> Attr.set -> unit
(** Eagerly announce toward the mesh with the neighbor's global IP as
    next hop (§4.4). *)

val export_withdraw_to_mesh :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> unit

val mark_ingest_dirty :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> unit
(** Mark one (neighbor, prefix) pair dirty in the batched-ingest queue
    and schedule {!flush_ingest} at the current engine tick. The flush
    resolves the pair against the RIB: route present → announce, absent
    → withdraw, so a same-tick burst coalesces to its net effect. *)

val flush_ingest : Router_state.t -> unit
(** Drain the batched-ingest queue now: per neighbor (deterministic id
    order, sorted prefixes), send the experiment/mesh fan-out as packed
    multi-NLRI UPDATEs grouped by shared attribute set. Idempotent; runs
    automatically once per engine tick after updates. *)

val process_neighbor_update :
  Router_state.t -> neighbor_id:int -> Msg.update -> unit
(** The full vBGP ingress pipeline: per-neighbor RIB and FIB maintenance,
    next-hop rewriting, ADD-PATH export to experiments, backbone export.
    With batched ingest (the default), RIB/FIB writes and the decision
    process run in-band while export fan-out is deferred to the
    dirty-queue flush at the current engine tick. *)

val ingest_updates : Router_state.t -> (int * Ingest_pool.payload) array -> unit
(** Ingest a batch of (neighbor id, update) items through the pipeline.
    On a router created with [?parallel_ingest:n > 1], the batch is
    hash-partitioned by neighbor id across the ingest worker domains —
    which own the wire decode, attribute intern and Adj-RIB-In writes —
    and reconciled into the FIB + dirty queue on the single writer; on
    any other router, items are processed inline in batch order. Both
    paths produce bit-identical state and counters. Raises
    [Invalid_argument] on an unknown neighbor id. *)

val add_neighbor :
  Router_state.t ->
  asn:Asn.t ->
  ip:Ipv4.t ->
  kind:Neighbor.kind ->
  remote_id:Ipv4.t ->
  ?latency:float ->
  ?deliver:(Ipv4_packet.t -> unit) ->
  unit ->
  int * Bgp_wire.pair
(** Register a real BGP neighbor; returns its table id and the session
    pair (the caller drives the remote, active side). *)

val set_neighbor_deliver :
  Router_state.t -> neighbor_id:int -> (Ipv4_packet.t -> unit) -> unit
