(** Control plane, inbound (§3.2.1, Figure 2a): per-neighbor RIB-in
    maintenance, next-hop rewriting to the neighbor's virtual IP, and
    ADD-PATH export to experiments and the backbone mesh.

    Operates on the shared {!Router_state.t}. *)

open Netcore
open Bgp
open Sim

val send_to_experiment : Router_state.experiment_state -> Msg.update -> unit

val export_route_to_experiments :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> Attr.set -> unit
(** Announce a neighbor-learned route to all experiments: next hop
    becomes the neighbor's virtual IP, path id its table id. *)

val export_withdraw_to_experiments :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> unit

val sync_experiment : Router_state.t -> Router_state.experiment_state -> unit
(** Full-table sync when an experiment session reaches Established (or on
    ROUTE-REFRESH). *)

val send_to_mesh : Router_state.t -> Msg.update -> unit

val export_route_to_mesh :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> Attr.set -> unit
(** Announce toward the mesh with the neighbor's global IP as next hop
    (§4.4). *)

val export_withdraw_to_mesh :
  Router_state.t -> Router_state.neighbor_state -> Prefix.t -> unit

val process_neighbor_update :
  Router_state.t -> neighbor_id:int -> Msg.update -> unit
(** The full vBGP ingress pipeline: per-neighbor RIB and FIB maintenance,
    next-hop rewriting, ADD-PATH export to experiments, backbone export. *)

val add_neighbor :
  Router_state.t ->
  asn:Asn.t ->
  ip:Ipv4.t ->
  kind:Neighbor.kind ->
  remote_id:Ipv4.t ->
  ?latency:float ->
  ?deliver:(Ipv4_packet.t -> unit) ->
  unit ->
  int * Bgp_wire.pair
(** Register a real BGP neighbor; returns its table id and the session
    pair (the caller drives the remote, active side). *)

val set_neighbor_deliver :
  Router_state.t -> neighbor_id:int -> (Ipv4_packet.t -> unit) -> unit
