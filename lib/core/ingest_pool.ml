(* The parallel Control_in ingest lane (the second half of ROADMAP
   item 1, complementing [Shard]'s data plane): N worker domains, each
   owning the wire decode, attribute intern, and Adj-RIB-In maintenance
   for a fixed subset of neighbors, feeding the single-writer tick
   reconciliation.

   Design in one paragraph: updates are dispatched to per-domain input
   queues by hashing the neighbor id, so every update from a neighbor
   lands on the same domain and all per-neighbor state — the Adj-RIB-In
   table, the GR stale set — stays single-writer by construction. Before
   waking the workers, the coordinator captures a {!target} per queued
   neighbor (table, peer identity, current stale set), which is also the
   point where a mid-churn session kill or GR retention becomes visible
   to the lane. Each worker then replays [Control_in.process_neighbor_-
   update]'s ingest steps against its own neighbors in dispatch order:
   decode the wire message, intern the attribute set once per update
   (through a per-domain {!Attr_arena.Front} cache, so the striped arena
   lock is rarely touched), unmark GR stale entries, apply RIB
   withdraw/update, and emit a (neighbor, prefix, delta) record into the
   domain's staging queue. The coordinator blocks until every worker is
   done (the same Mutex/Condition parking protocol as [Shard] — the
   done-handshake is the happens-before edge publishing all worker
   writes), then {!consume} replays staging in domain order: FIB writes,
   dirty-queue marks for the PR 6 per-tick flush, and counter folds —
   everything that touches shared router state stays on the single
   writer.

   Determinism (what the differential suite pins): per-neighbor update
   order is preserved (same domain, FIFO queue), per-neighbor RIB/GR
   state is disjoint across domains, the FIB replay applies a neighbor's
   deltas in its processing order, and the dirty queue is a set whose
   flush sorts by (neighbor id, prefix) — so the RIB/FIB/heard/export
   fingerprints and every counter are bit-identical to the sequential
   batched path, whatever the interleaving of domains. Arena ids may be
   assigned in a different order across runs, but no fingerprint depends
   on id values (grouping iterates first-seen over sorted prefixes and
   compares canonical sets). *)

open Netcore
open Bgp

(* -- partitioning ------------------------------------------------------------ *)

(* Deterministic hash of a neighbor id onto a domain index. Determinism
   is load-bearing: it makes per-neighbor state single-writer and keeps
   differential runs reproducible. *)
let domain_of_neighbor ~workers nid =
  if workers <= 1 then 0
  else begin
    let h = (nid + 0x61c88647) * 0x9e3779b1 in
    (h lxor (h lsr 16)) land max_int mod workers
  end

(* -- what flows through the lane --------------------------------------------- *)

(* An input item: a raw wire message (the worker owns the decode — the
   dominant ingest cost) or an already-decoded update (session-delivered
   batches). *)
type payload = Wire of string | Update of Msg.update

(* Per-drain view of one neighbor, captured by the coordinator from live
   router state immediately before the workers run (so session kills, GR
   retentions and resyncs between batches are always reflected). The
   stale table is the live GR hold: the owning worker unmarks it
   directly — exactly one domain touches a given neighbor's set. *)
type target = {
  tg_id : int;
  tg_peer_ip : Ipv4.t;
  tg_peer_asn : Asn.t;
  tg_rib : Rib.Table.t;
  tg_gr : (Prefix.t, unit) Hashtbl.t option;
}

(* A staged route delta: what the coordinator must replay against shared
   state. [D_withdraw] carries whether the withdraw changed the best
   route (the sequential path only marks the dirty queue in that case);
   the FIB remove itself is unconditional, mirroring
   [process_neighbor_update]. *)
type delta = D_withdraw of bool | D_install of Rib.Fib.entry

type staged = { sg_nid : int; sg_prefix : Prefix.t; sg_delta : delta }

(* -- per-domain state -------------------------------------------------------- *)

type dom = {
  d_front : Attr_arena.Front.cache;
  d_targets : (int, target) Hashtbl.t;
      (** rebuilt by the coordinator before every drain *)
  mutable d_q : (int * payload) array;
  mutable d_qlen : int;
  mutable d_qmax : int;  (** lifetime high-water mark (diagnostics) *)
  mutable d_staged : staged list;  (** reversed; drained on [consume] *)
  mutable d_staged_n : int;
  mutable d_updates : int;  (** UPDATEs processed this drain *)
  mutable d_decode_errors : int;
}

(* Worker parking protocol — identical to [Shard]: persistent domains
   sleep on [cond] between drains; all [w_state] transitions happen
   under [lock], which doubles as the happens-before edge for the plain
   per-domain fields. *)
type wstate = W_idle | W_work of float | W_done | W_quit

type t = {
  workers : int;
  doms : dom array;
  lock : Mutex.t;
  cond : Condition.t;
  w_state : wstate array;  (** one slot per worker, [workers - 1] long *)
  mutable handles : unit Domain.t array;  (** [ [||] ] = not spawned *)
  mutable errors : int;  (** cumulative decode errors (folded on consume) *)
}

let dummy_item = (-1, Update (Msg.update ()))

let make_dom () =
  {
    d_front = Attr_arena.Front.create ();
    d_targets = Hashtbl.create 16;
    d_q = Array.make 256 dummy_item;
    d_qlen = 0;
    d_qmax = 0;
    d_staged = [];
    d_staged_n = 0;
    d_updates = 0;
    d_decode_errors = 0;
  }

let create ~workers () =
  if workers < 1 then invalid_arg "Ingest_pool.create: workers must be >= 1";
  {
    workers;
    doms = Array.init workers (fun _ -> make_dom ());
    lock = Mutex.create ();
    cond = Condition.create ();
    w_state = Array.make (workers - 1) W_idle;
    handles = [||];
    errors = 0;
  }

let worker_count t = t.workers

(* -- dispatch ---------------------------------------------------------------- *)

let push d item =
  if d.d_qlen = Array.length d.d_q then begin
    let bigger = Array.make (2 * Array.length d.d_q) dummy_item in
    Array.blit d.d_q 0 bigger 0 d.d_qlen;
    d.d_q <- bigger
  end;
  d.d_q.(d.d_qlen) <- item;
  d.d_qlen <- d.d_qlen + 1;
  if d.d_qlen > d.d_qmax then d.d_qmax <- d.d_qlen

let dispatch t ~nid payload =
  push t.doms.(domain_of_neighbor ~workers:t.workers nid) (nid, payload)

let queued t = Array.fold_left (fun acc d -> acc + d.d_qlen) 0 t.doms

(* -- worker: one update ------------------------------------------------------ *)

(* Replay of [Control_in.process_neighbor_update]'s batched ingest steps
   against worker-owned state, with the shared-state writes (FIB, dirty
   queue, counters) emitted as staging records instead of performed.
   Per-NLRI behavior must stay exactly in step with the sequential path —
   including the GR unmark firing for *every* NLRI (a re-announcement
   identical to the installed route refreshes the stale mark even though
   it installs nothing) and the unconditional FIB remove on withdraw. *)
let process d ~now nid payload =
  let tg = Hashtbl.find d.d_targets nid in
  let u =
    match payload with
    | Update u -> Some u
    | Wire bytes -> (
        match Codec.decode bytes with
        | Ok (Msg.Update u) -> Some u
        | Ok _ -> None
        | Error _ ->
            d.d_decode_errors <- d.d_decode_errors + 1;
            None)
  in
  match u with
  | None -> ()
  | Some u ->
      d.d_updates <- d.d_updates + 1;
      let peer_ip = tg.tg_peer_ip in
      let gr_unmark prefix =
        match tg.tg_gr with
        | Some stale -> Hashtbl.remove stale prefix
        | None -> ()
      in
      let stage sg =
        d.d_staged <- sg :: d.d_staged;
        d.d_staged_n <- d.d_staged_n + 1
      in
      List.iter
        (fun (n : Msg.nlri) ->
          gr_unmark n.prefix;
          let best_changed =
            match
              Rib.Table.withdraw tg.tg_rib ~prefix:n.prefix ~peer_ip
                ~path_id:None
            with
            | Rib.Table.Best_changed _ -> true
            | Rib.Table.Unchanged -> false
          in
          stage
            { sg_nid = nid; sg_prefix = n.prefix; sg_delta = D_withdraw best_changed })
        u.withdrawn;
      if u.announced <> [] then begin
        let source = Rib.Route.source ~peer_ip ~peer_asn:tg.tg_peer_asn () in
        (* One intern per update, as in the sequential path — but through
           the domain's front cache, so repeats skip the arena lock. *)
        let attrs_h = Attr_arena.Front.intern d.d_front u.attrs in
        let entry = { Rib.Fib.next_hop = peer_ip; neighbor = tg.tg_id } in
        List.iter
          (fun (n : Msg.nlri) ->
            gr_unmark n.prefix;
            let unchanged =
              List.exists
                (fun (r : Rib.Route.t) ->
                  Rib.Route.key_matches ~peer_ip ~path_id:None r
                  && Attr_arena.equal (Rib.Route.attrs_handle r) attrs_h)
                (Rib.Table.candidates tg.tg_rib n.prefix)
            in
            if not unchanged then begin
              let route =
                Rib.Route.make_h ~learned_at:now ~prefix:n.prefix ~attrs_h
                  ~source ()
              in
              ignore (Rib.Table.update tg.tg_rib route);
              stage
                { sg_nid = nid; sg_prefix = n.prefix; sg_delta = D_install entry }
            end)
          u.announced
      end

let worker d ~now =
  for i = 0 to d.d_qlen - 1 do
    let nid, payload = d.d_q.(i) in
    process d ~now nid payload
  done;
  (* Drop item references so the queue doesn't pin wire buffers alive. *)
  Array.fill d.d_q 0 d.d_qlen dummy_item;
  d.d_qlen <- 0

let worker_loop t i =
  let d = t.doms.(i + 1) in
  Mutex.lock t.lock;
  let rec loop () =
    match t.w_state.(i) with
    | W_idle | W_done ->
        Condition.wait t.cond t.lock;
        loop ()
    | W_quit -> Mutex.unlock t.lock
    | W_work now ->
        Mutex.unlock t.lock;
        worker d ~now;
        Mutex.lock t.lock;
        t.w_state.(i) <- W_done;
        Condition.broadcast t.cond;
        loop ()
  in
  loop ()

(* -- drain ------------------------------------------------------------------- *)

(* Process everything queued. [resolve] maps a neighbor id to its target,
   reading *live* router state — the coordinator installs targets for
   every queued neighbor before any worker wakes, and raises on an
   unknown id (the sequential path does the same). The caller must
   quiesce control mutation for the duration: workers run concurrently
   with each other, never with the engine or session callbacks. *)
let drain t ~now ~resolve =
  Array.iter
    (fun d ->
      Hashtbl.reset d.d_targets;
      for i = 0 to d.d_qlen - 1 do
        let nid, _ = d.d_q.(i) in
        if not (Hashtbl.mem d.d_targets nid) then
          match resolve nid with
          | Some tg -> Hashtbl.replace d.d_targets nid tg
          | None -> invalid_arg "Router.ingest_updates: unknown neighbor"
      done)
    t.doms;
  if t.workers = 1 then worker t.doms.(0) ~now
  else begin
    if Array.length t.handles = 0 then
      t.handles <-
        Array.init (t.workers - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop t i));
    Mutex.lock t.lock;
    for i = 0 to t.workers - 2 do
      t.w_state.(i) <- W_work now
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    worker t.doms.(0) ~now;
    Mutex.lock t.lock;
    for i = 0 to t.workers - 2 do
      while t.w_state.(i) <> W_done do
        Condition.wait t.cond t.lock
      done;
      t.w_state.(i) <- W_idle
    done;
    Mutex.unlock t.lock
  end

(* -- reconciliation ---------------------------------------------------------- *)

(* Replay the drain's staging records on the coordinator, in domain order
   and per-domain FIFO order (so each neighbor's deltas apply in its
   processing order — cross-neighbor order is irrelevant: per-neighbor
   FIB tables are disjoint and the dirty queue is an unordered set).
   Runs after [drain] observed every worker's [W_done] under the lock,
   which establishes the happens-before edge for the plain fields. *)
let consume t ~apply ~updates =
  let upd = ref 0 in
  Array.iter
    (fun d ->
      upd := !upd + d.d_updates;
      d.d_updates <- 0;
      t.errors <- t.errors + d.d_decode_errors;
      d.d_decode_errors <- 0;
      List.iter
        (fun sg -> apply ~nid:sg.sg_nid ~prefix:sg.sg_prefix sg.sg_delta)
        (List.rev d.d_staged);
      d.d_staged <- [];
      d.d_staged_n <- 0)
    t.doms;
  if !upd > 0 then updates !upd

(* -- shutdown ---------------------------------------------------------------- *)

(* Join the worker domains (each live domain counts against the runtime's
   limit). Idempotent; the next multi-worker [drain] respawns
   transparently — queues, staging and caches live in [doms] and
   survive. *)
let shutdown t =
  if Array.length t.handles > 0 then begin
    Mutex.lock t.lock;
    Array.iteri (fun i _ -> t.w_state.(i) <- W_quit) t.w_state;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.handles;
    t.handles <- [||];
    Array.iteri (fun i _ -> t.w_state.(i) <- W_idle) t.w_state
  end

(* -- observability ----------------------------------------------------------- *)

type stats = {
  front_hits : int;
  front_misses : int;
  decode_errors : int;
  staging_residual : int;
  queue_depth_max : int array;
}

let stats t =
  let fh = ref 0 and fm = ref 0 and residual = ref 0 in
  Array.iter
    (fun d ->
      fh := !fh + Attr_arena.Front.hits d.d_front;
      fm := !fm + Attr_arena.Front.misses d.d_front;
      residual := !residual + d.d_staged_n)
    t.doms;
  {
    front_hits = !fh;
    front_misses = !fm;
    decode_errors = t.errors;
    staging_residual = !residual;
    queue_depth_max = Array.map (fun d -> d.d_qmax) t.doms;
  }

let zero_stats =
  {
    front_hits = 0;
    front_misses = 0;
    decode_errors = 0;
    staging_residual = 0;
    queue_depth_max = [||];
  }
