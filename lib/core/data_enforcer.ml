(* The data-plane enforcement engine (paper §3.3): the eBPF-analog filter
   chain that inspects every experiment packet before it reaches the
   Internet. Filters can be stateless or stateful (they keep their own
   state, like an eBPF map) and return a verdict per packet. The built-in
   policies mirror PEERING's: source-address validation (no spoofing, no
   transiting foreign traffic) and per-PoP/per-neighbor traffic shaping.

   The chain is split for the data plane's flow cache: the maximal
   leading run of [stateless] filters (the "head") produces a verdict
   that depends only on the flow key — source MAC, source and destination
   address, ingress attribution — and filter config, so it can be
   memoized per flow. Everything from the first stateful filter onward
   (the "tail", e.g. the token-bucket shaper) must run on every packet,
   cache hit or not. [check_resolve] reports whether the head's verdict
   is cacheable; [check_tail]/[replay_block] are the per-hit halves. *)

open Netcore

type verdict =
  | Allow
  | Block of string
  | Transform of Ipv4_packet.t  (** rewrite, then continue down the chain *)

(* Where a packet entered the platform; filters use it for attribution
   (e.g. matching the source address against the sending experiment). *)
type meta = { ingress : string }

type filter = {
  name : string;
  stateless : bool;
  apply : now:float -> meta:meta -> Ipv4_packet.t -> verdict;
  mutable f_allowed : int;
  mutable f_blocked : int;
  fresh : (unit -> filter) option;
      (** build an independent instance with private state (sharded data
          plane); [None] means the apply closure holds no mutable state
          and may be shared across replicas *)
}

let filter ?(stateless = false) ?fresh ~name apply =
  { name; stateless; apply; f_allowed = 0; f_blocked = 0; fresh }

let filter_name f = f.name
let filter_is_stateless f = f.stateless
let filter_counts f = (f.f_allowed, f.f_blocked)
let apply_filter f = f.apply

(* An independent instance of [f] for a worker domain: private state
   (via the filter's [fresh] constructor when it has one), zeroed
   per-filter counters. A stateful filter built without [~fresh] falls
   back to sharing the apply closure — correct for pure-but-per-packet
   filters like [ttl_guard]'s shape, unsafe for closures with interior
   mutable state, which is why the built-in stateful filters here all
   provide [fresh]. *)
let replicate f =
  match f.fresh with
  | Some make -> make ()
  | None -> { f with f_allowed = 0; f_blocked = 0 }

type t = {
  mutable rev_filters : filter list;  (** newest first: O(1) insertion *)
  mutable ordered : filter list;  (** insertion order; rebuilt lazily *)
  mutable head : filter list;  (** maximal stateless prefix of [ordered] *)
  mutable tail : filter list;  (** first stateful filter onward *)
  mutable chain_dirty : bool;
  mutable generation : int;  (** bumped on every chain change *)
  trace : Sim.Trace.t option;
  mutable allowed : int;
  mutable blocked : int;
}

let create ?trace () =
  {
    rev_filters = [];
    ordered = [];
    head = [];
    tail = [];
    chain_dirty = false;
    generation = 0;
    trace;
    allowed = 0;
    blocked = 0;
  }

(* Filters accumulate newest-first (appending to the ordered list per add
   is quadratic in chain length); the ordered chain and its
   stateless-head/stateful-tail split are rebuilt once per change. *)
let refresh t =
  if t.chain_dirty then begin
    let ordered = List.rev t.rev_filters in
    let rec split acc = function
      | f :: rest when f.stateless -> split (f :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let head, tail = split [] ordered in
    t.ordered <- ordered;
    t.head <- head;
    t.tail <- tail;
    t.chain_dirty <- false
  end

let add_filter t f =
  t.rev_filters <- f :: t.rev_filters;
  t.chain_dirty <- true;
  t.generation <- t.generation + 1

let filters t =
  refresh t;
  List.map (fun f -> f.name) t.ordered

let stats t = (t.allowed, t.blocked)

let head_filters t =
  refresh t;
  t.head

let tail_filters t =
  refresh t;
  t.tail

let filter_stats t =
  refresh t;
  List.map (fun f -> (f.name, f.f_allowed, f.f_blocked)) t.ordered

let generation t = t.generation

(* Anti-spoofing: the source address must belong to the experiment sending
   the packet (which also prevents transiting foreign traffic). [owner_of]
   maps an address to the owning experiment, if any; the ingress metadata
   identifies the sender. The verdict depends only on the source address
   and the ingress — both flow-key fields — so it is stateless. *)
let source_validation ~owner_of () =
  filter ~stateless:true ~name:"source-validation"
    (fun ~now:_ ~meta (p : Ipv4_packet.t) ->
      match owner_of p.src with
      | None ->
          Block
            (Fmt.str "spoofed source %a: not experiment space" Ipv4.pp p.src)
      | Some owner ->
          if String.equal meta.ingress owner then Allow
          else
            Block
              (Fmt.str "source %a belongs to %s, not sender %s" Ipv4.pp p.src
                 owner meta.ingress))

(* Token-bucket traffic shaping (bytes/second with a burst allowance),
   keyed by an arbitrary packet classifier: one bucket per PoP, neighbor,
   or experiment as desired. Stateful by nature — it must debit tokens on
   every packet, cached flow or not.

   Buckets idle longer than [idle_horizon] seconds are evicted when a new
   key first appears (an idle bucket is at full burst anyway, which is
   exactly the state a fresh one starts in), so a churning key space —
   one bucket per experiment flow, say — no longer grows the table
   forever. *)
let shaper ~name ~rate ~burst ?(idle_horizon = 300.) ~key_of () =
  (* The bucket table lives inside [make] so every replica (one per
     worker domain under sharding) owns a private one; with per-flow keys
     and flow-to-domain affinity each bucket still has a single writer. *)
  let rec make () =
    let buckets : (string, float ref * float ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let evict_idle now =
      let dead =
        Hashtbl.fold
          (fun key (_, last) acc ->
            if now -. !last > idle_horizon then key :: acc else acc)
          buckets []
      in
      List.iter (Hashtbl.remove buckets) dead
    in
    filter ~name ~fresh:make (fun ~now ~meta:_ (p : Ipv4_packet.t) ->
        let key = key_of p in
        let tokens, last =
          match Hashtbl.find_opt buckets key with
          | Some b -> b
          | None ->
              evict_idle now;
              let b = (ref burst, ref now) in
              Hashtbl.replace buckets key b;
              b
        in
        tokens := Float.min burst (!tokens +. ((now -. !last) *. rate));
        last := now;
        let size =
          float_of_int (Ipv4_packet.header_size + String.length p.payload)
        in
        if !tokens >= size then begin
          tokens := !tokens -. size;
          Allow
        end
        else Block (Fmt.str "rate limit exceeded for %s" key))
  in
  make ()

(* TTL sanity: refuse packets that would expire inside the platform. Keeps
   no state, but the verdict depends on the TTL — which is not part of the
   flow key — so it must run per packet and is NOT flagged stateless. *)
let ttl_guard ?(min_ttl = 2) () =
  filter ~name:"ttl-guard" (fun ~now:_ ~meta:_ (p : Ipv4_packet.t) ->
      if p.ttl < min_ttl then Block (Fmt.str "ttl %d too small" p.ttl)
      else Allow)

type decision = Allowed of Ipv4_packet.t | Blocked of string

type resolution =
  | Cacheable_allow
  | Cacheable_block of filter * string
  | Uncacheable

type tail_decision =
  | Tail_pass
  | Tail_rewritten of Ipv4_packet.t
  | Tail_blocked of string

let log t ~now reason =
  match t.trace with
  | Some trace ->
      Sim.Trace.record trace ~time:now ~category:"data" "blocked: %s" reason
  | None -> ()

(* Run [chain] to a decision, bumping the global and per-filter counters
   exactly as the historical single-chain [check] did (a Transform counts
   as that filter allowing the packet onward). *)
let rec run_chain t ~now ~meta packet = function
  | [] ->
      t.allowed <- t.allowed + 1;
      Allowed packet
  | f :: rest -> (
      match f.apply ~now ~meta packet with
      | Allow ->
          f.f_allowed <- f.f_allowed + 1;
          run_chain t ~now ~meta packet rest
      | Block reason ->
          f.f_blocked <- f.f_blocked + 1;
          t.blocked <- t.blocked + 1;
          log t ~now reason;
          Blocked reason
      | Transform packet ->
          f.f_allowed <- f.f_allowed + 1;
          run_chain t ~now ~meta packet rest)

let check t ~now ~meta packet =
  refresh t;
  run_chain t ~now ~meta packet t.ordered

(* [check], plus a report of whether the stateless head alone determined
   the flow's fate: a head block is cacheable (replayed per hit via
   [replay_block]); a head pass is cacheable (the tail re-runs per hit);
   a head Transform rewrites the packet based on per-packet content, so
   nothing about the flow may be memoized. *)
let check_resolve t ~now ~meta packet =
  refresh t;
  let rec head_walk packet = function
    | [] -> (run_chain t ~now ~meta packet t.tail, Cacheable_allow)
    | f :: rest -> (
        match f.apply ~now ~meta packet with
        | Allow ->
            f.f_allowed <- f.f_allowed + 1;
            head_walk packet rest
        | Block reason ->
            f.f_blocked <- f.f_blocked + 1;
            t.blocked <- t.blocked + 1;
            log t ~now reason;
            (Blocked reason, Cacheable_block (f, reason))
        | Transform packet ->
            f.f_allowed <- f.f_allowed + 1;
            (* The rare uncacheable path: finish the remaining head and
               the tail as one chain (the append only happens here). *)
            (run_chain t ~now ~meta packet (rest @ t.tail), Uncacheable))
  in
  head_walk packet t.head

(* Replay a memoized head block for one cache hit: identical counter and
   trace effects to the head walk that produced it — the filters before
   the blocker allowed the packet, the blocker blocked it. *)
let replay_block t ~now blocker reason =
  refresh t;
  let rec credit = function
    | f :: rest when f != blocker ->
        f.f_allowed <- f.f_allowed + 1;
        credit rest
    | _ -> ()
  in
  credit t.head;
  blocker.f_blocked <- blocker.f_blocked + 1;
  t.blocked <- t.blocked + 1;
  log t ~now reason

(* The per-hit half of a memoized head pass: credit the head filters and
   run the stateful tail. The packet record is only materialized when a
   tail actually exists; a fully stateless chain touches nothing but
   counters. A tail Transform surfaces as [Tail_rewritten] so the caller
   can fall back to the slow path (the rewrite may change the flow's
   destination). *)
let check_tail t ~now ~meta view =
  refresh t;
  List.iter (fun f -> f.f_allowed <- f.f_allowed + 1) t.head;
  match t.tail with
  | [] ->
      t.allowed <- t.allowed + 1;
      Tail_pass
  | tail -> (
      let packet = Ipv4_packet.View.to_packet view in
      match run_chain t ~now ~meta packet tail with
      | Allowed p when p == packet -> Tail_pass
      | Allowed p -> Tail_rewritten p
      | Blocked reason -> Tail_blocked reason)

(* Run a standalone (replica) filter list to a decision, crediting the
   replicas' own per-filter counters — the worker-domain analog of
   [run_chain], minus the chain-global counters and trace (those are
   aggregated by the shard layer on snapshot). *)
let rec run_replica_chain ~now ~meta packet = function
  | [] -> Allowed packet
  | f :: rest -> (
      match f.apply ~now ~meta packet with
      | Allow ->
          f.f_allowed <- f.f_allowed + 1;
          run_replica_chain ~now ~meta packet rest
      | Block reason ->
          f.f_blocked <- f.f_blocked + 1;
          Blocked reason
      | Transform packet ->
          f.f_allowed <- f.f_allowed + 1;
          run_replica_chain ~now ~meta packet rest)
