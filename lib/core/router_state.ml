(* The state record shared by the vBGP router's plane modules (paper §3).

   The router is split along the paper's planes — [Control_in] (routes
   from neighbors toward experiments), [Control_out] (experiment
   announcements toward neighbors and the mesh), [Data_plane] (frames on
   the experiment LAN), [Backbone] (the inter-PoP segment and mesh
   sessions) — with [Router] as the facade. All of them operate on the
   single [t] defined here; this module owns the record, its
   constructor, and the read-only inspection surface. *)

open Netcore
open Bgp
open Sim

(* -- per-peer state ------------------------------------------------------- *)

(* Graceful-restart retention (RFC 4724 shape): when a session drops for
   a transient reason and both sides negotiated GR, the routes learned
   from the peer stay installed but are marked stale. A re-announcement
   clears the mark; the peer's End-of-RIB sweeps whatever is left; the
   restart timer expiring falls back to the hard drop. *)
type 'k gr_hold = {
  stale : ('k, unit) Hashtbl.t;
  mutable cancel_expiry : unit -> unit;
}

let gr_hold_of_keys keys =
  let stale = Hashtbl.create (max 16 (List.length keys)) in
  List.iter (fun k -> Hashtbl.replace stale k ()) keys;
  { stale; cancel_expiry = ignore }

let gr_unmark hold key =
  match hold with Some h -> Hashtbl.remove h.stale key | None -> ()

type variant = {
  v_path_id : int;  (** experiment-chosen ADD-PATH id (0 when absent) *)
  v_attrs : Attr_arena.handle;
      (** post-enforcement, control communities intact; interned so
          identical announcements share one set and compare in O(1) *)
}

type experiment_state = {
  grant : Control_enforcer.grant;
  exp_session : Session.t;
  exp_mac : Mac.t;  (** experiment's station on the experiment LAN *)
  g_ip : Ipv4.t;  (** global-pool identity for cross-PoP delivery *)
  g_idx : int;
  routes : (Prefix.t, variant list ref) Hashtbl.t;
  routes_v6 : (Prefix_v6.t, variant list ref) Hashtbl.t;
      (** IPv6 announcements (MP-BGP); control plane only *)
  mutable exp_synced : bool;
  mutable exp_gr : (Prefix.t * int) gr_hold option;
      (** stale (prefix, path id) variants across a graceful drop *)
  mutable exp_gr_v6 : (Prefix_v6.t * int) gr_hold option;
  (* PlanetFlow-style attribution (§3.1): per-experiment traffic totals. *)
  mutable att_packets_out : int;
  mutable att_bytes_out : int;
  mutable att_packets_in : int;
}

(* -- the data-plane flow cache -------------------------------------------- *)

(* The composite per-flow forwarding decision memoized by the flow cache
   (one cache per neighbor table, keyed by the frame's source MAC and the
   packet's source and destination addresses). An entry is served only
   while all three generation stamps still match their sources: the
   neighbor FIB's destination-cache generation (route churn), the
   enforcement chain's config generation (filter changes), and the owner
   cache's generation (experiment announcements, withdrawals, and
   attachment — which also covers ingress attribution). A stale stamp
   sends the packet back through the slow path, which re-stores. *)
type flow_action =
  | Fblock of Data_enforcer.filter * string
      (** a stateless head filter blocked the flow; replayed per hit for
          identical counters and trace *)
  | Fforward of Rib.Fib.entry
  | Fnofib  (** no route in the neighbor table: drop *)

type flow_entry = {
  f_action : flow_action;
  f_exp : experiment_state option;  (** sender, for traffic attribution *)
  f_ingress : string;  (** memoized ingress label (avoids per-hit fmt) *)
  f_fib_gen : int;
  f_enf_gen : int;
  f_owner_gen : int;
}

type neighbor_state = {
  info : Neighbor.t;
  rib_in : Rib.Table.t;
  mutable session : Session.t option;  (** None for backbone aliases *)
  mutable deliver : Ipv4_packet.t -> unit;
      (** hand an outbound packet to the (real) neighbor *)
  export_id : int;  (** platform-global id used in export-control tags *)
  mutable gr : Prefix.t gr_hold option;
      (** stale retention across a graceful session drop *)
  flows : (Mac.t * Ipv4.t * Ipv4.t, flow_entry) Hashtbl.t;
      (** the data-plane flow cache over this neighbor's table *)
}

type mesh_peer = {
  pop_name : string;
  mesh_session : Session.t;
  mutable mesh_gr : (int * Prefix.t) gr_hold option;
      (** stale (path id, prefix) imports across a graceful mesh drop *)
}

type mesh_import =
  | Ialias of { alias_id : int }
      (** a remote neighbor's route; the alias carries its traffic *)
  | Iremote_exp of { prefix : Prefix.t }

type owner =
  | Local_exp of string
  | Remote_exp of { pop : string; via_global : Ipv4.t }

type counters = {
  mutable updates_from_neighbors : int;
  mutable updates_from_experiments : int;
  mutable updates_from_mesh : int;
  mutable packets_to_neighbors : int;
  mutable packets_to_experiments : int;
  mutable packets_over_backbone : int;
  mutable packets_dropped : int;
  mutable icmp_sent : int;
  mutable reexport_computations : int;
      (** neighbor-facing attribute-set computations performed by
          re-export: one per distinct variant per flush (the
          update-group cache), however many prefixes, neighbors or
          updates the burst touched *)
  mutable gr_retentions : int;
      (** session drops answered with stale retention instead of a drop *)
  mutable gr_expiries : int;
      (** restart windows that expired into the hard-drop path *)
  mutable updates_to_neighbors : int;
      (** UPDATE messages sent to neighbors (after NLRI packing) *)
  mutable nlri_to_neighbors : int;
      (** NLRI (announce + withdraw) carried by those messages; the
          ratio nlri/updates is the packing ratio *)
  mutable updates_to_experiments : int;
      (** UPDATE messages sent to experiments (after NLRI packing) *)
  mutable nlri_to_experiments : int;
  mutable updates_to_mesh : int;
      (** UPDATE messages sent over the backbone mesh (after packing) *)
  mutable nlri_to_mesh : int;
  mutable flow_hits : int;
      (** forwarded frames served by a memoized flow-cache decision *)
  mutable flow_misses : int;
      (** forwarded frames resolved through the slow path (cache cold,
          stamped out, or the flow is uncacheable) *)
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  name : string;  (** PoP name, e.g. "amsterdam01" *)
  asn : Asn.t;  (** the platform (mux) ASN prepended on neighbor export *)
  router_id : Ipv4.t;
  primary_ip : Ipv4.t;  (** sources ICMP errors (paper §5) *)
  v6_next_hop : Ipv6.t;
      (** the router's IPv6 next hop as seen by neighbors (PEERING's /32) *)
  mutable exp_lan : Lan.t;
  router_mac : Mac.t;
  mutable bb : Arp_client.t option;  (** backbone segment attachment *)
  local_pool : Addr_pool.t;
  global_pool : Addr_pool.t;  (** shared across all PoPs *)
  control : Control_enforcer.t;
  data : Data_enforcer.t;
  fibs : Rib.Fib.Set.t;
  neighbors : (int, neighbor_state) Hashtbl.t;
  mutable next_neighbor_id : int;
  by_vmac : (Mac.t, int) Hashtbl.t;
  by_vip : (Ipv4.t, int) Hashtbl.t;
  by_global_ip : (Ipv4.t, int) Hashtbl.t;  (** local neighbors only *)
  alias_by_global : (Ipv4.t, int) Hashtbl.t;  (** remote neighbors *)
  experiments : (string, experiment_state) Hashtbl.t;
  by_exp_mac : (Mac.t, string) Hashtbl.t;
  mutable owner_trie : owner Ptrie.V4.t;
  owner_cache : owner Dcache.t;
      (** destination cache over [owner_trie]; mutate the trie only via
          [owner_insert]/[owner_remove] so the generation stays coherent *)
  mutable mesh : mesh_peer list;
  mesh_imports : (string * int, mesh_import) Hashtbl.t;
  remote_exp_routes :
    (string * int, Prefix.t * Attr_arena.handle * Ipv4.t) Hashtbl.t;
      (** (origin PoP, path id) -> announced prefix, attributes, and the
          origin's backbone address (the owner fallback when no local
          experiment announces the prefix) *)
  adj_out : (int, (Prefix.t, Attr_arena.handle) Hashtbl.t) Hashtbl.t;
      (** per-neighbor last-sent attributes (interned) *)
  (* The dirty-prefix re-export queue (drained by [Control_out]): updates
     mark prefixes dirty; one flush per engine tick recomputes each dirty
     prefix once per neighbor. *)
  dirty : (Prefix.t, unit) Hashtbl.t;
  dirty_v6 : (Prefix_v6.t, unit) Hashtbl.t;
  mutable reexport_scheduled : bool;
  (* The batched-ingest dirty queue (drained by [Control_in.flush_ingest]):
     neighbor and mesh ingest applies RIB/FIB writes in-band, marks
     (neighbor id, prefix) dirty, and defers the experiment/mesh export
     fan-out to one flush per engine tick, where each neighbor's batch
     leaves as packed multi-NLRI UPDATEs grouped by shared attribute
     set. *)
  dirty_in : (int * Prefix.t, unit) Hashtbl.t;
  mutable ingest_scheduled : bool;
  ingest_batching : bool;
      (** [false] restores the per-NLRI eager export path (the reference
          the differential tests compare batched ingest against) *)
  counters : counters;
  rng : Random.State.t;
      (** engine-seeded randomness (reconnect jitter); deterministic runs *)
  gr_restart_time : int;
      (** the restart window this router advertises (RFC 4724), seconds *)
  flow_cache_enabled : bool;
      (** serve forwarding decisions from the per-neighbor flow caches
          (off forces every frame through the slow path — the reference
          behavior differential tests compare against) *)
  domains : int;
      (** worker domains for the sharded data plane; 1 = the sequential
          path (the default, bit-identical to pre-sharding behavior) *)
  mutable pool : Shard.t option;  (** the worker pool when [domains > 1] *)
  parallel_ingest : int;
      (** worker domains for the parallel ingest lane; 1 = the
          sequential batched path (the default, bit-identical) *)
  mutable ingest_pool : Ingest_pool.t option;
      (** the ingest worker pool when [parallel_ingest > 1] *)
  parallel_export : int;
      (** worker domains for the parallel export lane; 1 = the
          sequential flush (the default, byte-identical on the wire) *)
  export_pool : Export_pool.t;
      (** always present: the single-lane pool is the sequential flush
          path itself (inline on the coordinator), so the encode-once
          wire cache and its stats are live on every router *)
  mutable shard_fp : int list;
      (** fingerprint of the control state captured by the last published
          snapshot; a publication happens only when it changes *)
}

let mesh_exp_id_base = 100_000

let mesh_path_id (e : experiment_state) v_path_id =
  mesh_exp_id_base + (e.g_idx * 64) + (v_path_id land 63)

let default_v6_next_hop = Ipv6.of_string_exn "2804:269c::1"

let create ~engine ?(trace = Trace.create ()) ~name ~asn ~router_id
    ~primary_ip ?(v6_next_hop = default_v6_next_hop) ~local_pool ~global_pool
    ?control ?data ?(flow_cache = true) ?(ingest_batching = true)
    ?(domains = 1) ?(parallel_ingest = 1) ?(parallel_export = 1) ?(seed = 42)
    ?(gr_restart_time = 120) () =
  if domains < 1 then invalid_arg "Router.create: domains must be >= 1";
  if domains > 1 && not flow_cache then
    invalid_arg "Router.create: the sharded data plane requires the flow cache";
  if parallel_ingest < 1 then
    invalid_arg "Router.create: parallel_ingest must be >= 1";
  if parallel_export < 1 then
    invalid_arg "Router.create: parallel_export must be >= 1";
  if parallel_ingest > 1 && not ingest_batching then
    invalid_arg
      "Router.create: the parallel ingest lane requires batched ingest";
  let control =
    match control with
    | Some c -> c
    | None -> Control_enforcer.create ~platform_asns:[ asn ] ~trace ()
  in
  let data =
    match data with Some d -> d | None -> Data_enforcer.create ~trace ()
  in
  {
    engine;
    trace;
    name;
    asn;
    router_id;
    primary_ip;
    v6_next_hop;
    exp_lan = Lan.create engine;
    router_mac = Mac.local ~pool:0xee (Hashtbl.hash name land 0xffffff);
    bb = None;
    local_pool = Addr_pool.create ~base:local_pool ~mac_pool:0x65;
    global_pool;
    control;
    data;
    fibs = Rib.Fib.Set.create ();
    neighbors = Hashtbl.create 32;
    next_neighbor_id = 1;
    by_vmac = Hashtbl.create 32;
    by_vip = Hashtbl.create 32;
    by_global_ip = Hashtbl.create 32;
    alias_by_global = Hashtbl.create 32;
    experiments = Hashtbl.create 8;
    by_exp_mac = Hashtbl.create 8;
    owner_trie = Ptrie.V4.empty;
    owner_cache = Dcache.create ();
    mesh = [];
    mesh_imports = Hashtbl.create 64;
    remote_exp_routes = Hashtbl.create 16;
    adj_out = Hashtbl.create 32;
    dirty = Hashtbl.create 64;
    dirty_v6 = Hashtbl.create 16;
    reexport_scheduled = false;
    dirty_in = Hashtbl.create 256;
    ingest_scheduled = false;
    ingest_batching;
    counters =
      {
        updates_from_neighbors = 0;
        updates_from_experiments = 0;
        updates_from_mesh = 0;
        packets_to_neighbors = 0;
        packets_to_experiments = 0;
        packets_over_backbone = 0;
        packets_dropped = 0;
        icmp_sent = 0;
        reexport_computations = 0;
        gr_retentions = 0;
        gr_expiries = 0;
        updates_to_neighbors = 0;
        nlri_to_neighbors = 0;
        updates_to_experiments = 0;
        nlri_to_experiments = 0;
        updates_to_mesh = 0;
        nlri_to_mesh = 0;
        flow_hits = 0;
        flow_misses = 0;
      };
    rng = Random.State.make [| seed; Hashtbl.hash name |];
    gr_restart_time;
    flow_cache_enabled = flow_cache;
    domains;
    pool = (if domains > 1 then Some (Shard.create ~domains ()) else None);
    parallel_ingest;
    ingest_pool =
      (if parallel_ingest > 1 then
         Some (Ingest_pool.create ~workers:parallel_ingest ())
       else None);
    parallel_export;
    export_pool = Export_pool.create ~workers:parallel_export ();
    shard_fp = [];
  }

let name t = t.name
let asn t = t.asn
let experiment_lan t = t.exp_lan
let router_mac t = t.router_mac
let counters t = t.counters
let trace t = t.trace
let control_enforcer t = t.control
let data_enforcer t = t.data
let fib_set t = t.fibs
let v6_next_hop t = t.v6_next_hop
let control_asn t = Control_enforcer.control_community_asn t.control

let log t fmt =
  Trace.record t.trace ~time:(Engine.now t.engine) ~category:"router" fmt

(* -- owner trie -------------------------------------------------------------- *)

(* All owner-trie mutation goes through these two, which keep the
   destination cache coherent by bumping its generation. *)

let owner_insert t prefix owner =
  t.owner_trie <- Ptrie.V4.add prefix owner t.owner_trie;
  Dcache.invalidate t.owner_cache

let owner_remove t prefix =
  let trie = Ptrie.V4.remove prefix t.owner_trie in
  if trie != t.owner_trie then begin
    t.owner_trie <- trie;
    Dcache.invalidate t.owner_cache
  end

(* Longest-prefix match of the owner of [ip], through the cache — the
   per-packet operation of [Data_plane.deliver_inbound]. *)
let owner_lookup t ip =
  match Dcache.find t.owner_cache ip with
  | Some cached -> cached
  | None ->
      let result =
        match Ptrie.lookup_v4 ip t.owner_trie with
        | Some (_, owner) -> Some owner
        | None -> None
      in
      Dcache.store t.owner_cache ip result;
      result

let neighbor t id = Hashtbl.find_opt t.neighbors id

(* -- sharded data-plane snapshot publication --------------------------------- *)

(* Everything a worker-domain snapshot derives from, reduced to a list of
   generation stamps: the enforcement chain's generation, the owner
   cache's (bumped by announcements, withdrawals, and experiment
   attachment — which also covers ingress attribution), the experiment
   station count, and each neighbor's (id, FIB generation). When none of
   these moved since the last publication, the published snapshot is
   still exact and republishing would only invalidate the worker caches
   for nothing. *)
let shard_fingerprint t =
  let per_neighbor =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.neighbors []
    |> List.sort Int.compare
    |> List.concat_map (fun id ->
           [ id; Rib.Fib.generation (Rib.Fib.Set.table t.fibs id) ])
  in
  Data_enforcer.generation t.data
  :: Dcache.generation t.owner_cache
  :: Hashtbl.length t.by_exp_mac
  :: per_neighbor

(* Publish a fresh control snapshot to the worker pool when anything it
   captures has changed. Called at every tick flush and lazily before
   each sharded drain; a no-op on single-domain routers. The snapshot
   tables are built fresh here and handed over immutably; the per-neighbor
   FIB tries are persistent values, so capturing the roots is O(neighbors)
   regardless of table size. *)
let shard_publish t =
  match t.pool with
  | None -> ()
  | Some pool ->
      let fp = shard_fingerprint t in
      if fp <> t.shard_fp then begin
        t.shard_fp <- fp;
        let vmac = Hashtbl.create (max 8 (Hashtbl.length t.by_vmac)) in
        Hashtbl.iter
          (fun mac id ->
            match neighbor t id with
            | None -> ()
            | Some ns ->
                Hashtbl.replace vmac mac
                  {
                    Shard.sn_id = id;
                    sn_alias = Neighbor.is_alias ns.info;
                    sn_trie = Rib.Fib.trie (Rib.Fib.Set.table t.fibs id);
                  })
          t.by_vmac;
        Shard.publish pool ~vmac ~exp_mac:(Hashtbl.copy t.by_exp_mac)
          ~head:(Data_enforcer.head_filters t.data)
          ~tail:(Data_enforcer.tail_filters t.data)
      end

let neighbor_states t =
  Hashtbl.fold (fun _ ns acc -> ns :: acc) t.neighbors []
  |> List.sort (fun a b -> Int.compare a.info.Neighbor.id b.info.Neighbor.id)

let real_neighbors t =
  List.filter (fun ns -> not (Neighbor.is_alias ns.info)) (neighbor_states t)

let experiment t name = Hashtbl.find_opt t.experiments name

let adj_out_table t neighbor_id =
  match Hashtbl.find_opt t.adj_out neighbor_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.adj_out neighbor_id tbl;
      tbl

(* Send a (possibly multi-NLRI) UPDATE to a neighbor, splitting it at the
   classic 4096-byte boundary, and account messages and NLRI for the
   packing-ratio counters. Lives here (not in [Control_out]) because both
   the outbound flush and [Control_in]'s resync path send packed
   updates. *)
let send_update_to_neighbor t ns (u : Msg.update) =
  match ns.session with
  | Some s when Session.established s ->
      List.iter
        (fun (piece : Msg.update) ->
          t.counters.updates_to_neighbors <-
            t.counters.updates_to_neighbors + 1;
          t.counters.nlri_to_neighbors <-
            t.counters.nlri_to_neighbors
            + List.length piece.Msg.announced
            + List.length piece.Msg.withdrawn;
          Session.send_update s piece)
        (Codec.split_update u)
  | _ -> ()

(* Experiment and mesh sessions negotiate ADD-PATH, so NLRIs carry 4
   extra bytes each; splitting must account for that or a full packed
   update would exceed the 4096-byte boundary on the wire. *)
let add_path_params = { Codec.add_path = true; as4 = true }

let send_update_to_experiment t (e : experiment_state) (u : Msg.update) =
  if Session.established e.exp_session then
    List.iter
      (fun (piece : Msg.update) ->
        t.counters.updates_to_experiments <-
          t.counters.updates_to_experiments + 1;
        t.counters.nlri_to_experiments <-
          t.counters.nlri_to_experiments
          + List.length piece.Msg.announced
          + List.length piece.Msg.withdrawn;
        Session.send_update e.exp_session piece)
      (Codec.split_update ~params:add_path_params u)

let send_update_to_mesh t (u : Msg.update) =
  match t.mesh with
  | [] -> ()
  | mesh ->
      let pieces = Codec.split_update ~params:add_path_params u in
      List.iter
        (fun m ->
          if Session.established m.mesh_session then
            List.iter
              (fun (piece : Msg.update) ->
                t.counters.updates_to_mesh <- t.counters.updates_to_mesh + 1;
                t.counters.nlri_to_mesh <-
                  t.counters.nlri_to_mesh
                  + List.length piece.Msg.announced
                  + List.length piece.Msg.withdrawn;
                Session.send_update m.mesh_session piece)
              pieces)
        mesh

(* -- NLRI grouping ----------------------------------------------------------- *)

(* Accumulates NLRIs per interned attribute set in first-seen order. Every
   batched export path (the ingest flush, experiment full-table sync, mesh
   sync) uses this to leave one packed multi-NLRI UPDATE per shared
   attribute set instead of one message per prefix. *)
type nlri_groups = {
  ng_tbl : (int, Attr_arena.handle * Msg.nlri list ref) Hashtbl.t;
      (* arena id -> (handle, reversed NLRIs) *)
  mutable ng_order : int list;  (* arena ids, reversed first-seen *)
}

let nlri_groups_create () = { ng_tbl = Hashtbl.create 8; ng_order = [] }

let nlri_groups_add g h nlri =
  let hid = Attr_arena.id h in
  match Hashtbl.find_opt g.ng_tbl hid with
  | Some (_, nlris) -> nlris := nlri :: !nlris
  | None ->
      Hashtbl.replace g.ng_tbl hid (h, ref [ nlri ]);
      g.ng_order <- hid :: g.ng_order

let nlri_groups_iter g f =
  List.iter
    (fun hid ->
      match Hashtbl.find_opt g.ng_tbl hid with
      | Some (h, nlris) -> f h (List.rev !nlris)
      | None -> ())
    (List.rev g.ng_order)

let session_capabilities ?(add_path = false) t =
  let base =
    [
      Capability.Multiprotocol
        { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
      Capability.Multiprotocol
        { afi = Capability.afi_ipv6; safi = Capability.safi_unicast };
      Capability.As4 t.asn;
      Capability.Graceful_restart
        {
          restart_time = t.gr_restart_time;
          afis =
            [
              (Capability.afi_ipv4, Capability.safi_unicast);
              (Capability.afi_ipv6, Capability.safi_unicast);
            ];
        };
    ]
  in
  if add_path then
    base
    @ [
        Capability.Add_path
          [
            ( Capability.afi_ipv4,
              Capability.safi_unicast,
              Capability.Send_receive );
          ];
      ]
  else base

(* The reconnect policy every platform-owned session uses: capped
   exponential backoff with jitter from this router's RNG, so runs stay
   reproducible while peers avoid lock-step retries. *)
let reconnect_policy t =
  Session.reconnect_policy ~backoff_base:0.5 ~backoff_max:30. ~jitter:t.rng ()

(* -- inspection -------------------------------------------------------------- *)

(* Total routes across all per-neighbor RIBs. *)
let route_count t =
  List.fold_left
    (fun acc ns -> acc + Rib.Table.route_count ns.rib_in)
    0 (neighbor_states t)

let fib_entry_count t = Rib.Fib.Set.total_entries t.fibs

(* Memory footprint (bytes) of control-plane state (RIBs). *)
let control_plane_bytes t =
  let words =
    List.fold_left
      (fun acc ns -> acc + Obj.reachable_words (Obj.repr ns.rib_in))
      0 (neighbor_states t)
  in
  words * (Sys.word_size / 8)

(* Memory footprint (bytes) of per-neighbor FIBs. *)
let data_plane_bytes t = Rib.Fib.Set.memory_bytes t.fibs

(* PlanetFlow-style attribution (§3.1): per-experiment traffic totals as
   (experiment, packets out, bytes out, packets in). *)
let attribution t =
  Hashtbl.fold
    (fun name e acc ->
      (name, e.att_packets_out, e.att_bytes_out, e.att_packets_in) :: acc)
    t.experiments []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

(* The experiment owning [ip], when it is local experiment space. *)
let owner_of t ip =
  match owner_lookup t ip with
  | Some (Local_exp name) -> Some name
  | Some (Remote_exp _) | None -> None

(* The experiment whose *allocation* covers [ip] (connected at this PoP),
   regardless of whether it has announced yet — the basis for data-plane
   source validation. *)
let allocation_owner_of t ip =
  Hashtbl.fold
    (fun name e acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Control_enforcer.owns_address e.grant ip then Some name else None)
    t.experiments None

(* The platform-global export id of a neighbor (the value used in
   export-control community tags). *)
let export_id t ~neighbor_id =
  match neighbor t neighbor_id with
  | Some ns -> ns.export_id
  | None -> invalid_arg "Router.export_id: unknown neighbor"

let neighbor_routes t ~neighbor_id =
  match neighbor t neighbor_id with
  | Some ns -> Rib.Table.to_list ns.rib_in
  | None -> []

(* The Adj-RIB-Out toward a neighbor, as a sorted association list (the
   convergence checker compares these across runs). *)
let adj_out_routes t ~neighbor_id =
  match Hashtbl.find_opt t.adj_out neighbor_id with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun p h acc -> (p, Attr_arena.set h) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

(* Prefixes currently held stale for a neighbor (GR retention). *)
let stale_count t ~neighbor_id =
  match neighbor t neighbor_id with
  | Some { gr = Some h; _ } -> Hashtbl.length h.stale
  | _ -> 0
