(* The inter-PoP backbone (paper §4.4): the full mesh of BGP sessions
   between PoP routers, the shared global address pool, and the aliasing
   trick that lets every PoP expose every other PoP's neighbors locally.

   A local alias (IP, MAC) is minted for each remote neighbor; its
   table's next hop is the neighbor's global IP, resolved over the
   backbone segment with ARP — the same destination-MAC table selection
   as the experiment LAN, repeated hop by hop. *)

open Netcore
open Bgp
open Sim
open Router_state

(* Find or create the local alias pseudo-neighbor for a remote neighbor's
   global IP (§4.4). *)
let alias_for_global t ~pop global_ip =
  match Hashtbl.find_opt t.alias_by_global global_ip with
  | Some id -> (Hashtbl.find t.neighbors id, false)
  | None ->
      let id = t.next_neighbor_id in
      t.next_neighbor_id <- t.next_neighbor_id + 1;
      let a =
        Addr_pool.allocate t.local_pool
          (Printf.sprintf "global:%s" (Ipv4.to_string global_ip))
      in
      (* The alias shares the remote neighbor's export id so export-control
         tags mean the same thing at every PoP. *)
      let export_id =
        match Addr_pool.of_ip t.global_pool global_ip with
        | Some g -> g.Addr_pool.index
        | None -> 0
      in
      let info =
        {
          Neighbor.id;
          asn = t.asn;
          ip = global_ip;
          kind = Neighbor.Backbone_alias { remote_pop = pop };
          virtual_ip = a.Addr_pool.ip;
          virtual_mac = a.Addr_pool.mac;
          global_ip = Some global_ip;
        }
      in
      let ns =
        {
          info;
          rib_in = Rib.Table.create ();
          session = None;
          deliver = (fun _ -> ());
          export_id;
          gr = None;
          flows = Hashtbl.create 64;
        }
      in
      Hashtbl.replace t.neighbors id ns;
      Hashtbl.replace t.by_vmac info.Neighbor.virtual_mac id;
      Hashtbl.replace t.by_vip info.Neighbor.virtual_ip id;
      Hashtbl.replace t.alias_by_global global_ip id;
      (* The alias answers on the experiment LAN like any neighbor. *)
      Lan.attach t.exp_lan info.Neighbor.virtual_mac
        (Data_plane.handle_exp_lan_frame t ~station_neighbor:(Some id));
      log t "alias neighbor %d for global %a (%s)" id Ipv4.pp global_ip pop;
      (ns, true)

(* Put a station for global IP [g] on the backbone segment: it answers ARP
   for [g] and hands arriving packets to [receive] (§4.4). *)
let register_global_station t lan ~g ~receive =
  let gmac =
    match Addr_pool.of_ip t.global_pool g with
    | Some a -> a.Addr_pool.mac
    | None -> Mac.zero
  in
  let station = Arp_client.attach lan ~mac:gmac ~ips:[ g ] in
  Arp_client.set_ip_handler station (fun ~src_mac:_ packet -> receive packet)

(* Backbone delivery toward local neighbor [id]. *)
let backbone_station_for_neighbor t id packet =
  match neighbor t id with
  | Some ns when not (Neighbor.is_alias ns.info) ->
      if packet.Ipv4_packet.ttl <= 1 then
        Data_plane.deliver_inbound t (Data_plane.icmp_ttl_exceeded t packet)
      else begin
        t.counters.packets_to_neighbors <- t.counters.packets_to_neighbors + 1;
        ns.deliver (Ipv4_packet.decrement_ttl packet)
      end
  | _ -> ()

(* Attach this router to the backbone segment shared by all PoPs. *)
let attach_backbone t lan =
  let bb_mac = Mac.local ~pool:0xbb (Hashtbl.hash t.name land 0xffffff) in
  let bb = Arp_client.attach lan ~mac:bb_mac ~ips:[] in
  Arp_client.set_ip_handler bb (fun ~src_mac:_ packet ->
      (* Traffic to one of our neighbors' global MACs or to a local
         experiment arrives here. *)
      Data_plane.deliver_inbound t packet);
  t.bb <- Some bb;
  (* Answer ARP for the global IPs of our local neighbors and deliver
     frames addressed to them straight to the neighbor. *)
  Hashtbl.iter
    (fun g id ->
      register_global_station t lan ~g
        ~receive:(backbone_station_for_neighbor t id))
    t.by_global_ip;
  (* Local experiments also have global identities on the backbone. *)
  Hashtbl.iter
    (fun _ e ->
      register_global_station t lan ~g:e.g_ip
        ~receive:(Data_plane.deliver_inbound t))
    t.experiments

(* Full-table sync toward a freshly established mesh peer: all
   neighbor-learned routes (next hop = the neighbor's global IP) plus
   local experiment announcements (tagged with the internal marker). One
   packed multi-NLRI UPDATE per shared attribute set rather than one
   message per route — at full-table scale the difference is tens of
   thousands of messages per sync. *)
let sync_mesh_session t session =
  let send u =
    List.iter
      (fun (piece : Msg.update) ->
        t.counters.updates_to_mesh <- t.counters.updates_to_mesh + 1;
        t.counters.nlri_to_mesh <-
          t.counters.nlri_to_mesh
          + List.length piece.Msg.announced
          + List.length piece.Msg.withdrawn;
        Session.send_update session piece)
      (Codec.split_update ~params:{ Codec.add_path = true; as4 = true } u)
  in
  List.iter
    (fun ns ->
      match ns.info.Neighbor.global_ip with
      | Some g when not (Neighbor.is_alias ns.info) ->
          let groups = nlri_groups_create () in
          Rib.Table.iter_routes
            (fun (r : Rib.Route.t) ->
              nlri_groups_add groups (Rib.Route.attrs_handle r)
                (Msg.nlri ~path_id:ns.info.Neighbor.id r.prefix))
            ns.rib_in;
          nlri_groups_iter groups (fun h nlris ->
              send
                (Msg.update
                   ~attrs:(Attr.with_next_hop g (Attr_arena.set h))
                   ~announced:nlris ()))
      | _ -> ())
    (neighbor_states t);
  let ctl_asn = control_asn t in
  Hashtbl.iter
    (fun _ e ->
      let groups = nlri_groups_create () in
      Hashtbl.iter
        (fun prefix vs ->
          List.iter
            (fun v ->
              nlri_groups_add groups v.v_attrs
                (Msg.nlri ~path_id:(mesh_path_id e v.v_path_id) prefix))
            !vs)
        e.routes;
      nlri_groups_iter groups (fun h nlris ->
          let attrs =
            Attr_arena.set h
            |> Attr.with_next_hop e.g_ip
            |> Attr.add_community (Export_control.experiment_marker ~ctl_asn)
          in
          send (Msg.update ~attrs ~announced:nlris ())))
    t.experiments;
  (* End-of-RIB (RFC 4724): lets a peer that retained our imports as
     stale across a graceful restart sweep whatever this sync did not
     refresh. Harmless on a first establishment (no stale state). *)
  Session.send_update session (Msg.update ())

(* Establish the backbone BGP mesh session toward another PoP's router.
   [on_update] is the mesh-import processor, [on_eor] the
   graceful-restart stale sweep, [on_peer_down] the session-loss
   dispatcher (Control_out wires all three in — it compiles after this
   module); call once per unordered pair; [Bgp_wire.start] is invoked
   internally. *)
let connect_mesh t other ~on_update ~on_eor ~on_peer_down ?(latency = 0.02) ()
    =
  let config a =
    Session.config ~local_asn:a.asn ~local_id:a.router_id ~hold_time:180
      ~capabilities:(session_capabilities ~add_path:true a)
      ~reconnect:(reconnect_policy a) ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:(config t)
      ~config_passive:(config other) ()
  in
  let install self peer_name session =
    let mp = { pop_name = peer_name; mesh_session = session; mesh_gr = None } in
    self.mesh <- mp :: self.mesh;
    Session.set_handlers session
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
        on_update =
          (fun u ->
            if Msg.is_end_of_rib u then on_eor self ~pop:peer_name
            else on_update self ~pop:peer_name u);
        on_established =
          (fun () ->
            log self "mesh to %s established" peer_name;
            sync_mesh_session self session);
        on_down =
          (fun reason ->
            log self "mesh to %s down: %s" peer_name
              (Fsm.down_reason_to_string reason);
            on_peer_down self ~pop:peer_name reason);
      }
  in
  install t other.name pair.Sim.Bgp_wire.active;
  install other t.name pair.Sim.Bgp_wire.passive;
  Sim.Bgp_wire.start pair;
  pair
