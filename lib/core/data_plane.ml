(* The vBGP data plane (paper §3.2.2): each neighbor owns a virtual MAC
   and a forwarding table; the destination MAC of a frame from an
   experiment selects the table, so an experiment's per-packet routing
   decision rides in the layer-2 header with no encapsulation. Frames
   toward experiments carry the delivering neighbor's virtual MAC as
   source, giving experiments per-packet ingress visibility.

   The per-packet fast path works on {!Ipv4_packet.View}s — the wire
   bytes adopted in place, TTL decremented with an incremental checksum
   fix — and memoizes the composite forwarding decision (enforcement
   verdict, ingress attribution, FIB entry, egress action) in a
   per-neighbor flow cache keyed by (source MAC, src, dst). Entries are
   stamped with three generations — the neighbor FIB's, the enforcement
   chain's, and the owner table's — and self-invalidate when any source
   of the decision changes; no explicit flush exists. Stateful filters
   (the token-bucket shaper) still run on every packet via the
   enforcement chain's stateless-head/stateful-tail split. *)

open Netcore
open Sim
open Router_state

(* A flow cache never outgrows this; on overflow the whole table resets
   (decisions are cheap to re-resolve, eviction bookkeeping is not). *)
let flow_cache_capacity = 4096

let send_frame_on_exp_lan t ~src ~dst payload =
  Lan.send t.exp_lan { Eth.dst; src; ethertype = Eth.Ipv4; payload }

(* Deliver wire bytes to a local experiment, rewriting the source MAC to
   the virtual MAC of the neighbor that brought it (paper §3.2.2). *)
let deliver_wire_to_local_experiment t ~via_mac exp_name wire =
  match experiment t exp_name with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some e ->
      t.counters.packets_to_experiments <-
        t.counters.packets_to_experiments + 1;
      e.att_packets_in <- e.att_packets_in + 1;
      send_frame_on_exp_lan t ~src:via_mac ~dst:e.exp_mac wire

let deliver_to_local_experiment t ~via_mac exp_name packet =
  deliver_wire_to_local_experiment t ~via_mac exp_name
    (Ipv4_packet.encode packet)

let icmp_ttl_exceeded t (expired : Ipv4_packet.t) =
  let original =
    let full = Ipv4_packet.encode expired in
    String.sub full 0 (min (String.length full) 28)
  in
  t.counters.icmp_sent <- t.counters.icmp_sent + 1;
  Ipv4_packet.make ~src:t.primary_ip ~dst:expired.src
    ~protocol:Ipv4_packet.Icmp
    (Icmp.encode (Icmp.Ttl_exceeded { original }))

(* Forward a packet over the backbone toward [global_ip] (ARP on the
   backbone segment, then a frame to the owning PoP; §4.4). *)
let forward_over_backbone t ~global_ip packet =
  match t.bb with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some bb ->
      t.counters.packets_over_backbone <-
        t.counters.packets_over_backbone + 1;
      Arp_client.send_ip bb ~next_hop:global_ip packet

(* An inbound packet destined to experiment space, arriving from local
   neighbor [via] (or from the backbone when [via] is None). *)
let deliver_inbound t ?via packet =
  let dst = packet.Ipv4_packet.dst in
  match owner_lookup t dst with
  | Some (Local_exp exp_name) ->
      let via_mac =
        match via with
        | Some ns -> ns.info.Neighbor.virtual_mac
        | None -> t.router_mac
      in
      deliver_to_local_experiment t ~via_mac exp_name packet
  | Some (Remote_exp { via_global; _ }) ->
      forward_over_backbone t ~global_ip:via_global packet
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1

(* [deliver_inbound] for a view: local delivery reuses the wire bytes
   verbatim (no decode, no re-encode); only the backbone path — which
   hands records to the ARP client — materializes one. *)
let deliver_inbound_view t view =
  match owner_lookup t (Ipv4_packet.View.dst view) with
  | Some (Local_exp exp_name) ->
      deliver_wire_to_local_experiment t ~via_mac:t.router_mac exp_name
        (Ipv4_packet.View.to_wire view)
  | Some (Remote_exp { via_global; _ }) ->
      forward_over_backbone t ~global_ip:via_global
        (Ipv4_packet.View.to_packet view)
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1

(* Entry point for packets handed to us by a real neighbor (traffic from
   the Internet toward experiment prefixes). *)
let inject_from_neighbor t ~neighbor_id packet =
  match neighbor t neighbor_id with
  | None -> invalid_arg "Router.inject_from_neighbor: unknown neighbor"
  | Some ns -> deliver_inbound t ~via:ns packet

let attribute_out exp bytes =
  match exp with
  | Some e ->
      e.att_packets_out <- e.att_packets_out + 1;
      e.att_bytes_out <- e.att_bytes_out + bytes
  | None -> ()

let ingress_of ~sender ~src_mac =
  match sender with
  | Some name -> name
  | None -> Printf.sprintf "unknown:%s" (Mac.to_string src_mac)

(* The record-path continuation for a packet the enforcement chain
   allowed: TTL handling, the neighbor table, delivery. Shared by the
   slow path and by cache hits whose stateful tail rewrote the packet
   (the rewrite may have changed the destination, so the FIB lookup is
   redone here on the rewritten record). *)
let forward_allowed_packet t ~ns ~fib packet =
  if packet.Ipv4_packet.ttl <= 1 then
    deliver_inbound t (icmp_ttl_exceeded t packet)
  else begin
    let packet = Ipv4_packet.decrement_ttl packet in
    match Rib.Fib.lookup fib packet.Ipv4_packet.dst with
    | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
    | Some entry ->
        if Neighbor.is_alias ns.info then
          forward_over_backbone t ~global_ip:entry.Rib.Fib.next_hop packet
        else begin
          t.counters.packets_to_neighbors <-
            t.counters.packets_to_neighbors + 1;
          ns.deliver packet
        end
  end

(* Resolve a frame through the full enforcement chain on the record slow
   path; when [store] is set and the verdict was flow-determined,
   memoize it (stamped with the current generations) for later hits. *)
let resolve_and_forward t ~ns ~fib ~now ~sender ~src_mac ~store view =
  let ingress = ingress_of ~sender ~src_mac in
  let packet = Ipv4_packet.View.to_packet view in
  (* Stamps are read before resolving so a mutation racing in during
     resolution could only make the entry stale, never mask itself. *)
  let f_fib_gen = Rib.Fib.generation fib in
  let f_enf_gen = Data_enforcer.generation t.data in
  let f_owner_gen = Dcache.generation t.owner_cache in
  let decision, resolution =
    Data_enforcer.check_resolve t.data ~now ~meta:{ Data_enforcer.ingress }
      packet
  in
  (if store then
     match resolution with
     | Data_enforcer.Uncacheable -> ()
     | Data_enforcer.Cacheable_block _ | Data_enforcer.Cacheable_allow ->
         let f_action =
           match resolution with
           | Data_enforcer.Cacheable_block (f, reason) -> Fblock (f, reason)
           | _ -> (
               match Rib.Fib.lookup fib (Ipv4_packet.View.dst view) with
               | Some entry -> Fforward entry
               | None -> Fnofib)
         in
         let f_exp =
           match sender with Some n -> experiment t n | None -> None
         in
         if Hashtbl.length ns.flows >= flow_cache_capacity then
           Hashtbl.reset ns.flows;
         Hashtbl.replace ns.flows
           (src_mac, Ipv4_packet.View.src view, Ipv4_packet.View.dst view)
           { f_action; f_exp; f_ingress = ingress; f_fib_gen; f_enf_gen;
             f_owner_gen });
  match decision with
  | Data_enforcer.Blocked _ ->
      t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Data_enforcer.Allowed packet ->
      attribute_out
        (match sender with Some n -> experiment t n | None -> None)
        (Ipv4_packet.header_size + String.length packet.Ipv4_packet.payload);
      forward_allowed_packet t ~ns ~fib packet

(* Serve one frame from a memoized flow decision. The stateless head is
   replayed as counter/trace bookkeeping; the stateful tail still runs
   on the packet. The wire bytes are forwarded in place (TTL decremented
   with an incremental checksum fix, no re-encode). *)
let execute_cached t ~ns ~fib ~now view fe =
  match fe.f_action with
  | Fblock (f, reason) ->
      Data_enforcer.replay_block t.data ~now f reason;
      t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | (Fforward _ | Fnofib) as action -> (
      match
        Data_enforcer.check_tail t.data ~now
          ~meta:{ Data_enforcer.ingress = fe.f_ingress }
          view
      with
      | Data_enforcer.Tail_blocked _ ->
          t.counters.packets_dropped <- t.counters.packets_dropped + 1
      | Data_enforcer.Tail_rewritten packet ->
          attribute_out fe.f_exp
            (Ipv4_packet.header_size
            + String.length packet.Ipv4_packet.payload);
          forward_allowed_packet t ~ns ~fib packet
      | Data_enforcer.Tail_pass ->
          attribute_out fe.f_exp (Ipv4_packet.View.total_length view);
          if Ipv4_packet.View.ttl view <= 1 then
            deliver_inbound t
              (icmp_ttl_exceeded t (Ipv4_packet.View.to_packet view))
          else begin
            Ipv4_packet.View.decrement_ttl view;
            match action with
            | Fforward entry ->
                if Neighbor.is_alias ns.info then
                  forward_over_backbone t ~global_ip:entry.Rib.Fib.next_hop
                    (Ipv4_packet.View.to_packet view)
                else begin
                  t.counters.packets_to_neighbors <-
                    t.counters.packets_to_neighbors + 1;
                  ns.deliver (Ipv4_packet.View.to_packet view)
                end
            | Fnofib ->
                t.counters.packets_dropped <- t.counters.packets_dropped + 1
            | Fblock _ -> assert false
          end)

(* Forward a frame an experiment put on the wire: the destination MAC
   picks the neighbor table (the heart of §3.2.2). Cheap rejections
   first — unknown station, then a malformed packet — before any
   per-frame work; the clock is read once per frame. *)
let forward_experiment_frame t ~neighbor_id (frame : Eth.t) =
  match neighbor t neighbor_id with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some ns -> (
      let sender = Hashtbl.find_opt t.by_exp_mac frame.src in
      match Ipv4_packet.View.of_string frame.payload with
      | Error _ ->
          t.counters.packets_dropped <- t.counters.packets_dropped + 1
      | Ok view ->
          let now = Engine.now t.engine in
          let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
          if not t.flow_cache_enabled then
            resolve_and_forward t ~ns ~fib ~now ~sender ~src_mac:frame.src
              ~store:false view
          else
            let key =
              ( frame.src,
                Ipv4_packet.View.src view,
                Ipv4_packet.View.dst view )
            in
            let hit =
              match Hashtbl.find_opt ns.flows key with
              | Some fe
                when fe.f_fib_gen = Rib.Fib.generation fib
                     && fe.f_enf_gen = Data_enforcer.generation t.data
                     && fe.f_owner_gen = Dcache.generation t.owner_cache ->
                  Some fe
              | _ -> None
            in
            (match hit with
            | Some fe ->
                t.counters.flow_hits <- t.counters.flow_hits + 1;
                execute_cached t ~ns ~fib ~now view fe
            | None ->
                t.counters.flow_misses <- t.counters.flow_misses + 1;
                resolve_and_forward t ~ns ~fib ~now ~sender
                  ~src_mac:frame.src ~store:true view))

(* -- batch entry point (sharded when the router has worker domains) -------- *)

(* Forward a batch of experiment frames, each selecting its neighbor
   table by destination MAC. On a single-domain router this is the
   sequential fast path in a loop; on a sharded router the frames are
   dispatched to their flows' home domains, forwarded in parallel
   against the published control snapshot, and the buffered effects are
   folded back into shared router state here on the coordinator. The
   control plane is quiesced for the duration (the engine isn't running
   a tick while we're inside this call), so [Engine.now] is one value
   for the whole drain — exactly like the sequential path's one clock
   read per frame. *)
let forward_frames t (frames : Eth.t array) =
  match t.pool with
  | None ->
      Array.iter
        (fun (frame : Eth.t) ->
          match Hashtbl.find_opt t.by_vmac frame.Eth.dst with
          | Some neighbor_id -> forward_experiment_frame t ~neighbor_id frame
          | None ->
              t.counters.packets_dropped <- t.counters.packets_dropped + 1)
        frames
  | Some pool ->
      (* Catch anything that changed since the last tick flush (callers
         driving the router directly, e.g. benches and tests). *)
      shard_publish t;
      Array.iter (Shard.dispatch pool) frames;
      Shard.drain pool ~now:(Engine.now t.engine);
      Shard.consume pool
        ~deliver:(fun nid view ->
          match neighbor t nid with
          | Some ns -> ns.deliver (Ipv4_packet.View.to_packet view)
          | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1)
        ~outcome:(fun o ->
          match o with
          | Shard.O_icmp packet -> deliver_inbound t (icmp_ttl_exceeded t packet)
          | Shard.O_backbone (global_ip, packet) ->
              forward_over_backbone t ~global_ip packet)
        ~attribute:(fun name ~packets ~bytes ->
          match experiment t name with
          | Some e ->
              e.att_packets_out <- e.att_packets_out + packets;
              e.att_bytes_out <- e.att_bytes_out + bytes
          | None -> ())
        ~counters:(fun ~hits ~misses ~to_neighbors ~dropped ->
          t.counters.flow_hits <- t.counters.flow_hits + hits;
          t.counters.flow_misses <- t.counters.flow_misses + misses;
          t.counters.packets_to_neighbors <-
            t.counters.packets_to_neighbors + to_neighbors;
          t.counters.packets_dropped <- t.counters.packets_dropped + dropped)

(* Handle a frame arriving on the experiment LAN addressed to one of our
   stations (a neighbor's virtual MAC or the router itself). *)
let handle_exp_lan_frame t ~station_neighbor (frame : Eth.t) =
  match frame.ethertype with
  | Eth.Arp -> (
      match Arp.decode frame.payload with
      | Ok ({ op = Arp.Request; _ } as a) -> (
          (* Answer for the virtual IP this station owns. *)
          match Hashtbl.find_opt t.by_vip a.target_ip with
          | Some id when station_neighbor = Some id -> (
              match neighbor t id with
              | Some ns ->
                  Lan.send t.exp_lan
                    {
                      Eth.dst = a.sender_mac;
                      src = ns.info.Neighbor.virtual_mac;
                      ethertype = Eth.Arp;
                      payload =
                        Arp.encode
                          (Arp.reply ~sender_mac:ns.info.Neighbor.virtual_mac
                             ~sender_ip:a.target_ip ~target_mac:a.sender_mac
                             ~target_ip:a.sender_ip);
                    }
              | None -> ())
          | _ ->
              (* The router answers for its own primary address. *)
              if
                station_neighbor = None
                && Ipv4.equal a.target_ip t.primary_ip
              then
                Lan.send t.exp_lan
                  {
                    Eth.dst = a.sender_mac;
                    src = t.router_mac;
                    ethertype = Eth.Arp;
                    payload =
                      Arp.encode
                        (Arp.reply ~sender_mac:t.router_mac
                           ~sender_ip:t.primary_ip ~target_mac:a.sender_mac
                           ~target_ip:a.sender_ip);
                  })
      | Ok _ | Error _ -> ())
  | Eth.Ipv4 -> (
      match station_neighbor with
      | Some id -> forward_experiment_frame t ~neighbor_id:id frame
      | None -> (
          (* Addressed to the router itself: experiment-to-experiment or
             diagnostic traffic; route it like inbound, on the wire bytes
             (local delivery never decodes). *)
          match Ipv4_packet.View.of_string frame.payload with
          | Ok view -> deliver_inbound_view t view
          | Error _ -> ()))
  | Eth.Ipv6 | Eth.Other _ -> ()

(* The router's own station on the experiment LAN (answers for the primary
   address, receives router-addressed traffic). Call after creation. *)
let activate t =
  Lan.attach t.exp_lan t.router_mac
    (handle_exp_lan_frame t ~station_neighbor:None)
