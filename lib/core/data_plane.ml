(* The vBGP data plane (paper §3.2.2): each neighbor owns a virtual MAC
   and a forwarding table; the destination MAC of a frame from an
   experiment selects the table, so an experiment's per-packet routing
   decision rides in the layer-2 header with no encapsulation. Frames
   toward experiments carry the delivering neighbor's virtual MAC as
   source, giving experiments per-packet ingress visibility. *)

open Netcore
open Sim
open Router_state

let send_frame_on_exp_lan t ~src ~dst payload =
  Lan.send t.exp_lan { Eth.dst; src; ethertype = Eth.Ipv4; payload }

(* Deliver a packet to a local experiment, rewriting the source MAC to the
   virtual MAC of the neighbor that brought it (paper §3.2.2). *)
let deliver_to_local_experiment t ~via_mac exp_name packet =
  match experiment t exp_name with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some e ->
      t.counters.packets_to_experiments <-
        t.counters.packets_to_experiments + 1;
      e.att_packets_in <- e.att_packets_in + 1;
      send_frame_on_exp_lan t ~src:via_mac ~dst:e.exp_mac
        (Ipv4_packet.encode packet)

let icmp_ttl_exceeded t (expired : Ipv4_packet.t) =
  let original =
    let full = Ipv4_packet.encode expired in
    String.sub full 0 (min (String.length full) 28)
  in
  t.counters.icmp_sent <- t.counters.icmp_sent + 1;
  Ipv4_packet.make ~src:t.primary_ip ~dst:expired.src
    ~protocol:Ipv4_packet.Icmp
    (Icmp.encode (Icmp.Ttl_exceeded { original }))

(* Forward a packet over the backbone toward [global_ip] (ARP on the
   backbone segment, then a frame to the owning PoP; §4.4). *)
let forward_over_backbone t ~global_ip packet =
  match t.bb with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some bb ->
      t.counters.packets_over_backbone <-
        t.counters.packets_over_backbone + 1;
      Arp_client.send_ip bb ~next_hop:global_ip packet

(* An inbound packet destined to experiment space, arriving from local
   neighbor [via] (or from the backbone when [via] is None). *)
let deliver_inbound t ?via packet =
  let dst = packet.Ipv4_packet.dst in
  match owner_lookup t dst with
  | Some (Local_exp exp_name) ->
      let via_mac =
        match via with
        | Some ns -> ns.info.Neighbor.virtual_mac
        | None -> t.router_mac
      in
      deliver_to_local_experiment t ~via_mac exp_name packet
  | Some (Remote_exp { via_global; _ }) ->
      forward_over_backbone t ~global_ip:via_global packet
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1

(* Entry point for packets handed to us by a real neighbor (traffic from
   the Internet toward experiment prefixes). *)
let inject_from_neighbor t ~neighbor_id packet =
  match neighbor t neighbor_id with
  | None -> invalid_arg "Router.inject_from_neighbor: unknown neighbor"
  | Some ns -> deliver_inbound t ~via:ns packet

(* Forward a frame an experiment put on the wire: the destination MAC
   picks the neighbor table (the heart of §3.2.2). *)
let forward_experiment_frame t ~neighbor_id (frame : Eth.t) =
  match (neighbor t neighbor_id, Ipv4_packet.decode frame.payload) with
  | None, _ | _, Error _ ->
      t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some ns, Ok packet -> (
      let now = Engine.now t.engine in
      let sender = Hashtbl.find_opt t.by_exp_mac frame.src in
      let ingress =
        match sender with
        | Some name -> name
        | None -> Printf.sprintf "unknown:%s" (Mac.to_string frame.src)
      in
      match
        Data_enforcer.check t.data ~now ~meta:{ Data_enforcer.ingress } packet
      with
      | Data_enforcer.Blocked _ ->
          t.counters.packets_dropped <- t.counters.packets_dropped + 1
      | Data_enforcer.Allowed packet ->
          (match sender with
          | Some name -> (
              match experiment t name with
              | Some e ->
                  e.att_packets_out <- e.att_packets_out + 1;
                  e.att_bytes_out <-
                    e.att_bytes_out + Ipv4_packet.header_size
                    + String.length packet.Ipv4_packet.payload
              | None -> ())
          | None -> ());
          if packet.Ipv4_packet.ttl <= 1 then begin
            let icmp = icmp_ttl_exceeded t packet in
            deliver_inbound t icmp
          end
          else begin
            let packet = Ipv4_packet.decrement_ttl packet in
            let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
            match Rib.Fib.lookup fib packet.Ipv4_packet.dst with
            | None ->
                t.counters.packets_dropped <- t.counters.packets_dropped + 1
            | Some entry ->
                if Neighbor.is_alias ns.info then
                  forward_over_backbone t ~global_ip:entry.Rib.Fib.next_hop
                    packet
                else begin
                  t.counters.packets_to_neighbors <-
                    t.counters.packets_to_neighbors + 1;
                  ns.deliver packet
                end
          end)

(* Handle a frame arriving on the experiment LAN addressed to one of our
   stations (a neighbor's virtual MAC or the router itself). *)
let handle_exp_lan_frame t ~station_neighbor (frame : Eth.t) =
  match frame.ethertype with
  | Eth.Arp -> (
      match Arp.decode frame.payload with
      | Ok ({ op = Arp.Request; _ } as a) -> (
          (* Answer for the virtual IP this station owns. *)
          match Hashtbl.find_opt t.by_vip a.target_ip with
          | Some id when station_neighbor = Some id -> (
              match neighbor t id with
              | Some ns ->
                  Lan.send t.exp_lan
                    {
                      Eth.dst = a.sender_mac;
                      src = ns.info.Neighbor.virtual_mac;
                      ethertype = Eth.Arp;
                      payload =
                        Arp.encode
                          (Arp.reply ~sender_mac:ns.info.Neighbor.virtual_mac
                             ~sender_ip:a.target_ip ~target_mac:a.sender_mac
                             ~target_ip:a.sender_ip);
                    }
              | None -> ())
          | _ ->
              (* The router answers for its own primary address. *)
              if
                station_neighbor = None
                && Ipv4.equal a.target_ip t.primary_ip
              then
                Lan.send t.exp_lan
                  {
                    Eth.dst = a.sender_mac;
                    src = t.router_mac;
                    ethertype = Eth.Arp;
                    payload =
                      Arp.encode
                        (Arp.reply ~sender_mac:t.router_mac
                           ~sender_ip:t.primary_ip ~target_mac:a.sender_mac
                           ~target_ip:a.sender_ip);
                  })
      | Ok _ | Error _ -> ())
  | Eth.Ipv4 -> (
      match station_neighbor with
      | Some id -> forward_experiment_frame t ~neighbor_id:id frame
      | None -> (
          (* Addressed to the router itself: experiment-to-experiment or
             diagnostic traffic; route it like inbound. *)
          match Ipv4_packet.decode frame.payload with
          | Ok packet -> deliver_inbound t packet
          | Error _ -> ()))
  | Eth.Ipv6 | Eth.Other _ -> ()

(* The router's own station on the experiment LAN (answers for the primary
   address, receives router-addressed traffic). Call after creation. *)
let activate t =
  Lan.attach t.exp_lan t.router_mac
    (handle_exp_lan_frame t ~station_neighbor:None)
