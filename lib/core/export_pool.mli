(** The parallel Control_out export lane: N OCaml 5 worker domains, each
    owning the export-control filtering, Adj-RIB-Out delta, multi-NLRI
    packing, and wire encoding for a fixed subset of neighbors, with the
    staged sends replayed by the single writer.

    Protocol: {!flush} hash-partitions the neighbor targets across the
    lanes ({!domain_of_neighbor} — deterministic, so each Adj-RIB-Out is
    single-writer by construction), publishes the coordinator-computed
    dirty-prefix snapshot plus the filter/facing closures, wakes the
    persistent parked workers, and blocks until all are done (the
    done-handshake is the happens-before edge publishing every worker
    write); {!consume} replays the fully encoded staged messages on the
    coordinator in neighbor-id order through the caller's send sink and
    folds the deduplicated facing/block novelty counts. The control
    plane must be quiesced during a flush; workers only ever run
    concurrently with each other.

    Each worker runs the same per-(prefix, neighbor) delta loop as the
    sequential flush and encodes its own messages: one attribute block
    per facing set per lane per flush ({!Codec.encode_attrs_block}),
    spliced into every packed message ({!Codec.encode_update_spliced}) —
    the encode-once wire cache. The parallel-vs-sequential differential
    suite pins adj-out fingerprints, exact counters, and per-neighbor
    wire-byte transcripts, whatever the lane interleaving. *)

open Netcore
open Bgp

val domain_of_neighbor : workers:int -> int -> int
(** The home lane of a neighbor id — deterministic; the same mix as
    {!Ingest_pool.domain_of_neighbor}. *)

(** Per-flush view of one neighbor, captured from live router state by
    the coordinator immediately before the workers run. [xt_out] is the
    live Adj-RIB-Out table (resolved up front so its lazy creation never
    races); only the owning worker touches it during the flush.
    [xt_params] is [Some] of the session's negotiated encoding
    parameters iff it is established — [None] suppresses packing while
    the Adj-RIB-Out delta still applies, exactly as on the sequential
    path. *)
type target = {
  xt_id : int;
  xt_export_id : int;
  xt_out : (Prefix.t, Attr_arena.handle) Hashtbl.t;
  xt_params : Codec.params option;
}

type t

val create : workers:int -> unit -> t
(** A pool of [workers] export lanes (>= 1). No domain is spawned until
    a multi-worker {!flush}; a 1-worker pool runs everything inline on
    the coordinator. *)

val worker_count : t -> int

val flush :
  t ->
  prefixes:(Prefix.t * Attr_arena.handle list) array ->
  targets:target list ->
  allowed:(export_id:int -> Attr_arena.handle list -> Attr_arena.handle list) ->
  facing:(Attr_arena.handle -> Attr_arena.handle) ->
  ?log:(announce:bool -> int -> Prefix.t -> unit) ->
  unit ->
  unit
(** Run one export flush over the sorted dirty-prefix snapshot
    [prefixes]. The closures run on worker domains: [allowed] must be
    pure (it filters a prefix's variants down to what one neighbor may
    hear) and [facing] may only touch domain-safe state (it interns the
    neighbor-facing set through the striped arena). [log] is the
    per-delta trace hook, retained only when [workers = 1] — tracing is
    not domain-safe, so multi-lane flushes skip trace lines (a
    trace-only divergence the fingerprints never see). The caller must
    not mutate router state during the call. *)

val consume :
  t ->
  send:(nid:int -> update:Msg.update -> bytes:string -> bool) ->
  computations:(int -> unit) ->
  unit
(** Replay the flush's staged sends into the caller's sink and clear
    them: [send] per fully encoded message in neighbor-id order (stable
    across lanes; per-neighbor FIFO), returning whether the bytes went
    out (counted into [wire_bytes_out]); then one [computations] call
    with the cross-lane deduplicated count of facing sets computed —
    exactly the sequential flush's facing-cache misses. Call after
    {!flush} returns. *)

val shutdown : t -> unit
(** Join the pool's worker domains. Idempotent; the next multi-worker
    {!flush} respawns workers transparently. *)

(** {1 Observability} *)

type stats = {
  wire_cache_hits : int;
      (** announce messages spliced from an already-encoded attribute
          block (cross-lane deduplicated, like the misses) *)
  wire_cache_misses : int;
      (** distinct (facing set, params) attribute blocks encoded *)
  wire_bytes_out : int;  (** wire bytes handed to established sessions *)
  staged_residual : int;
      (** staged messages not yet consumed — 0 after every
          flush+consume cycle (gated in the export-par bench) *)
  lane_depth_max : int array;
      (** per-lane target-queue high-water mark over the pool's lifetime
          (index 0 = coordinator lane) *)
}

val stats : t -> stats
