(** The data-plane enforcement engine (paper §3.3): the eBPF-analog filter
    chain inspecting every experiment packet before it reaches the
    Internet. Filters can be stateless or stateful (keeping their own
    state, like an eBPF map). The built-ins mirror PEERING's policies:
    source validation (no spoofing, no transiting foreign traffic) and
    per-PoP/per-neighbor traffic shaping (§4.7).

    The chain is split for the data plane's flow cache: the maximal
    leading run of stateless filters (the head) has a per-flow-memoizable
    verdict; everything from the first stateful filter onward (the tail)
    runs on every packet, cache hit or not. *)

open Netcore

(** One filter's verdict on one packet. *)
type verdict =
  | Allow
  | Block of string
  | Transform of Ipv4_packet.t  (** rewrite, then continue down the chain *)

type meta = { ingress : string }
(** Where the packet entered the platform (e.g. an experiment name), for
    attribution. *)

type filter

val filter :
  ?stateless:bool ->
  ?fresh:(unit -> filter) ->
  name:string ->
  (now:float -> meta:meta -> Ipv4_packet.t -> verdict) ->
  filter
(** Build a filter. [stateless] (default [false]) is a contract, not an
    observation: it asserts the verdict depends {e only} on the packet's
    source and destination addresses, the ingress metadata, and the
    filter's fixed configuration — the fields of the data-plane flow key —
    never on other header fields, payload, wall-clock time, or mutable
    state. Stateless filters form the cacheable head of the chain;
    flagging a filter stateless when it is not breaks flow-cache
    coherence (stale verdicts served to later packets of a flow).

    [fresh] builds an independent instance of the filter with private
    mutable state; the sharded data plane calls it once per worker
    domain ({!replicate}). A stateful filter whose apply closure owns
    interior state (a bucket table, say) must provide it — typically
    [let rec make () = filter ~fresh:make ... in make ()]. *)

val filter_name : filter -> string
val filter_is_stateless : filter -> bool

val filter_counts : filter -> int * int
(** This filter's own [(allowed, blocked)] counters (used to aggregate
    replica counters under sharding). *)

val replicate : filter -> filter
(** An independent instance for a worker domain: private state via
    [fresh] when provided, zeroed counters. Without [fresh] the apply
    closure is shared — safe only when it holds no mutable state. *)

type t

val create : ?trace:Sim.Trace.t -> unit -> t

val add_filter : t -> filter -> unit
(** Appended: filters run in insertion order (O(1); the ordered chain is
    rebuilt lazily). Bumps {!generation}. *)

val filters : t -> string list

val stats : t -> int * int
(** [(allowed, blocked)]. *)

val filter_stats : t -> (string * int * int) list
(** Per-filter [(name, allowed, blocked)] in chain order. A filter's
    [allowed] counts packets it passed onward (including transforms);
    packets short-circuited by an earlier block are not charged to later
    filters. *)

val generation : t -> int
(** The chain-config generation, bumped by every {!add_filter}. The data
    plane stamps flow-cache entries with it so any chain change
    invalidates every memoized verdict. *)

val source_validation : owner_of:(Ipv4.t -> string option) -> unit -> filter
(** Anti-spoofing: the source address must belong to the sending
    experiment ([owner_of] maps addresses to allocations, the ingress
    metadata names the sender). Stateless — the verdict is a function of
    the flow key. *)

val shaper :
  name:string ->
  rate:float ->
  burst:float ->
  ?idle_horizon:float ->
  key_of:(Ipv4_packet.t -> string) ->
  unit ->
  filter
(** Token-bucket shaping, bytes/second with a burst allowance, one bucket
    per classifier key (PoP, neighbor, experiment...). Stateful: debits
    tokens on every packet, cached flow or not. Buckets idle longer than
    [idle_horizon] seconds (default 300) are evicted when a new key first
    appears, bounding the bucket table under key churn. *)

val ttl_guard : ?min_ttl:int -> unit -> filter
(** Refuse packets that would expire inside the platform. Keeps no state
    but reads the TTL — not a flow-key field — so it is deliberately NOT
    stateless and runs per packet. *)

(** The chain's decision, carrying the (possibly rewritten) packet. *)
type decision = Allowed of Ipv4_packet.t | Blocked of string

val check : t -> now:float -> meta:meta -> Ipv4_packet.t -> decision

(** {1 Flow-cache interface}

    Used by {!Data_plane}'s per-neighbor flow cache. One slow-path
    [check_resolve] classifies the flow; hits then replay only what must
    run per packet. *)

(** Whether the stateless head alone determined the flow's fate. *)
type resolution =
  | Cacheable_allow
      (** the head passed the packet through unchanged; memoize the
          forwarding action, re-run the tail per hit *)
  | Cacheable_block of filter * string
      (** a head filter blocked; memoize and {!replay_block} per hit *)
  | Uncacheable
      (** a head filter transformed the packet — per-packet content
          escaped into the verdict, nothing may be memoized *)

(** What the stateful tail said about one cache-hit packet. *)
type tail_decision =
  | Tail_pass
  | Tail_rewritten of Ipv4_packet.t
      (** a tail filter rewrote the packet; the caller must fall back to
          the slow path (the rewrite may change the destination) *)
  | Tail_blocked of string

val check_resolve :
  t -> now:float -> meta:meta -> Ipv4_packet.t -> decision * resolution
(** Exactly {!check} — same decision, counters, and trace effects — plus
    the flow's cacheability classification. *)

val replay_block : t -> now:float -> filter -> string -> unit
(** Account one cache-hit packet of a flow whose memoized verdict is a
    head block: identical counter/trace effects to re-walking the head. *)

val check_tail :
  t -> now:float -> meta:meta -> Ipv4_packet.View.t -> tail_decision
(** Account one cache-hit packet of a flow whose memoized verdict is a
    head pass, and run the stateful tail on it. Only materializes a
    packet record when a tail filter actually exists. *)

(** {1 Sharded data plane}

    The domain-sharded data plane ({!Shard}) publishes the chain split
    into worker snapshots: head filters are shared read-only (their apply
    closures are stateless by contract; workers keep per-domain counter
    arrays), tail filters are {!replicate}d per domain so stateful
    filters keep single-writer state under flow-to-domain affinity. *)

val head_filters : t -> filter list
(** The maximal stateless prefix of the chain, in order. *)

val tail_filters : t -> filter list
(** The first stateful filter onward, in order. *)

val apply_filter :
  filter -> now:float -> meta:meta -> Ipv4_packet.t -> verdict
(** Run one filter's predicate without touching its counters (workers
    account shared head filters in per-domain arrays instead). *)

val run_replica_chain :
  now:float -> meta:meta -> Ipv4_packet.t -> filter list -> decision
(** Run a standalone replica list to a decision, crediting the replicas'
    own per-filter counters; no chain-global counters or trace. *)
