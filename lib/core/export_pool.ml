(* The parallel Control_out export lane (the wire-side complement of
   [Ingest_pool]): N worker domains, each owning the export-control
   filtering, Adj-RIB-Out delta, multi-NLRI packing, and wire encoding
   for a fixed subset of neighbors, feeding the single-writer send
   replay.

   Design in one paragraph: a flush hash-partitions the neighbor targets
   across per-domain queues by neighbor id, so each neighbor's
   Adj-RIB-Out is mutated by exactly one domain. The coordinator
   computes the dirty-prefix snapshot — the sorted (prefix, variants)
   array — once from live router state and publishes it (with the
   filter/facing closures) to all lanes before waking them; workers then
   run the same per-(prefix, neighbor) delta loop as the sequential
   flush, bucket announcements into update-groups keyed by the interned
   facing set, and encode the outgoing messages themselves: the
   path-attribute block of each facing group is encoded once per lane
   per flush ([Codec.encode_attrs_block]) and spliced into every packed
   message ([Codec.encode_update_spliced]) — the encode-once wire cache.
   Fully encoded messages are staged; after the done-handshake (the same
   Mutex/Condition parking protocol as [Shard]/[Ingest_pool], whose lock
   transitions publish all worker writes) the coordinator replays the
   staged sends in neighbor-id order through [Session.send_encoded] and
   folds the lane-local facing/block novelty sets into counters, so
   [reexport_computations] and the wire-cache hit/miss stats are
   independent of the lane count.

   Determinism (what the differential suite pins): per-neighbor message
   order is per-lane FIFO (withdraw pieces, then facing groups in
   first-seen order over the sorted prefix snapshot — the same order the
   sequential flush produces), the global send order is a stable sort by
   neighbor id (matching the sequential flush's sorted-id drain), facing
   handles are canonical arena values so cross-lane equality checks
   agree, and the facing/block computation counts are deduplicated
   across lanes at consume time. Adj-RIB-Out tables are resolved by the
   coordinator before dispatch (their lazy creation stays
   single-writer). *)

open Netcore
open Bgp

(* -- partitioning ------------------------------------------------------------ *)

(* Deterministic hash of a neighbor id onto a domain index — the same
   mix as [Ingest_pool.domain_of_neighbor], so a neighbor's ingest and
   export affinity agree. *)
let domain_of_neighbor ~workers nid =
  if workers <= 1 then 0
  else begin
    let h = (nid + 0x61c88647) * 0x9e3779b1 in
    (h lxor (h lsr 16)) land max_int mod workers
  end

(* -- what flows through the lane --------------------------------------------- *)

(* Per-flush view of one neighbor, captured by the coordinator from live
   router state immediately before the workers run (so session kills and
   establishment between flushes are always reflected). [xt_out] is the
   live Adj-RIB-Out table: the owning worker mutates it directly —
   exactly one domain touches a given neighbor's table, and the
   coordinator resolves it up front so its lazy creation never races. *)
type target = {
  xt_id : int;
  xt_export_id : int;
  xt_out : (Prefix.t, Attr_arena.handle) Hashtbl.t;
  xt_params : Codec.params option;
      (** [Some] iff the session is established: the negotiated encoding
          parameters; [None] suppresses packing (the Adj-RIB-Out delta
          still applies, exactly as on the sequential path) *)
}

(* A fully encoded staged send: the coordinator replays these through
   [Session.send_encoded] after re-checking the session. The decoded
   update rides along for the per-message NLRI accounting. *)
type staged = { sg_nid : int; sg_update : Msg.update; sg_bytes : string }

(* A wire-cache key: facing arena id plus the encoding parameters the
   block was rendered under (ADD-PATH changes NLRI encoding, AS4 changes
   AS_PATH bytes). *)
type block_key = int * bool * bool

(* -- per-domain state -------------------------------------------------------- *)

type dom = {
  mutable d_q : target array;
  mutable d_qlen : int;
  mutable d_qmax : int;  (** lifetime high-water mark (diagnostics) *)
  l_facing : (int, Attr_arena.handle) Hashtbl.t;
      (** variant arena id -> facing handle; reset every flush *)
  l_blocks : (block_key, string) Hashtbl.t;
      (** encoded attribute blocks; reset every flush *)
  mutable d_faced : int list;
      (** variant ids first faced by this lane this flush *)
  mutable d_block_keys : block_key list;
      (** block keys first encoded by this lane this flush *)
  mutable d_announce_pieces : int;
      (** announce messages spliced this flush (block-bearing) *)
  mutable d_staged : staged list;  (** reversed; drained on [consume] *)
  mutable d_staged_n : int;
}

(* Worker parking protocol — identical to [Ingest_pool]: persistent
   domains sleep on [cond] between flushes; all [w_state] transitions
   happen under [lock], which doubles as the happens-before edge for the
   plain per-domain fields and the published flush inputs. *)
type wstate = W_idle | W_work | W_done | W_quit

type t = {
  workers : int;
  doms : dom array;
  lock : Mutex.t;
  cond : Condition.t;
  w_state : wstate array;  (** one slot per worker, [workers - 1] long *)
  mutable handles : unit Domain.t array;  (** [ [||] ] = not spawned *)
  (* Inputs of the flush in progress, published before the workers wake.
     The closures run on worker domains: [cur_allowed] must be pure and
     [cur_facing] may only touch domain-safe state (the striped arena). *)
  mutable cur_prefixes : (Prefix.t * Attr_arena.handle list) array;
  mutable cur_allowed :
    export_id:int -> Attr_arena.handle list -> Attr_arena.handle list;
  mutable cur_facing : Attr_arena.handle -> Attr_arena.handle;
  mutable cur_log : (announce:bool -> int -> Prefix.t -> unit) option;
      (** per-delta trace hook; only retained on the coordinator-inline
          lane ([workers = 1]) — tracing is not domain-safe *)
  (* Cumulative wire-cache stats, folded by the coordinator on consume. *)
  mutable hits : int;
  mutable misses : int;
  mutable bytes_out : int;
}

let dummy_target =
  { xt_id = -1; xt_export_id = -1; xt_out = Hashtbl.create 1; xt_params = None }

let make_dom () =
  {
    d_q = Array.make 64 dummy_target;
    d_qlen = 0;
    d_qmax = 0;
    l_facing = Hashtbl.create 16;
    l_blocks = Hashtbl.create 16;
    d_faced = [];
    d_block_keys = [];
    d_announce_pieces = 0;
    d_staged = [];
    d_staged_n = 0;
  }

let create ~workers () =
  if workers < 1 then invalid_arg "Export_pool.create: workers must be >= 1";
  {
    workers;
    doms = Array.init workers (fun _ -> make_dom ());
    lock = Mutex.create ();
    cond = Condition.create ();
    w_state = Array.make (workers - 1) W_idle;
    handles = [||];
    cur_prefixes = [||];
    cur_allowed = (fun ~export_id:_ variants -> variants);
    cur_facing = (fun v -> v);
    cur_log = None;
    hits = 0;
    misses = 0;
    bytes_out = 0;
  }

let worker_count t = t.workers

(* -- dispatch ---------------------------------------------------------------- *)

let push d tg =
  if d.d_qlen = Array.length d.d_q then begin
    let bigger = Array.make (2 * Array.length d.d_q) dummy_target in
    Array.blit d.d_q 0 bigger 0 d.d_qlen;
    d.d_q <- bigger
  end;
  d.d_q.(d.d_qlen) <- tg;
  d.d_qlen <- d.d_qlen + 1;
  if d.d_qlen > d.d_qmax then d.d_qmax <- d.d_qlen

(* -- worker: one neighbor ---------------------------------------------------- *)

(* The facing set for variant [v], computed at most once per lane per
   flush. The first computation of a variant id records it in [d_faced];
   [consume] counts the cross-lane union, which equals exactly the
   sequential flush's facing-cache misses. *)
let facing_of t d v =
  let vid = Attr_arena.id v in
  match Hashtbl.find_opt d.l_facing vid with
  | Some f -> f
  | None ->
      let f = t.cur_facing v in
      Hashtbl.replace d.l_facing vid f;
      d.d_faced <- vid :: d.d_faced;
      f

(* The encoded attribute block for [facing], rendered at most once per
   lane per flush — the encode-once wire cache. *)
let block_of d ~params facing =
  let key =
    (Attr_arena.id facing, params.Codec.add_path, params.Codec.as4)
  in
  match Hashtbl.find_opt d.l_blocks key with
  | Some b -> b
  | None ->
      let b = Codec.encode_attrs_block ~params (Attr_arena.set facing) in
      Hashtbl.replace d.l_blocks key b;
      d.d_block_keys <- key :: d.d_block_keys;
      b

let stage d sg =
  d.d_staged <- sg :: d.d_staged;
  d.d_staged_n <- d.d_staged_n + 1

(* Replay of the sequential flush's per-neighbor work: the delta loop
   over the sorted prefix snapshot (buffering withdrawals and bucketing
   announcements into facing groups in first-seen order), then — for an
   established session — packing and encoding. Per-delta behavior must
   stay exactly in step with the sequential path, including the
   unconditional Adj-RIB-Out mutation when the session is down. *)
let process t d tg =
  let pend_withdrawn = ref [] in
  let groups : (int, Attr_arena.handle * Msg.nlri list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let order = ref [] in
  Array.iter
    (fun (prefix, variants) ->
      let allowed = t.cur_allowed ~export_id:tg.xt_export_id variants in
      let previously = Hashtbl.find_opt tg.xt_out prefix in
      match (allowed, previously) with
      | [], None -> ()
      | [], Some _ ->
          Hashtbl.remove tg.xt_out prefix;
          pend_withdrawn := Msg.nlri prefix :: !pend_withdrawn;
          (match t.cur_log with
          | Some log -> log ~announce:false tg.xt_id prefix
          | None -> ())
      | v :: _, _ ->
          let facing = facing_of t d v in
          let changed =
            match previously with
            | Some old -> not (Attr_arena.equal old facing)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace tg.xt_out prefix facing;
            let fid = Attr_arena.id facing in
            (match Hashtbl.find_opt groups fid with
            | Some (_, nlris) -> nlris := Msg.nlri prefix :: !nlris
            | None ->
                Hashtbl.replace groups fid (facing, ref [ Msg.nlri prefix ]);
                order := fid :: !order);
            match t.cur_log with
            | Some log -> log ~announce:true tg.xt_id prefix
            | None -> ()
          end)
    t.cur_prefixes;
  match tg.xt_params with
  | None -> ()
  | Some params ->
      (match List.rev !pend_withdrawn with
      | [] -> ()
      | withdrawn ->
          List.iter
            (fun (piece : Msg.update) ->
              stage d
                {
                  sg_nid = tg.xt_id;
                  sg_update = piece;
                  sg_bytes =
                    Codec.encode_update_spliced ~params ~attrs_block:"" piece;
                })
            (Codec.split_update ~params ~attrs_size:0 (Msg.update ~withdrawn ())));
      List.iter
        (fun fid ->
          match Hashtbl.find_opt groups fid with
          | None -> ()
          | Some (facing, nlris) ->
              let block = block_of d ~params facing in
              let u =
                Msg.update ~attrs:(Attr_arena.set facing)
                  ~announced:(List.rev !nlris) ()
              in
              List.iter
                (fun (piece : Msg.update) ->
                  d.d_announce_pieces <- d.d_announce_pieces + 1;
                  stage d
                    {
                      sg_nid = tg.xt_id;
                      sg_update = piece;
                      sg_bytes =
                        Codec.encode_update_spliced ~params ~attrs_block:block
                          piece;
                    })
                (Codec.split_update ~params ~attrs_size:(String.length block) u))
        (List.rev !order)

let worker t d =
  Hashtbl.reset d.l_facing;
  Hashtbl.reset d.l_blocks;
  for i = 0 to d.d_qlen - 1 do
    process t d d.d_q.(i)
  done;
  (* Drop target references so the queue doesn't pin Adj-RIB-Outs of
     removed neighbors alive. *)
  Array.fill d.d_q 0 d.d_qlen dummy_target;
  d.d_qlen <- 0

let worker_loop t i =
  let d = t.doms.(i + 1) in
  Mutex.lock t.lock;
  let rec loop () =
    match t.w_state.(i) with
    | W_idle | W_done ->
        Condition.wait t.cond t.lock;
        loop ()
    | W_quit -> Mutex.unlock t.lock
    | W_work ->
        Mutex.unlock t.lock;
        worker t d;
        Mutex.lock t.lock;
        t.w_state.(i) <- W_done;
        Condition.broadcast t.cond;
        loop ()
  in
  loop ()

(* -- flush ------------------------------------------------------------------- *)

(* Run one export flush: dispatch [targets] across the lanes, publish
   the snapshot and closures, and process everything to completion. The
   caller must quiesce control mutation for the duration: workers run
   concurrently with each other, never with the engine or session
   callbacks. [log] is retained only on the single-lane path (tracing is
   not domain-safe); multi-lane flushes skip per-delta trace lines — a
   trace-only divergence the fingerprints never see. *)
let flush t ~prefixes ~targets ~allowed ~facing ?log () =
  t.cur_prefixes <- prefixes;
  t.cur_allowed <- allowed;
  t.cur_facing <- facing;
  t.cur_log <- (if t.workers = 1 then log else None);
  List.iter
    (fun tg -> push t.doms.(domain_of_neighbor ~workers:t.workers tg.xt_id) tg)
    targets;
  if t.workers = 1 then worker t t.doms.(0)
  else begin
    if Array.length t.handles = 0 then
      t.handles <-
        Array.init (t.workers - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop t i));
    Mutex.lock t.lock;
    for i = 0 to t.workers - 2 do
      t.w_state.(i) <- W_work
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    worker t t.doms.(0);
    Mutex.lock t.lock;
    for i = 0 to t.workers - 2 do
      while t.w_state.(i) <> W_done do
        Condition.wait t.cond t.lock
      done;
      t.w_state.(i) <- W_idle
    done;
    Mutex.unlock t.lock
  end;
  (* Release the snapshot and closures: they capture router state. *)
  t.cur_prefixes <- [||];
  t.cur_allowed <- (fun ~export_id:_ variants -> variants);
  t.cur_facing <- (fun v -> v);
  t.cur_log <- None

(* -- reconciliation ---------------------------------------------------------- *)

(* Replay the flush's staged sends on the coordinator and fold counters.
   [send] re-checks the session and returns whether the bytes actually
   went out (they always do today — the flush is synchronous, so
   establishment cannot change under it — but the check keeps the lane
   honest if that ever changes). The facing/block novelty sets are
   deduplicated across lanes here, so [computations] receives exactly
   the sequential flush's facing-cache miss count and the wire-cache
   hit/miss split is lane-count-independent. Send order is a stable sort
   by neighbor id over per-lane FIFOs — the same order as the sequential
   flush's sorted-id drain. *)
let consume t ~send ~computations =
  let faced = Hashtbl.create 16 in
  let blocks = Hashtbl.create 16 in
  let pieces = ref 0 in
  Array.iter
    (fun d ->
      List.iter (fun vid -> Hashtbl.replace faced vid ()) d.d_faced;
      d.d_faced <- [];
      List.iter (fun k -> Hashtbl.replace blocks k ()) d.d_block_keys;
      d.d_block_keys <- [];
      pieces := !pieces + d.d_announce_pieces;
      d.d_announce_pieces <- 0)
    t.doms;
  computations (Hashtbl.length faced);
  let fresh = Hashtbl.length blocks in
  t.misses <- t.misses + fresh;
  t.hits <- t.hits + (!pieces - fresh);
  let staged =
    Array.to_list t.doms
    |> List.concat_map (fun d ->
           let s = List.rev d.d_staged in
           d.d_staged <- [];
           d.d_staged_n <- 0;
           s)
    |> List.stable_sort (fun a b -> Int.compare a.sg_nid b.sg_nid)
  in
  List.iter
    (fun sg ->
      if send ~nid:sg.sg_nid ~update:sg.sg_update ~bytes:sg.sg_bytes then
        t.bytes_out <- t.bytes_out + String.length sg.sg_bytes)
    staged

(* -- shutdown ---------------------------------------------------------------- *)

(* Join the worker domains (each live domain counts against the runtime's
   limit). Idempotent; the next multi-worker [flush] respawns
   transparently — queues and staging live in [doms] and survive. *)
let shutdown t =
  if Array.length t.handles > 0 then begin
    Mutex.lock t.lock;
    Array.iteri (fun i _ -> t.w_state.(i) <- W_quit) t.w_state;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.handles;
    t.handles <- [||];
    Array.iteri (fun i _ -> t.w_state.(i) <- W_idle) t.w_state
  end

(* -- observability ----------------------------------------------------------- *)

type stats = {
  wire_cache_hits : int;
  wire_cache_misses : int;
  wire_bytes_out : int;
  staged_residual : int;
  lane_depth_max : int array;
}

let stats t =
  let residual = ref 0 in
  Array.iter (fun d -> residual := !residual + d.d_staged_n) t.doms;
  {
    wire_cache_hits = t.hits;
    wire_cache_misses = t.misses;
    wire_bytes_out = t.bytes_out;
    staged_residual = !residual;
    lane_depth_max = Array.map (fun d -> d.d_qmax) t.doms;
  }
