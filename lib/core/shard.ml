(* The domain-sharded data plane (ROADMAP item 1): N worker domains, each
   owning a domain-local per-neighbor flow cache and FIB destination
   cache, forwarding against an immutable control-plane snapshot
   published through an [Atomic].

   Design in one paragraph: the control plane (which stays single-domain)
   publishes a {!snapshot} — per-neighbor persistent FIB tries, the
   experiment MAC table, and the enforcement chain split into a shared
   stateless head and per-domain-replicated stateful tail — stamped with
   a generation. Frames are dispatched to per-domain ingress queues by
   hashing the flow key (source MAC, IPv4 source, IPv4 destination), so
   every packet of a flow lands on the same domain and all per-flow
   state — cached verdicts, shaper buckets keyed per flow — stays
   single-writer. A drain spawns the workers, each of which reads the
   current snapshot once, compares its generation against the one its
   caches were built for, resets the domain-local caches on mismatch
   (detection is one integer compare; no locks anywhere on the hot
   path), and forwards its queue. Workers buffer externally-visible
   effects (deliveries, ICMP, backbone sends) and count everything in
   domain-local fields; after the join, {!consume} folds those into the
   router's registry from the coordinating domain — the join provides
   the happens-before edge, so no torn reads.

   The worker fast path mirrors [Data_plane.forward_experiment_frame]
   exactly — same verdicts, same per-filter accounting, same delivery
   multiset, same shaper debits (per-flow keys + flow affinity make the
   debits bit-identical) — which the parallel-vs-sequential differential
   suite pins down. The one deliberate divergence: a flow entry carries a
   single snapshot generation instead of the sequential path's three
   stamps, so invalidation is coarser and hit/miss counts may differ
   across equivalent runs (never verdicts). *)

open Netcore

(* A flow cache never outgrows this per domain; on overflow the table
   resets (same policy as the sequential cache). *)
let flow_cache_capacity = 4096

(* -- flow-to-domain placement ---------------------------------------------- *)

(* Deterministic hash of the flow key onto a domain index. Mixing uses
   two odd multiplicative constants; determinism matters (the
   differential suite and shaper-debit exactness both rely on stable
   placement), quality only needs to spread the handful of bits that
   differ between flows. *)
let domain_of_flow ~domains ~src_mac ~src ~dst =
  if domains <= 1 then 0
  else begin
    let h = Mac.to_int src_mac in
    let h = (h lxor Ipv4.hash src) * 0x9e3779b1 in
    let h = (h lxor Ipv4.hash dst) * 0x85ebca77 in
    (h lxor (h lsr 17)) land max_int mod domains
  end

(* -- the published control snapshot ---------------------------------------- *)

(* Per-neighbor slice of a snapshot. [sn_trie] is the neighbor FIB's
   persistent trie root: immutable, so safe to walk from any domain. *)
type nsnap = {
  sn_id : int;
  sn_alias : bool;  (** remote neighbor: egress goes over the backbone *)
  sn_trie : Rib.Fib.entry Ptrie.V4.t;
}

type snapshot = {
  snap_gen : int;
  snap_vmac : (Mac.t, nsnap) Hashtbl.t;
      (** virtual MAC -> neighbor slice; built fresh per publication and
          never mutated after, so concurrent reads are safe *)
  snap_exp_mac : (Mac.t, string) Hashtbl.t;
      (** experiment station MAC -> experiment name (ingress attribution) *)
  snap_head : Data_enforcer.filter array;
      (** shared stateless head, in chain order; workers never touch its
          counters (per-domain arrays instead) *)
  snap_tail : Data_enforcer.filter array;
      (** stateful tail originals; workers run per-domain replicas *)
}

let empty_snapshot =
  {
    snap_gen = 0;
    snap_vmac = Hashtbl.create 1;
    snap_exp_mac = Hashtbl.create 1;
    snap_head = [||];
    snap_tail = [||];
  }

(* -- per-domain state ------------------------------------------------------- *)

(* Flow-cache key with mutable fields: each domain keeps one reusable
   probe record so cache hits allocate nothing for the lookup (the
   sequential path's tuple key allocates per frame). *)
module Fkey = struct
  type t = { mutable k_mac : Mac.t; mutable k_src : Ipv4.t; mutable k_dst : Ipv4.t }

  let equal a b =
    Mac.equal a.k_mac b.k_mac
    && Ipv4.equal a.k_src b.k_src
    && Ipv4.equal a.k_dst b.k_dst

  let hash k =
    ((((Mac.hash k.k_mac * 31) + Ipv4.hash k.k_src) * 31)
    + Ipv4.hash k.k_dst)
    land max_int
end

module Ftbl = Hashtbl.Make (Fkey)

(* The memoized per-flow action. A head block stores the blocking
   filter's index into [snap_head] (the replay credits filters before it,
   exactly like [Data_enforcer.replay_block]). *)
type action =
  | Sblock of int * string
  | Sforward of Rib.Fib.entry
  | Snofib

type flow = {
  fl_action : action;
  fl_exp : string option;  (** sending experiment, for attribution *)
  fl_ingress : string;  (** memoized ingress label *)
}

(* Externally-visible effects a worker may not perform itself (they touch
   shared router state — the owner trie, the backbone ARP client, global
   counters); buffered and applied by the coordinator on [consume]. *)
type outcome =
  | O_icmp of Ipv4_packet.t  (** TTL expired: answer with ICMP inbound *)
  | O_backbone of Ipv4.t * Ipv4_packet.t
      (** forward over the backbone toward the global IP *)

type dom = {
  mutable d_gen : int;  (** generation the domain caches were built for *)
  d_flows : (int, flow Ftbl.t) Hashtbl.t;  (** neighbor id -> flow cache *)
  d_dcaches : (int, Rib.Fib.entry Dcache.t) Hashtbl.t;
      (** neighbor id -> destination cache over the snapshot trie *)
  d_probe : Fkey.t;  (** reusable lookup key: no alloc per hit *)
  mutable d_head_allowed : int array;  (** per-head-filter, this domain *)
  mutable d_head_blocked : int array;
  mutable d_tail : Data_enforcer.filter list;
      (** private tail replicas; persist across generations (shaper state
          must survive control churn), appended to when the chain grows *)
  (* Forwarding counters, folded into the router registry on [consume]. *)
  mutable d_hits : int;
  mutable d_misses : int;
  mutable d_to_neighbors : int;
  mutable d_dropped : int;
  (* Cumulative enforcer chain totals (mirror of [Data_enforcer.stats]);
     never reset — read by [enforcer_stats]. *)
  mutable d_allowed : int;
  mutable d_blocked : int;
  (* Buffered effects, reversed (consed); drained on [consume]. *)
  mutable d_deliv : (int * Ipv4_packet.View.t) list;
  mutable d_outcomes : outcome list;
  d_attr : (string, int ref * int ref) Hashtbl.t;
      (** experiment -> (packets, bytes) out, this drain *)
  (* The domain's ingress queue, filled by [dispatch] between drains.
     [d_qmax] is the high-water mark across the pool's lifetime — a
     skewed flow hash shows up here (one domain's max far above the
     others'), which is what makes speedup-floor failures diagnosable
     from the bench JSON alone. *)
  mutable d_q : Eth.t array;
  mutable d_qlen : int;
  mutable d_qmax : int;
}

(* Worker parking protocol: persistent domains sleep on [cond] between
   drains instead of being respawned (a spawn/join cycle costs
   milliseconds; a wake costs microseconds). All [w_state] transitions
   happen under [lock], which doubles as the happens-before edge for the
   plain per-domain fields: the coordinator's queue writes are visible
   to a worker once it observes [W_work], and the worker's counter and
   effect-buffer writes are visible to the coordinator once it observes
   [W_done]. *)
type wstate = W_idle | W_work of float | W_done | W_quit

type t = {
  domains : int;
  current : snapshot Atomic.t;
  doms : dom array;
  lock : Mutex.t;
  cond : Condition.t;
  w_state : wstate array;  (** one slot per worker, [domains - 1] long *)
  mutable handles : unit Domain.t array;  (** [ [||] ] = not spawned *)
}

let dummy_frame =
  { Eth.dst = Mac.zero; src = Mac.zero; ethertype = Eth.Other 0; payload = "" }

let make_dom _i =
  {
    d_gen = -1;
    d_flows = Hashtbl.create 8;
    d_dcaches = Hashtbl.create 8;
    d_probe = { Fkey.k_mac = Mac.zero; k_src = Ipv4.any; k_dst = Ipv4.any };
    d_head_allowed = [||];
    d_head_blocked = [||];
    d_tail = [];
    d_hits = 0;
    d_misses = 0;
    d_to_neighbors = 0;
    d_dropped = 0;
    d_allowed = 0;
    d_blocked = 0;
    d_deliv = [];
    d_outcomes = [];
    d_attr = Hashtbl.create 4;
    d_q = Array.make 256 dummy_frame;
    d_qlen = 0;
    d_qmax = 0;
  }

let create ~domains () =
  if domains < 1 then invalid_arg "Shard.create: domains must be >= 1";
  {
    domains;
    current = Atomic.make empty_snapshot;
    doms = Array.init domains make_dom;
    lock = Mutex.create ();
    cond = Condition.create ();
    w_state = Array.make (domains - 1) W_idle;
    handles = [||];
  }

let domain_count t = t.domains
let generation t = (Atomic.get t.current).snap_gen
let queue_depth_max t = Array.map (fun d -> d.d_qmax) t.doms

(* -- publication ------------------------------------------------------------ *)

(* Publish a new snapshot. The tables must be freshly built (never
   mutated after this call); the single [Atomic.set] is the linearization
   point — a worker reads either the old snapshot or the new one, both
   internally consistent. *)
let publish t ~vmac ~exp_mac ~head ~tail =
  let prev = Atomic.get t.current in
  Atomic.set t.current
    {
      snap_gen = prev.snap_gen + 1;
      snap_vmac = vmac;
      snap_exp_mac = exp_mac;
      snap_head = Array.of_list head;
      snap_tail = Array.of_list tail;
    }

(* -- dispatch --------------------------------------------------------------- *)

let push d frame =
  if d.d_qlen = Array.length d.d_q then begin
    let bigger = Array.make (2 * Array.length d.d_q) dummy_frame in
    Array.blit d.d_q 0 bigger 0 d.d_qlen;
    d.d_q <- bigger
  end;
  d.d_q.(d.d_qlen) <- frame;
  d.d_qlen <- d.d_qlen + 1;
  if d.d_qlen > d.d_qmax then d.d_qmax <- d.d_qlen

(* Queue one frame on its flow's home domain. The IPv4 addresses are read
   straight from the payload bytes (the full header validation happens on
   the worker); a runt frame lands on domain 0, whose worker drops it the
   same way the sequential path would. *)
let dispatch t (frame : Eth.t) =
  let d =
    if t.domains = 1 then 0
    else if String.length frame.Eth.payload >= Ipv4_packet.header_size then
      domain_of_flow ~domains:t.domains ~src_mac:frame.Eth.src
        ~src:(Ipv4.of_int32 (String.get_int32_be frame.Eth.payload 12))
        ~dst:(Ipv4.of_int32 (String.get_int32_be frame.Eth.payload 16))
    else 0
  in
  push t.doms.(d) frame

(* -- worker: cache maintenance ---------------------------------------------- *)

(* Reconcile a domain with the snapshot generation: one integer compare
   per drain on the hot path; on mismatch the domain-local caches reset
   (flow memos and destination caches are derived from snapshot state),
   the head counter arrays grow to match the chain (the chain is
   append-only, so indices remain stable), and tail replicas are created
   for any filters appended since ([Data_enforcer.replicate] — existing
   replicas persist, carrying shaper state across control churn). *)
let sync_caches d snap =
  if d.d_gen <> snap.snap_gen then begin
    Hashtbl.iter (fun _ tbl -> Ftbl.reset tbl) d.d_flows;
    Hashtbl.iter (fun _ c -> Dcache.invalidate c) d.d_dcaches;
    let hl = Array.length snap.snap_head in
    if Array.length d.d_head_allowed < hl then begin
      let grow a =
        let b = Array.make hl 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      d.d_head_allowed <- grow d.d_head_allowed;
      d.d_head_blocked <- grow d.d_head_blocked
    end;
    let have = List.length d.d_tail in
    let want = Array.length snap.snap_tail in
    if have < want then
      d.d_tail <-
        d.d_tail
        @ List.init (want - have) (fun i ->
              Data_enforcer.replicate snap.snap_tail.(have + i));
    d.d_gen <- snap.snap_gen
  end

let flows_of d nid =
  match Hashtbl.find_opt d.d_flows nid with
  | Some tbl -> tbl
  | None ->
      let tbl = Ftbl.create 256 in
      Hashtbl.replace d.d_flows nid tbl;
      tbl

let dcache_of d nid =
  match Hashtbl.find_opt d.d_dcaches nid with
  | Some c -> c
  | None ->
      let c = Dcache.create () in
      Hashtbl.replace d.d_dcaches nid c;
      c

(* FIB lookup against the snapshot trie through the domain-local
   destination cache — the sharded analog of [Rib.Fib.lookup]. *)
let fib_lookup d (ns : nsnap) addr =
  let c = dcache_of d ns.sn_id in
  match Dcache.find c addr with
  | Some cached -> cached
  | None ->
      let result =
        match Ptrie.lookup_v4 addr ns.sn_trie with
        | Some (_, e) -> Some e
        | None -> None
      in
      Dcache.store c addr result;
      result

(* -- worker: forwarding ------------------------------------------------------ *)

let attribute d exp bytes =
  match exp with
  | None -> ()
  | Some name ->
      let packets, total =
        match Hashtbl.find_opt d.d_attr name with
        | Some pb -> pb
        | None ->
            let pb = (ref 0, ref 0) in
            Hashtbl.replace d.d_attr name pb;
            pb
      in
      incr packets;
      total := !total + bytes

(* The record-path continuation for an allowed packet — the mirror of
   [Data_plane.forward_allowed_packet]: TTL, FIB lookup on the (possibly
   rewritten) destination, egress. ICMP generation and backbone sends
   touch shared router state, so they surface as outcomes. *)
let forward_allowed d (ns : nsnap) (packet : Ipv4_packet.t) =
  if packet.Ipv4_packet.ttl <= 1 then
    d.d_outcomes <- O_icmp packet :: d.d_outcomes
  else begin
    let packet = Ipv4_packet.decrement_ttl packet in
    match fib_lookup d ns packet.Ipv4_packet.dst with
    | None -> d.d_dropped <- d.d_dropped + 1
    | Some entry ->
        if ns.sn_alias then
          d.d_outcomes <-
            O_backbone (entry.Rib.Fib.next_hop, packet) :: d.d_outcomes
        else begin
          d.d_to_neighbors <- d.d_to_neighbors + 1;
          d.d_deliv <- (ns.sn_id, Ipv4_packet.View.of_packet packet) :: d.d_deliv
        end
  end

(* Serve one frame from a memoized flow decision — the mirror of
   [Data_plane.execute_cached], with shared-head accounting in the
   per-domain arrays and the stateful tail run on this domain's
   replicas. *)
let execute_cached d snap ~now (ns : nsnap) view (fl : flow) =
  match fl.fl_action with
  | Sblock (i, _reason) ->
      (* Replay the memoized head block: filters before the blocker
         allowed the packet, the blocker blocked it. *)
      for j = 0 to i - 1 do
        d.d_head_allowed.(j) <- d.d_head_allowed.(j) + 1
      done;
      d.d_head_blocked.(i) <- d.d_head_blocked.(i) + 1;
      d.d_blocked <- d.d_blocked + 1;
      d.d_dropped <- d.d_dropped + 1
  | (Sforward _ | Snofib) as action -> (
      for j = 0 to Array.length snap.snap_head - 1 do
        d.d_head_allowed.(j) <- d.d_head_allowed.(j) + 1
      done;
      match d.d_tail with
      | [] -> (
          d.d_allowed <- d.d_allowed + 1;
          attribute d fl.fl_exp (Ipv4_packet.View.total_length view);
          if Ipv4_packet.View.ttl view <= 1 then
            d.d_outcomes <-
              O_icmp (Ipv4_packet.View.to_packet view) :: d.d_outcomes
          else begin
            Ipv4_packet.View.decrement_ttl view;
            match action with
            | Sforward entry ->
                if ns.sn_alias then
                  d.d_outcomes <-
                    O_backbone
                      (entry.Rib.Fib.next_hop, Ipv4_packet.View.to_packet view)
                    :: d.d_outcomes
                else begin
                  d.d_to_neighbors <- d.d_to_neighbors + 1;
                  d.d_deliv <- (ns.sn_id, view) :: d.d_deliv
                end
            | Snofib -> d.d_dropped <- d.d_dropped + 1
            | Sblock _ -> assert false
          end)
      | tail -> (
          let packet = Ipv4_packet.View.to_packet view in
          let meta = { Data_enforcer.ingress = fl.fl_ingress } in
          match Data_enforcer.run_replica_chain ~now ~meta packet tail with
          | Data_enforcer.Blocked _ ->
              d.d_blocked <- d.d_blocked + 1;
              d.d_dropped <- d.d_dropped + 1
          | Data_enforcer.Allowed p when p == packet -> (
              (* Tail pass: forward the view in place. *)
              d.d_allowed <- d.d_allowed + 1;
              attribute d fl.fl_exp (Ipv4_packet.View.total_length view);
              if Ipv4_packet.View.ttl view <= 1 then
                d.d_outcomes <-
                  O_icmp (Ipv4_packet.View.to_packet view) :: d.d_outcomes
              else begin
                Ipv4_packet.View.decrement_ttl view;
                match action with
                | Sforward entry ->
                    if ns.sn_alias then
                      d.d_outcomes <-
                        O_backbone
                          ( entry.Rib.Fib.next_hop,
                            Ipv4_packet.View.to_packet view )
                        :: d.d_outcomes
                    else begin
                      d.d_to_neighbors <- d.d_to_neighbors + 1;
                      d.d_deliv <- (ns.sn_id, view) :: d.d_deliv
                    end
                | Snofib -> d.d_dropped <- d.d_dropped + 1
                | Sblock _ -> assert false
              end)
          | Data_enforcer.Allowed p ->
              (* Tail rewrite: the destination may have changed; back to
                 the record path, FIB lookup redone on the rewrite. *)
              d.d_allowed <- d.d_allowed + 1;
              attribute d fl.fl_exp
                (Ipv4_packet.header_size + String.length p.Ipv4_packet.payload);
              forward_allowed d ns p))

(* Full resolution on a cache miss — the mirror of
   [Data_plane.resolve_and_forward]: walk the shared head with per-domain
   accounting, classify cacheability, memoize, run the tail replicas,
   forward. *)
let resolve d snap ~now (ns : nsnap) ~src_mac ~sender view =
  let ingress =
    match sender with
    | Some name -> name
    | None -> Printf.sprintf "unknown:%s" (Mac.to_string src_mac)
  in
  let meta = { Data_enforcer.ingress } in
  let packet = Ipv4_packet.View.to_packet view in
  let hl = Array.length snap.snap_head in
  let run_tail packet =
    match d.d_tail with
    | [] ->
        d.d_allowed <- d.d_allowed + 1;
        Data_enforcer.Allowed packet
    | tail -> (
        match Data_enforcer.run_replica_chain ~now ~meta packet tail with
        | Data_enforcer.Allowed _ as a ->
            d.d_allowed <- d.d_allowed + 1;
            a
        | Data_enforcer.Blocked _ as b ->
            d.d_blocked <- d.d_blocked + 1;
            b)
  in
  (* The uncacheable continuation after a head Transform: finish the
     remaining head and the tail as one walk. *)
  let rec uncacheable i packet =
    if i >= hl then run_tail packet
    else
      match Data_enforcer.apply_filter snap.snap_head.(i) ~now ~meta packet with
      | Data_enforcer.Allow ->
          d.d_head_allowed.(i) <- d.d_head_allowed.(i) + 1;
          uncacheable (i + 1) packet
      | Data_enforcer.Block reason ->
          d.d_head_blocked.(i) <- d.d_head_blocked.(i) + 1;
          d.d_blocked <- d.d_blocked + 1;
          Data_enforcer.Blocked reason
      | Data_enforcer.Transform packet ->
          d.d_head_allowed.(i) <- d.d_head_allowed.(i) + 1;
          uncacheable (i + 1) packet
  in
  let rec head_walk i packet =
    if i >= hl then (run_tail packet, `Cacheable_allow)
    else
      match Data_enforcer.apply_filter snap.snap_head.(i) ~now ~meta packet with
      | Data_enforcer.Allow ->
          d.d_head_allowed.(i) <- d.d_head_allowed.(i) + 1;
          head_walk (i + 1) packet
      | Data_enforcer.Block reason ->
          d.d_head_blocked.(i) <- d.d_head_blocked.(i) + 1;
          d.d_blocked <- d.d_blocked + 1;
          (Data_enforcer.Blocked reason, `Cacheable_block (i, reason))
      | Data_enforcer.Transform packet ->
          d.d_head_allowed.(i) <- d.d_head_allowed.(i) + 1;
          (uncacheable (i + 1) packet, `Uncacheable)
  in
  let decision, resolution = head_walk 0 packet in
  (match resolution with
  | `Uncacheable -> ()
  | `Cacheable_block _ | `Cacheable_allow ->
      let fl_action =
        match resolution with
        | `Cacheable_block (i, reason) -> Sblock (i, reason)
        | _ -> (
            match fib_lookup d ns (Ipv4_packet.View.dst view) with
            | Some entry -> Sforward entry
            | None -> Snofib)
      in
      let tbl = flows_of d ns.sn_id in
      if Ftbl.length tbl >= flow_cache_capacity then Ftbl.reset tbl;
      Ftbl.replace tbl
        {
          Fkey.k_mac = src_mac;
          k_src = Ipv4_packet.View.src view;
          k_dst = Ipv4_packet.View.dst view;
        }
        { fl_action; fl_exp = sender; fl_ingress = ingress });
  match decision with
  | Data_enforcer.Blocked _ -> d.d_dropped <- d.d_dropped + 1
  | Data_enforcer.Allowed packet ->
      attribute d sender
        (Ipv4_packet.header_size + String.length packet.Ipv4_packet.payload);
      forward_allowed d ns packet

(* One frame, on its home domain — the mirror of
   [Data_plane.forward_experiment_frame]'s cached path. *)
let forward_frame d snap ~now (frame : Eth.t) =
  match Hashtbl.find_opt snap.snap_vmac frame.Eth.dst with
  | None -> d.d_dropped <- d.d_dropped + 1
  | Some ns -> (
      match Ipv4_packet.View.of_string frame.Eth.payload with
      | Error _ -> d.d_dropped <- d.d_dropped + 1
      | Ok view -> (
          let tbl = flows_of d ns.sn_id in
          let probe = d.d_probe in
          probe.Fkey.k_mac <- frame.Eth.src;
          probe.Fkey.k_src <- Ipv4_packet.View.src view;
          probe.Fkey.k_dst <- Ipv4_packet.View.dst view;
          match Ftbl.find tbl probe with
          | fl ->
              d.d_hits <- d.d_hits + 1;
              execute_cached d snap ~now ns view fl
          | exception Not_found ->
              d.d_misses <- d.d_misses + 1;
              let sender = Hashtbl.find_opt snap.snap_exp_mac frame.Eth.src in
              resolve d snap ~now ns ~src_mac:frame.Eth.src ~sender view))

(* -- drain ------------------------------------------------------------------- *)

let worker t d ~now =
  let snap = Atomic.get t.current in
  sync_caches d snap;
  for i = 0 to d.d_qlen - 1 do
    forward_frame d snap ~now d.d_q.(i)
  done;
  (* Drop frame references so the queue doesn't pin payloads alive. *)
  Array.fill d.d_q 0 d.d_qlen dummy_frame;
  d.d_qlen <- 0

(* The persistent worker body: park on the condition until the
   coordinator posts [W_work now], drain the owned queue outside the
   lock (workers run genuinely in parallel), post [W_done], park again.
   [W_quit] exits the loop (see [shutdown]). *)
let worker_loop t i =
  let d = t.doms.(i + 1) in
  Mutex.lock t.lock;
  let rec loop () =
    match t.w_state.(i) with
    | W_idle | W_done ->
        Condition.wait t.cond t.lock;
        loop ()
    | W_quit -> Mutex.unlock t.lock
    | W_work now ->
        Mutex.unlock t.lock;
        worker t d ~now;
        Mutex.lock t.lock;
        t.w_state.(i) <- W_done;
        Condition.broadcast t.cond;
        loop ()
  in
  loop ()

(* Forward everything queued: wake the parked workers (spawning them on
   the first multi-domain drain), run domain 0 on the coordinator, then
   wait for every worker to post done. The control plane is quiesced
   for the duration of the drain (workers run concurrently with each
   other, never with control mutation); with a single domain everything
   runs inline and no domain is ever spawned. *)
let drain t ~now =
  if t.domains = 1 then worker t t.doms.(0) ~now
  else begin
    if Array.length t.handles = 0 then
      t.handles <-
        Array.init (t.domains - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop t i));
    Mutex.lock t.lock;
    for i = 0 to t.domains - 2 do
      t.w_state.(i) <- W_work now
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    worker t t.doms.(0) ~now;
    Mutex.lock t.lock;
    for i = 0 to t.domains - 2 do
      while t.w_state.(i) <> W_done do
        Condition.wait t.cond t.lock
      done;
      t.w_state.(i) <- W_idle
    done;
    Mutex.unlock t.lock
  end

(* Release the worker domains (they park, never busy-wait, but each
   live domain counts against the runtime's domain limit). Safe to call
   on any pool, including never-spawned and sequential ones; the next
   multi-domain [drain] respawns workers transparently — all sharding
   state (caches, queues, counters) lives in [doms] and survives. *)
let shutdown t =
  if Array.length t.handles > 0 then begin
    Mutex.lock t.lock;
    Array.iteri (fun i _ -> t.w_state.(i) <- W_quit) t.w_state;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.handles;
    t.handles <- [||];
    Array.iteri (fun i _ -> t.w_state.(i) <- W_idle) t.w_state
  end

(* -- aggregation ------------------------------------------------------------- *)

(* Fold the drain's buffered effects and counters into the caller's
   sinks, in domain-index order (deliveries within a domain stay in
   forwarding order — per-flow order is preserved end to end). Runs on
   the coordinator after [drain] has observed every worker's [W_done]
   under the lock, which establishes the happens-before edge making the
   plain per-domain fields safe to read. *)
let consume t ~deliver ~outcome ~attribute ~counters =
  let hits = ref 0 and misses = ref 0 in
  let to_neighbors = ref 0 and dropped = ref 0 in
  Array.iter
    (fun d ->
      hits := !hits + d.d_hits;
      d.d_hits <- 0;
      misses := !misses + d.d_misses;
      d.d_misses <- 0;
      to_neighbors := !to_neighbors + d.d_to_neighbors;
      d.d_to_neighbors <- 0;
      dropped := !dropped + d.d_dropped;
      d.d_dropped <- 0;
      List.iter (fun (nid, view) -> deliver nid view) (List.rev d.d_deliv);
      d.d_deliv <- [];
      List.iter outcome (List.rev d.d_outcomes);
      d.d_outcomes <- [];
      Hashtbl.iter
        (fun name (packets, bytes) -> attribute name ~packets:!packets ~bytes:!bytes)
        d.d_attr;
      Hashtbl.reset d.d_attr)
    t.doms;
  counters ~hits:!hits ~misses:!misses ~to_neighbors:!to_neighbors
    ~dropped:!dropped

(* -- enforcer aggregation (tests, diagnostics) ------------------------------- *)

(* Chain-global (allowed, blocked) summed across domains — the sharded
   analog of [Data_enforcer.stats]. Call between drains. *)
let enforcer_stats t =
  Array.fold_left
    (fun (a, b) d -> (a + d.d_allowed, b + d.d_blocked))
    (0, 0) t.doms

(* Per-filter (name, allowed, blocked) in chain order, summed across
   domains — the sharded analog of [Data_enforcer.filter_stats]. Head
   counts come from the per-domain arrays, tail counts from the replicas
   (positions align because the chain is append-only). *)
let filter_stats t =
  let snap = Atomic.get t.current in
  let head =
    Array.to_list
      (Array.mapi
         (fun i f ->
           let a = ref 0 and b = ref 0 in
           Array.iter
             (fun d ->
               if i < Array.length d.d_head_allowed then begin
                 a := !a + d.d_head_allowed.(i);
                 b := !b + d.d_head_blocked.(i)
               end)
             t.doms;
           (Data_enforcer.filter_name f, !a, !b))
         snap.snap_head)
  in
  let tail =
    Array.to_list
      (Array.mapi
         (fun j f ->
           let a = ref 0 and b = ref 0 in
           Array.iter
             (fun d ->
               match List.nth_opt d.d_tail j with
               | Some replica ->
                   let fa, fb = Data_enforcer.filter_counts replica in
                   a := !a + fa;
                   b := !b + fb
               | None -> ())
             t.doms;
           (Data_enforcer.filter_name f, !a, !b))
         snap.snap_tail)
  in
  head @ tail
