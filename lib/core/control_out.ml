(* Control plane, outbound (paper §3.2.1 + §3.3 + §4.7): experiment
   announcements pass through the control-plane enforcement engine, then
   propagate to the neighbors selected by export-control communities, to
   the backbone mesh, and onward to neighbors at remote PoPs (§4.4).

   Re-export is batched: instead of recomputing every neighbor's view of
   a prefix on every update that touches it, updates mark the prefix
   dirty and one flush per engine tick drains the queue. A burst of
   updates to one prefix costs a single variant recomputation per
   neighbor; deltas are still computed against the per-neighbor
   Adj-RIB-Out, so the wire sees exactly the final state. *)

open Netcore
open Bgp
open Sim
open Router_state

(* -- variant selection ------------------------------------------------------ *)

(* All live announcement variants for [prefix], local and remote, as
   interned handles. [rev_map]/[rev_append] keep the accumulation linear
   (naive [List.map ... @ acc] inside the fold is quadratic in the
   number of variants). *)
let variants_for_prefix t prefix =
  let local =
    Hashtbl.fold
      (fun _ e acc ->
        match Hashtbl.find_opt e.routes prefix with
        | Some vs ->
            List.rev_append (List.rev_map (fun v -> v.v_attrs) !vs) acc
        | None -> acc)
      t.experiments []
  in
  Hashtbl.fold
    (fun _ (p, h, _) acc -> if Prefix.equal p prefix then h :: acc else acc)
    t.remote_exp_routes local

(* Recompute [prefix]'s traffic owner with local-first precedence: a
   locally attached experiment always wins (delivery here beats a
   backbone detour — and two PoPs each deferring to the other would
   bounce packets between them until TTL death), any surviving mesh
   import is the fallback, and with no candidate the entry goes away.
   Called whenever either candidate set changes, so a local withdrawal
   re-homes traffic onto a remote PoP and vice versa. *)
let refresh_owner t prefix =
  let local =
    Hashtbl.fold
      (fun name e acc ->
        match acc with
        | Some _ -> acc
        | None -> if Hashtbl.mem e.routes prefix then Some name else None)
      t.experiments None
  in
  match local with
  | Some exp_name -> owner_insert t prefix (Local_exp exp_name)
  | None -> (
      let remote =
        Hashtbl.fold
          (fun (pop, _) (p, _, g) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if Prefix.equal p prefix then
                  Some (Remote_exp { pop; via_global = g })
                else None)
          t.remote_exp_routes None
      in
      match remote with
      | Some owner -> owner_insert t prefix owner
      | None -> owner_remove t prefix)

let variants_for_prefix_v6 t prefix =
  Hashtbl.fold
    (fun _ e acc ->
      match Hashtbl.find_opt e.routes_v6 prefix with
      | Some vs ->
          List.rev_append (List.rev_map (fun v -> v.v_attrs) !vs) acc
      | None -> acc)
    t.experiments []

(* Attributes as announced to a real eBGP neighbor: platform ASN prepended,
   next hop set to our interface, control communities and iBGP-only
   attributes stripped. *)
let neighbor_facing_attrs t attrs =
  let _control, attrs =
    Control_enforcer.split_control_communities t.control attrs
  in
  let path =
    match Attr.as_path attrs with Some p -> p | None -> Aspath.empty
  in
  attrs
  |> Attr.with_as_path (Aspath.prepend t.asn path)
  |> Attr.with_next_hop t.primary_ip
  |> Attr.remove_code 5 (* LOCAL_PREF is iBGP-only *)

(* The variants a neighbor with [export_id] is allowed to hear:
   export-control tags plus the well-known NO_EXPORT (RFC 1997), which
   keeps a route inside the platform. Pure (handles are immutable and
   [ctl_asn] is pre-resolved), so the export lane may run it from any
   worker domain. *)
let allowed_variants ~ctl_asn ~export_id variants =
  List.filter
    (fun h ->
      let communities = Attr.communities (Attr_arena.set h) in
      (not (List.exists (Community.equal Community.no_export) communities))
      && Export_control.allows ~ctl_asn ~export_id communities)
    variants

let allowed_for_neighbor t (ns : neighbor_state) variants =
  allowed_variants ~ctl_asn:(control_asn t) ~export_id:ns.export_id variants

(* -- the v4 export flush through the lane pool ------------------------------- *)

(* The neighbors selecting a given variant form an update-group in the
   FRR sense: they share capabilities and next-hop treatment, so the
   neighbor-facing attribute set is a function of the variant alone.
   One flush computes each facing set once per lane (deduplicated across
   lanes for the [reexport_computations] counter) and encodes its wire
   attribute block once, splicing it into every packed message; what
   stays per-neighbor is only the export-control filter, the Adj-RIB-Out
   delta, and the message framing.

   The whole flush — sequential (the default, one inline lane) or
   parallel ([?parallel_export:n]) — runs through [Export_pool]: the
   coordinator snapshots the variants of every dirty prefix, captures a
   target per real neighbor (pre-resolving its Adj-RIB-Out so the lazy
   creation never races), and the lanes run the delta + packing +
   encoding; [consume] then replays the staged sends in neighbor-id
   order and folds the counters, so the two paths are byte-identical on
   the wire. *)

let flush_v4 t prefixes =
  let ctl_asn = control_asn t in
  let snapshot =
    Array.of_list (List.map (fun p -> (p, variants_for_prefix t p)) prefixes)
  in
  let targets =
    List.filter_map
      (fun (ns : neighbor_state) ->
        match ns.info.Neighbor.kind with
        | Neighbor.Backbone_alias _ -> None
        | _ ->
            Some
              {
                Export_pool.xt_id = ns.info.Neighbor.id;
                xt_export_id = ns.export_id;
                xt_out = adj_out_table t ns.info.Neighbor.id;
                xt_params =
                  (match ns.session with
                  | Some s when Session.established s ->
                      Some (Session.send_params s)
                  | _ -> None);
              })
      (real_neighbors t)
  in
  Export_pool.flush t.export_pool ~prefixes:snapshot ~targets
    ~allowed:(fun ~export_id variants ->
      allowed_variants ~ctl_asn ~export_id variants)
    ~facing:(fun v ->
      Attr_arena.intern (neighbor_facing_attrs t (Attr_arena.set v)))
    ~log:(fun ~announce nid prefix ->
      if announce then log t "announce %a to neighbor %d" Prefix.pp prefix nid
      else log t "withdraw %a from neighbor %d" Prefix.pp prefix nid)
    ();
  Export_pool.consume t.export_pool
    ~send:(fun ~nid ~update ~bytes ->
      (* Messages and NLRI are accounted per wire message, exactly as
         the pre-lane flush did per split piece. *)
      match neighbor t nid with
      | Some { session = Some s; _ } when Session.established s ->
          t.counters.updates_to_neighbors <-
            t.counters.updates_to_neighbors + 1;
          t.counters.nlri_to_neighbors <-
            t.counters.nlri_to_neighbors
            + List.length update.Msg.announced
            + List.length update.Msg.withdrawn;
          Session.send_encoded s update bytes;
          true
      | _ -> false)
    ~computations:(fun n ->
      t.counters.reexport_computations <- t.counters.reexport_computations + n)

(* -- IPv6 (MP-BGP) experiment announcements: control plane only ----------- *)

(* Like the v4 flush, the v6 pass runs as update-groups: the facing base
   set is computed once per variant per flush, and each neighbor's batch
   leaves as one MP_UNREACH update plus one MP_REACH update per facing
   group (NLRI lists chunked so no message outgrows the 4096-byte
   boundary; MP NLRIs ride in the attribute, out of reach of
   [Codec.split_update]). *)

type pending_v6 = {
  mutable p6_unreach : (Prefix_v6.t * int option) list;  (* reversed *)
  p6_groups : (int, Attr.set * (Prefix_v6.t * int option) list ref) Hashtbl.t;
      (* variant arena id -> (facing base set, reversed NLRIs) *)
  mutable p6_order : int list;  (* variant arena ids, reversed first-seen *)
}

let mp_chunk_size = 256

(* Split [l] into chunks of at most [n]. Tail-recursive in the chunk
   list: a full-table v6 withdraw storm hands this a few hundred
   thousand NLRIs, and the previous [chunk :: chunked rest n] recursion
   (one stack frame per chunk) was a stack-overflow risk. *)
let chunked l n =
  if n <= 0 then invalid_arg "Control_out.chunked: chunk size must be > 0";
  let rec take acc k rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when k = 0 -> (List.rev acc, rest)
    | x :: tl -> take (x :: acc) (k - 1) tl
  in
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
        let chunk, rest = take [] n rest in
        go (chunk :: acc) rest
  in
  go [] l

let flush_v6 t prefixes =
  let facing_cache = Hashtbl.create 8 in
  let by_neighbor = Hashtbl.create 8 in
  let pending_for (ns : neighbor_state) =
    let id = ns.info.Neighbor.id in
    match Hashtbl.find_opt by_neighbor id with
    | Some p -> p
    | None ->
        let p =
          { p6_unreach = []; p6_groups = Hashtbl.create 4; p6_order = [] }
        in
        Hashtbl.replace by_neighbor id p;
        p
  in
  let neighbors = real_neighbors t in
  List.iter
    (fun prefix ->
      let variants = variants_for_prefix_v6 t prefix in
      List.iter
        (fun (ns : neighbor_state) ->
          match allowed_for_neighbor t ns variants with
          | [] ->
              let p = pending_for ns in
              p.p6_unreach <- (prefix, None) :: p.p6_unreach
          | v :: _ -> (
              let vid = Attr_arena.id v in
              let facing =
                match Hashtbl.find_opt facing_cache vid with
                | Some f -> f
                | None ->
                    t.counters.reexport_computations <-
                      t.counters.reexport_computations + 1;
                    let f =
                      neighbor_facing_attrs t (Attr_arena.set v)
                      |> Attr.remove_code 3
                      (* v4 NEXT_HOP is meaningless here *)
                    in
                    Hashtbl.replace facing_cache vid f;
                    f
              in
              let p = pending_for ns in
              match Hashtbl.find_opt p.p6_groups vid with
              | Some (_, nlris) -> nlris := (prefix, None) :: !nlris
              | None ->
                  Hashtbl.replace p.p6_groups vid (facing, ref [ (prefix, None) ]);
                  p.p6_order <- vid :: p.p6_order))
        neighbors)
    prefixes;
  Hashtbl.fold (fun id p acc -> (id, p) :: acc) by_neighbor []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (id, p) ->
         match neighbor t id with
         | Some { session = Some s; _ } when Session.established s ->
             List.iter
               (fun nlri ->
                 Session.send_update s
                   (Msg.update ~attrs:[ Attr.Mp_unreach nlri ] ()))
               (chunked (List.rev p.p6_unreach) mp_chunk_size);
             List.iter
               (fun vid ->
                 match Hashtbl.find_opt p.p6_groups vid with
                 | None -> ()
                 | Some (facing, nlris) ->
                     List.iter
                       (fun nlri ->
                         let attrs =
                           Attr.set_attr
                             (Attr.Mp_reach
                                { next_hop = t.v6_next_hop; nlri })
                             facing
                         in
                         Session.send_update s (Msg.update ~attrs ()))
                       (chunked (List.rev !nlris) mp_chunk_size))
               (List.rev p.p6_order)
         | _ -> ())

(* -- the dirty-prefix re-export queue -------------------------------------- *)

(* Drain the queue: recompute every dirty prefix once per neighbor. The
   queue is snapshotted and reset first so sends that dirty further
   prefixes (none do today, but sessions are free to) land in the next
   flush rather than an unbounded loop. The batched-ingest queue drains
   first so direct-driving callers get both with one call. *)
let flush_reexports t =
  Control_in.flush_ingest t;
  t.reexport_scheduled <- false;
  if Hashtbl.length t.dirty > 0 then begin
    let v4 = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty [] in
    Hashtbl.reset t.dirty;
    (* One flush spans the whole batch: facing sets and their wire
       attribute blocks are computed once per variant across all dirty
       prefixes, and each neighbor receives the batch as packed
       multi-NLRI UPDATEs — fanned across the export lanes when the
       router was created with [?parallel_export:n > 1]. *)
    flush_v4 t (List.sort Prefix.compare v4)
  end;
  if Hashtbl.length t.dirty_v6 > 0 then begin
    let v6 = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty_v6 [] in
    Hashtbl.reset t.dirty_v6;
    flush_v6 t (List.sort Prefix_v6.compare v6)
  end;
  (* The tick flush is the natural publication point for the sharded
     data plane: control churn has settled for this tick, so workers
     pick up one consistent snapshot (no-op on single-domain routers or
     when nothing the snapshot captures has changed). *)
  shard_publish t

(* Arrange for one flush at the current engine tick. Every update
   processed at the same timestamp lands before the flush (equal-time
   events run FIFO), so a burst dedupes into a single recomputation. *)
let schedule_flush t =
  if not t.reexport_scheduled then begin
    t.reexport_scheduled <- true;
    Engine.run_after t.engine 0. (fun () -> flush_reexports t)
  end

let request_reexport t prefix =
  Hashtbl.replace t.dirty prefix ();
  schedule_flush t

let request_reexport_v6 t prefix =
  Hashtbl.replace t.dirty_v6 prefix ();
  schedule_flush t

(* -- experiment announcements ---------------------------------------------- *)

let export_exp_route_to_mesh t (e : experiment_state) prefix (v : variant) =
  let ctl_asn = control_asn t in
  let attrs =
    Attr_arena.set v.v_attrs
    |> Attr.with_next_hop e.g_ip
    |> Attr.add_community (Export_control.experiment_marker ~ctl_asn)
  in
  send_update_to_mesh t
    (Msg.update ~attrs
       ~announced:[ Msg.nlri ~path_id:(mesh_path_id e v.v_path_id) prefix ]
       ())

let export_exp_withdraw_to_mesh t (e : experiment_state) prefix v_path_id =
  send_update_to_mesh t
    (Msg.update
       ~withdrawn:[ Msg.nlri ~path_id:(mesh_path_id e v_path_id) prefix ]
       ())

(* Record/withdraw the v6 NLRI of an accepted experiment update. *)
let process_experiment_v6 t (e : experiment_state) (u : Msg.update) =
  List.iter
    (fun attr ->
      match attr with
      | Attr.Mp_unreach nlri ->
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              gr_unmark e.exp_gr_v6 (prefix, pid);
              (match Hashtbl.find_opt e.routes_v6 prefix with
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then Hashtbl.remove e.routes_v6 prefix
              | None -> ());
              request_reexport_v6 t prefix)
            nlri
      | Attr.Mp_reach { nlri; _ } ->
          let base_h = Attr_arena.intern (Attr.remove_code 14 u.Msg.attrs) in
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              gr_unmark e.exp_gr_v6 (prefix, pid);
              let unchanged =
                match Hashtbl.find_opt e.routes_v6 prefix with
                | Some vs ->
                    List.exists
                      (fun v ->
                        v.v_path_id = pid && Attr_arena.equal v.v_attrs base_h)
                      !vs
                | None -> false
              in
              if not unchanged then begin
                let v = { v_path_id = pid; v_attrs = base_h } in
                let vs =
                  match Hashtbl.find_opt e.routes_v6 prefix with
                  | Some vs -> vs
                  | None ->
                      let vs = ref [] in
                      Hashtbl.replace e.routes_v6 prefix vs;
                      vs
                in
                vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
                request_reexport_v6 t prefix
              end)
            nlri
      | _ -> ())
    u.Msg.attrs

(* Process one UPDATE from experiment [name] through the enforcement
   engine; public for direct benchmarking of the security pipeline. *)
let process_experiment_update t ~experiment:exp_name (u : Msg.update) =
  match experiment t exp_name with
  | None -> invalid_arg "Router.process_experiment_update: unknown experiment"
  | Some e -> (
      t.counters.updates_from_experiments <-
        t.counters.updates_from_experiments + 1;
      let now = Engine.now t.engine in
      match Control_enforcer.check t.control ~now ~pop:t.name e.grant u with
      | Control_enforcer.Rejected reasons ->
          log t "rejected update from %s: %s" exp_name
            (String.concat "; " reasons);
          Error reasons
      | Control_enforcer.Accepted u ->
          (* Withdrawals: remove the matching variant. *)
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              gr_unmark e.exp_gr (n.prefix, pid);
              match Hashtbl.find_opt e.routes n.prefix with
              | None -> ()
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then begin
                    Hashtbl.remove e.routes n.prefix;
                    refresh_owner t n.prefix
                  end;
                  export_exp_withdraw_to_mesh t e n.prefix pid;
                  request_reexport t n.prefix)
            u.withdrawn;
          (* Announcements: record/replace the variant. A re-announcement
             identical to the recorded variant (same path id, same
             attributes) is absorbed silently — it clears any stale mark
             but triggers no mesh export or re-export, which keeps a
             graceful-restart resync off the wires. The attribute set is
             interned once for the whole NLRI list, so the unchanged
             check is O(1) per variant. *)
          let attrs_h = lazy (Attr_arena.intern u.attrs) in
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              gr_unmark e.exp_gr (n.prefix, pid);
              let attrs_h = Lazy.force attrs_h in
              let unchanged =
                match Hashtbl.find_opt e.routes n.prefix with
                | Some vs ->
                    List.exists
                      (fun v ->
                        v.v_path_id = pid && Attr_arena.equal v.v_attrs attrs_h)
                      !vs
                | None -> false
              in
              if not unchanged then begin
                let v = { v_path_id = pid; v_attrs = attrs_h } in
                let vs =
                  match Hashtbl.find_opt e.routes n.prefix with
                  | Some vs -> vs
                  | None ->
                      let vs = ref [] in
                      Hashtbl.replace e.routes n.prefix vs;
                      vs
                in
                vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
                owner_insert t n.prefix (Local_exp exp_name);
                export_exp_route_to_mesh t e n.prefix v;
                request_reexport t n.prefix
              end)
            u.announced;
          process_experiment_v6 t e u;
          Ok ())

(* -- experiment session loss: hard drop vs graceful retention --------------- *)

(* Withdraw everything experiment [e] announced, v4 and v6: the
   non-graceful down path and the restart-window expiry. *)
let hard_drop_experiment t (e : experiment_state) =
  (match e.exp_gr with Some h -> h.cancel_expiry () | None -> ());
  (match e.exp_gr_v6 with Some h -> h.cancel_expiry () | None -> ());
  e.exp_gr <- None;
  e.exp_gr_v6 <- None;
  (* Clear the experiment's state first so the re-export pass sees no
     live variants. *)
  let announced =
    Hashtbl.fold (fun prefix vs acc -> (prefix, !vs) :: acc) e.routes []
  in
  Hashtbl.reset e.routes;
  List.iter
    (fun (prefix, vs) ->
      List.iter
        (fun v -> export_exp_withdraw_to_mesh t e prefix v.v_path_id)
        vs;
      refresh_owner t prefix;
      request_reexport t prefix)
    announced;
  let announced_v6 =
    Hashtbl.fold (fun prefix _ acc -> prefix :: acc) e.routes_v6 []
  in
  Hashtbl.reset e.routes_v6;
  List.iter (request_reexport_v6 t) announced_v6;
  e.exp_synced <- false

(* Graceful down: keep every recorded variant (neighbors continue to hear
   the experiment's announcements, RFC 4724 forwarding preservation),
   mark them stale, and fall back to the hard drop if the restart window
   expires before the experiment reconnects. *)
let gr_retain_experiment t (e : experiment_state) ~window =
  let keys =
    Hashtbl.fold
      (fun prefix vs acc ->
        List.fold_left (fun acc v -> (prefix, v.v_path_id) :: acc) acc !vs)
      e.routes []
  in
  let keys_v6 =
    Hashtbl.fold
      (fun prefix vs acc ->
        List.fold_left (fun acc v -> (prefix, v.v_path_id) :: acc) acc !vs)
      e.routes_v6 []
  in
  match e.exp_gr with
  | Some h ->
      (* Repeat loss inside the window: re-mark, keep the first deadline
         (RFC 4724 counts the restart time from the first loss). *)
      List.iter (fun k -> Hashtbl.replace h.stale k ()) keys;
      (match e.exp_gr_v6 with
      | Some h6 -> List.iter (fun k -> Hashtbl.replace h6.stale k ()) keys_v6
      | None -> e.exp_gr_v6 <- Some (gr_hold_of_keys keys_v6));
      e.exp_synced <- false
  | None ->
      let hold = gr_hold_of_keys keys in
      e.exp_gr <- Some hold;
      e.exp_gr_v6 <- Some (gr_hold_of_keys keys_v6);
      e.exp_synced <- false;
      t.counters.gr_retentions <- t.counters.gr_retentions + 1;
      (* One expiry timer governs both families; the hard drop clears both. *)
      hold.cancel_expiry <-
        Engine.schedule t.engine window (fun () ->
            match e.exp_gr with
            | Some h when h == hold ->
                t.counters.gr_expiries <- t.counters.gr_expiries + 1;
                log t "experiment %s restart window expired"
                  e.grant.Control_enforcer.name;
                hard_drop_experiment t e
            | _ -> ());
      log t "experiment %s retaining %d variants as stale (window %.0fs)"
        e.grant.Control_enforcer.name
        (List.length keys + List.length keys_v6)
        window

(* End-of-RIB after the experiment's restart: every variant it did not
   re-announce is genuinely gone — withdraw exactly that. *)
let gr_sweep_experiment t (e : experiment_state) =
  (match e.exp_gr with
  | None -> ()
  | Some hold ->
      hold.cancel_expiry ();
      e.exp_gr <- None;
      let stale = Hashtbl.fold (fun k () acc -> k :: acc) hold.stale [] in
      List.iter
        (fun (prefix, pid) ->
          (match Hashtbl.find_opt e.routes prefix with
          | Some vs ->
              vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
              if !vs = [] then begin
                Hashtbl.remove e.routes prefix;
                refresh_owner t prefix
              end
          | None -> ());
          export_exp_withdraw_to_mesh t e prefix pid;
          request_reexport t prefix)
        (List.sort compare stale);
      if stale <> [] then
        log t "experiment %s sweep: %d stale variants withdrawn"
          e.grant.Control_enforcer.name (List.length stale));
  match e.exp_gr_v6 with
  | None -> ()
  | Some hold ->
      hold.cancel_expiry ();
      e.exp_gr_v6 <- None;
      let stale = Hashtbl.fold (fun k () acc -> k :: acc) hold.stale [] in
      List.iter
        (fun (prefix, pid) ->
          (match Hashtbl.find_opt e.routes_v6 prefix with
          | Some vs ->
              vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
              if !vs = [] then Hashtbl.remove e.routes_v6 prefix
          | None -> ());
          request_reexport_v6 t prefix)
        (List.sort compare stale)

(* -- mesh import ------------------------------------------------------------ *)

let mesh_peer_for t ~pop =
  List.find_opt (fun mp -> String.equal mp.pop_name pop) t.mesh

let process_mesh_update t ~pop (u : Msg.update) =
  t.counters.updates_from_mesh <- t.counters.updates_from_mesh + 1;
  let now = Engine.now t.engine in
  let ctl_asn = control_asn t in
  let mesh_gr =
    match mesh_peer_for t ~pop with Some mp -> mp.mesh_gr | None -> None
  in
  (* Withdrawals are resolved through the import map. *)
  List.iter
    (fun (n : Msg.nlri) ->
      let pid = match n.path_id with Some p -> p | None -> 0 in
      gr_unmark mesh_gr (pid, n.prefix);
      match Hashtbl.find_opt t.mesh_imports (pop, pid) with
      | Some (Ialias { alias_id }) -> (
          match neighbor t alias_id with
          | Some ns ->
              let change =
                Rib.Table.withdraw ns.rib_in ~prefix:n.prefix
                  ~peer_ip:ns.info.Neighbor.virtual_ip ~path_id:None
              in
              Rib.Fib.remove (Rib.Fib.Set.table t.fibs alias_id) n.prefix;
              if t.ingest_batching then begin
                match change with
                | Rib.Table.Best_changed _ ->
                    Control_in.mark_ingest_dirty t ns n.prefix
                | Rib.Table.Unchanged -> ()
              end
              else Control_in.export_withdraw_to_experiments t ns n.prefix
          | None -> ())
      | Some (Iremote_exp { prefix }) ->
          Hashtbl.remove t.remote_exp_routes (pop, pid);
          refresh_owner t prefix;
          request_reexport t prefix
      | None -> ())
    u.withdrawn;
  if u.announced <> [] then begin
    let next_hop = Attr.next_hop u.attrs in
    let is_exp =
      List.exists
        (Export_control.is_marker ~ctl_asn)
        (Attr.communities u.attrs)
    in
    match next_hop with
    | None -> ()
    | Some g when not is_exp ->
        (* A remote neighbor's route: alias it and expose to experiments. *)
        let ns, _created = Backbone.alias_for_global t ~pop g in
        let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
        let source =
          Rib.Route.source ~peer_ip:ns.info.Neighbor.virtual_ip ~peer_asn:t.asn
            ~ebgp:false ()
        in
        let attrs_h = Attr_arena.intern u.attrs in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            gr_unmark mesh_gr (pid, n.prefix);
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Ialias { alias_id = ns.info.Neighbor.id });
            (* A resync replaying the identical route is absorbed
               silently (graceful-restart mark-and-sweep). *)
            let unchanged =
              List.exists
                (fun (r : Rib.Route.t) ->
                  Rib.Route.key_matches
                    ~peer_ip:ns.info.Neighbor.virtual_ip ~path_id:None r
                  && Attr_arena.equal (Rib.Route.attrs_handle r) attrs_h)
                (Rib.Table.candidates ns.rib_in n.prefix)
            in
            if not unchanged then begin
              let route =
                Rib.Route.make_h ~learned_at:now ~prefix:n.prefix ~attrs_h
                  ~source ()
              in
              ignore (Rib.Table.update ns.rib_in route);
              Rib.Fib.insert fib n.prefix
                { Rib.Fib.next_hop = g; neighbor = ns.info.Neighbor.id };
              if t.ingest_batching then
                Control_in.mark_ingest_dirty t ns n.prefix
              else
                Control_in.export_route_to_experiments t ns n.prefix
                  (Attr_arena.set attrs_h)
            end)
          u.announced
    | Some g ->
        (* A remote experiment's announcement: remember it for neighbor
           export here, and route its traffic toward the remote PoP. *)
        let attrs_h =
          Attr_arena.intern
            (Attr.remove_communities
               ~keep:(fun c -> not (Export_control.is_marker ~ctl_asn c))
               u.attrs)
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            gr_unmark mesh_gr (pid, n.prefix);
            let unchanged =
              match Hashtbl.find_opt t.remote_exp_routes (pop, pid) with
              | Some (p, a, _) ->
                  Prefix.equal p n.prefix && Attr_arena.equal a attrs_h
              | None -> false
            in
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Iremote_exp { prefix = n.prefix });
            if not unchanged then begin
              Hashtbl.replace t.remote_exp_routes (pop, pid)
                (n.prefix, attrs_h, g);
              refresh_owner t n.prefix;
              request_reexport t n.prefix
            end)
          u.announced
  end

(* -- mesh session loss: hard drop vs graceful retention --------------------- *)

(* Drop every route an alias pseudo-neighbor holds (they all came over
   the mesh) and storm withdrawals to local experiments. *)
let drop_alias_routes t (ns : neighbor_state) =
  let changes =
    Rib.Table.drop_peer ns.rib_in ~peer_ip:ns.info.Neighbor.virtual_ip
  in
  Rib.Fib.clear (Rib.Fib.Set.table t.fibs ns.info.Neighbor.id);
  List.iter
    (function
      | Rib.Table.Best_changed (prefix, None) ->
          if t.ingest_batching then Control_in.mark_ingest_dirty t ns prefix
          else Control_in.export_withdraw_to_experiments t ns prefix
      | _ -> ())
    changes

(* Forget everything imported from [pop]: the non-graceful mesh-down path
   and the restart-window expiry. *)
let drop_pop_imports t ~pop =
  let entries =
    Hashtbl.fold
      (fun (p, pid) imp acc ->
        if String.equal p pop then (pid, imp) :: acc else acc)
      t.mesh_imports []
  in
  List.iter
    (fun (pid, imp) ->
      Hashtbl.remove t.mesh_imports (pop, pid);
      match imp with
      | Ialias { alias_id } -> (
          match neighbor t alias_id with
          | Some ns -> drop_alias_routes t ns
          | None -> ())
      | Iremote_exp { prefix } ->
          Hashtbl.remove t.remote_exp_routes (pop, pid);
          refresh_owner t prefix;
          request_reexport t prefix)
    (List.sort compare entries)

(* Graceful mesh down: keep every import (aliased rib-in rows and
   remote-experiment records) marked stale; the peer's post-restart sync
   plus End-of-RIB sweeps what is genuinely gone. *)
let gr_retain_mesh t (mp : mesh_peer) ~window =
  let pop = mp.pop_name in
  let keys =
    Hashtbl.fold
      (fun (p, pid) imp acc ->
        if not (String.equal p pop) then acc
        else
          match imp with
          | Ialias { alias_id } -> (
              match neighbor t alias_id with
              | Some ns ->
                  Rib.Table.fold
                    (fun prefix _ acc -> (pid, prefix) :: acc)
                    ns.rib_in acc
              | None -> acc)
          | Iremote_exp { prefix } -> (pid, prefix) :: acc)
      t.mesh_imports []
  in
  match mp.mesh_gr with
  | Some h ->
      (* Repeat loss inside the window: re-mark, keep the first deadline
         (RFC 4724 counts the restart time from the first loss). *)
      List.iter (fun k -> Hashtbl.replace h.stale k ()) keys
  | None ->
      let hold = gr_hold_of_keys keys in
      mp.mesh_gr <- Some hold;
      t.counters.gr_retentions <- t.counters.gr_retentions + 1;
      hold.cancel_expiry <-
        Engine.schedule t.engine window (fun () ->
            match mp.mesh_gr with
            | Some h when h == hold ->
                mp.mesh_gr <- None;
                t.counters.gr_expiries <- t.counters.gr_expiries + 1;
                log t "mesh to %s restart window expired" pop;
                drop_pop_imports t ~pop
            | _ -> ());
      log t "mesh to %s retaining %d imports as stale (window %.0fs)" pop
        (List.length keys) window

(* The peer's End-of-RIB after a mesh restart: drop exactly the imports
   its resync did not refresh. *)
let process_mesh_eor t ~pop =
  match mesh_peer_for t ~pop with
  | None -> ()
  | Some mp -> (
      match mp.mesh_gr with
      | None -> ()
      | Some hold ->
          hold.cancel_expiry ();
          mp.mesh_gr <- None;
          let stale = Hashtbl.fold (fun k () acc -> k :: acc) hold.stale [] in
          List.iter
            (fun (pid, prefix) ->
              match Hashtbl.find_opt t.mesh_imports (pop, pid) with
              | Some (Ialias { alias_id }) -> (
                  match neighbor t alias_id with
                  | Some ns ->
                      let change =
                        Rib.Table.withdraw ns.rib_in ~prefix
                          ~peer_ip:ns.info.Neighbor.virtual_ip ~path_id:None
                      in
                      Rib.Fib.remove
                        (Rib.Fib.Set.table t.fibs alias_id)
                        prefix;
                      if t.ingest_batching then begin
                        match change with
                        | Rib.Table.Best_changed _ ->
                            Control_in.mark_ingest_dirty t ns prefix
                        | Rib.Table.Unchanged -> ()
                      end
                      else
                        Control_in.export_withdraw_to_experiments t ns prefix
                  | None -> ())
              | Some (Iremote_exp { prefix = rp }) ->
                  Hashtbl.remove t.remote_exp_routes (pop, pid);
                  Hashtbl.remove t.mesh_imports (pop, pid);
                  refresh_owner t rp;
                  request_reexport t rp
              | None -> ())
            (List.sort compare stale);
          if stale <> [] then
            log t "mesh to %s sweep: %d stale imports dropped" pop
              (List.length stale))

(* Mesh session loss: retain when both sides negotiated graceful restart,
   hard-drop otherwise. *)
let process_mesh_down t ~pop reason =
  match mesh_peer_for t ~pop with
  | None -> ()
  | Some mp -> (
      let window =
        if Fsm.graceful reason then Session.gr_restart_time mp.mesh_session
        else None
      in
      match window with
      | Some w when w > 0. -> gr_retain_mesh t mp ~window:w
      | _ ->
          (match mp.mesh_gr with Some h -> h.cancel_expiry () | None -> ());
          mp.mesh_gr <- None;
          drop_pop_imports t ~pop)

(* An out-of-band verdict that [pop] is dead (the health monitor's Failed
   transition): forget its imports now rather than letting the
   graceful-restart window run out — remote experiment announcements are
   withdrawn from our neighbors, re-homing their traffic onto the PoPs
   still carrying the prefix. Idempotent; a later mesh resync simply
   re-imports. *)
let flush_mesh_peer t ~pop =
  match mesh_peer_for t ~pop with
  | None -> ()
  | Some mp ->
      (match mp.mesh_gr with Some h -> h.cancel_expiry () | None -> ());
      mp.mesh_gr <- None;
      drop_pop_imports t ~pop

(* -- experiment wiring ------------------------------------------------------ *)

(* Connect an experiment: BGP over a VPN-like link, data over the
   experiment LAN. Returns the client-side session (ADD-PATH capable);
   start it with [Bgp_wire.start] via the returned pair. *)
let connect_experiment t ~grant ~mac ?(latency = 0.03) () =
  let exp_name = grant.Control_enforcer.name in
  if Hashtbl.mem t.experiments exp_name then
    invalid_arg "Router.connect_experiment: already connected";
  let g =
    Addr_pool.allocate t.global_pool
      (Printf.sprintf "%s/experiment:%s" t.name exp_name)
  in
  let client_asn =
    match grant.Control_enforcer.asns with
    | a :: _ -> a
    | [] -> invalid_arg "Router.connect_experiment: grant has no ASN"
  in
  let client_id =
    match grant.Control_enforcer.prefixes with
    | p :: _ -> Prefix.host p 1
    | [] -> Ipv4.of_string_exn "192.0.2.1"
  in
  let config_router =
    Session.config ~local_asn:t.asn ~local_id:t.router_id
      ~capabilities:(session_capabilities ~add_path:true t)
      ~reconnect:(reconnect_policy t) ()
  in
  let config_client =
    Session.config ~local_asn:client_asn ~local_id:client_id
      ~capabilities:
        [
          Capability.Multiprotocol
            { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
          Capability.As4 client_asn;
          Capability.Add_path
            [
              ( Capability.afi_ipv4,
                Capability.safi_unicast,
                Capability.Send_receive );
            ];
          Capability.Graceful_restart
            {
              restart_time = t.gr_restart_time;
              afis = [ (Capability.afi_ipv4, Capability.safi_unicast) ];
            };
        ]
      ~reconnect:(reconnect_policy t) ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:config_client
      ~config_passive:config_router ()
  in
  let e =
    {
      grant;
      exp_session = pair.Sim.Bgp_wire.passive;
      exp_mac = mac;
      g_ip = g.Addr_pool.ip;
      g_idx = g.Addr_pool.index;
      routes = Hashtbl.create 8;
      routes_v6 = Hashtbl.create 4;
      exp_synced = false;
      exp_gr = None;
      exp_gr_v6 = None;
      att_packets_out = 0;
      att_bytes_out = 0;
      att_packets_in = 0;
    }
  in
  Hashtbl.replace t.experiments exp_name e;
  Hashtbl.replace t.by_exp_mac mac exp_name;
  (* Attachment changes ingress attribution (by_exp_mac) and allocation
     ownership (source validation consults the grant set); bump the owner
     generation so stamped flow-cache entries stop being served. *)
  Dcache.invalidate t.owner_cache;
  (match t.bb with
  | Some bb ->
      Backbone.register_global_station t bb.Arp_client.lan ~g:e.g_ip
        ~receive:(Data_plane.deliver_inbound t)
  | None -> ());
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh =
        (fun ~afi:_ ~safi:_ ->
          (* RFC 2918: the experiment asked for the table again. *)
          log t "route refresh from experiment %s" exp_name;
          e.exp_synced <- false;
          Control_in.sync_experiment t e);
      on_update =
        (fun u ->
          if Msg.is_end_of_rib u then gr_sweep_experiment t e
          else ignore (process_experiment_update t ~experiment:exp_name u));
      on_established =
        (fun () ->
          log t "experiment %s established" exp_name;
          Control_in.sync_experiment t e);
      on_down =
        (fun reason ->
          log t "experiment %s down: %s" exp_name
            (Fsm.down_reason_to_string reason);
          let window =
            if Fsm.graceful reason then
              Session.gr_restart_time pair.Sim.Bgp_wire.passive
            else None
          in
          match window with
          | Some w when w > 0. -> gr_retain_experiment t e ~window:w
          | _ -> hard_drop_experiment t e);
    };
  pair
