(* Control plane, outbound (paper §3.2.1 + §3.3 + §4.7): experiment
   announcements pass through the control-plane enforcement engine, then
   propagate to the neighbors selected by export-control communities, to
   the backbone mesh, and onward to neighbors at remote PoPs (§4.4).

   Re-export is batched: instead of recomputing every neighbor's view of
   a prefix on every update that touches it, updates mark the prefix
   dirty and one flush per engine tick drains the queue. A burst of
   updates to one prefix costs a single variant recomputation per
   neighbor; deltas are still computed against the per-neighbor
   Adj-RIB-Out, so the wire sees exactly the final state. *)

open Netcore
open Bgp
open Sim
open Router_state

(* -- variant selection ------------------------------------------------------ *)

(* All live announcement variants for [prefix], local and remote. *)
let variants_for_prefix t prefix =
  let local =
    Hashtbl.fold
      (fun _ e acc ->
        match Hashtbl.find_opt e.routes prefix with
        | Some vs -> List.map (fun v -> v.v_attrs) !vs @ acc
        | None -> acc)
      t.experiments []
  in
  let remote =
    Hashtbl.fold
      (fun _ (p, attrs) acc ->
        if Prefix.equal p prefix then attrs :: acc else acc)
      t.remote_exp_routes []
  in
  local @ remote

let variants_for_prefix_v6 t prefix =
  Hashtbl.fold
    (fun _ e acc ->
      match Hashtbl.find_opt e.routes_v6 prefix with
      | Some vs -> List.map (fun v -> v.v_attrs) !vs @ acc
      | None -> acc)
    t.experiments []

(* Attributes as announced to a real eBGP neighbor: platform ASN prepended,
   next hop set to our interface, control communities and iBGP-only
   attributes stripped. *)
let neighbor_facing_attrs t attrs =
  let _control, attrs =
    Control_enforcer.split_control_communities t.control attrs
  in
  let path =
    match Attr.as_path attrs with Some p -> p | None -> Aspath.empty
  in
  attrs
  |> Attr.with_as_path (Aspath.prepend t.asn path)
  |> Attr.with_next_hop t.primary_ip
  |> Attr.remove_code 5 (* LOCAL_PREF is iBGP-only *)

(* The variants of [variants] that neighbor [ns] is allowed to hear:
   export-control tags plus the well-known NO_EXPORT (RFC 1997), which
   keeps a route inside the platform. *)
let allowed_for_neighbor t (ns : neighbor_state) variants =
  let ctl_asn = control_asn t in
  List.filter
    (fun attrs ->
      let communities = Attr.communities attrs in
      (not (List.exists (Community.equal Community.no_export) communities))
      && Export_control.allows ~ctl_asn ~export_id:ns.export_id communities)
    variants

(* Recompute what neighbor [ns] should currently hear for [prefix] among
   [variants], and send the delta against its Adj-RIB-Out. *)
let reexport_prefix_to_neighbor t (ns : neighbor_state) ~variants prefix =
  match ns.info.Neighbor.kind with
  | Neighbor.Backbone_alias _ -> ()
  | _ -> (
      t.counters.reexport_computations <-
        t.counters.reexport_computations + 1;
      let allowed = allowed_for_neighbor t ns variants in
      let out = adj_out_table t ns.info.Neighbor.id in
      let previously = Hashtbl.find_opt out prefix in
      match (allowed, previously) with
      | [], None -> ()
      | [], Some _ ->
          Hashtbl.remove out prefix;
          (match ns.session with
          | Some s when Session.established s ->
              Session.send_update s
                (Msg.update ~withdrawn:[ Msg.nlri prefix ] ())
          | _ -> ());
          log t "withdraw %a from neighbor %d" Prefix.pp prefix
            ns.info.Neighbor.id
      | attrs :: _, _ ->
          let facing = neighbor_facing_attrs t attrs in
          let changed =
            match previously with
            | Some old -> not (Attr.equal_set old facing)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace out prefix facing;
            (match ns.session with
            | Some s when Session.established s ->
                Session.send_update s
                  (Msg.update ~attrs:facing ~announced:[ Msg.nlri prefix ] ())
            | _ -> ());
            log t "announce %a to neighbor %d" Prefix.pp prefix
              ns.info.Neighbor.id
          end)

(* Recompute [prefix] for every real neighbor. Variants are computed once
   and shared across neighbors; only the export-control filter and the
   Adj-RIB-Out delta are per neighbor. *)
let reexport_prefix_now t prefix =
  let variants = variants_for_prefix t prefix in
  List.iter
    (fun ns -> reexport_prefix_to_neighbor t ns ~variants prefix)
    (real_neighbors t)

(* -- IPv6 (MP-BGP) experiment announcements: control plane only ----------- *)

let reexport_prefix_v6_to_neighbor t (ns : neighbor_state) ~variants prefix =
  match ns.info.Neighbor.kind with
  | Neighbor.Backbone_alias _ -> ()
  | _ -> (
      t.counters.reexport_computations <-
        t.counters.reexport_computations + 1;
      let allowed = allowed_for_neighbor t ns variants in
      match ns.session with
      | Some s when Session.established s -> (
          match allowed with
          | [] ->
              Session.send_update s
                (Msg.update ~attrs:[ Attr.Mp_unreach [ (prefix, None) ] ] ())
          | attrs :: _ ->
              let facing =
                neighbor_facing_attrs t attrs
                |> Attr.remove_code 3 (* v4 NEXT_HOP is meaningless here *)
                |> Attr.set_attr
                     (Attr.Mp_reach
                        {
                          next_hop = t.v6_next_hop;
                          nlri = [ (prefix, None) ];
                        })
              in
              Session.send_update s (Msg.update ~attrs:facing ()))
      | _ -> ())

let reexport_prefix_v6_now t prefix =
  let variants = variants_for_prefix_v6 t prefix in
  List.iter
    (fun ns -> reexport_prefix_v6_to_neighbor t ns ~variants prefix)
    (real_neighbors t)

(* -- the dirty-prefix re-export queue -------------------------------------- *)

(* Drain the queue: recompute every dirty prefix once per neighbor. The
   queue is snapshotted and reset first so sends that dirty further
   prefixes (none do today, but sessions are free to) land in the next
   flush rather than an unbounded loop. *)
let flush_reexports t =
  t.reexport_scheduled <- false;
  if Hashtbl.length t.dirty > 0 then begin
    let v4 = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty [] in
    Hashtbl.reset t.dirty;
    List.iter (reexport_prefix_now t) (List.sort Prefix.compare v4)
  end;
  if Hashtbl.length t.dirty_v6 > 0 then begin
    let v6 = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty_v6 [] in
    Hashtbl.reset t.dirty_v6;
    List.iter (reexport_prefix_v6_now t) (List.sort Prefix_v6.compare v6)
  end

(* Arrange for one flush at the current engine tick. Every update
   processed at the same timestamp lands before the flush (equal-time
   events run FIFO), so a burst dedupes into a single recomputation. *)
let schedule_flush t =
  if not t.reexport_scheduled then begin
    t.reexport_scheduled <- true;
    Engine.run_after t.engine 0. (fun () -> flush_reexports t)
  end

let request_reexport t prefix =
  Hashtbl.replace t.dirty prefix ();
  schedule_flush t

let request_reexport_v6 t prefix =
  Hashtbl.replace t.dirty_v6 prefix ();
  schedule_flush t

(* -- experiment announcements ---------------------------------------------- *)

let export_exp_route_to_mesh t (e : experiment_state) prefix (v : variant) =
  let ctl_asn = control_asn t in
  let attrs =
    v.v_attrs
    |> Attr.with_next_hop e.g_ip
    |> Attr.add_community (Export_control.experiment_marker ~ctl_asn)
  in
  Control_in.send_to_mesh t
    (Msg.update ~attrs
       ~announced:[ Msg.nlri ~path_id:(mesh_path_id e v.v_path_id) prefix ]
       ())

let export_exp_withdraw_to_mesh t (e : experiment_state) prefix v_path_id =
  Control_in.send_to_mesh t
    (Msg.update
       ~withdrawn:[ Msg.nlri ~path_id:(mesh_path_id e v_path_id) prefix ]
       ())

(* Record/withdraw the v6 NLRI of an accepted experiment update. *)
let process_experiment_v6 t (e : experiment_state) (u : Msg.update) =
  List.iter
    (fun attr ->
      match attr with
      | Attr.Mp_unreach nlri ->
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              (match Hashtbl.find_opt e.routes_v6 prefix with
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then Hashtbl.remove e.routes_v6 prefix
              | None -> ());
              request_reexport_v6 t prefix)
            nlri
      | Attr.Mp_reach { nlri; _ } ->
          let base_attrs = Attr.remove_code 14 u.Msg.attrs in
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              let v = { v_path_id = pid; v_attrs = base_attrs } in
              let vs =
                match Hashtbl.find_opt e.routes_v6 prefix with
                | Some vs -> vs
                | None ->
                    let vs = ref [] in
                    Hashtbl.replace e.routes_v6 prefix vs;
                    vs
              in
              vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
              request_reexport_v6 t prefix)
            nlri
      | _ -> ())
    u.Msg.attrs

(* Process one UPDATE from experiment [name] through the enforcement
   engine; public for direct benchmarking of the security pipeline. *)
let process_experiment_update t ~experiment:exp_name (u : Msg.update) =
  match experiment t exp_name with
  | None -> invalid_arg "Router.process_experiment_update: unknown experiment"
  | Some e -> (
      t.counters.updates_from_experiments <-
        t.counters.updates_from_experiments + 1;
      let now = Engine.now t.engine in
      match Control_enforcer.check t.control ~now ~pop:t.name e.grant u with
      | Control_enforcer.Rejected reasons ->
          log t "rejected update from %s: %s" exp_name
            (String.concat "; " reasons);
          Error reasons
      | Control_enforcer.Accepted u ->
          (* Withdrawals: remove the matching variant. *)
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              match Hashtbl.find_opt e.routes n.prefix with
              | None -> ()
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then begin
                    Hashtbl.remove e.routes n.prefix;
                    owner_remove t n.prefix
                  end;
                  export_exp_withdraw_to_mesh t e n.prefix pid;
                  request_reexport t n.prefix)
            u.withdrawn;
          (* Announcements: record/replace the variant. *)
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              let v = { v_path_id = pid; v_attrs = u.attrs } in
              let vs =
                match Hashtbl.find_opt e.routes n.prefix with
                | Some vs -> vs
                | None ->
                    let vs = ref [] in
                    Hashtbl.replace e.routes n.prefix vs;
                    vs
              in
              vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
              owner_insert t n.prefix (Local_exp exp_name);
              export_exp_route_to_mesh t e n.prefix v;
              request_reexport t n.prefix)
            u.announced;
          process_experiment_v6 t e u;
          Ok ())

(* -- mesh import ------------------------------------------------------------ *)

let process_mesh_update t ~pop (u : Msg.update) =
  t.counters.updates_from_mesh <- t.counters.updates_from_mesh + 1;
  let now = Engine.now t.engine in
  let ctl_asn = control_asn t in
  (* Withdrawals are resolved through the import map. *)
  List.iter
    (fun (n : Msg.nlri) ->
      let pid = match n.path_id with Some p -> p | None -> 0 in
      match Hashtbl.find_opt t.mesh_imports (pop, pid) with
      | Some (Ialias { alias_id }) -> (
          match neighbor t alias_id with
          | Some ns ->
              ignore
                (Rib.Table.withdraw ns.rib_in ~prefix:n.prefix
                   ~peer_ip:ns.info.Neighbor.virtual_ip ~path_id:None);
              Rib.Fib.remove (Rib.Fib.Set.table t.fibs alias_id) n.prefix;
              Control_in.export_withdraw_to_experiments t ns n.prefix
          | None -> ())
      | Some (Iremote_exp { prefix }) ->
          Hashtbl.remove t.remote_exp_routes (pop, pid);
          owner_remove t prefix;
          request_reexport t prefix
      | None -> ())
    u.withdrawn;
  if u.announced <> [] then begin
    let next_hop = Attr.next_hop u.attrs in
    let is_exp =
      List.exists
        (Export_control.is_marker ~ctl_asn)
        (Attr.communities u.attrs)
    in
    match next_hop with
    | None -> ()
    | Some g when not is_exp ->
        (* A remote neighbor's route: alias it and expose to experiments. *)
        let ns, _created = Backbone.alias_for_global t ~pop g in
        let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
        let source =
          Rib.Route.source ~peer_ip:ns.info.Neighbor.virtual_ip ~peer_asn:t.asn
            ~ebgp:false ()
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Ialias { alias_id = ns.info.Neighbor.id });
            let route =
              Rib.Route.make ~learned_at:now ~prefix:n.prefix ~attrs:u.attrs
                ~source ()
            in
            ignore (Rib.Table.update ns.rib_in route);
            Rib.Fib.insert fib n.prefix
              { Rib.Fib.next_hop = g; neighbor = ns.info.Neighbor.id };
            Control_in.export_route_to_experiments t ns n.prefix u.attrs)
          u.announced
    | Some g ->
        (* A remote experiment's announcement: remember it for neighbor
           export here, and route its traffic toward the remote PoP. *)
        let attrs =
          Attr.remove_communities
            ~keep:(fun c -> not (Export_control.is_marker ~ctl_asn c))
            u.attrs
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            Hashtbl.replace t.remote_exp_routes (pop, pid) (n.prefix, attrs);
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Iremote_exp { prefix = n.prefix });
            owner_insert t n.prefix (Remote_exp { pop; via_global = g });
            request_reexport t n.prefix)
          u.announced
  end

(* -- experiment wiring ------------------------------------------------------ *)

(* Connect an experiment: BGP over a VPN-like link, data over the
   experiment LAN. Returns the client-side session (ADD-PATH capable);
   start it with [Bgp_wire.start] via the returned pair. *)
let connect_experiment t ~grant ~mac ?(latency = 0.03) () =
  let exp_name = grant.Control_enforcer.name in
  if Hashtbl.mem t.experiments exp_name then
    invalid_arg "Router.connect_experiment: already connected";
  let g =
    Addr_pool.allocate t.global_pool
      (Printf.sprintf "%s/experiment:%s" t.name exp_name)
  in
  let client_asn =
    match grant.Control_enforcer.asns with
    | a :: _ -> a
    | [] -> invalid_arg "Router.connect_experiment: grant has no ASN"
  in
  let client_id =
    match grant.Control_enforcer.prefixes with
    | p :: _ -> Prefix.host p 1
    | [] -> Ipv4.of_string_exn "192.0.2.1"
  in
  let config_router =
    Session.config ~local_asn:t.asn ~local_id:t.router_id
      ~capabilities:(session_capabilities ~add_path:true t) ()
  in
  let config_client =
    Session.config ~local_asn:client_asn ~local_id:client_id
      ~capabilities:
        [
          Capability.Multiprotocol
            { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
          Capability.As4 client_asn;
          Capability.Add_path
            [
              ( Capability.afi_ipv4,
                Capability.safi_unicast,
                Capability.Send_receive );
            ];
        ]
      ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:config_client
      ~config_passive:config_router ()
  in
  let e =
    {
      grant;
      exp_session = pair.Sim.Bgp_wire.passive;
      exp_mac = mac;
      g_ip = g.Addr_pool.ip;
      g_idx = g.Addr_pool.index;
      routes = Hashtbl.create 8;
      routes_v6 = Hashtbl.create 4;
      exp_synced = false;
      att_packets_out = 0;
      att_bytes_out = 0;
      att_packets_in = 0;
    }
  in
  Hashtbl.replace t.experiments exp_name e;
  Hashtbl.replace t.by_exp_mac mac exp_name;
  (match t.bb with
  | Some bb ->
      Backbone.register_global_station t bb.Arp_client.lan ~g:e.g_ip
        ~receive:(Data_plane.deliver_inbound t)
  | None -> ());
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh =
        (fun ~afi:_ ~safi:_ ->
          (* RFC 2918: the experiment asked for the table again. *)
          log t "route refresh from experiment %s" exp_name;
          e.exp_synced <- false;
          Control_in.sync_experiment t e);
      on_update =
        (fun u -> ignore (process_experiment_update t ~experiment:exp_name u));
      on_established =
        (fun () ->
          log t "experiment %s established" exp_name;
          Control_in.sync_experiment t e);
      on_down =
        (fun reason ->
          log t "experiment %s down: %s" exp_name reason;
          (* Withdraw everything the experiment announced: clear its state
             first so the re-export pass sees no live variants. *)
          let announced =
            Hashtbl.fold
              (fun prefix vs acc -> (prefix, !vs) :: acc)
              e.routes []
          in
          Hashtbl.reset e.routes;
          List.iter
            (fun (prefix, vs) ->
              List.iter
                (fun v -> export_exp_withdraw_to_mesh t e prefix v.v_path_id)
                vs;
              owner_remove t prefix;
              request_reexport t prefix)
            announced;
          e.exp_synced <- false);
    };
  pair
