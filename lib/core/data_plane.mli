(** The vBGP data plane (§3.2.2): MAC-keyed per-neighbor forwarding on
    the experiment LAN, inbound source-MAC rewriting, and ICMP errors.

    The destination MAC of a frame from an experiment selects the
    neighbor forwarding table; frames toward experiments carry the
    delivering neighbor's virtual MAC as source. Operates on the shared
    {!Router_state.t}. *)

open Netcore

val deliver_to_local_experiment :
  Router_state.t -> via_mac:Mac.t -> string -> Ipv4_packet.t -> unit
(** Frame a packet to the named experiment's station, with [via_mac] (the
    delivering neighbor's virtual MAC) as the frame source. *)

val icmp_ttl_exceeded : Router_state.t -> Ipv4_packet.t -> Ipv4_packet.t
(** The ICMP time-exceeded error for an expired packet, sourced from the
    router's primary address (§5). *)

val forward_over_backbone :
  Router_state.t -> global_ip:Ipv4.t -> Ipv4_packet.t -> unit
(** Hand a packet to the backbone segment toward the PoP owning
    [global_ip] (§4.4 hop-by-hop forwarding). *)

val deliver_inbound : Router_state.t -> ?via:Router_state.neighbor_state -> Ipv4_packet.t -> unit
(** Route a packet destined to experiment space: to the owning local
    experiment (source MAC rewritten to [via]'s virtual MAC) or across
    the backbone for a remote owner. *)

val inject_from_neighbor :
  Router_state.t -> neighbor_id:int -> Ipv4_packet.t -> unit
(** A packet arriving from the Internet via this neighbor. *)

val forward_experiment_frame :
  Router_state.t -> neighbor_id:int -> Eth.t -> unit
(** A frame an experiment addressed to a neighbor's virtual MAC: data
    enforcement, attribution, TTL, then the neighbor's own FIB. Always
    runs on the sequential path (shared caches), even on a router with
    worker domains. *)

val forward_frames : Router_state.t -> Eth.t array -> unit
(** Forward a batch of experiment frames, each selecting its neighbor
    table by destination MAC (frames with an unknown destination are
    dropped and counted). With [?domains:1] (the default) this is the
    sequential fast path in a loop — bit-identical to calling
    {!forward_experiment_frame} per frame; with worker domains the batch
    is hash-partitioned by flow onto the domains, forwarded in parallel
    against the published control snapshot ({!Shard}), and all effects
    and counters are folded back before the call returns. The control
    plane must be quiescent for the duration of the call. *)

val handle_exp_lan_frame :
  Router_state.t -> station_neighbor:int option -> Eth.t -> unit
(** The experiment-LAN station handler: ARP for virtual IPs, IPv4
    forwarding through the station's neighbor table. *)

val activate : Router_state.t -> unit
(** Attach the router's own station to the experiment LAN. *)
