(** The state record shared by the vBGP router's plane modules (§3).

    The router is decomposed along the paper's planes: {!Control_in}
    (neighbor RIB-in and export toward experiments/mesh), {!Control_out}
    (experiment and mesh announcements toward neighbors, with the
    dirty-prefix re-export queue), {!Data_plane} (experiment-LAN frames,
    MAC-keyed forwarding), {!Backbone} (inter-PoP segment, aliasing and
    mesh sessions), and {!Router} as the stable facade. This module owns
    the record those planes share, its constructor, and the inspection
    surface; it implements no plane logic itself. *)

open Netcore
open Bgp
open Sim

(** Graceful-restart retention (RFC 4724 shape): routes from a peer whose
    session dropped gracefully stay installed but are marked stale. A
    re-announcement clears the mark, the peer's End-of-RIB sweeps the
    rest, and restart-window expiry falls back to the hard drop. *)
type 'k gr_hold = {
  stale : ('k, unit) Hashtbl.t;
  mutable cancel_expiry : unit -> unit;
}

val gr_hold_of_keys : 'k list -> 'k gr_hold
val gr_unmark : 'k gr_hold option -> 'k -> unit

type variant = {
  v_path_id : int;  (** experiment-chosen ADD-PATH id (0 when absent) *)
  v_attrs : Attr_arena.handle;
      (** post-enforcement, control communities intact; interned so
          identical announcements share one set and compare in O(1) *)
}

type experiment_state = {
  grant : Control_enforcer.grant;
  exp_session : Session.t;
  exp_mac : Mac.t;
  g_ip : Ipv4.t;
  g_idx : int;
  routes : (Prefix.t, variant list ref) Hashtbl.t;
  routes_v6 : (Prefix_v6.t, variant list ref) Hashtbl.t;
  mutable exp_synced : bool;
  mutable exp_gr : (Prefix.t * int) gr_hold option;
      (** stale (prefix, path id) variants across a graceful drop *)
  mutable exp_gr_v6 : (Prefix_v6.t * int) gr_hold option;
  mutable att_packets_out : int;
  mutable att_bytes_out : int;
  mutable att_packets_in : int;
}

(** The composite per-flow forwarding decision memoized by the data-plane
    flow cache (one cache per neighbor table, keyed by source MAC and the
    packet's addresses). Entries are served only while all three
    generation stamps match their sources — the neighbor FIB's
    destination-cache generation, the enforcement chain's config
    generation, and the owner cache's generation (which also covers
    experiment attachment and ingress attribution). *)
type flow_action =
  | Fblock of Data_enforcer.filter * string
      (** a stateless head filter blocked the flow *)
  | Fforward of Rib.Fib.entry
  | Fnofib  (** no route in the neighbor table: drop *)

type flow_entry = {
  f_action : flow_action;
  f_exp : experiment_state option;  (** sender, for traffic attribution *)
  f_ingress : string;
  f_fib_gen : int;
  f_enf_gen : int;
  f_owner_gen : int;
}

type neighbor_state = {
  info : Neighbor.t;
  rib_in : Rib.Table.t;
  mutable session : Session.t option;  (** [None] for backbone aliases *)
  mutable deliver : Ipv4_packet.t -> unit;
  export_id : int;  (** platform-global id used in export-control tags *)
  mutable gr : Prefix.t gr_hold option;
      (** stale retention across a graceful session drop *)
  flows : (Mac.t * Ipv4.t * Ipv4.t, flow_entry) Hashtbl.t;
      (** the data-plane flow cache over this neighbor's table *)
}

type mesh_peer = {
  pop_name : string;
  mesh_session : Session.t;
  mutable mesh_gr : (int * Prefix.t) gr_hold option;
      (** stale (path id, prefix) imports across a graceful mesh drop *)
}

type mesh_import =
  | Ialias of { alias_id : int }
  | Iremote_exp of { prefix : Prefix.t }

type owner =
  | Local_exp of string
  | Remote_exp of { pop : string; via_global : Ipv4.t }

type counters = {
  mutable updates_from_neighbors : int;
  mutable updates_from_experiments : int;
  mutable updates_from_mesh : int;
  mutable packets_to_neighbors : int;
  mutable packets_to_experiments : int;
  mutable packets_over_backbone : int;
  mutable packets_dropped : int;
  mutable icmp_sent : int;
  mutable reexport_computations : int;
      (** neighbor-facing attribute-set computations performed by
          re-export (update-group cache misses) *)
  mutable gr_retentions : int;
      (** session drops answered with stale retention instead of a drop *)
  mutable gr_expiries : int;
      (** restart windows that expired into the hard-drop path *)
  mutable updates_to_neighbors : int;
      (** UPDATE messages sent to neighbors (after NLRI packing) *)
  mutable nlri_to_neighbors : int;
      (** NLRI (announce + withdraw) carried by those messages; the
          ratio nlri/updates is the packing ratio *)
  mutable updates_to_experiments : int;
      (** UPDATE messages sent to experiments (after NLRI packing) *)
  mutable nlri_to_experiments : int;
  mutable updates_to_mesh : int;
      (** UPDATE messages sent over the backbone mesh (after packing) *)
  mutable nlri_to_mesh : int;
  mutable flow_hits : int;
      (** forwarded frames served by a memoized flow-cache decision *)
  mutable flow_misses : int;
      (** forwarded frames resolved through the slow path *)
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  name : string;
  asn : Asn.t;
  router_id : Ipv4.t;
  primary_ip : Ipv4.t;
  v6_next_hop : Ipv6.t;
  mutable exp_lan : Lan.t;
  router_mac : Mac.t;
  mutable bb : Arp_client.t option;
  local_pool : Addr_pool.t;
  global_pool : Addr_pool.t;
  control : Control_enforcer.t;
  data : Data_enforcer.t;
  fibs : Rib.Fib.Set.t;
  neighbors : (int, neighbor_state) Hashtbl.t;
  mutable next_neighbor_id : int;
  by_vmac : (Mac.t, int) Hashtbl.t;
  by_vip : (Ipv4.t, int) Hashtbl.t;
  by_global_ip : (Ipv4.t, int) Hashtbl.t;
  alias_by_global : (Ipv4.t, int) Hashtbl.t;
  experiments : (string, experiment_state) Hashtbl.t;
  by_exp_mac : (Mac.t, string) Hashtbl.t;
  mutable owner_trie : owner Ptrie.V4.t;
  owner_cache : owner Dcache.t;
  mutable mesh : mesh_peer list;
  mesh_imports : (string * int, mesh_import) Hashtbl.t;
  remote_exp_routes :
    (string * int, Prefix.t * Attr_arena.handle * Ipv4.t) Hashtbl.t;
      (** (origin PoP, path id) -> announced prefix, attributes, and the
          origin's backbone address (the owner fallback when no local
          experiment announces the prefix) *)
  adj_out : (int, (Prefix.t, Attr_arena.handle) Hashtbl.t) Hashtbl.t;
  dirty : (Prefix.t, unit) Hashtbl.t;
  dirty_v6 : (Prefix_v6.t, unit) Hashtbl.t;
  mutable reexport_scheduled : bool;
  dirty_in : (int * Prefix.t, unit) Hashtbl.t;
      (** batched-ingest queue: (neighbor id, prefix) pairs whose
          experiment/mesh export is deferred to the next ingest flush *)
  mutable ingest_scheduled : bool;
  ingest_batching : bool;
      (** [false] restores the per-NLRI eager export path (the reference
          the differential tests compare batched ingest against) *)
  counters : counters;
  rng : Random.State.t;
      (** engine-seeded randomness (reconnect jitter); deterministic runs *)
  gr_restart_time : int;
      (** the restart window this router advertises (RFC 4724), seconds *)
  flow_cache_enabled : bool;
      (** serve forwarding decisions from the per-neighbor flow caches *)
  domains : int;
      (** worker domains for the sharded data plane; 1 = the sequential
          path (the default, bit-identical to pre-sharding behavior) *)
  mutable pool : Shard.t option;  (** the worker pool when [domains > 1] *)
  parallel_ingest : int;
      (** worker domains for the parallel ingest lane; 1 = the
          sequential batched path (the default, bit-identical) *)
  mutable ingest_pool : Ingest_pool.t option;
      (** the ingest worker pool when [parallel_ingest > 1] *)
  parallel_export : int;
      (** worker domains for the parallel export lane; 1 = the
          sequential flush (the default, byte-identical on the wire) *)
  export_pool : Export_pool.t;
      (** the export lane pool — always present: the single-lane pool is
          the sequential flush path itself (encode-once wire cache and
          stats stay live on every router) *)
  mutable shard_fp : int list;
      (** fingerprint of the control state captured by the last published
          snapshot (see {!shard_publish}) *)
}

val mesh_exp_id_base : int

val mesh_path_id : experiment_state -> int -> int
(** The ADD-PATH id carried on the mesh for an experiment variant. *)

val default_v6_next_hop : Ipv6.t

val create :
  engine:Engine.t ->
  ?trace:Trace.t ->
  name:string ->
  asn:Asn.t ->
  router_id:Ipv4.t ->
  primary_ip:Ipv4.t ->
  ?v6_next_hop:Ipv6.t ->
  local_pool:Prefix.t ->
  global_pool:Addr_pool.t ->
  ?control:Control_enforcer.t ->
  ?data:Data_enforcer.t ->
  ?flow_cache:bool ->
  ?ingest_batching:bool ->
  ?domains:int ->
  ?parallel_ingest:int ->
  ?parallel_export:int ->
  ?seed:int ->
  ?gr_restart_time:int ->
  unit ->
  t
(** [parallel_ingest > 1] requires [ingest_batching] (the lane feeds the
    per-tick dirty queue; there is no parallel eager path).
    [parallel_export] (>= 1) sizes the export lane pool. *)

val shard_publish : t -> unit
(** Publish a fresh control snapshot to the sharded data plane's worker
    pool when any state it captures has changed (enforcement chain,
    owner table, experiment stations, any neighbor FIB — tracked by a
    generation fingerprint). Called automatically at every tick flush
    and before each sharded drain; a no-op on single-domain routers. *)

val name : t -> string
val asn : t -> Asn.t
val experiment_lan : t -> Lan.t
val router_mac : t -> Mac.t
val counters : t -> counters
val trace : t -> Trace.t
val control_enforcer : t -> Control_enforcer.t
val data_enforcer : t -> Data_enforcer.t
val fib_set : t -> Rib.Fib.Set.t
val v6_next_hop : t -> Ipv6.t
val control_asn : t -> int

val log : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val owner_insert : t -> Prefix.t -> owner -> unit
(** Bind a prefix in the owner trie. All mutation must go through
    [owner_insert]/[owner_remove]: they bump the destination cache's
    generation so [owner_lookup] never serves a stale owner. *)

val owner_remove : t -> Prefix.t -> unit

val owner_lookup : t -> Ipv4.t -> owner option
(** Longest-prefix match of the owner of an address, through the
    generation-stamped destination cache (the per-packet inbound path). *)

val neighbor : t -> int -> neighbor_state option
val neighbor_states : t -> neighbor_state list
val real_neighbors : t -> neighbor_state list
val experiment : t -> string -> experiment_state option

val adj_out_table : t -> int -> (Prefix.t, Attr_arena.handle) Hashtbl.t
(** The per-neighbor Adj-RIB-Out table, created on first use. *)

val send_update_to_neighbor : t -> neighbor_state -> Msg.update -> unit
(** Send an UPDATE to a neighbor's session when established, splitting
    it at the classic 4096-byte boundary ({!Bgp.Codec.split_update}) and
    bumping the [updates_to_neighbors]/[nlri_to_neighbors] counters.
    Silently drops when the session is down (re-sync on reconnect). *)

val send_update_to_experiment : t -> experiment_state -> Msg.update -> unit
(** Same contract toward an experiment session (ADD-PATH-aware split,
    [updates_to_experiments]/[nlri_to_experiments] counters). *)

val send_update_to_mesh : t -> Msg.update -> unit
(** Send to every established mesh session, splitting once and counting
    per receiving session. *)

(** {1 NLRI grouping}

    Accumulates NLRIs per interned attribute set in first-seen order;
    the batched export paths use it to leave one packed multi-NLRI
    UPDATE per shared attribute set. *)

type nlri_groups

val nlri_groups_create : unit -> nlri_groups
val nlri_groups_add : nlri_groups -> Attr_arena.handle -> Msg.nlri -> unit

val nlri_groups_iter :
  nlri_groups -> (Attr_arena.handle -> Msg.nlri list -> unit) -> unit
(** Groups in first-seen order, NLRIs in insertion order. *)

val session_capabilities : ?add_path:bool -> t -> Capability.t list

val reconnect_policy : t -> Session.reconnect_policy
(** The reconnect policy platform-owned sessions use: capped exponential
    backoff with jitter from this router's RNG. *)

(** {1 Inspection} *)

val route_count : t -> int
val fib_entry_count : t -> int
val control_plane_bytes : t -> int
val data_plane_bytes : t -> int
val attribution : t -> (string * int * int * int) list
val owner_of : t -> Ipv4.t -> string option
val allocation_owner_of : t -> Ipv4.t -> string option
val export_id : t -> neighbor_id:int -> int
val neighbor_routes : t -> neighbor_id:int -> Rib.Route.t list

val adj_out_routes : t -> neighbor_id:int -> (Prefix.t * Attr.set) list
(** The Adj-RIB-Out toward a neighbor as a sorted association list (the
    chaos convergence checker compares these across runs). *)

val stale_count : t -> neighbor_id:int -> int
(** Prefixes currently held stale for a neighbor (GR retention). *)
