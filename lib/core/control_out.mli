(** Control plane, outbound (§3.2.1, §3.3, §4.7): experiment update
    processing through the enforcement engine, announcement-variant
    selection, mesh import, and batched per-neighbor re-export.

    Re-export runs through a dirty-prefix queue: updates mark prefixes
    dirty ({!request_reexport}) and one flush per engine tick
    ({!flush_reexports}, self-scheduled at zero delay) recomputes each
    dirty prefix exactly once per neighbor. Deltas against the
    per-neighbor Adj-RIB-Out keep the wire identical to eager
    re-export.

    Within one flush, neighbors selecting the same interned variant form
    an update-group: the neighbor-facing attribute set is computed once
    per variant and fanned out, and each neighbor's deltas leave as
    packed multi-NLRI UPDATEs (one per shared outbound attribute set,
    split at the 4096-byte RFC 4271 boundary). *)

open Netcore
open Bgp
open Sim

val variants_for_prefix :
  Router_state.t -> Prefix.t -> Attr_arena.handle list
(** All live announcement variants for a prefix (local experiments plus
    remote-experiment imports), unfiltered, as interned handles. *)

val neighbor_facing_attrs : Router_state.t -> Attr.set -> Attr.set
(** Attributes as announced to a real eBGP neighbor: platform ASN
    prepended, next hop rewritten, control communities stripped. *)

val chunked : 'a list -> int -> 'a list list
(** Split a list into chunks of at most [n] elements, preserving order
    (the v6 MP-attribute packer's helper). Tail-recursive — a full-table
    withdraw sweep chunks hundreds of thousands of NLRIs — and raises
    [Invalid_argument] when [n <= 0]. *)

val request_reexport : Router_state.t -> Prefix.t -> unit
(** Mark an IPv4 prefix dirty and schedule a flush at the current engine
    tick (no-op if one is already scheduled). *)

val request_reexport_v6 : Router_state.t -> Prefix_v6.t -> unit

val flush_reexports : Router_state.t -> unit
(** Drain the dirty-prefix queues now: recompute each dirty prefix once
    per neighbor (deterministic prefix order) and send Adj-RIB-Out
    deltas. Runs automatically once per engine tick after updates; call
    directly only when driving the router without the engine. *)

val process_experiment_update :
  Router_state.t ->
  experiment:string ->
  Msg.update ->
  (unit, string list) result
(** Run one UPDATE from a connected experiment through the control-plane
    enforcement engine (§3.3); on acceptance, record the variant, export
    to the mesh, and mark affected prefixes dirty. *)

val process_mesh_update : Router_state.t -> pop:string -> Msg.update -> unit
(** Import one UPDATE from the backbone mesh: alias remote neighbors'
    routes (§4.4) or record remote experiment announcements for local
    re-export. Identical replays (a graceful-restart resync) are
    absorbed silently. *)

val process_mesh_eor : Router_state.t -> pop:string -> unit
(** The mesh peer's End-of-RIB (RFC 4724): drop exactly the stale
    imports its post-restart resync did not refresh. *)

val process_mesh_down : Router_state.t -> pop:string -> Fsm.down_reason -> unit
(** Mesh session loss: retain imports as stale for the negotiated restart
    window on a graceful down, hard-drop them otherwise. *)

val flush_mesh_peer : Router_state.t -> pop:string -> unit
(** An out-of-band verdict that [pop] is dead (the health monitor's
    Failed transition): drop its imports now instead of waiting out the
    graceful-restart window, withdrawing its remote experiment
    announcements from our neighbors. Idempotent. *)

val connect_experiment :
  Router_state.t ->
  grant:Control_enforcer.grant ->
  mac:Mac.t ->
  ?latency:float ->
  unit ->
  Bgp_wire.pair
(** Connect an experiment's BGP client (ADD-PATH both directions); data
    flows over the experiment LAN via [mac]. The caller starts the
    returned pair. *)
