(** The inter-PoP backbone (§4.4): mesh BGP sessions between PoP routers,
    global-pool aliasing of remote neighbors, and the backbone-segment
    stations that carry cross-PoP traffic hop by hop.

    Operates on the shared {!Router_state.t}; mesh UPDATE processing
    itself lives in {!Control_out} and is injected into
    {!connect_mesh}. *)

open Netcore
open Bgp
open Sim

val alias_for_global :
  Router_state.t ->
  pop:string ->
  Ipv4.t ->
  Router_state.neighbor_state * bool
(** Find or create the local alias pseudo-neighbor for a remote
    neighbor's global IP; [true] when freshly created. The alias shares
    the remote neighbor's platform-global export id. *)

val register_global_station :
  Router_state.t ->
  Lan.t ->
  g:Ipv4.t ->
  receive:(Ipv4_packet.t -> unit) ->
  unit
(** Put a station for global IP [g] on the backbone segment: answers ARP
    for [g] and hands arriving packets to [receive]. *)

val backbone_station_for_neighbor : Router_state.t -> int -> Ipv4_packet.t -> unit
(** The receive path of a local neighbor's global station: TTL check,
    then delivery to the neighbor. *)

val attach_backbone : Router_state.t -> Lan.t -> unit
(** Join the backbone segment shared by all PoPs: answer ARP for local
    neighbors' (and experiments') global IPs and accept cross-PoP
    traffic. *)

val connect_mesh :
  Router_state.t ->
  Router_state.t ->
  on_update:(Router_state.t -> pop:string -> Msg.update -> unit) ->
  on_eor:(Router_state.t -> pop:string -> unit) ->
  on_peer_down:(Router_state.t -> pop:string -> Fsm.down_reason -> unit) ->
  ?latency:float ->
  unit ->
  Bgp_wire.pair
(** Bring up the backbone BGP mesh session between two PoP routers (both
    directions installed; started internally). [on_update] processes
    mesh imports on behalf of the receiving router, [on_eor] sweeps
    graceful-restart stale imports when the peer's End-of-RIB arrives,
    and [on_peer_down] decides between stale retention and a hard drop
    when the session falls. All three live in {!Control_out}, which
    compiles after this module. *)
