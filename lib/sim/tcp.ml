(* An event-driven TCP-Reno-style sender/receiver pair over a {!Link}:
   slow start, congestion avoidance (AIMD), cumulative ACKs with
   out-of-order buffering, and timeout-based loss recovery.

   The §6 backbone measurements in the paper are iperf3 runs; the
   {!Flow} module reproduces their *steady-state* predictions analytically,
   while this module actually transfers bytes through the simulated links
   so the two can be validated against each other (see the throughput
   bench). It is deliberately a compact Reno, not a full TCP: no handshake,
   no FIN, segment-granularity sequence numbers. *)

type stats = {
  bytes_acked : int;
  duration : float;  (** first send to last ACK, seconds *)
  goodput : float;  (** bytes per second *)
  retransmits : int;
}

type receiver = {
  mutable next_expected : int;  (** lowest segment not yet received *)
  out_of_order : (int, unit) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  link : Link.t;
  mss : int;
  total_segments : int;
  on_complete : stats -> unit;
  (* sender state *)
  mutable cwnd : float;  (** in segments *)
  mutable ssthresh : float;
  mutable next_to_send : int;
  mutable acked : int;  (** cumulative: all segments < acked delivered *)
  mutable in_flight : int;
  mutable srtt : float;
  mutable retransmits : int;
  started_at : float;
  mutable finished : bool;
  mutable timer_generation : int;
      (** invalidates outstanding retransmission timeouts *)
  send_times : (int, float) Hashtbl.t;
  rx : receiver;
}

(* Segments and ACKs on the wire: a tiny ad-hoc framing ("D<seq>" data of
   mss bytes, "A<cum>" acknowledgement). *)
let encode_data t seq = Printf.sprintf "D%d:%s" seq (String.make t.mss 'x')
let encode_ack cum = Printf.sprintf "A%d" cum

let decode msg =
  if String.length msg = 0 then `Junk
  else
    match msg.[0] with
    | 'D' -> (
        match String.index_opt msg ':' with
        | Some i -> (
            match int_of_string_opt (String.sub msg 1 (i - 1)) with
            | Some seq -> `Data seq
            | None -> `Junk)
        | None -> `Junk)
    | 'A' -> (
        match int_of_string_opt (String.sub msg 1 (String.length msg - 1)) with
        | Some cum -> `Ack cum
        | None -> `Junk)
    | _ -> `Junk

let rto t = Float.max 0.2 (2.5 *. t.srtt)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let duration = Engine.now t.engine -. t.started_at in
    let bytes = t.total_segments * t.mss in
    t.on_complete
      {
        bytes_acked = bytes;
        duration;
        goodput = (if duration > 0. then float_of_int bytes /. duration else 0.);
        retransmits = t.retransmits;
      }
  end

let send_segment t seq =
  Hashtbl.replace t.send_times seq (Engine.now t.engine);
  Link.send t.link ~from:Link.A (encode_data t seq)

(* Arm the retransmission timeout for the current ACK frontier. *)
let rec arm_rto t =
  let generation = t.timer_generation in
  let frontier = t.acked in
  Engine.run_after t.engine (rto t) (fun () ->
      if
        (not t.finished)
        && generation = t.timer_generation
        && t.acked = frontier
      then begin
        (* Loss: multiplicative decrease and go-back-N from the frontier. *)
        t.ssthresh <- Float.max 1. (t.cwnd /. 2.);
        t.cwnd <- 1.;
        t.retransmits <- t.retransmits + 1;
        t.next_to_send <- t.acked;
        t.in_flight <- 0;
        t.timer_generation <- t.timer_generation + 1;
        pump t;
        arm_rto t
      end)

(* Send as much as the window allows. *)
and pump t =
  while
    (not t.finished)
    && t.next_to_send < t.total_segments
    && t.in_flight < int_of_float t.cwnd
  do
    send_segment t t.next_to_send;
    t.next_to_send <- t.next_to_send + 1;
    t.in_flight <- t.in_flight + 1
  done

let handle_ack t cum =
  if not t.finished then begin
    if cum > t.acked then begin
      (* RTT sample from the newest acked segment. *)
      (match Hashtbl.find_opt t.send_times (cum - 1) with
      | Some sent ->
          let sample = Engine.now t.engine -. sent in
          t.srtt <-
            (if t.srtt = 0. then sample else (0.875 *. t.srtt) +. (0.125 *. sample))
      | None -> ());
      let newly = cum - t.acked in
      t.acked <- cum;
      t.in_flight <- max 0 (t.in_flight - newly);
      t.timer_generation <- t.timer_generation + 1;
      (* Window growth: slow start below ssthresh, else congestion
         avoidance (+1 segment per RTT, approximated per-ACK). *)
      for _ = 1 to newly do
        if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
        else t.cwnd <- t.cwnd +. (1. /. t.cwnd)
      done;
      if t.acked >= t.total_segments then finish t
      else begin
        pump t;
        arm_rto t
      end
    end
  end

let handle_data t seq =
  let rx = t.rx in
  if seq = rx.next_expected then begin
    rx.next_expected <- rx.next_expected + 1;
    while Hashtbl.mem rx.out_of_order rx.next_expected do
      Hashtbl.remove rx.out_of_order rx.next_expected;
      rx.next_expected <- rx.next_expected + 1
    done
  end
  else if seq > rx.next_expected then Hashtbl.replace rx.out_of_order seq ();
  Link.send t.link ~from:Link.B (encode_ack rx.next_expected)

(* Transfer [bytes] from endpoint A to endpoint B of [link]; the link's
   receive callbacks are installed by this call. [on_complete] fires with
   the transfer statistics. *)
let start engine link ?(mss = 1460) ~bytes ~on_complete () =
  if bytes <= 0 then invalid_arg "Tcp.start: bytes";
  let total_segments = (bytes + mss - 1) / mss in
  let t =
    {
      engine;
      link;
      mss;
      total_segments;
      on_complete;
      cwnd = 2.;
      ssthresh = infinity;
      next_to_send = 0;
      acked = 0;
      in_flight = 0;
      srtt = 0.;
      retransmits = 0;
      started_at = Engine.now engine;
      finished = false;
      timer_generation = 0;
      send_times = Hashtbl.create 256;
      rx = { next_expected = 0; out_of_order = Hashtbl.create 64 };
    }
  in
  Link.attach link Link.B (fun msg ->
      match decode msg with `Data seq -> handle_data t seq | _ -> ());
  Link.attach link Link.A (fun msg ->
      match decode msg with `Ack cum -> handle_ack t cum | _ -> ());
  pump t;
  arm_rto t;
  t

let is_finished t = t.finished

(* Convenience: run a transfer to completion and return its stats. *)
let run engine ?mss ~latency ~bandwidth ?(loss = 0.) ?(seed = 1) ~bytes () =
  let link = Link.create ~latency ~bandwidth ~loss ~seed engine in
  let result = ref None in
  let _t =
    start engine link ?mss ~bytes ~on_complete:(fun s -> result := Some s) ()
  in
  (* Run with a generous event limit; a stuck transfer returns None. *)
  ignore (Engine.run ~limit:50_000_000 engine);
  !result
