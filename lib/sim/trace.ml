(* A bounded in-memory event trace. PlanetFlow-style attribution (paper
   §3.1) requires that experiment activity be loggable; platform components
   record control- and data-plane events here, and tests assert on them. *)

type entry = { time : float; category : string; message : string }

type t = {
  mutable entries : entry list;  (** newest first *)
  mutable count : int;
  capacity : int;
  mutable enabled : bool;
}

let create ?(capacity = 10_000) () =
  { entries = []; count = 0; capacity; enabled = true }

let set_enabled t enabled = t.enabled <- enabled
let enabled t = t.enabled

let record t ~time ~category fmt =
  if not t.enabled then Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  else
    Format.kasprintf
      (fun message -> begin
        t.entries <- { time; category; message } :: t.entries;
        t.count <- t.count + 1;
        if t.count > t.capacity then begin
          (* Drop the oldest half; amortized O(1) per record. *)
          let keep = t.capacity / 2 in
          t.entries <- List.filteri (fun i _ -> i < keep) t.entries;
          t.count <- keep
        end
      end)
    fmt

(* Entries oldest-first. *)
let entries t = List.rev t.entries

let find t ~category =
  List.rev
    (List.filter (fun e -> String.equal e.category category) t.entries)

let count t ~category =
  List.length (List.filter (fun e -> String.equal e.category category) t.entries)

let clear t =
  t.entries <- [];
  t.count <- 0

let pp_entry ppf e =
  Fmt.pf ppf "[%8.3f] %-12s %s" e.time e.category e.message

let dump ?(limit = max_int) t ppf =
  List.iteri
    (fun i e -> if i < limit then Fmt.pf ppf "%a@." pp_entry e)
    (entries t)
