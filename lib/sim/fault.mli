(** Scriptable fault injection on the discrete-event engine: link flaps,
    loss/latency ramps, session kills, and backbone partitions.

    Deterministic by construction — timing from the engine, randomness
    from a caller-seeded RNG — and every injected fault lands in a
    chronological log, so a failing convergence check can replay the
    exact scenario. *)

type t

val create : ?seed:int -> Engine.t -> t

val events : t -> (float * string) list
(** The chronological fault log: (simulated time, description). *)

val jittered : t -> float -> float
(** A delay drawn from [0.75, 1.25) of the nominal value. *)

val at : t -> at:float -> string -> (unit -> unit) -> unit
(** Schedule an arbitrary labelled fault [at] seconds from now. *)

(** {1 Link faults} *)

val link_down : t -> at:float -> duration:float -> Link.t -> unit
(** Take the link down at [at]; heal it [duration] later. *)

val flap_link :
  t ->
  at:float ->
  ?jitter:bool ->
  count:int ->
  down_for:float ->
  up_for:float ->
  Link.t ->
  unit
(** [count] down/up cycles; with [jitter] each phase length varies by
    ±25%. *)

val loss_ramp :
  t -> at:float -> duration:float -> peak:float -> ?steps:int -> Link.t -> unit
(** Ramp loss up to [peak] and back to the baseline over [duration]. *)

val latency_spike :
  t -> at:float -> duration:float -> factor:float -> Link.t -> unit
(** Multiply latency by [factor] for [duration] seconds. *)

(** {1 Session faults} *)

val kill_session : t -> at:float -> Bgp.Session.t -> unit
(** Fail one session endpoint (transport reports a connection loss). *)

val kill_pair : t -> at:float -> Bgp_wire.pair -> unit
(** Fail both endpoints simultaneously — the shape of a real transport
    loss, and the reliable way to exercise graceful restart. *)

(** {1 Partitions} *)

val partition : t -> at:float -> duration:float -> Link.t list -> unit
(** Take several links down together; heal them together. *)
