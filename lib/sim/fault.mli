(** Scriptable fault injection on the discrete-event engine: link flaps,
    loss/latency ramps, session kills, backbone partitions, and PoP-level
    crash/restart/degradation.

    Deterministic by construction — timing from the engine, randomness
    from a caller-seeded RNG — and every injected fault lands in a
    structured chronological log that prints as a replayable script, so a
    failing convergence check reports the exact scenario that broke it. *)

(** The fault kind, carrying its parameters. *)
type kind =
  | Link_down
  | Link_up
  | Loss_set of float
  | Latency_factor of float
  | Latency_restored
  | Session_kill
  | Pair_kill
  | Partition of int  (** links taken down together *)
  | Partition_healed
  | Pop_kill
  | Pop_restart
  | Pop_degrade of float  (** fraction of sessions hit *)
  | Custom of string

type event = { time : float; kind : kind; target : string }
(** One log entry: what fired, when, and against which victim. *)

val kind_to_string : kind -> string

val event_to_string : event -> string
(** One replayable script line, e.g. ["t=12.000 kill_pop pop02"]. *)

val pp_event : Format.formatter -> event -> unit

type t

val create : ?seed:int -> Engine.t -> t

val events : t -> event list
(** The chronological fault log. *)

val script : t -> string
(** The whole log as a newline-joined replayable script — chaos suites
    embed this in failure messages. *)

val rng : t -> Random.State.t
(** The caller-seeded RNG driving this scenario's random choices (victim
    selection, jitter) — sharing it keeps the scenario replayable. *)

val jittered : t -> float -> float
(** A delay drawn from [0.75, 1.25) of the nominal value. *)

val at : t -> at:float -> ?target:string -> string -> (unit -> unit) -> unit
(** Schedule an arbitrary labelled fault [at] seconds from now, logged as
    a {!Custom} event. *)

(** {1 Link faults} *)

val link_down :
  t -> at:float -> ?target:string -> duration:float -> Link.t -> unit
(** Take the link down at [at]; heal it [duration] later. *)

val flap_link :
  t ->
  at:float ->
  ?target:string ->
  ?jitter:bool ->
  count:int ->
  down_for:float ->
  up_for:float ->
  Link.t ->
  unit
(** [count] down/up cycles; with [jitter] each phase length varies by
    ±25%. *)

val loss_ramp :
  t ->
  at:float ->
  ?target:string ->
  duration:float ->
  peak:float ->
  ?steps:int ->
  Link.t ->
  unit
(** Ramp loss up to [peak] and back to the baseline over [duration]. *)

val latency_spike :
  t ->
  at:float ->
  ?target:string ->
  duration:float ->
  factor:float ->
  Link.t ->
  unit
(** Multiply latency by [factor] for [duration] seconds. *)

(** {1 Session faults} *)

val kill_session : t -> at:float -> ?target:string -> Bgp.Session.t -> unit
(** Fail one session endpoint (transport reports a connection loss). *)

val kill_pair : t -> at:float -> ?target:string -> Bgp_wire.pair -> unit
(** Fail both endpoints simultaneously — the shape of a real transport
    loss, and the reliable way to exercise graceful restart. *)

(** {1 Partitions} *)

val partition :
  t -> at:float -> ?target:string -> duration:float -> Link.t list -> unit
(** Take several links down together; heal them together. *)

(** {1 PoP-level faults}

    The sim layer cannot see PoPs (the peering library sits above it), so
    the teardown/restore machinery arrives as a closure — typically
    [Peering.Failover.kill_pop] and friends — while scheduling and the
    replayable log live here with every other fault. *)

val kill_pop : t -> at:float -> pop:string -> (unit -> unit) -> unit
val restart_pop : t -> at:float -> pop:string -> (unit -> unit) -> unit

val degrade_pop :
  t -> at:float -> pop:string -> fraction:float -> (unit -> unit) -> unit
