(* Glue between BGP sessions and simulated links: create the two endpoints
   of a session over a fresh link, so that starting the active side brings
   the pair to Established through the real FSM/codec path. *)

open Bgp

type pair = {
  active : Session.t;
  passive : Session.t;
  link : Link.t;
}

(* Build a session pair over a new link. [config_active] should have
   [passive = false]; [config_passive] is forced passive. Handlers can be
   installed with [Session.set_handlers] before calling [start]. *)
let make engine ?(latency = 0.001) ?(bandwidth = infinity)
    ~config_active ~config_passive () =
  let link = Link.create ~latency ~bandwidth engine in
  let active_ref = ref None and passive_ref = ref None in
  let session_up () =
    match (!active_ref, !passive_ref) with
    | Some a, Some p ->
        Session.connection_up p;
        Session.connection_up a
    | _ -> ()
  in
  let transport_a = Link.transport link Link.A ~session_up in
  let transport_b = Link.transport link Link.B ~session_up in
  let active =
    Session.create ~config:config_active ~transport:transport_a
      ~timers:(Engine.timers engine) ()
  in
  let passive =
    Session.create
      ~config:{ config_passive with Session.passive = true }
      ~transport:transport_b ~timers:(Engine.timers engine) ()
  in
  active_ref := Some active;
  passive_ref := Some passive;
  Link.attach link Link.A (fun data -> Session.receive_bytes active data);
  Link.attach link Link.B (fun data -> Session.receive_bytes passive data);
  (* A closed transport is signalled to the other endpoint as a connection
     failure, so teardown propagates without waiting for hold timers. *)
  Link.set_teardown link Link.A (fun () -> Session.connection_failed active);
  Link.set_teardown link Link.B (fun () -> Session.connection_failed passive);
  { active; passive; link }

(* Start both sides; run the engine afterwards to reach Established. *)
let start pair =
  Session.start pair.passive;
  Session.start pair.active
