(* Scriptable fault injection on the discrete-event engine: link flaps,
   loss and latency ramps, session kills, backbone partitions, and
   PoP-level crash/restart/degradation. The chaos counterpart of the
   paper's monitoring/canarying story (§5) — the platform must keep
   serving experiments while edge sessions churn and whole sites fail.

   Every injected fault is deterministic: timing comes from the engine,
   randomness from a caller-seeded RNG, and each fault is appended to a
   structured chronological log — (time, kind, target) — that prints as a
   replayable script, so a failed convergence check reports the exact
   scenario that broke it. *)

(* What happened, structurally: failure messages that only said "link
   down" were useless for replay — the kind carries the fault parameters
   and [target] names the victim. *)
type kind =
  | Link_down
  | Link_up
  | Loss_set of float
  | Latency_factor of float
  | Latency_restored
  | Session_kill
  | Pair_kill
  | Partition of int  (** links taken down together *)
  | Partition_healed
  | Pop_kill
  | Pop_restart
  | Pop_degrade of float  (** fraction of sessions hit *)
  | Custom of string

type event = { time : float; kind : kind; target : string }

let kind_to_string = function
  | Link_down -> "link_down"
  | Link_up -> "link_up"
  | Loss_set l -> Printf.sprintf "loss %.2f" l
  | Latency_factor f -> Printf.sprintf "latency x%.1f" f
  | Latency_restored -> "latency_restore"
  | Session_kill -> "kill_session"
  | Pair_kill -> "kill_pair"
  | Partition n -> Printf.sprintf "partition %d" n
  | Partition_healed -> "heal"
  | Pop_kill -> "kill_pop"
  | Pop_restart -> "restart_pop"
  | Pop_degrade f -> Printf.sprintf "degrade_pop %.2f" f
  | Custom s -> s

(* One replayable script line: "t=12.000 kill_pop pop02". *)
let event_to_string e =
  if String.equal e.target "" then
    Printf.sprintf "t=%.3f %s" e.time (kind_to_string e.kind)
  else Printf.sprintf "t=%.3f %s %s" e.time (kind_to_string e.kind) e.target

let pp_event ppf e = Format.pp_print_string ppf (event_to_string e)

type t = {
  engine : Engine.t;
  rng : Random.State.t;
  mutable events : event list;  (** newest first *)
}

let create ?(seed = 7) engine =
  { engine; rng = Random.State.make [| seed |]; events = [] }

let events t = List.rev t.events
let rng t = t.rng

let script t =
  String.concat "\n" (List.rev_map (fun e -> event_to_string e) t.events)

let note t kind target =
  t.events <- { time = Engine.now t.engine; kind; target } :: t.events

(* Schedule [f] at [at] seconds from now, logging the event when it
   fires. *)
let inject t ~at:delay kind target f =
  Engine.run_after t.engine delay (fun () ->
      note t kind target;
      f ())

(* An arbitrary labelled fault, logged as a [Custom] event. *)
let at t ~at:delay ?(target = "") what f = inject t ~at:delay (Custom what) target f

(* A jittered delay in [0.75 * d, 1.25 * d), from the fault RNG. *)
let jittered t d = d *. (0.75 +. Random.State.float t.rng 0.5)

(* -- link faults ----------------------------------------------------------- *)

(* Take [link] down at [at] and bring it back [duration] later. *)
let link_down t ~at:delay ?(target = "") ~duration link =
  inject t ~at:delay Link_down target (fun () -> Link.set_up link false);
  inject t ~at:(delay +. duration) Link_up target (fun () ->
      Link.set_up link true)

(* [count] consecutive down/up cycles starting at [at]: down for
   [down_for], then up for [up_for], repeated. With [jitter], each phase
   length is drawn from [0.75, 1.25) of the nominal value. *)
let flap_link t ~at:delay ?(target = "") ?(jitter = false) ~count ~down_for
    ~up_for link =
  let phase d = if jitter then jittered t d else d in
  let start = ref delay in
  for _ = 1 to count do
    let d = phase down_for and u = phase up_for in
    link_down t ~at:!start ~target ~duration:d link;
    start := !start +. d +. u
  done

(* Ramp the link's loss rate up to [peak] and back down over [duration],
   in [steps] equal stages per side. *)
let loss_ramp t ~at:delay ?(target = "") ~duration ~peak ?(steps = 4) link =
  let baseline = Link.loss link in
  let dt = duration /. float_of_int (2 * steps) in
  for i = 1 to steps do
    let frac = float_of_int i /. float_of_int steps in
    let l = baseline +. ((peak -. baseline) *. frac) in
    inject t
      ~at:(delay +. (dt *. float_of_int (i - 1)))
      (Loss_set l) target
      (fun () -> Link.set_loss link l)
  done;
  for i = 1 to steps do
    let frac = float_of_int (steps - i) /. float_of_int steps in
    let l = baseline +. ((peak -. baseline) *. frac) in
    inject t
      ~at:(delay +. (dt *. float_of_int (steps + i - 1)))
      (Loss_set l) target
      (fun () -> Link.set_loss link l)
  done

(* Multiply the link's latency by [factor] at [at]; restore after
   [duration]. *)
let latency_spike t ~at:delay ?(target = "") ~duration ~factor link =
  let baseline = Link.latency link in
  inject t ~at:delay (Latency_factor factor) target (fun () ->
      Link.set_latency link (baseline *. factor));
  inject t ~at:(delay +. duration) Latency_restored target (fun () ->
      Link.set_latency link baseline)

(* -- session faults -------------------------------------------------------- *)

(* Fail one session endpoint (its transport reports a connection loss). *)
let kill_session t ~at:delay ?(target = "") session =
  inject t ~at:delay Session_kill target (fun () ->
      Bgp.Session.connection_failed session)

(* Fail both endpoints of a session pair simultaneously — the shape of a
   real transport loss, and the reliable way to exercise graceful
   restart: both sides observe [Transport_failed] at the same instant. *)
let kill_pair t ~at:delay ?(target = "") (pair : Bgp_wire.pair) =
  inject t ~at:delay Pair_kill target (fun () ->
      Bgp.Session.connection_failed pair.Bgp_wire.active;
      Bgp.Session.connection_failed pair.Bgp_wire.passive)

(* -- partitions ------------------------------------------------------------ *)

(* Take a set of links (e.g. one side of the backbone mesh) down together
   at [at] and heal them together [duration] later. *)
let partition t ~at:delay ?(target = "") ~duration links =
  inject t ~at:delay (Partition (List.length links)) target (fun () ->
      List.iter (fun l -> Link.set_up l false) links);
  inject t ~at:(delay +. duration) Partition_healed target (fun () ->
      List.iter (fun l -> Link.set_up l true) links)

(* -- PoP-level faults ------------------------------------------------------- *)

(* The sim layer cannot see PoPs (the peering library sits above it), so
   the teardown/restore machinery arrives as a closure — typically
   [Peering.Failover.kill_pop] and friends — while the scheduling and the
   replayable log live here with every other fault. *)

let kill_pop t ~at:delay ~pop f = inject t ~at:delay Pop_kill pop f
let restart_pop t ~at:delay ~pop f = inject t ~at:delay Pop_restart pop f

let degrade_pop t ~at:delay ~pop ~fraction f =
  inject t ~at:delay (Pop_degrade fraction) pop f
