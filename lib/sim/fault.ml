(* Scriptable fault injection on the discrete-event engine: link flaps,
   loss and latency ramps, session kills, and backbone partitions. The
   chaos counterpart of the paper's monitoring/canarying story (§5) — the
   platform must keep serving experiments while edge sessions churn.

   Every injected fault is deterministic: timing comes from the engine,
   randomness from a caller-seeded RNG, and each fault is appended to a
   chronological log so a failed convergence check can replay the exact
   scenario. *)

type t = {
  engine : Engine.t;
  rng : Random.State.t;
  mutable events : (float * string) list;  (** newest first *)
}

let create ?(seed = 7) engine =
  { engine; rng = Random.State.make [| seed |]; events = [] }

let events t = List.rev t.events

let note t fmt =
  Format.kasprintf
    (fun msg -> t.events <- (Engine.now t.engine, msg) :: t.events)
    fmt

(* Schedule [f] at [at] seconds from now, logging [what] when it fires. *)
let at t ~at:delay what f =
  Engine.run_after t.engine delay (fun () ->
      note t "%s" what;
      f ())

(* A jittered delay in [0.75 * d, 1.25 * d), from the fault RNG. *)
let jittered t d = d *. (0.75 +. Random.State.float t.rng 0.5)

(* -- link faults ----------------------------------------------------------- *)

(* Take [link] down at [at] and bring it back [duration] later. *)
let link_down t ~at:delay ~duration link =
  at t ~at:delay "link down" (fun () -> Link.set_up link false);
  at t ~at:(delay +. duration) "link up" (fun () -> Link.set_up link true)

(* [count] consecutive down/up cycles starting at [at]: down for
   [down_for], then up for [up_for], repeated. With [jitter], each phase
   length is drawn from [0.75, 1.25) of the nominal value. *)
let flap_link t ~at:delay ?(jitter = false) ~count ~down_for ~up_for link =
  let phase d = if jitter then jittered t d else d in
  let start = ref delay in
  for _ = 1 to count do
    let d = phase down_for and u = phase up_for in
    link_down t ~at:!start ~duration:d link;
    start := !start +. d +. u
  done

(* Ramp the link's loss rate up to [peak] and back down over [duration],
   in [steps] equal stages per side. *)
let loss_ramp t ~at:delay ~duration ~peak ?(steps = 4) link =
  let baseline = Link.loss link in
  let dt = duration /. float_of_int (2 * steps) in
  for i = 1 to steps do
    let frac = float_of_int i /. float_of_int steps in
    let l = baseline +. ((peak -. baseline) *. frac) in
    at t
      ~at:(delay +. (dt *. float_of_int (i - 1)))
      (Printf.sprintf "loss %.2f" l)
      (fun () -> Link.set_loss link l)
  done;
  for i = 1 to steps do
    let frac = float_of_int (steps - i) /. float_of_int steps in
    let l = baseline +. ((peak -. baseline) *. frac) in
    at t
      ~at:(delay +. (dt *. float_of_int (steps + i - 1)))
      (Printf.sprintf "loss %.2f" l)
      (fun () -> Link.set_loss link l)
  done

(* Multiply the link's latency by [factor] at [at]; restore after
   [duration]. *)
let latency_spike t ~at:delay ~duration ~factor link =
  let baseline = Link.latency link in
  at t ~at:delay
    (Printf.sprintf "latency x%.1f" factor)
    (fun () -> Link.set_latency link (baseline *. factor));
  at t ~at:(delay +. duration) "latency restored" (fun () ->
      Link.set_latency link baseline)

(* -- session faults -------------------------------------------------------- *)

(* Fail one session endpoint (its transport reports a connection loss). *)
let kill_session t ~at:delay session =
  at t ~at:delay "session kill" (fun () ->
      Bgp.Session.connection_failed session)

(* Fail both endpoints of a session pair simultaneously — the shape of a
   real transport loss, and the reliable way to exercise graceful
   restart: both sides observe [Transport_failed] at the same instant. *)
let kill_pair t ~at:delay (pair : Bgp_wire.pair) =
  at t ~at:delay "session pair kill" (fun () ->
      Bgp.Session.connection_failed pair.Bgp_wire.active;
      Bgp.Session.connection_failed pair.Bgp_wire.passive)

(* -- partitions ------------------------------------------------------------ *)

(* Take a set of links (e.g. one side of the backbone mesh) down together
   at [at] and heal them together [duration] later. *)
let partition t ~at:delay ~duration links =
  at t ~at:delay
    (Printf.sprintf "partition (%d links)" (List.length links))
    (fun () -> List.iter (fun l -> Link.set_up l false) links);
  at t ~at:(delay +. duration) "partition healed" (fun () ->
      List.iter (fun l -> Link.set_up l true) links)
