(** A bounded in-memory event trace. PlanetFlow-style attribution (paper
    §3.1) requires experiment activity to be loggable; platform components
    record control- and data-plane events here and tests assert on them. *)

type entry = { time : float; category : string; message : string }

type t

val create : ?capacity:int -> unit -> t

val set_enabled : t -> bool -> unit
(** A disabled trace records nothing and skips message formatting
    entirely, so hot paths may log unconditionally. *)

val enabled : t -> bool

val record :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Printf-style; drops the oldest half when over capacity. *)

val entries : t -> entry list
(** Oldest first. *)

val find : t -> category:string -> entry list
val count : t -> category:string -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val dump : ?limit:int -> t -> Format.formatter -> unit
