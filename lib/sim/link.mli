(** A point-to-point duplex byte pipe with latency, capacity and optional
    loss. BGP sessions, VPN tunnels and backbone circuits ride on links;
    serialization delay is modelled per direction, so a busy link queues
    behind its last transmission. *)

type endpoint = A | B

val other : endpoint -> endpoint

type t

val create :
  ?latency:float ->
  ?bandwidth:float ->
  ?loss:float ->
  ?seed:int ->
  Engine.t ->
  t
(** [latency] one-way seconds; [bandwidth] bytes/second ([infinity] =
    unconstrained); [loss] drop probability. *)

val attach : t -> endpoint -> (string -> unit) -> unit
(** Register the receive callback for frames sent {e to} that endpoint. *)

val set_teardown : t -> endpoint -> (unit -> unit) -> unit
(** Register the callback run at [endpoint] when its peer closes its end
    of the connection (delivered one latency after the close). *)

val set_up : t -> bool -> unit
(** Administrative up/down; a down link drops silently. *)

val is_up : t -> bool

val latency : t -> float
val set_latency : t -> float -> unit
val loss : t -> float
val set_loss : t -> float -> unit

val bytes_carried : t -> endpoint -> int
(** Bytes sent {e from} the endpoint. *)

val send : t -> from:endpoint -> string -> unit

val transport : t -> endpoint -> session_up:(unit -> unit) -> Bgp.Session.transport
(** A BGP-session transport over this link; [session_up] fires one latency
    after [connect]. *)
