(* A point-to-point duplex byte pipe with latency, capacity, and optional
   loss. BGP sessions, VPN tunnels, and backbone circuits all ride on links.
   Serialization delay is modelled per direction: a busy link queues behind
   its last transmission, which is what bounds backbone throughput in the
   §6 measurements. *)

type endpoint = A | B

let other = function A -> B | B -> A

type direction = {
  mutable receive : string -> unit;
  mutable teardown : unit -> unit;
      (** the sending endpoint closed its end of the connection *)
  mutable busy_until : float;
  mutable bytes_carried : int;
}

type t = {
  engine : Engine.t;
  mutable latency : float;  (** one-way propagation delay, seconds *)
  bandwidth : float;  (** bytes per second; [infinity] = unconstrained *)
  mutable loss : float;  (** packet loss probability in [0, 1) *)
  rng : Random.State.t;
  a_to_b : direction;
  b_to_a : direction;
  mutable up : bool;
}

let create ?(latency = 0.001) ?(bandwidth = infinity) ?(loss = 0.)
    ?(seed = 42) engine =
  let direction () =
    { receive = ignore; teardown = ignore; busy_until = 0.; bytes_carried = 0 }
  in
  {
    engine;
    latency;
    bandwidth;
    loss;
    rng = Random.State.make [| seed |];
    a_to_b = direction ();
    b_to_a = direction ();
    up = true;
  }

let direction t = function A -> t.a_to_b | B -> t.b_to_a

(* Register the receive callback for the given endpoint (frames sent *to*
   that endpoint). *)
let attach t endpoint receive = (direction t (other endpoint)).receive <- receive

(* Register the callback run at [endpoint] when its peer closes (one
   latency after the close, like any other signal on the wire). *)
let set_teardown t endpoint teardown =
  (direction t (other endpoint)).teardown <- teardown

let set_up t up = t.up <- up
let is_up t = t.up
let latency t = t.latency
let set_latency t latency = t.latency <- latency
let loss t = t.loss
let set_loss t loss = t.loss <- loss

let bytes_carried t endpoint = (direction t endpoint).bytes_carried

(* Send [data] from [endpoint] to its peer. *)
let send t ~from data =
  if t.up then begin
    let dir = direction t from in
    let dropped = t.loss > 0. && Random.State.float t.rng 1.0 < t.loss in
    if not dropped then begin
      let now = Engine.now t.engine in
      let size = float_of_int (String.length data) in
      let serialization =
        if t.bandwidth = infinity then 0. else size /. t.bandwidth
      in
      let start = Float.max now dir.busy_until in
      let delivery = start +. serialization +. t.latency in
      dir.busy_until <- start +. serialization;
      dir.bytes_carried <- dir.bytes_carried + String.length data;
      Engine.run_after t.engine
        (Float.max 0. (delivery -. now))
        (fun () -> if t.up then dir.receive data)
    end
  end

(* Transports for a BGP session pair running over this link. Connection
   establishment is immediate (one latency for the handshake); a close is
   signalled to the remote endpoint one latency later, so the peer learns
   of the teardown without waiting for its hold timer. *)
let transport t endpoint ~(session_up : unit -> unit) : Bgp.Session.transport =
  {
    Bgp.Session.connect =
      (fun () ->
        Engine.run_after t.engine t.latency (fun () -> session_up ()));
    send = (fun data -> send t ~from:endpoint data);
    close =
      (fun () ->
        if t.up then
          let dir = direction t endpoint in
          Engine.run_after t.engine t.latency (fun () ->
              if t.up then dir.teardown ()));
  }
