(* Tests for the simulator: event engine, links, LAN segments, flow-level
   TCP models, and tracing. *)

open Netcore
open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* -- engine --------------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.run_after e 3.0 (fun () -> log := "c" :: !log);
  Engine.run_after e 1.0 (fun () -> log := "a" :: !log);
  Engine.run_after e 2.0 (fun () -> log := "b" :: !log);
  ignore (Engine.run e);
  checkb "time order" true (List.rev !log = [ "a"; "b"; "c" ]);
  checkf "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.run_after e 1.0 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  checkb "fifo at equal timestamps" true (List.rev !log = [ 1; 2; 3; 4; 5 ])

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let cancel = Engine.schedule e 1.0 (fun () -> fired := true) in
  cancel ();
  ignore (Engine.run e);
  checkb "cancelled event does not fire" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.run_after e 1.0 (fun () -> incr fired);
  Engine.run_after e 5.0 (fun () -> incr fired);
  Engine.run_until e 2.0;
  checki "only early event" 1 !fired;
  checkf "clock exactly at limit" 2.0 (Engine.now e);
  Engine.run_until e 10.0;
  checki "late event eventually" 2 !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.run_after e 1.0 (fun () ->
      log := "outer" :: !log;
      Engine.run_after e 1.0 (fun () -> log := "inner" :: !log));
  ignore (Engine.run e);
  checkb "nested" true (List.rev !log = [ "outer"; "inner" ]);
  checkf "clock" 2.0 (Engine.now e)

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      let (_ : unit -> unit) = Engine.schedule e (-1.0) ignore in
      ())

(* -- link ---------------------------------------------------------------------- *)

let test_link_latency () =
  let e = Engine.create () in
  let link = Link.create ~latency:0.5 e in
  let arrival = ref nan in
  Link.attach link Link.B (fun _ -> arrival := Engine.now e);
  Link.send link ~from:Link.A "hello";
  ignore (Engine.run e);
  checkf "one-way latency" 0.5 !arrival

let test_link_serialization () =
  let e = Engine.create () in
  (* 100 bytes/s: a 100-byte message takes 1s to serialize. *)
  let link = Link.create ~latency:0.0 ~bandwidth:100.0 e in
  let arrivals = ref [] in
  Link.attach link Link.B (fun _ -> arrivals := Engine.now e :: !arrivals);
  Link.send link ~from:Link.A (String.make 100 'x');
  Link.send link ~from:Link.A (String.make 100 'y');
  ignore (Engine.run e);
  (match List.rev !arrivals with
  | [ t1; t2 ] ->
      checkf "first after serialization" 1.0 t1;
      checkf "second queues behind first" 2.0 t2
  | _ -> Alcotest.fail "expected two arrivals");
  checki "bytes accounted" 200 (Link.bytes_carried link Link.A)

let test_link_down () =
  let e = Engine.create () in
  let link = Link.create e in
  let got = ref 0 in
  Link.attach link Link.B (fun _ -> incr got);
  Link.set_up link false;
  Link.send link ~from:Link.A "dropped";
  ignore (Engine.run e);
  checki "down link drops" 0 !got;
  Link.set_up link true;
  Link.send link ~from:Link.A "delivered";
  ignore (Engine.run e);
  checki "up link delivers" 1 !got

let test_link_loss () =
  let e = Engine.create () in
  let link = Link.create ~loss:0.5 ~seed:7 e in
  let got = ref 0 in
  Link.attach link Link.B (fun _ -> incr got);
  for _ = 1 to 200 do
    Link.send link ~from:Link.A "x"
  done;
  ignore (Engine.run e);
  checkb "some delivered" true (!got > 50);
  checkb "some lost" true (!got < 150)

(* A closed transport is signalled to the remote endpoint one link latency
   later, so a BGP peer learns of teardown without waiting for its hold
   timer. *)
let test_link_close_signals_peer () =
  let e = Engine.create () in
  let link = Link.create ~latency:0.5 e in
  let transport_b = Link.transport link Link.B ~session_up:ignore in
  let torn = ref nan in
  Link.set_teardown link Link.A (fun () -> torn := Engine.now e);
  transport_b.Bgp.Session.close ();
  ignore (Engine.run e);
  checkf "remote learns one latency later" 0.5 !torn

(* -- fault injection ------------------------------------------------------------ *)

let test_fault_link_down () =
  let e = Engine.create () in
  let f = Fault.create e in
  let link = Link.create e in
  Fault.link_down f ~at:1.0 ~duration:2.0 link;
  checkb "up before" true (Link.is_up link);
  Engine.run_until e 1.5;
  checkb "down during" false (Link.is_up link);
  Engine.run_until e 5.0;
  checkb "healed after" true (Link.is_up link)

let test_fault_flap_link () =
  let e = Engine.create () in
  let f = Fault.create e in
  let link = Link.create e in
  (* Three 1s-down/1s-up cycles starting at t=1: down at 1, 3, 5. *)
  Fault.flap_link f ~at:1.0 ~count:3 ~down_for:1.0 ~up_for:1.0 link;
  let probe at expected =
    Engine.run_until e at;
    checkb (Printf.sprintf "state at %.1f" at) expected (Link.is_up link)
  in
  probe 1.5 false;
  probe 2.5 true;
  probe 3.5 false;
  probe 4.5 true;
  probe 5.5 false;
  probe 7.0 true;
  checki "six transitions logged" 6 (List.length (Fault.events f))

let test_fault_kill_pair () =
  let e = Engine.create () in
  let config base id =
    Bgp.Session.config
      ~local_asn:(Bgp.Asn.of_int base)
      ~local_id:(Ipv4.of_string_exn id)
      ()
  in
  let pair =
    Bgp_wire.make e
      ~config_active:(config 1 "10.0.0.1")
      ~config_passive:(config 2 "10.0.0.2")
      ()
  in
  Bgp_wire.start pair;
  Engine.run_until e 5.;
  checkb "established" true (Bgp.Session.established pair.Bgp_wire.active);
  let f = Fault.create e in
  Fault.kill_pair f ~at:1.0 pair;
  Engine.run_until e 10.;
  checkb "active down" false (Bgp.Session.established pair.Bgp_wire.active);
  checkb "passive down" false (Bgp.Session.established pair.Bgp_wire.passive);
  (* Both endpoints saw a transport loss — the gracefully-restartable
     failure shape — not an administrative stop. *)
  checkb "transport failure recorded" true
    (Bgp.Session.last_error pair.Bgp_wire.active = Some "connection failed"
    && Bgp.Session.last_error pair.Bgp_wire.passive
       = Some "connection failed")

let test_fault_log_and_jitter () =
  let e = Engine.create () in
  let f = Fault.create ~seed:3 e in
  Fault.at f ~at:2.0 "second" ignore;
  Fault.at f ~at:1.0 "first" ignore;
  ignore (Engine.run e);
  (match Fault.events f with
  | [
   { Fault.time = t1; kind = Fault.Custom "first"; _ };
   { Fault.time = t2; kind = Fault.Custom "second"; _ };
  ] ->
      checkf "first at 1" 1.0 t1;
      checkf "second at 2" 2.0 t2
  | _ -> Alcotest.fail "expected a chronological two-entry log");
  Alcotest.(check string)
    "events print as a replayable script" "t=1.000 first\nt=2.000 second"
    (Fault.script f);
  for _ = 1 to 100 do
    let d = Fault.jittered f 10. in
    checkb "jitter within [7.5, 12.5)" true (d >= 7.5 && d < 12.5)
  done

(* -- lan ----------------------------------------------------------------------- *)

let mac i = Mac.local ~pool:1 i

let test_lan_unicast () =
  let e = Engine.create () in
  let lan = Lan.create e in
  let got1 = ref 0 and got2 = ref 0 in
  Lan.attach lan (mac 1) (fun _ -> incr got1);
  Lan.attach lan (mac 2) (fun _ -> incr got2);
  Lan.send lan { Eth.dst = mac 2; src = mac 1; ethertype = Eth.Ipv4; payload = "" };
  ignore (Engine.run e);
  checki "addressee receives" 1 !got2;
  checki "others do not" 0 !got1

let test_lan_broadcast () =
  let e = Engine.create () in
  let lan = Lan.create e in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Lan.attach lan (mac i) (fun _ -> got.(i) <- got.(i) + 1)
  done;
  Lan.send lan
    { Eth.dst = Mac.broadcast; src = mac 0; ethertype = Eth.Arp; payload = "" };
  ignore (Engine.run e);
  checki "sender excluded" 0 got.(0);
  checkb "everyone else" true (got.(1) = 1 && got.(2) = 1 && got.(3) = 1)

let test_lan_detach () =
  let e = Engine.create () in
  let lan = Lan.create e in
  let got = ref 0 in
  Lan.attach lan (mac 1) (fun _ -> incr got);
  Lan.detach lan (mac 1);
  checki "no stations" 0 (List.length (Lan.stations lan));
  Lan.send lan { Eth.dst = mac 1; src = mac 2; ethertype = Eth.Ipv4; payload = "" };
  ignore (Engine.run e);
  (* Unknown unicast floods, but the station is gone. *)
  checki "detached station silent" 0 !got

(* -- flow ---------------------------------------------------------------------- *)

let mbps x = x *. 1e6 /. 8.

let test_mathis () =
  (* rate = mss/rtt * C/sqrt(loss); spot check monotonicity and a value. *)
  let r1 = Flow.mathis ~rtt:0.1 ~loss:0.01 () in
  let r2 = Flow.mathis ~rtt:0.1 ~loss:0.0001 () in
  checkb "lower loss, higher rate" true (r2 > r1);
  let r3 = Flow.mathis ~rtt:0.2 ~loss:0.01 () in
  checkb "higher rtt, lower rate" true (r3 < r1);
  checkb "zero loss unbounded" true (Flow.mathis ~rtt:0.1 ~loss:0. () = infinity)

let test_max_min_equal_share () =
  let l = Flow.link ~capacity:(mbps 100.) ~id:1 in
  let flows = [ Flow.flow [ l ]; Flow.flow [ l ] ] in
  match Flow.max_min_rates flows with
  | [ a; b ] ->
      checkf "equal shares a" (mbps 50.) a;
      checkf "equal shares b" (mbps 50.) b
  | _ -> Alcotest.fail "expected two rates"

let test_max_min_demand_limited () =
  let l = Flow.link ~capacity:(mbps 100.) ~id:1 in
  let flows = [ Flow.flow ~demand:(mbps 10.) [ l ]; Flow.flow [ l ] ] in
  match Flow.max_min_rates flows with
  | [ a; b ] ->
      checkf "demand-limited flow" (mbps 10.) a;
      checkf "leftover to the other" (mbps 90.) b
  | _ -> Alcotest.fail "expected two rates"

let test_max_min_distinct_bottlenecks () =
  let thin = Flow.link ~capacity:(mbps 10.) ~id:1 in
  let fat = Flow.link ~capacity:(mbps 100.) ~id:2 in
  (* Flow A crosses thin+fat, flow B crosses only fat. *)
  let flows = [ Flow.flow [ thin; fat ]; Flow.flow [ fat ] ] in
  match Flow.max_min_rates flows with
  | [ a; b ] ->
      checkf "A limited by thin link" (mbps 10.) a;
      checkf "B takes the rest of fat" (mbps 90.) b
  | _ -> Alcotest.fail "expected two rates"

let test_tcp_throughput_min () =
  let path = [ Flow.link ~capacity:(mbps 50.) ~id:1 ] in
  (* With tiny loss the Mathis bound exceeds capacity: capacity wins. *)
  let r = Flow.tcp_throughput ~rtt:0.01 ~loss:1e-9 path in
  checkf "capacity bound" (mbps 50.) r;
  (* With heavy loss the Mathis bound dominates. *)
  let r = Flow.tcp_throughput ~rtt:0.1 ~loss:0.1 path in
  checkb "loss bound below capacity" true (r < mbps 50.)

(* -- trace ----------------------------------------------------------------------- *)

let test_trace () =
  let t = Trace.create ~capacity:100 () in
  Trace.record t ~time:1.0 ~category:"a" "first %d" 1;
  Trace.record t ~time:2.0 ~category:"b" "second";
  Trace.record t ~time:3.0 ~category:"a" "third";
  checki "total" 3 (List.length (Trace.entries t));
  checki "by category" 2 (Trace.count t ~category:"a");
  checkb "oldest first" true
    ((List.hd (Trace.entries t)).Trace.message = "first 1");
  Trace.set_enabled t false;
  Trace.record t ~time:4.0 ~category:"a" "ignored";
  checki "disabled" 3 (List.length (Trace.entries t));
  Trace.clear t;
  checki "cleared" 0 (List.length (Trace.entries t))

let test_trace_eviction () =
  let t = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record t ~time:(float_of_int i) ~category:"x" "%d" i
  done;
  let entries = Trace.entries t in
  checkb "bounded" true (List.length entries <= 11);
  (* Newest entries survive. *)
  checkb "newest kept" true
    (List.exists (fun e -> e.Trace.message = "25") entries)

(* -- tcp ----------------------------------------------------------------------- *)

let test_tcp_clean_transfer () =
  let engine = Engine.create () in
  (* 100 Mbit/s, 20 ms RTT, no loss: a 20 MB transfer should approach the
     link capacity once past slow start. *)
  match
    Tcp.run engine ~latency:0.01 ~bandwidth:12.5e6 ~bytes:20_000_000 ()
  with
  | None -> Alcotest.fail "transfer did not finish"
  | Some s ->
      checkb "no retransmits on a clean link" true (s.Tcp.retransmits = 0);
      checkb "goodput approaches capacity" true
        (s.Tcp.goodput > 0.7 *. 12.5e6 && s.Tcp.goodput <= 12.5e6 *. 1.01);
      checkb "all bytes acked" true (s.Tcp.bytes_acked >= 20_000_000)

let test_tcp_loss_hurts () =
  let run loss =
    let engine = Engine.create () in
    match
      Tcp.run engine ~latency:0.02 ~bandwidth:12.5e6 ~loss ~seed:5
        ~bytes:5_000_000 ()
    with
    | Some s -> s
    | None -> Alcotest.fail "transfer did not finish"
  in
  let clean = run 0.0 in
  let lossy = run 0.02 in
  checkb "losses cause retransmissions" true (lossy.Tcp.retransmits > 0);
  checkb "loss reduces goodput" true (lossy.Tcp.goodput < clean.Tcp.goodput)

let test_tcp_rtt_hurts () =
  let run latency =
    let engine = Engine.create () in
    match Tcp.run engine ~latency ~bandwidth:125e6 ~bytes:2_000_000 () with
    | Some s -> s.Tcp.goodput
    | None -> Alcotest.fail "transfer did not finish"
  in
  (* Short transfers are ramp-dominated: more RTT, slower ramp. *)
  checkb "higher rtt, lower goodput" true (run 0.1 < run 0.005)

(* Property: events fire in timestamp order regardless of insertion
   order, FIFO at ties. *)
let prop_engine_ordering =
  QCheck.Test.make ~name:"heap fires in time order" ~count:200
    (QCheck.list (QCheck.int_bound 1000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          Engine.run_after e (float_of_int d) (fun () ->
              fired := Engine.now e :: !fired))
        delays;
      ignore (Engine.run e);
      let times = List.rev !fired in
      List.sort compare times = times
      && List.length times = List.length delays)

let sim_props = List.map QCheck_alcotest.to_alcotest [ prop_engine_ordering ]

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_latency;
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "down" `Quick test_link_down;
          Alcotest.test_case "loss" `Quick test_link_loss;
          Alcotest.test_case "close signals peer" `Quick
            test_link_close_signals_peer;
        ] );
      ( "fault",
        [
          Alcotest.test_case "link down heals" `Quick test_fault_link_down;
          Alcotest.test_case "flap cycles" `Quick test_fault_flap_link;
          Alcotest.test_case "kill pair" `Quick test_fault_kill_pair;
          Alcotest.test_case "log and jitter" `Quick test_fault_log_and_jitter;
        ] );
      ( "lan",
        [
          Alcotest.test_case "unicast" `Quick test_lan_unicast;
          Alcotest.test_case "broadcast" `Quick test_lan_broadcast;
          Alcotest.test_case "detach" `Quick test_lan_detach;
        ] );
      ( "flow",
        [
          Alcotest.test_case "mathis" `Quick test_mathis;
          Alcotest.test_case "max-min equal share" `Quick test_max_min_equal_share;
          Alcotest.test_case "max-min demand limited" `Quick
            test_max_min_demand_limited;
          Alcotest.test_case "max-min distinct bottlenecks" `Quick
            test_max_min_distinct_bottlenecks;
          Alcotest.test_case "tcp throughput" `Quick test_tcp_throughput_min;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace;
          Alcotest.test_case "eviction" `Quick test_trace_eviction;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "clean transfer" `Quick test_tcp_clean_transfer;
          Alcotest.test_case "loss hurts" `Quick test_tcp_loss_hurts;
          Alcotest.test_case "rtt hurts" `Quick test_tcp_rtt_hurts;
        ] );
      ("properties", sim_props);
    ]
