(* Tests for the domain-sharded data plane: the domain-safe attribute
   arena under parallel intern storms, flow-to-domain placement, counter
   aggregation across worker domains, staleness refresh against the
   published control snapshot, and the sharded-vs-sequential
   differential (identical delivery multisets, counters, and shaper
   debits with [?domains:4] vs the single-domain path). *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* -- attribute arena across domains ------------------------------------------------ *)

(* The i-th of [distinct] overlapping attribute sets (same shape the
   bench harness uses: path, next hop and MED vary with i). *)
let stress_attrs ~distinct i =
  let i = i mod distinct in
  Attr.origin_attrs
    ~as_path:(Aspath.of_asns [ asn (1000 + i); asn (2000 + (i * 7 mod 97)) ])
    ~next_hop:(Ipv4.of_int32 (Int32.of_int (0x0a000000 lor i)))
    ()
  |> Attr.with_med (i mod 50)

let test_arena_domain_stress () =
  let arena = Attr_arena.create () in
  let distinct = 64 and per_domain = 2_000 in
  let storm () =
    Array.init per_domain (fun i ->
        Attr_arena.intern ~arena (stress_attrs ~distinct i))
  in
  let spawned = Array.init 3 (fun _ -> Domain.spawn storm) in
  let own = storm () in
  let others = Array.map Domain.join spawned in
  (* Every domain resolved set [i] to the same canonical handle. *)
  Array.iter
    (fun handles ->
      Array.iteri
        (fun i h ->
          checkb "same canonical handle across domains" true
            (Attr_arena.equal h handles.(i)))
        own)
    others;
  let s = Attr_arena.stats ~arena () in
  checki "one allocation per distinct set" distinct s.Attr_arena.misses;
  checki "everything else hit"
    ((4 * per_domain) - distinct)
    s.Attr_arena.hits

(* -- flow placement ---------------------------------------------------------------- *)

let test_domain_of_flow () =
  let mac i = Mac.local ~pool:0xe1 (1 + (i land 7)) in
  let addr i = Ipv4.of_int32 (Int32.of_int (0xb8a4e000 lor i)) in
  for f = 0 to 255 do
    let d =
      Shard.domain_of_flow ~domains:4 ~src_mac:(mac f) ~src:(addr f)
        ~dst:(addr (f * 31))
    in
    checkb "deterministic" true
      (d
      = Shard.domain_of_flow ~domains:4 ~src_mac:(mac f) ~src:(addr f)
          ~dst:(addr (f * 31)));
    checkb "in range" true (d >= 0 && d < 4);
    checki "single domain pins to 0" 0
      (Shard.domain_of_flow ~domains:1 ~src_mac:(mac f) ~src:(addr f)
         ~dst:(addr (f * 31)))
  done;
  (* 256 flows over 4 domains: the mix must not starve any domain. *)
  let load = Array.make 4 0 in
  for f = 0 to 255 do
    let d =
      Shard.domain_of_flow ~domains:4 ~src_mac:(mac f) ~src:(addr f)
        ~dst:(addr (f * 31))
    in
    load.(d) <- load.(d) + 1
  done;
  Array.iteri
    (fun i n ->
      checkb (Printf.sprintf "domain %d gets a fair share" i) true (n >= 32))
    load

(* -- router fixture ---------------------------------------------------------------- *)

type fx = {
  router : Router.t;
  n1 : int;
  delivered : Ipv4_packet.t list ref;
}

let make_router ?data ?(domains = 1) () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"shard" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ?data ~domains ()
  in
  Router.activate router;
  let delivered = ref [] in
  let n1, pair =
    Router.add_neighbor router ~asn:(asn 100) ~ip:(ip "100.64.0.1")
      ~kind:Neighbor.Transit ~remote_id:(ip "100.64.0.1")
      ~deliver:(fun p -> delivered := p :: !delivered)
      ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  { router; n1; delivered }

let announce fx prefix =
  Router.process_neighbor_update fx.router ~neighbor_id:fx.n1
    (Msg.update
       ~attrs:
         (Attr.origin_attrs
            ~as_path:(Aspath.of_asns [ asn 100 ])
            ~next_hop:(ip "100.64.0.1") ())
       ~announced:[ Msg.nlri prefix ]
       ())

let withdraw fx prefix =
  Router.process_neighbor_update fx.router ~neighbor_id:fx.n1
    (Msg.update ~withdrawn:[ Msg.nlri prefix ] ())

let vmac fx =
  match Router.neighbor fx.router fx.n1 with
  | Some ns -> ns.Router.info.Neighbor.virtual_mac
  | None -> Mac.zero

let prefixes =
  [|
    pfx "192.168.0.0/24"; pfx "192.168.1.0/24"; pfx "10.9.0.0/16";
    pfx "172.16.0.0/24";
  |]

let dsts = [| "192.168.0.7"; "192.168.1.7"; "10.9.0.7"; "172.16.0.7" |]
let srcs = [| "184.164.224.1"; "184.164.224.2" |]
let ttls = [| 1; 2; 64 |]

(* The frame for flow spec (flow, ttl index, payload length): a fixed
   source MAC, so the flow key is (MAC, src, dst) with 8 distinct
   combinations spreading across the domains. *)
let frame_of fx (flow, ttl_i, payload_len) =
  {
    Eth.dst = vmac fx;
    src = Mac.local ~pool:9 9;
    ethertype = Eth.Ipv4;
    payload =
      Ipv4_packet.encode
        (Ipv4_packet.make
           ~src:(ip srcs.(flow mod Array.length srcs))
           ~dst:(ip dsts.(flow mod Array.length dsts))
           ~ttl:ttls.(ttl_i mod Array.length ttls)
           ~protocol:Ipv4_packet.Udp
           (String.make (payload_len mod 32) 'x'));
  }

(* -- counter aggregation ----------------------------------------------------------- *)

let test_counter_aggregation () =
  let fx = make_router ~domains:4 () in
  announce fx prefixes.(0);
  announce fx prefixes.(1);
  let n = 300 in
  let frames =
    Array.init n (fun i -> frame_of fx (i land 7, 2, i mod 32))
  in
  Router.forward_frames fx.router frames;
  Router.forward_frames fx.router frames;
  let c = Router.counters fx.router in
  (* Every frame is accounted exactly once across the fold: it either
     hit or missed a flow cache, and was either forwarded or dropped. *)
  checki "hits + misses = frames" (2 * n)
    (c.Router.flow_hits + c.Router.flow_misses);
  checki "forwarded + dropped = frames" (2 * n)
    (c.Router.packets_to_neighbors + c.Router.packets_dropped);
  checki "deliveries match the forwarded count" c.Router.packets_to_neighbors
    (List.length !(fx.delivered));
  checkb "the second batch is all hits" true (c.Router.flow_hits >= n);
  Router.shutdown_domains fx.router

let test_stale_refresh () =
  (* Withdraw between batches: the workers must observe the republished
     snapshot and drop — a stale cached forward may not survive. *)
  let fx = make_router ~domains:4 () in
  announce fx prefixes.(0);
  let frames = Array.init 64 (fun i -> frame_of fx (i land 7, 2, 4)) in
  Router.forward_frames fx.router frames;
  let delivered_before = List.length !(fx.delivered) in
  checkb "warm batch delivered" true (delivered_before > 0);
  withdraw fx prefixes.(0);
  Router.forward_frames fx.router frames;
  checki "no stale delivery after withdraw" delivered_before
    (List.length !(fx.delivered));
  announce fx prefixes.(0);
  Router.forward_frames fx.router frames;
  checkb "delivery resumes after re-announce" true
    (List.length !(fx.delivered) > delivered_before);
  Router.shutdown_domains fx.router

(* -- differential: sharded == sequential ------------------------------------------- *)

type op =
  | Fwd of (int * int * int) list  (* batch of (flow, ttl, payload) specs *)
  | Announce of int
  | Withdraw of int
  | Add_noop_filter

(* A stateless head (blocks one destination block) plus a stateful
   per-flow shaper tail (non-refilling, so debits are exact and
   cumulative): random runs mix memoized blocks, memoized forwards,
   shaper blocks, and TTL expiry. The shaper key is the flow's
   (src, dst) pair — the same key the domain hash pins, so sharded
   debits must equal sequential ones exactly. *)
let diff_chain () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.filter ~stateless:true ~name:"no-10-9"
       (fun ~now:_ ~meta:_ (p : Ipv4_packet.t) ->
         if Prefix.mem p.Ipv4_packet.dst (pfx "10.9.0.0/16") then
           Data_enforcer.Block "blackholed destination"
         else Data_enforcer.Allow));
  Data_enforcer.add_filter d
    (Data_enforcer.shaper ~name:"flow-shaper" ~rate:0. ~burst:600.
       ~key_of:(fun (p : Ipv4_packet.t) ->
         Ipv4.to_string p.Ipv4_packet.src ^ ">" ^ Ipv4.to_string p.Ipv4_packet.dst)
       ());
  d

let apply_op fx = function
  | Fwd specs ->
      Router.forward_frames fx.router
        (Array.of_list (List.map (frame_of fx) specs))
  | Announce i -> announce fx prefixes.(i mod Array.length prefixes)
  | Withdraw i -> withdraw fx prefixes.(i mod Array.length prefixes)
  | Add_noop_filter ->
      Data_enforcer.add_filter
        (Router.data_enforcer fx.router)
        (Data_enforcer.filter ~stateless:true ~name:"noop"
           (fun ~now:_ ~meta:_ _ -> Data_enforcer.Allow))

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 10,
          map
            (fun specs -> Fwd specs)
            (list_size (int_range 1 24)
               (triple (int_bound 7) (int_bound 2) (int_bound 31))) );
        (1, map (fun i -> Announce i) (int_bound 3));
        (1, map (fun i -> Withdraw i) (int_bound 3));
        (1, return Add_noop_filter);
      ])

let shard_pool fx =
  match fx.router.Router_state.pool with
  | Some pool -> pool
  | None -> Alcotest.fail "sharded router has no worker pool"

let prop_sharded_equals_sequential =
  QCheck.Test.make ~name:"sharding is invisible except for parallelism"
    ~count:25
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) gen_op))
    (fun ops ->
      let par = make_router ~data:(diff_chain ()) ~domains:4 () in
      let seq = make_router ~data:(diff_chain ()) ~domains:1 () in
      announce par prefixes.(0);
      announce seq prefixes.(0);
      List.iter
        (fun op ->
          apply_op par op;
          apply_op seq op)
        ops;
      (* Force one last (possibly empty) drain so the snapshot reflects
         any trailing control mutation before comparing chain stats. *)
      Router.forward_frames par.router [||];
      let pool = shard_pool par in
      let pc = Router.counters par.router in
      let sc = Router.counters seq.router in
      let multiset l = List.sort compare l in
      let ok =
        multiset !(par.delivered) = multiset !(seq.delivered)
        && pc.Router.packets_to_neighbors = sc.Router.packets_to_neighbors
        && pc.Router.packets_to_experiments = sc.Router.packets_to_experiments
        && pc.Router.packets_over_backbone = sc.Router.packets_over_backbone
        && pc.Router.packets_dropped = sc.Router.packets_dropped
        && pc.Router.icmp_sent = sc.Router.icmp_sent
        && Shard.enforcer_stats pool
           = Data_enforcer.stats (Router.data_enforcer seq.router)
        && Shard.filter_stats pool
           = Data_enforcer.filter_stats (Router.data_enforcer seq.router)
        (* Hit/miss counts are NOT compared: sharded flow entries carry
           one snapshot generation instead of the sequential path's
           three stamps, so invalidation is coarser — verdicts and
           effects match, cache statistics may not. *)
      in
      Router.shutdown_domains par.router;
      ok)

let () =
  Alcotest.run "shard"
    [
      ( "arena",
        [
          Alcotest.test_case "4-domain intern storm converges" `Quick
            test_arena_domain_stress;
        ] );
      ( "placement",
        [
          Alcotest.test_case "flow-to-domain hash" `Quick test_domain_of_flow;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "counters fold without loss" `Quick
            test_counter_aggregation;
          Alcotest.test_case "stale snapshot refresh on withdraw" `Quick
            test_stale_refresh;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_sharded_equals_sequential ] );
    ]
