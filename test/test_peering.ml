(* Tests for the PEERING platform library: experiment approval and resource
   allocation, the platform lifecycle, the toolkit (Table 1), intent-based
   configuration templating, and the transactional network controller. *)

open Netcore
open Bgp
open Peering

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* -- approval --------------------------------------------------------------------- *)

let test_approval_basic () =
  let p = Approval.proposal ~title:"t" ~team:"team" ~goals:"g" () in
  checkb "basic approved" true
    (match Approval.review p with Approval.Approve _ -> true | _ -> false)

let test_approval_risky_rejected () =
  let caps = Vbgp.Experiment_caps.(default |> with_poisoning 50) in
  let p =
    Approval.proposal ~title:"t" ~team:"team" ~goals:"g" ~requested_caps:caps ()
  in
  checkb "mass poisoning rejected" true
    (match Approval.review p with Approval.Reject _ -> true | _ -> false);
  let p =
    Approval.proposal ~title:"t" ~team:"team" ~goals:"g"
      ~max_announced_path_len:3000 ()
  in
  checkb "pathological path length rejected" true
    (match Approval.review p with Approval.Reject _ -> true | _ -> false);
  let p = Approval.proposal ~title:"t" ~team:"team" ~goals:"" () in
  checkb "goalless proposal rejected" true
    (match Approval.review p with Approval.Reject _ -> true | _ -> false)

let test_approval_allocation () =
  let p = Approval.proposal ~title:"t" ~team:"alpha" ~goals:"g" ~prefix_count:2 () in
  let record =
    Approval.allocate ~id:7 ~now:0.
      ~prefixes:[ pfx "184.164.224.0/24"; pfx "184.164.225.0/24"; pfx "184.164.226.0/24" ]
      ~prefixes_v6:[] ~asn:(asn 61574) p
  in
  let g = record.Approval.grant in
  checki "two prefixes" 2 (List.length g.Vbgp.Control_enforcer.prefixes);
  checkb "asn assigned" true
    (g.Vbgp.Control_enforcer.asns = [ asn 61574 ]);
  checkb "name embeds team" true
    (contains ~needle:"alpha" g.Vbgp.Control_enforcer.name)

(* -- platform ---------------------------------------------------------------------- *)

let test_platform_lifecycle () =
  let platform = Platform.create () in
  let before = List.length (Platform.records platform) in
  match
    Platform.submit platform
      (Approval.proposal ~title:"t" ~team:"x" ~goals:"g" ())
  with
  | Platform.Denied r -> Alcotest.fail r
  | Platform.Granted record ->
      checki "recorded" (before + 1) (List.length (Platform.records platform));
      let g = record.Approval.grant in
      checki "one prefix" 1 (List.length g.Vbgp.Control_enforcer.prefixes);
      (* A second experiment gets disjoint resources. *)
      (match
         Platform.submit platform
           (Approval.proposal ~title:"t2" ~team:"y" ~goals:"g" ())
       with
      | Platform.Granted record2 ->
          let g2 = record2.Approval.grant in
          checkb "prefixes disjoint" true
            (List.for_all
               (fun p -> not (List.exists (Prefix.equal p) g2.Vbgp.Control_enforcer.prefixes))
               g.Vbgp.Control_enforcer.prefixes);
          checkb "asns disjoint" true
            (g.Vbgp.Control_enforcer.asns <> g2.Vbgp.Control_enforcer.asns)
      | Platform.Denied r -> Alcotest.fail r);
      (* Concluding returns the resources. *)
      Platform.conclude platform record;
      (match
         Platform.submit platform
           (Approval.proposal ~title:"t3" ~team:"z" ~goals:"g" ())
       with
      | Platform.Granted _ -> ()
      | Platform.Denied r -> Alcotest.fail r)

let test_platform_denies_risky () =
  let platform = Platform.create () in
  match
    Platform.submit platform
      (Approval.proposal ~title:"t" ~team:"x" ~goals:"g"
         ~requested_caps:Vbgp.Experiment_caps.(default |> with_poisoning 100)
         ())
  with
  | Platform.Denied _ -> ()
  | Platform.Granted _ -> Alcotest.fail "risky proposal approved"

(* A small live platform used by the toolkit tests. *)
let build_pop () =
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let n1 = Pop.add_transit pop ~asn:(asn 100) in
  Neighbor_host.announce n1
    [ (pfx "192.168.0.0/24", Aspath.of_asns [ asn 100; asn 900 ]) ];
  Platform.run platform ~seconds:5.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"t" ~team:"kit" ~goals:"g" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied r -> failwith r
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop);
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  (platform, pop, n1, kit, grant)

(* -- toolkit (Table 1) ---------------------------------------------------------------- *)

let test_toolkit_session_lifecycle () =
  let platform, _, _, kit, _ = build_pop () in
  checkb "established" true (Toolkit.established kit ~pop:"pop01");
  (match Toolkit.session_status kit with
  | [ ("pop01", state, true) ] -> checkb "state" true (state = Fsm.Established)
  | _ -> Alcotest.fail "unexpected status");
  (* Stop, then restart (Table 1: start/stop sessions). *)
  Toolkit.stop_session kit ~pop:"pop01";
  Platform.run platform ~seconds:5.;
  checkb "down after stop" false (Toolkit.established kit ~pop:"pop01");
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  checkb "re-established" true (Toolkit.established kit ~pop:"pop01")

let test_toolkit_routes_and_cli () =
  let _, _, _, kit, _ = build_pop () in
  checki "one route" 1 (Toolkit.route_count kit ~pop:"pop01");
  let out = Toolkit.cli kit "show route" in
  checkb "cli shows prefix" true (contains ~needle:"192.168.0.0/24" out);
  let out = Toolkit.cli kit "show protocols" in
  checkb "cli shows pop" true (contains ~needle:"pop01" out);
  let out = Toolkit.cli kit "show route for 192.168.0.77" in
  checkb "route lookup" true (contains ~needle:"192.168.0.0/24" out);
  let out = Toolkit.cli kit "bogus command" in
  checkb "syntax error" true (contains ~needle:"syntax error" out)

let test_toolkit_announce_withdraw () =
  let platform, _, n1, kit, grant = build_pop () in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  checkb "announced" true (Neighbor_host.heard_route n1 prefix <> None);
  Toolkit.withdraw kit prefix;
  Platform.run platform ~seconds:5.;
  checkb "withdrawn" true (Neighbor_host.heard_route n1 prefix = None)

let test_toolkit_prepend () =
  let platform, _, n1, kit, grant = build_pop () in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit ~prepend:2 prefix;
  Platform.run platform ~seconds:5.;
  match Neighbor_host.heard_route n1 prefix with
  | Some attrs ->
      (* mux + 3x experiment asn (one origin + two prepends) *)
      checki "path length" 4
        (match Attr.as_path attrs with
        | Some p -> Aspath.length p
        | None -> 0)
  | None -> Alcotest.fail "not announced"

let test_toolkit_udp_service () =
  let platform, _, n1, kit, grant = build_pop () in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  (* Host an echo service; a neighbor queries it from the Internet. *)
  Toolkit.serve_udp kit ~port:7 (fun _ datagram ->
      Some ("echo:" ^ datagram.Udp.payload));
  Neighbor_host.send_packet n1 ~src:(ip "192.168.0.10")
    ~dst:(Prefix.host prefix 1)
    (Udp.encode { Udp.src_port = 4000; dst_port = 7; payload = "hi" });
  Platform.run platform ~seconds:5.;
  (* The reply routes back through the delivering neighbor. *)
  checkb "service reply reached the neighbor" true
    (List.exists
       (fun (p : Ipv4_packet.t) ->
         match Udp.decode p.Ipv4_packet.payload with
         | Ok d -> d.Udp.payload = "echo:hi"
         | Error _ -> false)
       (Neighbor_host.received_packets n1))

let test_toolkit_ping () =
  let platform, _, _, kit, _ = build_pop () in
  (* Ping an address covered by N1's route; N1 won't answer, but the probe
     must leave via the chosen next hop without error. *)
  (match Toolkit.ping kit ~pop:"pop01" (ip "192.168.0.1") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Platform.run platform ~seconds:2.;
  checkb "no replies from silent host" true (Toolkit.echo_replies kit = [])

let test_toolkit_route_refresh () =
  let platform, _, n1, kit, _ = build_pop () in
  (* The neighbor withdraws and re-announces while we're connected; then a
     route refresh must resync the full current table. *)
  checki "one route initially" 1 (Toolkit.route_count kit ~pop:"pop01");
  Neighbor_host.announce n1
    [ (pfx "192.168.1.0/24", Aspath.of_asns [ asn 100 ]) ];
  Platform.run platform ~seconds:5.;
  checki "two routes" 2 (Toolkit.route_count kit ~pop:"pop01");
  Toolkit.refresh_routes kit ~pop:"pop01";
  Platform.run platform ~seconds:5.;
  (* Resync replaces entries in place: still exactly two. *)
  checki "refresh is idempotent" 2 (Toolkit.route_count kit ~pop:"pop01")

let test_toolkit_multi_pop () =
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let pop_a = Platform.add_pop platform ~name:"popA" ~site:Pop.Ixp () in
  let pop_b = Platform.add_pop platform ~name:"popB" ~site:Pop.Ixp () in
  let n_a = Pop.add_transit pop_a ~asn:(asn 100) in
  let n_b = Pop.add_transit pop_b ~asn:(asn 200) in
  Platform.run platform ~seconds:5.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"mp" ~team:"mp" ~goals:"g" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied r -> failwith r
  in
  let kit = Toolkit.create ~engine ~grant in
  ignore (Toolkit.open_tunnel kit pop_a);
  ignore (Toolkit.open_tunnel kit pop_b);
  Toolkit.start_session kit ~pop:"popA";
  Toolkit.start_session kit ~pop:"popB";
  Platform.run platform ~seconds:10.;
  checkb "both established" true
    (Toolkit.established kit ~pop:"popA" && Toolkit.established kit ~pop:"popB");
  (* Announce only at popB: only popB's neighbor hears it. *)
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit ~pops:[ "popB" ] prefix;
  Platform.run platform ~seconds:5.;
  checkb "popB neighbor heard" true (Neighbor_host.heard_route n_b prefix <> None);
  checkb "popA neighbor did not" true (Neighbor_host.heard_route n_a prefix = None)

let test_toolkit_ipv6_announce () =
  (* MP-BGP IPv6 announcements: enforcement + export end to end (§4.2's
     v6 footprint, control plane). *)
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let n1 = Pop.add_transit pop ~asn:(asn 100) in
  Platform.run platform ~seconds:5.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"v6" ~team:"v6" ~goals:"g" ~want_ipv6:true ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied r -> failwith r
  in
  checkb "v6 allocation granted" true
    (grant.Vbgp.Control_enforcer.prefixes_v6 <> []);
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop);
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  let p6 = List.hd grant.Vbgp.Control_enforcer.prefixes_v6 in
  Toolkit.announce_v6 kit p6;
  Platform.run platform ~seconds:5.;
  (match Neighbor_host.heard_route_v6 n1 p6 with
  | Some attrs ->
      checkb "mux prepended on v6 too" true
        (match Attr.as_path attrs with
        | Some path ->
            Aspath.first path = Some (Platform.mux_asn platform)
        | None -> false)
  | None -> Alcotest.fail "v6 prefix not announced");
  (* Announcing someone else's v6 space is blocked. *)
  Toolkit.announce_v6 kit (Netcore.Prefix_v6.of_string_exn "2001:db8::/48");
  Platform.run platform ~seconds:5.;
  checkb "foreign v6 blocked" true
    (Neighbor_host.heard_route_v6 n1
       (Netcore.Prefix_v6.of_string_exn "2001:db8::/48")
    = None);
  (* Withdraw. *)
  Toolkit.withdraw_v6 kit p6;
  Platform.run platform ~seconds:5.;
  checkb "v6 withdrawn" true (Neighbor_host.heard_route_v6 n1 p6 = None)

let test_pop_bandwidth_shaping () =
  (* A bandwidth-constrained site (§4.7): flooding is shaped, and the
     shaping only affects that site. *)
  let platform = Platform.create () in
  let pop =
    Platform.add_pop platform ~name:"constrained" ~site:Pop.University
      ~bandwidth_limit_mbps:1 ()
  in
  let n1 = Pop.add_transit pop ~asn:(asn 100) in
  Neighbor_host.announce n1
    [ (pfx "192.168.0.0/24", Aspath.of_asns [ asn 100 ]) ];
  Platform.run platform ~seconds:5.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"shape" ~team:"shape" ~goals:"g" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied r -> failwith r
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop);
  Toolkit.start_session kit ~pop:"constrained";
  Platform.run platform ~seconds:10.;
  (* Flood: 200 x 1-KB packets in one instant >> the 1 Mbit/s bucket. *)
  let dst = ip "192.168.0.1" in
  for _ = 1 to 200 do
    ignore
      (Toolkit.send_packet kit ~pop:"constrained" ~dst (String.make 1000 'x'))
  done;
  Platform.run platform ~seconds:5.;
  let delivered = List.length (Neighbor_host.received_packets n1) in
  let _, blocked =
    Vbgp.Data_enforcer.stats (Vbgp.Router.data_enforcer (Pop.router pop))
  in
  checkb "some traffic passes" true (delivered > 0);
  checkb "flood is shaped" true (blocked > 100);
  checki "accounting adds up" 200 (delivered + blocked)

(* -- config model / templating ----------------------------------------------------------- *)

let test_template_bird () =
  let platform, _, _, _, _ = build_pop () in
  let model = Config_model.of_platform platform in
  match Config_model.pop model "pop01" with
  | None -> Alcotest.fail "pop missing from model"
  | Some pop_intent ->
      let bird = Template.render_bird ~version:1 pop_intent in
      checkb "has mux asn" true (contains ~needle:"47065" bird);
      checkb "has neighbor stanza" true (contains ~needle:"neighbor 100.64." bird);
      checkb "experiment filter" true (contains ~needle:"filter exp_" bird);
      checkb "hijack reject" true (contains ~needle:"reject" bird);
      checkb "add-path for experiments" true
        (contains ~needle:"add paths tx rx" bird);
      let vpn = Template.render_openvpn ~version:1 pop_intent in
      checkb "vpn server stanza" true (contains ~needle:"server exp_" vpn);
      let policy = Template.render_policy ~version:1 pop_intent in
      checkb "budget in policy" true (contains ~needle:"budget 144/day" policy)

let test_template_render_all_and_diff () =
  let platform, _, _, _, _ = build_pop () in
  let model = Config_model.of_platform platform in
  let files = Template.render_all model in
  checki "three services per pop" 3 (List.length files);
  (* Identical inputs diff empty; a model change produces a small diff. *)
  let bird1 =
    Template.render_bird ~version:1 (Option.get (Config_model.pop model "pop01"))
  in
  checki "no self diff" 0
    (Template.diff_size (Template.diff ~old_config:bird1 ~new_config:bird1));
  let bird2 =
    Template.render_bird ~version:2 (Option.get (Config_model.pop model "pop01"))
  in
  let d = Template.diff ~old_config:bird1 ~new_config:bird2 in
  checkb "version bump is a 2-line diff" true (Template.diff_size d = 2)

(* -- controller ---------------------------------------------------------------------------- *)

let iface name addrs up =
  { Controller.ifname = name; addresses = List.map ip addrs; up }

let test_controller_plan_minimal () =
  let desired =
    {
      Controller.ifaces = [ iface "tap_x" [ "10.0.0.1" ] true ];
      routes = [ { Controller.table = 1; prefix = Prefix.default; via = ip "100.64.0.1" } ];
      rules = [ { Controller.priority = 101; selector = "127.65.0.1"; table = 1 } ];
    }
  in
  let kernel = Controller.Kernel.create () in
  let ops, result = Controller.reconcile kernel ~desired in
  checkb "applied" true
    (match result with Controller.Applied _ -> true | _ -> false);
  checki "ops for fresh kernel" 5 (List.length ops);
  checkb "converged" true (Controller.converged kernel ~desired);
  (* Re-reconciling a converged kernel is a no-op (compatible config is
     never touched, so sessions survive, §5). *)
  let ops, _ = Controller.reconcile kernel ~desired in
  checki "idempotent" 0 (List.length ops)

let test_controller_incremental () =
  let desired1 =
    {
      Controller.ifaces = [ iface "tap_x" [ "10.0.0.1" ] true ];
      routes = [];
      rules = [];
    }
  in
  let kernel = Controller.Kernel.create () in
  ignore (Controller.reconcile kernel ~desired:desired1);
  (* Add an address and a route: only additions planned. *)
  let desired2 =
    {
      Controller.ifaces = [ iface "tap_x" [ "10.0.0.1"; "10.0.0.2" ] true ];
      routes = [ { Controller.table = 2; prefix = Prefix.default; via = ip "1.1.1.1" } ];
      rules = [];
    }
  in
  let ops, _ = Controller.reconcile kernel ~desired:desired2 in
  checki "two additions" 2 (List.length ops);
  checkb "no deletions" true
    (List.for_all
       (function
         | Controller.Add_address _ | Controller.Add_route _ -> true
         | _ -> false)
       ops)

let test_controller_primary_address () =
  (* Kernel has [B; A]; intent wants primary A. The controller must remove
     and re-add addresses in order (the kernel cannot swap primaries). *)
  let kernel = Controller.Kernel.create () in
  ignore (Controller.Kernel.apply kernel (Controller.Create_iface "eth0"));
  ignore (Controller.Kernel.apply kernel (Controller.Add_address ("eth0", ip "10.0.0.2")));
  ignore (Controller.Kernel.apply kernel (Controller.Add_address ("eth0", ip "10.0.0.1")));
  let desired =
    {
      Controller.ifaces = [ iface "eth0" [ "10.0.0.1"; "10.0.0.2" ] false ];
      routes = [];
      rules = [];
    }
  in
  let _, result = Controller.reconcile kernel ~desired in
  checkb "applied" true
    (match result with Controller.Applied _ -> true | _ -> false);
  let state = Controller.Kernel.observe kernel in
  (match state.Controller.ifaces with
  | [ i ] ->
      checkb "primary is now 10.0.0.1" true
        (match i.Controller.addresses with
        | a :: _ -> Ipv4.equal a (ip "10.0.0.1")
        | [] -> false)
  | _ -> Alcotest.fail "expected one interface");
  checkb "converged" true (Controller.converged kernel ~desired)

let test_controller_rollback () =
  let kernel = Controller.Kernel.create () in
  let desired =
    {
      Controller.ifaces = [ iface "tap_x" [ "10.0.0.1"; "10.0.0.2" ] true ];
      routes = [ { Controller.table = 1; prefix = Prefix.default; via = ip "1.1.1.1" } ];
      rules = [];
    }
  in
  let before = Controller.Kernel.observe kernel in
  (* Fail the 4th operation: everything already applied must roll back. *)
  Controller.Kernel.inject_failure kernel ~after:3;
  let _, result = Controller.reconcile kernel ~desired in
  checkb "rolled back" true
    (match result with Controller.Rolled_back _ -> true | _ -> false);
  let after = Controller.Kernel.observe kernel in
  checkb "state restored" true (before = after);
  (* A later attempt (no failure) succeeds and converges. *)
  let _, result = Controller.reconcile kernel ~desired in
  checkb "second attempt applies" true
    (match result with Controller.Applied _ -> true | _ -> false);
  checkb "converged" true (Controller.converged kernel ~desired)

let test_controller_vbgp_state () =
  let desired =
    Controller.vbgp_desired_state
      ~experiments:[ ("exp001", ip "100.125.1.1") ]
      ~neighbors:[ (1, ip "127.65.0.1", ip "100.64.0.1"); (2, ip "127.65.0.2", ip "100.64.0.2") ]
  in
  checki "one tap iface" 1 (List.length desired.Controller.ifaces);
  checki "one table per neighbor" 2 (List.length desired.Controller.routes);
  checki "one rule per neighbor" 2 (List.length desired.Controller.rules);
  let kernel = Controller.Kernel.create () in
  let _, result = Controller.reconcile kernel ~desired in
  checkb "applies cleanly" true
    (match result with Controller.Applied _ -> true | _ -> false)

let test_controller_rollback_primary_order () =
  (* The inverse of an address delete must re-insert at the right
     position: rolling back a failed primary-swap plan has to restore the
     original address ORDER, not just the set (the kernel's primary is
     positional, §3.2.2). The swap plan is 4 ops; fail each one. *)
  List.iter
    (fun fail_at ->
      let kernel = Controller.Kernel.create () in
      ignore (Controller.Kernel.apply kernel (Controller.Create_iface "eth0"));
      ignore
        (Controller.Kernel.apply kernel
           (Controller.Add_address ("eth0", ip "10.0.0.2")));
      ignore
        (Controller.Kernel.apply kernel
           (Controller.Add_address ("eth0", ip "10.0.0.1")));
      let before = Controller.Kernel.observe kernel in
      let desired =
        {
          Controller.ifaces = [ iface "eth0" [ "10.0.0.1"; "10.0.0.2" ] false ];
          routes = [];
          rules = [];
        }
      in
      Controller.Kernel.inject_failure kernel ~after:fail_at;
      let _, result = Controller.reconcile kernel ~desired in
      checkb
        (Printf.sprintf "rolled back (failure at op %d)" fail_at)
        true
        (match result with Controller.Rolled_back _ -> true | _ -> false);
      checkb
        (Printf.sprintf "state incl. address order restored (op %d)" fail_at)
        true
        (before = Controller.Kernel.observe kernel);
      match (Controller.Kernel.observe kernel).Controller.ifaces with
      | [ i ] ->
          checkb "primary is still 10.0.0.2" true
            (match i.Controller.addresses with
            | a :: _ -> Ipv4.equal a (ip "10.0.0.2")
            | [] -> false)
      | _ -> Alcotest.fail "expected one interface")
    [ 0; 1; 2; 3 ]

(* -- two-phase multi-PoP apply ----------------------------------------------------------- *)

let multi_desired i =
  {
    Controller.ifaces =
      [ iface (Printf.sprintf "tap%d" i) [ Printf.sprintf "10.%d.0.1" i ] true ];
    routes =
      [
        {
          Controller.table = i;
          prefix = Prefix.default;
          via = ip (Printf.sprintf "100.64.%d.1" i);
        };
      ];
    rules =
      [
        {
          Controller.priority = 100 + i;
          selector = Printf.sprintf "127.65.0.%d" i;
          table = i;
        };
      ];
  }

let participant i =
  {
    Controller.Multi.part_name = Printf.sprintf "pop%02d" i;
    kernel = Controller.Kernel.create ();
    desired = multi_desired i;
  }

let entry_status j name =
  match Controller.Multi.entry j name with
  | Some e -> e.Controller.Multi.status
  | None -> Alcotest.fail (name ^ " missing from journal")

(* Widen a desired state so a second apply has real work to do. *)
let widen (d : Controller.state) =
  match d.Controller.ifaces with
  | i :: rest ->
      {
        d with
        Controller.ifaces =
          {
            i with
            Controller.addresses = i.Controller.addresses @ [ ip "10.99.0.1" ];
          }
          :: rest;
      }
  | [] -> d

let test_multi_commit_all () =
  let ps = [ participant 1; participant 2; participant 3 ] in
  match Controller.Multi.apply ps with
  | Controller.Multi.Committed_all j ->
      checkb "all PoPs converged" true (Controller.Multi.converged_all ps);
      List.iter
        (fun (p : Controller.Multi.participant) ->
          checkb
            (p.Controller.Multi.part_name ^ " committed")
            true
            (entry_status j p.Controller.Multi.part_name
            = Controller.Multi.Committed))
        ps;
      checki "no retries needed" 0
        (List.length (Controller.Multi.journal_backoffs j))
  | _ -> Alcotest.fail "expected Committed_all"

let test_multi_prepare_failure_zero_residual () =
  let ps = [ participant 1; participant 2; participant 3 ] in
  (match Controller.Multi.apply ps with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> Alcotest.fail "priming apply failed");
  (* Scribble out-of-band drift on every kernel so "zero residual" is
     distinguishable from "reconciled": an aborted apply must leave the
     drift exactly where it was. *)
  List.iter
    (fun (p : Controller.Multi.participant) ->
      match
        Controller.Kernel.apply p.Controller.Multi.kernel
          (Controller.Add_route
             { Controller.table = 9; prefix = Prefix.default; via = ip "9.9.9.9" })
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    ps;
  let snapshots =
    List.map
      (fun (p : Controller.Multi.participant) ->
        Controller.Kernel.observe p.Controller.Multi.kernel)
      ps
  in
  let p2 = List.nth ps 1 in
  Controller.Kernel.set_offline p2.Controller.Multi.kernel true;
  (match Controller.Multi.apply ps with
  | Controller.Multi.Aborted { failed_pop; phase; journal; _ } ->
      Alcotest.(check string) "unreachable PoP named" "pop02" failed_pop;
      checkb "failed in prepare" true (phase = Controller.Multi.Prepare);
      checkb "no PoP was committed" true
        (entry_status journal "pop01" <> Controller.Multi.Committed
        && entry_status journal "pop03" <> Controller.Multi.Committed);
      checkb "unreachability was retried with backoff" true
        (Controller.Multi.journal_backoffs journal <> [])
  | _ -> Alcotest.fail "expected Aborted");
  (* Zero residual: every kernel byte-identical to its pre-apply observe,
     drift included. *)
  List.iter2
    (fun (p : Controller.Multi.participant) snap ->
      checkb
        (p.Controller.Multi.part_name ^ " untouched")
        true
        (Controller.Kernel.observe p.Controller.Multi.kernel = snap))
    ps snapshots;
  Controller.Kernel.set_offline p2.Controller.Multi.kernel false;
  match Controller.Multi.apply ps with
  | Controller.Multi.Committed_all _ ->
      checkb "converges once the PoP answers again" true
        (Controller.Multi.converged_all ps)
  | _ -> Alcotest.fail "expected Committed_all after recovery"

let test_multi_commit_failure_rolls_back_committed () =
  let ps = [ participant 1; participant 2 ] in
  (match Controller.Multi.apply ps with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> Alcotest.fail "priming apply failed");
  let snapshots =
    List.map
      (fun (p : Controller.Multi.participant) ->
        Controller.Kernel.observe p.Controller.Multi.kernel)
      ps
  in
  let ps' =
    List.map
      (fun (p : Controller.Multi.participant) ->
        { p with Controller.Multi.desired = widen p.Controller.Multi.desired })
      ps
  in
  let p2 = List.nth ps' 1 in
  (* pop01 commits its widened plan first; pop02's commit then fails with
     retries exhausted — the abort must return pop01 to its snapshot. *)
  Controller.Kernel.inject_failure p2.Controller.Multi.kernel ~after:0;
  let retry =
    { Controller.Multi.max_attempts = 1; backoff_base = 0.1; backoff_max = 1. }
  in
  (match Controller.Multi.apply ~retry ps' with
  | Controller.Multi.Aborted { failed_pop; phase; journal; _ } ->
      Alcotest.(check string) "failing PoP named" "pop02" failed_pop;
      checkb "failed in commit" true (phase = Controller.Multi.Commit);
      checkb "pop01 rolled back" true
        (entry_status journal "pop01" = Controller.Multi.Rolled_back)
  | _ -> Alcotest.fail "expected Aborted");
  List.iter2
    (fun (p : Controller.Multi.participant) snap ->
      checkb
        (p.Controller.Multi.part_name ^ " back at pre-apply state")
        true
        (Controller.Kernel.observe p.Controller.Multi.kernel = snap))
    ps' snapshots;
  checkb "widened intent is NOT in place anywhere" true
    (not (Controller.Multi.converged_all ps'))

let test_multi_transient_failure_retries () =
  let ps = [ participant 1; participant 2 ] in
  let p2 = List.nth ps 1 in
  (* One-shot fault: the first commit attempt on pop02 fails and rolls
     back; the default retry policy re-plans and succeeds. *)
  Controller.Kernel.inject_failure p2.Controller.Multi.kernel ~after:0;
  let delays = ref [] in
  (match Controller.Multi.apply ~on_backoff:(fun d -> delays := d :: !delays) ps with
  | Controller.Multi.Committed_all j ->
      checkb "converged despite the transient fault" true
        (Controller.Multi.converged_all ps);
      Alcotest.(check (list (float 1e-9)))
        "capped-exponential schedule journalled" [ 0.2 ]
        (Controller.Multi.journal_backoffs j)
  | _ -> Alcotest.fail "expected Committed_all");
  Alcotest.(check (list (float 1e-9)))
    "on_backoff saw the same delays" [ 0.2 ] (List.rev !delays)

let test_multi_backoff_schedule_caps () =
  let ps = [ participant 1 ] in
  Controller.Kernel.set_offline (List.hd ps).Controller.Multi.kernel true;
  let retry =
    { Controller.Multi.max_attempts = 6; backoff_base = 0.5; backoff_max = 2. }
  in
  match Controller.Multi.apply ~retry ps with
  | Controller.Multi.Aborted { phase; journal; _ } ->
      checkb "failed in prepare" true (phase = Controller.Multi.Prepare);
      Alcotest.(check (list (float 1e-9)))
        "delays double then cap"
        [ 0.5; 1.0; 2.0; 2.0; 2.0 ]
        (Controller.Multi.journal_backoffs journal)
  | _ -> Alcotest.fail "expected Aborted"

let test_multi_crash_resume () =
  let ps = [ participant 1; participant 2; participant 3 ] in
  let j =
    match Controller.Multi.apply ~crash_after:1 ps with
    | Controller.Multi.Crashed j -> j
    | _ -> Alcotest.fail "expected Crashed"
  in
  checkb "pop01 committed before the crash" true
    (entry_status j "pop01" = Controller.Multi.Committed);
  checkb "pop02 still only prepared" true
    (entry_status j "pop02" = Controller.Multi.Prepared);
  checkb "platform not yet converged" true
    (not (Controller.Multi.converged_all ps));
  (* A resumed journal skips the committed PoP and finishes the rest. *)
  (match Controller.Multi.resume j ps with
  | Controller.Multi.Committed_all _ ->
      checkb "resume converges the remainder" true
        (Controller.Multi.converged_all ps)
  | _ -> Alcotest.fail "expected Committed_all from resume");
  (* Resuming a completed journal is idempotent: nothing to do. *)
  (match Controller.Multi.resume j ps with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> Alcotest.fail "second resume not idempotent");
  (* A changed participant set must be rejected outright. *)
  match Controller.Multi.resume j [ participant 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resume accepted a changed participant set"

(* Property: reconciling any random desired state from any random current
   state converges, and a second reconcile is a no-op. *)
let arbitrary_state =
  let gen_iface =
    QCheck.map
      (fun (n, addrs, up) ->
        {
          Controller.ifname = Printf.sprintf "tap%d" (n mod 4);
          addresses =
            List.sort_uniq Ipv4.compare
              (List.map (fun a -> ip (Printf.sprintf "10.0.%d.1" (a mod 8))) addrs);
          up;
        })
      QCheck.(triple small_nat (small_list small_nat) bool)
  in
  QCheck.map
    (fun (ifaces, routes) ->
      let dedup_ifaces =
        List.fold_left
          (fun acc (i : Controller.iface) ->
            if
              List.exists
                (fun (j : Controller.iface) ->
                  String.equal j.Controller.ifname i.Controller.ifname)
                acc
            then acc
            else i :: acc)
          [] ifaces
      in
      {
        Controller.ifaces = dedup_ifaces;
        routes =
          List.sort_uniq Stdlib.compare
            (List.map
               (fun r ->
                 {
                   Controller.table = r mod 4;
                   prefix = Prefix.default;
                   via = ip (Printf.sprintf "1.1.1.%d" (1 + (r mod 4)));
                 })
               routes);
        rules = [];
      })
    QCheck.(pair (small_list gen_iface) (small_list small_nat))

let prop_controller_converges =
  QCheck.Test.make ~name:"reconcile converges from any state" ~count:100
    (QCheck.pair arbitrary_state arbitrary_state)
    (fun (first, second) ->
      let kernel = Controller.Kernel.create () in
      let _, r1 = Controller.reconcile kernel ~desired:first in
      let _, r2 = Controller.reconcile kernel ~desired:second in
      let applied = function Controller.Applied _ -> true | _ -> false in
      applied r1 && applied r2
      && Controller.converged kernel ~desired:second
      && fst (Controller.reconcile kernel ~desired:second) = [])

let controller_props =
  List.map QCheck_alcotest.to_alcotest [ prop_controller_converges ]

let () =
  Alcotest.run "peering"
    [
      ( "approval",
        [
          Alcotest.test_case "basic approved" `Quick test_approval_basic;
          Alcotest.test_case "risky rejected" `Quick test_approval_risky_rejected;
          Alcotest.test_case "allocation" `Quick test_approval_allocation;
        ] );
      ( "platform",
        [
          Alcotest.test_case "lifecycle" `Quick test_platform_lifecycle;
          Alcotest.test_case "denies risky" `Quick test_platform_denies_risky;
        ] );
      ( "toolkit",
        [
          Alcotest.test_case "session lifecycle" `Quick
            test_toolkit_session_lifecycle;
          Alcotest.test_case "routes and cli" `Quick test_toolkit_routes_and_cli;
          Alcotest.test_case "announce/withdraw" `Quick
            test_toolkit_announce_withdraw;
          Alcotest.test_case "prepend" `Quick test_toolkit_prepend;
          Alcotest.test_case "udp service" `Quick test_toolkit_udp_service;
          Alcotest.test_case "ping" `Quick test_toolkit_ping;
          Alcotest.test_case "route refresh" `Quick test_toolkit_route_refresh;
          Alcotest.test_case "multi-pop" `Quick test_toolkit_multi_pop;
          Alcotest.test_case "ipv6 announce" `Quick test_toolkit_ipv6_announce;
          Alcotest.test_case "bandwidth shaping" `Quick
            test_pop_bandwidth_shaping;
        ] );
      ( "template",
        [
          Alcotest.test_case "bird config" `Quick test_template_bird;
          Alcotest.test_case "render all + diff" `Quick
            test_template_render_all_and_diff;
        ] );
      ( "controller",
        [
          Alcotest.test_case "plan minimal" `Quick test_controller_plan_minimal;
          Alcotest.test_case "incremental" `Quick test_controller_incremental;
          Alcotest.test_case "primary address" `Quick
            test_controller_primary_address;
          Alcotest.test_case "transactional rollback" `Quick
            test_controller_rollback;
          Alcotest.test_case "vbgp desired state" `Quick
            test_controller_vbgp_state;
          Alcotest.test_case "rollback restores primary ordering" `Quick
            test_controller_rollback_primary_order;
        ] );
      ( "controller-multi",
        [
          Alcotest.test_case "commit all" `Quick test_multi_commit_all;
          Alcotest.test_case "prepare failure leaves zero residual" `Quick
            test_multi_prepare_failure_zero_residual;
          Alcotest.test_case "commit failure rolls back committed PoPs"
            `Quick test_multi_commit_failure_rolls_back_committed;
          Alcotest.test_case "transient failure absorbed by retry" `Quick
            test_multi_transient_failure_retries;
          Alcotest.test_case "backoff schedule doubles then caps" `Quick
            test_multi_backoff_schedule_caps;
          Alcotest.test_case "crash mid-apply, resume completes" `Quick
            test_multi_crash_resume;
        ] );
      ("controller-properties", controller_props);
    ]
