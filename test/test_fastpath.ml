(* Tests for the data-plane fast path: zero-copy packet views (wire-offset
   accessors, in-place TTL decrement with an RFC 1624 incremental checksum
   fix) and the generation-stamped per-neighbor flow cache, held
   differentially against the record slow path. *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let packet ?(src = "184.164.224.1") ?(dst = "192.168.0.1") ?(ttl = 64)
    ?(ident = 0) ?(dscp = 0) ?(protocol = Ipv4_packet.Udp)
    ?(payload = "data") () =
  Ipv4_packet.make ~ttl ~ident ~dscp ~src:(ip src) ~dst:(ip dst) ~protocol
    payload

let view_of p =
  match Ipv4_packet.View.of_string (Ipv4_packet.encode p) with
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* -- packet views ------------------------------------------------------------------ *)

let test_view_accessors () =
  let p = packet ~ttl:17 ~ident:4242 ~dscp:46 ~payload:"hello" () in
  let wire = Ipv4_packet.encode p in
  let v = view_of p in
  checkb "src" true (Ipv4.equal (Ipv4_packet.View.src v) p.Ipv4_packet.src);
  checkb "dst" true (Ipv4.equal (Ipv4_packet.View.dst v) p.Ipv4_packet.dst);
  checki "ttl" 17 (Ipv4_packet.View.ttl v);
  checkb "protocol" true (Ipv4_packet.View.protocol v = Ipv4_packet.Udp);
  checki "ident" 4242 (Ipv4_packet.View.ident v);
  checki "dscp" 46 (Ipv4_packet.View.dscp v);
  checki "total length" (Ipv4_packet.header_size + 5)
    (Ipv4_packet.View.total_length v);
  checki "payload length" 5 (Ipv4_packet.View.payload_length v);
  checkb "record round trip" true (Ipv4_packet.View.to_packet v = p);
  checks "wire preserved verbatim" wire (Ipv4_packet.View.to_wire v)

let test_view_validation () =
  let wire = Ipv4_packet.encode (packet ()) in
  let rejected s =
    match Ipv4_packet.View.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "valid accepted" false (rejected wire);
  checkb "truncated" true (rejected (String.sub wire 0 10));
  let corrupt pos f =
    let b = Bytes.of_string wire in
    Bytes.set_uint8 b pos (f (Bytes.get_uint8 b pos));
    Bytes.to_string b
  in
  checkb "bad version" true (rejected (corrupt 0 (fun _ -> 0x65)));
  checkb "options unsupported" true (rejected (corrupt 0 (fun _ -> 0x46)));
  checkb "bad total length" true (rejected (corrupt 3 (fun x -> x + 40)));
  (* A flipped header byte without a checksum fix must be caught. *)
  checkb "bad checksum" true (rejected (corrupt 8 (fun x -> x lxor 0xff)));
  (* [decode] and the view agree on every one of these. *)
  List.iter
    (fun s ->
      checkb "view agrees with decode" true
        (Result.is_ok (Ipv4_packet.decode s)
        = Result.is_ok (Ipv4_packet.View.of_string s)))
    [
      wire;
      String.sub wire 0 10;
      corrupt 0 (fun _ -> 0x65);
      corrupt 0 (fun _ -> 0x46);
      corrupt 3 (fun x -> x + 40);
      corrupt 8 (fun x -> x lxor 0xff);
    ]

(* The incremental checksum fix must agree bit-for-bit with a full
   recompute: decrementing the TTL through the view yields exactly the
   bytes [encode] produces for the decremented record. *)
let test_ttl_decrement_matches_reencode () =
  List.iter
    (fun ttl ->
      List.iter
        (fun protocol ->
          let p = packet ~ttl ~protocol ~payload:"payload!" () in
          let v = view_of p in
          Ipv4_packet.View.decrement_ttl v;
          checks
            (Printf.sprintf "ttl %d" ttl)
            (Ipv4_packet.encode { p with Ipv4_packet.ttl = ttl - 1 })
            (Ipv4_packet.View.to_wire v))
        [ Ipv4_packet.Udp; Ipv4_packet.Tcp; Ipv4_packet.Icmp;
          Ipv4_packet.Other 97 ])
    [ 1; 2; 17; 64; 128; 255 ];
  Alcotest.check_raises "ttl 0 refused"
    (Invalid_argument "Ipv4_packet.View.decrement_ttl: ttl 0") (fun () ->
      Ipv4_packet.View.decrement_ttl (view_of (packet ~ttl:0 ())))

let prop_incremental_checksum =
  QCheck.Test.make ~name:"incremental checksum equals full recompute"
    ~count:500
    (QCheck.quad
       (QCheck.int_bound 0xffffff)
       (QCheck.int_bound 0xffffff)
       (QCheck.int_range 1 255)
       (QCheck.pair (QCheck.int_bound 0xffff)
          (QCheck.string_of_size (QCheck.Gen.int_range 0 40))))
    (fun (s, d, ttl, (ident, payload)) ->
      let p =
        Ipv4_packet.make ~ttl ~ident
          ~src:(Ipv4.of_int32 (Int32.of_int (0x0a000000 + s)))
          ~dst:(Ipv4.of_int32 (Int32.of_int (0x40000000 + d)))
          ~protocol:Ipv4_packet.Udp payload
      in
      match Ipv4_packet.View.of_string (Ipv4_packet.encode p) with
      | Error _ -> false
      | Ok v ->
          Ipv4_packet.View.decrement_ttl v;
          String.equal
            (Ipv4_packet.encode { p with Ipv4_packet.ttl = ttl - 1 })
            (Ipv4_packet.View.to_wire v))

(* -- router fixture ---------------------------------------------------------------- *)

type fx = {
  engine : Sim.Engine.t;
  router : Router.t;
  n1 : int;
  delivered : Ipv4_packet.t list ref;
}

let make_router ?data ?(flow_cache = true) () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"fastpath" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ?data ~flow_cache ()
  in
  Router.activate router;
  let delivered = ref [] in
  let n1, pair =
    Router.add_neighbor router ~asn:(asn 100) ~ip:(ip "100.64.0.1")
      ~kind:Neighbor.Transit ~remote_id:(ip "100.64.0.1")
      ~deliver:(fun p -> delivered := p :: !delivered)
      ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  { engine; router; n1; delivered }

let announce fx prefix =
  Router.process_neighbor_update fx.router ~neighbor_id:fx.n1
    (Msg.update
       ~attrs:
         (Attr.origin_attrs
            ~as_path:(Aspath.of_asns [ asn 100 ])
            ~next_hop:(ip "100.64.0.1") ())
       ~announced:[ Msg.nlri prefix ]
       ())

let withdraw fx prefix =
  Router.process_neighbor_update fx.router ~neighbor_id:fx.n1
    (Msg.update ~withdrawn:[ Msg.nlri prefix ] ())

let fwd fx ?(src_mac = Mac.local ~pool:9 9) p =
  let dst =
    match Router.neighbor fx.router fx.n1 with
    | Some ns -> ns.Router.info.Neighbor.virtual_mac
    | None -> Mac.zero
  in
  Router.forward_experiment_frame fx.router ~neighbor_id:fx.n1
    { Eth.dst; src = src_mac; ethertype = Eth.Ipv4;
      payload = Ipv4_packet.encode p }

(* -- flow cache -------------------------------------------------------------------- *)

let test_flow_cache_hits () =
  let fx = make_router () in
  announce fx (pfx "192.168.0.0/24");
  let p = packet ~dst:"192.168.0.9" () in
  fwd fx p;
  fwd fx p;
  fwd fx p;
  let c = Router.counters fx.router in
  checki "one miss" 1 c.Router.flow_misses;
  checki "two hits" 2 c.Router.flow_hits;
  checki "all delivered" 3 (List.length !(fx.delivered));
  checkb "hit and miss deliveries identical" true
    (List.for_all
       (fun q -> q = Ipv4_packet.decrement_ttl p)
       !(fx.delivered))

let test_invalidate_on_fib_change () =
  let fx = make_router () in
  announce fx (pfx "192.168.0.0/24");
  let p = packet ~dst:"192.168.0.9" () in
  fwd fx p;
  fwd fx p;
  let c = Router.counters fx.router in
  checki "warm" 1 c.Router.flow_hits;
  (* Any FIB mutation bumps the table generation. *)
  announce fx (pfx "192.168.0.0/16");
  fwd fx p;
  checki "fib change forces a miss" 2 c.Router.flow_misses;
  checki "no stale hit" 1 c.Router.flow_hits;
  checki "still delivered" 3 (List.length !(fx.delivered));
  (* Withdraw everything: the cached forward must not survive. *)
  withdraw fx (pfx "192.168.0.0/24");
  withdraw fx (pfx "192.168.0.0/16");
  fwd fx p;
  checki "withdraw forces a miss" 3 c.Router.flow_misses;
  checki "no delivery without a route" 3 (List.length !(fx.delivered));
  checki "dropped instead" 1 c.Router.packets_dropped

let test_invalidate_on_add_filter () =
  let fx = make_router () in
  announce fx (pfx "192.168.0.0/24");
  let p = packet ~dst:"192.168.0.9" () in
  fwd fx p;
  fwd fx p;
  let c = Router.counters fx.router in
  checki "warm" 1 c.Router.flow_hits;
  Data_enforcer.add_filter
    (Router.data_enforcer fx.router)
    (Data_enforcer.filter ~stateless:true ~name:"block-all"
       (fun ~now:_ ~meta:_ _ -> Data_enforcer.Block "policy"));
  fwd fx p;
  checki "chain change forces a miss" 2 c.Router.flow_misses;
  checki "blocked" 1 c.Router.packets_dropped;
  checki "not delivered" 2 (List.length !(fx.delivered));
  (* The memoized block is replayed on the next hit, with identical
     per-filter accounting. *)
  fwd fx p;
  checki "cached block hit" 2 c.Router.flow_hits;
  checki "blocked again" 2 c.Router.packets_dropped;
  checkb "filter stats replayed" true
    (Data_enforcer.filter_stats (Router.data_enforcer fx.router)
    = [ ("block-all", 0, 2) ])

let test_invalidate_on_experiment_attach () =
  let fx = make_router () in
  announce fx (pfx "192.168.0.0/24");
  let exp_mac = Mac.local ~pool:2 1 in
  let p = packet ~dst:"192.168.0.9" () in
  fwd fx ~src_mac:exp_mac p;
  fwd fx ~src_mac:exp_mac p;
  let c = Router.counters fx.router in
  checki "warm" 1 c.Router.flow_hits;
  checkb "unattributed before attach" true (Router.attribution fx.router = []);
  (* Attaching an experiment on that MAC changes ingress attribution; the
     memoized decision must not outlive it. *)
  let grant =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      "exp001"
  in
  let pair = Router.connect_experiment fx.router ~grant ~mac:exp_mac () in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let misses_before = c.Router.flow_misses in
  fwd fx ~src_mac:exp_mac p;
  checki "attach forces a miss" (misses_before + 1) c.Router.flow_misses;
  checkb "re-resolved flow attributes to the experiment" true
    (match Router.attribution fx.router with
    | [ ("exp001", pkts, _, _) ] -> pkts = 1
    | _ -> false)

let test_invalidate_on_owner_change () =
  (* Experiment detach surfaces as route withdrawal → [owner_remove];
     both directions of owner-table churn must stamp out cached flows. *)
  let fx = make_router () in
  announce fx (pfx "192.168.0.0/24");
  let p = packet ~dst:"192.168.0.9" () in
  fwd fx p;
  fwd fx p;
  let c = Router.counters fx.router in
  Router_state.owner_insert fx.router
    (pfx "184.164.224.0/24")
    (Router_state.Local_exp "exp001");
  fwd fx p;
  checki "owner insert forces a miss" 2 c.Router.flow_misses;
  fwd fx p;
  checki "then warms again" 2 c.Router.flow_hits;
  Router_state.owner_remove fx.router (pfx "184.164.224.0/24");
  fwd fx p;
  checki "owner remove forces a miss" 3 c.Router.flow_misses;
  checki "every frame still delivered" 5 (List.length !(fx.delivered))

(* -- stateful tail under the cache ------------------------------------------------- *)

let shaper_chain () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.shaper ~name:"pop-shaper" ~rate:0. ~burst:100.
       ~key_of:(fun _ -> "pop") ());
  d

let test_shaper_under_cache () =
  (* 50-byte packets against a 100-byte non-refilling bucket: exactly two
     pass no matter how warm the flow cache is — the stateful tail debits
     tokens on every packet, hit or miss. *)
  let run ~flow_cache =
    let fx = make_router ~data:(shaper_chain ()) ~flow_cache () in
    announce fx (pfx "192.168.0.0/24");
    let p = packet ~dst:"192.168.0.9" ~payload:(String.make 30 'x') () in
    for _ = 1 to 5 do
      fwd fx p
    done;
    fx
  in
  let cached = run ~flow_cache:true in
  let slow = run ~flow_cache:false in
  let cc = Router.counters cached.router in
  let sc = Router.counters slow.router in
  checki "cached: two delivered" 2 (List.length !(cached.delivered));
  checki "cached: three shaped off" 3 cc.Router.packets_dropped;
  checki "cached: first frame missed" 1 cc.Router.flow_misses;
  checki "cached: rest hit" 4 cc.Router.flow_hits;
  checkb "identical deliveries either way" true
    (!(cached.delivered) = !(slow.delivered));
  checki "identical drops either way" sc.Router.packets_dropped
    cc.Router.packets_dropped;
  checkb "identical enforcer stats" true
    (Data_enforcer.stats (Router.data_enforcer cached.router)
    = Data_enforcer.stats (Router.data_enforcer slow.router))

(* -- differential property: cached == slow path ------------------------------------ *)

type op =
  | Fwd of int * int * int  (* flow index, ttl index, payload length *)
  | Announce of int
  | Withdraw of int
  | Add_noop_filter

let prefixes =
  [|
    pfx "192.168.0.0/24"; pfx "192.168.1.0/24"; pfx "10.9.0.0/16";
    pfx "172.16.0.0/24";
  |]

let dsts = [| "192.168.0.7"; "192.168.1.7"; "10.9.0.7"; "172.16.0.7" |]
let srcs = [| "184.164.224.1"; "184.164.224.2" |]
let ttls = [| 1; 2; 64 |]

(* A chain with a stateless head (blocks one destination block) and a
   stateful tail (non-refilling per-source shaper), so random runs mix
   memoized blocks, memoized forwards, tail blocks, and TTL expiry. *)
let diff_chain () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.filter ~stateless:true ~name:"no-10-9"
       (fun ~now:_ ~meta:_ (p : Ipv4_packet.t) ->
         if Prefix.mem p.Ipv4_packet.dst (pfx "10.9.0.0/16") then
           Data_enforcer.Block "blackholed destination"
         else Data_enforcer.Allow));
  Data_enforcer.add_filter d
    (Data_enforcer.shaper ~name:"src-shaper" ~rate:0. ~burst:600.
       ~key_of:(fun (p : Ipv4_packet.t) ->
         Ipv4.to_string p.Ipv4_packet.src)
       ());
  d

let apply_op fx = function
  | Fwd (flow, ttl_i, payload_len) ->
      let p =
        packet
          ~src:srcs.(flow mod Array.length srcs)
          ~dst:dsts.(flow mod Array.length dsts)
          ~ttl:ttls.(ttl_i mod Array.length ttls)
          ~payload:(String.make (payload_len mod 32) 'x')
          ()
      in
      fwd fx p
  | Announce i -> announce fx prefixes.(i mod Array.length prefixes)
  | Withdraw i -> withdraw fx prefixes.(i mod Array.length prefixes)
  | Add_noop_filter ->
      Data_enforcer.add_filter
        (Router.data_enforcer fx.router)
        (Data_enforcer.filter ~stateless:true ~name:"noop"
           (fun ~now:_ ~meta:_ _ -> Data_enforcer.Allow))

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 10,
          map3
            (fun a b c -> Fwd (a, b, c))
            (int_bound 7) (int_bound 2) (int_bound 31) );
        (1, map (fun i -> Announce i) (int_bound 3));
        (1, map (fun i -> Withdraw i) (int_bound 3));
        (1, return Add_noop_filter);
      ])

let prop_cached_equals_slow =
  QCheck.Test.make ~name:"flow cache is invisible except for speed"
    ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 80) gen_op))
    (fun ops ->
      let cached = make_router ~data:(diff_chain ()) ~flow_cache:true () in
      let slow = make_router ~data:(diff_chain ()) ~flow_cache:false () in
      (* Seed one route so the first frames have somewhere to go. *)
      announce cached prefixes.(0);
      announce slow prefixes.(0);
      List.iter
        (fun op ->
          apply_op cached op;
          apply_op slow op)
        ops;
      let cc = Router.counters cached.router in
      let sc = Router.counters slow.router in
      !(cached.delivered) = !(slow.delivered)
      && cc.Router.packets_to_neighbors = sc.Router.packets_to_neighbors
      && cc.Router.packets_to_experiments = sc.Router.packets_to_experiments
      && cc.Router.packets_over_backbone = sc.Router.packets_over_backbone
      && cc.Router.packets_dropped = sc.Router.packets_dropped
      && cc.Router.icmp_sent = sc.Router.icmp_sent
      && Data_enforcer.stats (Router.data_enforcer cached.router)
         = Data_enforcer.stats (Router.data_enforcer slow.router)
      && Data_enforcer.filter_stats (Router.data_enforcer cached.router)
         = Data_enforcer.filter_stats (Router.data_enforcer slow.router)
      && sc.Router.flow_hits = 0
      && sc.Router.flow_misses = 0)

(* -- enforcement chain mechanics --------------------------------------------------- *)

let test_add_filter_order_and_stats () =
  let d = Data_enforcer.create () in
  for i = 1 to 5 do
    Data_enforcer.add_filter d
      (Data_enforcer.filter ~stateless:true
         ~name:(Printf.sprintf "f%d" i)
         (fun ~now:_ ~meta:_ _ -> Data_enforcer.Allow))
  done;
  checkb "insertion order preserved" true
    (Data_enforcer.filters d = [ "f1"; "f2"; "f3"; "f4"; "f5" ]);
  let meta = { Data_enforcer.ingress = "x" } in
  ignore (Data_enforcer.check d ~now:0. ~meta (packet ()));
  checkb "every filter credited once" true
    (Data_enforcer.filter_stats d
    = List.init 5 (fun i -> (Printf.sprintf "f%d" (i + 1), 1, 0)));
  checki "five adds, five generations" 5 (Data_enforcer.generation d)

let test_shaper_bucket_eviction () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.shaper ~name:"s" ~rate:1000. ~burst:50. ~idle_horizon:10.
       ~key_of:(fun (p : Ipv4_packet.t) -> Ipv4.to_string p.Ipv4_packet.dst)
       ());
  let meta = { Data_enforcer.ingress = "x" } in
  let send now dst =
    ignore (Data_enforcer.check d ~now ~meta (packet ~dst ~payload:"" ()))
  in
  (* Exhaust the 50-byte burst for one destination at t=0... *)
  send 0. "192.168.0.1";
  send 0. "192.168.0.1";
  checkb "burst exhausted" true
    (match
       Data_enforcer.check d ~now:0. ~meta (packet ~dst:"192.168.0.1" ())
     with
    | Data_enforcer.Blocked _ -> true
    | _ -> false);
  (* ...then churn fresh keys past the idle horizon: the stale bucket is
     evicted, so the key starts over at full burst (not mid-debt). *)
  send 20. "192.168.0.2";
  checkb "idle bucket forgotten" true
    (match
       Data_enforcer.check d ~now:20. ~meta
         (packet ~dst:"192.168.0.1" ~payload:"" ())
     with
    | Data_enforcer.Allowed _ -> true
    | _ -> false)

let () =
  Alcotest.run "fastpath"
    [
      ( "view",
        [
          Alcotest.test_case "accessors + round trip" `Quick
            test_view_accessors;
          Alcotest.test_case "validation matches decode" `Quick
            test_view_validation;
          Alcotest.test_case "ttl decrement matches re-encode" `Quick
            test_ttl_decrement_matches_reencode;
          QCheck_alcotest.to_alcotest prop_incremental_checksum;
        ] );
      ( "flow-cache",
        [
          Alcotest.test_case "hits after first packet" `Quick
            test_flow_cache_hits;
          Alcotest.test_case "invalidated by fib change" `Quick
            test_invalidate_on_fib_change;
          Alcotest.test_case "invalidated by add_filter" `Quick
            test_invalidate_on_add_filter;
          Alcotest.test_case "invalidated by experiment attach" `Quick
            test_invalidate_on_experiment_attach;
          Alcotest.test_case "invalidated by owner churn" `Quick
            test_invalidate_on_owner_change;
          Alcotest.test_case "stateful shaper still runs per packet" `Quick
            test_shaper_under_cache;
          QCheck_alcotest.to_alcotest prop_cached_equals_slow;
        ] );
      ( "enforcer",
        [
          Alcotest.test_case "add_filter order + per-filter stats" `Quick
            test_add_filter_order_and_stats;
          Alcotest.test_case "shaper evicts idle buckets" `Quick
            test_shaper_bucket_eviction;
        ] );
    ]
