(* Chaos suite: fault-injected runs must converge to the state of a
   never-faulted control run. Two identical worlds are built from the same
   seed; one absorbs faults from [Sim.Fault] and heals; afterwards the
   experiment RIBs, per-neighbor Adj-RIB-Outs, neighbor heard-tables, and
   FIBs must be indistinguishable from the control's. A flap shorter than
   the graceful-restart window must additionally be invisible on the wire:
   zero withdrawals and zero re-export recomputations. *)

open Netcore
open Bgp
open Peering

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let pfx = Prefix.of_string_exn

type world = {
  platform : Platform.t;
  pop : Pop.t;
  hosts : Neighbor_host.t list;
  kit : Toolkit.t;
}

(* One PoP against a seed-determined synthetic Internet, with a connected
   experiment announcing its first granted prefix. Identical seeds build
   identical worlds — the basis of the control-vs-faulted comparison. *)
let build_world ~seed () =
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 6; stub = 24; seed }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(pfx "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 12) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let hosts =
    Platform.populate_pop platform ~pop ~internet ~transits:2 ~peers:2 ()
  in
  Platform.run platform ~seconds:10.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"chaos" ~team:"chaos" ~goals:"convergence" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop);
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  Toolkit.announce kit (List.hd grant.Vbgp.Control_enforcer.prefixes);
  Platform.run platform ~seconds:10.;
  { platform; pop; hosts; kit }

(* -- canonical, time-independent serializations of converged state -------- *)

let route_line (r : Rib.Route.t) =
  Fmt.str "%a/%s from %a: %a" Prefix.pp r.Rib.Route.prefix
    (match r.Rib.Route.path_id with Some i -> string_of_int i | None -> "-")
    Ipv4.pp r.Rib.Route.source.Rib.Route.peer_ip Attr.pp_set
    (Rib.Route.attrs r)

(* Everything the acceptance criteria compare: the experiment's RIB, each
   neighbor's Adj-RIB-Out and heard-table, every per-neighbor FIB, and the
   router's total route count. [learned_at] timestamps are deliberately
   excluded — a healed world re-learns routes at different times. *)
let fingerprint w =
  let router = Pop.router w.pop in
  let exp_rib =
    List.sort compare (List.map route_line (Toolkit.routes w.kit ~pop:"pop01"))
  in
  let adj_out =
    List.concat_map
      (fun h ->
        let id = Neighbor_host.neighbor_id h in
        List.map
          (fun (p, attrs) ->
            Fmt.str "%d %a %a" id Prefix.pp p Attr.pp_set attrs)
          (Vbgp.Router.adj_out_routes router ~neighbor_id:id))
      w.hosts
    |> List.sort compare
  in
  let heard =
    List.concat_map
      (fun h ->
        Hashtbl.fold
          (fun p attrs acc ->
            Fmt.str "%d %a %a"
              (Neighbor_host.neighbor_id h)
              Prefix.pp p Attr.pp_set attrs
            :: acc)
          h.Neighbor_host.heard [])
      w.hosts
    |> List.sort compare
  in
  let fibs =
    let set = Vbgp.Router.fib_set router in
    List.concat_map
      (fun id ->
        match Rib.Fib.Set.find set id with
        | Some fib ->
            Rib.Fib.fold
              (fun p (e : Rib.Fib.entry) acc ->
                Fmt.str "%d %a via %a@%d" id Prefix.pp p Ipv4.pp
                  e.Rib.Fib.next_hop e.Rib.Fib.neighbor
                :: acc)
              fib []
        | None -> [])
      (List.sort compare (Rib.Fib.Set.table_ids set))
    |> List.sort compare
  in
  (exp_rib, adj_out, heard, fibs, Vbgp.Router.route_count router)

let check_converged ~seed ?fault control faulted =
  let c_rib, c_adj, c_heard, c_fib, c_count = fingerprint control in
  let f_rib, f_adj, f_heard, f_fib, f_count = fingerprint faulted in
  (* On failure the message carries the exact fault script that broke
     convergence, ready to replay. *)
  let script =
    match fault with
    | Some f -> Printf.sprintf "\nfault script:\n%s" (Sim.Fault.script f)
    | None -> ""
  in
  let tag what =
    Printf.sprintf "seed %d: %s matches control%s" seed what script
  in
  Alcotest.(check (list string)) (tag "experiment RIB") c_rib f_rib;
  Alcotest.(check (list string)) (tag "Adj-RIB-Out") c_adj f_adj;
  Alcotest.(check (list string)) (tag "neighbor heard-tables") c_heard f_heard;
  Alcotest.(check (list string)) (tag "per-neighbor FIBs") c_fib f_fib;
  checki (tag "router route count") c_count f_count

let run_seconds w s = Platform.run w.platform ~seconds:s

(* -- convergence across a seed matrix -------------------------------------- *)

(* Kill every neighbor session pair simultaneously (the shape of a real
   transport loss); auto-reconnect plus graceful restart must converge the
   world back to the control's exact state. *)
let test_kill_converges () =
  List.iter
    (fun seed ->
      let control = build_world ~seed () in
      let faulted = build_world ~seed () in
      let fault = Sim.Fault.create (Platform.engine faulted.platform) in
      List.iter
        (fun h -> Sim.Fault.kill_pair fault ~at:1.0 h.Neighbor_host.pair)
        faulted.hosts;
      run_seconds control 60.;
      run_seconds faulted 60.;
      List.iter
        (fun h ->
          checkb
            (Printf.sprintf "seed %d: neighbor re-established" seed)
            true
            (Neighbor_host.is_established h);
          checkb
            (Printf.sprintf "seed %d: flap counted" seed)
            true
            (Neighbor_host.flap_count h >= 1))
        faulted.hosts;
      let counters = Vbgp.Router.counters (Pop.router faulted.pop) in
      checkb
        (Printf.sprintf "seed %d: drops answered with stale retention" seed)
        true
        (counters.Vbgp.Router.gr_retentions >= List.length faulted.hosts);
      check_converged ~seed ~fault control faulted)
    [ 1; 7; 42; 1337 ]

(* A sub-window flap must be invisible on the wire: no withdrawals reach
   any neighbor, no re-export recomputation happens, and the stale marks
   are swept clean by the peers' End-of-RIB. *)
let test_quiet_restart () =
  let w = build_world ~seed:5 () in
  let router = Pop.router w.pop in
  let victim = List.hd w.hosts in
  let withdrawals_before =
    List.map (fun h -> Neighbor_host.withdrawals_seen h) w.hosts
  in
  let reexports_before =
    (Vbgp.Router.counters router).Vbgp.Router.reexport_computations
  in
  let fault = Sim.Fault.create (Platform.engine w.platform) in
  Sim.Fault.kill_pair fault ~at:1.0 victim.Neighbor_host.pair;
  run_seconds w 60.;
  checkb "victim re-established" true (Neighbor_host.is_established victim);
  checki "stale marks swept after resync" 0
    (Vbgp.Router.stale_count router
       ~neighbor_id:(Neighbor_host.neighbor_id victim));
  List.iteri
    (fun i h ->
      checki
        (Printf.sprintf "host %d saw zero withdrawals" i)
        (List.nth withdrawals_before i)
        (Neighbor_host.withdrawals_seen h))
    w.hosts;
  checki "no re-export recomputation" reexports_before
    (Vbgp.Router.counters router).Vbgp.Router.reexport_computations;
  let counters = Vbgp.Router.counters router in
  checkb "retention, not expiry" true
    (counters.Vbgp.Router.gr_retentions >= 1
    && counters.Vbgp.Router.gr_expiries = 0)

(* An outage longer than the restart window takes the hard-drop path
   (stale routes withdrawn at expiry) — and the world still converges to
   the control once the link heals and the full tables resync. *)
let test_window_expiry_converges () =
  let seed = 7 in
  let control = build_world ~seed () in
  let faulted = build_world ~seed () in
  let victim = List.hd faulted.hosts in
  let fault = Sim.Fault.create (Platform.engine faulted.platform) in
  (* Down for 300 s — past the 120 s restart window the routers advertise —
     with the session killed outright at the start of the outage. *)
  Sim.Fault.link_down fault ~at:0.5 ~duration:300.
    victim.Neighbor_host.pair.Sim.Bgp_wire.link;
  Sim.Fault.kill_pair fault ~at:1.0 victim.Neighbor_host.pair;
  run_seconds control 600.;
  run_seconds faulted 600.;
  let counters = Vbgp.Router.counters (Pop.router faulted.pop) in
  checkb "window expired into the hard-drop path" true
    (counters.Vbgp.Router.gr_expiries >= 1);
  checkb "victim re-established after the outage" true
    (Neighbor_host.is_established victim);
  check_converged ~seed ~fault control faulted

(* Repeated kills against a held-down link must walk the reconnect ladder
   to its ceiling while the flap counter bills exactly one flap per kill —
   no double-counting from the stalled handshakes in between. Kills are
   spaced wider than the (jittered) backoff cap and tighter than the hold
   timer, so every kill lands on a live FSM and no hold expiry sneaks an
   extra flap in. *)
let test_backoff_cap_and_flap_accounting () =
  let w = build_world ~seed:11 () in
  let victim = List.hd w.hosts in
  let pair = victim.Neighbor_host.pair in
  let session = pair.Sim.Bgp_wire.active in
  let fault = Sim.Fault.create (Platform.engine w.platform) in
  let kills = 10 in
  Sim.Fault.at fault ~at:0.5 ~target:"victim" "hold link down" (fun () ->
      Sim.Link.set_up pair.Sim.Bgp_wire.link false);
  for k = 0 to kills - 1 do
    Sim.Fault.kill_pair fault
      ~at:(1.0 +. (40.0 *. float_of_int k))
      ~target:"victim" pair
  done;
  run_seconds w 390.;
  let ctx = Printf.sprintf "\nfault script:\n%s" (Sim.Fault.script fault) in
  checki
    (Printf.sprintf "flap_count equals injected kills exactly%s" ctx)
    kills (Session.flap_count session);
  (match Session.next_backoff session with
  | Some d -> Alcotest.(check (float 1e-9)) "next_backoff capped" 30.0 d
  | None -> Alcotest.fail "victim session has no reconnect policy");
  checkb "backoff level climbed past the cap point" true
    (Session.backoff_level session >= 7);
  (* Heal the link: establishment resets the ladder back to the base. *)
  Sim.Fault.at fault ~at:0.0 ~target:"victim" "heal link" (fun () ->
      Sim.Link.set_up pair.Sim.Bgp_wire.link true);
  run_seconds w 210.;
  checkb "victim re-established after heal" true
    (Neighbor_host.is_established victim);
  match Session.next_backoff session with
  | Some d -> Alcotest.(check (float 1e-9)) "backoff reset on Established" 0.5 d
  | None -> Alcotest.fail "victim session has no reconnect policy"

let () =
  Alcotest.run "chaos"
    [
      ( "convergence",
        [
          Alcotest.test_case "kill all sessions, converge (seed matrix)"
            `Quick test_kill_converges;
          Alcotest.test_case "sub-window flap is silent on the wire" `Quick
            test_quiet_restart;
          Alcotest.test_case "window expiry hard-drops, still converges"
            `Quick test_window_expiry_converges;
          Alcotest.test_case "backoff caps at ceiling, flaps counted exactly"
            `Quick test_backoff_cap_and_flap_accounting;
        ] );
    ]
