(* Tests for the hash-consing attribute arena: physical uniqueness,
   GC-backed reclamation, and the differential property that interned and
   plain attribute sets are observationally identical (accessors, codec
   round-trip, decision ordering). *)

open Netcore
open Bgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let attrs ?(path = [ 100; 200 ]) ?(nh = "10.0.0.1") ?(lp = None) ?(med = None)
    ?(comms = []) () =
  let base =
    Attr.origin_attrs
      ~as_path:(Aspath.of_asns (List.map asn path))
      ~next_hop:(ip nh) ()
  in
  let base = match lp with Some l -> Attr.with_local_pref l base | None -> base in
  let base = match med with Some m -> Attr.with_med m base | None -> base in
  if comms = [] then base else Attr.with_communities comms base

(* -- arena basics ----------------------------------------------------------- *)

let test_intern_physically_equal () =
  let arena = Attr_arena.create () in
  let a = Attr_arena.intern ~arena (attrs ()) in
  let b = Attr_arena.intern ~arena (attrs ()) in
  checkb "same set interns to the same handle" true (a == b);
  checkb "Attr_arena.equal agrees" true (Attr_arena.equal a b);
  checki "same id" (Attr_arena.id a) (Attr_arena.id b);
  let c = Attr_arena.intern ~arena (attrs ~path:[ 100 ] ()) in
  checkb "different set is a different handle" false (Attr_arena.equal a c);
  let stats = Attr_arena.stats ~arena () in
  checki "two misses" 2 stats.Attr_arena.misses;
  checki "one hit" 1 stats.Attr_arena.hits

let test_intern_canonicalizes_order () =
  let arena = Attr_arena.create () in
  (* Same attributes, scrambled order: one canonical handle. *)
  let sorted = Attr.sort (attrs ~lp:(Some 200) ~med:(Some 7) ()) in
  let scrambled = List.rev sorted in
  let a = Attr_arena.intern ~arena sorted in
  let b = Attr_arena.intern ~arena scrambled in
  checkb "order-insensitive interning" true (Attr_arena.equal a b);
  checkb "handle set is sorted" true (Attr_arena.set a = Attr.sort sorted)

let test_arena_survives_gc () =
  let arena = Attr_arena.create () in
  let keep = Attr_arena.intern ~arena (attrs ()) in
  (* Intern a batch of distinct sets without retaining the handles. *)
  for i = 1 to 64 do
    ignore (Attr_arena.intern ~arena (attrs ~med:(Some i) ()))
  done;
  let before = (Attr_arena.stats ~arena ()).Attr_arena.live in
  checkb "all entries live before GC" true (before >= 65);
  Gc.full_major ();
  Gc.full_major ();
  let after = (Attr_arena.stats ~arena ()).Attr_arena.live in
  checkb "unreferenced entries reclaimed" true (after < before);
  (* The retained handle must still be canonical after the collection. *)
  let again = Attr_arena.intern ~arena (attrs ()) in
  checkb "retained handle survives GC" true (Attr_arena.equal keep again)

(* -- striped locks and the per-domain front cache ---------------------------- *)

let test_striped_counters () =
  let arena = Attr_arena.create () in
  (* Retain the handles so weak reclamation can't perturb the counts. *)
  let keep =
    List.init 100 (fun i ->
        Attr_arena.intern ~arena (attrs ~med:(Some (i mod 10)) ()))
  in
  ignore (Sys.opaque_identity keep);
  let st = Attr_arena.stats ~arena () in
  checki "every intern takes exactly one stripe lock" 100 st.Attr_arena.locks;
  checki "sequential interning never contends" 0 st.Attr_arena.contended;
  checki "hits + misses = interns" 100
    (st.Attr_arena.hits + st.Attr_arena.misses);
  checki "ten distinct sets missed" 10 st.Attr_arena.misses;
  Attr_arena.reset_stats ~arena ();
  let st = Attr_arena.stats ~arena () in
  checki "reset clears lock counters" 0 (st.Attr_arena.locks + st.Attr_arena.contended)

let test_front_cache () =
  let arena = Attr_arena.create () in
  let front = Attr_arena.Front.create ~arena () in
  let a = Attr_arena.Front.intern front (attrs ()) in
  let b = Attr_arena.Front.intern front (attrs ()) in
  checkb "front returns the canonical handle" true (a == b);
  checki "second intern hits the front cache" 1 (Attr_arena.Front.hits front);
  checki "first intern missed through to the arena" 1
    (Attr_arena.Front.misses front);
  (* A front hit must not touch the arena stripes at all. *)
  let st = Attr_arena.stats ~arena () in
  checki "arena saw exactly one intern" 1 st.Attr_arena.locks;
  let c = Attr_arena.intern ~arena (attrs ()) in
  checkb "front and direct intern agree on the handle" true
    (Attr_arena.equal a c)

(* -- differential: interned vs plain ---------------------------------------- *)

let test_differential_accessors () =
  let plain =
    attrs ~path:[ 47065; 263842 ] ~nh:"172.16.9.9" ~lp:(Some 150)
      ~med:(Some 42)
      ~comms:[ Community.make 65000 7; Community.make 100 1 ]
      ()
  in
  let interned = Attr_arena.intern_set plain in
  checkb "as_path" true (Attr.as_path plain = Attr.as_path interned);
  checkb "next_hop" true (Attr.next_hop plain = Attr.next_hop interned);
  checkb "local_pref" true (Attr.local_pref plain = Attr.local_pref interned);
  checkb "med" true (Attr.med plain = Attr.med interned);
  checkb "origin" true (Attr.origin plain = Attr.origin interned);
  checkb "communities" true
    (Attr.communities plain = Attr.communities interned);
  checkb "equal_set both ways" true
    (Attr.equal_set plain interned && Attr.equal_set interned plain)

let test_differential_codec () =
  let plain =
    attrs ~path:[ 61574; 263842 ] ~lp:(Some 120)
      ~comms:[ Community.make 47065 1000 ]
      ()
  in
  let interned = Attr_arena.intern_set plain in
  let encode a =
    Codec.encode
      (Msg.Update (Msg.update ~attrs:a ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ] ()))
  in
  (* Canonical sorting means the interned set encodes byte-identically. *)
  checks "byte-identical wire encoding" (encode (Attr.sort plain))
    (encode interned);
  match Codec.decode_exn (encode interned) with
  | Msg.Update u ->
      checkb "round-trip preserves equality" true
        (Attr.equal_set u.Msg.attrs plain)
  | _ -> Alcotest.fail "expected UPDATE"

let test_differential_decision () =
  let source = Rib.Route.source ~peer_ip:(ip "1.1.1.1") ~peer_asn:(asn 100) () in
  let source2 =
    Rib.Route.source ~peer_ip:(ip "2.2.2.2") ~peer_asn:(asn 200) ()
  in
  let prefix = pfx "10.0.0.0/24" in
  let a_plain = attrs ~path:[ 100 ] ~lp:(Some 300) () in
  let b_plain = attrs ~path:[ 200; 300 ] ~lp:(Some 100) () in
  let mk attrs source = Rib.Route.make ~prefix ~attrs ~source () in
  let plain_cmp =
    Rib.Decision.compare (mk a_plain source) (mk b_plain source2)
  in
  let interned_cmp =
    Rib.Decision.compare
      (mk (Attr_arena.intern_set a_plain) source)
      (mk (Attr_arena.intern_set b_plain) source2)
  in
  checkb "decision ordering unchanged by interning" true
    (plain_cmp = interned_cmp && plain_cmp < 0)

let () =
  Alcotest.run "arena"
    [
      ( "arena",
        [
          Alcotest.test_case "intern is physically unique" `Quick
            test_intern_physically_equal;
          Alcotest.test_case "intern canonicalizes order" `Quick
            test_intern_canonicalizes_order;
          Alcotest.test_case "weak arena survives gc" `Quick
            test_arena_survives_gc;
          Alcotest.test_case "stripe lock counters" `Quick
            test_striped_counters;
          Alcotest.test_case "front cache fronts the stripes" `Quick
            test_front_cache;
        ] );
      ( "differential",
        [
          Alcotest.test_case "accessors identical" `Quick
            test_differential_accessors;
          Alcotest.test_case "codec identical" `Quick test_differential_codec;
          Alcotest.test_case "decision ordering identical" `Quick
            test_differential_decision;
        ] );
    ]
