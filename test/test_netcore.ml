(* Unit and property tests for the netcore substrate: addresses, prefixes,
   MACs, checksums, packet codecs, and the prefix trie. *)

open Netcore


let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* -- IPv4 ------------------------------------------------------------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> checks s s (Ipv4.to_string (Ipv4.of_string_exn s)))
    [ "0.0.0.0"; "1.2.3.4"; "10.255.0.1"; "192.168.100.200"; "255.255.255.255" ]

let test_ipv4_invalid () =
  List.iter
    (fun s -> checkb s true (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.2.3.4"; "a.b.c.d"; "1..2.3" ]

let test_ipv4_unsigned_compare () =
  let lo = Ipv4.of_string_exn "1.0.0.0" in
  let hi = Ipv4.of_string_exn "200.0.0.0" in
  checkb "1.0.0.0 < 200.0.0.0" true (Ipv4.compare lo hi < 0);
  checkb "255.255.255.255 is max" true
    (Ipv4.compare Ipv4.broadcast hi > 0);
  checkb "equal" true (Ipv4.compare lo lo = 0)

let test_ipv4_arithmetic () =
  let a = Ipv4.of_string_exn "10.0.0.255" in
  checks "carry" "10.0.1.0" (Ipv4.to_string (Ipv4.succ a));
  checki "diff" 256 (Ipv4.diff (Ipv4.add a 1) (Ipv4.of_string_exn "10.0.0.0"));
  let b, c, d, e = Ipv4.octets (Ipv4.of_string_exn "1.2.3.4") in
  checki "octet1" 1 b;
  checki "octet2" 2 c;
  checki "octet3" 3 d;
  checki "octet4" 4 e

let test_ipv4_private () =
  checkb "10/8" true (Ipv4.is_private (Ipv4.of_string_exn "10.1.2.3"));
  checkb "172.16" true (Ipv4.is_private (Ipv4.of_string_exn "172.16.0.1"));
  checkb "172.32" false (Ipv4.is_private (Ipv4.of_string_exn "172.32.0.1"));
  checkb "192.168" true (Ipv4.is_private (Ipv4.of_string_exn "192.168.1.1"));
  checkb "8.8.8.8" false (Ipv4.is_private (Ipv4.of_string_exn "8.8.8.8"))

(* -- IPv6 ------------------------------------------------------------------- *)

let test_ipv6_roundtrip () =
  List.iter
    (fun (input, expect) ->
      checks input expect (Ipv6.to_string (Ipv6.of_string_exn input)))
    [
      ("::", "::");
      ("::1", "::1");
      ("2001:db8::", "2001:db8::");
      ("2001:db8::1", "2001:db8::1");
      ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1");
      ("fe80::1:2:3:4", "fe80::1:2:3:4");
      ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8");
      ("2002::", "2002::");
    ]

let test_ipv6_invalid () =
  List.iter
    (fun s -> checkb s true (Ipv6.of_string s = None))
    [ ""; "1:2:3"; "1:2:3:4:5:6:7:8:9"; "gggg::"; "12345::" ]

let test_ipv6_bits () =
  let a = Ipv6.of_string_exn "8000::" in
  checkb "bit 0 set" true (Ipv6.bit a 0);
  checkb "bit 1 clear" false (Ipv6.bit a 1);
  let b = Ipv6.set_bit Ipv6.any 127 true in
  checkb "set bit 127" true (Ipv6.equal b Ipv6.localhost);
  let c = Ipv6.set_bit b 127 false in
  checkb "clear bit 127" true (Ipv6.equal c Ipv6.any)

(* -- Prefix ------------------------------------------------------------------ *)

let test_prefix_normalization () =
  let p = Prefix.make (Ipv4.of_string_exn "10.1.2.3") 16 in
  checks "host bits cleared" "10.1.0.0/16" (Prefix.to_string p);
  checkb "equal to canonical" true
    (Prefix.equal p (Prefix.of_string_exn "10.1.0.0/16"))

let test_prefix_membership () =
  let p = Prefix.of_string_exn "192.168.0.0/24" in
  checkb "member" true (Prefix.mem (Ipv4.of_string_exn "192.168.0.200") p);
  checkb "not member" false (Prefix.mem (Ipv4.of_string_exn "192.168.1.0") p);
  checkb "default matches all" true
    (Prefix.mem (Ipv4.of_string_exn "8.8.8.8") Prefix.default)

let test_prefix_subset () =
  let sub = Prefix.of_string_exn "10.0.1.0/24" in
  let super = Prefix.of_string_exn "10.0.0.0/16" in
  checkb "subset" true (Prefix.subset ~sub ~super);
  checkb "not superset" false (Prefix.subset ~sub:super ~super:sub);
  checkb "reflexive" true (Prefix.subset ~sub ~super:sub)

let test_prefix_split_subnets () =
  let p = Prefix.of_string_exn "10.0.0.0/23" in
  let l, r = Prefix.split p in
  checks "left" "10.0.0.0/24" (Prefix.to_string l);
  checks "right" "10.0.1.0/24" (Prefix.to_string r);
  let subnets = Prefix.subnets (Prefix.of_string_exn "10.0.0.0/22") 24 in
  checki "4 subnets" 4 (List.length subnets);
  checks "last subnet" "10.0.3.0/24"
    (Prefix.to_string (List.nth subnets 3))

let test_prefix_host () =
  let p = Prefix.of_string_exn "10.0.0.0/24" in
  checks "host 1" "10.0.0.1" (Ipv4.to_string (Prefix.host p 1));
  checks "host 255" "10.0.0.255" (Ipv4.to_string (Prefix.host p 255));
  Alcotest.check_raises "out of range" (Invalid_argument "Prefix.host: out of range")
    (fun () -> ignore (Prefix.host p 256))

let test_prefix_v6 () =
  let p = Prefix_v6.of_string_exn "2001:db8::/32" in
  checkb "member" true (Prefix_v6.mem (Ipv6.of_string_exn "2001:db8::42") p);
  checkb "not member" false (Prefix_v6.mem (Ipv6.of_string_exn "2001:db9::") p);
  let sub = Prefix_v6.subnet p 48 5 in
  checks "subnet 5" "2001:db8:5::/48" (Prefix_v6.to_string sub);
  checkb "subnet is subset" true (Prefix_v6.subset ~sub ~super:p)

(* -- MAC --------------------------------------------------------------------- *)

let test_mac_roundtrip () =
  List.iter
    (fun s -> checks s s (Mac.to_string (Mac.of_string_exn s)))
    [ "00:00:00:00:00:00"; "02:65:00:00:12:34"; "ff:ff:ff:ff:ff:ff" ]

let test_mac_properties () =
  checkb "broadcast" true (Mac.is_broadcast Mac.broadcast);
  let m = Mac.local ~pool:0x65 7 in
  checkb "local admin bit" true (Mac.is_local_admin m);
  checkb "not broadcast" false (Mac.is_broadcast m);
  checkb "distinct pools" false
    (Mac.equal (Mac.local ~pool:1 7) (Mac.local ~pool:2 7));
  checkb "distinct indices" false
    (Mac.equal (Mac.local ~pool:1 7) (Mac.local ~pool:1 8))

(* -- Checksum ---------------------------------------------------------------- *)

let test_checksum () =
  (* A datagram with its checksum patched in verifies. *)
  let data = Bytes.of_string "\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let c = Checksum.of_string (Bytes.to_string data) in
  Bytes.set_uint16_be data 10 c;
  checkb "verifies after patch" true (Checksum.verify (Bytes.to_string data));
  checkb "detects corruption" false
    (Checksum.verify (Bytes.to_string data ^ "\x01"))

(* -- Ethernet / ARP / IPv4 / ICMP / UDP codecs -------------------------------- *)

let test_eth_roundtrip () =
  let frame =
    {
      Eth.dst = Mac.of_string_exn "02:00:00:00:00:01";
      src = Mac.of_string_exn "02:00:00:00:00:02";
      ethertype = Eth.Ipv4;
      payload = "hello world";
    }
  in
  match Eth.decode (Eth.encode frame) with
  | Ok f ->
      checkb "dst" true (Mac.equal f.Eth.dst frame.Eth.dst);
      checkb "src" true (Mac.equal f.Eth.src frame.Eth.src);
      checkb "ethertype" true (f.Eth.ethertype = Eth.Ipv4);
      checks "payload" "hello world" f.Eth.payload
  | Error e -> Alcotest.fail e

let test_eth_truncated () =
  checkb "truncated" true (Result.is_error (Eth.decode "short"))

let test_arp_roundtrip () =
  let req =
    Arp.request
      ~sender_mac:(Mac.of_string_exn "02:00:00:00:00:01")
      ~sender_ip:(Ipv4.of_string_exn "10.0.0.1")
      ~target_ip:(Ipv4.of_string_exn "10.0.0.2")
  in
  (match Arp.decode (Arp.encode req) with
  | Ok a ->
      checkb "op" true (a.Arp.op = Arp.Request);
      checks "target" "10.0.0.2" (Ipv4.to_string a.Arp.target_ip)
  | Error e -> Alcotest.fail e);
  let rep =
    Arp.reply
      ~sender_mac:(Mac.of_string_exn "02:00:00:00:00:03")
      ~sender_ip:(Ipv4.of_string_exn "10.0.0.2")
      ~target_mac:(Mac.of_string_exn "02:00:00:00:00:01")
      ~target_ip:(Ipv4.of_string_exn "10.0.0.1")
  in
  match Arp.decode (Arp.encode rep) with
  | Ok a ->
      checkb "op" true (a.Arp.op = Arp.Reply);
      checks "sender mac" "02:00:00:00:00:03" (Mac.to_string a.Arp.sender_mac)
  | Error e -> Alcotest.fail e

let test_ipv4_packet_roundtrip () =
  let p =
    Ipv4_packet.make ~ttl:17 ~ident:99
      ~src:(Ipv4.of_string_exn "1.2.3.4")
      ~dst:(Ipv4.of_string_exn "5.6.7.8")
      ~protocol:Ipv4_packet.Udp "payload bytes"
  in
  match Ipv4_packet.decode (Ipv4_packet.encode p) with
  | Ok q ->
      checks "src" "1.2.3.4" (Ipv4.to_string q.Ipv4_packet.src);
      checks "dst" "5.6.7.8" (Ipv4.to_string q.Ipv4_packet.dst);
      checki "ttl" 17 q.Ipv4_packet.ttl;
      checki "ident" 99 q.Ipv4_packet.ident;
      checks "payload" "payload bytes" q.Ipv4_packet.payload
  | Error e -> Alcotest.fail e

let test_ipv4_packet_checksum () =
  let p =
    Ipv4_packet.make
      ~src:(Ipv4.of_string_exn "1.2.3.4")
      ~dst:(Ipv4.of_string_exn "5.6.7.8")
      ~protocol:Ipv4_packet.Udp "x"
  in
  let encoded = Bytes.of_string (Ipv4_packet.encode p) in
  (* Corrupt a header byte: decode must fail. *)
  Bytes.set encoded 8 '\x01';
  checkb "corruption detected" true
    (Result.is_error (Ipv4_packet.decode (Bytes.to_string encoded)))

let test_ttl_decrement () =
  let p =
    Ipv4_packet.make ~ttl:3
      ~src:(Ipv4.of_string_exn "1.2.3.4")
      ~dst:(Ipv4.of_string_exn "5.6.7.8")
      ~protocol:Ipv4_packet.Icmp ""
  in
  checki "ttl decremented" 2 (Ipv4_packet.decrement_ttl p).Ipv4_packet.ttl

let test_icmp_roundtrip () =
  let msgs =
    [
      Icmp.Echo_request { id = 7; seq = 3; payload = "ping" };
      Icmp.Echo_reply { id = 7; seq = 3; payload = "pong" };
      Icmp.Ttl_exceeded { original = "original header bytes" };
      Icmp.Dest_unreachable { code = 3; original = "hdr" };
    ]
  in
  List.iter
    (fun m ->
      match Icmp.decode (Icmp.encode m) with
      | Ok m' -> checkb "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

let test_icmp_checksum () =
  let enc = Bytes.of_string (Icmp.encode (Icmp.Echo_request { id = 1; seq = 1; payload = "x" })) in
  Bytes.set enc 4 '\xff';
  checkb "corruption detected" true
    (Result.is_error (Icmp.decode (Bytes.to_string enc)))

let test_udp_roundtrip () =
  let d = { Udp.src_port = 1234; dst_port = 53; payload = "query" } in
  match Udp.decode (Udp.encode d) with
  | Ok d' ->
      checki "src port" 1234 d'.Udp.src_port;
      checki "dst port" 53 d'.Udp.dst_port;
      checks "payload" "query" d'.Udp.payload
  | Error e -> Alcotest.fail e

(* -- Wire --------------------------------------------------------------------- *)

let test_wire_writer_reader () =
  let w = Wire.Writer.create ~capacity:2 () in
  Wire.Writer.u8 w 0xab;
  Wire.Writer.u16 w 0x1234;
  Wire.Writer.u32 w 0xdeadbeefl;
  Wire.Writer.u64 w 0x0123456789abcdefL;
  Wire.Writer.string w "tail";
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  checki "u8" 0xab (Wire.Reader.u8 r);
  checki "u16" 0x1234 (Wire.Reader.u16 r);
  checkb "u32" true (Wire.Reader.u32 r = 0xdeadbeefl);
  checkb "u64" true (Wire.Reader.u64 r = 0x0123456789abcdefL);
  checks "tail" "tail" (Wire.Reader.take_rest r);
  checkb "eof" true (Wire.Reader.eof r)

let test_wire_patch () =
  let w = Wire.Writer.create () in
  let off = Wire.Writer.reserve w 2 in
  Wire.Writer.string w "body";
  Wire.Writer.patch_u16 w off (Wire.Writer.length w);
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  checki "patched length" 6 (Wire.Reader.u16 r)

let test_wire_truncation () =
  let r = Wire.Reader.of_string "ab" in
  Alcotest.check_raises "u32 truncated" (Wire.Truncated "u32") (fun () ->
      ignore (Wire.Reader.u32 r))

(* -- Ptrie --------------------------------------------------------------------- *)

let p = Prefix.of_string_exn

let test_ptrie_basics () =
  let t =
    Ptrie.V4.empty
    |> Ptrie.V4.add (p "10.0.0.0/8") "eight"
    |> Ptrie.V4.add (p "10.1.0.0/16") "sixteen"
    |> Ptrie.V4.add (p "10.1.2.0/24") "twentyfour"
  in
  checki "cardinal" 3 (Ptrie.V4.cardinal t);
  checkb "find exact" true (Ptrie.V4.find (p "10.1.0.0/16") t = Some "sixteen");
  checkb "find missing" true (Ptrie.V4.find (p "10.2.0.0/16") t = None);
  let lookup addr =
    match Ptrie.lookup_v4 (Ipv4.of_string_exn addr) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  checks "lpm /24" "twentyfour" (lookup "10.1.2.3");
  checks "lpm /16" "sixteen" (lookup "10.1.3.1");
  checks "lpm /8" "eight" (lookup "10.9.9.9");
  checks "no match" "none" (lookup "11.0.0.1")

let test_ptrie_remove () =
  let t =
    Ptrie.V4.empty
    |> Ptrie.V4.add (p "10.0.0.0/8") 1
    |> Ptrie.V4.add (p "10.1.0.0/16") 2
  in
  let t = Ptrie.V4.remove (p "10.1.0.0/16") t in
  checki "cardinal after remove" 1 (Ptrie.V4.cardinal t);
  checkb "lpm falls back" true
    (match Ptrie.lookup_v4 (Ipv4.of_string_exn "10.1.2.3") t with
    | Some (_, 1) -> true
    | _ -> false);
  let t = Ptrie.V4.remove (p "10.0.0.0/8") t in
  checkb "empty after removing all" true (Ptrie.V4.is_empty t)

let test_ptrie_matches_order () =
  let t =
    Ptrie.V4.empty
    |> Ptrie.V4.add (p "0.0.0.0/0") 0
    |> Ptrie.V4.add (p "10.0.0.0/8") 8
    |> Ptrie.V4.add (p "10.1.0.0/16") 16
  in
  let ms = Ptrie.V4.matches (p "10.1.0.0/24") t in
  checkb "shortest first" true (List.map snd ms = [ 0; 8; 16 ])

let test_ptrie_map_filter () =
  let t =
    Ptrie.V4.of_list [ (p "10.0.0.0/8", 1); (p "20.0.0.0/8", 2); (p "30.0.0.0/8", 3) ]
  in
  let doubled = Ptrie.V4.map (fun _ v -> v * 2) t in
  checkb "map" true (Ptrie.V4.find (p "20.0.0.0/8") doubled = Some 4);
  let odd = Ptrie.V4.filter (fun _ v -> v mod 2 = 1) t in
  checki "filter" 2 (Ptrie.V4.cardinal odd)

(* Differential tests: drive the Patricia trie and a naive assoc-list model
   through the same randomized add'/remove schedule, checking the add'
   was-bound flag, the remove physical-equality no-op contract, and the
   cardinal at every step; then compare exact finds and longest matches.
   The prefix pools are biased toward nesting (prefix-of-prefix chains,
   including /0 and full-length host keys) to exercise span splits. *)

let test_ptrie_differential_v4 () =
  let rng = Random.State.make [| 0x9e37 |] in
  let lengths = [| 0; 8; 12; 16; 20; 24; 28; 30; 31; 32 |] in
  let bases =
    [|
      "10.0.0.0"; "10.1.0.0"; "10.1.2.0"; "10.1.2.3"; "172.16.5.0";
      "172.16.5.128"; "0.0.0.0"; "255.255.255.255";
    |]
  in
  let pool =
    Array.init 64 (fun i ->
        Prefix.make
          (Ipv4.of_string_exn bases.(i mod Array.length bases))
          lengths.(Random.State.int rng (Array.length lengths)))
  in
  let model = ref [] in
  let trie = ref Ptrie.V4.empty in
  let model_mem q = List.exists (fun (r, _) -> Prefix.equal r q) !model in
  let model_drop q =
    List.filter (fun (r, _) -> not (Prefix.equal r q)) !model
  in
  for step = 1 to 2_000 do
    let q = pool.(Random.State.int rng (Array.length pool)) in
    if Random.State.bool rng then begin
      let t', was_bound = Ptrie.V4.add' q step !trie in
      checkb "add' was-bound flag" (model_mem q) was_bound;
      trie := t';
      model := (q, step) :: model_drop q
    end
    else begin
      let t' = Ptrie.V4.remove q !trie in
      checkb "remove no-op is physically equal" (not (model_mem q))
        (t' == !trie);
      trie := t';
      model := model_drop q
    end;
    checki "cardinal tracks model" (List.length !model)
      (Ptrie.V4.cardinal !trie)
  done;
  Array.iter
    (fun q ->
      let expect =
        List.find_opt (fun (r, _) -> Prefix.equal r q) !model
        |> Option.map snd
      in
      checkb "exact find agrees" true (Ptrie.V4.find q !trie = expect))
    pool;
  for _ = 1 to 500 do
    let addr =
      Ipv4.add
        (Ipv4.of_string_exn bases.(Random.State.int rng (Array.length bases)))
        (Random.State.int rng 512)
    in
    let expected =
      List.fold_left
        (fun best (q, v) ->
          if Prefix.mem addr q then
            match best with
            | Some (bq, _) when Prefix.length bq >= Prefix.length q -> best
            | _ -> Some (q, v)
          else best)
        None !model
    in
    match (expected, Ptrie.lookup_v4 addr !trie) with
    | None, None -> ()
    | Some (q1, v1), Some (q2, v2) ->
        checkb "lpm prefix agrees" true (Prefix.equal q1 q2);
        checki "lpm value agrees" v1 v2
    | Some _, None -> Alcotest.fail "trie missed a match the model found"
    | None, Some _ -> Alcotest.fail "trie matched where the model found none"
  done

let test_ptrie_differential_v6 () =
  let rng = Random.State.make [| 0x6b8b |] in
  (* Lengths straddle the 64-bit half boundary; bases differ in both
     halves so diverge points land in each word. *)
  let lengths = [| 0; 16; 32; 48; 63; 64; 65; 96; 112; 127; 128 |] in
  let bases =
    [|
      Ipv6.make 0x2001_0db8_0000_0000L 0L;
      Ipv6.make 0x2001_0db8_0000_0000L 0x8000_0000_0000_0000L;
      Ipv6.make 0x2001_0db8_ffff_0000L 1L;
      Ipv6.make 0x2804_269c_0000_0000L (-1L);
      Ipv6.make 0x2804_269c_0000_0001L 0L;
      Ipv6.make (-1L) (-1L);
      Ipv6.make 0L 1L;
      Ipv6.make 0L 0L;
    |]
  in
  let pool =
    Array.init 64 (fun i ->
        Prefix_v6.make
          bases.(i mod Array.length bases)
          lengths.(Random.State.int rng (Array.length lengths)))
  in
  let model = ref [] in
  let trie = ref Ptrie.V6.empty in
  let model_mem q = List.exists (fun (r, _) -> Prefix_v6.equal r q) !model in
  let model_drop q =
    List.filter (fun (r, _) -> not (Prefix_v6.equal r q)) !model
  in
  for step = 1 to 2_000 do
    let q = pool.(Random.State.int rng (Array.length pool)) in
    if Random.State.bool rng then begin
      let t', was_bound = Ptrie.V6.add' q step !trie in
      checkb "add' was-bound flag" (model_mem q) was_bound;
      trie := t';
      model := (q, step) :: model_drop q
    end
    else begin
      let t' = Ptrie.V6.remove q !trie in
      checkb "remove no-op is physically equal" (not (model_mem q))
        (t' == !trie);
      trie := t';
      model := model_drop q
    end;
    checki "cardinal tracks model" (List.length !model)
      (Ptrie.V6.cardinal !trie)
  done;
  Array.iter
    (fun q ->
      let expect =
        List.find_opt (fun (r, _) -> Prefix_v6.equal r q) !model
        |> Option.map snd
      in
      checkb "exact find agrees" true (Ptrie.V6.find q !trie = expect))
    pool;
  for _ = 1 to 500 do
    let addr =
      Ipv6.set_bit
        bases.(Random.State.int rng (Array.length bases))
        (Random.State.int rng 128)
        (Random.State.bool rng)
    in
    let expected =
      List.fold_left
        (fun best (q, v) ->
          if Prefix_v6.mem addr q then
            match best with
            | Some (bq, _) when Prefix_v6.length bq >= Prefix_v6.length q ->
                best
            | _ -> Some (q, v)
          else best)
        None !model
    in
    match (expected, Ptrie.lookup_v6 addr !trie) with
    | None, None -> ()
    | Some (q1, v1), Some (q2, v2) ->
        checkb "lpm prefix agrees" true (Prefix_v6.equal q1 q2);
        checki "lpm value agrees" v1 v2
    | Some _, None -> Alcotest.fail "trie missed a match the model found"
    | None, Some _ -> Alcotest.fail "trie matched where the model found none"
  done

(* -- properties ----------------------------------------------------------------- *)

let arbitrary_prefix =
  QCheck.map
    (fun (a, len) -> Prefix.make (Ipv4.of_int32 (Int32.of_int a)) len)
    (QCheck.pair (QCheck.int_bound 0x3fffffff) (QCheck.int_bound 32))

let prop_prefix_string_roundtrip =
  QCheck.Test.make ~name:"prefix to_string/of_string roundtrip" ~count:500
    arbitrary_prefix (fun p ->
      Prefix.equal p (Prefix.of_string_exn (Prefix.to_string p)))

let prop_prefix_network_member =
  QCheck.Test.make ~name:"prefix contains its network address" ~count:500
    arbitrary_prefix (fun p -> Prefix.mem (Prefix.network p) p)

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:500
    (QCheck.int_bound 0x3fffffff) (fun v ->
      let ip = Ipv4.of_int32 (Int32.of_int v) in
      Ipv4.equal ip (Ipv4.of_string_exn (Ipv4.to_string ip)))

(* Model-based: longest_match agrees with brute force over an assoc list. *)
let prop_ptrie_lpm_model =
  let gen =
    QCheck.pair
      (QCheck.small_list (QCheck.pair (QCheck.int_bound 0xffffff) (QCheck.int_range 8 32)))
      (QCheck.int_bound 0xffffff)
  in
  QCheck.Test.make ~name:"ptrie longest_match matches brute force" ~count:300
    gen (fun (entries, addr_seed) ->
      let entries =
        List.map
          (fun (a, len) ->
            (Prefix.make (Ipv4.of_int32 (Int32.of_int (a * 251))) len, a))
          entries
      in
      let t = Ptrie.V4.of_list entries in
      let addr = Ipv4.of_int32 (Int32.of_int (addr_seed * 257)) in
      let expected =
        List.fold_left
          (fun best (p, v) ->
            if Prefix.mem addr p then
              match best with
              | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
              | _ -> Some (p, v)
            else best)
          None
          (* later inserts win on duplicates, like the trie *)
          (List.rev entries)
      in
      let got = Ptrie.lookup_v4 addr t in
      match (expected, got) with
      | None, None -> true
      | Some (p1, _), Some (p2, _) -> Prefix.equal p1 p2
      | _ -> false)

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp codec roundtrip" ~count:300
    (QCheck.triple (QCheck.int_bound 65535) (QCheck.int_bound 65535)
       QCheck.small_string) (fun (sp, dp, payload) ->
      match Udp.decode (Udp.encode { Udp.src_port = sp; dst_port = dp; payload }) with
      | Ok d -> d.Udp.src_port = sp && d.Udp.dst_port = dp && d.Udp.payload = payload
      | Error _ -> false)

let prop_ipv6_roundtrip =
  QCheck.Test.make ~name:"ipv6 string roundtrip (incl. :: compression)"
    ~count:500
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.return 8) (QCheck.int_bound 0xffff))
       (QCheck.int_bound 7))
    (fun (groups, zero_from) ->
      (* Bias toward zero runs so compression paths are exercised. *)
      let gs =
        Array.of_list groups |> Array.mapi (fun i g ->
            if i >= zero_from && i < zero_from + 3 then 0 else g)
      in
      let v = Ipv6.of_groups gs in
      Ipv6.equal v (Ipv6.of_string_exn (Ipv6.to_string v)))

let prop_mac_roundtrip =
  QCheck.Test.make ~name:"mac string roundtrip" ~count:300
    (QCheck.int_bound 0xffffff) (fun seed ->
      let m = Mac.local ~pool:(seed land 0xff) (seed * 17 land 0xffffff) in
      Mac.equal m (Mac.of_string_exn (Mac.to_string m)))

let prop_checksum_patch_verifies =
  QCheck.Test.make ~name:"checksum: patched data always verifies" ~count:300
    (QCheck.string_of_size (QCheck.Gen.int_range 4 64)) (fun data ->
      let b = Bytes.of_string data in
      Bytes.set_uint16_be b 0 0;
      let c = Checksum.of_string (Bytes.to_string b) in
      Bytes.set_uint16_be b 0 c;
      Checksum.verify (Bytes.to_string b))

let prop_ipv4_packet_roundtrip =
  QCheck.Test.make ~name:"ipv4 packet roundtrip" ~count:300
    (QCheck.triple QCheck.small_string (QCheck.int_range 1 255)
       (QCheck.int_bound 0xffff))
    (fun (payload, ttl, ident) ->
      let p =
        Ipv4_packet.make ~ttl ~ident
          ~src:(Ipv4.of_string_exn "10.0.0.1")
          ~dst:(Ipv4.of_string_exn "10.0.0.2")
          ~protocol:Ipv4_packet.Udp payload
      in
      match Ipv4_packet.decode (Ipv4_packet.encode p) with
      | Ok q -> q = p
      | Error _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_prefix_string_roundtrip;
      prop_prefix_network_member;
      prop_ipv4_roundtrip;
      prop_ptrie_lpm_model;
      prop_udp_roundtrip;
      prop_ipv6_roundtrip;
      prop_mac_roundtrip;
      prop_checksum_patch_verifies;
      prop_ipv4_packet_roundtrip;
    ]

let () =
  Alcotest.run "netcore"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ipv4_invalid;
          Alcotest.test_case "unsigned compare" `Quick test_ipv4_unsigned_compare;
          Alcotest.test_case "arithmetic" `Quick test_ipv4_arithmetic;
          Alcotest.test_case "private ranges" `Quick test_ipv4_private;
        ] );
      ( "ipv6",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv6_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ipv6_invalid;
          Alcotest.test_case "bits" `Quick test_ipv6_bits;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "normalization" `Quick test_prefix_normalization;
          Alcotest.test_case "membership" `Quick test_prefix_membership;
          Alcotest.test_case "subset" `Quick test_prefix_subset;
          Alcotest.test_case "split/subnets" `Quick test_prefix_split_subnets;
          Alcotest.test_case "host" `Quick test_prefix_host;
          Alcotest.test_case "ipv6 prefixes" `Quick test_prefix_v6;
        ] );
      ( "mac",
        [
          Alcotest.test_case "roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "properties" `Quick test_mac_properties;
        ] );
      ("checksum", [ Alcotest.test_case "rfc1071" `Quick test_checksum ]);
      ( "codecs",
        [
          Alcotest.test_case "ethernet roundtrip" `Quick test_eth_roundtrip;
          Alcotest.test_case "ethernet truncated" `Quick test_eth_truncated;
          Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_packet_roundtrip;
          Alcotest.test_case "ipv4 checksum" `Quick test_ipv4_packet_checksum;
          Alcotest.test_case "ttl decrement" `Quick test_ttl_decrement;
          Alcotest.test_case "icmp roundtrip" `Quick test_icmp_roundtrip;
          Alcotest.test_case "icmp checksum" `Quick test_icmp_checksum;
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
        ] );
      ( "wire",
        [
          Alcotest.test_case "writer/reader" `Quick test_wire_writer_reader;
          Alcotest.test_case "patch" `Quick test_wire_patch;
          Alcotest.test_case "truncation" `Quick test_wire_truncation;
        ] );
      ( "ptrie",
        [
          Alcotest.test_case "basics" `Quick test_ptrie_basics;
          Alcotest.test_case "remove" `Quick test_ptrie_remove;
          Alcotest.test_case "matches order" `Quick test_ptrie_matches_order;
          Alcotest.test_case "map/filter" `Quick test_ptrie_map_filter;
          Alcotest.test_case "differential v4" `Quick test_ptrie_differential_v4;
          Alcotest.test_case "differential v6" `Quick test_ptrie_differential_v6;
        ] );
      ("properties", qcheck_cases);
    ]
