(* Differential and regression tests for the parallel export lane.
   A router created with [?parallel_export:4] hash-partitions the
   dirty-prefix flush across worker domains — each lane owns its
   neighbors' export-control filtering, Adj-RIB-Out delta, multi-NLRI
   packing, and wire encoding — and replays the staged, fully encoded
   messages on the single writer. That path must be byte-identical to
   the sequential flush: a QCheck property drives the same random
   announce/withdraw/flap/EoR sequence from an experiment through two
   identically-wired routers (4 lanes vs 1) and compares Adj-RIB-Out
   fingerprints, exact counters, per-neighbor heard state, and
   per-neighbor wire-byte transcripts (every byte each neighbor's link
   delivered), with and without graceful restart in play. Alongside it:
   a directed GR End-of-RIB sweep whose withdrawals ride the lanes, a
   mid-churn neighbor kill as a fixed differential script, the
   encode-once wire-cache accounting, the neighbor hash spread, the
   [Control_out.chunked] regression, and create-time validation. *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let null_handlers =
  {
    Session.on_update = ignore;
    on_established = ignore;
    on_down = ignore;
    on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
  }

(* -- fixture: one router, six listening neighbors, one experiment ---------- *)

(* Six neighbors over four lanes: at least one lane owns two neighbors,
   so the single-writer replay has to interleave per-lane staging
   queues. *)
let n_neighbors = 6
let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i))

(* Eight /24s inside the experiment's /21 grant. *)
let op_prefix i =
  Prefix.make
    (Ipv4.of_int32 (Int32.logor 0xB8A4E000l (Int32.of_int (i lsl 8))))
    24

type fixture = {
  engine : Sim.Engine.t;
  router : Router.t;
  neighbor_ids : int array;
  pairs : Sim.Bgp_wire.pair array;
  epair : Sim.Bgp_wire.pair;
  taps : Buffer.t array;  (** per-neighbor wire-byte transcripts *)
  heard : (int * Prefix.t, Attr.set) Hashtbl.t;  (** (neighbor idx, prefix) *)
  withdrawn_seen : int ref;
  announces : int ref;
}

let make_fixture ?(gr_restart_time = 0) ~parallel_export () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"par-export" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ~parallel_export
      ~gr_restart_time ()
  in
  Router.activate router;
  let both =
    Array.init n_neighbors (fun i ->
        Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:(neighbor_ip i)
          ~kind:Neighbor.Transit ~remote_id:(neighbor_ip i) ())
  in
  let neighbor_ids = Array.map fst both and pairs = Array.map snd both in
  let taps = Array.init n_neighbors (fun _ -> Buffer.create 256) in
  let heard = Hashtbl.create 64 in
  let withdrawn_seen = ref 0 and announces = ref 0 in
  Array.iteri
    (fun i pair ->
      (* Record every byte the router sends this neighbor (the active,
         remote side sits at link endpoint A) before forwarding it into
         the session — the transcript the differential compares. *)
      Sim.Link.attach pair.Sim.Bgp_wire.link Sim.Link.A (fun data ->
          Buffer.add_string taps.(i) data;
          Session.receive_bytes pair.Sim.Bgp_wire.active data);
      Session.set_handlers pair.Sim.Bgp_wire.active
        {
          null_handlers with
          Session.on_update =
            (fun u ->
              if not (Msg.is_end_of_rib u) then begin
                List.iter
                  (fun (n : Msg.nlri) ->
                    incr withdrawn_seen;
                    Hashtbl.remove heard (i, n.Msg.prefix))
                  u.Msg.withdrawn;
                List.iter
                  (fun (n : Msg.nlri) ->
                    incr announces;
                    Hashtbl.replace heard (i, n.Msg.prefix) u.Msg.attrs)
                  u.Msg.announced
              end);
        })
    pairs;
  Array.iter Sim.Bgp_wire.start pairs;
  let grant =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/21" ]
      ~caps:
        Experiment_caps.(default |> with_communities 4 |> with_update_budget 10000)
      "par-exp"
  in
  let epair =
    Router.connect_experiment router ~grant ~mac:(Mac.local ~pool:0xe0 1) ()
  in
  Sim.Bgp_wire.start epair;
  Sim.Engine.run_until engine 5.;
  {
    engine;
    router;
    neighbor_ids;
    pairs;
    epair;
    taps;
    heard;
    withdrawn_seen;
    announces;
  }

let settle fx =
  Router.flush_reexports fx.router;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)

(* Experiment announcement variants: MED, prepending, and export-control
   tags all vary so flushes mix facing groups, update-group merges, and
   per-neighbor filtering. *)
let attr_variant fx v =
  let path = if v land 1 = 0 then [ 61574 ] else [ 61574; 61574 ] in
  let ctl = Router.control_asn fx.router in
  let tagged_id =
    Router.export_id fx.router ~neighbor_id:fx.neighbor_ids.(v mod n_neighbors)
  in
  let communities =
    match (v lsr 1) mod 4 with
    | 0 -> []
    | 1 -> [ Export_control.announce_to ~ctl_asn:ctl tagged_id ]
    | 2 -> [ Export_control.block ~ctl_asn:ctl tagged_id ]
    | _ -> [ Community.no_export ]
  in
  Attr.origin_attrs
    ~as_path:(Aspath.of_asns (List.map asn path))
    ~next_hop:(ip "184.164.224.1") ()
  |> Attr.with_med (v land 3)
  |> Attr.with_communities communities

(* -- canonical, time-independent fingerprint of converged state ----------- *)

let counters_line fx =
  let c = Router.counters fx.router in
  Fmt.str
    "from_nbr=%d from_exp=%d from_mesh=%d reexport=%d gr_ret=%d gr_exp=%d \
     to_nbr=%d/%d to_exp=%d/%d to_mesh=%d/%d"
    c.Router.updates_from_neighbors c.Router.updates_from_experiments
    c.Router.updates_from_mesh c.Router.reexport_computations
    c.Router.gr_retentions c.Router.gr_expiries c.Router.updates_to_neighbors
    c.Router.nlri_to_neighbors c.Router.updates_to_experiments
    c.Router.nlri_to_experiments c.Router.updates_to_mesh c.Router.nlri_to_mesh

let fingerprint fx =
  settle fx;
  let adj_out =
    Array.to_list fx.neighbor_ids
    |> List.concat_map (fun id ->
           List.map
             (fun (p, attrs) ->
               Fmt.str "%d %a %a" id Prefix.pp p Attr.pp_set attrs)
             (Router.adj_out_routes fx.router ~neighbor_id:id))
    |> List.sort compare
  in
  let heard =
    Hashtbl.fold
      (fun (i, p) attrs acc ->
        Fmt.str "n%d %a %a" i Prefix.pp p Attr.pp_set attrs :: acc)
      fx.heard []
    |> List.sort compare
  in
  let wires =
    Array.to_list
      (Array.mapi
         (fun i buf ->
           Fmt.str "n%d %d bytes %s" i (Buffer.length buf)
             (Digest.to_hex (Digest.string (Buffer.contents buf))))
         fx.taps)
  in
  String.concat "\n"
    (("adj-out:" :: adj_out) @ ("heard:" :: heard) @ ("wire:" :: wires)
    @ [ "counters:"; counters_line fx ])

(* -- random operation sequences ------------------------------------------- *)

type op =
  | Announce of int * int  (** prefix index, attr variant *)
  | Withdraw of int
  | Flap of int  (** transport loss + auto-reconnect on one neighbor *)
  | ExpFlap  (** kill the experiment session (GR retention or hard drop) *)
  | ExpEor  (** End-of-RIB from the experiment (GR stale sweep) *)
  | Tick

let send_exp fx u =
  let s = fx.epair.Sim.Bgp_wire.active in
  if Session.established s then Session.send_update s u

let apply fx = function
  | Announce (p, v) ->
      send_exp fx
        (Msg.update ~attrs:(attr_variant fx v)
           ~announced:[ Msg.nlri (op_prefix p) ]
           ())
  | Withdraw p ->
      send_exp fx (Msg.update ~withdrawn:[ Msg.nlri (op_prefix p) ] ())
  | Flap nbr ->
      let fault = Sim.Fault.create fx.engine in
      Sim.Fault.kill_pair fault
        ~at:(Sim.Engine.now fx.engine +. 0.01)
        fx.pairs.(nbr);
      Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)
  | ExpFlap ->
      let fault = Sim.Fault.create fx.engine in
      Sim.Fault.kill_pair fault
        ~at:(Sim.Engine.now fx.engine +. 0.01)
        fx.epair;
      Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)
  | ExpEor -> send_exp fx (Msg.update ())
  | Tick -> Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 1.)

let pp_op = function
  | Announce (p, v) -> Printf.sprintf "A(p%d,v%d)" p v
  | Withdraw p -> Printf.sprintf "W(p%d)" p
  | Flap n -> Printf.sprintf "F(n%d)" n
  | ExpFlap -> "XF"
  | ExpEor -> "XE"
  | Tick -> "T"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun p v -> Announce (p, v)) (int_bound 7) (int_bound 11));
        (3, map (fun p -> Withdraw p) (int_bound 7));
        (1, map (fun n -> Flap n) (int_bound (n_neighbors - 1)));
        (1, return ExpFlap);
        (1, return ExpEor);
        (3, return Tick);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 30) gen_op)

(* Run one ops sequence to convergence; returns the fingerprint and the
   staged-send residual (which must be zero once the flush has run). *)
let run_ops ~parallel_export ~gr ops =
  let fx = make_fixture ~gr_restart_time:gr ~parallel_export () in
  List.iter (apply fx) ops;
  let fp = fingerprint fx in
  let residual = (Router.export_stats fx.router).Router.staged_residual in
  Router.shutdown_domains fx.router;
  (fp, residual)

let differential ~name ~gr =
  QCheck.Test.make ~name ~count:12 ops_arb (fun ops ->
      let fp_par, residual = run_ops ~parallel_export:4 ~gr ops in
      let fp_seq, _ = run_ops ~parallel_export:1 ~gr ops in
      residual = 0 && String.equal fp_par fp_seq)

let prop_differential =
  differential ~name:"4-lane export is byte-identical to sequential" ~gr:0

let prop_differential_gr =
  differential
    ~name:"4-lane export is byte-identical under graceful restart" ~gr:120

(* -- directed: GR End-of-RIB sweep rides the export lanes ------------------ *)

(* The experiment loads three prefixes, its session drops gracefully, and
   on reconnect it replays only two before closing with End-of-RIB. The
   sweep's withdrawal toward every neighbor is staged and encoded on the
   lanes like any other delta: retained prefixes generate zero churn, the
   missing prefix exactly one withdrawal per neighbor. *)
let test_par_gr_eor () =
  let fx = make_fixture ~gr_restart_time:120 ~parallel_export:4 () in
  let ann p = apply fx (Announce (p, 0)) in
  ann 0;
  ann 1;
  ann 2;
  settle fx;
  checki "all neighbors heard the initial table" (3 * n_neighbors)
    (Hashtbl.length fx.heard);
  let s = fx.epair.Sim.Bgp_wire.active in
  Session.set_handlers s
    {
      null_handlers with
      Session.on_established =
        (fun () ->
          ann 0;
          ann 1;
          apply fx ExpEor);
    };
  fx.withdrawn_seen := 0;
  fx.announces := 0;
  apply fx ExpFlap;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 30.);
  settle fx;
  checki "swept prefix withdrawn from every neighbor" n_neighbors
    !(fx.withdrawn_seen);
  checki "retained prefixes generated no announce churn" 0 !(fx.announces);
  Array.iteri
    (fun i _ ->
      checkb "retained prefix still heard" true
        (Hashtbl.mem fx.heard (i, op_prefix 0));
      checkb "swept prefix gone" false (Hashtbl.mem fx.heard (i, op_prefix 2)))
    fx.pairs;
  checki "staged sends all replayed" 0
    (Router.export_stats fx.router).Router.staged_residual;
  Router.shutdown_domains fx.router

(* -- directed: mid-churn neighbor kill as a fixed differential script ------ *)

(* A neighbor session that hard-drops between flushes must be reflected
   in the next flush's target capture: its Adj-RIB-Out is rebuilt by the
   resync and later deltas re-stage toward it. Expressed as a fixed ops
   script run differentially, transcripts included. *)
let test_par_kill_mid_churn () =
  let wave v = List.init 8 (fun p -> Announce (p, v)) in
  let script =
    wave 0
    @ [ Tick; Flap 2; Tick ]
    @ wave 1
    @ [ Tick; Withdraw 1; Withdraw 3; Tick; Flap 5 ]
    @ wave 2 @ [ Tick ]
  in
  let fp_par, residual = run_ops ~parallel_export:4 ~gr:0 script in
  let fp_seq, _ = run_ops ~parallel_export:1 ~gr:0 script in
  checki "staged sends all replayed" 0 residual;
  checks "kill mid-churn converges byte-identically" fp_seq fp_par

(* -- the encode-once wire cache -------------------------------------------- *)

(* One flush of eight same-attribute prefixes toward six neighbors packs
   into one UPDATE per neighbor, all six spliced from a single encoded
   attribute block: 1 miss, 5 hits — whatever the lane count, because
   hit/miss accounting deduplicates blocks across lanes. A second flush
   with a different MED encodes one fresh block. *)
let wire_cache_counts ~parallel_export () =
  let fx = make_fixture ~parallel_export () in
  let announce v =
    ignore
      (Router.process_experiment_update fx.router ~experiment:"par-exp"
         (Msg.update ~attrs:(attr_variant fx v)
            ~announced:(List.init 8 (fun p -> Msg.nlri (op_prefix p)))
            ()))
  in
  announce 0;
  Router.flush_reexports fx.router;
  let s1 = Router.export_stats fx.router in
  checki "one attribute block encoded" 1 s1.Router.wire_cache_misses;
  checki "five messages spliced from it" (n_neighbors - 1)
    s1.Router.wire_cache_hits;
  announce 1;
  Router.flush_reexports fx.router;
  let s2 = Router.export_stats fx.router in
  checki "fresh attrs encode one fresh block" 2 s2.Router.wire_cache_misses;
  checki "hits accumulate per flush" (2 * (n_neighbors - 1))
    s2.Router.wire_cache_hits;
  checkb "wire bytes accounted" true (s2.Router.wire_bytes_out > 0);
  checki "staged sends all replayed" 0 s2.Router.staged_residual;
  checki "one depth slot per lane" parallel_export
    (Array.length s2.Router.lane_depth_max);
  Router.shutdown_domains fx.router

let test_wire_cache_seq () = wire_cache_counts ~parallel_export:1 ()
let test_wire_cache_par () = wire_cache_counts ~parallel_export:4 ()

(* -- partitioning and plumbing --------------------------------------------- *)

let test_domain_spread () =
  let workers = 4 in
  let counts = Array.make workers 0 in
  for nid = 0 to 255 do
    let d = Export_pool.domain_of_neighbor ~workers nid in
    checkb "lane in range" true (d >= 0 && d < workers);
    counts.(d) <- counts.(d) + 1
  done;
  Array.iter
    (fun c -> checkb "no starved lane" true (c >= 256 / workers / 4))
    counts;
  for nid = 0 to 31 do
    checki "single lane folds everything to 0" 0
      (Export_pool.domain_of_neighbor ~workers:1 nid);
    checki "ingest and export lanes agree on the mix"
      (Ingest_pool.domain_of_neighbor ~workers:4 nid)
      (Export_pool.domain_of_neighbor ~workers:4 nid)
  done

let test_create_validation () =
  let engine = Sim.Engine.create () in
  let mk parallel_export () =
    Router.create ~engine ~name:"v" ~asn:(asn 1) ~router_id:(ip "10.0.0.1")
      ~primary_ip:(ip "10.0.0.1") ~local_pool:(pfx "127.66.0.0/16")
      ~global_pool:
        (Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f)
      ~parallel_export ()
  in
  checkb "parallel_export 0 rejected" true
    (try
       ignore (mk 0 ());
       false
     with Invalid_argument _ -> true);
  let r = mk 1 () in
  checki "parallel_export 1 is the sequential flush" 1
    (Router.parallel_export r)

(* -- the chunked regression ------------------------------------------------ *)

(* [Control_out.chunked] feeds the v6 MP-attribute packer; it must be
   tail-recursive (a full-table withdraw sweep chunks hundreds of
   thousands of prefixes) and reject nonsensical chunk sizes. *)
let test_chunked () =
  Alcotest.(check (list (list int)))
    "exact chunks" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Control_out.chunked [ 1; 2; 3; 4; 5 ] 2);
  Alcotest.(check (list (list int))) "empty" [] (Control_out.chunked [] 3);
  Alcotest.(check (list (list int)))
    "single oversized chunk" [ [ 1; 2 ] ]
    (Control_out.chunked [ 1; 2 ] 10);
  let big = List.init 300_000 Fun.id in
  let chunks = Control_out.chunked big 256 in
  checki "no stack overflow on a full-table sweep"
    ((300_000 + 255) / 256)
    (List.length chunks);
  checki "content preserved" 300_000 (List.length (List.concat chunks));
  checkb "chunk size 0 rejected" true
    (try
       ignore (Control_out.chunked [ 1 ] 0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "par-export"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_differential_gr;
        ] );
      ( "graceful-restart",
        [
          Alcotest.test_case "EoR sweep withdrawals ride the lanes" `Quick
            test_par_gr_eor;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-churn neighbor kill converges identically"
            `Quick test_par_kill_mid_churn;
        ] );
      ( "wire-cache",
        [
          Alcotest.test_case "encode-once accounting, sequential" `Quick
            test_wire_cache_seq;
          Alcotest.test_case "encode-once accounting, 4 lanes" `Quick
            test_wire_cache_par;
        ] );
      ( "partition",
        [
          Alcotest.test_case "neighbor hash spreads across lanes" `Quick
            test_domain_spread;
          Alcotest.test_case "create validates the lane count" `Quick
            test_create_validation;
          Alcotest.test_case "chunked is tail-recursive and total" `Quick
            test_chunked;
        ] );
    ]
