(* Tests for the BGP substrate: ASNs, communities, AS paths, capabilities,
   attributes, the wire codec (incl. ADD-PATH and MP-BGP), the FSM, and
   live sessions over simulated links. *)

open Netcore
open Bgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* -- Asn ----------------------------------------------------------------------- *)

let test_asn () =
  checkb "4byte" true (Asn.is_4byte (asn 263842));
  checkb "2byte" false (Asn.is_4byte (asn 47065));
  checki "as_trans" 23456 Asn.as_trans;
  checkb "private 2byte" true (Asn.is_private (asn 64512));
  checkb "public" false (Asn.is_private (asn 47065));
  checkb "reserved" true (Asn.is_reserved (asn 0))

(* -- Community ------------------------------------------------------------------ *)

let test_community () =
  let c = Community.make 47065 10001 in
  checki "asn part" 47065 (Community.asn c);
  checki "value part" 10001 (Community.value c);
  checks "to_string" "47065:10001" (Community.to_string c);
  checkb "parse" true (Community.of_string "47065:10001" = Some c);
  checkb "well-known" true
    (Community.of_string "no-export" = Some Community.no_export);
  checkb "bad" true (Community.of_string "70000:1" = None);
  checkb "int32 roundtrip" true
    (Community.equal c (Community.of_int32 (Community.to_int32 c)))

let test_large_community () =
  let c = Large_community.make 47065 1 4000000000 in
  checks "to_string" "47065:1:4000000000" (Large_community.to_string c);
  checkb "roundtrip" true
    (Large_community.of_string (Large_community.to_string c) = Some c)

(* -- Aspath ----------------------------------------------------------------------- *)

let test_aspath_length () =
  let path =
    [ Aspath.Seq [ asn 1; asn 2 ]; Aspath.Set [ asn 3; asn 4; asn 5 ]; Aspath.Seq [ asn 6 ] ]
  in
  (* sets count as 1 *)
  checki "length" 4 (Aspath.length path);
  checki "flat asns" 6 (List.length (Aspath.to_asns path))

let test_aspath_origin_first () =
  let path = Aspath.of_asns [ asn 10; asn 20; asn 30 ] in
  checkb "first" true (Aspath.first path = Some (asn 10));
  checkb "origin" true (Aspath.origin path = Some (asn 30));
  checkb "empty origin" true (Aspath.origin Aspath.empty = None)

let test_aspath_prepend () =
  let path = Aspath.of_asns [ asn 20 ] in
  let path = Aspath.prepend_n (asn 10) 3 path in
  checki "length after prepend" 4 (Aspath.length path);
  checkb "first" true (Aspath.first path = Some (asn 10))

let test_aspath_poison () =
  let path = Aspath.poison ~self:(asn 61574) [ asn 3356; asn 174 ] Aspath.empty in
  checkb "contains victim" true (Aspath.contains (asn 3356) path);
  checkb "origin stays self" true (Aspath.origin path = Some (asn 61574));
  let poisoned = Aspath.poisoned ~self:(asn 61574) path in
  checki "poisoned count" 2 (List.length poisoned)

(* -- Capability -------------------------------------------------------------------- *)

let test_capability_roundtrip () =
  let caps =
    [
      Capability.Multiprotocol { afi = 1; safi = 1 };
      Capability.Route_refresh;
      Capability.As4 (asn 263842);
      Capability.Add_path [ (1, 1, Capability.Send_receive) ];
    ]
  in
  List.iter
    (fun cap ->
      let v = Capability.encode_value cap in
      let cap' = Capability.decode_value ~code:(Capability.code cap) ~data:v in
      checkb "roundtrip" true (cap = cap'))
    caps

let test_add_path_negotiation () =
  let sr = [ Capability.Add_path [ (1, 1, Capability.Send_receive) ] ] in
  let recv = [ Capability.Add_path [ (1, 1, Capability.Receive) ] ] in
  let none = [] in
  let check_pair name local peer expect =
    checkb name true
      (Capability.negotiate_add_path ~local ~peer ~afi:1 ~safi:1 = expect)
  in
  check_pair "both SR" sr sr (true, true);
  check_pair "send to receiver" sr recv (true, false);
  check_pair "no peer support" sr none (false, false);
  check_pair "receiver only" recv sr (false, true)

(* -- Attr ---------------------------------------------------------------------------- *)

let test_attr_accessors () =
  let attrs =
    Attr.origin_attrs ~as_path:(Aspath.of_asns [ asn 1 ]) ~next_hop:(ip "1.1.1.1") ()
    |> Attr.with_med 50 |> Attr.with_local_pref 200
    |> Attr.add_community (Community.make 1 2)
  in
  checkb "origin" true (Attr.origin attrs = Some Attr.Igp);
  checkb "next hop" true (Attr.next_hop attrs = Some (ip "1.1.1.1"));
  checkb "med" true (Attr.med attrs = Some 50);
  checkb "local pref" true (Attr.local_pref attrs = Some 200);
  checkb "community" true (Attr.has_community (Community.make 1 2) attrs);
  (* replacement *)
  let attrs = Attr.with_next_hop (ip "2.2.2.2") attrs in
  checkb "replaced next hop" true (Attr.next_hop attrs = Some (ip "2.2.2.2"));
  checki "no duplicate next hop" 1
    (List.length (List.filter (fun a -> Attr.type_code a = 3) attrs))

let test_attr_sorted () =
  let attrs =
    [ Attr.Med 1; Attr.Origin Attr.Igp; Attr.Next_hop (ip "1.1.1.1") ]
  in
  let sorted = Attr.sort attrs in
  checkb "sorted by type code" true
    (List.map Attr.type_code sorted = [ 1; 3; 4 ])

let test_attr_unknown_transitive () =
  let unknown_trans =
    Attr.Unknown { flags = Attr.flag_optional lor Attr.flag_transitive; code = 99; data = "x" }
  in
  let unknown_nontrans =
    Attr.Unknown { flags = Attr.flag_optional; code = 98; data = "y" }
  in
  let attrs = [ Attr.Origin Attr.Igp; unknown_trans; unknown_nontrans ] in
  checki "only optional transitive" 1 (List.length (Attr.unknown_transitive attrs))

(* -- Codec ------------------------------------------------------------------------------ *)

let roundtrip ?params msg =
  Codec.decode_exn ?params (Codec.encode ?params msg)

let test_codec_open () =
  let o =
    {
      Msg.version = 4;
      asn = asn 263842;
      hold_time = 90;
      bgp_id = ip "10.0.0.1";
      capabilities =
        [
          Capability.Multiprotocol { afi = 1; safi = 1 };
          Capability.As4 (asn 263842);
          Capability.Add_path [ (1, 1, Capability.Send_receive) ];
        ];
    }
  in
  match roundtrip (Msg.Open o) with
  | Msg.Open o' ->
      checkb "asn recovered from AS4 cap" true (Asn.equal o'.Msg.asn (asn 263842));
      checki "hold" 90 o'.Msg.hold_time;
      checki "caps" 3 (List.length o'.Msg.capabilities)
  | _ -> Alcotest.fail "wrong message type"

let test_codec_keepalive_notification () =
  checkb "keepalive" true (roundtrip Msg.Keepalive = Msg.Keepalive);
  match
    roundtrip (Msg.Notification { code = 6; subcode = 2; data = "bye" })
  with
  | Msg.Notification n ->
      checki "code" 6 n.Msg.code;
      checki "subcode" 2 n.Msg.subcode;
      checks "data" "bye" n.Msg.data
  | _ -> Alcotest.fail "wrong message type"

let sample_update ?(path_id = None) () =
  {
    Msg.withdrawn = [ { Msg.prefix = pfx "10.9.0.0/16"; path_id } ];
    attrs =
      Attr.origin_attrs
        ~as_path:[ Aspath.Seq [ asn 65000; asn 174 ]; Aspath.Set [ asn 1; asn 2 ] ]
        ~next_hop:(ip "192.0.2.1") ()
      |> Attr.with_med 10
      |> Attr.add_community (Community.make 47065 10001);
    announced =
      [
        { Msg.prefix = pfx "184.164.224.0/24"; path_id };
        { Msg.prefix = pfx "184.164.225.0/24"; path_id };
      ];
  }

let update_equal (a : Msg.update) (b : Msg.update) =
  a.Msg.withdrawn = b.Msg.withdrawn
  && a.Msg.announced = b.Msg.announced
  && Attr.equal_set a.Msg.attrs b.Msg.attrs

let test_codec_update () =
  let u = sample_update () in
  match roundtrip (Msg.Update u) with
  | Msg.Update u' -> checkb "update roundtrip" true (update_equal u u')
  | _ -> Alcotest.fail "wrong message type"

let test_codec_update_add_path () =
  let params = { Codec.add_path = true; as4 = true } in
  let u = sample_update ~path_id:(Some 7) () in
  match roundtrip ~params (Msg.Update u) with
  | Msg.Update u' ->
      checkb "add-path roundtrip" true (update_equal u u');
      checkb "path ids present" true
        (List.for_all (fun (n : Msg.nlri) -> n.Msg.path_id = Some 7) u'.Msg.announced)
  | _ -> Alcotest.fail "wrong message type"

(* -- NLRI packing: split_update --------------------------------------------- *)

let packing_attrs () =
  Attr.origin_attrs
    ~as_path:[ Aspath.Seq [ asn 65000; asn 47065 ] ]
    ~next_hop:(ip "192.0.2.1") ()
  |> Attr.add_community (Community.make 47065 10001)

(* [n] distinct /24s under 10.0.0.0/8. *)
let many_prefixes n =
  List.init n (fun i ->
      Msg.nlri (pfx (Printf.sprintf "10.%d.%d.0/24" (i / 256) (i mod 256))))

let decoded_routes ?params (u : Msg.update) =
  List.concat_map
    (fun piece ->
      match Codec.decode_exn ?params (Codec.encode ?params (Msg.Update piece)) with
      | Msg.Update u' ->
          List.map (fun n -> (`A, n, u'.Msg.attrs)) u'.Msg.announced
          @ List.map (fun n -> (`W, n, [])) u'.Msg.withdrawn
      | _ -> Alcotest.fail "expected UPDATE")
    (Codec.split_update ?params u)

let test_split_update_noop () =
  let u = sample_update () in
  (match Codec.split_update u with
  | [ u' ] -> checkb "within bounds: unchanged" true (u == u')
  | pieces -> Alcotest.failf "expected singleton, got %d" (List.length pieces));
  (* MP-only updates (no v4 NLRI) are never split, however large. *)
  let nlri =
    List.init 2000 (fun i ->
        (Prefix_v6.of_string_exn (Printf.sprintf "2804:269c:%x::/48" (i + 1)), None))
  in
  let mp =
    Msg.update
      ~attrs:
        [
          Attr.Origin Attr.Igp;
          Attr.As_path (Aspath.of_asns [ asn 61574 ]);
          Attr.Mp_reach { next_hop = Ipv6.of_string_exn "2001:db8::1"; nlri };
        ]
      ()
  in
  checki "mp-only never splits" 1 (List.length (Codec.split_update mp))

let test_split_update_boundary () =
  let attrs = packing_attrs () in
  (* Find the largest NLRI count that still encodes within 4096 bytes. *)
  let size n =
    String.length
      (Codec.encode (Msg.Update (Msg.update ~attrs ~announced:(many_prefixes n) ())))
  in
  let max_fit = ref 1 in
  while size (!max_fit + 1) <= Codec.classic_max_message_size do incr max_fit done;
  let u_fit = Msg.update ~attrs ~announced:(many_prefixes !max_fit) () in
  checki "exact fit stays one message" 1 (List.length (Codec.split_update u_fit));
  let u_over = Msg.update ~attrs ~announced:(many_prefixes (!max_fit + 1)) () in
  let pieces = Codec.split_update u_over in
  checkb "one over the boundary splits" true (List.length pieces >= 2);
  List.iter
    (fun piece ->
      checkb "every piece within 4096" true
        (String.length (Codec.encode (Msg.Update piece))
        <= Codec.classic_max_message_size))
    pieces;
  (* The split decodes to exactly the same routes as the packed update. *)
  let flat =
    List.map (fun n -> (`A, n, Attr.sort attrs)) u_over.Msg.announced
  in
  let got =
    List.map
      (fun (k, n, a) -> (k, n, Attr.sort a))
      (decoded_routes u_over)
  in
  checkb "split decodes to the same routes" true (flat = got)

let test_split_update_withdraw_and_announce () =
  let attrs = packing_attrs () in
  let u =
    Msg.update ~attrs
      ~withdrawn:(many_prefixes 900)
      ~announced:
        (List.init 900 (fun i ->
             Msg.nlri
               (pfx (Printf.sprintf "172.%d.%d.0/24" (i / 256) (i mod 256)))))
      ()
  in
  let pieces = Codec.split_update u in
  checkb "withdraw+announce splits" true (List.length pieces >= 2);
  List.iter
    (fun (piece : Msg.update) ->
      checkb "piece within 4096" true
        (String.length (Codec.encode (Msg.Update piece))
        <= Codec.classic_max_message_size);
      checkb "withdraw pieces carry no attrs" true
        (piece.Msg.withdrawn = [] || piece.Msg.attrs = []))
    pieces;
  let count k =
    List.fold_left
      (fun acc (k', _, _) -> if k = k' then acc + 1 else acc)
      0 (decoded_routes u)
  in
  checki "all withdrawals survive" 900 (count `W);
  checki "all announcements survive" 900 (count `A)

let test_split_update_add_path () =
  let params = { Codec.add_path = true; as4 = true } in
  let attrs = packing_attrs () in
  let announced =
    List.map
      (fun (n : Msg.nlri) -> { n with Msg.path_id = Some 7 })
      (many_prefixes 1200)
  in
  let u = Msg.update ~attrs ~announced () in
  let pieces = Codec.split_update ~params u in
  checkb "add-path splits" true (List.length pieces >= 2);
  List.iter
    (fun piece ->
      checkb "add-path piece within 4096" true
        (String.length (Codec.encode ~params (Msg.Update piece))
        <= Codec.classic_max_message_size))
    pieces;
  let got = decoded_routes ~params u in
  checki "all nlri survive" 1200 (List.length got);
  checkb "path ids preserved" true
    (List.for_all (fun (_, (n : Msg.nlri), _) -> n.Msg.path_id = Some 7) got)

let test_codec_as_trans () =
  (* Without AS4, 4-byte ASNs in paths become AS_TRANS on the wire. *)
  let params = { Codec.add_path = false; as4 = false } in
  let u =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 263842 ])
           ~next_hop:(ip "1.1.1.1") ())
      ~announced:[ Msg.nlri (pfx "10.0.0.0/24") ]
      ()
  in
  match roundtrip ~params (Msg.Update u) with
  | Msg.Update u' -> (
      match Attr.as_path u'.Msg.attrs with
      | Some path ->
          checkb "as_trans substituted" true
            (Aspath.to_asns path = [ asn Asn.as_trans ])
      | None -> Alcotest.fail "no as path")
  | _ -> Alcotest.fail "wrong message type"

let test_codec_extended_length () =
  (* An AS path over 255 bytes forces the extended-length attribute flag. *)
  let long_path = Aspath.of_asns (List.init 100 (fun i -> asn (1000 + i))) in
  let u =
    Msg.update
      ~attrs:(Attr.origin_attrs ~as_path:long_path ~next_hop:(ip "1.1.1.1") ())
      ~announced:[ Msg.nlri (pfx "10.0.0.0/24") ]
      ()
  in
  match roundtrip (Msg.Update u) with
  | Msg.Update u' ->
      checkb "long path roundtrip" true
        (match Attr.as_path u'.Msg.attrs with
        | Some p -> Aspath.equal p long_path
        | None -> false)
  | _ -> Alcotest.fail "wrong message type"

let test_codec_mp_v6 () =
  let nlri = [ (Prefix_v6.of_string_exn "2804:269c:1::/48", None) ] in
  let u =
    Msg.update
      ~attrs:
        [
          Attr.Origin Attr.Igp;
          Attr.As_path (Aspath.of_asns [ asn 61574 ]);
          Attr.Mp_reach { next_hop = Ipv6.of_string_exn "2001:db8::1"; nlri };
        ]
      ()
  in
  match roundtrip (Msg.Update u) with
  | Msg.Update u' -> (
      match
        List.find_opt
          (fun a -> match a with Attr.Mp_reach _ -> true | _ -> false)
          u'.Msg.attrs
      with
      | Some (Attr.Mp_reach { next_hop; nlri = nlri' }) ->
          checkb "v6 next hop" true
            (Ipv6.equal next_hop (Ipv6.of_string_exn "2001:db8::1"));
          checkb "v6 nlri" true (nlri = nlri')
      | _ -> Alcotest.fail "mp_reach lost")
  | _ -> Alcotest.fail "wrong message type"

let test_codec_unknown_attr_preserved () =
  let unknown =
    Attr.Unknown
      { flags = Attr.flag_optional lor Attr.flag_transitive; code = 99; data = "opaque" }
  in
  let u =
    Msg.update
      ~attrs:
        (unknown
        :: Attr.origin_attrs
             ~as_path:(Aspath.of_asns [ asn 1 ])
             ~next_hop:(ip "1.1.1.1") ())
      ~announced:[ Msg.nlri (pfx "10.0.0.0/24") ]
      ()
  in
  match roundtrip (Msg.Update u) with
  | Msg.Update u' ->
      checkb "unknown preserved" true
        (List.exists
           (fun a ->
             match a with
             | Attr.Unknown { code = 99; data = "opaque"; _ } -> true
             | _ -> false)
           u'.Msg.attrs)
  | _ -> Alcotest.fail "wrong message type"

let test_codec_route_refresh () =
  match roundtrip (Msg.Route_refresh { afi = 1; safi = 1 }) with
  | Msg.Route_refresh { afi = 1; safi = 1 } -> ()
  | m -> Alcotest.failf "wrong message: %a" Msg.pp m

let test_codec_errors () =
  (* Bad marker *)
  let good = Codec.encode Msg.Keepalive in
  let bad_marker = "\x00" ^ String.sub good 1 (String.length good - 1) in
  checkb "bad marker" true (Result.is_error (Codec.decode bad_marker));
  (* Bad length field *)
  let bad_len = Bytes.of_string good in
  Bytes.set_uint16_be bad_len 16 5;
  checkb "bad length" true
    (Result.is_error (Codec.decode (Bytes.to_string bad_len)));
  (* Truncated *)
  checkb "truncated" true
    (Result.is_error (Codec.decode (String.sub good 0 10)))

let test_stream_reassembly () =
  let msgs =
    [
      Msg.Keepalive;
      Msg.Update (sample_update ());
      Msg.Keepalive;
      Msg.Notification { code = 6; subcode = 0; data = "" };
    ]
  in
  let wire = String.concat "" (List.map (fun m -> Codec.encode m) msgs) in
  (* Feed the byte stream in 7-byte chunks. *)
  let stream = Codec.Stream.create () in
  let received = ref [] in
  let rec feed i =
    if i < String.length wire then begin
      let n = min 7 (String.length wire - i) in
      (match Codec.Stream.input stream (String.sub wire i n) with
      | Ok ms -> received := !received @ ms
      | Error e -> Alcotest.fail e.Codec.message);
      feed (i + n)
    end
  in
  feed 0;
  checki "all messages recovered" (List.length msgs) (List.length !received);
  checkb "order preserved" true
    (match !received with
    | [ Msg.Keepalive; Msg.Update _; Msg.Keepalive; Msg.Notification _ ] -> true
    | _ -> false)

(* -- FSM ---------------------------------------------------------------------------------- *)

let dummy_open =
  {
    Msg.version = 4;
    asn = asn 100;
    hold_time = 90;
    bgp_id = ip "10.0.0.2";
    capabilities = [];
  }

let test_fsm_happy_path () =
  let s, _ = Fsm.step Fsm.Idle Fsm.Start in
  Alcotest.(check string) "connect" "connect" (Fsm.state_to_string s);
  let s, actions = Fsm.step s Fsm.Connection_up in
  Alcotest.(check string) "open-sent" "open-sent" (Fsm.state_to_string s);
  checkb "sends open" true (List.mem Fsm.Send_open actions);
  let s, actions = Fsm.step s (Fsm.Received (Msg.Open dummy_open)) in
  Alcotest.(check string) "open-confirm" "open-confirm" (Fsm.state_to_string s);
  checkb "processes open" true
    (List.exists (function Fsm.Process_open _ -> true | _ -> false) actions);
  checkb "sends keepalive" true (List.mem Fsm.Send_keepalive actions);
  let s, actions = Fsm.step s (Fsm.Received Msg.Keepalive) in
  Alcotest.(check string) "established" "established" (Fsm.state_to_string s);
  checkb "reports established" true (List.mem Fsm.Session_established actions)

let test_fsm_hold_expiry () =
  let s, actions = Fsm.step Fsm.Established Fsm.Hold_timer_expired in
  Alcotest.(check string) "back to idle" "idle" (Fsm.state_to_string s);
  checkb "notification sent" true
    (List.mem (Fsm.Send_notification (Msg.err_hold_timer_expired, 0)) actions)

let test_fsm_stop_sends_cease () =
  let _, actions = Fsm.step Fsm.Established Fsm.Stop in
  checkb "cease" true
    (List.mem (Fsm.Send_notification (Msg.err_cease, 0)) actions)

let test_fsm_unexpected_message () =
  let s, actions = Fsm.step Fsm.Open_sent (Fsm.Received Msg.Keepalive) in
  Alcotest.(check string) "reset" "idle" (Fsm.state_to_string s);
  checkb "fsm error notification" true
    (List.mem (Fsm.Send_notification (Msg.err_fsm, 0)) actions)

let test_fsm_idle_inert () =
  List.iter
    (fun ev ->
      let s, actions = Fsm.step Fsm.Idle ev in
      checkb "stays idle" true (s = Fsm.Idle && actions = []))
    [ Fsm.Connection_failed; Fsm.Hold_timer_expired; Fsm.Keepalive_timer_expired ]

(* -- live sessions over a simulated link ---------------------------------------------------- *)

let make_pair engine =
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1")
      ~capabilities:
        [ Capability.As4 (asn 47065);
          Capability.Add_path [ (1, 1, Capability.Send_receive) ] ]
      ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2")
      ~capabilities:
        [ Capability.As4 (asn 100);
          Capability.Add_path [ (1, 1, Capability.Send_receive) ] ]
      ()
  in
  Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()

let test_session_establishment () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  checkb "active established" true (Session.established pair.Sim.Bgp_wire.active);
  checkb "passive established" true
    (Session.established pair.Sim.Bgp_wire.passive);
  (* ADD-PATH negotiated in both directions. *)
  checkb "add-path send negotiated" true
    (Session.send_params pair.Sim.Bgp_wire.active).Codec.add_path

let test_session_update_delivery () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  let got = ref [] in
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> got := u :: !got);
      on_established = ignore;
      on_down = ignore;
    };
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  let u = sample_update ~path_id:(Some 3) () in
  Session.send_update pair.Sim.Bgp_wire.active u;
  Sim.Engine.run_until engine 10.;
  checki "one update" 1 (List.length !got);
  checkb "faithful delivery incl path ids" true
    (update_equal u (List.hd !got))

let test_session_keepalives_maintain () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  Sim.Bgp_wire.start pair;
  (* Run well past several hold periods: keepalives must keep it alive. *)
  Sim.Engine.run_until engine 600.;
  checkb "still established after 10 minutes" true
    (Session.established pair.Sim.Bgp_wire.active)

let test_session_hold_timer_detects_failure () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  (* Cut the link: keepalives stop flowing, hold timers must fire. *)
  Sim.Link.set_up pair.Sim.Bgp_wire.link false;
  Sim.Engine.run_until engine 300.;
  checkb "session torn down" false
    (Session.established pair.Sim.Bgp_wire.active);
  checkb "hold timer reason" true
    (match Session.last_error pair.Sim.Bgp_wire.active with
    | Some reason ->
        (* Either our hold timer fired or the peer's notification arrived
           first; both indicate detection. *)
        reason <> ""
    | None -> false)

let test_session_stop_notifies_peer () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  let down_reason = ref "" in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = ignore;
      on_established = ignore;
      on_down = (fun r -> down_reason := Fsm.down_reason_to_string r);
    };
  Session.stop pair.Sim.Bgp_wire.active;
  Sim.Engine.run_until engine 10.;
  checkb "peer saw cease notification" true
    (String.length !down_reason > 0 && String.sub !down_reason 0 12 = "notification")

let test_session_hold_time_negotiation () =
  (* Negotiated hold time is the minimum of both proposals (RFC 4271). *)
  let engine = Sim.Engine.create () in
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1")
      ~hold_time:180 ~capabilities:[ Capability.As4 (asn 47065) ] ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2")
      ~hold_time:30 ~capabilities:[ Capability.As4 (asn 100) ] ()
  in
  let pair =
    Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  (match Session.peer_open pair.Sim.Bgp_wire.active with
  | Some o -> checki "peer proposed 30" 30 o.Msg.hold_time
  | None -> Alcotest.fail "no peer open");
  (* The 180-proposing side must keepalive fast enough for the 30s hold:
     run 10 minutes; the session only survives if it honoured min(180,30). *)
  Sim.Engine.run_until engine 600.;
  checkb "session survives on min hold time" true
    (Session.established pair.Sim.Bgp_wire.active)

let test_session_route_refresh () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  let refreshed = ref None in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh =
        (fun ~afi ~safi -> refreshed := Some (afi, safi));
      on_update = ignore;
      on_established = ignore;
      on_down = ignore;
    };
  Session.send_route_refresh pair.Sim.Bgp_wire.active;
  Sim.Engine.run_until engine 10.;
  checkb "route refresh delivered" true (!refreshed = Some (1, 1));
  checkb "session survives" true (Session.established pair.Sim.Bgp_wire.active)

let test_session_mrai_batches () =
  let engine = Sim.Engine.create () in
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1") ~mrai:10.
      ~capabilities:[ Capability.As4 (asn 47065) ] ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2")
      ~capabilities:[ Capability.As4 (asn 100) ] ()
  in
  let pair =
    Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()
  in
  let got = ref 0 in
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun _ -> incr got);
      on_established = ignore;
      on_down = ignore;
    };
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  Session.send_update pair.Sim.Bgp_wire.active (sample_update ());
  Session.send_update pair.Sim.Bgp_wire.active (sample_update ());
  (* Before the MRAI expires nothing is on the wire... *)
  Sim.Engine.run_until engine 10.;
  checki "held back by MRAI" 0 !got;
  (* ...after it, both flush in order. *)
  Sim.Engine.run_until engine 30.;
  checki "flushed after MRAI" 2 !got

(* -- robustness: failure causes, teardown, reconnect, graceful restart ------------------------ *)

(* A codec error must be recorded as [last_error] before the Stop it
   triggers, so diagnostics see the true cause rather than "stopped". *)
let test_session_codec_error_cause () =
  let engine = Sim.Engine.create () in
  let pair = make_pair engine in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  (* A well-formed 19-byte KEEPALIVE header whose marker is all zeroes:
     "connection not synchronized" (RFC 4271 §6.1). *)
  Session.receive_bytes pair.Sim.Bgp_wire.active
    (String.make 16 '\000' ^ "\x00\x13\x04");
  Sim.Engine.run_until engine 10.;
  checkb "session torn down" false (Session.established pair.Sim.Bgp_wire.active);
  checkb "codec cause, not the admin stop it triggered" true
    (Session.last_error pair.Sim.Bgp_wire.active
    = Some "connection not synchronized")

(* Teardown with a non-empty MRAI queue drops the queued updates
   deliberately (and counts them) instead of leaking the flush timer. *)
let test_session_mrai_teardown_drops () =
  let engine = Sim.Engine.create () in
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1") ~mrai:10.
      ~capabilities:[ Capability.As4 (asn 47065) ] ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2")
      ~capabilities:[ Capability.As4 (asn 100) ] ()
  in
  let pair =
    Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()
  in
  let got = ref 0 in
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun _ -> incr got);
      on_established = ignore;
      on_down = ignore;
    };
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  Session.send_update pair.Sim.Bgp_wire.active (sample_update ());
  Session.send_update pair.Sim.Bgp_wire.active (sample_update ());
  Session.send_update pair.Sim.Bgp_wire.active (sample_update ());
  (* Kill the session while all three sit in the MRAI queue. *)
  Session.stop pair.Sim.Bgp_wire.active;
  Sim.Engine.run_until engine 60.;
  checki "queued updates counted as dropped" 3
    (Session.dropped_updates pair.Sim.Bgp_wire.active);
  checki "nothing leaked onto the wire after teardown" 0 !got

(* Reconnect backoff doubles from the base per failed cycle, caps, and the
   accessors expose the schedule. *)
let test_session_backoff_growth () =
  let engine = Sim.Engine.create () in
  let transport = { Session.connect = ignore; send = ignore; close = ignore } in
  let config =
    Session.config ~local_asn:(asn 1) ~local_id:(ip "10.0.0.9")
      ~reconnect:(Session.reconnect_policy ~backoff_base:0.5 ~backoff_max:4. ())
      ()
  in
  let s =
    Session.create ~config ~transport ~timers:(Sim.Engine.timers engine) ()
  in
  Session.start s;
  checkb "first delay is the base" true (Session.next_backoff s = Some 0.5);
  List.iteri
    (fun i expected ->
      Session.connection_up s;
      Session.connection_failed s;
      checkb
        (Printf.sprintf "delay after %d failures" (i + 1))
        true
        (Session.next_backoff s = Some expected);
      checki "backoff level" (i + 1) (Session.backoff_level s);
      (* Let the scheduled re-Start fire before failing the next cycle. *)
      Sim.Engine.run_until engine (float_of_int (i + 1) *. 20.))
    [ 1.; 2.; 4.; 4. ];
  checki "every non-administrative down counted as a flap" 4
    (Session.flap_count s)

(* End to end: a link cut tears the session down, and the reconnect policy
   brings it back without any manual Start once the link heals. *)
let test_session_auto_reconnect () =
  let engine = Sim.Engine.create () in
  let reconnect = Session.reconnect_policy ~backoff_base:0.5 ~backoff_max:8. () in
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1") ~reconnect
      ~capabilities:[ Capability.As4 (asn 47065) ] ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2") ~reconnect
      ~capabilities:[ Capability.As4 (asn 100) ] ()
  in
  let pair =
    Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until engine 5.;
  checkb "up" true (Session.established pair.Sim.Bgp_wire.active);
  Sim.Link.set_up pair.Sim.Bgp_wire.link false;
  Sim.Engine.run_until engine 400.;
  checkb "down while the link is down" false
    (Session.established pair.Sim.Bgp_wire.active);
  checkb "flap counted" true (Session.flap_count pair.Sim.Bgp_wire.active >= 1);
  Sim.Link.set_up pair.Sim.Bgp_wire.link true;
  Sim.Engine.run_until engine 1200.;
  checkb "re-established without manual start" true
    (Session.established pair.Sim.Bgp_wire.active);
  checki "backoff reset on establishment" 0
    (Session.backoff_level pair.Sim.Bgp_wire.active)

let test_gr_capability_roundtrip () =
  let cap =
    Capability.Graceful_restart
      {
        restart_time = 120;
        afis =
          [
            (Capability.afi_ipv4, Capability.safi_unicast);
            (Capability.afi_ipv6, Capability.safi_unicast);
          ];
      }
  in
  checki "RFC 4724 code" 64 (Capability.code cap);
  let v = Capability.encode_value cap in
  checkb "roundtrip" true
    (Capability.decode_value ~code:(Capability.code cap) ~data:v = cap);
  checkb "window accessor" true (Capability.graceful_restart [ cap ] = Some 120)

let gr_pair engine ~active_window ~passive_window =
  let caps base window =
    Capability.As4 (asn base)
    ::
    (match window with
    | Some restart_time ->
        [
          Capability.Graceful_restart
            {
              restart_time;
              afis = [ (Capability.afi_ipv4, Capability.safi_unicast) ];
            };
        ]
    | None -> [])
  in
  let config_a =
    Session.config ~local_asn:(asn 47065) ~local_id:(ip "10.0.0.1")
      ~capabilities:(caps 47065 active_window) ()
  in
  let config_b =
    Session.config ~local_asn:(asn 100) ~local_id:(ip "10.0.0.2")
      ~capabilities:(caps 100 passive_window) ()
  in
  Sim.Bgp_wire.make engine ~config_active:config_a ~config_passive:config_b ()

(* RFC 4724: the negotiated window is the peer's advertised restart time,
   and only exists when both sides advertised the capability. *)
let test_gr_negotiation () =
  let engine = Sim.Engine.create () in
  let both = gr_pair engine ~active_window:(Some 45) ~passive_window:(Some 90) in
  let one = gr_pair engine ~active_window:(Some 45) ~passive_window:None in
  let none = gr_pair engine ~active_window:None ~passive_window:None in
  Sim.Bgp_wire.start both;
  Sim.Bgp_wire.start one;
  Sim.Bgp_wire.start none;
  Sim.Engine.run_until engine 5.;
  checkb "both advertised: peer's window" true
    (Session.gr_restart_time both.Sim.Bgp_wire.active = Some 90.
    && Session.gr_restart_time both.Sim.Bgp_wire.passive = Some 45.);
  checkb "peer silent: no window" true
    (Session.gr_restart_time one.Sim.Bgp_wire.active = None);
  checkb "self silent: no window" true
    (Session.gr_restart_time one.Sim.Bgp_wire.passive = None);
  checkb "neither: no window" true
    (Session.gr_restart_time none.Sim.Bgp_wire.active = None)

(* -- codec property tests --------------------------------------------------------------------- *)

let arbitrary_update =
  let gen_prefix =
    QCheck.map
      (fun (a, len) -> pfx (Printf.sprintf "%d.%d.0.0/%d" (a mod 224) (a mod 256) len))
      (QCheck.pair (QCheck.int_bound 223) (QCheck.int_range 8 24))
  in
  let gen_nlri =
    QCheck.map (fun p -> { Msg.prefix = p; path_id = None }) gen_prefix
  in
  QCheck.map
    (fun (withdrawn, announced, asns, med) ->
      {
        Msg.withdrawn;
        attrs =
          (if announced = [] then []
           else
             Attr.origin_attrs
               ~as_path:(Aspath.of_asns (List.map (fun a -> asn (1 + (a land 0xffff))) asns))
               ~next_hop:(ip "192.0.2.1") ()
             |> Attr.with_med (med land 0xffff));
        announced;
      })
    (QCheck.quad (QCheck.small_list gen_nlri) (QCheck.small_list gen_nlri)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5) QCheck.small_nat)
       QCheck.small_nat)

let prop_update_roundtrip =
  QCheck.Test.make ~name:"update codec roundtrip" ~count:200 arbitrary_update
    (fun u ->
      match roundtrip (Msg.Update u) with
      | Msg.Update u' -> update_equal u u'
      | _ -> false)

(* Updates with heavyweight attribute payloads: community sets past the
   255-byte extended-length boundary and large-community blocks, under
   both encoding parameter variants. The attribute block is where the
   encode-once wire cache operates, so these pin (1) the codec roundtrip
   on exactly the attribute shapes experiments send, and (2) that
   splicing a pre-encoded attribute block into a header + NLRI shell
   ([Codec.encode_update_spliced]) produces the very bytes of a whole
   [Codec.encode] — the equivalence the parallel export lane rests on. *)
let arbitrary_heavy_update =
  let gen_prefix =
    QCheck.Gen.map
      (fun (a, len) ->
        pfx (Printf.sprintf "%d.%d.0.0/%d" (a mod 224) (a mod 256) len))
      (QCheck.Gen.pair (QCheck.Gen.int_bound 223) (QCheck.Gen.int_range 8 24))
  in
  let gen =
    QCheck.Gen.(
      pair
        (quad (small_list gen_prefix) (small_list gen_prefix)
           (int_range 0 80) (int_range 0 30))
        (pair bool (int_range 1 5)))
  in
  QCheck.make
    ~print:(fun ((u : Msg.update), (params : Codec.params)) ->
      Printf.sprintf "withdrawn=%d announced=%d comms=%d larges=%d add_path=%b"
        (List.length u.Msg.withdrawn)
        (List.length u.Msg.announced)
        (List.length (Attr.communities u.Msg.attrs))
        (List.length (Attr.large_communities u.Msg.attrs))
        params.Codec.add_path)
    (QCheck.Gen.map
       (fun ((withdrawn, announced, n_comms, n_larges), (add_path, path_len)) ->
         let params = { Codec.add_path; as4 = true } in
         let nlri p =
           { Msg.prefix = p; path_id = (if add_path then Some 7 else None) }
         in
         let attrs =
           if announced = [] then []
           else
             Attr.origin_attrs
               ~as_path:
                 (Aspath.of_asns (List.init path_len (fun i -> asn (70000 + i))))
               ~next_hop:(ip "192.0.2.1") ()
             |> Attr.with_communities
                  (List.init n_comms (fun i -> Community.make 47065 i))
             |> fun a ->
             if n_larges = 0 then a
             else
               Attr.set_attr
                 (Attr.Large_communities
                    (List.init n_larges (fun i ->
                         Large_community.make 47065 i 4000000000)))
                 a
         in
         ( {
             Msg.withdrawn = List.map nlri withdrawn;
             attrs;
             announced = List.map nlri announced;
           },
           params ))
       gen)

let prop_heavy_update_roundtrip =
  QCheck.Test.make ~name:"heavy-attribute update codec roundtrip" ~count:200
    arbitrary_heavy_update (fun (u, params) ->
      match roundtrip ~params (Msg.Update u) with
      | Msg.Update u' -> update_equal u u'
      | _ -> false)

let prop_attr_block_splice =
  QCheck.Test.make
    ~name:"spliced attr block equals whole-message encode" ~count:200
    arbitrary_heavy_update (fun (u, params) ->
      let block = Codec.encode_attrs_block ~params u.Msg.attrs in
      String.equal
        (Codec.encode_update_spliced ~params ~attrs_block:block u)
        (Codec.encode ~params (Msg.Update u)))

let prop_stream_chunking =
  QCheck.Test.make ~name:"stream decoding is chunking-invariant" ~count:100
    (QCheck.pair arbitrary_update (QCheck.int_range 1 40)) (fun (u, chunk) ->
      let wire = Codec.encode (Msg.Update u) ^ Codec.encode Msg.Keepalive in
      let stream = Codec.Stream.create () in
      let out = ref [] in
      let i = ref 0 in
      while !i < String.length wire do
        let n = min chunk (String.length wire - !i) in
        (match Codec.Stream.input stream (String.sub wire !i n) with
        | Ok ms -> out := !out @ ms
        | Error _ -> ());
        i := !i + n
      done;
      List.length !out = 2)

(* Fuzz: arbitrary bytes never crash the decoder — they produce a message
   or a protocol error (the property a production parser facing the open
   Internet must have). *)
let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 100))
    (fun junk ->
      match Codec.decode junk with Ok _ -> true | Error _ -> true)

(* Fuzz: corrupting any single byte of a valid update never crashes, and
   header corruption is always detected. *)
let prop_bitflip_safe =
  QCheck.Test.make ~name:"single-byte corruption is handled" ~count:300
    (QCheck.pair arbitrary_update (QCheck.int_bound 1000))
    (fun (u, pos_seed) ->
      let wire = Bytes.of_string (Codec.encode (Msg.Update u)) in
      let pos = pos_seed mod Bytes.length wire in
      Bytes.set wire pos
        (Char.chr ((Char.code (Bytes.get wire pos) + 1) land 0xff));
      match Codec.decode (Bytes.to_string wire) with
      | Ok _ -> true
      | Error _ -> true
      | exception _ -> false)

let prop_aspath_prepend_length =
  QCheck.Test.make ~name:"prepend_n adds exactly n to length" ~count:300
    (QCheck.pair (QCheck.int_bound 20) (QCheck.int_range 1 5))
    (fun (n, base_len) ->
      let base = Aspath.of_asns (List.init base_len (fun i -> asn (1 + i))) in
      Aspath.length (Aspath.prepend_n (asn 99) n base)
      = n + Aspath.length base)

let prop_aspath_poison_members =
  QCheck.Test.make ~name:"poisoned recovers the victim set" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 100 10000))
    (fun victims ->
      let victims = List.sort_uniq Int.compare victims |> List.map asn in
      let path = Aspath.poison ~self:(asn 1) victims Aspath.empty in
      Aspath.poisoned ~self:(asn 1) path = List.sort Asn.compare victims)

(* The FSM is total: no (state, event) pair raises, and every transition
   out of Idle requires an administrative Start. *)
let prop_fsm_total =
  let states =
    [ Fsm.Idle; Fsm.Connect; Fsm.Active; Fsm.Open_sent; Fsm.Open_confirm; Fsm.Established ]
  in
  let events =
    [
      Fsm.Start;
      Fsm.Stop;
      Fsm.Connection_up;
      Fsm.Connection_failed;
      Fsm.Received Msg.Keepalive;
      Fsm.Received (Msg.Open dummy_open);
      Fsm.Received (Msg.Update (Msg.update ()));
      Fsm.Received (Msg.Notification { code = 6; subcode = 0; data = "" });
      Fsm.Received (Msg.Route_refresh { afi = 1; safi = 1 });
      Fsm.Hold_timer_expired;
      Fsm.Keepalive_timer_expired;
      Fsm.Connect_retry_expired;
    ]
  in
  QCheck.Test.make ~name:"fsm is total and idle is quiescent" ~count:1
    QCheck.unit (fun () ->
      List.for_all
        (fun state ->
          List.for_all
            (fun event ->
              match Fsm.step state event with
              | _ -> true
              | exception _ -> false)
            events)
        states
      && List.for_all
           (fun event ->
             event = Fsm.Start || fst (Fsm.step Fsm.Idle event) = Fsm.Idle)
           events)

(* Randomized FSM driver: arbitrary event sequences starting from Idle.
   [step] never raises; every teardown closes its transport in the same
   action batch and lands in Idle; Idle arms no timers; and any transition
   that sends an OPEN or establishes the session re-arms the hold timer
   (RFC 4271 §8). *)
let prop_fsm_driver =
  let events =
    [
      Fsm.Start;
      Fsm.Stop;
      Fsm.Connection_up;
      Fsm.Connection_failed;
      Fsm.Received Msg.Keepalive;
      Fsm.Received (Msg.Open dummy_open);
      Fsm.Received (Msg.Update (Msg.update ()));
      Fsm.Received (Msg.Notification { code = 6; subcode = 0; data = "" });
      Fsm.Received (Msg.Route_refresh { afi = 1; safi = 1 });
      Fsm.Hold_timer_expired;
      Fsm.Keepalive_timer_expired;
      Fsm.Connect_retry_expired;
    ]
  in
  let arms = function
    | Fsm.Arm_hold_timer | Fsm.Arm_keepalive_timer | Fsm.Arm_connect_retry ->
        true
    | _ -> false
  in
  let step_ok state event =
    match Fsm.step state event with
    | exception _ -> None
    | state', actions ->
        let down =
          List.exists
            (function Fsm.Session_down _ -> true | _ -> false)
            actions
        in
        let ok =
          (not down
          || (List.mem Fsm.Close_transport actions && state' = Fsm.Idle))
          && ((not (List.mem Fsm.Send_open actions))
             || List.mem Fsm.Arm_hold_timer actions)
          && ((not (List.mem Fsm.Session_established actions))
             || List.mem Fsm.Arm_hold_timer actions)
          && (state' <> Fsm.Idle || not (List.exists arms actions))
        in
        if ok then Some state' else None
  in
  QCheck.Test.make ~name:"fsm driver invariants over random event sequences"
    ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 60) (QCheck.oneofl events))
    (fun seq ->
      List.fold_left
        (fun st ev -> Option.bind st (fun s -> step_ok s ev))
        (Some Fsm.Idle) seq
      <> None)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_update_roundtrip;
      prop_heavy_update_roundtrip;
      prop_attr_block_splice;
      prop_stream_chunking;
      prop_decode_never_crashes;
      prop_bitflip_safe;
      prop_fsm_total;
      prop_fsm_driver;
      prop_aspath_prepend_length;
      prop_aspath_poison_members;
    ]

let () =
  Alcotest.run "bgp"
    [
      ("asn", [ Alcotest.test_case "basics" `Quick test_asn ]);
      ( "community",
        [
          Alcotest.test_case "standard" `Quick test_community;
          Alcotest.test_case "large" `Quick test_large_community;
        ] );
      ( "aspath",
        [
          Alcotest.test_case "length with sets" `Quick test_aspath_length;
          Alcotest.test_case "origin/first" `Quick test_aspath_origin_first;
          Alcotest.test_case "prepend" `Quick test_aspath_prepend;
          Alcotest.test_case "poison" `Quick test_aspath_poison;
        ] );
      ( "capability",
        [
          Alcotest.test_case "roundtrip" `Quick test_capability_roundtrip;
          Alcotest.test_case "add-path negotiation" `Quick test_add_path_negotiation;
        ] );
      ( "attr",
        [
          Alcotest.test_case "accessors" `Quick test_attr_accessors;
          Alcotest.test_case "sorted" `Quick test_attr_sorted;
          Alcotest.test_case "unknown transitive" `Quick test_attr_unknown_transitive;
        ] );
      ( "codec",
        [
          Alcotest.test_case "open" `Quick test_codec_open;
          Alcotest.test_case "keepalive/notification" `Quick
            test_codec_keepalive_notification;
          Alcotest.test_case "update" `Quick test_codec_update;
          Alcotest.test_case "update add-path" `Quick test_codec_update_add_path;
          Alcotest.test_case "split_update noop" `Quick test_split_update_noop;
          Alcotest.test_case "split_update 4096 boundary" `Quick
            test_split_update_boundary;
          Alcotest.test_case "split_update withdraw+announce" `Quick
            test_split_update_withdraw_and_announce;
          Alcotest.test_case "split_update add-path" `Quick
            test_split_update_add_path;
          Alcotest.test_case "as_trans" `Quick test_codec_as_trans;
          Alcotest.test_case "extended length" `Quick test_codec_extended_length;
          Alcotest.test_case "mp ipv6" `Quick test_codec_mp_v6;
          Alcotest.test_case "unknown attr preserved" `Quick
            test_codec_unknown_attr_preserved;
          Alcotest.test_case "route refresh" `Quick test_codec_route_refresh;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "stream reassembly" `Quick test_stream_reassembly;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "happy path" `Quick test_fsm_happy_path;
          Alcotest.test_case "hold expiry" `Quick test_fsm_hold_expiry;
          Alcotest.test_case "stop sends cease" `Quick test_fsm_stop_sends_cease;
          Alcotest.test_case "unexpected message" `Quick test_fsm_unexpected_message;
          Alcotest.test_case "idle inert" `Quick test_fsm_idle_inert;
        ] );
      ( "session",
        [
          Alcotest.test_case "establishment" `Quick test_session_establishment;
          Alcotest.test_case "update delivery" `Quick test_session_update_delivery;
          Alcotest.test_case "keepalives maintain" `Quick
            test_session_keepalives_maintain;
          Alcotest.test_case "hold timer detects failure" `Quick
            test_session_hold_timer_detects_failure;
          Alcotest.test_case "stop notifies peer" `Quick
            test_session_stop_notifies_peer;
          Alcotest.test_case "hold-time negotiation" `Quick
            test_session_hold_time_negotiation;
          Alcotest.test_case "route refresh" `Quick test_session_route_refresh;
          Alcotest.test_case "mrai batches" `Quick test_session_mrai_batches;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "codec error is the recorded cause" `Quick
            test_session_codec_error_cause;
          Alcotest.test_case "teardown drops mrai queue" `Quick
            test_session_mrai_teardown_drops;
          Alcotest.test_case "backoff growth and cap" `Quick
            test_session_backoff_growth;
          Alcotest.test_case "auto reconnect across a link cut" `Quick
            test_session_auto_reconnect;
          Alcotest.test_case "graceful-restart capability roundtrip" `Quick
            test_gr_capability_roundtrip;
          Alcotest.test_case "graceful-restart negotiation" `Quick
            test_gr_negotiation;
        ] );
      ("properties", qcheck_cases);
    ]
