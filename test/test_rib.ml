(* Tests for the RIB library: the decision process, routing tables with
   incremental best-path maintenance, and FIBs. *)

open Netcore
open Bgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let route ?(prefix = pfx "10.0.0.0/24") ?(peer = "1.1.1.1") ?(peer_asn = 100)
    ?(path = [ 100; 200 ]) ?(lp = 100) ?(med = 0) ?(origin = Attr.Igp)
    ?(ebgp = true) ?(path_id = None) ?(learned_at = 0.) () =
  let attrs =
    Attr.origin_attrs ~origin
      ~as_path:(Aspath.of_asns (List.map asn path))
      ~next_hop:(ip peer) ()
    |> Attr.with_local_pref lp |> Attr.with_med med
  in
  Rib.Route.make ~path_id ~learned_at ~prefix ~attrs
    ~source:(Rib.Route.source ~ebgp ~peer_ip:(ip peer) ~peer_asn:(asn peer_asn) ())
    ()

let prefer name a b =
  checkb name true (Rib.Decision.compare a b < 0);
  checkb (name ^ " (antisymmetric)") true (Rib.Decision.compare b a > 0)

(* -- decision process -------------------------------------------------------- *)

let test_decision_local_pref () =
  prefer "higher local pref wins"
    (route ~lp:300 ~path:[ 100; 200; 300 ] ())
    (route ~peer:"2.2.2.2" ~lp:100 ~path:[ 100 ] ())

let test_decision_path_length () =
  prefer "shorter path wins"
    (route ~path:[ 100 ] ())
    (route ~peer:"2.2.2.2" ~path:[ 100; 200 ] ());
  (* AS sets count one regardless of size. *)
  let a =
    route ()
    |> fun r ->
    Rib.Route.with_attrs r
      (Attr.with_as_path
         [ Aspath.Seq [ asn 1 ]; Aspath.Set [ asn 2; asn 3; asn 4 ] ]
         (Rib.Route.attrs r))
  in
  let b = route ~peer:"2.2.2.2" ~path:[ 1; 2; 3 ] () in
  checkb "set counts as one" true
    (Aspath.length (Rib.Route.as_path a) < Aspath.length (Rib.Route.as_path b))

let test_decision_origin () =
  prefer "igp beats egp"
    (route ~origin:Attr.Igp ())
    (route ~peer:"2.2.2.2" ~origin:Attr.Egp ());
  prefer "egp beats incomplete"
    (route ~origin:Attr.Egp ())
    (route ~peer:"2.2.2.2" ~origin:Attr.Incomplete ())

let test_decision_med () =
  (* Same neighbor AS: lower MED wins. *)
  prefer "lower med wins (same neighbor)"
    (route ~med:5 ())
    (route ~peer:"2.2.2.2" ~med:50 ());
  (* Different neighbor AS: MED not compared; falls through to peer id. *)
  let a = route ~path:[ 100; 900 ] ~med:50 () in
  let b = route ~peer:"2.2.2.2" ~path:[ 200; 900 ] ~med:5 () in
  checkb "med skipped across neighbors; lower peer id wins" true
    (Rib.Decision.compare a b < 0);
  (* With always_compare_med, MED applies across neighbors. *)
  let config =
    { Rib.Decision.default_config with always_compare_med = true }
  in
  checkb "always_compare_med flips it" true
    (Rib.Decision.compare ~config b a < 0)

let test_decision_ebgp_over_ibgp () =
  prefer "ebgp wins"
    (route ~ebgp:true ())
    (route ~peer:"2.2.2.2" ~ebgp:false ())

let test_decision_age_and_id () =
  let config = { Rib.Decision.default_config with prefer_oldest = true } in
  let old = route ~learned_at:1. () in
  let young = route ~peer:"0.0.0.2" ~learned_at:100. () in
  checkb "older wins when enabled" true
    (Rib.Decision.compare ~config old young < 0);
  (* Without the age tiebreak, the lower peer id wins. *)
  checkb "lower peer id wins by default" true
    (Rib.Decision.compare young old < 0)

let test_decision_best_and_rank () =
  let r1 = route ~peer:"3.3.3.3" ~path:[ 1; 2; 3 ] () in
  let r2 = route ~peer:"2.2.2.2" ~path:[ 1 ] () in
  let r3 = route ~peer:"1.1.1.1" ~path:[ 1; 2 ] () in
  checkb "best is shortest" true
    (match Rib.Decision.best [ r1; r2; r3 ] with
    | Some b -> Ipv4.equal b.Rib.Route.source.peer_ip (ip "2.2.2.2")
    | None -> false);
  let ranked = Rib.Decision.rank [ r1; r2; r3 ] in
  checkb "rank sorted" true
    (List.map (fun r -> Aspath.length (Rib.Route.as_path r)) ranked = [ 1; 2; 3 ]);
  checkb "best of empty" true (Rib.Decision.best [] = None)

(* -- table --------------------------------------------------------------------- *)

let test_table_update_withdraw () =
  let t = Rib.Table.create () in
  let r1 = route ~peer:"1.1.1.1" ~path:[ 1; 2 ] () in
  let r2 = route ~peer:"2.2.2.2" ~path:[ 1 ] () in
  checkb "first insert changes best" true
    (match Rib.Table.update t r1 with
    | Rib.Table.Best_changed (_, Some _) -> true
    | _ -> false);
  checkb "better route changes best" true
    (match Rib.Table.update t r2 with
    | Rib.Table.Best_changed (_, Some b) ->
        Ipv4.equal b.Rib.Route.source.peer_ip (ip "2.2.2.2")
    | _ -> false);
  checki "two candidates" 2 (Rib.Table.route_count t);
  checki "one prefix" 1 (Rib.Table.prefix_count t);
  (* Withdrawing the best promotes the other. *)
  (match
     Rib.Table.withdraw t ~prefix:(pfx "10.0.0.0/24") ~peer_ip:(ip "2.2.2.2")
       ~path_id:None
   with
  | Rib.Table.Best_changed (_, Some b) ->
      checkb "fallback to r1" true
        (Ipv4.equal b.Rib.Route.source.peer_ip (ip "1.1.1.1"))
  | _ -> Alcotest.fail "expected best change");
  (* Withdrawing the last empties the entry. *)
  (match
     Rib.Table.withdraw t ~prefix:(pfx "10.0.0.0/24") ~peer_ip:(ip "1.1.1.1")
       ~path_id:None
   with
  | Rib.Table.Best_changed (_, None) -> ()
  | _ -> Alcotest.fail "expected unreachable");
  checki "empty" 0 (Rib.Table.route_count t)

let test_table_implicit_withdraw () =
  let t = Rib.Table.create () in
  ignore (Rib.Table.update t (route ~path:[ 1; 2; 3 ] ()));
  ignore (Rib.Table.update t (route ~path:[ 9 ] ()));
  (* Same (peer, path_id): replaces, not accumulates. *)
  checki "replaced" 1 (Rib.Table.route_count t);
  checkb "new attrs live" true
    (match Rib.Table.best t (pfx "10.0.0.0/24") with
    | Some b -> Aspath.length (Rib.Route.as_path b) = 1
    | None -> false)

let test_table_add_path_keys () =
  let t = Rib.Table.create () in
  ignore (Rib.Table.update t (route ~path_id:(Some 1) ~path:[ 1 ] ()));
  ignore (Rib.Table.update t (route ~path_id:(Some 2) ~path:[ 1; 2 ] ()));
  (* Same peer, distinct path ids: both kept (ADD-PATH). *)
  checki "both variants" 2 (Rib.Table.route_count t)

let test_table_unchanged_event () =
  let t = Rib.Table.create () in
  ignore (Rib.Table.update t (route ~peer:"1.1.1.1" ~path:[ 1 ] ()));
  let change = Rib.Table.update t (route ~peer:"2.2.2.2" ~path:[ 1; 2 ] ()) in
  checkb "worse route does not change best" true (change = Rib.Table.Unchanged);
  let change =
    Rib.Table.withdraw t ~prefix:(pfx "10.0.0.0/24") ~peer_ip:(ip "2.2.2.2")
      ~path_id:None
  in
  checkb "withdrawing a loser is silent" true (change = Rib.Table.Unchanged)

let test_table_drop_peer () =
  let t = Rib.Table.create () in
  ignore (Rib.Table.update t (route ~peer:"1.1.1.1" ~path:[ 1 ] ()));
  ignore
    (Rib.Table.update t
       (route ~prefix:(pfx "10.1.0.0/24") ~peer:"1.1.1.1" ~path:[ 1 ] ()));
  ignore (Rib.Table.update t (route ~peer:"2.2.2.2" ~path:[ 1; 2 ] ()));
  let changes = Rib.Table.drop_peer t ~peer_ip:(ip "1.1.1.1") in
  checki "two best changes" 2 (List.length changes);
  checki "one route left" 1 (Rib.Table.route_count t)

let test_table_lookup () =
  let t = Rib.Table.create () in
  ignore (Rib.Table.update t (route ~prefix:(pfx "10.0.0.0/8") ~path:[ 1; 2 ] ()));
  ignore
    (Rib.Table.update t (route ~prefix:(pfx "10.1.0.0/16") ~path:[ 1 ] ()));
  checkb "longest prefix wins" true
    (match Rib.Table.lookup t (ip "10.1.2.3") with
    | Some r -> Prefix.equal r.Rib.Route.prefix (pfx "10.1.0.0/16")
    | None -> false);
  checkb "fallback" true
    (match Rib.Table.lookup t (ip "10.2.0.1") with
    | Some r -> Prefix.equal r.Rib.Route.prefix (pfx "10.0.0.0/8")
    | None -> false);
  checki "lookup_all sees both entries" 2
    (List.length (Rib.Table.lookup_all t (ip "10.1.2.3")))

(* -- fib -------------------------------------------------------------------------- *)

let test_fib_basics () =
  let f = Rib.Fib.create () in
  Rib.Fib.insert f (pfx "10.0.0.0/8") { Rib.Fib.next_hop = ip "1.1.1.1"; neighbor = 1 };
  Rib.Fib.insert f (pfx "10.1.0.0/16") { Rib.Fib.next_hop = ip "2.2.2.2"; neighbor = 2 };
  checki "entries" 2 (Rib.Fib.entry_count f);
  checkb "lpm" true
    (match Rib.Fib.lookup f (ip "10.1.9.9") with
    | Some e -> e.Rib.Fib.neighbor = 2
    | None -> false);
  Rib.Fib.remove f (pfx "10.1.0.0/16");
  checki "after remove" 1 (Rib.Fib.entry_count f);
  (* Re-inserting the same prefix replaces, not duplicates. *)
  Rib.Fib.insert f (pfx "10.0.0.0/8") { Rib.Fib.next_hop = ip "3.3.3.3"; neighbor = 3 };
  checki "replace keeps count" 1 (Rib.Fib.entry_count f);
  Rib.Fib.clear f;
  checki "cleared" 0 (Rib.Fib.entry_count f)

let test_fib_set () =
  let s = Rib.Fib.Set.create () in
  let f1 = Rib.Fib.Set.table s 1 in
  let f2 = Rib.Fib.Set.table s 2 in
  checkb "same table returned" true (Rib.Fib.Set.table s 1 == f1);
  Rib.Fib.insert f1 (pfx "10.0.0.0/8") { Rib.Fib.next_hop = ip "1.1.1.1"; neighbor = 1 };
  Rib.Fib.insert f2 (pfx "10.0.0.0/8") { Rib.Fib.next_hop = ip "2.2.2.2"; neighbor = 2 };
  checki "total entries across tables" 2 (Rib.Fib.Set.total_entries s);
  checki "table count" 2 (Rib.Fib.Set.table_count s);
  (* Per-neighbor isolation: same prefix, different next hops. *)
  checkb "isolated" true
    (match (Rib.Fib.lookup f1 (ip "10.0.0.1"), Rib.Fib.lookup f2 (ip "10.0.0.1")) with
    | Some a, Some b -> a.Rib.Fib.neighbor = 1 && b.Rib.Fib.neighbor = 2
    | _ -> false)

let test_fib_memory_grows () =
  let f = Rib.Fib.create () in
  let before = Rib.Fib.memory_bytes f in
  for i = 0 to 999 do
    Rib.Fib.insert f
      (Prefix.make (Ipv4.of_int32 (Int32.of_int (i * 65536))) 24)
      { Rib.Fib.next_hop = ip "1.1.1.1"; neighbor = 1 }
  done;
  checkb "memory grows with entries" true (Rib.Fib.memory_bytes f > before)

(* The destination cache never serves a stale result: every mutation
   (insert of a more-specific, remove, clear) must be visible to the very
   next lookup of an address whose answer it changes. *)
let test_fib_cache_invalidation () =
  let f = Rib.Fib.create () in
  let neighbor_at addr =
    match Rib.Fib.lookup f (ip addr) with
    | Some e -> e.Rib.Fib.neighbor
    | None -> -1
  in
  Rib.Fib.insert f (pfx "10.0.0.0/8")
    { Rib.Fib.next_hop = ip "1.1.1.1"; neighbor = 1 };
  (* Prime the cache on the /8, then shadow it with a more-specific. *)
  checki "primed via /8" 1 (neighbor_at "10.1.2.3");
  Rib.Fib.insert f (pfx "10.1.0.0/16")
    { Rib.Fib.next_hop = ip "2.2.2.2"; neighbor = 2 };
  checki "insert invalidates" 2 (neighbor_at "10.1.2.3");
  Rib.Fib.remove f (pfx "10.1.0.0/16");
  checki "remove invalidates" 1 (neighbor_at "10.1.2.3");
  (* Negative results are cached too, and must also be invalidated. *)
  checki "miss" (-1) (neighbor_at "11.0.0.1");
  Rib.Fib.insert f (pfx "11.0.0.0/8")
    { Rib.Fib.next_hop = ip "3.3.3.3"; neighbor = 3 };
  checki "cached miss invalidated by insert" 3 (neighbor_at "11.0.0.1");
  Rib.Fib.clear f;
  checki "clear invalidates" (-1) (neighbor_at "10.1.2.3")

(* -- properties --------------------------------------------------------------------- *)

let arbitrary_route =
  QCheck.map
    (fun (peer, lp, pathlen, med) ->
      route
        ~peer:(Printf.sprintf "1.1.1.%d" (1 + (peer mod 200)))
        ~lp:(lp mod 500)
        ~path:(List.init (1 + (pathlen mod 5)) (fun i -> 100 + i))
        ~med:(med mod 100) ())
    QCheck.(quad small_nat small_nat small_nat small_nat)

let prop_best_is_minimal =
  QCheck.Test.make ~name:"best route is minimal under compare" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10) arbitrary_route)
    (fun routes ->
      match Rib.Decision.best routes with
      | None -> false
      | Some b -> List.for_all (fun r -> Rib.Decision.compare b r <= 0) routes)

let prop_compare_transitive_sample =
  QCheck.Test.make ~name:"decision order is transitive (sampled)" ~count:200
    (QCheck.triple arbitrary_route arbitrary_route arbitrary_route)
    (fun (a, b, c) ->
      let ( <<= ) x y = Rib.Decision.compare x y <= 0 in
      (not (a <<= b && b <<= c)) || a <<= c)

let prop_table_count_invariant =
  (* Random update/withdraw sequences keep route_count equal to a model. *)
  QCheck.Test.make ~name:"table count matches model" ~count:100
    (QCheck.list
       (QCheck.triple QCheck.bool (QCheck.int_bound 3) (QCheck.int_bound 3)))
    (fun ops ->
      let t = Rib.Table.create () in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (is_update, peer_i, prefix_i) ->
          let peer = Printf.sprintf "9.9.9.%d" (1 + peer_i) in
          let prefix = pfx (Printf.sprintf "10.%d.0.0/16" prefix_i) in
          let key = (peer, Prefix.to_string prefix) in
          if is_update then begin
            ignore (Rib.Table.update t (route ~peer ~prefix ()));
            Hashtbl.replace model key ()
          end
          else begin
            ignore
              (Rib.Table.withdraw t ~prefix ~peer_ip:(ip peer) ~path_id:None);
            Hashtbl.remove model key
          end)
        ops;
      Rib.Table.route_count t = Hashtbl.length model)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_best_is_minimal; prop_compare_transitive_sample; prop_table_count_invariant ]

let () =
  Alcotest.run "rib"
    [
      ( "decision",
        [
          Alcotest.test_case "local pref" `Quick test_decision_local_pref;
          Alcotest.test_case "path length" `Quick test_decision_path_length;
          Alcotest.test_case "origin" `Quick test_decision_origin;
          Alcotest.test_case "med" `Quick test_decision_med;
          Alcotest.test_case "ebgp over ibgp" `Quick test_decision_ebgp_over_ibgp;
          Alcotest.test_case "age and router id" `Quick test_decision_age_and_id;
          Alcotest.test_case "best and rank" `Quick test_decision_best_and_rank;
        ] );
      ( "table",
        [
          Alcotest.test_case "update/withdraw" `Quick test_table_update_withdraw;
          Alcotest.test_case "implicit withdraw" `Quick test_table_implicit_withdraw;
          Alcotest.test_case "add-path keys" `Quick test_table_add_path_keys;
          Alcotest.test_case "unchanged events" `Quick test_table_unchanged_event;
          Alcotest.test_case "drop peer" `Quick test_table_drop_peer;
          Alcotest.test_case "lookup" `Quick test_table_lookup;
        ] );
      ( "fib",
        [
          Alcotest.test_case "basics" `Quick test_fib_basics;
          Alcotest.test_case "per-neighbor set" `Quick test_fib_set;
          Alcotest.test_case "memory accounting" `Quick test_fib_memory_grows;
          Alcotest.test_case "cache invalidation" `Quick
            test_fib_cache_invalidation;
        ] );
      ("properties", qcheck_cases);
    ]
