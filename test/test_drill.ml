(* Failover drills: kill a whole PoP, watch health-gated degradation
   re-home its announcements onto survivors, restart it, and reconverge
   the platform — BGP state through graceful restart and full-table
   resync, kernel state through the two-phase controller re-apply — back
   to a never-faulted control world's fingerprint. Same control-vs-faulted
   discipline as the chaos suite, across a seed matrix. *)

open Netcore
open Bgp
open Peering

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let pfx = Prefix.of_string_exn

type world = {
  platform : Platform.t;
  pops : Pop.t list;  (** [pop01; pop02] *)
  kit : Toolkit.t;
  prefix : Prefix.t;
}

(* Two PoPs on a backbone mesh against a seed-determined synthetic
   Internet, the experiment attached and announcing its first prefix at
   BOTH sites (so a dead site has somewhere to re-home to), and every
   kernel reconciled to the intent through the two-phase controller. *)
let build_world ~seed () =
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 6; stub = 24; seed }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(pfx "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 12) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  let platform = Platform.create () in
  let pop_a = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let pop_b = Platform.add_pop platform ~name:"pop02" ~site:Pop.Ixp () in
  ignore
    (Platform.populate_pop platform ~pop:pop_a ~internet ~transits:2 ~peers:1
       ());
  ignore
    (Platform.populate_pop platform ~pop:pop_b ~internet ~transits:2 ~peers:1
       ());
  Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"drill" ~team:"drill" ~goals:"failover" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop_a);
  ignore (Toolkit.open_tunnel kit pop_b);
  Toolkit.start_session kit ~pop:"pop01";
  Toolkit.start_session kit ~pop:"pop02";
  Platform.run platform ~seconds:10.;
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:10.;
  (match Failover.reapply platform (Config_model.of_platform platform) with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> failwith "initial intent apply failed");
  { platform; pops = [ pop_a; pop_b ]; kit; prefix }

let run_seconds w s = Platform.run w.platform ~seconds:s
let now w = Sim.Engine.now (Platform.engine w.platform)

(* -- the multi-PoP fingerprint (chaos suite's, across sites) --------------- *)

let route_line (r : Rib.Route.t) =
  Fmt.str "%a/%s from %a: %a" Prefix.pp r.Rib.Route.prefix
    (match r.Rib.Route.path_id with Some i -> string_of_int i | None -> "-")
    Ipv4.pp r.Rib.Route.source.Rib.Route.peer_ip Attr.pp_set
    (Rib.Route.attrs r)

let fingerprint w =
  let exp_rib =
    List.concat_map
      (fun pop ->
        List.map
          (fun r -> Fmt.str "%s %s" (Pop.name pop) (route_line r))
          (Toolkit.routes w.kit ~pop:(Pop.name pop)))
      w.pops
    |> List.sort compare
  in
  let adj_out =
    List.concat_map
      (fun pop ->
        List.concat_map
          (fun h ->
            let id = Neighbor_host.neighbor_id h in
            List.map
              (fun (p, attrs) ->
                Fmt.str "%s %d %a %a" (Pop.name pop) id Prefix.pp p
                  Attr.pp_set attrs)
              (Vbgp.Router.adj_out_routes (Pop.router pop) ~neighbor_id:id))
          (Pop.neighbors pop))
      w.pops
    |> List.sort compare
  in
  let heard =
    List.concat_map
      (fun pop ->
        List.concat_map
          (fun h ->
            Hashtbl.fold
              (fun p attrs acc ->
                Fmt.str "%s %d %a %a" (Pop.name pop)
                  (Neighbor_host.neighbor_id h)
                  Prefix.pp p Attr.pp_set attrs
                :: acc)
              h.Neighbor_host.heard [])
          (Pop.neighbors pop))
      w.pops
    |> List.sort compare
  in
  let fibs =
    List.concat_map
      (fun pop ->
        let set = Vbgp.Router.fib_set (Pop.router pop) in
        List.concat_map
          (fun id ->
            match Rib.Fib.Set.find set id with
            | Some fib ->
                Rib.Fib.fold
                  (fun p (e : Rib.Fib.entry) acc ->
                    Fmt.str "%s %d %a via %a@%d" (Pop.name pop) id Prefix.pp
                      p Ipv4.pp e.Rib.Fib.next_hop e.Rib.Fib.neighbor
                    :: acc)
                  fib []
            | None -> [])
          (List.sort compare (Rib.Fib.Set.table_ids set)))
      w.pops
    |> List.sort compare
  in
  let counts =
    List.map (fun pop -> Vbgp.Router.route_count (Pop.router pop)) w.pops
  in
  (exp_rib, adj_out, heard, fibs, counts)

let check_converged ~seed ~fault control faulted =
  let c_rib, c_adj, c_heard, c_fib, c_counts = fingerprint control in
  let f_rib, f_adj, f_heard, f_fib, f_counts = fingerprint faulted in
  let tag what =
    Printf.sprintf "seed %d: %s matches control\nfault script:\n%s" seed what
      (Sim.Fault.script fault)
  in
  Alcotest.(check (list string)) (tag "experiment RIBs") c_rib f_rib;
  Alcotest.(check (list string)) (tag "Adj-RIB-Outs") c_adj f_adj;
  Alcotest.(check (list string)) (tag "neighbor heard-tables") c_heard f_heard;
  Alcotest.(check (list string)) (tag "per-neighbor FIBs") c_fib f_fib;
  Alcotest.(check (list int)) (tag "router route counts") c_counts f_counts

(* -- the drill -------------------------------------------------------------- *)

(* Kill pop02 outright. Health must detect it within the drill window and
   fire the re-homing actuator (survivors flush the dead site's imports);
   traffic entering the surviving PoP still reaches the experiment; a
   controller apply against the dead site must abort with zero residual;
   after restart plus two-phase re-apply, the world is indistinguishable
   from a control that never faulted. *)
let drill ~seed =
  let control = build_world ~seed () in
  let faulted = build_world ~seed () in
  let health = Health.create faulted.platform in
  Health.start health;
  let fault = Sim.Fault.create ~seed (Platform.engine faulted.platform) in
  let victim = "pop02" in
  let kill_time = now faulted +. 1.25 in
  Sim.Fault.kill_pop fault ~at:1.25 ~pop:victim (fun () ->
      Failover.kill_pop faulted.platform ~kits:[ faulted.kit ] ~name:victim ());
  run_seconds control 15.;
  run_seconds faulted 15.;
  (* Detection: Failed within the drill window, logged with its time. *)
  checkb
    (Printf.sprintf "seed %d: victim declared Failed" seed)
    true
    (Health.status health ~pop:victim = Health.Failed);
  (match
     List.find_opt
       (fun (_, p, s) -> String.equal p victim && s = Health.Failed)
       (Health.transitions health)
   with
  | Some (t, _, _) ->
      checkb
        (Printf.sprintf "seed %d: failure detected within 5s (took %.1fs)"
           seed (t -. kill_time))
        true
        (t -. kill_time <= 5.0)
  | None -> Alcotest.fail "no Failed transition recorded");
  let survivor = List.hd faulted.pops in
  (* Re-homing: the surviving PoP still announces the experiment prefix
     to its neighbors, and inbound traffic still reaches the experiment. *)
  List.iter
    (fun h ->
      checkb
        (Printf.sprintf "seed %d: survivor neighbor still hears the prefix"
           seed)
        true
        (Neighbor_host.heard_route h faulted.prefix <> None))
    (Pop.neighbors survivor);
  let delivered_before = List.length (Toolkit.received faulted.kit) in
  let prober = List.hd (Pop.neighbors survivor) in
  Neighbor_host.send_packet prober ~src:prober.Neighbor_host.ip
    ~dst:(Prefix.host faulted.prefix 9)
    "re-homed";
  run_seconds faulted 2.;
  run_seconds control 2.;
  checkb
    (Printf.sprintf "seed %d: traffic re-homed through the survivor" seed)
    true
    (List.length (Toolkit.received faulted.kit) > delivered_before);
  (* A config push while the site is dead must abort in prepare and leave
     zero residual on the survivor. *)
  let cfg = Config_model.of_platform faulted.platform in
  let survivor_snapshot = Controller.Kernel.observe (Pop.kernel survivor) in
  (match Failover.reapply faulted.platform cfg with
  | Controller.Multi.Aborted { failed_pop; phase; _ } ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: dead PoP named" seed)
        victim failed_pop;
      checkb
        (Printf.sprintf "seed %d: failed in prepare" seed)
        true
        (phase = Controller.Multi.Prepare)
  | _ -> Alcotest.fail "apply against a dead PoP must abort");
  checkb
    (Printf.sprintf "seed %d: survivor kernel untouched by the abort" seed)
    true
    (Controller.Kernel.observe (Pop.kernel survivor) = survivor_snapshot);
  (* Restart, let BGP resync and health recover, then re-apply intent. *)
  Sim.Fault.restart_pop fault ~at:1.0 ~pop:victim (fun () ->
      Failover.restart_pop faulted.platform ~kits:[ faulted.kit ]
        ~name:victim ());
  run_seconds control 45.;
  run_seconds faulted 45.;
  checkb
    (Printf.sprintf "seed %d: victim Healthy again after restart" seed)
    true
    (Health.status health ~pop:victim = Health.Healthy);
  (match Failover.reapply faulted.platform cfg with
  | Controller.Multi.Committed_all _ -> ()
  | Controller.Multi.Aborted { failed_pop; error; _ } ->
      Alcotest.fail
        (Printf.sprintf "post-restart reapply aborted at %s: %s" failed_pop
           error)
  | Controller.Multi.Crashed _ -> Alcotest.fail "post-restart reapply crashed");
  checkb
    (Printf.sprintf "seed %d: every kernel converged to intent" seed)
    true
    (Controller.Multi.converged_all (Failover.participants faulted.platform cfg));
  (* The rebuilt kernel is indistinguishable from the control's. *)
  List.iter2
    (fun cp fp ->
      checkb
        (Printf.sprintf "seed %d: %s kernel state matches control" seed
           (Pop.name fp))
        true
        (Controller.Kernel.observe (Pop.kernel cp)
        = Controller.Kernel.observe (Pop.kernel fp)))
    control.pops faulted.pops;
  Health.stop health;
  check_converged ~seed ~fault control faulted

let test_kill_restart_reconverges () = List.iter (fun seed -> drill ~seed) [ 3; 17; 71 ]

(* Degraded mode: every session at the PoP transport-fails at once. The
   health monitor must notice (Degraded), must NOT escalate to Failed —
   the sessions recover through reconnect backoff within a probe or two —
   and must return the PoP to Healthy once they do. *)
let test_degradation_recovers () =
  let w = build_world ~seed:4 () in
  let health = Health.create w.platform in
  Health.start health;
  let fault = Sim.Fault.create ~seed:4 (Platform.engine w.platform) in
  Sim.Fault.degrade_pop fault ~at:1.5 ~pop:"pop01" ~fraction:1.0 (fun () ->
      ignore
        (Failover.degrade_pop w.platform ~name:"pop01" ~fraction:1.0
           ~rng:(Sim.Fault.rng fault) ()));
  run_seconds w 20.;
  let ts = Health.transitions health in
  checkb "degradation observed" true
    (List.exists
       (fun (_, p, s) -> String.equal p "pop01" && s = Health.Degraded)
       ts);
  checkb "never escalated to Failed" true
    (not
       (List.exists
          (fun (_, p, s) -> String.equal p "pop01" && s = Health.Failed)
          ts));
  checkb "back to Healthy" true (Health.status health ~pop:"pop01" = Health.Healthy);
  List.iter
    (fun h ->
      checkb "session recovered on its own" true
        (Neighbor_host.is_established h))
    (Pop.neighbors (List.hd w.pops));
  Health.stop health

(* Two-phase guarantees on a live platform: an apply that cannot reach one
   PoP aborts in prepare with zero residual anywhere; one whose commit
   fails at one PoP rolls the already-committed PoPs back; a clean retry
   then converges everything. *)
let test_two_phase_zero_residual () =
  let w = build_world ~seed:9 () in
  let cfg = Config_model.of_platform w.platform in
  let k1 = Pop.kernel (List.nth w.pops 0) in
  let k2 = Pop.kernel (List.nth w.pops 1) in
  (* Out-of-band drift on both kernels gives every commit real work and
     makes "zero residual" distinguishable from "reconciled". *)
  let drift k =
    match
      Controller.Kernel.apply k
        (Controller.Add_route
           { Controller.table = 9; prefix = Prefix.default; via = Ipv4.of_octets 9 9 9 9 })
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  in
  drift k1;
  drift k2;
  let snap1 = Controller.Kernel.observe k1 in
  let snap2 = Controller.Kernel.observe k2 in
  Controller.Kernel.set_offline k2 true;
  (match Failover.reapply w.platform cfg with
  | Controller.Multi.Aborted { failed_pop; phase; _ } ->
      Alcotest.(check string) "unreachable PoP named" "pop02" failed_pop;
      checkb "aborted in prepare" true (phase = Controller.Multi.Prepare)
  | _ -> Alcotest.fail "expected Aborted in prepare");
  checkb "pop01 untouched" true (Controller.Kernel.observe k1 = snap1);
  checkb "pop02 untouched" true (Controller.Kernel.observe k2 = snap2);
  (* Reachable again, but its kernel rejects the first op: pop01 commits
     first, then the abort must roll pop01 back to its snapshot. *)
  Controller.Kernel.set_offline k2 false;
  Controller.Kernel.inject_failure k2 ~after:0;
  let retry =
    { Controller.Multi.max_attempts = 1; backoff_base = 0.1; backoff_max = 1. }
  in
  (match Failover.reapply ~retry w.platform cfg with
  | Controller.Multi.Aborted { failed_pop; phase; journal; _ } ->
      Alcotest.(check string) "failing PoP named" "pop02" failed_pop;
      checkb "aborted in commit" true (phase = Controller.Multi.Commit);
      checkb "pop01 rolled back" true
        (match Controller.Multi.entry journal "pop01" with
        | Some e -> e.Controller.Multi.status = Controller.Multi.Rolled_back
        | None -> false)
  | _ -> Alcotest.fail "expected Aborted in commit");
  checkb "pop01 restored to pre-apply state" true
    (Controller.Kernel.observe k1 = snap1);
  checkb "pop02 restored to pre-apply state" true
    (Controller.Kernel.observe k2 = snap2);
  (* Nothing in the way now: the drift reconciles away everywhere. *)
  (match Failover.reapply w.platform cfg with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> Alcotest.fail "clean reapply should commit");
  checkb "platform converged to intent" true
    (Controller.Multi.converged_all (Failover.participants w.platform cfg));
  checki "drift reconciled away on pop01" 0
    (List.length
       (List.filter
          (fun (r : Controller.route) -> r.Controller.table = 9)
          (Controller.Kernel.observe k1).Controller.routes))

let () =
  Alcotest.run "drill"
    [
      ( "failover",
        [
          Alcotest.test_case "kill, re-home, restart, reconverge (seed matrix)"
            `Quick test_kill_restart_reconverges;
          Alcotest.test_case "degraded mode recovers without Failed" `Quick
            test_degradation_recovers;
          Alcotest.test_case "two-phase apply leaves zero residual" `Quick
            test_two_phase_zero_residual;
        ] );
    ]
