(* Differential and regression tests for the batched-ingest control plane.
   The dirty-queue batched path (the default) must be observationally
   identical to the legacy eager per-prefix export path: a QCheck property
   drives the same random announce/withdraw/flap sequence through two
   identically-wired routers — one batched, one eager — and compares full
   RIB/FIB/export fingerprints. Alongside it: graceful-restart End-of-RIB
   mark-and-sweep under batching, same-tick coalescing, and determinism of
   the staged churn generator. *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let null_handlers =
  {
    Session.on_update = ignore;
    on_established = ignore;
    on_down = ignore;
    on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
  }

(* -- fixture: one router, three neighbors, one listening experiment ------- *)

let n_neighbors = 3
let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i))

type fixture = {
  engine : Sim.Engine.t;
  router : Router.t;
  neighbor_ids : int array;
  pairs : Sim.Bgp_wire.pair array;
  heard : (Prefix.t * int option, Attr.set) Hashtbl.t;
      (** the experiment's view, keyed by (prefix, ADD-PATH id) *)
  announces : (Prefix.t * int option) list ref;  (** announce NLRIs heard *)
  withdrawn_seen : int ref;  (** withdraw NLRIs heard *)
}

let make_fixture ?(gr_restart_time = 0) ~ingest_batching () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"ingest" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ~ingest_batching
      ~gr_restart_time ()
  in
  Router.activate router;
  let both =
    Array.init n_neighbors (fun i ->
        Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:(neighbor_ip i)
          ~kind:Neighbor.Transit ~remote_id:(neighbor_ip i) ())
  in
  let neighbor_ids = Array.map fst both and pairs = Array.map snd both in
  Array.iter Sim.Bgp_wire.start pairs;
  let grant =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      "ingest-diff"
  in
  let epair =
    Router.connect_experiment router ~grant ~mac:(Mac.local ~pool:0xe0 1) ()
  in
  let heard = Hashtbl.create 64 in
  let announces = ref [] and withdrawn_seen = ref 0 in
  Session.set_handlers epair.Sim.Bgp_wire.active
    {
      null_handlers with
      Session.on_update =
        (fun u ->
          if not (Msg.is_end_of_rib u) then begin
            List.iter
              (fun (n : Msg.nlri) ->
                incr withdrawn_seen;
                Hashtbl.remove heard (n.Msg.prefix, n.Msg.path_id))
              u.Msg.withdrawn;
            List.iter
              (fun (n : Msg.nlri) ->
                announces := (n.Msg.prefix, n.Msg.path_id) :: !announces;
                Hashtbl.replace heard (n.Msg.prefix, n.Msg.path_id) u.Msg.attrs)
              u.Msg.announced
          end);
    };
  Sim.Bgp_wire.start epair;
  Sim.Engine.run_until engine 5.;
  { engine; router; neighbor_ids; pairs; heard; announces; withdrawn_seen }

let settle fx =
  Router.flush_reexports fx.router;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)

(* -- canonical, time-independent fingerprint of converged state ----------- *)

let route_line (r : Rib.Route.t) =
  Fmt.str "%a/%s from %a: %a" Prefix.pp r.Rib.Route.prefix
    (match r.Rib.Route.path_id with Some i -> string_of_int i | None -> "-")
    Ipv4.pp r.Rib.Route.source.Rib.Route.peer_ip Attr.pp_set
    (Rib.Route.attrs r)

let fingerprint fx =
  settle fx;
  let ribs =
    Array.to_list fx.neighbor_ids
    |> List.concat_map (fun id ->
           List.map
             (fun r -> Fmt.str "%d %s" id (route_line r))
             (Router.neighbor_routes fx.router ~neighbor_id:id))
    |> List.sort compare
  in
  let fibs =
    let set = Router.fib_set fx.router in
    List.concat_map
      (fun id ->
        match Rib.Fib.Set.find set id with
        | Some fib ->
            Rib.Fib.fold
              (fun p (e : Rib.Fib.entry) acc ->
                Fmt.str "%d %a via %a@%d" id Prefix.pp p Ipv4.pp
                  e.Rib.Fib.next_hop e.Rib.Fib.neighbor
                :: acc)
              fib []
        | None -> [])
      (List.sort compare (Rib.Fib.Set.table_ids set))
    |> List.sort compare
  in
  let heard =
    Hashtbl.fold
      (fun (p, pid) attrs acc ->
        Fmt.str "%a/%s %a" Prefix.pp p
          (match pid with Some i -> string_of_int i | None -> "-")
          Attr.pp_set attrs
        :: acc)
      fx.heard []
    |> List.sort compare
  in
  String.concat "\n" (("rib:" :: ribs) @ ("fib:" :: fibs) @ ("heard:" :: heard))

(* -- random operation sequences ------------------------------------------- *)

type op =
  | Announce of int * int * int  (** neighbor, prefix index, attr variant *)
  | Withdraw of int * int
  | Flap of int  (** transport loss + auto-reconnect on one neighbor *)
  | Tick  (** advance simulated time (flushes the dirty queue) *)

let op_prefix i =
  Prefix.make (Ipv4.of_int32 (Int32.logor 0xC0A80000l (Int32.of_int (i lsl 8)))) 24

let attr_variant ~nbr v =
  Attr.origin_attrs
    ~as_path:(Aspath.of_asns (List.map asn [ 100 + nbr; 900 + v; 65000 ]))
    ~next_hop:(neighbor_ip nbr) ()
  |> Attr.with_med v

let apply fx = function
  | Announce (nbr, p, v) ->
      let s = fx.pairs.(nbr).Sim.Bgp_wire.active in
      if Session.established s then
        Session.send_update s
          (Msg.update ~attrs:(attr_variant ~nbr v)
             ~announced:[ Msg.nlri (op_prefix p) ]
             ())
  | Withdraw (nbr, p) ->
      let s = fx.pairs.(nbr).Sim.Bgp_wire.active in
      if Session.established s then
        Session.send_update s
          (Msg.update ~withdrawn:[ Msg.nlri (op_prefix p) ] ())
  | Flap nbr ->
      let fault = Sim.Fault.create fx.engine in
      Sim.Fault.kill_pair fault
        ~at:(Sim.Engine.now fx.engine +. 0.01)
        fx.pairs.(nbr);
      Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)
  | Tick -> Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 1.)

let pp_op = function
  | Announce (n, p, v) -> Printf.sprintf "A(n%d,p%d,v%d)" n p v
  | Withdraw (n, p) -> Printf.sprintf "W(n%d,p%d)" n p
  | Flap n -> Printf.sprintf "F(n%d)" n
  | Tick -> "T"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun n p v -> Announce (n, p, v))
            (int_bound (n_neighbors - 1))
            (int_bound 7) (int_bound 2) );
        ( 3,
          map2
            (fun n p -> Withdraw (n, p))
            (int_bound (n_neighbors - 1))
            (int_bound 7) );
        (1, map (fun n -> Flap n) (int_bound (n_neighbors - 1)));
        (2, return Tick);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 30) gen_op)

let prop_differential =
  QCheck.Test.make
    ~name:"batched ingest is observationally identical to eager" ~count:15
    ops_arb
    (fun ops ->
      let run ~ingest_batching =
        let fx = make_fixture ~ingest_batching () in
        List.iter (apply fx) ops;
        fingerprint fx
      in
      String.equal (run ~ingest_batching:true) (run ~ingest_batching:false))

(* -- graceful restart under batched ingest -------------------------------- *)

(* A GR-aware neighbor flaps and replays only part of its table: the stale
   mark-and-sweep must run against the batched RIB writes — retained routes
   generate zero churn toward the experiment, the missing route exactly one
   withdrawal at End-of-RIB. *)
let test_gr_eor_batched () =
  let fx = make_fixture ~gr_restart_time:120 ~ingest_batching:true () in
  let nbr = 0 in
  let s = fx.pairs.(nbr).Sim.Bgp_wire.active in
  let announce p =
    Session.send_update s
      (Msg.update ~attrs:(attr_variant ~nbr 0)
         ~announced:[ Msg.nlri (op_prefix p) ]
         ())
  in
  announce 0;
  announce 1;
  announce 2;
  Session.send_update s (Msg.update ());
  settle fx;
  checki "experiment heard the initial table" 3 (Hashtbl.length fx.heard);
  (* On re-establishment the neighbor replays p0 and p1 (same attributes)
     but not p2, closing with End-of-RIB. *)
  Session.set_handlers s
    {
      null_handlers with
      Session.on_established =
        (fun () ->
          announce 0;
          announce 1;
          Session.send_update s (Msg.update ()));
    };
  fx.withdrawn_seen := 0;
  fx.announces := [];
  let fault = Sim.Fault.create fx.engine in
  Sim.Fault.kill_pair fault ~at:(Sim.Engine.now fx.engine +. 0.5) fx.pairs.(nbr);
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 30.);
  settle fx;
  let id = fx.neighbor_ids.(nbr) in
  checki "no stale routes after the sweep" 0
    (Router.stale_count fx.router ~neighbor_id:id);
  checki "replayed routes retained" 2
    (List.length (Router.neighbor_routes fx.router ~neighbor_id:id));
  checkb "retained prefix still heard" true
    (Hashtbl.mem fx.heard (op_prefix 0, Some id));
  checkb "swept prefix withdrawn from experiment" false
    (Hashtbl.mem fx.heard (op_prefix 2, Some id));
  checki "exactly one withdrawal (the swept route)" 1 !(fx.withdrawn_seen);
  checki "retained routes generated no announce churn" 0
    (List.length !(fx.announces))

(* -- same-tick coalescing -------------------------------------------------- *)

(* An announce and its withdraw arriving within one engine tick net out in
   the dirty queue: the transient route must never reach the experiment. *)
let test_batched_coalesces () =
  let fx = make_fixture ~ingest_batching:true () in
  let s = fx.pairs.(0).Sim.Bgp_wire.active in
  fx.announces := [];
  Session.send_update s
    (Msg.update ~attrs:(attr_variant ~nbr:0 0)
       ~announced:[ Msg.nlri (op_prefix 0) ]
       ());
  Session.send_update s (Msg.update ~withdrawn:[ Msg.nlri (op_prefix 0) ] ());
  settle fx;
  checki "router table empty" 0 (Router.route_count fx.router);
  checkb "experiment never saw the prefix" false
    (Hashtbl.mem fx.heard (op_prefix 0, Some fx.neighbor_ids.(0)));
  checki "transient announce suppressed" 0 (List.length !(fx.announces))

(* -- churn generator determinism ------------------------------------------ *)

let small_plan seed =
  Topo.Updates.
    {
      stages =
        [
          Announce_wave { count = 400; rate = 10_000. };
          Withdraw_storm { fraction = 0.25; rate = 5_000. };
          Peer_flap { peers = 2; rate = 10_000. };
          Announce_wave { count = 50; rate = 10_000. };
        ];
      peer_count = 8;
      path_pool = 32;
      prefix_of = Topo.Updates.default_prefix_of;
      origin_asn = asn 65010;
      plan_seed = seed;
    }

let event_line (e : Topo.Updates.event) =
  Fmt.str "%.6f %d %a %s %s" e.Topo.Updates.time e.Topo.Updates.peer_index
    Prefix.pp e.Topo.Updates.prefix
    (match e.Topo.Updates.kind with
    | Topo.Updates.Announce -> "A"
    | Topo.Updates.Withdraw -> "W")
    (Aspath.to_string e.Topo.Updates.as_path)

let collect plan =
  let buf = ref [] in
  let stats = Topo.Updates.run ~plan ~emit:(fun e -> buf := e :: !buf) () in
  (stats, List.rev_map event_line !buf)

let test_churn_determinism () =
  let stats_a, a = collect (small_plan 7) in
  let _, b = collect (small_plan 7) in
  let _, c = collect (small_plan 8) in
  checki "stream length matches stats" stats_a.Topo.Updates.events
    (List.length a);
  checki "kind split sums to total" stats_a.Topo.Updates.events
    (stats_a.Topo.Updates.announce_events
   + stats_a.Topo.Updates.withdraw_events);
  checks "identical seeds, identical streams" (String.concat "\n" a)
    (String.concat "\n" b);
  checkb "different seed, different stream" false
    (List.equal String.equal a c)

let () =
  Alcotest.run "ingest"
    [
      ("differential", [ QCheck_alcotest.to_alcotest prop_differential ]);
      ( "graceful-restart",
        [
          Alcotest.test_case "EoR mark-and-sweep under batched ingest" `Quick
            test_gr_eor_batched;
        ] );
      ( "batching",
        [
          Alcotest.test_case "same-tick announce+withdraw coalesces" `Quick
            test_batched_coalesces;
        ] );
      ( "churn",
        [
          Alcotest.test_case "generator is deterministic per seed" `Quick
            test_churn_determinism;
        ] );
    ]
