(* Tests for the vBGP core: address pools, rate limiting, export control,
   the control- and data-plane enforcement engines, ARP, and the router's
   delegation mechanics (next-hop rewriting, per-neighbor tables, MAC-based
   forwarding, experiment multiplexing). *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* -- addr_pool ----------------------------------------------------------------- *)

let test_addr_pool () =
  let pool = Addr_pool.create ~base:(pfx "127.65.0.0/16") ~mac_pool:0x65 in
  let a = Addr_pool.allocate pool "n1" in
  let b = Addr_pool.allocate pool "n2" in
  checkb "distinct ips" false (Ipv4.equal a.Addr_pool.ip b.Addr_pool.ip);
  checkb "distinct macs" false (Mac.equal a.Addr_pool.mac b.Addr_pool.mac);
  checks "first allocation" "127.65.0.1" (Ipv4.to_string a.Addr_pool.ip);
  (* Idempotent per key. *)
  let a' = Addr_pool.allocate pool "n1" in
  checkb "idempotent" true (Ipv4.equal a.Addr_pool.ip a'.Addr_pool.ip);
  (* Reverse lookups. *)
  checkb "by ip" true
    (match Addr_pool.of_ip pool a.Addr_pool.ip with
    | Some x -> x.Addr_pool.key = "n1"
    | None -> false);
  checkb "by mac" true
    (match Addr_pool.of_mac pool b.Addr_pool.mac with
    | Some x -> x.Addr_pool.key = "n2"
    | None -> false);
  checkb "contains" true (Addr_pool.contains pool (ip "127.65.9.9"));
  checkb "not contains" false (Addr_pool.contains pool (ip "127.66.0.1"));
  checki "count" 2 (Addr_pool.count pool);
  Addr_pool.release pool "n1";
  checki "after release" 1 (Addr_pool.count pool);
  checkb "released ip gone" true (Addr_pool.of_ip pool a.Addr_pool.ip = None)

let test_addr_pool_exhaustion () =
  let pool = Addr_pool.create ~base:(pfx "10.0.0.0/30") ~mac_pool:1 in
  ignore (Addr_pool.allocate pool "a");
  ignore (Addr_pool.allocate pool "b");
  ignore (Addr_pool.allocate pool "c");
  Alcotest.check_raises "exhausted"
    (Failure "Addr_pool.allocate: pool exhausted") (fun () ->
      ignore (Addr_pool.allocate pool "d"))

(* -- rate limiter ----------------------------------------------------------------- *)

let test_rate_limiter () =
  let rl = Rate_limiter.create ~limit:3 ~period:60. in
  checkb "first" true (Rate_limiter.allow rl ~now:0. "k");
  checkb "second" true (Rate_limiter.allow rl ~now:1. "k");
  checkb "third" true (Rate_limiter.allow rl ~now:2. "k");
  checkb "fourth denied" false (Rate_limiter.allow rl ~now:3. "k");
  (* Separate keys do not interfere. *)
  checkb "other key fine" true (Rate_limiter.allow rl ~now:3. "other");
  (* Window reset restores budget. *)
  checkb "after window" true (Rate_limiter.allow rl ~now:61. "k");
  checki "remaining" 2 (Rate_limiter.remaining rl ~now:61. "k")

let test_rate_limiter_override () =
  let rl = Rate_limiter.create ~limit:3 ~period:60. in
  checkb "override allows more" true
    (List.for_all
       (fun i -> Rate_limiter.allow ~limit:10 rl ~now:(float_of_int i) "k")
       [ 1; 2; 3; 4; 5 ]);
  checkb "override cap eventually" false
    (List.for_all
       (fun i -> Rate_limiter.allow ~limit:10 rl ~now:(float_of_int i) "k")
       [ 6; 7; 8; 9; 10; 11 ])

let test_peering_default_limit () =
  let rl = Rate_limiter.peering_default () in
  let allowed = ref 0 in
  for i = 1 to 200 do
    if Rate_limiter.allow rl ~now:(float_of_int i) "prefix@pop" then
      incr allowed
  done;
  checki "144 per day" 144 !allowed

(* -- export control ------------------------------------------------------------------ *)

let ctl = 47065

let test_export_control () =
  let allows communities id =
    Export_control.allows ~ctl_asn:ctl ~export_id:id communities
  in
  (* No tags: everyone. *)
  checkb "untagged goes everywhere" true (allows [] 5);
  (* Whitelist: only listed neighbors. *)
  let wl = [ Export_control.announce_to ~ctl_asn:ctl 5 ] in
  checkb "whitelisted" true (allows wl 5);
  checkb "not whitelisted" false (allows wl 6);
  (* Blacklist: everyone but. *)
  let bl = [ Export_control.block ~ctl_asn:ctl 5 ] in
  checkb "blacklisted" false (allows bl 5);
  checkb "others fine" true (allows bl 6);
  (* Blacklist overrides whitelist. *)
  let both =
    [ Export_control.announce_to ~ctl_asn:ctl 5; Export_control.block ~ctl_asn:ctl 5 ]
  in
  checkb "blacklist wins" false (allows both 5);
  (* Foreign communities are ignored. *)
  checkb "foreign community ignored" true
    (allows [ Community.make 100 10005 ] 6)

let test_export_marker () =
  let m = Export_control.experiment_marker ~ctl_asn:ctl in
  checkb "marker detected" true (Export_control.is_marker ~ctl_asn:ctl m);
  checkb "whitelist is not marker" false
    (Export_control.is_marker ~ctl_asn:ctl
       (Export_control.announce_to ~ctl_asn:ctl 1))

(* -- control enforcement --------------------------------------------------------------- *)

let grant ?(caps = Experiment_caps.default) () =
  Control_enforcer.grant ~asns:[ asn 61574 ]
    ~prefixes:[ pfx "184.164.224.0/24" ]
    ~prefixes_v6:[ Prefix_v6.of_string_exn "2804:269c:1::/48" ]
    ~caps "exp001"

let enforcer () =
  Control_enforcer.create ~platform_asns:[ asn 47065 ]
    ~control_community_asn:ctl ()

let announce ?(prefix = pfx "184.164.224.0/24") ?(path = [ 61574 ])
    ?(communities = []) ?(extra_attrs = []) () =
  Msg.update
    ~attrs:
      (extra_attrs
      @ (Attr.origin_attrs
           ~as_path:(Aspath.of_asns (List.map asn path))
           ~next_hop:(ip "184.164.224.1") ()
        |> Attr.with_communities communities))
    ~announced:[ Msg.nlri prefix ]
    ()

let is_rejected = function Control_enforcer.Rejected _ -> true | _ -> false

let accepted_attrs = function
  | Control_enforcer.Accepted u -> u.Msg.attrs
  | Control_enforcer.Rejected reasons ->
      Alcotest.fail ("unexpected rejection: " ^ String.concat "; " reasons)

let test_enforcer_accepts_basic () =
  let e = enforcer () in
  checkb "valid announcement accepted" false
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) (announce ())))

let test_enforcer_hijack () =
  let e = enforcer () in
  checkb "hijack rejected" true
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
          (announce ~prefix:(pfx "8.8.8.0/24") ())));
  (* Sub-prefix of the allocation is fine (more-specific of own space). *)
  checkb "more-specific of own space ok" false
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
          (announce ~prefix:(pfx "184.164.224.128/25") ())))

let test_enforcer_withdraw_ownership () =
  let e = enforcer () in
  let u = Msg.update ~withdrawn:[ Msg.nlri (pfx "8.8.8.0/24") ] () in
  checkb "foreign withdraw rejected" true
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) u))

let test_enforcer_origin () =
  let e = enforcer () in
  checkb "foreign origin rejected" true
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
          (announce ~path:[ 61574; 3356 ] ())))

let test_enforcer_transit () =
  let e = enforcer () in
  (* Path not starting with the experiment AS = providing transit. *)
  let u = announce ~path:[ 3356; 61574 ] () in
  checkb "transit rejected without capability" true
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) u));
  let caps =
    Experiment_caps.(default |> with_transit |> with_poisoning 4)
  in
  checkb "transit allowed with capability" false
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ()) u))

let test_enforcer_poisoning () =
  let e = enforcer () in
  let poisoned = announce ~path:[ 61574; 3356; 174; 61574 ] () in
  checkb "poisoning rejected by default" true
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) poisoned));
  let caps = Experiment_caps.(default |> with_poisoning 2) in
  checkb "two poisons within capability" false
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ()) poisoned));
  let too_many = announce ~path:[ 61574; 1; 2; 3; 61574 ] () in
  checkb "three poisons over capability" true
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ()) too_many));
  (* The platform's own ASN in the path never counts as poisoning. *)
  let with_platform = announce ~path:[ 61574; 47065; 61574 ] () in
  checkb "platform asn not poisoning" false
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) with_platform))

let test_enforcer_communities () =
  let e = enforcer () in
  let foreign = Community.make 100 42 in
  let control = Export_control.announce_to ~ctl_asn:ctl 3 in
  (* Without the capability, foreign communities are stripped but control
     communities survive. *)
  let attrs =
    accepted_attrs
      (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
         (announce ~communities:[ foreign; control ] ()))
  in
  checkb "foreign stripped" false (Attr.has_community foreign attrs);
  checkb "control kept" true (Attr.has_community control attrs);
  (* With the capability, foreign communities survive. *)
  let caps = Experiment_caps.(default |> with_communities 4) in
  let attrs =
    accepted_attrs
      (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ())
         (announce ~communities:[ foreign; control ] ()))
  in
  checkb "foreign kept with capability" true (Attr.has_community foreign attrs);
  (* Exceeding the granted budget is rejected outright. *)
  let caps = Experiment_caps.(default |> with_communities 1) in
  checkb "over budget rejected" true
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ())
          (announce ~communities:[ foreign; Community.make 100 43 ] ())))

let test_enforcer_transitive_attrs () =
  let e = enforcer () in
  let unknown =
    Attr.Unknown
      {
        flags = Attr.flag_optional lor Attr.flag_transitive;
        code = 99;
        data = "x";
      }
  in
  let attrs =
    accepted_attrs
      (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
         (announce ~extra_attrs:[ unknown ] ()))
  in
  checkb "unknown transitive stripped" true (Attr.unknown_transitive attrs = []);
  let caps = Experiment_caps.(default |> with_transitive_attrs) in
  let attrs =
    accepted_attrs
      (Control_enforcer.check e ~now:0. ~pop:"p" (grant ~caps ())
         (announce ~extra_attrs:[ unknown ] ()))
  in
  checki "kept with capability" 1 (List.length (Attr.unknown_transitive attrs))

let test_enforcer_v6 () =
  let e = enforcer () in
  let mk p =
    Msg.update
      ~attrs:
        [
          Attr.Origin Attr.Igp;
          Attr.As_path (Aspath.of_asns [ asn 61574 ]);
          Attr.Mp_reach
            { next_hop = Ipv6.of_string_exn "2001:db8::1"; nlri = [ (p, None) ] };
        ]
      ()
  in
  checkb "own v6 accepted" false
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
          (mk (Prefix_v6.of_string_exn "2804:269c:1:5::/64"))));
  checkb "foreign v6 rejected" true
    (is_rejected
       (Control_enforcer.check e ~now:0. ~pop:"p" (grant ())
          (mk (Prefix_v6.of_string_exn "2001:db8::/48"))))

let test_enforcer_6to4 () =
  let e = enforcer () in
  let g6to4 =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes_v6:[ Prefix_v6.of_string_exn "2002:b8a4:e000::/40" ]
      "exp6to4"
  in
  let mk caps =
    Control_enforcer.check e ~now:0. ~pop:"p"
      { g6to4 with Control_enforcer.caps }
      (Msg.update
         ~attrs:
           [
             Attr.Origin Attr.Igp;
             Attr.As_path (Aspath.of_asns [ asn 61574 ]);
             Attr.Mp_reach
               {
                 next_hop = Ipv6.of_string_exn "2001:db8::1";
                 nlri = [ (Prefix_v6.of_string_exn "2002:b8a4:e000::/40", None) ];
               };
           ]
         ())
  in
  checkb "6to4 needs capability" true
    (is_rejected (mk Experiment_caps.default));
  checkb "6to4 with capability" false
    (is_rejected (mk Experiment_caps.(default |> with_6to4)))

let test_enforcer_rate_limit () =
  let e = enforcer () in
  let g = grant () in
  let accepted = ref 0 in
  for i = 1 to 150 do
    if
      not
        (is_rejected
           (Control_enforcer.check e ~now:(float_of_int i) ~pop:"p" g
              (announce ())))
    then incr accepted
  done;
  checki "144 accepted" 144 !accepted;
  (* A different PoP has its own budget. *)
  checkb "independent per pop" false
    (is_rejected
       (Control_enforcer.check e ~now:151. ~pop:"q" g (announce ())))

let test_enforcer_fail_closed () =
  let e = enforcer () in
  Control_enforcer.set_fail_closed e true;
  checkb "everything rejected" true
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) (announce ())));
  Control_enforcer.set_fail_closed e false;
  checkb "recovers" false
    (is_rejected (Control_enforcer.check e ~now:0. ~pop:"p" (grant ()) (announce ())))

(* -- data enforcement ------------------------------------------------------------------ *)

let packet ?(src = "184.164.224.1") ?(dst = "192.168.0.1") ?(ttl = 64)
    ?(payload = "data") () =
  Ipv4_packet.make ~ttl ~src:(ip src) ~dst:(ip dst)
    ~protocol:Ipv4_packet.Udp payload

let test_data_source_validation () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.source_validation
       ~owner_of:(fun a ->
         if Prefix.mem a (pfx "184.164.224.0/24") then Some "exp001" else None)
       ());
  let meta = { Data_enforcer.ingress = "exp001" } in
  checkb "own source allowed" true
    (match Data_enforcer.check d ~now:0. ~meta (packet ()) with
    | Data_enforcer.Allowed _ -> true
    | _ -> false);
  checkb "spoofed source blocked" true
    (match Data_enforcer.check d ~now:0. ~meta (packet ~src:"9.9.9.9" ()) with
    | Data_enforcer.Blocked _ -> true
    | _ -> false);
  (* Another experiment's space: also blocked (no transiting). *)
  checkb "foreign experiment space blocked" true
    (match
       Data_enforcer.check d ~now:0.
         ~meta:{ Data_enforcer.ingress = "exp002" }
         (packet ())
     with
    | Data_enforcer.Blocked _ -> true
    | _ -> false);
  checkb "stats" true (Data_enforcer.stats d = (1, 2))

let test_data_shaper () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.shaper ~name:"pop-shaper" ~rate:100. ~burst:100.
       ~key_of:(fun _ -> "pop") ());
  let meta = { Data_enforcer.ingress = "exp001" } in
  let ok now =
    match Data_enforcer.check d ~now ~meta (packet ~payload:(String.make 30 'x') ()) with
    | Data_enforcer.Allowed _ -> true
    | _ -> false
  in
  (* 50-byte packets against a 100-byte bucket: two pass, third blocked. *)
  checkb "first passes" true (ok 0.);
  checkb "second passes" true (ok 0.);
  checkb "burst exhausted" false (ok 0.);
  (* Tokens refill over time. *)
  checkb "refilled" true (ok 1.0)

let test_data_ttl_guard () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d (Data_enforcer.ttl_guard ~min_ttl:2 ());
  let meta = { Data_enforcer.ingress = "x" } in
  checkb "ttl 1 blocked" true
    (match Data_enforcer.check d ~now:0. ~meta (packet ~ttl:1 ()) with
    | Data_enforcer.Blocked _ -> true
    | _ -> false);
  checkb "ttl 64 fine" true
    (match Data_enforcer.check d ~now:0. ~meta (packet ()) with
    | Data_enforcer.Allowed _ -> true
    | _ -> false)

let test_data_transform_chain () =
  let d = Data_enforcer.create () in
  Data_enforcer.add_filter d
    (Data_enforcer.filter ~name:"dscp-marker" (fun ~now:_ ~meta:_ p ->
         Data_enforcer.Transform { p with Ipv4_packet.dscp = 46 }));
  let meta = { Data_enforcer.ingress = "x" } in
  checkb "transform visible in decision" true
    (match Data_enforcer.check d ~now:0. ~meta (packet ()) with
    | Data_enforcer.Allowed p -> p.Ipv4_packet.dscp = 46
    | _ -> false)

(* -- arp client -------------------------------------------------------------------------- *)

let test_arp_resolution () =
  let engine = Sim.Engine.create () in
  let lan = Sim.Lan.create engine in
  let a = Arp_client.attach lan ~mac:(Mac.local ~pool:1 1) ~ips:[ ip "10.0.0.1" ] in
  let _b = Arp_client.attach lan ~mac:(Mac.local ~pool:1 2) ~ips:[ ip "10.0.0.2" ] in
  let resolved = ref None in
  Arp_client.resolve a (ip "10.0.0.2") (fun mac -> resolved := Some mac);
  ignore (Sim.Engine.run engine);
  checkb "resolved to station 2" true
    (match !resolved with
    | Some m -> Mac.equal m (Mac.local ~pool:1 2)
    | None -> false);
  (* Second resolution hits the cache (no further LAN frames). *)
  let frames = Sim.Lan.frames_carried lan in
  Arp_client.resolve a (ip "10.0.0.2") ignore;
  ignore (Sim.Engine.run engine);
  checki "cached" frames (Sim.Lan.frames_carried lan)

let test_arp_pending_coalesce () =
  let engine = Sim.Engine.create () in
  let lan = Sim.Lan.create engine in
  let a = Arp_client.attach lan ~mac:(Mac.local ~pool:1 1) ~ips:[ ip "10.0.0.1" ] in
  let _b = Arp_client.attach lan ~mac:(Mac.local ~pool:1 2) ~ips:[ ip "10.0.0.2" ] in
  let hits = ref 0 in
  Arp_client.resolve a (ip "10.0.0.2") (fun _ -> incr hits);
  Arp_client.resolve a (ip "10.0.0.2") (fun _ -> incr hits);
  ignore (Sim.Engine.run engine);
  checki "both callbacks fire" 2 !hits;
  (* One request + one reply on the wire, not two of each. *)
  checki "coalesced on the wire" 2 (Sim.Lan.frames_carried lan)

let test_arp_ip_delivery () =
  let engine = Sim.Engine.create () in
  let lan = Sim.Lan.create engine in
  let a = Arp_client.attach lan ~mac:(Mac.local ~pool:1 1) ~ips:[ ip "10.0.0.1" ] in
  let b = Arp_client.attach lan ~mac:(Mac.local ~pool:1 2) ~ips:[ ip "10.0.0.2" ] in
  let got = ref None in
  Arp_client.set_ip_handler b (fun ~src_mac p -> got := Some (src_mac, p));
  Arp_client.send_ip a ~next_hop:(ip "10.0.0.2")
    (packet ~src:"10.0.0.1" ~dst:"10.0.0.2" ());
  ignore (Sim.Engine.run engine);
  checkb "delivered with source mac" true
    (match !got with
    | Some (m, p) ->
        Mac.equal m (Mac.local ~pool:1 1)
        && Ipv4.equal p.Ipv4_packet.dst (ip "10.0.0.2")
    | None -> false)

(* -- router delegation ---------------------------------------------------------------------- *)

(* A one-PoP fixture built directly on the vbgp library (no peering lib). *)
type fixture = {
  engine : Sim.Engine.t;
  router : Router.t;
  n1 : int;
  n1_session : Sim.Bgp_wire.pair;
  n2 : int;
  n2_session : Sim.Bgp_wire.pair;
  n1_delivered : Ipv4_packet.t list ref;
  n2_delivered : Ipv4_packet.t list ref;
}

let make_fixture ?v6_next_hop () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"testpop" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ?v6_next_hop ~local_pool:(pfx "127.65.0.0/16") ~global_pool ()
  in
  Router.activate router;
  let n1_delivered = ref [] and n2_delivered = ref [] in
  let n1, n1_session =
    Router.add_neighbor router ~asn:(asn 100) ~ip:(ip "100.64.0.1")
      ~kind:Neighbor.Transit ~remote_id:(ip "100.64.0.1")
      ~deliver:(fun p -> n1_delivered := p :: !n1_delivered)
      ()
  in
  let n2, n2_session =
    Router.add_neighbor router ~asn:(asn 200) ~ip:(ip "100.64.0.2")
      ~kind:Neighbor.Peer ~remote_id:(ip "100.64.0.2")
      ~deliver:(fun p -> n2_delivered := p :: !n2_delivered)
      ()
  in
  Sim.Bgp_wire.start n1_session;
  Sim.Bgp_wire.start n2_session;
  Sim.Engine.run_until engine 5.;
  { engine; router; n1; n1_session; n2; n2_session; n1_delivered; n2_delivered }

let neighbor_announce fx session prefix path =
  Session.send_update session.Sim.Bgp_wire.active
    (Msg.update
       ~attrs:
         (Attr.origin_attrs
            ~as_path:(Aspath.of_asns (List.map asn path))
            ~next_hop:(ip "100.64.0.1") ())
       ~announced:[ Msg.nlri prefix ]
       ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 2.)

let test_router_learns_routes () =
  let fx = make_fixture () in
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100; 900 ];
  neighbor_announce fx fx.n2_session (pfx "192.168.0.0/24") [ 200; 900 ];
  checki "one route per neighbor table" 1
    (List.length (Router.neighbor_routes fx.router ~neighbor_id:fx.n1));
  checki "total routes" 2 (Router.route_count fx.router);
  checki "fib entries mirror ribs" 2 (Router.fib_entry_count fx.router)

let test_router_nexthop_rewrite_and_visibility () =
  let fx = make_fixture () in
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100; 900 ];
  neighbor_announce fx fx.n2_session (pfx "192.168.0.0/24") [ 200; 900 ];
  (* Connect an experiment and check it receives BOTH paths with
     pool-rewritten next hops and per-neighbor path ids. *)
  let g = grant () in
  let received = ref [] in
  let pair = Router.connect_experiment fx.router ~grant:g ~mac:(Mac.local ~pool:2 1) () in
  Session.set_handlers pair.Sim.Bgp_wire.active
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> received := u :: !received);
      on_established = ignore;
      on_down = ignore;
    };
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let announced =
    List.concat_map (fun (u : Msg.update) -> u.Msg.announced) !received
  in
  checki "two paths for one prefix (ADD-PATH)" 2 (List.length announced);
  let path_ids = List.filter_map (fun (n : Msg.nlri) -> n.Msg.path_id) announced in
  checkb "path ids are neighbor table ids" true
    (List.sort Int.compare path_ids = List.sort Int.compare [ fx.n1; fx.n2 ]);
  List.iter
    (fun (u : Msg.update) ->
      if u.Msg.announced <> [] then
        match Attr.next_hop u.Msg.attrs with
        | Some nh ->
            checkb "next hop in local pool" true
              (Prefix.mem nh (pfx "127.65.0.0/16"))
        | None -> Alcotest.fail "missing next hop")
    !received

let test_router_withdraw_propagates () =
  let fx = make_fixture () in
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100 ];
  let received = ref [] in
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Session.set_handlers pair.Sim.Bgp_wire.active
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> received := u :: !received);
      on_established = ignore;
      on_down = ignore;
    };
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  Session.send_update fx.n1_session.Sim.Bgp_wire.active
    (Msg.update ~withdrawn:[ Msg.nlri (pfx "192.168.0.0/24") ] ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "withdraw reached experiment" true
    (List.exists
       (fun (u : Msg.update) ->
         List.exists
           (fun (n : Msg.nlri) -> n.Msg.path_id = Some fx.n1)
           u.Msg.withdrawn)
       !received);
  checki "router table empty" 0 (Router.route_count fx.router);
  checki "fib empty" 0 (Router.fib_entry_count fx.router)

let test_router_mac_selects_table () =
  let fx = make_fixture () in
  (* Both neighbors reach the destination; the experiment must be able to
     force either one per packet via the destination MAC. *)
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100; 900 ];
  neighbor_announce fx fx.n2_session (pfx "192.168.0.0/24") [ 200; 900 ];
  let g = grant () in
  let pair =
    Router.connect_experiment fx.router ~grant:g ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let lan = Router.experiment_lan fx.router in
  let client =
    Arp_client.attach lan ~mac:(Mac.local ~pool:2 1)
      ~ips:[ ip "184.164.224.1" ]
  in
  let vip id =
    match Router.neighbor fx.router id with
    | Some ns -> ns.Router.info.Neighbor.virtual_ip
    | None -> Alcotest.fail "missing neighbor"
  in
  Arp_client.send_ip client ~next_hop:(vip fx.n1) (packet ());
  Arp_client.send_ip client ~next_hop:(vip fx.n2) (packet ());
  Arp_client.send_ip client ~next_hop:(vip fx.n2) (packet ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checki "one packet via N1" 1 (List.length !(fx.n1_delivered));
  checki "two packets via N2" 2 (List.length !(fx.n2_delivered))

let test_router_inbound_mac_rewrite () =
  let fx = make_fixture () in
  let g = grant () in
  let pair =
    Router.connect_experiment fx.router ~grant:g ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (* The experiment announces; inbound traffic from N2 must arrive with
     N2's virtual MAC as the frame source. *)
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ()));
  let lan = Router.experiment_lan fx.router in
  let client =
    Arp_client.attach lan ~mac:(Mac.local ~pool:2 1)
      ~ips:[ ip "184.164.224.1" ]
  in
  let got = ref None in
  Arp_client.set_ip_handler client (fun ~src_mac p -> got := Some (src_mac, p));
  Router.inject_from_neighbor fx.router ~neighbor_id:fx.n2
    (packet ~src:"192.168.0.9" ~dst:"184.164.224.1" ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "source MAC is N2's virtual MAC" true
    (match (!got, Router.neighbor fx.router fx.n2) with
    | Some (m, _), Some ns ->
        Mac.equal m ns.Router.info.Neighbor.virtual_mac
    | _ -> false)

let test_router_export_control () =
  let fx = make_fixture () in
  let heard_n1 = ref [] and heard_n2 = ref [] in
  let listen session heard =
    Session.set_handlers session.Sim.Bgp_wire.active
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> heard := u :: !heard);
        on_established = ignore;
        on_down = ignore;
      }
  in
  listen fx.n1_session heard_n1;
  listen fx.n2_session heard_n2;
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let id2 = Router.export_id fx.router ~neighbor_id:fx.n2 in
  (* Announce whitelisted to N2 only. *)
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce
          ~communities:[ Export_control.announce_to ~ctl_asn:ctl id2 ]
          ()));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let announced heard =
    List.exists (fun (u : Msg.update) -> u.Msg.announced <> []) !heard
  in
  checkb "N2 heard it" true (announced heard_n2);
  checkb "N1 did not" false (announced heard_n1);
  (* The control community must not leak to the Internet, and the platform
     ASN must be prepended. *)
  List.iter
    (fun (u : Msg.update) ->
      if u.Msg.announced <> [] then begin
        checkb "control community stripped" true
          (List.for_all
             (fun c -> Community.asn c <> ctl)
             (Attr.communities u.Msg.attrs));
        checkb "platform asn prepended" true
          (match Attr.as_path u.Msg.attrs with
          | Some path -> Aspath.first path = Some (asn 47065)
          | None -> false)
      end)
    !heard_n2;
  (* Re-announcing without restriction reaches N1 too. *)
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ()));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "unrestricted reaches N1" true (announced heard_n1)

let test_router_ttl_expiry_generates_icmp () =
  let fx = make_fixture () in
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100 ];
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ()));
  let lan = Router.experiment_lan fx.router in
  let client =
    Arp_client.attach lan ~mac:(Mac.local ~pool:2 1)
      ~ips:[ ip "184.164.224.1" ]
  in
  let got_icmp = ref false in
  Arp_client.set_ip_handler client (fun ~src_mac:_ p ->
      if p.Ipv4_packet.protocol = Ipv4_packet.Icmp then got_icmp := true);
  let vip =
    match Router.neighbor fx.router fx.n1 with
    | Some ns -> ns.Router.info.Neighbor.virtual_ip
    | None -> Alcotest.fail "missing neighbor"
  in
  (* TTL 1 expires at the router; an ICMP TTL-exceeded comes back. *)
  Arp_client.send_ip client ~next_hop:vip (packet ~ttl:1 ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "icmp ttl exceeded returned" true !got_icmp;
  checki "counted" 1 (Router.counters fx.router).Router.icmp_sent

let test_router_experiment_down_withdraws () =
  let fx = make_fixture () in
  let heard_n1 = ref [] in
  Session.set_handlers fx.n1_session.Sim.Bgp_wire.active
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> heard_n1 := u :: !heard_n1);
      on_established = ignore;
      on_down = ignore;
    };
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ()));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (* Kill the experiment session: the router must withdraw from N1. *)
  Session.stop pair.Sim.Bgp_wire.active;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.);
  checkb "withdraw sent to neighbor" true
    (List.exists
       (fun (u : Msg.update) -> u.Msg.withdrawn <> [])
       !heard_n1)

let test_router_attribution () =
  (* PlanetFlow-style accountability (§3.1): per-experiment traffic totals
     follow the packets. *)
  let fx = make_fixture () in
  neighbor_announce fx fx.n1_session (pfx "192.168.0.0/24") [ 100 ];
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ()));
  let lan = Router.experiment_lan fx.router in
  let client =
    Arp_client.attach lan ~mac:(Mac.local ~pool:2 1)
      ~ips:[ ip "184.164.224.1" ]
  in
  let vip =
    match Router.neighbor fx.router fx.n1 with
    | Some ns -> ns.Router.info.Neighbor.virtual_ip
    | None -> Alcotest.fail "missing neighbor"
  in
  Arp_client.send_ip client ~next_hop:vip (packet ~payload:"abcd" ());
  Arp_client.send_ip client ~next_hop:vip (packet ~payload:"efgh" ());
  Router.inject_from_neighbor fx.router ~neighbor_id:fx.n1
    (packet ~src:"192.168.0.7" ~dst:"184.164.224.1" ());
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  match Router.attribution fx.router with
  | [ (name, out, bytes, inn) ] ->
      checks "attributed to the experiment" "exp001" name;
      checki "packets out" 2 out;
      checki "bytes out" (2 * (Ipv4_packet.header_size + 4)) bytes;
      checki "packets in" 1 inn
  | other -> Alcotest.failf "unexpected attribution rows: %d" (List.length other)

let test_router_no_export () =
  (* The well-known NO_EXPORT community keeps an announcement inside the
     platform: experiments see it via the mesh, eBGP neighbors never do. *)
  let fx = make_fixture () in
  let heard_n1 = ref [] in
  Session.set_handlers fx.n1_session.Sim.Bgp_wire.active
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> heard_n1 := u :: !heard_n1);
      on_established = ignore;
      on_down = ignore;
    };
  let g =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~caps:Experiment_caps.(default |> with_communities 2)
      "exp001"
  in
  let pair =
    Router.connect_experiment fx.router ~grant:g ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (match
     Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ~communities:[ Community.no_export ] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "no eBGP export under NO_EXPORT" false
    (List.exists (fun (u : Msg.update) -> u.Msg.announced <> []) !heard_n1)

let test_router_blacklist_export () =
  let fx = make_fixture () in
  let heard_n1 = ref [] and heard_n2 = ref [] in
  let listen session heard =
    Session.set_handlers session.Sim.Bgp_wire.active
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
        on_update = (fun u -> heard := u :: !heard);
        on_established = ignore;
        on_down = ignore;
      }
  in
  listen fx.n1_session heard_n1;
  listen fx.n2_session heard_n2;
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let id1 = Router.export_id fx.router ~neighbor_id:fx.n1 in
  (* Blacklist N1: everyone except N1 hears it. *)
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce ~communities:[ Export_control.block ~ctl_asn:ctl id1 ] ()));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let announced heard =
    List.exists (fun (u : Msg.update) -> u.Msg.announced <> []) !heard
  in
  checkb "N1 blacklisted" false (announced heard_n1);
  checkb "N2 hears" true (announced heard_n2)

let test_router_variant_selection () =
  (* Two ADD-PATH variants of one prefix with different export policies:
     each neighbor hears exactly its variant (the §2.2.2 scenario). *)
  let fx = make_fixture () in
  let heard_n1 = ref [] and heard_n2 = ref [] in
  let listen session heard =
    Session.set_handlers session.Sim.Bgp_wire.active
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
        on_update = (fun u -> heard := u :: !heard);
        on_established = ignore;
        on_down = ignore;
      }
  in
  listen fx.n1_session heard_n1;
  listen fx.n2_session heard_n2;
  let g =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~caps:Experiment_caps.(default |> with_poisoning 0)
      "exp001"
  in
  let pair =
    Router.connect_experiment fx.router ~grant:g ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let id1 = Router.export_id fx.router ~neighbor_id:fx.n1 in
  let id2 = Router.export_id fx.router ~neighbor_id:fx.n2 in
  (* Variant 1: prepended, to N1 only. Variant 2: plain, to N2 only. *)
  let variant ~path_id ~prepends ~to_id =
    let path =
      Aspath.prepend_n (asn 61574) prepends (Aspath.of_asns [ asn 61574 ])
    in
    Msg.update
      ~attrs:
        (Attr.origin_attrs ~as_path:path ~next_hop:(ip "184.164.224.1") ()
        |> Attr.with_communities
             [ Export_control.announce_to ~ctl_asn:ctl to_id ])
      ~announced:[ Msg.nlri ~path_id (pfx "184.164.224.0/24") ]
      ()
  in
  (match
     Router.process_experiment_update fx.router ~experiment:"exp001"
       (variant ~path_id:1 ~prepends:3 ~to_id:id1)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  (match
     Router.process_experiment_update fx.router ~experiment:"exp001"
       (variant ~path_id:2 ~prepends:0 ~to_id:id2)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  let path_len heard =
    List.find_map
      (fun (u : Msg.update) ->
        if u.Msg.announced <> [] then
          Option.map Aspath.length (Attr.as_path u.Msg.attrs)
        else None)
      !heard
  in
  (* N1 hears the prepended variant (mux + 4x experiment = 5), N2 the
     plain one (mux + experiment = 2). *)
  checkb "N1 heard the prepended variant" true (path_len heard_n1 = Some 5);
  checkb "N2 heard the plain variant" true (path_len heard_n2 = Some 2);
  (* Withdrawing variant 2 withdraws from N2 but leaves N1 announced. *)
  ignore
    (Router.process_experiment_update fx.router ~experiment:"exp001"
       (Msg.update ~withdrawn:[ Msg.nlri ~path_id:2 (pfx "184.164.224.0/24") ] ()));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checkb "N2 got a withdraw" true
    (List.exists (fun (u : Msg.update) -> u.Msg.withdrawn <> []) !heard_n2);
  checkb "N1 did not" false
    (List.exists (fun (u : Msg.update) -> u.Msg.withdrawn <> []) !heard_n1)

let test_router_burst_single_recompute () =
  (* A burst of updates to one prefix inside one engine tick costs exactly
     one re-export recomputation per neighbor (the dirty-prefix queue),
     and each neighbor hears only the final variant. *)
  let fx = make_fixture () in
  let heard_n1 = ref [] and heard_n2 = ref [] in
  let listen session heard =
    Session.set_handlers session.Sim.Bgp_wire.active
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
        on_update = (fun u -> heard := u :: !heard);
        on_established = ignore;
        on_down = ignore;
      }
  in
  listen fx.n1_session heard_n1;
  listen fx.n2_session heard_n2;
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  checki "no recomputation before the burst" 0
    (Router.counters fx.router).Router.reexport_computations;
  (* 20 updates to the same prefix, engine not run in between: all land at
     the same tick, before the single scheduled flush. *)
  for i = 1 to 20 do
    match
      Router.process_experiment_update fx.router ~experiment:"exp001"
        (announce ~path:(List.init ((i mod 3) + 1) (fun _ -> 61574)) ())
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail (String.concat "; " e)
  done;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (* Update-groups: both neighbors select the same variant, so the whole
     burst costs a single facing-attribute computation shared by both. *)
  checki "one facing computation for the whole burst" 1
    (Router.counters fx.router).Router.reexport_computations;
  let announces heard =
    List.filter (fun (u : Msg.update) -> u.Msg.announced <> []) !heard
  in
  checki "N1 heard exactly one announcement" 1 (List.length (announces heard_n1));
  checki "N2 heard exactly one announcement" 1 (List.length (announces heard_n2));
  (* The surviving announcement is the burst's final variant: path of
     length 3 (20 mod 3 + 1) plus the mux prepend. *)
  List.iter
    (fun (u : Msg.update) ->
      checkb "final variant won" true
        (match Attr.as_path u.Msg.attrs with
        | Some path -> Aspath.length path = 4
        | None -> false))
    (announces heard_n1)

let mp_reach_heard heard =
  List.find_map
    (fun (u : Msg.update) ->
      List.find_map
        (function
          | Attr.Mp_reach { next_hop; nlri } -> Some (next_hop, nlri)
          | _ -> None)
        u.Msg.attrs)
    !heard

let mp_unreach_heard heard =
  List.find_map
    (fun (u : Msg.update) ->
      List.find_map
        (function Attr.Mp_unreach nlri -> Some nlri | _ -> None)
        u.Msg.attrs)
    !heard

let v6_pfx = Prefix_v6.of_string_exn "2804:269c:1::/48"

let announce_v6 () =
  Msg.update
    ~attrs:
      [
        Attr.Origin Attr.Igp;
        Attr.As_path (Aspath.of_asns [ asn 61574 ]);
        Attr.Mp_reach
          {
            next_hop = Ipv6.of_string_exn "2001:db8::1";
            nlri = [ (v6_pfx, None) ];
          };
      ]
    ()

let run_v6_reexport ?v6_next_hop () =
  let fx = make_fixture ?v6_next_hop () in
  let heard_n1 = ref [] in
  Session.set_handlers fx.n1_session.Sim.Bgp_wire.active
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> heard_n1 := u :: !heard_n1);
      on_established = ignore;
      on_down = ignore;
    };
  let pair =
    Router.connect_experiment fx.router ~grant:(grant ())
      ~mac:(Mac.local ~pool:2 1) ()
  in
  Sim.Bgp_wire.start pair;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (match
     Router.process_experiment_update fx.router ~experiment:"exp001"
       (announce_v6 ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (match mp_reach_heard heard_n1 with
  | Some (next_hop, nlri) ->
      checkb "v6 next hop is the router's" true
        (Ipv6.equal next_hop (Router.v6_next_hop fx.router));
      checkb "v6 prefix announced" true
        (List.exists (fun (p, _) -> Prefix_v6.equal p v6_pfx) nlri)
  | None -> Alcotest.fail "neighbor heard no MP_REACH");
  (* Withdrawing the v6 prefix reaches the neighbor as MP_UNREACH. *)
  (match
     Router.process_experiment_update fx.router ~experiment:"exp001"
       (Msg.update ~attrs:[ Attr.Mp_unreach [ (v6_pfx, None) ] ] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 5.);
  (match mp_unreach_heard heard_n1 with
  | Some nlri ->
      checkb "v6 prefix withdrawn" true
        (List.exists (fun (p, _) -> Prefix_v6.equal p v6_pfx) nlri)
  | None -> Alcotest.fail "neighbor heard no MP_UNREACH");
  fx.router

let test_router_v6_reexport () =
  let router = run_v6_reexport () in
  checkb "default next hop is PEERING's" true
    (Ipv6.equal (Router.v6_next_hop router)
       (Ipv6.of_string_exn "2804:269c::1"))

let test_router_v6_next_hop_config () =
  (* The IPv6 next hop is per-router configuration, not a constant. *)
  let custom = Ipv6.of_string_exn "2001:db8:ffff::1" in
  let router = run_v6_reexport ~v6_next_hop:custom () in
  checkb "configured next hop used" true
    (Ipv6.equal (Router.v6_next_hop router) custom)

let () =
  Alcotest.run "vbgp"
    [
      ( "addr_pool",
        [
          Alcotest.test_case "allocation" `Quick test_addr_pool;
          Alcotest.test_case "exhaustion" `Quick test_addr_pool_exhaustion;
        ] );
      ( "rate_limiter",
        [
          Alcotest.test_case "windowing" `Quick test_rate_limiter;
          Alcotest.test_case "override" `Quick test_rate_limiter_override;
          Alcotest.test_case "peering default" `Quick test_peering_default_limit;
        ] );
      ( "export_control",
        [
          Alcotest.test_case "allow semantics" `Quick test_export_control;
          Alcotest.test_case "marker" `Quick test_export_marker;
        ] );
      ( "control_enforcer",
        [
          Alcotest.test_case "accepts basic" `Quick test_enforcer_accepts_basic;
          Alcotest.test_case "hijack" `Quick test_enforcer_hijack;
          Alcotest.test_case "withdraw ownership" `Quick
            test_enforcer_withdraw_ownership;
          Alcotest.test_case "origin asn" `Quick test_enforcer_origin;
          Alcotest.test_case "transit" `Quick test_enforcer_transit;
          Alcotest.test_case "poisoning" `Quick test_enforcer_poisoning;
          Alcotest.test_case "communities" `Quick test_enforcer_communities;
          Alcotest.test_case "transitive attrs" `Quick
            test_enforcer_transitive_attrs;
          Alcotest.test_case "ipv6 ownership" `Quick test_enforcer_v6;
          Alcotest.test_case "6to4" `Quick test_enforcer_6to4;
          Alcotest.test_case "rate limit" `Quick test_enforcer_rate_limit;
          Alcotest.test_case "fail closed" `Quick test_enforcer_fail_closed;
        ] );
      ( "data_enforcer",
        [
          Alcotest.test_case "source validation" `Quick test_data_source_validation;
          Alcotest.test_case "shaper" `Quick test_data_shaper;
          Alcotest.test_case "ttl guard" `Quick test_data_ttl_guard;
          Alcotest.test_case "transform chain" `Quick test_data_transform_chain;
        ] );
      ( "arp",
        [
          Alcotest.test_case "resolution" `Quick test_arp_resolution;
          Alcotest.test_case "pending coalesce" `Quick test_arp_pending_coalesce;
          Alcotest.test_case "ip delivery" `Quick test_arp_ip_delivery;
        ] );
      ( "router",
        [
          Alcotest.test_case "learns routes" `Quick test_router_learns_routes;
          Alcotest.test_case "nexthop rewrite + add-path" `Quick
            test_router_nexthop_rewrite_and_visibility;
          Alcotest.test_case "withdraw propagates" `Quick
            test_router_withdraw_propagates;
          Alcotest.test_case "mac selects table" `Quick
            test_router_mac_selects_table;
          Alcotest.test_case "inbound mac rewrite" `Quick
            test_router_inbound_mac_rewrite;
          Alcotest.test_case "export control" `Quick test_router_export_control;
          Alcotest.test_case "ttl expiry icmp" `Quick
            test_router_ttl_expiry_generates_icmp;
          Alcotest.test_case "experiment down withdraws" `Quick
            test_router_experiment_down_withdraws;
          Alcotest.test_case "traffic attribution" `Quick
            test_router_attribution;
          Alcotest.test_case "no-export community" `Quick
            test_router_no_export;
          Alcotest.test_case "blacklist export" `Quick
            test_router_blacklist_export;
          Alcotest.test_case "per-neighbor variants" `Quick
            test_router_variant_selection;
          Alcotest.test_case "burst recomputes once" `Quick
            test_router_burst_single_recompute;
          Alcotest.test_case "ipv6 re-export" `Quick test_router_v6_reexport;
          Alcotest.test_case "ipv6 next hop config" `Quick
            test_router_v6_next_hop_config;
        ] );
    ]
