(* Differential and regression tests for the parallel ingest lane.
   A router created with [?parallel_ingest:4] hash-partitions wire-format
   UPDATE batches across worker domains — each worker owns its neighbors'
   decode, attribute intern and Adj-RIB-In writes — and reconciles the
   staged deltas into the FIB + dirty queue on the single writer. That
   path must be bit-identical to the sequential batched path: a QCheck
   property drives the same random announce/withdraw/drain/flap/EoR
   sequence through two identically-wired routers (4 lanes vs inline) and
   compares full RIB/FIB/heard/adj-out fingerprints plus exact counter
   equality, with and without graceful restart in play. Alongside it:
   directed GR End-of-RIB mark-and-sweep riding the parallel lane, a
   mid-churn session kill on a worker-owned neighbor, and the neighbor
   hash-partition spread. *)

open Netcore
open Bgp
open Vbgp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let null_handlers =
  {
    Session.on_update = ignore;
    on_established = ignore;
    on_down = ignore;
    on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
  }

(* -- fixture: one router, five neighbors, one listening experiment --------- *)

(* Five neighbors over four lanes: at least one lane owns two neighbors,
   so the single-writer replay has to interleave staging queues. *)
let n_neighbors = 5
let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i))

type fixture = {
  engine : Sim.Engine.t;
  router : Router.t;
  neighbor_ids : int array;
  pairs : Sim.Bgp_wire.pair array;
  pending : (int * Msg.update) list ref;
      (** buffered (neighbor index, update) items awaiting a Drain *)
  heard : (Prefix.t * int option, Attr.set) Hashtbl.t;
  announces : (Prefix.t * int option) list ref;
  withdrawn_seen : int ref;
}

let make_fixture ?(gr_restart_time = 0) ~parallel_ingest () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Router.create ~engine ~name:"par-ingest" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ~parallel_ingest
      ~gr_restart_time ()
  in
  Router.activate router;
  let both =
    Array.init n_neighbors (fun i ->
        Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:(neighbor_ip i)
          ~kind:Neighbor.Transit ~remote_id:(neighbor_ip i) ())
  in
  let neighbor_ids = Array.map fst both and pairs = Array.map snd both in
  Array.iter Sim.Bgp_wire.start pairs;
  let grant =
    Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      "par-diff"
  in
  let epair =
    Router.connect_experiment router ~grant ~mac:(Mac.local ~pool:0xe0 1) ()
  in
  let heard = Hashtbl.create 64 in
  let announces = ref [] and withdrawn_seen = ref 0 in
  Session.set_handlers epair.Sim.Bgp_wire.active
    {
      null_handlers with
      Session.on_update =
        (fun u ->
          if not (Msg.is_end_of_rib u) then begin
            List.iter
              (fun (n : Msg.nlri) ->
                incr withdrawn_seen;
                Hashtbl.remove heard (n.Msg.prefix, n.Msg.path_id))
              u.Msg.withdrawn;
            List.iter
              (fun (n : Msg.nlri) ->
                announces := (n.Msg.prefix, n.Msg.path_id) :: !announces;
                Hashtbl.replace heard (n.Msg.prefix, n.Msg.path_id) u.Msg.attrs)
              u.Msg.announced
          end);
    };
  Sim.Bgp_wire.start epair;
  Sim.Engine.run_until engine 5.;
  {
    engine;
    router;
    neighbor_ids;
    pairs;
    pending = ref [];
    heard;
    announces;
    withdrawn_seen;
  }

let settle fx =
  Router.flush_reexports fx.router;
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)

(* Feed the buffered items as one wire-format batch through the ingest
   lane. The updates are encoded to bytes so the worker domains (or the
   inline path on a sequential router) own the decode. *)
let drain fx =
  match List.rev !(fx.pending) with
  | [] -> ()
  | items ->
      fx.pending := [];
      Router.ingest_updates fx.router
        (Array.of_list
           (List.map
              (fun (nbr, u) ->
                ( fx.neighbor_ids.(nbr),
                  Router.Wire (Codec.encode (Msg.Update u)) ))
              items))

(* -- canonical, time-independent fingerprint of converged state ----------- *)

let route_line (r : Rib.Route.t) =
  Fmt.str "%a/%s from %a: %a" Prefix.pp r.Rib.Route.prefix
    (match r.Rib.Route.path_id with Some i -> string_of_int i | None -> "-")
    Ipv4.pp r.Rib.Route.source.Rib.Route.peer_ip Attr.pp_set
    (Rib.Route.attrs r)

let counters_line fx =
  let c = Router.counters fx.router in
  Fmt.str
    "from_nbr=%d from_exp=%d from_mesh=%d reexport=%d gr_ret=%d gr_exp=%d \
     to_nbr=%d/%d to_exp=%d/%d to_mesh=%d/%d"
    c.Router.updates_from_neighbors c.Router.updates_from_experiments
    c.Router.updates_from_mesh c.Router.reexport_computations
    c.Router.gr_retentions c.Router.gr_expiries c.Router.updates_to_neighbors
    c.Router.nlri_to_neighbors c.Router.updates_to_experiments
    c.Router.nlri_to_experiments c.Router.updates_to_mesh
    c.Router.nlri_to_mesh

let fingerprint fx =
  settle fx;
  let ribs =
    Array.to_list fx.neighbor_ids
    |> List.concat_map (fun id ->
           List.map
             (fun r -> Fmt.str "%d %s" id (route_line r))
             (Router.neighbor_routes fx.router ~neighbor_id:id))
    |> List.sort compare
  in
  let fibs =
    let set = Router.fib_set fx.router in
    List.concat_map
      (fun id ->
        match Rib.Fib.Set.find set id with
        | Some fib ->
            Rib.Fib.fold
              (fun p (e : Rib.Fib.entry) acc ->
                Fmt.str "%d %a via %a@%d" id Prefix.pp p Ipv4.pp
                  e.Rib.Fib.next_hop e.Rib.Fib.neighbor
                :: acc)
              fib []
        | None -> [])
      (List.sort compare (Rib.Fib.Set.table_ids set))
    |> List.sort compare
  in
  let heard =
    Hashtbl.fold
      (fun (p, pid) attrs acc ->
        Fmt.str "%a/%s %a" Prefix.pp p
          (match pid with Some i -> string_of_int i | None -> "-")
          Attr.pp_set attrs
        :: acc)
      fx.heard []
    |> List.sort compare
  in
  let adj_out =
    Array.to_list fx.neighbor_ids
    |> List.concat_map (fun id ->
           List.map
             (fun (p, attrs) ->
               Fmt.str "%d %a %a" id Prefix.pp p Attr.pp_set attrs)
             (Router.adj_out_routes fx.router ~neighbor_id:id))
    |> List.sort compare
  in
  String.concat "\n"
    (("rib:" :: ribs) @ ("fib:" :: fibs) @ ("heard:" :: heard)
    @ ("adj-out:" :: adj_out)
    @ [ "counters:"; counters_line fx ])

(* -- random operation sequences ------------------------------------------- *)

type op =
  | Announce of int * int * int  (** neighbor, prefix index, attr variant *)
  | Withdraw of int * int
  | Drain  (** feed the buffered items as one ingest batch *)
  | Flap of int  (** transport loss + auto-reconnect on one neighbor *)
  | Eor of int  (** End-of-RIB on one neighbor's session (GR sweep) *)
  | Tick

let op_prefix i =
  Prefix.make
    (Ipv4.of_int32 (Int32.logor 0xC0A80000l (Int32.of_int (i lsl 8))))
    24

let attr_variant ~nbr v =
  Attr.origin_attrs
    ~as_path:(Aspath.of_asns (List.map asn [ 100 + nbr; 900 + v; 65000 ]))
    ~next_hop:(neighbor_ip nbr) ()
  |> Attr.with_med v

let apply fx = function
  | Announce (nbr, p, v) ->
      fx.pending :=
        ( nbr,
          Msg.update ~attrs:(attr_variant ~nbr v)
            ~announced:[ Msg.nlri (op_prefix p) ]
            () )
        :: !(fx.pending)
  | Withdraw (nbr, p) ->
      fx.pending :=
        (nbr, Msg.update ~withdrawn:[ Msg.nlri (op_prefix p) ] ())
        :: !(fx.pending)
  | Drain -> drain fx
  | Flap nbr ->
      let fault = Sim.Fault.create fx.engine in
      Sim.Fault.kill_pair fault
        ~at:(Sim.Engine.now fx.engine +. 0.01)
        fx.pairs.(nbr);
      Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 10.)
  | Eor nbr ->
      let s = fx.pairs.(nbr).Sim.Bgp_wire.active in
      if Session.established s then Session.send_update s (Msg.update ())
  | Tick -> Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 1.)

let pp_op = function
  | Announce (n, p, v) -> Printf.sprintf "A(n%d,p%d,v%d)" n p v
  | Withdraw (n, p) -> Printf.sprintf "W(n%d,p%d)" n p
  | Drain -> "D"
  | Flap n -> Printf.sprintf "F(n%d)" n
  | Eor n -> Printf.sprintf "E(n%d)" n
  | Tick -> "T"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun n p v -> Announce (n, p, v))
            (int_bound (n_neighbors - 1))
            (int_bound 7) (int_bound 2) );
        ( 3,
          map2
            (fun n p -> Withdraw (n, p))
            (int_bound (n_neighbors - 1))
            (int_bound 7) );
        (4, return Drain);
        (1, map (fun n -> Flap n) (int_bound (n_neighbors - 1)));
        (1, map (fun n -> Eor n) (int_bound (n_neighbors - 1)));
        (2, return Tick);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 30) gen_op)

(* Run one ops sequence to convergence; returns the fingerprint and the
   staging residual (which must be zero once the final drain has run). *)
let run_ops ~parallel_ingest ~gr ops =
  let fx = make_fixture ~gr_restart_time:gr ~parallel_ingest () in
  List.iter (apply fx) ops;
  apply fx Drain;
  let fp = fingerprint fx in
  let residual = (Router.ingest_stats fx.router).Router.staging_residual in
  Router.shutdown_domains fx.router;
  (fp, residual)

let differential ~name ~gr =
  QCheck.Test.make ~name ~count:12 ops_arb (fun ops ->
      let fp_par, residual = run_ops ~parallel_ingest:4 ~gr ops in
      let fp_seq, _ = run_ops ~parallel_ingest:1 ~gr ops in
      residual = 0 && String.equal fp_par fp_seq)

let prop_differential =
  differential ~name:"4-lane ingest is bit-identical to sequential" ~gr:0

let prop_differential_gr =
  differential
    ~name:"4-lane ingest is bit-identical under graceful restart" ~gr:120

(* -- directed: GR End-of-RIB mark-and-sweep on the parallel lane ----------- *)

(* A GR-aware neighbor loads its table through the parallel lane, flaps,
   and replays only part of it — again through the lane — before closing
   with End-of-RIB on the session. The worker-side stale unmark and the
   coordinator-side sweep must agree: retained routes generate zero churn
   toward the experiment, the missing route exactly one withdrawal. *)
let test_par_gr_eor () =
  let fx = make_fixture ~gr_restart_time:120 ~parallel_ingest:4 () in
  let nbr = 0 in
  let ann p =
    ( fx.neighbor_ids.(nbr),
      Router.Wire
        (Codec.encode
           (Msg.Update
              (Msg.update ~attrs:(attr_variant ~nbr 0)
                 ~announced:[ Msg.nlri (op_prefix p) ]
                 ()))) )
  in
  Router.ingest_updates fx.router [| ann 0; ann 1; ann 2 |];
  settle fx;
  checki "experiment heard the initial table" 3 (Hashtbl.length fx.heard);
  let s = fx.pairs.(nbr).Sim.Bgp_wire.active in
  Session.set_handlers s
    {
      null_handlers with
      Session.on_established =
        (fun () ->
          Router.ingest_updates fx.router [| ann 0; ann 1 |];
          Session.send_update s (Msg.update ()));
    };
  fx.withdrawn_seen := 0;
  fx.announces := [];
  let fault = Sim.Fault.create fx.engine in
  Sim.Fault.kill_pair fault
    ~at:(Sim.Engine.now fx.engine +. 0.5)
    fx.pairs.(nbr);
  Sim.Engine.run_until fx.engine (Sim.Engine.now fx.engine +. 30.);
  settle fx;
  let id = fx.neighbor_ids.(nbr) in
  checki "no stale routes after the sweep" 0
    (Router.stale_count fx.router ~neighbor_id:id);
  checki "replayed routes retained" 2
    (List.length (Router.neighbor_routes fx.router ~neighbor_id:id));
  checkb "retained prefix still heard" true
    (Hashtbl.mem fx.heard (op_prefix 0, Some id));
  checkb "swept prefix withdrawn from experiment" false
    (Hashtbl.mem fx.heard (op_prefix 2, Some id));
  checki "exactly one withdrawal (the swept route)" 1 !(fx.withdrawn_seen);
  checki "retained routes generated no announce churn" 0
    (List.length !(fx.announces));
  checki "staging queues drained" 0
    (Router.ingest_stats fx.router).Router.staging_residual;
  Router.shutdown_domains fx.router

(* -- directed: mid-churn session kill on a worker-owned neighbor ----------- *)

(* The target a worker sees is captured at drain time, so a session that
   hard-drops between two batches must be reflected in the next drain:
   the relearned table after the kill has to match the sequential path
   exactly. Expressed as a fixed ops script run differentially. *)
let test_par_kill_mid_churn () =
  let wave v =
    List.concat_map
      (fun nbr -> List.init 6 (fun p -> Announce (nbr, p, v)))
      (List.init n_neighbors Fun.id)
  in
  let script =
    wave 0 @ [ Drain; Tick; Flap 2; Tick ] @ wave 1
    @ [ Drain; Tick; Withdraw (2, 1); Withdraw (4, 3); Drain; Tick ]
  in
  let fp_par, residual = run_ops ~parallel_ingest:4 ~gr:0 script in
  let fp_seq, _ = run_ops ~parallel_ingest:1 ~gr:0 script in
  checki "staging queues drained" 0 residual;
  checks "kill mid-churn converges identically" fp_seq fp_par

(* -- partitioning and plumbing --------------------------------------------- *)

let test_domain_spread () =
  let workers = 4 in
  let counts = Array.make workers 0 in
  for nid = 0 to 255 do
    let d = Ingest_pool.domain_of_neighbor ~workers nid in
    checkb "lane in range" true (d >= 0 && d < workers);
    counts.(d) <- counts.(d) + 1
  done;
  (* The mix must spread dense small ids: no lane may own less than a
     quarter of its fair share of 256 consecutive neighbors. *)
  Array.iter
    (fun c -> checkb "no starved lane" true (c >= 256 / workers / 4))
    counts;
  for nid = 0 to 31 do
    checki "single lane folds everything to 0" 0
      (Ingest_pool.domain_of_neighbor ~workers:1 nid)
  done

let test_create_validation () =
  let engine = Sim.Engine.create () in
  let mk ?(ingest_batching = true) parallel_ingest () =
    Router.create ~engine ~name:"v" ~asn:(asn 1) ~router_id:(ip "10.0.0.1")
      ~primary_ip:(ip "10.0.0.1") ~local_pool:(pfx "127.66.0.0/16")
      ~global_pool:
        (Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f)
      ~ingest_batching ~parallel_ingest ()
  in
  checkb "parallel_ingest 0 rejected" true
    (try
       ignore (mk 0 ());
       false
     with Invalid_argument _ -> true);
  checkb "parallel lane requires batched ingest" true
    (try
       ignore (mk ~ingest_batching:false 4 ());
       false
     with Invalid_argument _ -> true);
  let r = mk 1 () in
  checki "parallel_ingest 1 is the sequential path" 1 (Router.parallel_ingest r)

let test_unknown_neighbor_rejected () =
  let fx = make_fixture ~parallel_ingest:4 () in
  let bogus = 1 + Array.fold_left max 0 fx.neighbor_ids in
  checkb "unknown neighbor raises" true
    (try
       Router.ingest_updates fx.router
         [| (bogus, Router.Update (Msg.update ())) |];
       false
     with Invalid_argument _ -> true);
  Router.shutdown_domains fx.router

let () =
  Alcotest.run "par-ingest"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_differential_gr;
        ] );
      ( "graceful-restart",
        [
          Alcotest.test_case "EoR mark-and-sweep rides the parallel lane"
            `Quick test_par_gr_eor;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-churn session kill on a worker's neighbor"
            `Quick test_par_kill_mid_churn;
        ] );
      ( "partition",
        [
          Alcotest.test_case "neighbor hash spreads across lanes" `Quick
            test_domain_spread;
          Alcotest.test_case "create validates the lane count" `Quick
            test_create_validation;
          Alcotest.test_case "unknown neighbor rejected" `Quick
            test_unknown_neighbor_rejected;
        ] );
    ]
