(* bench_diff BASELINE.json CURRENT.json

   Compares two bench-harness --json outputs and fails (exit 1) when a
   headline metric regresses by more than 10%. The direction of "better"
   is inferred from the metric's unit:

     lower is better    bytes, prefixes, messages, computations, count,
                        sim_s (simulated seconds are deterministic)
     higher is better   ratio, percent, rate
     ignored            wall-clock timing units (ns/op, us/update, ...) —
                        too noisy for a hard gate on shared CI hardware

   The input format is the array written by bench/main.ml: one object per
   line with "experiment", "metric", "value", and "unit" fields. Parsing
   is a small string scanner rather than a JSON library so the tool has
   no dependencies beyond the stdlib. *)

let tolerance = 0.10

type direction = Lower_better | Higher_better | Ignored

let direction_of_unit = function
  | "bytes" | "prefixes" | "messages" | "computations" | "count" | "sim_s" ->
      Lower_better
  | "ratio" | "percent" | "rate" -> Higher_better
  | _ -> Ignored

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "bench_diff: cannot open %s: %s\n" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Extract ["key": "..."] from a record line; None if absent. *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  match
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some i -> (
      (* Skip whitespace, expect an opening quote. *)
      let rec skip i =
        if i < String.length line && line.[i] = ' ' then skip (i + 1) else i
      in
      let i = skip i in
      if i >= String.length line || line.[i] <> '"' then None
      else
        match String.index_from_opt line (i + 1) '"' with
        | None -> None
        | Some j -> Some (String.sub line (i + 1) (j - i - 1)))

(* Extract ["key": 123.4] (unquoted number) from a record line. *)
let number_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let is_num c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      let n = String.length line in
      let rec skip i = if i < n && not (is_num line.[i]) then skip (i + 1) else i in
      let start = skip i in
      let rec stop i = if i < n && is_num line.[i] then stop (i + 1) else i in
      let fin = stop start in
      if fin = start then None
      else float_of_string_opt (String.sub line start (fin - start))

(* (experiment, metric) -> (value, unit); tolerant of the surrounding
   array brackets and trailing commas. *)
let parse path =
  let rows = Hashtbl.create 64 in
  String.split_on_char '\n' (read_file path)
  |> List.iter (fun line ->
         match
           ( string_field line "experiment",
             string_field line "metric",
             number_field line "value",
             string_field line "unit" )
         with
         | Some exp, Some metric, Some value, Some unit_ ->
             Hashtbl.replace rows (exp, metric) (value, unit_)
         | _ -> ());
  rows

let () =
  (match Sys.argv with
  | [| _; _; _ |] -> ()
  | _ ->
      prerr_endline "usage: bench_diff BASELINE.json CURRENT.json";
      exit 2);
  let baseline = parse Sys.argv.(1) and current = parse Sys.argv.(2) in
  if Hashtbl.length baseline = 0 then begin
    Printf.eprintf "bench_diff: no metric records in %s\n" Sys.argv.(1);
    exit 2
  end;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) baseline []
    |> List.sort compare
  in
  let regressions = ref [] and compared = ref 0 in
  Printf.printf "%-48s %12s %12s %8s\n" "metric" "baseline" "current" "delta";
  List.iter
    (fun ((exp, metric) as key) ->
      let old_v, old_u = Hashtbl.find baseline key in
      match (direction_of_unit old_u, Hashtbl.find_opt current key) with
      | Ignored, _ -> ()
      | _, None ->
          regressions :=
            Printf.sprintf "%s/%s: missing from current run" exp metric
            :: !regressions
      | dir, Some (new_v, _) ->
          incr compared;
          let delta_pct =
            if old_v = 0. then if new_v = 0. then 0. else infinity
            else (new_v -. old_v) /. abs_float old_v *. 100.
          in
          let bad =
            match dir with
            | Lower_better ->
                if old_v = 0. then new_v > 0.
                else new_v > old_v *. (1. +. tolerance)
            | Higher_better -> new_v < old_v *. (1. -. tolerance)
            | Ignored -> false
          in
          Printf.printf "%-48s %12.6g %12.6g %7.1f%%%s\n"
            (exp ^ "/" ^ metric) old_v new_v delta_pct
            (if bad then "  << REGRESSION" else "");
          if bad then
            regressions :=
              Printf.sprintf "%s/%s: %.6g -> %.6g (%+.1f%%, %s)" exp metric
                old_v new_v delta_pct
                (match dir with
                | Lower_better -> "lower is better"
                | _ -> "higher is better")
              :: !regressions)
    keys;
  Printf.printf "compared %d gated metrics against %s\n" !compared
    Sys.argv.(1);
  match !regressions with
  | [] -> print_endline "bench-diff: OK (no metric regressed >10%)"
  | rs ->
      Printf.eprintf "bench-diff: %d regression(s) beyond %.0f%%:\n"
        (List.length rs) (tolerance *. 100.);
      List.iter (fun r -> Printf.eprintf "  %s\n" r) (List.rev rs);
      exit 1
