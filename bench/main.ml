(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4.2, §6, Table 1, §4.7) against this reproduction. Run all
   experiments with

     dune exec bench/main.exe

   or a single one by name:

     dune exec bench/main.exe -- fig6a fig6b throughput amsix table1 census
                                 security ratelimit burst fleet ablate micro
                                 flap intern fwd fullscale

   Paper-vs-measured numbers for each experiment are recorded in
   EXPERIMENTS.md. Absolute numbers differ from the paper's (their substrate
   was BIRD on Xeon servers; ours is an OCaml simulator), but the shapes —
   linear scaling, who wins, where limits bind — are the reproduction
   targets. *)

open Netcore
open Bgp

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let section title = Fmt.pr "@.=== %s ===@." title

(* -- machine-readable output (--json) and CI smoke mode (--smoke) --------- *)

let json_out : string option ref = ref None
let smoke = ref false
let records : (string * string * float * string) list ref = ref []

(* Record a headline metric; written as JSON when --json is given. *)
let record ~experiment ~metric ~unit_ value =
  records := (experiment, metric, value, unit_) :: !records

let write_json path =
  let oc = open_out path in
  let rows = List.rev !records in
  Printf.fprintf oc "[\n";
  List.iteri
    (fun i (experiment, metric, value, unit_) ->
      Printf.fprintf oc
        "  {\"experiment\": %S, \"metric\": %S, \"value\": %.6g, \"unit\": \
         %S}%s\n"
        experiment metric value unit_
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "]\n";
  close_out oc;
  Fmt.pr "@.wrote %d metric records to %s@." (List.length rows) path

let words_to_mb words = float_of_int (words * (Sys.word_size / 8)) /. 1e6

(* Synthetic route attributes. With the default [distinct] every route
   gets its own attribute set (the worst case for sharing); passing
   [~distinct:k] folds the stream onto [k] distinct sets, modelling the
   real-world shape where many routes repeat the same path attributes
   (and letting the arena intern them onto shared canonical copies). *)
let synth_attrs ?(distinct = max_int) i =
  let i = i mod distinct in
  Attr.origin_attrs
    ~as_path:
      (Aspath.of_asns
         [
           asn (1000 + (i mod 977));
           asn (2000 + (i mod 499));
           asn (3000 + (i mod 211));
         ])
    ~next_hop:(Ipv4.of_int32 (Int32.of_int (0x0a000000 lor (i land 0xffffff))))
    ()
  |> Attr.with_med (i mod 100)

(* The i-th synthetic prefix: distinct /24s. *)
let synth_prefix i =
  Prefix.make (Ipv4.of_int32 (Int32.of_int ((i lsl 8) lor 0x40000000))) 24

(* ------------------------------------------------------------------------- *)
(* Figure 6a: memory vs number of known routes, three configurations.        *)
(* ------------------------------------------------------------------------- *)

let neighbors_6a = 8

(* Control plane only: one RIB holding all routes. [attrs_of] picks the
   attribute stream; [Rib.Route.make] interns, so repeated sets share
   one canonical copy in the arena. *)
let build_control_plane ?(attrs_of = synth_attrs ?distinct:None) n =
  let table = Rib.Table.create () in
  for i = 0 to n - 1 do
    let peer = i mod neighbors_6a in
    let route =
      Rib.Route.make
        ~prefix:(synth_prefix (i / neighbors_6a))
        ~attrs:(attrs_of i)
        ~source:
          (Rib.Route.source
             ~peer_ip:(Ipv4.of_int32 (Int32.of_int (0x64400001 + peer)))
             ~peer_asn:(asn (100 + peer)) ())
        ()
    in
    ignore (Rib.Table.update table route)
  done;
  table

(* vBGP: + one FIB entry per route in the owning neighbor's kernel table. *)
let build_data_plane n =
  let table = build_control_plane n in
  let fibs = Rib.Fib.Set.create () in
  for i = 0 to n - 1 do
    let peer = i mod neighbors_6a in
    Rib.Fib.insert
      (Rib.Fib.Set.table fibs peer)
      (synth_prefix (i / neighbors_6a))
      {
        Rib.Fib.next_hop = Ipv4.of_int32 (Int32.of_int (0x64400001 + peer));
        neighbor = peer;
      }
  done;
  (table, fibs)

(* + default: the router additionally keeps its own best-path kernel FIB
   in sync (needed only if the vBGP node also routes production traffic). *)
let build_data_plane_with_default n =
  let table, fibs = build_data_plane n in
  let default_fib = Rib.Fib.create () in
  Rib.Table.iter_best
    (fun prefix r ->
      Rib.Fib.insert default_fib prefix
        {
          Rib.Fib.next_hop =
            (match Rib.Route.next_hop r with Some nh -> nh | None -> Ipv4.any);
          neighbor = 0;
        })
    table;
  (table, fibs, default_fib)

(* The attribute stream of the sharing rows: 4096 distinct sets folded
   over the table, the shape of a real feed where many routes repeat the
   same path attributes. Interning stores each set once. *)
let fig6a_shared_distinct = 4096

let fig6a () =
  section "Figure 6a: memory vs known routes";
  Fmt.pr "%-10s %-16s %-16s %-22s %-26s@." "routes" "control plane"
    "cp (shared)" "per-interconn. dp" "per-interconn. dp w/ default";
  let sweep = [ 25_000; 50_000; 100_000; 200_000 ] in
  let per_route = ref [] in
  List.iter
    (fun n ->
      let cp = build_control_plane n in
      let cp_mb = words_to_mb (Obj.reachable_words (Obj.repr cp)) in
      let cps =
        build_control_plane
          ~attrs_of:(synth_attrs ~distinct:fig6a_shared_distinct)
          n
      in
      let cps_mb = words_to_mb (Obj.reachable_words (Obj.repr cps)) in
      let dp = build_data_plane n in
      let dp_mb = words_to_mb (Obj.reachable_words (Obj.repr dp)) in
      let dpd = build_data_plane_with_default n in
      let dpd_mb = words_to_mb (Obj.reachable_words (Obj.repr dpd)) in
      record ~experiment:"fig6a"
        ~metric:(Printf.sprintf "control_plane_bytes_%d" n)
        ~unit_:"bytes" (cp_mb *. 1e6);
      record ~experiment:"fig6a"
        ~metric:(Printf.sprintf "control_plane_shared_bytes_%d" n)
        ~unit_:"bytes" (cps_mb *. 1e6);
      record ~experiment:"fig6a"
        ~metric:(Printf.sprintf "data_plane_bytes_%d" n)
        ~unit_:"bytes" (dp_mb *. 1e6);
      record ~experiment:"fig6a"
        ~metric:(Printf.sprintf "data_plane_default_bytes_%d" n)
        ~unit_:"bytes" (dpd_mb *. 1e6);
      per_route := (n, cp_mb, cps_mb, dp_mb, dpd_mb) :: !per_route;
      Fmt.pr "%-10d %-16s %-16s %-22s %-26s@." n
        (Fmt.str "%.1f MB" cp_mb)
        (Fmt.str "%.1f MB" cps_mb)
        (Fmt.str "%.1f MB" dp_mb)
        (Fmt.str "%.1f MB" dpd_mb))
    sweep;
  (* Linearity check and per-route cost (paper: ~327 B/route in BIRD; a
     32 GiB server serves 100M routes). *)
  (match !per_route with
  | (n2, cp2, cps2, dp2, dpd2) :: _ ->
      let cp_bytes = cp2 *. 1e6 /. float_of_int n2 in
      let cps_bytes = cps2 *. 1e6 /. float_of_int n2 in
      let dp_bytes = dp2 *. 1e6 /. float_of_int n2 in
      let dpd_bytes = dpd2 *. 1e6 /. float_of_int n2 in
      record ~experiment:"fig6a" ~metric:"bytes_per_route" ~unit_:"bytes"
        cp_bytes;
      record ~experiment:"fig6a" ~metric:"bytes_per_route_shared"
        ~unit_:"bytes" cps_bytes;
      Fmt.pr
        "per-route cost: control=%.0f B, shared-attrs control=%.0f B, \
         +data-plane=%.0f B, +default=%.0f B (paper control plane: 327 B)@."
        cp_bytes cps_bytes dp_bytes dpd_bytes;
      Fmt.pr
        "a 32 GiB server supports %.0fM routes in the control-plane \
         configuration (paper: 100M), %.0fM with interned shared attrs@."
        (32. *. 1024. *. 1024. *. 1024. /. cp_bytes /. 1e6)
        (32. *. 1024. *. 1024. *. 1024. /. cps_bytes /. 1e6)
  | [] -> ());
  (* Shape check: memory grows linearly with route count. *)
  match (!per_route, List.rev !per_route) with
  | (nbig, big, _, _, _) :: _, (nsmall, small, _, _, _) :: _ ->
      Fmt.pr "linearity: %.0fx routes -> %.1fx memory@."
        (float_of_int nbig /. float_of_int nsmall)
        (big /. small)
  | _ -> ()

(* ------------------------------------------------------------------------- *)
(* Figure 6b: CPU utilization vs rate of updates, three configurations.      *)
(* ------------------------------------------------------------------------- *)

(* Pre-encoded synthetic update stream from a neighbor. *)
let encoded_updates n =
  Array.init n (fun i ->
      Codec.encode
        (Msg.Update
           (Msg.update ~attrs:(synth_attrs i)
              ~announced:[ Msg.nlri (synth_prefix (i mod 50_000)) ]
              ())))

let time_per_update name f stream =
  (* Warm up, then measure. *)
  let warmup = min 2_000 (Array.length stream) in
  for i = 0 to warmup - 1 do
    f stream.(i)
  done;
  let t0 = Unix.gettimeofday () in
  Array.iter f stream;
  let dt = Unix.gettimeofday () -. t0 in
  let per = dt /. float_of_int (Array.length stream) in
  Fmt.pr "%-22s %.2f us/update (%.0f updates/s sustainable)@." name
    (per *. 1e6) (1. /. per);
  per

(* A vBGP router fixture with [experiments] connected experiment sessions
   and optionally a backbone mesh peer. Session sends are synchronous, so
   the pipeline can be driven and timed without running the event engine. *)
let make_bench_router ?caps ?data ?(flow_cache = true) ?(domains = 1)
    ~experiments ~mesh () =
  let engine = Sim.Engine.create () in
  let global_pool =
    Vbgp.Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Vbgp.Router.create ~engine ~name:"bench" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ?data ~flow_cache
      ~domains ()
  in
  Vbgp.Router.activate router;
  let neighbor_id, npair =
    Vbgp.Router.add_neighbor router ~asn:(asn 100) ~ip:(ip "100.64.0.1")
      ~kind:Vbgp.Neighbor.Transit ~remote_id:(ip "100.64.0.1") ()
  in
  Sim.Bgp_wire.start npair;
  for i = 1 to experiments do
    let grant =
      Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
        ~prefixes:[ pfx "184.164.224.0/24" ]
        ?caps
        (Printf.sprintf "bench%d" i)
    in
    let pair =
      Vbgp.Router.connect_experiment router ~grant
        ~mac:(Mac.local ~pool:0xe0 i) ()
    in
    Sim.Bgp_wire.start pair
  done;
  if mesh then begin
    let router2 =
      Vbgp.Router.create ~engine ~name:"bench2" ~asn:(asn 47065)
        ~router_id:(ip "10.255.0.2") ~primary_ip:(ip "10.255.0.2")
        ~local_pool:(pfx "127.66.0.0/16") ~global_pool ()
    in
    Vbgp.Router.activate router2;
    ignore (Vbgp.Router.connect_mesh router router2 ())
  end;
  Sim.Engine.run_until engine 10.;
  (router, neighbor_id)

let fig6b () =
  section "Figure 6b: CPU utilization vs rate of updates";
  let n = 30_000 in
  let stream = encoded_updates n in
  (* accept: decode and store, no vBGP machinery (BIRD's "accept all"). *)
  let accept_table = Rib.Table.create () in
  let accept_source =
    Rib.Route.source ~peer_ip:(ip "100.64.0.1") ~peer_asn:(asn 100) ()
  in
  let t_accept =
    time_per_update "accept"
      (fun bytes ->
        match Codec.decode_exn bytes with
        | Msg.Update u ->
            List.iter
              (fun (nl : Msg.nlri) ->
                ignore
                  (Rib.Table.update accept_table
                     (Rib.Route.make ~prefix:nl.Msg.prefix ~attrs:u.Msg.attrs
                        ~source:accept_source ())))
              u.Msg.announced
        | _ -> ())
      stream
  in
  (* single-router vBGP: the full ingress pipeline with one experiment
     (per-neighbor RIB + FIB + next-hop rewrite + ADD-PATH re-export). *)
  let router, neighbor_id = make_bench_router ~experiments:1 ~mesh:false () in
  let t_single =
    time_per_update "single-router vBGP"
      (fun bytes ->
        match Codec.decode_exn bytes with
        | Msg.Update u ->
            Vbgp.Router.process_neighbor_update router ~neighbor_id u
        | _ -> ())
      stream
  in
  (* multi-router vBGP: + backbone mesh export with global next-hop
     handling (§4.3-4.4). *)
  let router_m, neighbor_id_m = make_bench_router ~experiments:1 ~mesh:true () in
  let t_multi =
    time_per_update "multi-router vBGP"
      (fun bytes ->
        match Codec.decode_exn bytes with
        | Msg.Update u ->
            Vbgp.Router.process_neighbor_update router_m
              ~neighbor_id:neighbor_id_m u
        | _ -> ())
      stream
  in
  Fmt.pr "@.%-10s %-10s %-20s %-20s@." "upd/s" "accept" "single-router vBGP"
    "multi-router vBGP";
  List.iter
    (fun rate ->
      let cpu t = Float.min 100. (float_of_int rate *. t *. 100.) in
      Fmt.pr "%-10d %-10s %-20s %-20s@." rate
        (Fmt.str "%.1f%%" (cpu t_accept))
        (Fmt.str "%.1f%%" (cpu t_single))
        (Fmt.str "%.1f%%" (cpu t_multi)))
    [ 500; 1000; 1500; 2000; 2500; 3000; 3500; 4000 ];
  Fmt.pr
    "shape: CPU grows linearly with rate; vBGP processing adds %.0f%% over \
     accept; multi-router adds %.0f%% over single-router@."
    ((t_single /. t_accept -. 1.) *. 100.)
    ((t_multi /. t_single -. 1.) *. 100.)

(* ------------------------------------------------------------------------- *)
(* §6: backbone TCP throughput between PoP pairs (iperf3 in the paper).      *)
(* ------------------------------------------------------------------------- *)

type region = Us_east | Us_west | Europe | Brazil

let pops_13 =
  [
    ("cornell", Us_east);
    ("gatech", Us_east);
    ("clemson", Us_east);
    ("columbia", Us_east);
    ("wisc", Us_east);
    ("utah", Us_west);
    ("uw", Us_west);
    ("ufmg", Brazil);
    ("ufms", Brazil);
    ("amsterdam", Europe);
    ("seattle", Us_west);
    ("phoenix", Us_west);
    ("isi", Us_west);
  ]

let rtt_between a b =
  match (a, b) with
  | Us_east, Us_east | Us_west, Us_west | Europe, Europe | Brazil, Brazil ->
      0.02
  | Us_east, Us_west | Us_west, Us_east -> 0.07
  | Us_east, Europe | Europe, Us_east -> 0.09
  | Us_west, Europe | Europe, Us_west -> 0.15
  | Us_east, Brazil | Brazil, Us_east -> 0.12
  | Us_west, Brazil | Brazil, Us_west -> 0.18
  | Europe, Brazil | Brazil, Europe -> 0.21

let throughput () =
  section "§6: backbone TCP throughput between PoP pairs";
  let rng = Random.State.make [| 13 |] in
  let results = ref [] in
  let mbps bytes_per_s = bytes_per_s *. 8. /. 1e6 in
  (* Per-site uplink capacity: two university sites are bandwidth
     constrained by agreement with their operators (§4.7). *)
  let uplink_mbps name =
    match name with
    | "ufms" -> 65.
    | "clemson" -> 110.
    | _ -> 600. +. Random.State.float rng 400.
  in
  let uplinks = List.map (fun (n, _) -> (n, uplink_mbps n)) pops_13 in
  List.iteri
    (fun i (na, ra) ->
      List.iteri
        (fun j (nb, rb) ->
          if i < j then begin
            (* Provisioned AL2S/RNP VLAN capacity varies per pair; loss is
               the educational-backbone background rate. *)
            let vlan_mbps = 350. +. Random.State.float rng 410. in
            let loss = 5e-9 +. Random.State.float rng 3e-7 in
            let rtt =
              rtt_between ra rb *. (0.9 +. Random.State.float rng 0.3)
            in
            let path =
              [
                Sim.Flow.link
                  ~capacity:(List.assoc na uplinks *. 1e6 /. 8.)
                  ~id:(i * 100);
                Sim.Flow.link ~capacity:(vlan_mbps *. 1e6 /. 8.)
                  ~id:((i * 16) + j + 2000);
                Sim.Flow.link
                  ~capacity:(List.assoc nb uplinks *. 1e6 /. 8.)
                  ~id:(j * 100);
              ]
            in
            let rate = Sim.Flow.tcp_throughput ~rtt ~loss path in
            results := (na, nb, mbps rate) :: !results
          end)
        pops_13)
    pops_13;
  let rates = List.map (fun (_, _, r) -> r) !results in
  let avg = List.fold_left ( +. ) 0. rates /. float_of_int (List.length rates) in
  let mn = List.fold_left Float.min infinity rates in
  let mx = List.fold_left Float.max neg_infinity rates in
  Fmt.pr "measured over %d PoP pairs (13 PoPs):@." (List.length rates);
  Fmt.pr "  average %.0f Mbps (paper: ~400)@." avg;
  Fmt.pr "  minimum %.0f Mbps (paper: 60)@." mn;
  Fmt.pr "  maximum %.0f Mbps (paper: 750)@." mx;
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) !results
  in
  (match (sorted, List.rev sorted) with
  | (a1, a2, ar) :: _, (b1, b2, br) :: _ ->
      Fmt.pr "  slowest pair: %s-%s at %.0f Mbps (constrained site)@." a1 a2
        ar;
      Fmt.pr "  fastest pair: %s-%s at %.0f Mbps (capacity-bound)@." b1 b2 br
  | _ -> ());
  (* Validation: run *actual* event-driven TCP transfers (Sim.Tcp) on three
     representative pair profiles and compare against the analytic model. *)
  Fmt.pr
    "@.model vs event-driven TCP (Sim.Tcp, iperf-style transfers — the \
     model is idealized steady state, the simulator a timeout-recovery \
     Reno; agreement in shape and order, not digits):@.";
  List.iter
    (fun (profile, latency, cap_mbps, loss) ->
      let engine = Sim.Engine.create () in
      let model =
        mbps
          (Sim.Flow.tcp_throughput ~rtt:(2. *. latency) ~loss
             [ Sim.Flow.link ~capacity:(cap_mbps *. 1e6 /. 8.) ~id:1 ])
      in
      match
        Sim.Tcp.run engine ~latency ~bandwidth:(cap_mbps *. 1e6 /. 8.) ~loss
          ~bytes:(if loss > 1e-5 then 10_000_000 else 40_000_000) ()
      with
      | Some s ->
          Fmt.pr
            "  %-22s simulated %.0f Mbps, model %.0f Mbps (%d retransmits)@."
            profile
            (s.Sim.Tcp.goodput *. 8. /. 1e6)
            model s.Sim.Tcp.retransmits
      | None -> Fmt.pr "  %-22s transfer did not converge@." profile)
    [
      ("short-RTT capacity-bound", 0.010, 400., 1e-7);
      ("long-RTT loss-bound", 0.045, 600., 1e-3);
      ("constrained site", 0.035, 65., 1e-7);
    ]

(* ------------------------------------------------------------------------- *)
(* §6: AMS-IX operational scale.                                             *)
(* ------------------------------------------------------------------------- *)

let amsix () =
  section "§6: AMS-IX-scale operation";
  (* The paper's AMS-IX vBGP: 4 route servers + 2 transits + 235 bilateral
     routers; 2.7M routes from 854 ASes; 21.8 upd/s average, p99 ~400. We
     reproduce the update-stream side at full rate and project the memory
     side from the measured per-route cost. *)
  let routes = 2_700_000 in
  let sample = 100_000 in
  let table, fibs = build_data_plane sample in
  let bytes_per_route =
    float_of_int
      ((Obj.reachable_words (Obj.repr table)
       + Obj.reachable_words (Obj.repr fibs))
      * (Sys.word_size / 8))
    /. float_of_int sample
  in
  Fmt.pr "routes at AMS-IX: %d from 854 ASes (paper)@." routes;
  Fmt.pr
    "projected vBGP memory at 2.7M routes: %.1f GB (%.0f B/route) — fits a \
     commodity 32 GiB server@."
    (float_of_int routes *. bytes_per_route /. 1e9)
    bytes_per_route;
  (* Churn: a 30-minute trace shaped like the paper's (Poisson background +
     path-exploration bursts), pushed through the full pipeline. *)
  let prefixes = List.init 2_000 synth_prefix in
  let params =
    {
      Topo.Updates.default_params with
      rate = 21.8;
      duration = 1800.;
      burst_fraction = 0.03;
      burst_size = 400;
      peers = 235;
    }
  in
  let events =
    Topo.Updates.generate ~params ~prefixes ~origin_asn:(asn 29640) ()
  in
  let avg, p99 = Topo.Updates.rate_stats events in
  Fmt.pr
    "generated churn: %.1f upd/s average (paper: 21.8), p99 %.0f upd/s \
     (paper: ~400)@."
    avg p99;
  let router, neighbor_id = make_bench_router ~experiments:1 ~mesh:false () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      Vbgp.Router.process_neighbor_update router ~neighbor_id
        (Topo.Updates.to_update ~next_hop:(ip "100.64.0.1") e))
    events;
  let dt = Unix.gettimeofday () -. t0 in
  let n = List.length events in
  Fmt.pr
    "processed %d updates (30 simulated minutes) in %.2f s of CPU — %.4f%% \
     utilization at the paper's average rate@."
    n dt
    (dt /. 1800. *. 100.);
  Fmt.pr "headroom: sustainable rate %.0f upd/s >> p99 burst rate@."
    (float_of_int n /. dt)

(* ------------------------------------------------------------------------- *)
(* Table 1: toolkit functionality.                                           *)
(* ------------------------------------------------------------------------- *)

let table1 () =
  section "Table 1: experiment toolkit functionality";
  let open Peering in
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let n1 = Pop.add_transit pop ~asn:(asn 100) in
  Neighbor_host.announce n1
    [ (pfx "192.168.0.0/24", Aspath.of_asns [ asn 100 ]) ];
  Platform.run platform ~seconds:5.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"table1" ~team:"bench" ~goals:"table 1"
           ~requested_caps:
             Vbgp.Experiment_caps.(
               default |> with_communities 4 |> with_poisoning 2)
           ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  let row category func ok =
    Fmt.pr "  %-18s %-40s %s@." category func (if ok then "[OK]" else "[FAIL]")
  in
  (* OpenVPN rows. *)
  ignore (Toolkit.open_tunnel kit pop);
  row "OpenVPN" "open tunnel" (Toolkit.tunnel kit "pop01" <> None);
  row "OpenVPN" "check tunnel status"
    (match Toolkit.session_status kit with [ _ ] -> true | _ -> false);
  (* BGP/BIRD rows. *)
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  row "BGP/BIRD" "start v4 sessions" (Toolkit.established kit ~pop:"pop01");
  row "BGP/BIRD" "status of BGP connections"
    (match Toolkit.session_status kit with
    | [ (_, Fsm.Established, true) ] -> true
    | _ -> false);
  row "BGP/BIRD" "access BIRD CLI"
    (String.length (Toolkit.cli kit "show protocols") > 0);
  Toolkit.stop_session kit ~pop:"pop01";
  Platform.run platform ~seconds:5.;
  let stopped = not (Toolkit.established kit ~pop:"pop01") in
  Toolkit.start_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  row "BGP/BIRD" "stop sessions" stopped;
  (* Prefix management rows. *)
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  row "Prefix mgmt" "announce prefix"
    (Neighbor_host.heard_route n1 prefix <> None);
  Toolkit.withdraw kit prefix;
  Platform.run platform ~seconds:5.;
  row "Prefix mgmt" "withdraw prefix"
    (Neighbor_host.heard_route n1 prefix = None);
  Toolkit.announce kit ~communities:[ Community.make 100 42 ] prefix;
  Platform.run platform ~seconds:5.;
  row "Prefix mgmt" "manipulate community attribute"
    (match Neighbor_host.heard_route n1 prefix with
    | Some attrs -> Attr.has_community (Community.make 100 42) attrs
    | None -> false);
  Toolkit.announce kit ~prepend:2 prefix;
  Platform.run platform ~seconds:5.;
  row "Prefix mgmt" "manipulate the AS-path attribute"
    (match Neighbor_host.heard_route n1 prefix with
    | Some attrs -> (
        match Attr.as_path attrs with
        | Some p -> Aspath.length p = 4
        | None -> false)
    | None -> false)

(* ------------------------------------------------------------------------- *)
(* §4.2: footprint and connectivity census.                                  *)
(* ------------------------------------------------------------------------- *)

let census () =
  section "§4.2: footprint and connectivity";
  let db = Topo.Peeringdb.generate () in
  Fmt.pr "unique peers: %d (paper: 923)@."
    (List.length (Topo.Peeringdb.unique_peers db));
  Fmt.pr "%-12s %-8s %-10s@." "IXP" "peers" "bilateral";
  List.iter
    (fun (ixp, total, bilateral) ->
      Fmt.pr "%-12s %-8d %-10d@." ixp total bilateral)
    (Topo.Peeringdb.by_ixp db);
  Fmt.pr "@.peer types (paper: 33%% transit, 28%% access, 23%% content):@.";
  List.iter
    (fun (kind, count, frac) ->
      Fmt.pr "  %-20s %4d  %4.1f%%@."
        (Topo.As_graph.kind_to_string kind)
        count (frac *. 100.))
    (Topo.Peeringdb.type_census db);
  (* Customer-cone reach of peer announcements: announcements made only to
     peers reach the union of the peers' customer cones (§4.2's "extra
     route diversity"). *)
  let graph =
    Topo.As_graph.generate
      ~params:
        { Topo.As_graph.default_gen with transit = 30; stub = 300; seed = 4 }
      ()
  in
  let asns = List.sort Asn.compare (Topo.As_graph.asns graph) in
  let total = List.length asns in
  let peers = List.filteri (fun i _ -> i mod 5 = 0 && i < 300) asns in
  let cone = Hashtbl.create 256 in
  List.iter
    (fun p ->
      List.iter
        (fun a -> Hashtbl.replace cone a ())
        (Topo.As_graph.customer_cone graph p))
    peers;
  Fmt.pr
    "@.customer-cone reach: announcements to %d peers reach %d/%d ASes \
     (%.0f%%) without any transit@."
    (List.length peers) (Hashtbl.length cone) total
    (100. *. float_of_int (Hashtbl.length cone) /. float_of_int total)

(* ------------------------------------------------------------------------- *)
(* §4.7: security-policy verification matrix.                                *)
(* ------------------------------------------------------------------------- *)

let security () =
  section "§4.7: security policy matrix (with/without capability)";
  let enforcer =
    Vbgp.Control_enforcer.create ~platform_asns:[ asn 47065 ] ()
  in
  let base_grant caps =
    Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~prefixes_v6:[ Prefix_v6.of_string_exn "2804:269c:1::/48" ]
      ~caps "matrix"
  in
  let announce ?(path = [ 61574 ]) ?(communities = []) ?(extra = []) () =
    Msg.update
      ~attrs:
        (extra
        @ (Attr.origin_attrs
             ~as_path:(Aspath.of_asns (List.map asn path))
             ~next_hop:(ip "184.164.224.1") ()
          |> Attr.with_communities communities))
      ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ]
      ()
  in
  let attempt name update ~with_cap ~without_cap ~outcome_of =
    let run caps =
      outcome_of
        (Vbgp.Control_enforcer.check enforcer ~now:0. ~pop:"p"
           (base_grant caps) update)
    in
    Fmt.pr "  %-28s without: %-9s with: %-9s@." name (run without_cap)
      (run with_cap)
  in
  let accepted_or_rejected = function
    | Vbgp.Control_enforcer.Accepted _ -> "allowed"
    | Vbgp.Control_enforcer.Rejected _ -> "blocked"
  in
  let open Vbgp.Experiment_caps in
  attempt "AS-path poisoning"
    (announce ~path:[ 61574; 3356; 61574 ] ())
    ~with_cap:(default |> with_poisoning 2)
    ~without_cap:default ~outcome_of:accepted_or_rejected;
  attempt "BGP communities"
    (announce ~communities:[ Community.make 100 42 ] ())
    ~with_cap:(default |> with_communities 4)
    ~without_cap:default
    ~outcome_of:(function
      | Vbgp.Control_enforcer.Accepted u ->
          if Attr.has_community (Community.make 100 42) u.Msg.attrs then
            "allowed"
          else "stripped"
      | Vbgp.Control_enforcer.Rejected _ -> "blocked");
  attempt "optional transitive attrs"
    (announce
       ~extra:
         [
           Attr.Unknown
             {
               flags = Attr.flag_optional lor Attr.flag_transitive;
               code = 99;
               data = "x";
             };
         ]
       ())
    ~with_cap:(default |> with_transitive_attrs)
    ~without_cap:default
    ~outcome_of:(function
      | Vbgp.Control_enforcer.Accepted u ->
          if Attr.unknown_transitive u.Msg.attrs <> [] then "allowed"
          else "stripped"
      | Vbgp.Control_enforcer.Rejected _ -> "blocked");
  attempt "transit announcements"
    (announce ~path:[ 3356; 61574 ] ())
    ~with_cap:(default |> with_transit)
    ~without_cap:default ~outcome_of:accepted_or_rejected;
  (* Invariants no capability unlocks. *)
  let everything =
    default |> with_poisoning 3 |> with_communities 8 |> with_transit
    |> with_transitive_attrs |> with_6to4
  in
  let hijack =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 61574 ])
           ~next_hop:(ip "8.8.8.1") ())
      ~announced:[ Msg.nlri (pfx "8.8.8.0/24") ]
      ()
  in
  Fmt.pr "  %-28s always:  %s@." "prefix hijack"
    (accepted_or_rejected
       (Vbgp.Control_enforcer.check enforcer ~now:0. ~pop:"p"
          (base_grant everything) hijack));
  Fmt.pr "  %-28s always:  %s@." "foreign origin ASN"
    (accepted_or_rejected
       (Vbgp.Control_enforcer.check enforcer ~now:0. ~pop:"p"
          (base_grant everything)
          (announce ~path:[ 61574; 15169 ] ())))

(* ------------------------------------------------------------------------- *)
(* §4.7: the 144 updates/day rate limit.                                     *)
(* ------------------------------------------------------------------------- *)

let ratelimit () =
  section "§4.7: announcement rate limiting";
  let enforcer =
    Vbgp.Control_enforcer.create ~platform_asns:[ asn 47065 ] ()
  in
  let grant =
    Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ] "rl"
  in
  let update =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 61574 ])
           ~next_hop:(ip "184.164.224.1") ())
      ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ]
      ()
  in
  let run_day ~pop day =
    let accepted = ref 0 in
    for i = 0 to 199 do
      let now = (day *. 86_400.) +. float_of_int i in
      match Vbgp.Control_enforcer.check enforcer ~now ~pop grant update with
      | Vbgp.Control_enforcer.Accepted _ -> incr accepted
      | Vbgp.Control_enforcer.Rejected _ -> ()
    done;
    !accepted
  in
  Fmt.pr "offered 200 updates at PoP A, day 1: accepted %d (limit 144)@."
    (run_day ~pop:"a" 0.);
  Fmt.pr
    "offered 200 updates at PoP B, day 1: accepted %d (independent budget \
     per PoP)@."
    (run_day ~pop:"b" 0.);
  Fmt.pr
    "offered 200 updates at PoP A, day 2: accepted %d (budget renews \
     daily)@."
    (run_day ~pop:"a" 1.1);
  Fmt.pr
    "average allowed rate: one update per ten minutes per (prefix, PoP)@."

(* ------------------------------------------------------------------------- *)
(* Microbenchmarks (Bechamel): the primitives the figures are built on.      *)
(* ------------------------------------------------------------------------- *)

(* A router with a 10k-route neighbor table for data-plane forwarding
   benchmarks, and a frame generator aimed at it ([flow] selects one of
   64 destination addresses, all covered by the table). *)
let make_fwd_router ?data ?flow_cache ?domains () =
  let router, neighbor_id =
    make_bench_router ?data ?flow_cache ?domains ~experiments:0 ~mesh:false ()
  in
  for i = 0 to 9_999 do
    Vbgp.Router.process_neighbor_update router ~neighbor_id
      (Msg.update ~attrs:(synth_attrs i)
         ~announced:[ Msg.nlri (synth_prefix i) ]
         ())
  done;
  (router, neighbor_id)

let fwd_frame_to router neighbor_id ~flow =
  {
    Eth.dst =
      (match Vbgp.Router.neighbor router neighbor_id with
      | Some ns -> ns.Vbgp.Router.info.Vbgp.Neighbor.virtual_mac
      | None -> Mac.zero);
    src = Mac.local ~pool:0xe0 1;
    ethertype = Eth.Ipv4;
    payload =
      Ipv4_packet.encode
        (Ipv4_packet.make ~src:(ip "184.164.224.1")
           ~dst:(Prefix.host (synth_prefix (4257 + (flow mod 64))) 9)
           ~protocol:Ipv4_packet.Udp "x");
  }

let micro () =
  section "microbenchmarks (bechamel)";
  let open Bechamel in
  let sample_update =
    Msg.update ~attrs:(synth_attrs 7)
      ~announced:[ Msg.nlri (synth_prefix 7) ]
      ()
  in
  let encoded = Codec.encode (Msg.Update sample_update) in
  let lookup_table =
    let t = ref Ptrie.V4.empty in
    for i = 0 to 9_999 do
      t := Ptrie.V4.add (synth_prefix i) i !t
    done;
    !t
  in
  let lookup_addr = Prefix.host (synth_prefix 4321) 1 in
  (* The same 10k-route table behind the FIB's destination cache: after
     the first packet of a flow, lookups skip the trie entirely. *)
  let fib10k =
    let f = Rib.Fib.create () in
    for i = 0 to 9_999 do
      Rib.Fib.insert f (synth_prefix i)
        { Rib.Fib.next_hop = ip "100.64.0.1"; neighbor = 1 }
    done;
    f
  in
  let fib_addr = Prefix.host (synth_prefix 4321) 1 in
  let candidates =
    List.init 10 (fun i ->
        Rib.Route.make ~prefix:(synth_prefix 1) ~attrs:(synth_attrs i)
          ~source:
            (Rib.Route.source
               ~peer_ip:(Ipv4.of_int32 (Int32.of_int (0x01010101 + i)))
               ~peer_asn:(asn (100 + i)) ())
          ())
  in
  let enforcer =
    Vbgp.Control_enforcer.create ~platform_asns:[ asn 47065 ] ()
  in
  let grant =
    Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~caps:Vbgp.Experiment_caps.(default |> with_update_budget max_int)
      "micro"
  in
  let exp_update =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 61574 ])
           ~next_hop:(ip "184.164.224.1") ())
      ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ]
      ()
  in
  let frame =
    Eth.encode
      {
        Eth.dst = Mac.local ~pool:1 1;
        src = Mac.local ~pool:1 2;
        ethertype = Eth.Ipv4;
        payload =
          Ipv4_packet.encode
            (Ipv4_packet.make ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
               ~protocol:Ipv4_packet.Udp "data");
      }
  in
  (* The full data-plane fast path: one flow against a 10k-route table,
     repeated — with the flow cache (the steady state), without it (the
     historical slow path), and the stateless enforcement head alone. *)
  let fwd_router, fwd_neighbor_id = make_fwd_router () in
  let fwd_frame = fwd_frame_to fwd_router fwd_neighbor_id ~flow:64 in
  let fwd_cold_router, fwd_cold_id = make_fwd_router ~flow_cache:false () in
  let fwd_cold_frame = fwd_frame_to fwd_cold_router fwd_cold_id ~flow:64 in
  let stateless_chain =
    let d = Vbgp.Data_enforcer.create () in
    Vbgp.Data_enforcer.add_filter d
      (Vbgp.Data_enforcer.source_validation
         ~owner_of:(fun a ->
           if Prefix.mem a (pfx "184.164.224.0/24") then Some "bench1"
           else None)
         ());
    d
  in
  let stateless_meta = { Vbgp.Data_enforcer.ingress = "bench1" } in
  let stateless_packet =
    Ipv4_packet.make ~src:(ip "184.164.224.1")
      ~dst:(Prefix.host (synth_prefix 4321) 9)
      ~protocol:Ipv4_packet.Udp "x"
  in
  let tests =
    Test.make_grouped ~name:"peering"
      [
        Test.make ~name:"codec-encode-update"
          (Staged.stage (fun () -> Codec.encode (Msg.Update sample_update)));
        Test.make ~name:"codec-decode-update"
          (Staged.stage (fun () -> Codec.decode_exn encoded));
        Test.make ~name:"trie-longest-match-10k"
          (Staged.stage (fun () -> Ptrie.lookup_v4 lookup_addr lookup_table));
        Test.make ~name:"fib-lookup-10k-cached"
          (Staged.stage (fun () -> Rib.Fib.lookup fib10k fib_addr));
        Test.make ~name:"decision-best-of-10"
          (Staged.stage (fun () -> Rib.Decision.best candidates));
        Test.make ~name:"enforcer-check"
          (Staged.stage (fun () ->
               Vbgp.Control_enforcer.check enforcer ~now:0. ~pop:"p" grant
                 exp_update));
        Test.make ~name:"eth+ipv4-decode"
          (Staged.stage (fun () ->
               match Eth.decode frame with
               | Ok f -> ignore (Ipv4_packet.decode f.Eth.payload)
               | Error _ -> ()));
        Test.make ~name:"data-plane-forward"
          (Staged.stage (fun () ->
               Vbgp.Router.forward_experiment_frame fwd_router
                 ~neighbor_id:fwd_neighbor_id fwd_frame));
        Test.make ~name:"data-plane-forward-cached"
          (Staged.stage (fun () ->
               Vbgp.Router.forward_experiment_frame fwd_router
                 ~neighbor_id:fwd_neighbor_id fwd_frame));
        Test.make ~name:"data-plane-forward-cold"
          (Staged.stage (fun () ->
               Vbgp.Router.forward_experiment_frame fwd_cold_router
                 ~neighbor_id:fwd_cold_id fwd_cold_frame));
        Test.make ~name:"enforcer-check-stateless"
          (Staged.stage (fun () ->
               Vbgp.Data_enforcer.check stateless_chain ~now:0.
                 ~meta:stateless_meta stateless_packet));
      ]
  in
  let cfg =
    if !smoke then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.02) ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          record ~experiment:"micro" ~metric:name ~unit_:"ns/op" ns;
          Fmt.pr "  %-36s %10.0f ns/op@." name ns
      | _ -> Fmt.pr "  %-36s (no estimate)@." name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------------- *)
(* Parallel-experiment scaling: update processing cost vs connected         *)
(* experiments (the platform typically hosts 3-6 concurrently, §4.6).       *)
(* ------------------------------------------------------------------------- *)

let fleet () =
  section "parallel experiments: ingress cost vs fan-out";
  let stream = encoded_updates 10_000 in
  Fmt.pr "%-14s %-18s@." "experiments" "per-update cost";
  let base = ref 0. in
  List.iter
    (fun n_exp ->
      let router, neighbor_id = make_bench_router ~experiments:n_exp ~mesh:false () in
      let t0 = Unix.gettimeofday () in
      Array.iter
        (fun bytes ->
          match Codec.decode_exn bytes with
          | Msg.Update u ->
              Vbgp.Router.process_neighbor_update router ~neighbor_id u
          | _ -> ())
        stream;
      let per = (Unix.gettimeofday () -. t0) /. float_of_int (Array.length stream) in
      if n_exp = 0 then base := per;
      Fmt.pr "%-14d %.2f us%s@." n_exp (per *. 1e6)
        (if n_exp = 0 then "" else Fmt.str "  (%.1fx of 0-experiment cost)" (per /. !base)))
    [ 0; 1; 2; 4; 8; 16 ];
  Fmt.pr
    "cost grows linearly with the ADD-PATH fan-out; at the paper's typical 3-6 concurrent experiments the router keeps >100k upd/s of headroom@."

(* ------------------------------------------------------------------------- *)
(* Update bursts: the batched dirty-prefix re-export queue vs eager         *)
(* per-update re-export (flush after every update).                         *)
(* ------------------------------------------------------------------------- *)

let burst () =
  section "update bursts: batched dirty-prefix re-export";
  let caps = Vbgp.Experiment_caps.(default |> with_update_budget max_int) in
  let n_prefixes = 16 and per_prefix = 100 in
  (* More-specifics of the experiment's /24 allocation. *)
  let prefixes =
    Array.init n_prefixes (fun i ->
        pfx (Printf.sprintf "184.164.224.%d/28" (i * 16)))
  in
  let mk_update p j =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 61574 ])
           ~next_hop:(ip "184.164.224.1") ()
        |> Attr.with_med (j mod 100))
      ~announced:[ Msg.nlri p ]
      ()
  in
  let total = n_prefixes * per_prefix in
  let run ~eager =
    let router, _ = make_bench_router ~caps ~experiments:1 ~mesh:false () in
    let c = Vbgp.Router.counters router in
    let c0 = c.Vbgp.Router.reexport_computations in
    let u0 = c.Vbgp.Router.updates_to_neighbors in
    let nl0 = c.Vbgp.Router.nlri_to_neighbors in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun p ->
        for j = 1 to per_prefix do
          (match
             Vbgp.Router.process_experiment_update router ~experiment:"bench1"
               (mk_update p j)
           with
          | Ok () -> ()
          | Error e -> failwith (String.concat "; " e));
          if eager then Vbgp.Router.flush_reexports router
        done)
      prefixes;
    Vbgp.Router.flush_reexports router;
    let dt = Unix.gettimeofday () -. t0 in
    ( dt,
      c.Vbgp.Router.reexport_computations - c0,
      c.Vbgp.Router.updates_to_neighbors - u0,
      c.Vbgp.Router.nlri_to_neighbors - nl0 )
  in
  let dt_eager, comp_eager, msgs_eager, _ = run ~eager:true in
  let dt_batched, comp_batched, msgs_batched, nlri_batched =
    run ~eager:false
  in
  Fmt.pr "%d updates (%d prefixes x %d updates each), 1 neighbor:@." total
    n_prefixes per_prefix;
  Fmt.pr
    "  eager (flush per update):  %.2f us/update, %d facing computations, \
     %d UPDATEs@."
    (dt_eager /. float_of_int total *. 1e6)
    comp_eager msgs_eager;
  Fmt.pr
    "  batched (flush per tick):  %.2f us/update, %d facing computations, \
     %d UPDATEs (%d NLRI)@."
    (dt_batched /. float_of_int total *. 1e6)
    comp_batched msgs_batched nlri_batched;
  let packing =
    float_of_int nlri_batched /. float_of_int (max 1 msgs_batched)
  in
  Fmt.pr
    "  the queue dedupes %.0fx of the facing computation on bursts to the \
     same prefix; NLRI packing ships %.1f routes per UPDATE@."
    (float_of_int comp_eager /. float_of_int (max 1 comp_batched))
    packing;
  record ~experiment:"burst" ~metric:"reexport_computations_eager"
    ~unit_:"computations" (float_of_int comp_eager);
  record ~experiment:"burst" ~metric:"reexport_computations_batched"
    ~unit_:"computations" (float_of_int comp_batched);
  record ~experiment:"burst" ~metric:"updates_sent_eager" ~unit_:"messages"
    (float_of_int msgs_eager);
  record ~experiment:"burst" ~metric:"updates_sent_batched" ~unit_:"messages"
    (float_of_int msgs_batched);
  record ~experiment:"burst" ~metric:"packing_ratio" ~unit_:"ratio" packing

(* ------------------------------------------------------------------------- *)
(* Ablations: the design choices DESIGN.md calls out, each against its      *)
(* obvious alternative.                                                     *)
(* ------------------------------------------------------------------------- *)

let ablate () =
  section "ablations";
  (* 1. Per-neighbor FIBs (vBGP's design) vs one shared FIB with tagged
     entries. The shared design cannot express per-packet neighbor choice
     at all; the ablation quantifies what the expressiveness costs. *)
  let n = 100_000 in
  let per_neighbor = build_data_plane n in
  let shared =
    let table = build_control_plane n in
    let fib = Rib.Fib.create () in
    for i = 0 to n - 1 do
      Rib.Fib.insert fib
        (synth_prefix (i / neighbors_6a))
        {
          Rib.Fib.next_hop =
            Ipv4.of_int32 (Int32.of_int (0x64400001 + (i mod neighbors_6a)));
          neighbor = i mod neighbors_6a;
        }
    done;
    (table, fib)
  in
  let mb x = words_to_mb (Obj.reachable_words (Obj.repr x)) in
  Fmt.pr
    "1. per-neighbor FIBs: %.1f MB vs shared best-path FIB: %.1f MB at %dk routes — %.0f%% memory buys per-packet egress control@."
    (mb per_neighbor) (mb shared) (n / 1000)
    ((mb per_neighbor /. mb shared -. 1.) *. 100.);
  (* 2. Trie longest-prefix match vs linear scan over the route list. *)
  let entries = List.init 10_000 (fun i -> (synth_prefix i, i)) in
  let trie = Ptrie.V4.of_list entries in
  let addr = Prefix.host (synth_prefix 7321) 1 in
  let time iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  let t_trie = time 200_000 (fun () -> Ptrie.lookup_v4 addr trie) in
  let t_scan =
    time 200 (fun () ->
        List.fold_left
          (fun best (p, v) ->
            if Prefix.mem addr p then
              match best with
              | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
              | _ -> Some (p, v)
            else best)
          None entries)
  in
  Fmt.pr
    "2. longest-prefix match over 10k routes: trie %.0f ns vs linear scan %.0f ns (%.0fx)@."
    t_trie t_scan (t_scan /. t_trie);
  (* 3. Decoupled enforcement (the paper's §3.3 design): cost of the
     enforcement chain as policies grow — linear and cheap, which is why
     decoupling from the router costs little. *)
  let grant =
    Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~caps:Vbgp.Experiment_caps.(default |> with_update_budget max_int)
      "ablate"
  in
  let update =
    Msg.update
      ~attrs:
        (Attr.origin_attrs
           ~as_path:(Aspath.of_asns [ asn 61574 ])
           ~next_hop:(ip "184.164.224.1") ())
      ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ]
      ()
  in
  List.iter
    (fun extra_platform_asns ->
      let enforcer =
        Vbgp.Control_enforcer.create
          ~platform_asns:(List.init extra_platform_asns (fun i -> asn (47000 + i)))
          ()
      in
      let t =
        time 20_000 (fun () ->
            Vbgp.Control_enforcer.check enforcer ~now:0. ~pop:"p" grant update)
      in
      Fmt.pr "3. enforcement check with %d platform ASNs in policy: %.0f ns@."
        extra_platform_asns t)
    [ 1; 8; 64 ];
  (* 4. MAC-signalled forwarding vs a hypothetical per-packet table lookup
     by next-hop IP (what one would do without the layer-2 trick): the MAC
     gives O(1) table selection. *)
  let router, neighbor_id = make_bench_router ~experiments:0 ~mesh:false () in
  Vbgp.Router.process_neighbor_update router ~neighbor_id
    (Msg.update ~attrs:(synth_attrs 1)
       ~announced:[ Msg.nlri (pfx "192.168.0.0/24") ]
       ());
  let frame =
    {
      Eth.dst =
        (match Vbgp.Router.neighbor router neighbor_id with
        | Some ns -> ns.Vbgp.Router.info.Vbgp.Neighbor.virtual_mac
        | None -> Mac.zero);
      src = Mac.local ~pool:0xe0 1;
      ethertype = Eth.Ipv4;
      payload =
        Ipv4_packet.encode
          (Ipv4_packet.make ~src:(ip "184.164.224.1")
             ~dst:(ip "192.168.0.9") ~protocol:Ipv4_packet.Udp "x");
    }
  in
  let t_forward =
    time 50_000 (fun () ->
        Vbgp.Router.forward_experiment_frame router ~neighbor_id frame)
  in
  Fmt.pr
    "4. full data-plane forward (decode + enforce + MAC-selected FIB): %.0f ns/packet — %.1f Mpps per core@."
    t_forward (1e3 /. t_forward)

(* ------------------------------------------------------------------------- *)
(* Flap: wire cost of a neighbor session flap, with and without graceful     *)
(* restart. GR retains the neighbor's routes as stale across the flap and    *)
(* sweeps against the replayed table, so experiments hear nothing; a hard    *)
(* drop storms one withdrawal per route and re-announces everything.         *)
(* ------------------------------------------------------------------------- *)

let flap () =
  section "flap: withdrawal storm on session loss, GR on vs off";
  let n = if !smoke then 200 else 2_000 in
  let null_handlers =
    {
      Session.on_update = ignore;
      on_established = ignore;
      on_down = ignore;
      on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
    }
  in
  let run ~gr_window =
    let engine = Sim.Engine.create () in
    let global_pool =
      Vbgp.Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
    in
    let router =
      Vbgp.Router.create ~engine ~name:"flap" ~asn:(asn 47065)
        ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
        ~local_pool:(pfx "127.65.0.0/16") ~global_pool
        ~gr_restart_time:gr_window ()
    in
    Vbgp.Router.activate router;
    let _neighbor_id, npair =
      Vbgp.Router.add_neighbor router ~asn:(asn 100) ~ip:(ip "100.64.0.1")
        ~kind:Vbgp.Neighbor.Transit ~remote_id:(ip "100.64.0.1") ()
    in
    (* The neighbor replays its full table, closed with End-of-RIB, on
       every establishment — the behavior of a GR-aware peer. *)
    Session.set_handlers npair.Sim.Bgp_wire.active
      {
        null_handlers with
        Session.on_established =
          (fun () ->
            for i = 0 to n - 1 do
              Session.send_update npair.Sim.Bgp_wire.active
                (Msg.update ~attrs:(synth_attrs i)
                   ~announced:[ Msg.nlri (synth_prefix i) ]
                   ())
            done;
            Session.send_update npair.Sim.Bgp_wire.active (Msg.update ()));
      };
    Sim.Bgp_wire.start npair;
    let grant =
      Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
        ~prefixes:[ pfx "184.164.224.0/24" ]
        "flap"
    in
    let epair =
      Vbgp.Router.connect_experiment router ~grant
        ~mac:(Mac.local ~pool:0xe0 1) ()
    in
    let withdrawals = ref 0 and messages = ref 0 in
    Session.set_handlers epair.Sim.Bgp_wire.active
      {
        null_handlers with
        Session.on_update =
          (fun u ->
            if not (Msg.is_end_of_rib u) then begin
              incr messages;
              withdrawals := !withdrawals + List.length u.Msg.withdrawn
            end);
      };
    Sim.Bgp_wire.start epair;
    Sim.Engine.run_until engine 30.;
    (* Initial sync is not the measurement. *)
    withdrawals := 0;
    messages := 0;
    let fault = Sim.Fault.create engine in
    Sim.Fault.kill_pair fault ~at:1.0 npair;
    Sim.Engine.run_until engine 120.;
    (!withdrawals, !messages)
  in
  let w_gr, m_gr = run ~gr_window:120 in
  let w_hard, m_hard = run ~gr_window:0 in
  Fmt.pr "  heard by the experiment across a neighbor flap (%d routes):@." n;
  Fmt.pr "  %-28s %6d withdrawals in %6d updates@." "with graceful restart"
    w_gr m_gr;
  Fmt.pr "  %-28s %6d withdrawals in %6d updates@." "without (hard drop)"
    w_hard m_hard;
  record ~experiment:"flap" ~metric:"withdrawals_with_gr" ~unit_:"prefixes"
    (float_of_int w_gr);
  record ~experiment:"flap" ~metric:"withdrawals_without_gr" ~unit_:"prefixes"
    (float_of_int w_hard);
  record ~experiment:"flap" ~metric:"updates_with_gr" ~unit_:"messages"
    (float_of_int m_gr);
  record ~experiment:"flap" ~metric:"updates_without_gr" ~unit_:"messages"
    (float_of_int m_hard)

(* ------------------------------------------------------------------------- *)
(* Intern: the hash-consing attribute arena in isolation — hit rate on a    *)
(* repeated-attribute feed, bytes/route with and without sharing, and the   *)
(* packed-export fan-out (UPDATE messages per flushed burst).               *)
(* ------------------------------------------------------------------------- *)

let intern_bench () =
  section "intern: hash-consed attribute arena";
  let n = if !smoke then 20_000 else 200_000 in
  let distinct = 1024 in
  (* Hit rate: a feed of [n] routes drawing from [distinct] attribute
     sets, the shape of a real table where many routes repeat the same
     path attributes. Uses a private arena so the number is independent
     of whatever earlier experiments interned globally. *)
  let arena = Attr_arena.create () in
  for i = 0 to n - 1 do
    ignore (Attr_arena.intern ~arena (synth_attrs ~distinct i))
  done;
  let stats = Attr_arena.stats ~arena () in
  let interns = stats.Attr_arena.hits + stats.Attr_arena.misses in
  let hit_rate =
    100. *. float_of_int stats.Attr_arena.hits /. float_of_int (max 1 interns)
  in
  let shared = build_control_plane ~attrs_of:(synth_attrs ~distinct) n in
  let shared_bytes =
    float_of_int (Obj.reachable_words (Obj.repr shared) * 8) /. float_of_int n
  in
  let plain = build_control_plane n in
  let plain_bytes =
    float_of_int (Obj.reachable_words (Obj.repr plain) * 8) /. float_of_int n
  in
  Fmt.pr
    "%d routes over %d distinct attribute sets: %.1f%% arena hit rate (%d \
     hits / %d interns)@."
    n distinct hit_rate stats.Attr_arena.hits interns;
  Fmt.pr "  bytes/route, every route its own attrs:   %.0f@." plain_bytes;
  Fmt.pr "  bytes/route, attrs shared via the arena:  %.0f (%.1fx smaller)@."
    shared_bytes
    (plain_bytes /. shared_bytes);
  record ~experiment:"intern" ~metric:"arena_hit_rate" ~unit_:"percent"
    hit_rate;
  record ~experiment:"intern" ~metric:"bytes_per_route_unshared" ~unit_:"bytes"
    plain_bytes;
  record ~experiment:"intern" ~metric:"bytes_per_route_shared" ~unit_:"bytes"
    shared_bytes;
  (* Striped-lock observability: on this sequential feed every intern
     takes exactly one stripe lock and never contends, so the contended
     counter gates at a hard zero; multi-domain intern traffic (the
     parallel ingest lane) is where these counters earn their keep. *)
  Fmt.pr "  stripe locks: %d acquisitions, %d contended@."
    stats.Attr_arena.locks stats.Attr_arena.contended;
  record ~experiment:"intern" ~metric:"arena_lock_acquisitions" ~unit_:"locks"
    (float_of_int stats.Attr_arena.locks);
  record ~experiment:"intern" ~metric:"arena_lock_contended" ~unit_:"count"
    (float_of_int stats.Attr_arena.contended);
  (* The per-domain front cache in front of the same feed: a hit skips
     the stripe lock entirely, so its hit rate bounds how much arena
     traffic the parallel ingest workers generate. *)
  let fc_arena = Attr_arena.create () in
  let front = Attr_arena.Front.create ~arena:fc_arena () in
  for i = 0 to n - 1 do
    ignore (Attr_arena.Front.intern front (synth_attrs ~distinct i))
  done;
  let fc_hits = Attr_arena.Front.hits front in
  let fc_total = fc_hits + Attr_arena.Front.misses front in
  let front_hit_rate =
    100. *. float_of_int fc_hits /. float_of_int (max 1 fc_total)
  in
  Fmt.pr "  front cache: %.1f%% hit rate (%d hits / %d interns)@."
    front_hit_rate fc_hits fc_total;
  record ~experiment:"intern" ~metric:"front_cache_hit_rate" ~unit_:"percent"
    front_hit_rate;
  (* Packed export: a burst of announcements sharing one interned
     outbound attribute set leaves as a single multi-NLRI UPDATE. *)
  let caps = Vbgp.Experiment_caps.(default |> with_update_budget max_int) in
  let router, _ = make_bench_router ~caps ~experiments:1 ~mesh:false () in
  let c = Vbgp.Router.counters router in
  let c0 = c.Vbgp.Router.reexport_computations in
  let u0 = c.Vbgp.Router.updates_to_neighbors in
  let nl0 = c.Vbgp.Router.nlri_to_neighbors in
  let burst_attrs =
    Attr.origin_attrs
      ~as_path:(Aspath.of_asns [ asn 61574 ])
      ~next_hop:(ip "184.164.224.1") ()
  in
  for i = 0 to 15 do
    match
      Vbgp.Router.process_experiment_update router ~experiment:"bench1"
        (Msg.update ~attrs:burst_attrs
           ~announced:
             [ Msg.nlri (pfx (Printf.sprintf "184.164.224.%d/28" (i * 16))) ]
           ())
    with
    | Ok () -> ()
    | Error e -> failwith (String.concat "; " e)
  done;
  Vbgp.Router.flush_reexports router;
  let computed = c.Vbgp.Router.reexport_computations - c0 in
  let msgs = c.Vbgp.Router.updates_to_neighbors - u0 in
  let nlri = c.Vbgp.Router.nlri_to_neighbors - nl0 in
  let packing = float_of_int nlri /. float_of_int (max 1 msgs) in
  Fmt.pr
    "16-prefix burst, one shared attr set: %d facing computation(s), %d \
     UPDATE(s) carrying %d NLRI (%.1f routes/UPDATE)@."
    computed msgs nlri packing;
  record ~experiment:"intern" ~metric:"burst_reexport_computations"
    ~unit_:"computations" (float_of_int computed);
  record ~experiment:"intern" ~metric:"burst_updates_sent" ~unit_:"messages"
    (float_of_int msgs);
  record ~experiment:"intern" ~metric:"burst_packing_ratio" ~unit_:"ratio"
    packing

(* ------------------------------------------------------------------------- *)
(* Data-plane forwarding throughput: the flow cache vs the record slow     *)
(* path (§3.2.2), with and without a stateful shaper tail (§4.7).          *)
(* ------------------------------------------------------------------------- *)

let fwd () =
  section "data-plane forwarding: flow cache vs slow path";
  let n = if !smoke then 20_000 else 200_000 in
  (* 64 flows cycling over a 10k-route table: every flow misses once and
     then lives in the cache (the platform's traffic is flow-shaped; one
     decision serves the whole flow). *)
  let drive router neighbor_id =
    let frames =
      Array.init 64 (fun flow -> fwd_frame_to router neighbor_id ~flow)
    in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      Vbgp.Router.forward_experiment_frame router ~neighbor_id
        frames.(i land 63)
    done;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  let cold_router, cold_id = make_fwd_router ~flow_cache:false () in
  let pps_cold = drive cold_router cold_id in
  Fmt.pr "  %-32s %12.0f pps@." "slow path (cache off)" pps_cold;
  let hot_router, hot_id = make_fwd_router () in
  let pps_cached = drive hot_router hot_id in
  Fmt.pr "  %-32s %12.0f pps@." "flow cache" pps_cached;
  let c = Vbgp.Router.counters hot_router in
  let hit_rate =
    100.
    *. float_of_int c.Vbgp.Router.flow_hits
    /. float_of_int (c.Vbgp.Router.flow_hits + c.Vbgp.Router.flow_misses)
  in
  let shaped =
    let d = Vbgp.Data_enforcer.create () in
    Vbgp.Data_enforcer.add_filter d
      (Vbgp.Data_enforcer.shaper ~name:"pop-shaper" ~rate:1e12 ~burst:1e12
         ~key_of:(fun (p : Ipv4_packet.t) -> Ipv4.to_string p.Ipv4_packet.src)
         ());
    d
  in
  let sh_router, sh_id = make_fwd_router ~data:shaped () in
  let pps_shaped = drive sh_router sh_id in
  Fmt.pr "  %-32s %12.0f pps@." "flow cache + shaper tail" pps_shaped;
  let speedup = pps_cached /. pps_cold in
  Fmt.pr "  cached/cold speedup %.2fx, hit rate %.2f%%@." speedup hit_rate;
  record ~experiment:"fwd" ~metric:"pps_cold" ~unit_:"pps" pps_cold;
  record ~experiment:"fwd" ~metric:"pps_cached" ~unit_:"pps" pps_cached;
  record ~experiment:"fwd" ~metric:"pps_cached_shaper" ~unit_:"pps" pps_shaped;
  record ~experiment:"fwd" ~metric:"cached_speedup" ~unit_:"ratio" speedup;
  record ~experiment:"fwd" ~metric:"flow_hit_rate" ~unit_:"percent" hit_rate

(* ------------------------------------------------------------------------- *)
(* Sharded data plane: batch forwarding across OCaml worker domains vs the  *)
(* sequential path, on the same 10k-route table. 256 distinct flows (src    *)
(* MAC x src address x destination) so the flow hash spreads work across    *)
(* the domains; each domain warms its own flow cache once and then serves   *)
(* hits. The pps_* rows are informational (timing); the gated metrics are   *)
(* the 4-domain speedup ratio and the sharded hit rate.                     *)
(* ------------------------------------------------------------------------- *)

let fwd_par_frame router neighbor_id ~flow =
  {
    Eth.dst =
      (match Vbgp.Router.neighbor router neighbor_id with
      | Some ns -> ns.Vbgp.Router.info.Vbgp.Neighbor.virtual_mac
      | None -> Mac.zero);
    src = Mac.local ~pool:0xe1 (1 + (flow land 7));
    ethertype = Eth.Ipv4;
    payload =
      Ipv4_packet.encode
        (Ipv4_packet.make
           ~src:(Ipv4.of_int32 (Int32.of_int (0xb8a4e000 lor (flow land 0xff))))
           ~dst:(Prefix.host (synth_prefix (4257 + (flow mod 64))) 9)
           ~protocol:Ipv4_packet.Udp "x");
  }

let fwd_par () =
  section "data-plane forwarding: sharded across domains";
  let n = if !smoke then 24_576 else 196_608 in
  let batch = 512 in
  let counts = if !smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let run domains =
    let router, neighbor_id = make_fwd_router ~domains () in
    let frames =
      Array.init batch (fun i ->
          fwd_par_frame router neighbor_id ~flow:(i land 255))
    in
    (* One untimed warm-up pass, then best of three timed passes: the
       warm-up spawns the worker domains and fills every domain's flow
       cache outside the timed window, and taking the best of three
       keeps the gated speedup ratio from flapping under CI load. *)
    let pass () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n / batch do
        Vbgp.Router.forward_frames router frames
      done;
      float_of_int n /. (Unix.gettimeofday () -. t0)
    in
    ignore (pass ());
    let pps = List.fold_left (fun best _ -> Float.max best (pass ())) 0. [ 1; 2; 3 ] in
    Vbgp.Router.shutdown_domains router;
    Fmt.pr "  %-32s %12.0f pps@."
      (Printf.sprintf "%d domain%s" domains (if domains = 1 then "" else "s"))
      pps;
    record ~experiment:"fwd-par"
      ~metric:(Printf.sprintf "pps_%ddom" domains)
      ~unit_:"pps" pps;
    (* Per-lane ingress queue high-water marks: when the gated speedup
       floor fails, these show from the JSON alone whether the flow hash
       starved a lane or the coordinator queue backed up. Informational
       (unit is not gated). *)
    Array.iteri
      (fun lane depth ->
        record ~experiment:"fwd-par"
          ~metric:(Printf.sprintf "qdepth_max_%ddom_lane%d" domains lane)
          ~unit_:"frames" (float_of_int depth))
      (Vbgp.Router.shard_queue_depth_max router);
    (router, pps)
  in
  let results = List.map (fun d -> (d, run d)) counts in
  let pps_of d = snd (List.assoc d results) in
  let speedup = pps_of 4 /. pps_of 1 in
  let par_router = fst (List.assoc 4 results) in
  let c = Vbgp.Router.counters par_router in
  let hit_rate =
    100.
    *. float_of_int c.Vbgp.Router.flow_hits
    /. float_of_int (c.Vbgp.Router.flow_hits + c.Vbgp.Router.flow_misses)
  in
  let delivered = c.Vbgp.Router.packets_to_neighbors in
  Fmt.pr "  4-domain speedup %.2fx, hit rate %.2f%%, %d/%d delivered@."
    speedup hit_rate delivered (3 * n);
  record ~experiment:"fwd-par" ~metric:"pps_speedup_4dom" ~unit_:"ratio"
    speedup;
  record ~experiment:"fwd-par" ~metric:"fwdpar_hit_rate" ~unit_:"percent"
    hit_rate

(* ------------------------------------------------------------------------- *)
(* Parallel ingest lane: wire-format UPDATE batches hash-partitioned over   *)
(* ingest worker domains — each worker owns its neighbors' decode, intern   *)
(* and Adj-RIB-In writes; the single writer reconciles FIB + dirty queue    *)
(* at the drain — vs the sequential batched path. Every pass re-announces   *)
(* the table with a fresh MED so the unchanged short-circuit never fires    *)
(* and each pass pays the full decode + intern + RIB + dirty cost. Gated:   *)
(* the 4-lane speedup ratio (honest floor for the quota-throttled           *)
(* single-core CI box, mirroring fwd-par) and the staging residual, which   *)
(* must be exactly zero after the final drain.                              *)
(* ------------------------------------------------------------------------- *)

let ingest_par () =
  section "control-plane ingest: parallel decode + per-neighbor RIB lanes";
  let nbr_count = 16 in
  let routes = if !smoke then 4_096 else 32_768 in
  let per_update = 8 in
  let counts = if !smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i)) in
  let per_nbr = routes / nbr_count in
  let groups = per_nbr / per_update in
  (* Pre-encoded wire passes, neighbors interleaved so every batch spans
     all the lanes: pass [k] re-announces the whole table with MED [k].
     Built once and replayed against every lane count, so all runs
     decode byte-identical input. *)
  let passes =
    Array.init 6 (fun k ->
        let items = ref [] in
        for g = groups - 1 downto 0 do
          for nb = nbr_count - 1 downto 0 do
            (* 8 distinct attribute sets per neighbor per pass — the real
               -table shape where many routes repeat the same path
               attributes, which is what the per-lane front cache (and
               the arena behind it) exists to exploit. *)
            let attrs =
              Attr.origin_attrs
                ~as_path:
                  (Aspath.of_asns [ asn (65010 + (g mod 8)); asn (100 + nb) ])
                ~next_hop:(neighbor_ip nb) ()
              |> Attr.with_med k
            in
            let announced =
              List.init per_update (fun j ->
                  Msg.nlri
                    (synth_prefix ((nb * per_nbr) + (g * per_update) + j)))
            in
            items :=
              (nb, Codec.encode (Msg.Update (Msg.update ~attrs ~announced ())))
              :: !items
          done
        done;
        Array.of_list !items)
  in
  let make_router parallel_ingest =
    let engine = Sim.Engine.create () in
    let global_pool =
      Vbgp.Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
    in
    let router =
      Vbgp.Router.create ~engine ~name:"ingest" ~asn:(asn 47065)
        ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
        ~local_pool:(pfx "127.65.0.0/16") ~global_pool ~parallel_ingest ()
    in
    Vbgp.Router.activate router;
    let ids =
      Array.init nbr_count (fun i ->
          let nip = neighbor_ip i in
          let id, npair =
            Vbgp.Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:nip
              ~kind:Vbgp.Neighbor.Transit ~remote_id:nip ()
          in
          Sim.Bgp_wire.start npair;
          id)
    in
    Sim.Engine.run_until engine 10.;
    (router, ids)
  in
  let feed_pass router ids pass =
    let len = Array.length pass in
    let batchn = 256 in
    let i = ref 0 in
    while !i < len do
      let m = min batchn (len - !i) in
      let batch =
        Array.init m (fun j ->
            let idx, bytes = pass.(!i + j) in
            (ids.(idx), Vbgp.Router.Wire bytes))
      in
      Vbgp.Router.ingest_updates router batch;
      i := !i + m
    done;
    Vbgp.Router.flush_reexports router
  in
  let run parallel_ingest =
    let router, ids = make_router parallel_ingest in
    (* Warm-up pass outside the timed window: spawns the worker domains,
       loads the table and fills the per-lane intern front caches. *)
    feed_pass router ids passes.(0);
    let timed k =
      let t0 = Unix.gettimeofday () in
      feed_pass router ids passes.(k);
      float_of_int (Array.length passes.(k))
      /. (Unix.gettimeofday () -. t0)
    in
    (* Best of five timed passes, each with its own MED version so none
       is short-circuited: the speedup ratio divides two noisy numbers
       and is gated, so both sides get the widest honest sample. *)
    let ups =
      List.fold_left
        (fun best k -> Float.max best (timed k))
        0. [ 1; 2; 3; 4; 5 ]
    in
    if Vbgp.Router.route_count router <> routes then
      failwith
        (Printf.sprintf "ingest-par: %d-lane run holds %d routes, expected %d"
           parallel_ingest
           (Vbgp.Router.route_count router)
           routes);
    let st = Vbgp.Router.ingest_stats router in
    if st.Vbgp.Router.decode_errors <> 0 then
      failwith
        (Printf.sprintf "ingest-par: %d-lane run hit %d decode errors"
           parallel_ingest st.Vbgp.Router.decode_errors);
    Vbgp.Router.shutdown_domains router;
    Fmt.pr "  %-32s %12.0f updates/s@."
      (Printf.sprintf "%d lane%s" parallel_ingest
         (if parallel_ingest = 1 then "" else "s"))
      ups;
    record ~experiment:"ingest-par"
      ~metric:(Printf.sprintf "upd_per_sec_%ddom" parallel_ingest)
      ~unit_:"upd/s" ups;
    (* Per-lane staging/ingress high-water marks: when the gated speedup
       floor fails, these show from the JSON alone whether the neighbor
       hash starved a lane. Informational (unit is not gated). *)
    Array.iteri
      (fun lane depth ->
        record ~experiment:"ingest-par"
          ~metric:
            (Printf.sprintf "qdepth_max_%ddom_lane%d" parallel_ingest lane)
          ~unit_:"items" (float_of_int depth))
      st.Vbgp.Router.queue_depth_max;
    (ups, st)
  in
  let results = List.map (fun d -> (d, run d)) counts in
  let ups_of d = fst (List.assoc d results) in
  let speedup = ups_of 4 /. ups_of 1 in
  let st4 = snd (List.assoc 4 results) in
  let fc_total = st4.Vbgp.Router.front_hits + st4.Vbgp.Router.front_misses in
  let front_hit_rate =
    100. *. float_of_int st4.Vbgp.Router.front_hits
    /. float_of_int (max 1 fc_total)
  in
  Fmt.pr
    "  4-lane speedup %.2fx, front-cache hit rate %.2f%%, staging residual \
     %d@."
    speedup front_hit_rate st4.Vbgp.Router.staging_residual;
  record ~experiment:"ingest-par" ~metric:"upd_per_sec_speedup_4dom"
    ~unit_:"ratio" speedup;
  record ~experiment:"ingest-par" ~metric:"ingest_front_hit_rate"
    ~unit_:"percent" front_hit_rate;
  record ~experiment:"ingest-par" ~metric:"staging_residual" ~unit_:"count"
    (float_of_int st4.Vbgp.Router.staging_residual)

(* ------------------------------------------------------------------------- *)
(* Export-par: the dirty-prefix flush toward neighbors across 1/2/4/8       *)
(* export lanes, with the encode-once wire cache. An experiment             *)
(* re-announces a large prefix set with a fresh MED each pass so every      *)
(* prefix is a genuine Adj-RIB-Out delta; only [flush_reexports] is in      *)
(* the timed window. All lane counts must converge to the same Adj-RIB-Out  *)
(* fingerprint — the bench refuses to report a speedup over divergent       *)
(* state.                                                                   *)
(* ------------------------------------------------------------------------- *)

let export_par () =
  section "control-plane export: parallel flush lanes + encode-once wire cache";
  let nbr_count = 32 in
  let pfx_count = if !smoke then 256 else 2_048 in
  let counts = if !smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i)) in
  (* /24s inside the experiment's 184.160.0.0/13 grant (2048 of them). *)
  let exp_prefix i =
    Prefix.make
      (Ipv4.of_int32 (Int32.logor 0xB8A00000l (Int32.of_int (i lsl 8))))
      24
  in
  let make_router parallel_export =
    let engine = Sim.Engine.create () in
    let global_pool =
      Vbgp.Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
    in
    let router =
      Vbgp.Router.create ~engine ~name:"export" ~asn:(asn 47065)
        ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
        ~local_pool:(pfx "127.65.0.0/16") ~global_pool ~parallel_export ()
    in
    (* Tracing off: the sequential lane logs one entry per (prefix,
       neighbor) delta while worker lanes never log, so leaving the trace
       on would bill ~8k message formats per flush to the 1-lane column
       only and overstate the speedup. *)
    Sim.Trace.set_enabled (Vbgp.Router.trace router) false;
    Vbgp.Router.activate router;
    let ids =
      Array.init nbr_count (fun i ->
          let nip = neighbor_ip i in
          let id, npair =
            Vbgp.Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:nip
              ~kind:Vbgp.Neighbor.Transit ~remote_id:nip ()
          in
          Sim.Bgp_wire.start npair;
          id)
    in
    let caps = Vbgp.Experiment_caps.(default |> with_update_budget max_int) in
    let grant =
      Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
        ~prefixes:[ pfx "184.160.0.0/13" ]
        ~caps "export-bench"
    in
    let epair =
      Vbgp.Router.connect_experiment router ~grant
        ~mac:(Mac.local ~pool:0xe0 1) ()
    in
    Sim.Bgp_wire.start epair;
    Sim.Engine.run_until engine 10.;
    (engine, router, ids)
  in
  (* Re-announce the whole set with MED [k]: every prefix becomes a dirty
     Adj-RIB-Out delta toward every neighbor at the next flush. *)
  let announce_pass router k =
    match
      Vbgp.Router.process_experiment_update router ~experiment:"export-bench"
        (Msg.update
           ~attrs:
             (Attr.origin_attrs
                ~as_path:(Aspath.of_asns [ asn 61574 ])
                ~next_hop:(ip "184.160.0.1") ()
             |> Attr.with_med k)
           ~announced:(List.init pfx_count (fun i -> Msg.nlri (exp_prefix i)))
           ())
    with
    | Ok () -> ()
    | Error e -> failwith ("export-par: " ^ String.concat "; " e)
  in
  let adj_out_fingerprint router ids =
    Array.to_list ids
    |> List.concat_map (fun id ->
           List.map
             (fun (p, attrs) -> Fmt.str "%d %a %a" id Prefix.pp p Attr.pp_set attrs)
             (Vbgp.Router.adj_out_routes router ~neighbor_id:id))
    |> List.sort compare |> String.concat "\n" |> Digest.string |> Digest.to_hex
  in
  let run parallel_export =
    let engine, router, ids = make_router parallel_export in
    (* Warm-up pass outside the timed window: spawns the worker domains
       and builds the Adj-RIB-Out tables. *)
    announce_pass router 0;
    Vbgp.Router.flush_reexports router;
    Sim.Engine.run_until engine (Sim.Engine.now engine +. 1.);
    let timed k =
      announce_pass router k;
      let t0 = Unix.gettimeofday () in
      Vbgp.Router.flush_reexports router;
      let dt = Unix.gettimeofday () -. t0 in
      Sim.Engine.run_until engine (Sim.Engine.now engine +. 1.);
      float_of_int pfx_count /. dt
    in
    (* Best of five timed passes, each with its own MED version so none
       is short-circuited by the delta check. *)
    let pps =
      List.fold_left (fun best k -> Float.max best (timed k)) 0. [ 1; 2; 3; 4; 5 ]
    in
    let st = Vbgp.Router.export_stats router in
    if st.Vbgp.Router.staged_residual <> 0 then
      failwith
        (Printf.sprintf "export-par: %d-lane run left %d staged sends"
           parallel_export st.Vbgp.Router.staged_residual);
    let fp = adj_out_fingerprint router ids in
    Vbgp.Router.shutdown_domains router;
    Fmt.pr "  %-32s %12.0f prefix-flushes/s@."
      (Printf.sprintf "%d lane%s" parallel_export
         (if parallel_export = 1 then "" else "s"))
      pps;
    record ~experiment:"export-par"
      ~metric:(Printf.sprintf "flush_pfx_per_sec_%ddom" parallel_export)
      ~unit_:"pfx/s" pps;
    (* Per-lane target-queue high-water marks: when the gated speedup
       floor fails, these show from the JSON alone whether the neighbor
       hash starved a lane. Informational (unit is not gated). *)
    Array.iteri
      (fun lane depth ->
        record ~experiment:"export-par"
          ~metric:
            (Printf.sprintf "xdepth_max_%ddom_lane%d" parallel_export lane)
          ~unit_:"items" (float_of_int depth))
      st.Vbgp.Router.lane_depth_max;
    (pps, st, fp)
  in
  let results = List.map (fun d -> (d, run d)) counts in
  let pps_of d = match List.assoc d results with p, _, _ -> p in
  let fp_of d = match List.assoc d results with _, _, f -> f in
  List.iter
    (fun (d, (_, _, fp)) ->
      if not (String.equal fp (fp_of 1)) then
        failwith
          (Printf.sprintf
             "export-par: %d-lane Adj-RIB-Out fingerprint diverges from \
              sequential"
             d))
    results;
  let speedup = pps_of 4 /. pps_of 1 in
  let st4 = match List.assoc 4 results with _, s, _ -> s in
  let wc_total = st4.Vbgp.Router.wire_cache_hits + st4.Vbgp.Router.wire_cache_misses in
  let hit_rate =
    100. *. float_of_int st4.Vbgp.Router.wire_cache_hits
    /. float_of_int (max 1 wc_total)
  in
  Fmt.pr
    "  4-lane speedup %.2fx, wire-cache hit rate %.2f%% (%d blocks encoded \
     for %d messages), %.1f MB on the wire@."
    speedup hit_rate st4.Vbgp.Router.wire_cache_misses wc_total
    (float_of_int st4.Vbgp.Router.wire_bytes_out /. 1e6);
  record ~experiment:"export-par" ~metric:"flush_speedup_4dom" ~unit_:"ratio"
    speedup;
  record ~experiment:"export-par" ~metric:"wire_cache_hit_rate"
    ~unit_:"percent" hit_rate;
  record ~experiment:"export-par" ~metric:"staged_residual" ~unit_:"count"
    (float_of_int st4.Vbgp.Router.staged_residual);
  record ~experiment:"export-par" ~metric:"wire_bytes_out_4dom" ~unit_:"b"
    (float_of_int st4.Vbgp.Router.wire_bytes_out)

(* ------------------------------------------------------------------------- *)
(* Fullscale: a full-table control plane — 500k+ routes across O(100)       *)
(* neighbors pushed through the batched-ingest pipeline, then a staged      *)
(* churn replay (withdraw storm, peer flaps, fresh wave). Reports RIB       *)
(* memory, bytes/route, sustained updates/sec and convergence time.         *)
(* ------------------------------------------------------------------------- *)

let fullscale () =
  section "fullscale: full-table batched ingest + churn replay";
  let nbr_count = if !smoke then 16 else 100 in
  let v4_load = if !smoke then 10_000 else 520_000 in
  let v6_count = if !smoke then 128 else 1_024 in
  let engine = Sim.Engine.create () in
  let global_pool =
    Vbgp.Addr_pool.create ~base:(pfx "127.127.0.0/16") ~mac_pool:0x7f
  in
  let router =
    Vbgp.Router.create ~engine ~name:"full" ~asn:(asn 47065)
      ~router_id:(ip "10.255.0.1") ~primary_ip:(ip "10.255.0.1")
      ~local_pool:(pfx "127.65.0.0/16") ~global_pool ()
  in
  Vbgp.Router.activate router;
  let neighbor_ip i = Ipv4.of_int32 (Int32.of_int (0x64400001 + i)) in
  let neighbor_ids =
    Array.init nbr_count (fun i ->
        let nip = neighbor_ip i in
        let id, npair =
          Vbgp.Router.add_neighbor router ~asn:(asn (100 + i)) ~ip:nip
            ~kind:Vbgp.Neighbor.Transit ~remote_id:nip ()
        in
        Sim.Bgp_wire.start npair;
        id)
  in
  let caps = Vbgp.Experiment_caps.(default |> with_update_budget max_int) in
  let grant =
    Vbgp.Control_enforcer.grant ~asns:[ asn 61574 ]
      ~prefixes:[ pfx "184.164.224.0/24" ]
      ~prefixes_v6:[ Prefix_v6.of_string_exn "2804:269c:1::/48" ]
      ~caps "fullscale"
  in
  let epair =
    Vbgp.Router.connect_experiment router ~grant ~mac:(Mac.local ~pool:0xe0 1)
      ()
  in
  Sim.Bgp_wire.start epair;
  Sim.Engine.run_until engine 10.;
  (* Per-peer buffers model the wire: events accumulate and are handed to
     the router as multi-NLRI UPDATEs (consecutive same-kind runs, announce
     runs grouped by shared AS path), with one ingest flush per window —
     the engine-tick cadence of the batched pipeline. *)
  let pending : Topo.Updates.event list array = Array.make nbr_count [] in
  let pending_total = ref 0 in
  let batch_window = 8192 in
  let flush_peer pi =
    match pending.(pi) with
    | [] -> ()
    | evs ->
        let evs = List.rev evs in
        pending.(pi) <- [];
        let nip = neighbor_ip pi in
        let flush_run kind run =
          match (kind : Topo.Updates.kind) with
          | Topo.Updates.Withdraw ->
              Vbgp.Router.process_neighbor_update router
                ~neighbor_id:neighbor_ids.(pi)
                (Msg.update
                   ~withdrawn:
                     (List.rev_map
                        (fun (e : Topo.Updates.event) -> Msg.nlri e.prefix)
                        run)
                   ())
          | Topo.Updates.Announce ->
              let groups = Hashtbl.create 16 and order = ref [] in
              List.iter
                (fun (e : Topo.Updates.event) ->
                  match Hashtbl.find_opt groups e.as_path with
                  | Some l -> l := Msg.nlri e.prefix :: !l
                  | None ->
                      Hashtbl.replace groups e.as_path (ref [ Msg.nlri e.prefix ]);
                      order := e.as_path :: !order)
                (List.rev run);
              List.iter
                (fun ap ->
                  Vbgp.Router.process_neighbor_update router
                    ~neighbor_id:neighbor_ids.(pi)
                    (Msg.update
                       ~attrs:(Attr.origin_attrs ~as_path:ap ~next_hop:nip ())
                       ~announced:(List.rev !(Hashtbl.find groups ap))
                       ()))
                (List.rev !order)
        in
        let rec go run kind = function
          | [] -> if run <> [] then flush_run kind run
          | (e : Topo.Updates.event) :: rest ->
              if run = [] || e.kind = kind then go (e :: run) e.kind rest
              else begin
                flush_run kind run;
                go [ e ] e.kind rest
              end
        in
        go [] Topo.Updates.Announce evs
  in
  let flush_all () =
    for pi = 0 to nbr_count - 1 do
      flush_peer pi
    done;
    pending_total := 0;
    Vbgp.Router.flush_reexports router
  in
  let emit (e : Topo.Updates.event) =
    pending.(e.peer_index) <- e :: pending.(e.peer_index);
    incr pending_total;
    if !pending_total >= batch_window then flush_all ()
  in
  let plan =
    {
      Topo.Updates.stages =
        [
          Topo.Updates.Announce_wave { count = v4_load; rate = 100_000. };
          Topo.Updates.Withdraw_storm { fraction = 0.05; rate = 50_000. };
          Topo.Updates.Peer_flap
            { peers = (if !smoke then 2 else 4); rate = 100_000. };
          Topo.Updates.Announce_wave { count = v4_load / 10; rate = 100_000. };
        ];
      peer_count = nbr_count;
      path_pool = 128;
      prefix_of = Topo.Updates.default_prefix_of;
      origin_asn = asn 65010;
      plan_seed = 47;
    }
  in
  (* Untimed warm-up: a throwaway announce+withdraw wave through the same
     ingress pipeline populates the attribute arena, the decision caches
     and the per-neighbor tables before the clock starts, so the
     sustained-ingest number is not paying one-time cold-start costs.
     Everything announced here is withdrawn again — the final table is
     untouched. *)
  let () =
    let warm = if !smoke then 512 else 4_096 in
    let nip = neighbor_ip 0 in
    let nlris = List.init warm (fun i -> Msg.nlri (synth_prefix i)) in
    Vbgp.Router.process_neighbor_update router ~neighbor_id:neighbor_ids.(0)
      (Msg.update
         ~attrs:
           (Attr.origin_attrs
              ~as_path:(Aspath.of_asns [ asn 65010; asn 100 ])
              ~next_hop:nip ())
         ~announced:nlris ());
    Vbgp.Router.process_neighbor_update router ~neighbor_id:neighbor_ids.(0)
      (Msg.update ~withdrawn:nlris ());
    Vbgp.Router.flush_reexports router
  in
  let c = Vbgp.Router.counters router in
  let eu0 = c.Vbgp.Router.updates_to_experiments in
  let en0 = c.Vbgp.Router.nlri_to_experiments in
  let t0 = Unix.gettimeofday () in
  let stats = Topo.Updates.run ~plan ~emit () in
  (* Convergence: from the last injected event to a fully drained
     control plane (residual buffers + final ingest/re-export flush). *)
  let t_drain = Unix.gettimeofday () in
  flush_all ();
  let t_loaded = Unix.gettimeofday () in
  let convergence = t_loaded -. t_drain in
  let updates_per_sec =
    float_of_int stats.Topo.Updates.events /. (t_loaded -. t0)
  in
  (* IPv6: the experiment announces /64 more-specifics of its /48; the
     re-export toward all neighbors rides MP_REACH_NLRI in chunked
     multi-NLRI updates. *)
  let v6_chunk = 64 in
  for g = 0 to (v6_count / v6_chunk) - 1 do
    let nlri =
      List.init v6_chunk (fun j ->
          ( Prefix_v6.of_string_exn
              (Printf.sprintf "2804:269c:1:%x::/64" ((g * v6_chunk) + j)),
            None ))
    in
    match
      Vbgp.Router.process_experiment_update router ~experiment:"fullscale"
        (Msg.update
           ~attrs:
             [
               Attr.Origin Attr.Igp;
               Attr.As_path (Aspath.of_asns [ asn 61574 ]);
               Attr.Mp_reach
                 { next_hop = Ipv6.of_string_exn "2804:269c:1::1"; nlri };
             ]
           ())
    with
    | Ok () -> ()
    | Error e -> failwith (String.concat "; " e)
  done;
  Vbgp.Router.flush_reexports router;
  (* Export-lane flush at full scale: the experiment re-announces its /24
     and the delta flush toward all neighbors is timed — after one
     untimed warm-up flush, so the number excludes Adj-RIB-Out creation.
     The encode-once wire cache must show exactly one attribute block per
     facing group per flush: one miss and [nbr_count - 1] splice hits. *)
  let announce_med k =
    match
      Vbgp.Router.process_experiment_update router ~experiment:"fullscale"
        (Msg.update
           ~attrs:
             (Attr.origin_attrs
                ~as_path:(Aspath.of_asns [ asn 61574 ])
                ~next_hop:(ip "184.164.224.1") ()
             |> Attr.with_med k)
           ~announced:[ Msg.nlri (pfx "184.164.224.0/24") ]
           ())
    with
    | Ok () -> ()
    | Error e -> failwith (String.concat "; " e)
  in
  announce_med 1;
  Vbgp.Router.flush_reexports router;
  let s1 = Vbgp.Router.export_stats router in
  announce_med 2;
  let tf0 = Unix.gettimeofday () in
  Vbgp.Router.flush_reexports router;
  let flush_ns = (Unix.gettimeofday () -. tf0) *. 1e9 in
  let s2 = Vbgp.Router.export_stats router in
  if
    s2.Vbgp.Router.wire_cache_misses - s1.Vbgp.Router.wire_cache_misses <> 1
    || s2.Vbgp.Router.wire_cache_hits - s1.Vbgp.Router.wire_cache_hits
       <> nbr_count - 1
  then
    failwith
      (Printf.sprintf
         "fullscale: expected one encoded block + %d splices per flush, got \
          %d blocks / %d splices"
         (nbr_count - 1)
         (s2.Vbgp.Router.wire_cache_misses - s1.Vbgp.Router.wire_cache_misses)
         (s2.Vbgp.Router.wire_cache_hits - s1.Vbgp.Router.wire_cache_hits));
  let routes = Vbgp.Router.route_count router in
  let rib_bytes = Vbgp.Router.control_plane_bytes router in
  let bytes_per_route = float_of_int rib_bytes /. float_of_int (max 1 routes) in
  let exp_updates = c.Vbgp.Router.updates_to_experiments - eu0 in
  let exp_nlri = c.Vbgp.Router.nlri_to_experiments - en0 in
  let packing = float_of_int exp_nlri /. float_of_int (max 1 exp_updates) in
  Fmt.pr "churn: %d events (%d announce, %d withdraw) over %d neighbors@."
    stats.Topo.Updates.events stats.Topo.Updates.announce_events
    stats.Topo.Updates.withdraw_events nbr_count;
  Fmt.pr "loaded: %d live v4 routes + %d experiment v6 prefixes@." routes
    v6_count;
  Fmt.pr "RIB memory: %.1f MB (%.0f B/route)@."
    (float_of_int rib_bytes /. 1e6)
    bytes_per_route;
  Fmt.pr "sustained ingest: %.0f updates/s; final-drain convergence %.3f s@."
    updates_per_sec convergence;
  Fmt.pr
    "experiment export fan-out: %d UPDATEs carrying %d NLRI (%.1f \
     routes/UPDATE)@."
    exp_updates exp_nlri packing;
  Fmt.pr
    "neighbor-facing flush: %.0f ns across %d neighbors; %.1f KB on the \
     wire, 1 attribute block per facing group@."
    flush_ns nbr_count
    (float_of_int s2.Vbgp.Router.wire_bytes_out /. 1e3);
  record ~experiment:"fullscale" ~metric:"route_count" ~unit_:"routes"
    (float_of_int routes);
  record ~experiment:"fullscale" ~metric:"rib_memory_bytes" ~unit_:"b"
    (float_of_int rib_bytes);
  record ~experiment:"fullscale" ~metric:"bytes_per_route" ~unit_:"bytes"
    bytes_per_route;
  record ~experiment:"fullscale" ~metric:"updates_per_sec" ~unit_:"rate"
    updates_per_sec;
  record ~experiment:"fullscale" ~metric:"convergence_s" ~unit_:"s" convergence;
  record ~experiment:"fullscale" ~metric:"export_packing_ratio" ~unit_:"ratio"
    packing;
  record ~experiment:"fullscale" ~metric:"flush_ns" ~unit_:"ns" flush_ns;
  record ~experiment:"fullscale" ~metric:"wire_bytes_out" ~unit_:"b"
    (float_of_int s2.Vbgp.Router.wire_bytes_out)

(* ------------------------------------------------------------------------- *)
(* Failover drill: kill a whole PoP, time health detection and the          *)
(* post-restart reconvergence in deterministic simulated seconds. The sim   *)
(* clock makes these numbers exactly reproducible, so they gate in          *)
(* bench-diff alongside the count/ratio metrics.                            *)
(* ------------------------------------------------------------------------- *)

let drill () =
  section "failover drill: PoP kill/restart, detection and reconvergence";
  let open Peering in
  let seed = 3 in
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 6; stub = 24; seed }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(pfx "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 12) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  let platform = Platform.create () in
  let pop_a = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let pop_b = Platform.add_pop platform ~name:"pop02" ~site:Pop.Ixp () in
  ignore
    (Platform.populate_pop platform ~pop:pop_a ~internet ~transits:2 ~peers:1
       ());
  ignore
    (Platform.populate_pop platform ~pop:pop_b ~internet ~transits:2 ~peers:1
       ());
  Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"bench" ~team:"bench" ~goals:"drill" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop_a);
  ignore (Toolkit.open_tunnel kit pop_b);
  Toolkit.start_session kit ~pop:"pop01";
  Toolkit.start_session kit ~pop:"pop02";
  Platform.run platform ~seconds:10.;
  Toolkit.announce kit (List.hd grant.Vbgp.Control_enforcer.prefixes);
  Platform.run platform ~seconds:10.;
  (match Failover.reapply platform (Config_model.of_platform platform) with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> failwith "drill: initial intent apply failed");
  let health = Health.create platform in
  Health.start health;
  Platform.run platform ~seconds:1.25;
  let kill_time = Sim.Engine.now (Platform.engine platform) in
  Failover.kill_pop platform ~kits:[ kit ] ~name:"pop02" ();
  Platform.run platform ~seconds:15.;
  let failed_at =
    match
      List.find_opt
        (fun (_, p, s) -> String.equal p "pop02" && s = Health.Failed)
        (Health.transitions health)
    with
    | Some (t, _, _) -> t
    | None -> failwith "drill: PoP never declared Failed"
  in
  let restart_time = Sim.Engine.now (Platform.engine platform) in
  Failover.restart_pop platform ~kits:[ kit ] ~name:"pop02" ();
  Platform.run platform ~seconds:45.;
  let healthy_at =
    match
      List.find_opt
        (fun (t, p, s) ->
          String.equal p "pop02" && s = Health.Healthy && t > restart_time)
        (Health.transitions health)
    with
    | Some (t, _, _) -> t
    | None -> failwith "drill: PoP never recovered to Healthy"
  in
  (match Failover.reapply platform (Config_model.of_platform platform) with
  | Controller.Multi.Committed_all _ -> ()
  | _ -> failwith "drill: post-restart reapply failed");
  Health.stop health;
  let detect_s = failed_at -. kill_time in
  let reconverge_s = healthy_at -. restart_time in
  Fmt.pr "detection: Failed %.2f simulated s after the kill@." detect_s;
  Fmt.pr "reconvergence: Healthy %.2f simulated s after the restart@."
    reconverge_s;
  record ~experiment:"drill" ~metric:"failover_detect_s" ~unit_:"sim_s"
    detect_s;
  record ~experiment:"drill" ~metric:"failover_reconverge_s" ~unit_:"sim_s"
    reconverge_s

let experiments =
  [
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("throughput", throughput);
    ("amsix", amsix);
    ("table1", table1);
    ("census", census);
    ("security", security);
    ("ratelimit", ratelimit);
    ("burst", burst);
    ("fleet", fleet);
    ("ablate", ablate);
    ("micro", micro);
    ("flap", flap);
    ("intern", intern_bench);
    ("fwd", fwd);
    ("fwd-par", fwd_par);
    ("ingest-par", ingest_par);
    ("export-par", export_par);
    ("fullscale", fullscale);
    ("drill", drill);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse acc rest
    | [ "--json" ] ->
        Fmt.epr "--json requires an output path@.";
        exit 1
    | "--smoke" :: rest ->
        smoke := true;
        parse acc rest
    | name :: rest -> parse (name :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown experiment %S; available: %s@." name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested;
  match !json_out with Some path -> write_json path | None -> ()
