(* The §4.4 scenario: vBGP across the backbone. An experiment connected at
   PoP A gains visibility of — and per-packet control over — neighbors at
   PoP B: B's neighbor routes appear at A with alias next hops, frames to
   the alias MAC are carried across the backbone with next-hop rewriting
   at each hop, and selective announcements reach only the chosen remote
   neighbor.

   Run with: dune exec examples/backbone_routing.exe *)

open Netcore
open Bgp
open Peering

let () =
  Fmt.pr "== vBGP across the backbone (paper §4.4) ==@.";
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let pop_a = Platform.add_pop platform ~name:"seattle01" ~site:Pop.University () in
  let pop_b = Platform.add_pop platform ~name:"amsterdam01" ~site:Pop.Ixp () in

  (* N1 connects at Seattle, N2 only at Amsterdam; both reach the same
     destination (exactly the paper's Figure 5). *)
  let destination = Prefix.of_string_exn "192.168.0.0/24" in
  let n1 = Pop.add_transit pop_a ~asn:(Asn.of_int 100) in
  let n2 = Pop.add_transit pop_b ~asn:(Asn.of_int 200) in
  Neighbor_host.announce n1 [ (destination, Aspath.of_asns [ Asn.of_int 100 ]) ];
  Neighbor_host.announce n2 [ (destination, Aspath.of_asns [ Asn.of_int 200 ]) ];
  Platform.run platform ~seconds:5.;

  (* Bring up the backbone: attach both PoPs and mesh their routers. *)
  Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;

  (* The experiment connects ONLY at Seattle. *)
  let grant =
    match
      Platform.submit platform
        (Approval.proposal ~title:"backbone" ~team:"demo"
           ~goals:"use a remote PoP's neighbor" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let x = Toolkit.create ~engine ~grant in
  ignore (Toolkit.open_tunnel x pop_a);
  Toolkit.start_session x ~pop:"seattle01";
  Platform.run platform ~seconds:10.;

  (* Visibility: the experiment sees both N1's route (local) and N2's route
     (via the backbone, with an alias next hop). *)
  let routes = Toolkit.routes_for x ~pop:"seattle01" (Prefix.host destination 1) in
  Fmt.pr "routes visible at seattle01 for %a: %d@." Prefix.pp destination
    (List.length routes);
  List.iter
    (fun (r : Rib.Route.t) ->
      Fmt.pr "  via %a  path %a@."
        Fmt.(option ~none:(any "?") Ipv4.pp)
        (Rib.Route.next_hop r) Aspath.pp (Rib.Route.as_path r))
    routes;

  (* Control: route a packet via N2, through the backbone. *)
  let via_n2 =
    List.find_map
      (fun (r : Rib.Route.t) ->
        if Aspath.contains (Asn.of_int 200) (Rib.Route.as_path r) then
          Rib.Route.next_hop r
        else None)
      routes
  in
  (match via_n2 with
  | None -> Fmt.pr "no route via N2 (unexpected)@."
  | Some via ->
      let src = Prefix.host (List.hd grant.Vbgp.Control_enforcer.prefixes) 1 in
      Toolkit.send_packet_via x ~pop:"seattle01" ~via
        (Ipv4_packet.make ~src ~dst:(Prefix.host destination 1)
           ~protocol:Ipv4_packet.Udp "transcontinental");
      Platform.run platform ~seconds:5.;
      Fmt.pr "packet via alias %a: N2 received %d, N1 received %d@." Ipv4.pp
        via
        (List.length (Neighbor_host.received_packets n2))
        (List.length (Neighbor_host.received_packets n1)));

  (* Announcements: export only to the remote neighbor N2. *)
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  let id_n2 =
    Vbgp.Router.export_id (Pop.router pop_b)
      ~neighbor_id:(Neighbor_host.neighbor_id n2)
  in
  Toolkit.announce x ~announce_to:[ id_n2 ] prefix;
  Platform.run platform ~seconds:5.;
  Fmt.pr "selective announcement of %a: N2 heard it: %b, N1 heard it: %b@."
    Prefix.pp prefix
    (Neighbor_host.heard_route n2 prefix <> None)
    (Neighbor_host.heard_route n1 prefix <> None);

  (* Inbound: traffic entering at Amsterdam reaches the experiment at
     Seattle across the backbone. *)
  Neighbor_host.send_packet n2 ~src:(Ipv4.of_string_exn "192.168.0.50")
    ~dst:(Prefix.host prefix 1) "hello from amsterdam";
  Platform.run platform ~seconds:5.;
  Fmt.pr "inbound packets delivered to experiment: %d@."
    (List.length (Toolkit.received x));
  Fmt.pr "== backbone routing complete ==@."
