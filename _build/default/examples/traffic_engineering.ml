(* Figure 1 of the paper, end to end: two parallel experiments share one
   vBGP edge router whose neighbors N1 and N2 both announce a route to the
   same destination.

   - X1 is a "standard router" experiment: it makes different announcements
     of the same prefix to different neighbors (prepended to N1, plain to
     N2) using export-control communities + ADD-PATH variants (§2.2.2).
   - X2 is an Espresso-style controller: it splits its outgoing traffic
     per packet between N1's and N2's routes by framing each packet to the
     chosen neighbor's virtual MAC (§3.2.2).

   Run with: dune exec examples/traffic_engineering.exe *)

open Netcore
open Bgp
open Peering

let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b

let () =
  Fmt.pr "== traffic engineering: Figure 1 scenario ==@.";
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in

  (* N1 and N2 both reach 192.168.0.0/24 (like the paper's figure). *)
  let destination = Prefix.of_string_exn "192.168.0.0/24" in
  let n1 = Pop.add_transit pop ~asn:(Asn.of_int 100) in
  let n2 = Pop.add_transit pop ~asn:(Asn.of_int 200) in
  Neighbor_host.announce n1
    [ (destination, Aspath.of_asns [ Asn.of_int 100; Asn.of_int 900 ]) ];
  Neighbor_host.announce n2
    [ (destination, Aspath.of_asns [ Asn.of_int 200; Asn.of_int 900 ]) ];
  Platform.run platform ~seconds:10.;

  (* Two parallel experiments, approved independently. *)
  let submit title =
    match
      Platform.submit platform
        (Approval.proposal ~title ~team:title ~goals:"traffic engineering" ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let g1 = submit "x1" and g2 = submit "x2" in
  let x1 = Toolkit.create ~engine ~grant:g1 in
  let x2 = Toolkit.create ~engine ~grant:g2 in
  ignore (Toolkit.open_tunnel x1 pop);
  ignore (Toolkit.open_tunnel x2 pop);
  Toolkit.start_session x1 ~pop:"pop01";
  Toolkit.start_session x2 ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  Fmt.pr "X1 sees %d routes, X2 sees %d routes (ADD-PATH visibility)@."
    (Toolkit.route_count x1 ~pop:"pop01")
    (Toolkit.route_count x2 ~pop:"pop01");

  (* --- X1: different announcements of one prefix to different neighbors.
     Variant 1 (path id 1): 3x prepend, exported only to N1.
     Variant 2 (path id 2): plain, exported only to N2. *)
  let router = Pop.router pop in
  let id1 =
    Vbgp.Router.export_id router ~neighbor_id:(Neighbor_host.neighbor_id n1)
  in
  let id2 =
    Vbgp.Router.export_id router ~neighbor_id:(Neighbor_host.neighbor_id n2)
  in
  let p1 = List.hd g1.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce x1 ~path_id:1 ~prepend:3 ~announce_to:[ id1 ] p1;
  Toolkit.announce x1 ~path_id:2 ~announce_to:[ id2 ] p1;
  Platform.run platform ~seconds:5.;
  let show host =
    match Neighbor_host.heard_route host p1 with
    | Some attrs ->
        Fmt.str "%a"
          Fmt.(option ~none:(any "-") Aspath.pp)
          (Attr.as_path attrs)
    | None -> "(not announced)"
  in
  Fmt.pr "X1 prefix %a:@.  N1 hears: %s@.  N2 hears: %s@." Prefix.pp p1
    (show n1) (show n2);

  (* --- X2: Espresso-style per-packet egress selection. Send 100 packets
     toward the shared destination, 70% via N1's route, 30% via N2's. *)
  let routes = Toolkit.routes_for x2 ~pop:"pop01" (Prefix.host destination 1) in
  let via_of asn =
    List.find_map
      (fun (r : Rib.Route.t) ->
        if Aspath.contains (Asn.of_int asn) (Rib.Route.as_path r) then
          Rib.Route.next_hop r
        else None)
      routes
  in
  (match (via_of 100, via_of 200) with
  | Some via1, Some via2 ->
      let dst = Prefix.host destination 1 in
      let src = Prefix.host (List.hd g2.Vbgp.Control_enforcer.prefixes) 1 in
      for i = 1 to 100 do
        let via = if i mod 10 < 7 then via1 else via2 in
        Toolkit.send_packet_via x2 ~pop:"pop01" ~via
          (Ipv4_packet.make ~src ~dst ~protocol:Ipv4_packet.Udp
             (Printf.sprintf "pkt%d" i))
      done;
      Platform.run platform ~seconds:5.;
      let c1 = List.length (Neighbor_host.received_packets n1) in
      let c2 = List.length (Neighbor_host.received_packets n2) in
      Fmt.pr
        "X2 split 100 packets: N1 carried %d (%.0f%%), N2 carried %d \
         (%.0f%%)@."
        c1 (pct c1 (c1 + c2)) c2 (pct c2 (c1 + c2))
  | _ -> Fmt.pr "could not find both routes (unexpected)@.");
  Fmt.pr "== traffic engineering complete ==@."
