(* Quickstart: the smallest end-to-end PEERING experiment.

   Builds a platform with one IXP PoP and a synthetic Internet, submits and
   approves an experiment, connects the toolkit, announces a prefix,
   watches it propagate to real neighbors, and exchanges traffic choosing
   egress per packet.

   Run with: dune exec examples/quickstart.exe *)

open Netcore
open Bgp
open Peering

let () =
  Fmt.pr "== PEERING quickstart ==@.";
  (* 1. A synthetic Internet: a small AS hierarchy with ~100 networks. *)
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 10; stub = 60 }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(Prefix.of_string_exn "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 40) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  Fmt.pr "built Internet: %d ASes, %d prefixes@."
    (Topo.As_graph.node_count graph)
    (List.length origins);

  (* 2. The platform with one IXP PoP: two transits, three peers. *)
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"amsterdam01" ~site:Pop.Ixp () in
  let hosts =
    Platform.populate_pop platform ~pop ~internet ~transits:2 ~peers:3 ()
  in
  Platform.run platform ~seconds:10.;
  Fmt.pr "PoP %s up with %d neighbors, %d routes learned@." (Pop.name pop)
    (List.length hosts)
    (Vbgp.Router.route_count (Pop.router pop));

  (* 3. Propose and approve an experiment. *)
  let proposal =
    Approval.proposal ~title:"quickstart" ~team:"demo"
      ~goals:"announce a prefix and exchange traffic" ()
  in
  let record =
    match Platform.submit platform proposal with
    | Platform.Granted r -> r
    | Platform.Denied reason -> failwith ("proposal denied: " ^ reason)
  in
  let grant = record.Approval.grant in
  Fmt.pr "experiment %s approved: prefixes=[%a] asn=%a@."
    grant.Vbgp.Control_enforcer.name
    Fmt.(list ~sep:sp Prefix.pp)
    grant.Vbgp.Control_enforcer.prefixes Fmt.(list ~sep:sp Asn.pp)
    grant.Vbgp.Control_enforcer.asns;

  (* 4. Connect the toolkit and bring up BGP over the tunnel. *)
  let toolkit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel toolkit pop);
  Toolkit.start_session toolkit ~pop:"amsterdam01";
  Platform.run platform ~seconds:10.;
  Fmt.pr "session established: %b; routes received: %d@."
    (Toolkit.established toolkit ~pop:"amsterdam01")
    (Toolkit.route_count toolkit ~pop:"amsterdam01");

  (* 5. Announce our prefix everywhere and let it propagate. *)
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce toolkit prefix;
  Platform.run platform ~seconds:5.;
  let heard =
    List.filter
      (fun h -> Neighbor_host.heard_route h prefix <> None)
      (Pop.neighbors pop)
  in
  Fmt.pr "announcement of %a heard by %d/%d neighbors@." Prefix.pp prefix
    (List.length heard)
    (Pop.neighbor_count pop);
  (match Pop.neighbors pop with
  | h :: _ -> (
      match Neighbor_host.heard_route h prefix with
      | Some attrs ->
          Fmt.pr "  first neighbor sees AS path: %a@."
            Fmt.(option Aspath.pp)
            (Attr.as_path attrs)
      | None -> ())
  | [] -> ());

  (* 6. Inspect routes through the toolkit's BIRD-style CLI. *)
  let dst_prefix, _ = List.hd origins in
  let dst = Prefix.host dst_prefix 1 in
  Fmt.pr "routes toward %a:@.%s@." Ipv4.pp dst
    (Toolkit.cli toolkit
       (Printf.sprintf "show route for %s" (Ipv4.to_string dst)));

  (* 7. Send traffic, letting the toolkit pick the best route. *)
  (match Toolkit.send_packet toolkit ~pop:"amsterdam01" ~dst "hello" with
  | Ok via -> Fmt.pr "sent a packet via next hop %a@." Ipv4.pp via
  | Error e -> Fmt.pr "send failed: %s@." e);
  Platform.run platform ~seconds:2.;
  let delivered =
    List.exists
      (fun h ->
        List.exists
          (fun (p : Ipv4_packet.t) -> Ipv4.equal p.dst dst)
          (Neighbor_host.received_packets h))
      (Pop.neighbors pop)
  in
  Fmt.pr "packet delivered to a neighbor: %b@." delivered;

  (* 8. Inbound traffic: a neighbor sends a packet to our prefix; the
     toolkit sees it arrive tagged with the delivering neighbor's MAC. *)
  let host = List.hd (Pop.neighbors pop) in
  Neighbor_host.send_packet host ~src:(Ipv4.of_string_exn "192.168.0.99")
    ~dst:(Prefix.host prefix 1) "ping!";
  Platform.run platform ~seconds:2.;
  (match Toolkit.received toolkit with
  | [] -> Fmt.pr "no inbound packets (unexpected)@."
  | r :: _ ->
      Fmt.pr "inbound packet from %a delivered via neighbor MAC %a@." Ipv4.pp
        r.Toolkit.packet.Ipv4_packet.src Mac.pp r.Toolkit.src_mac);
  Fmt.pr "== quickstart complete ==@."
