(* A tour of PEERING's security policies (paper §4.7): each prohibited
   behaviour is attempted and shown to be blocked, then the corresponding
   capability is granted and the behaviour succeeds — the same
   with/without-capability methodology the paper uses to test policies.

   Run with: dune exec examples/security_audit.exe *)

open Netcore
open Bgp
open Peering

let check name ok = Fmt.pr "  [%s] %s@." (if ok then "PASS" else "FAIL") name

let () =
  Fmt.pr "== security audit ==@.";
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let n1 = Pop.add_transit pop ~asn:(Asn.of_int 100) in
  Platform.run platform ~seconds:5.;

  (* A basic experiment (no extra capabilities) and a privileged one. *)
  let submit title caps =
    match
      Platform.submit platform
        (Approval.proposal ~title ~team:title ~goals:"security audit"
           ~requested_caps:caps ())
    with
    | Platform.Granted r -> r.Approval.grant
    | Platform.Denied reason -> failwith reason
  in
  let basic = submit "basic" Vbgp.Experiment_caps.default in
  let privileged =
    submit "priv"
      Vbgp.Experiment_caps.(
        default |> with_poisoning 2 |> with_communities 4)
  in
  let xb = Toolkit.create ~engine ~grant:basic in
  let xp = Toolkit.create ~engine ~grant:privileged in
  ignore (Toolkit.open_tunnel xb pop);
  ignore (Toolkit.open_tunnel xp pop);
  Toolkit.start_session xb ~pop:"pop01";
  Toolkit.start_session xp ~pop:"pop01";
  Platform.run platform ~seconds:10.;

  let router = Pop.router pop in
  let own_b = List.hd basic.Vbgp.Control_enforcer.prefixes in
  let own_p = List.hd privileged.Vbgp.Control_enforcer.prefixes in

  (* 1. Prefix hijack: announcing address space outside the allocation. *)
  Fmt.pr "1. prefix hijack (announce someone else's space)@.";
  let before = snd (Vbgp.Control_enforcer.stats (Vbgp.Router.control_enforcer router)) in
  Toolkit.announce xb (Prefix.of_string_exn "8.8.8.0/24");
  Platform.run platform ~seconds:2.;
  let after = snd (Vbgp.Control_enforcer.stats (Vbgp.Router.control_enforcer router)) in
  check "hijack rejected by control-plane enforcement" (after > before);
  check "hijack never reached neighbor"
    (Neighbor_host.heard_route n1 (Prefix.of_string_exn "8.8.8.0/24") = None);

  (* 2. AS-path poisoning: rejected without the capability, allowed with. *)
  Fmt.pr "2. AS-path poisoning capability@.";
  Toolkit.announce xb ~poison:[ Asn.of_int 3356 ] own_b;
  Platform.run platform ~seconds:2.;
  check "poisoning by basic experiment rejected"
    (Neighbor_host.heard_route n1 own_b = None);
  Toolkit.announce xp ~poison:[ Asn.of_int 3356 ] own_p;
  Platform.run platform ~seconds:2.;
  let poisoned_path_seen =
    match Neighbor_host.heard_route n1 own_p with
    | Some attrs -> (
        match Attr.as_path attrs with
        | Some path -> Aspath.contains (Asn.of_int 3356) path
        | None -> false)
    | None -> false
  in
  check "poisoning by privileged experiment propagates" poisoned_path_seen;

  (* 3. Communities: stripped without the capability, kept with it. *)
  Fmt.pr "3. community attachment capability@.";
  let community = Community.of_string_exn "100:666" in
  Toolkit.announce xb ~communities:[ community ] own_b;
  Toolkit.announce xp ~communities:[ community ] own_p;
  Platform.run platform ~seconds:2.;
  let sees_community grant_prefix =
    match Neighbor_host.heard_route n1 grant_prefix with
    | Some attrs -> Attr.has_community community attrs
    | None -> false
  in
  check "communities stripped for basic experiment"
    (Neighbor_host.heard_route n1 own_b <> None && not (sees_community own_b));
  check "communities kept for privileged experiment" (sees_community own_p);

  (* 4. Spoofed traffic: source outside the sender's allocation. *)
  Fmt.pr "4. data-plane source validation@.";
  let dst = Ipv4.of_string_exn "192.168.1.1" in
  Neighbor_host.announce n1
    [ (Prefix.of_string_exn "192.168.1.0/24", Aspath.of_asns [ Asn.of_int 100 ]) ];
  Platform.run platform ~seconds:2.;
  let blocked_before =
    snd (Vbgp.Data_enforcer.stats (Vbgp.Router.data_enforcer router))
  in
  (* xb tries to spoof xp's space. *)
  (match Toolkit.routes_for xb ~pop:"pop01" dst with
  | r :: _ ->
      let via = Option.get (Rib.Route.next_hop r) in
      Toolkit.send_packet_via xb ~pop:"pop01" ~via
        (Ipv4_packet.make ~src:(Prefix.host own_p 7) ~dst
           ~protocol:Ipv4_packet.Udp "spoof!")
  | [] -> ());
  Platform.run platform ~seconds:2.;
  let blocked_after =
    snd (Vbgp.Data_enforcer.stats (Vbgp.Router.data_enforcer router))
  in
  check "spoofed packet blocked" (blocked_after > blocked_before);

  (* 5. Update rate limiting: 144 updates/day per (prefix, PoP). *)
  Fmt.pr "5. announcement rate limiting (144/day)@.";
  let accepted_before, _ =
    Vbgp.Control_enforcer.stats (Vbgp.Router.control_enforcer router)
  in
  for _ = 1 to 200 do
    Toolkit.announce xp own_p
  done;
  Platform.run platform ~seconds:5.;
  let accepted_after, _ =
    Vbgp.Control_enforcer.stats (Vbgp.Router.control_enforcer router)
  in
  let accepted = accepted_after - accepted_before in
  Fmt.pr "  200 announcements sent, %d accepted before budget exhaustion@."
    accepted;
  check "rate limit enforced" (accepted < 200);

  (* 6. Fail-closed behaviour under overload. *)
  Fmt.pr "6. fail-closed enforcement@.";
  Vbgp.Control_enforcer.set_fail_closed
    (Vbgp.Router.control_enforcer router)
    true;
  let r =
    Vbgp.Router.process_experiment_update router ~experiment:(basic.Vbgp.Control_enforcer.name)
      (Msg.update
         ~attrs:
           (Attr.origin_attrs
              ~as_path:(Aspath.of_asns basic.Vbgp.Control_enforcer.asns)
              ~next_hop:(Prefix.host own_b 1) ())
         ~announced:[ Msg.nlri own_b ] ())
  in
  check "all announcements blocked while failing closed" (Result.is_error r);
  Vbgp.Control_enforcer.set_fail_closed
    (Vbgp.Router.control_enforcer router)
    false;
  Fmt.pr "== security audit complete ==@."
